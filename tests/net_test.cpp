// Unit tests for the network substrate: RAII sockets, framing, the
// in-process fabric, the real-TCP fabric, and the name registry.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "net/inproc_transport.hpp"
#include "net/name_registry.hpp"
#include "net/shm_fabric.hpp"
#include "net/tcp_transport.hpp"
#include "sim/domain.hpp"

namespace dps {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

std::string string_of(const std::vector<std::byte>& v) {
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

// --- Sockets + framing ------------------------------------------------------

TEST(Sockets, ConnectSendReceive) {
  TcpListener listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.valid());
  std::thread server([&] {
    TcpConn conn = listener.accept();
    ASSERT_TRUE(conn.valid());
    char buf[5];
    ASSERT_TRUE(conn.recv_all(buf, 5));
    conn.send_all(buf, 5);  // echo
  });
  TcpConn client = TcpConn::connect("127.0.0.1", listener.port());
  client.send_all("hello", 5);
  char echo[5];
  ASSERT_TRUE(client.recv_all(echo, 5));
  EXPECT_EQ(std::string(echo, 5), "hello");
  server.join();
}

TEST(Sockets, CleanEofAtBoundary) {
  TcpListener listener = TcpListener::bind(0);
  std::thread server([&] {
    TcpConn conn = listener.accept();
    conn.send_all("xyz", 3);
    // destructor closes -> EOF for the client
  });
  TcpConn client = TcpConn::connect("127.0.0.1", listener.port());
  char buf[3];
  ASSERT_TRUE(client.recv_all(buf, 3));
  EXPECT_FALSE(client.recv_all(buf, 3));  // clean EOF
  server.join();
}

TEST(Sockets, ConnectFailureThrowsNetwork) {
  // Port 1 on loopback is essentially never listening.
  try {
    TcpConn::connect("127.0.0.1", 1);
    GTEST_SKIP() << "port 1 unexpectedly open";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kNetwork);
  }
}

TEST(Framing, RoundTripOverSocket) {
  TcpListener listener = TcpListener::bind(0);
  std::thread server([&] {
    TcpConn conn = listener.accept();
    Frame f;
    ASSERT_TRUE(read_frame(conn, &f));
    EXPECT_EQ(f.kind, FrameKind::kEnvelope);
    EXPECT_EQ(f.from, 7u);
    EXPECT_EQ(string_of(f.payload), "payload!");
    Frame reply;
    reply.kind = FrameKind::kFlowAck;
    reply.from = 3;
    write_frame(conn, reply);
  });
  TcpConn client = TcpConn::connect("127.0.0.1", listener.port());
  Frame f;
  f.kind = FrameKind::kEnvelope;
  f.from = 7;
  f.payload = bytes_of("payload!");
  write_frame(client, f);
  Frame reply;
  ASSERT_TRUE(read_frame(client, &reply));
  EXPECT_EQ(reply.kind, FrameKind::kFlowAck);
  EXPECT_EQ(reply.from, 3u);
  EXPECT_TRUE(reply.payload.empty());
  server.join();
}

TEST(Framing, BadMagicRejected) {
  TcpListener listener = TcpListener::bind(0);
  std::thread server([&] {
    TcpConn conn = listener.accept();
    uint32_t junk[4] = {0x12345678, 0, 0, 0};
    conn.send_all(junk, sizeof(junk));
  });
  TcpConn client = TcpConn::connect("127.0.0.1", listener.port());
  Frame f;
  try {
    (void)read_frame(client, &f);
    FAIL() << "expected protocol error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kProtocol);
  }
  server.join();
}

TEST(Framing, WireSizeAccountsHeader) {
  Frame f;
  f.payload.resize(100);
  EXPECT_EQ(frame_wire_size(f), 116u);
}

// --- Fabrics ----------------------------------------------------------------

template <class FabricT>
void exercise_fabric(FabricT& fabric, size_t nodes) {
  struct Sink {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<NodeMessage> got;
  };
  std::vector<Sink> sinks(nodes);
  for (size_t i = 0; i < nodes; ++i) {
    fabric.attach(static_cast<NodeId>(i), [&sinks, i](NodeMessage&& m) {
      std::lock_guard<std::mutex> lock(sinks[i].mu);
      sinks[i].got.push_back(std::move(m));
      sinks[i].cv.notify_all();
    });
  }
  // Every node sends one message to every other node.
  for (size_t from = 0; from < nodes; ++from) {
    for (size_t to = 0; to < nodes; ++to) {
      if (from == to) continue;
      fabric.send(static_cast<NodeId>(from), static_cast<NodeId>(to),
                  FrameKind::kEnvelope,
                  bytes_of("m" + std::to_string(from) + std::to_string(to)));
    }
  }
  for (size_t i = 0; i < nodes; ++i) {
    std::unique_lock<std::mutex> lock(sinks[i].mu);
    sinks[i].cv.wait_for(lock, std::chrono::seconds(10),
                         [&] { return sinks[i].got.size() == nodes - 1; });
    ASSERT_EQ(sinks[i].got.size(), nodes - 1) << "node " << i;
    for (const auto& m : sinks[i].got) {
      EXPECT_EQ(string_of(m.payload),
                "m" + std::to_string(m.from) + std::to_string(i));
    }
  }
  EXPECT_EQ(fabric.messages_sent(), nodes * (nodes - 1));
  EXPECT_GT(fabric.bytes_sent(), 0u);
  fabric.shutdown();
}

TEST(InprocFabric, AllToAll) {
  InprocFabric fabric(4);
  exercise_fabric(fabric, 4);
}

TEST(TcpFabric, AllToAll) {
  TcpFabric fabric(4);
  exercise_fabric(fabric, 4);
}

// --- ShmFabric --------------------------------------------------------------

TEST(ShmFabric, AllToAll) {
  if (!shm_available()) GTEST_SKIP() << "POSIX shm unavailable or DPS_SHM=0";
  ShmFabric fabric(4);
  exercise_fabric(fabric, 4);
}

TEST(ShmFabric, BatchedDeliveryReachesBatchHandler) {
  if (!shm_available()) GTEST_SKIP() << "POSIX shm unavailable or DPS_SHM=0";
  ShmFabric fabric(2);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<NodeMessage> got;
  size_t batches = 0;
  fabric.attach_batch(1, [&](std::vector<NodeMessage>&& batch) {
    std::lock_guard<std::mutex> lock(mu);
    ++batches;
    for (auto& m : batch) got.push_back(std::move(m));
    cv.notify_all();
  });
  constexpr int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    fabric.send(0, 1, FrameKind::kEnvelope, bytes_of("f" + std::to_string(i)));
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::seconds(10),
              [&] { return got.size() == kFrames; });
  ASSERT_EQ(got.size(), kFrames);
  // SPSC ring: one producer's frames arrive exactly once, in send order,
  // grouped (the consumer drains bursts into batches, so there must be
  // fewer batch callbacks than frames under any real scheduling).
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)].from, 0u);
    EXPECT_EQ(string_of(got[static_cast<size_t>(i)].payload),
              "f" + std::to_string(i));
  }
  EXPECT_GE(batches, 1u);
  EXPECT_LE(batches, static_cast<size_t>(kFrames));
  fabric.shutdown();
}

TEST(ShmFabric, SendSharedConcatenatesPrefixAndBody) {
  if (!shm_available()) GTEST_SKIP() << "POSIX shm unavailable or DPS_SHM=0";
  ShmFabric fabric(3);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> got(3);
  for (NodeId n = 1; n <= 2; ++n) {
    fabric.attach(n, [&, n](NodeMessage&& m) {
      std::lock_guard<std::mutex> lock(mu);
      got[n] = string_of(m.payload);
      cv.notify_all();
    });
  }
  // Multicast idiom: one shared body, per-destination prefix, written into
  // each destination ring without materializing prefix+body first.
  auto body = std::make_shared<const std::vector<std::byte>>(
      bytes_of("shared-multicast-body"));
  fabric.send_shared(0, 1, FrameKind::kEnvelope, bytes_of("to1:"), body);
  fabric.send_shared(0, 2, FrameKind::kEnvelope, bytes_of("to2:"), body);
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::seconds(10),
              [&] { return !got[1].empty() && !got[2].empty(); });
  EXPECT_EQ(got[1], "to1:shared-multicast-body");
  EXPECT_EQ(got[2], "to2:shared-multicast-body");
  fabric.shutdown();
}

TEST(ShmFabric, OversizedFramesStreamThroughASmallRing) {
  if (!shm_available()) GTEST_SKIP() << "POSIX shm unavailable or DPS_SHM=0";
  // 4 KB rings; frames much larger than the ring must stream through it
  // (producer parks on full, consumer reassembles) and arrive intact.
  ShmFabric fabric(2, /*ring_bytes=*/4096);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::vector<std::byte>> got;
  fabric.attach(1, [&](NodeMessage&& m) {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(std::move(m.payload));
    cv.notify_all();
  });
  std::vector<std::vector<std::byte>> sent;
  for (int i = 0; i < 4; ++i) {
    std::vector<std::byte> payload(60000 + static_cast<size_t>(i) * 7919);
    for (size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<std::byte>((j * 31 + static_cast<size_t>(i)) &
                                          0xff);
    }
    sent.push_back(payload);
    fabric.send(0, 1, FrameKind::kEnvelope, std::move(payload));
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::seconds(20),
              [&] { return got.size() == sent.size(); });
  ASSERT_EQ(got.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i], sent[i]) << "frame " << i << " corrupted in streaming";
  }
  fabric.shutdown();
}

TEST(ShmFabric, HighVolumeExactlyOnceFifo) {
  if (!shm_available()) GTEST_SKIP() << "POSIX shm unavailable or DPS_SHM=0";
  // Two concurrent producers into one consumer, enough volume to wrap the
  // rings many times and exercise both park paths. Per-producer FIFO and
  // exactly-once are the SPSC ring's contract.
  ShmFabric fabric(3, /*ring_bytes=*/1 << 14);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::vector<uint32_t>> seqs(3);
  fabric.attach(2, [&](NodeMessage&& m) {
    uint32_t seq = 0;
    std::memcpy(&seq, m.payload.data(), sizeof(seq));
    std::lock_guard<std::mutex> lock(mu);
    seqs[m.from].push_back(seq);
    cv.notify_all();
  });
  constexpr uint32_t kPerProducer = 3000;
  auto producer = [&](NodeId from) {
    for (uint32_t i = 0; i < kPerProducer; ++i) {
      std::vector<std::byte> payload(sizeof(uint32_t) + (i % 97));
      std::memcpy(payload.data(), &i, sizeof(i));
      fabric.send(from, 2, FrameKind::kEnvelope, std::move(payload));
    }
  };
  std::thread p0([&] { producer(0); });
  std::thread p1([&] { producer(1); });
  p0.join();
  p1.join();
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::seconds(30), [&] {
    return seqs[0].size() == kPerProducer && seqs[1].size() == kPerProducer;
  });
  for (NodeId from = 0; from <= 1; ++from) {
    ASSERT_EQ(seqs[from].size(), kPerProducer) << "producer " << from;
    for (uint32_t i = 0; i < kPerProducer; ++i) {
      ASSERT_EQ(seqs[from][i], i) << "producer " << from << " out of order";
    }
  }
  fabric.shutdown();
}

TEST(TcpFabric, LazyConnectionsAndOrder) {
  TcpFabric fabric(2);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> got;
  fabric.attach(0, [](NodeMessage&&) {});
  fabric.attach(1, [&](NodeMessage&& m) {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(string_of(m.payload));
    cv.notify_all();
  });
  const int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    fabric.send(0, 1, FrameKind::kEnvelope, bytes_of(std::to_string(i)));
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(10),
                [&] { return got.size() == kMessages; });
    ASSERT_EQ(got.size(), static_cast<size_t>(kMessages));
    for (int i = 0; i < kMessages; ++i) {
      EXPECT_EQ(got[i], std::to_string(i)) << "messages must keep FIFO order";
    }
  }
  fabric.shutdown();
}

TEST(TcpFabric, ShutdownDrainsQueuedFrames) {
  // The async sender must deliver every frame accepted before shutdown()
  // ahead of the kShutdown announcement — a send that returned is a promise.
  TcpFabric fabric(2);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> got;
  fabric.attach(0, [](NodeMessage&&) {});
  fabric.attach(1, [&](NodeMessage&& m) {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(string_of(m.payload));
    cv.notify_all();
  });
  const int kMessages = 500;
  for (int i = 0; i < kMessages; ++i) {
    fabric.send(0, 1, FrameKind::kEnvelope, bytes_of(std::to_string(i)));
  }
  // No waiting: the queue is likely still deep when shutdown starts.
  fabric.shutdown();
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_EQ(got.size(), static_cast<size_t>(kMessages))
      << "frames accepted before shutdown must not be dropped";
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(got[i], std::to_string(i)) << "drain must keep FIFO order";
  }
}

TEST(TcpFabric, BackpressureKeepsFifoUnderTinyBudget) {
  // A queue budget smaller than one frame forces the producer to block on
  // backpressure between almost every enqueue; order and completeness must
  // survive the producer/sender handoffs, including mixed frame sizes.
  TcpFabric fabric(2);
  fabric.set_send_queue_limit(256);  // frames below overshoot the budget
  std::mutex mu;
  std::condition_variable cv;
  std::vector<size_t> sizes;
  fabric.attach(0, [](NodeMessage&&) {});
  fabric.attach(1, [&](NodeMessage&& m) {
    std::lock_guard<std::mutex> lock(mu);
    sizes.push_back(m.payload.size());
    cv.notify_all();
  });
  const int kMessages = 200;
  std::vector<size_t> expect;
  for (int i = 0; i < kMessages; ++i) {
    // Mix small frames with ones larger than the whole budget.
    const size_t n = (i % 5 == 0) ? 1000 + static_cast<size_t>(i)
                                  : static_cast<size_t>(i % 97);
    expect.push_back(n);
    fabric.send(0, 1, FrameKind::kEnvelope, std::vector<std::byte>(n));
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(10),
                [&] { return sizes.size() == kMessages; });
    ASSERT_EQ(sizes.size(), static_cast<size_t>(kMessages));
    EXPECT_EQ(sizes, expect) << "backpressure must not reorder or drop";
  }
  fabric.shutdown();
}

TEST(InprocFabric, UnattachedDestinationThrows) {
  InprocFabric fabric(2);
  fabric.attach(0, [](NodeMessage&&) {});
  try {
    fabric.send(0, 1, FrameKind::kEnvelope, {});
    FAIL() << "expected not_found";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kNotFound);
  }
}

// --- Name registry ----------------------------------------------------------

TEST(NameRegistry, PublishLookupWithdraw) {
  WallDomain domain;
  NameRegistry reg(domain);
  EXPECT_FALSE(reg.lookup("svc").has_value());
  reg.publish("svc", "value1");
  EXPECT_EQ(reg.lookup("svc").value(), "value1");
  reg.publish("svc", "value2");  // replace
  EXPECT_EQ(reg.lookup("svc").value(), "value2");
  reg.withdraw("svc");
  EXPECT_FALSE(reg.lookup("svc").has_value());
}

TEST(NameRegistry, WaitForBlocksUntilPublished) {
  WallDomain domain;
  NameRegistry reg(domain);
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    EXPECT_EQ(reg.wait_for("late"), "here");
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  reg.publish("late", "here");
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(NameRegistry, ListsNames) {
  WallDomain domain;
  NameRegistry reg(domain);
  reg.publish("b", "2");
  reg.publish("a", "1");
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace dps
