// Service-mesh robustness tests (docs/SERVICE_MESH.md): tenant identity,
// admission control and load shedding, per-call deadlines, per-tenant flow
// windows, and the window-leak regression (a poisoned flow account whose
// credits died with a peer must still be reaped).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/application.hpp"
#include "core/controller.hpp"
#include "util/mapping.hpp"

namespace dps {
namespace {

class ReqToken : public SimpleToken {
 public:
  int v;
  ReqToken(int x = 0) : v(x) {}
  DPS_IDENTIFY(ReqToken);
};

class RepToken : public SimpleToken {
 public:
  int v;
  RepToken(int x = 0) : v(x) {}
  DPS_IDENTIFY(RepToken);
};

class PartTok : public SimpleToken {
 public:
  int v;
  PartTok(int x = 0) : v(x) {}
  DPS_IDENTIFY(PartTok);
};

class SumTok : public SimpleToken {
 public:
  int total;
  SumTok(int t = 0) : total(t) {}
  DPS_IDENTIFY(SumTok);
};

class MeshThread : public Thread {
  DPS_IDENTIFY_THREAD(MeshThread);
};

/// Test-global gate the blocking operations park on, so tests control
/// exactly when in-flight calls complete. reset() re-arms it per test.
struct Gate {
  Mutex mu;
  CondVar cv;
  bool open DPS_GUARDED_BY(mu) = false;

  void release() {
    {
      MutexLock lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    MutexLock lock(mu);
    cv.wait(mu, [this]() DPS_REQUIRES(mu) { return open; });
  }
  void reset() {
    MutexLock lock(mu);
    open = false;
  }
};
Gate g_gate;

DPS_ROUTE(MeshReqRoute, MeshThread, ReqToken, 0);
DPS_ROUTE(MeshRepRoute, MeshThread, RepToken, 0);
DPS_ROUTE(MeshPartSpread, MeshThread, PartTok, currentToken->v % threadCount());
DPS_ROUTE(MeshPartLast, MeshThread, PartTok, threadCount() - 1);

// --- Blocking echo service (admission / deadline tests) ---------------------

class MeshGatedEcho
    : public LeafOperation<MeshThread, TV1(ReqToken), TV1(RepToken)> {
 public:
  void execute(ReqToken* in) override {
    g_gate.wait();
    postToken(new RepToken(in->v));
  }
  DPS_IDENTIFY_OPERATION(MeshGatedEcho);
};

class MeshRepForward
    : public LeafOperation<MeshThread, TV1(RepToken), TV1(RepToken)> {
 public:
  void execute(RepToken* in) override { postToken(new RepToken(in->v)); }
  DPS_IDENTIFY_OPERATION(MeshRepForward);
};

std::shared_ptr<Flowgraph> build_echo_service(Application& app) {
  auto threads = app.thread_collection<MeshThread>("mesh-echo");
  threads->map(app.cluster().node_name(0));
  FlowgraphBuilder b = FlowgraphNode<MeshGatedEcho, MeshReqRoute>(threads) >>
                       FlowgraphNode<MeshRepForward, MeshRepRoute>(threads);
  return app.build_graph(b, "gated-echo");
}

// --- Split through a gated remote leaf (flow-window tests) ------------------

class MeshFanSplit
    : public SplitOperation<MeshThread, TV1(ReqToken), TV1(PartTok)> {
 public:
  void execute(ReqToken* in) override {
    for (int k = 1; k <= in->v; ++k) postToken(new PartTok(k));
  }
  DPS_IDENTIFY_OPERATION(MeshFanSplit);
};

class MeshGatedPart : public LeafOperation<MeshThread, TV1(PartTok), TV1(PartTok)> {
 public:
  void execute(PartTok* in) override {
    g_gate.wait();
    postToken(new PartTok(in->v));
  }
  DPS_IDENTIFY_OPERATION(MeshGatedPart);
};

class MeshSumMerge : public MergeOperation<MeshThread, TV1(PartTok), TV1(SumTok)> {
 public:
  void execute(PartTok* first) override {
    int total = first->v;
    while (auto t = waitForNextToken()) total += token_cast<PartTok>(t)->v;
    postToken(new SumTok(total));
  }
  DPS_IDENTIFY_OPERATION(MeshSumMerge);
};

/// split(node0) -> gated leaf(node1) -> merge(node0): the split's flow
/// account is anchored on node 0 while the credits come back from node 1.
/// Split and merge run on different worker threads — a split blocked in
/// flow_acquire cannot pump the merge that would refill its window.
std::shared_ptr<Flowgraph> build_fan_graph(Application& app) {
  auto mains = app.thread_collection<MeshThread>("fan-main");
  const std::string n0 = app.cluster().node_name(0);
  mains->map(n0 + " " + n0);
  auto parts = app.thread_collection<MeshThread>("fan-part");
  parts->map(app.cluster().node_name(app.cluster().node_count() > 1 ? 1 : 0));
  FlowgraphBuilder b = FlowgraphNode<MeshFanSplit, MeshReqRoute>(mains) >>
                       FlowgraphNode<MeshGatedPart, MeshPartSpread>(parts) >>
                       FlowgraphNode<MeshSumMerge, MeshPartLast>(mains);
  return app.build_graph(b, "gated-fan");
}

// --- Multicast through gated remote receivers (mid-collective faults) -------

/// One collective to every thread of the receiver collection; with the
/// receivers gated and a small tenant window, the split blocks in
/// flow_acquire part-way through shipping the collective.
class MeshMcastSplit
    : public SplitOperation<MeshThread, TV1(ReqToken), TV1(PartTok)> {
 public:
  void execute(ReqToken* in) override {
    std::vector<int> dests;
    for (int k = 0; k < in->v; ++k) dests.push_back(k);
    postTokenMulticast(new PartTok(7), dests);
  }
  DPS_IDENTIFY_OPERATION(MeshMcastSplit);
};

/// split(node0) -> multicast to `dests` gated threads, all on node 1 ->
/// merge(node0): every multicast credit crosses the link, so node-1 faults
/// strand the split's flow account mid-collective.
std::shared_ptr<Flowgraph> build_mcast_fan_graph(Application& app, int dests) {
  auto mains = app.thread_collection<MeshThread>("mfan-main");
  const std::string n0 = app.cluster().node_name(0);
  mains->map(n0 + " " + n0);
  auto parts = app.thread_collection<MeshThread>("mfan-part");
  std::vector<std::string> remote = {
      app.cluster().node_name(app.cluster().node_count() > 1 ? 1 : 0)};
  parts->map(round_robin_mapping(remote, dests));
  FlowgraphBuilder b = FlowgraphNode<MeshMcastSplit, MeshReqRoute>(mains) >>
                       FlowgraphNode<MeshGatedPart, MeshPartSpread>(parts) >>
                       FlowgraphNode<MeshSumMerge, MeshPartLast>(mains);
  return app.build_graph(b, "gated-mcast-fan");
}

bool wait_until(const std::function<bool()>& pred, double seconds = 5.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// --- Tenant identity --------------------------------------------------------

TEST(ServiceMesh, TenantRegistrationIsIdempotent) {
  Cluster cluster(ClusterConfig::inproc(1));
  TenantConfig cfg;
  cfg.max_inflight = 3;
  cfg.flow_window = 8;
  const TenantId a = cluster.register_tenant("alice", cfg);
  ASSERT_NE(a, kNoTenant);
  // Re-join under the same name (tenant churn): same identity, and the
  // budgets of the first registration stick.
  const TenantId b = cluster.register_tenant("alice", TenantConfig{});
  EXPECT_EQ(a, b);
  EXPECT_EQ(cluster.tenant_config(a).max_inflight, 3u);
  EXPECT_EQ(cluster.tenant_config(a).flow_window, 8u);
  EXPECT_EQ(cluster.tenant_name(a), "alice");
  const TenantId other = cluster.register_tenant("bob");
  EXPECT_NE(other, a);

  // The record is published in the service registry with the shared codec.
  auto rec = cluster.services().lookup("tenant/alice");
  ASSERT_TRUE(rec.has_value());
  TenantId decoded_id = kNoTenant;
  TenantConfig decoded;
  ASSERT_TRUE(decode_tenant_record(*rec, &decoded_id, &decoded));
  EXPECT_EQ(decoded_id, a);
  EXPECT_EQ(decoded.max_inflight, 3u);
  EXPECT_EQ(decoded.flow_window, 8u);
}

TEST(ServiceMesh, ApplicationsAreTenants) {
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "tenant-app");
  EXPECT_NE(app.tenant(), kNoTenant);
  EXPECT_EQ(cluster.tenant_name(app.tenant()), "tenant-app");
  // Unknown / kNoTenant ids resolve to the unlimited default config.
  EXPECT_EQ(cluster.tenant_config(kNoTenant).max_inflight, 0u);
  EXPECT_EQ(cluster.tenant_config(9999).max_inflight, 0u);
}

// --- Admission control ------------------------------------------------------

TEST(ServiceMesh, ShedsWithBackpressureAtBudget) {
  g_gate.reset();
  Cluster cluster(ClusterConfig::inproc(1));
  Application service(cluster, "echo-svc");
  service.publish_graph(build_echo_service(service), "mesh/echo");

  Application client(cluster, "client");
  TenantConfig cfg;
  cfg.max_inflight = 2;
  client.set_tenant_config(cfg);

  ActorScope scope(cluster.domain(), "main");
  CallHandle h1 = client.call_service_async("mesh/echo", new ReqToken(1));
  CallHandle h2 = client.call_service_async("mesh/echo", new ReqToken(2));
  try {
    (void)client.call_service_async("mesh/echo", new ReqToken(3));
    FAIL() << "expected the third call to be shed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kBackpressure);
  }

  Controller::SvcStats stats =
      cluster.controller(client.home()).svc_stats(client.tenant());
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.inflight, 2u);
  EXPECT_EQ(stats.peak_inflight, 2u);

  g_gate.release();
  EXPECT_EQ(token_cast<RepToken>(h1.wait())->v, 1);
  EXPECT_EQ(token_cast<RepToken>(h2.wait())->v, 2);

  // Completed calls returned their slots: the budget refills.
  stats = cluster.controller(client.home()).svc_stats(client.tenant());
  EXPECT_EQ(stats.inflight, 0u);
  CallHandle h4 = client.call_service_async("mesh/echo", new ReqToken(4));
  EXPECT_EQ(token_cast<RepToken>(h4.wait())->v, 4);
}

TEST(ServiceMesh, UnconfiguredTenantIsNeverShed) {
  g_gate.reset();
  g_gate.release();  // run the service open
  Cluster cluster(ClusterConfig::inproc(1));
  Application service(cluster, "echo-svc");
  service.publish_graph(build_echo_service(service), "mesh/echo");
  Application client(cluster, "client");

  ActorScope scope(cluster.domain(), "main");
  std::vector<CallHandle> calls;
  for (int i = 0; i < 64; ++i) {
    calls.push_back(client.call_service_async("mesh/echo", new ReqToken(i)));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(token_cast<RepToken>(calls[static_cast<size_t>(i)].wait())->v, i);
  }
  const Controller::SvcStats stats =
      cluster.controller(client.home()).svc_stats(client.tenant());
  EXPECT_EQ(stats.admitted, 64u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.inflight, 0u);
}

// --- Deadlines --------------------------------------------------------------

TEST(ServiceMesh, DeadlineFailsCallAndRetiresSlot) {
  g_gate.reset();
  Cluster cluster(ClusterConfig::inproc(1));
  Application service(cluster, "echo-svc");
  service.publish_graph(build_echo_service(service), "mesh/echo");

  Application client(cluster, "client");
  TenantConfig cfg;
  cfg.max_inflight = 1;
  client.set_tenant_config(cfg);

  ActorScope scope(cluster.domain(), "main");
  CallHandle h =
      client.call_service_async("mesh/echo", new ReqToken(1)).with_deadline(25);
  try {
    (void)h.wait();
    FAIL() << "expected the deadline to expire";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kDeadlineExceeded);
  }

  const Controller::SvcStats stats =
      cluster.controller(client.home()).svc_stats(client.tenant());
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.inflight, 0u);  // the expired call returned its slot

  // The budget of 1 is free again: a new call is admitted, completes once
  // the gate opens, and the expired call's late result is dropped as stray.
  g_gate.release();
  CallHandle h2 = client.call_service_async("mesh/echo", new ReqToken(2));
  EXPECT_EQ(token_cast<RepToken>(h2.wait())->v, 2);
}

TEST(ServiceMesh, TenantDefaultDeadlineApplies) {
  g_gate.reset();
  Cluster cluster(ClusterConfig::inproc(1));
  Application service(cluster, "echo-svc");
  service.publish_graph(build_echo_service(service), "mesh/echo");

  Application client(cluster, "client");
  TenantConfig cfg;
  cfg.default_deadline_ms = 20;
  client.set_tenant_config(cfg);

  ActorScope scope(cluster.domain(), "main");
  try {
    (void)client.call_service("mesh/echo", new ReqToken(1));
    FAIL() << "expected the tenant's default deadline to expire";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kDeadlineExceeded);
  }
  g_gate.release();  // let the parked worker finish before shutdown
}

TEST(ServiceMesh, DeadlineExpiresUnderVirtualTime) {
  // Deadlines ride the cluster's ExecDomain, so under simulation they
  // expire in virtual time without any wall-clock waiting.
  Cluster cluster(ClusterConfig::simulated(1));
  Application app(cluster, "sim-client");
  ActorScope scope(cluster.domain(), "main");
  const CallId fake = cluster.new_call_id();
  auto state = cluster.create_call(fake);
  cluster.arm_deadline(fake, 0.5);
  // No envelope was ever sent for this call: only the deadline can end it.
  // Wait the way CallHandle::wait does, through the time domain.
  MutexLock lock(state->mu);
  cluster.domain().wait_until(state->wp, state->mu,
                              [&]() DPS_REQUIRES(state->mu) {
                                return state->done;
                              });
  EXPECT_TRUE(state->failed);
  EXPECT_EQ(state->err, Errc::kDeadlineExceeded);
  EXPECT_GE(cluster.domain().now(), 0.5);
}

// --- Per-tenant flow windows and the window-leak regression -----------------

TEST(ServiceMesh, TenantFlowWindowDrainsAndRefills) {
  g_gate.reset();
  g_gate.release();
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "fan-app");
  TenantConfig cfg;
  cfg.flow_window = 2;  // 6 tokens must recycle the 2-slot window
  app.set_tenant_config(cfg);
  auto graph = build_fan_graph(app);

  ActorScope scope(cluster.domain(), "main");
  auto sum = token_cast<SumTok>(graph->call(new ReqToken(6)));
  ASSERT_TRUE(sum);
  EXPECT_EQ(sum->total, 1 + 2 + 3 + 4 + 5 + 6);
  // The split's account drained once the merge returned every credit.
  EXPECT_TRUE(wait_until(
      [&] { return cluster.controller(0).flow_account_count() == 0; }));
}

TEST(ServiceMesh, PoisonedWindowDoesNotLeakAccounts) {
  // Regression for the window-leak hazard: the split exhausts its window
  // against a gated remote leaf, the remote node dies, and the poisoned
  // account — whose outstanding credits can never return — must still be
  // reaped when the split unwinds.
  g_gate.reset();
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "fan-app");
  TenantConfig cfg;
  cfg.flow_window = 2;
  app.set_tenant_config(cfg);
  auto graph = build_fan_graph(app);

  ActorScope scope(cluster.domain(), "main");
  CallHandle h = graph->call_async(new ReqToken(8));
  // The split blocks in flow_acquire once both window slots are in flight
  // toward the gated leaf on node 1.
  ASSERT_TRUE(wait_until(
      [&] { return cluster.controller(0).flow_account_count() == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  cluster.mark_node_down(1, "test-induced failure");
  try {
    (void)h.wait();
    FAIL() << "expected the call to fail with the node";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kNodeDown);
  }
  // The poisoned account is erased even though in_flight never reached 0.
  EXPECT_TRUE(wait_until(
      [&] { return cluster.controller(0).flow_account_count() == 0; }));
  g_gate.release();  // unpark node 1's worker so shutdown can join it
}

// Sanity for the multicast fan graph: with open gates, the collective
// delivers to every receiver and the flow account fully drains.
TEST(ServiceMesh, McastFanGraphDrainsCleanly) {
  g_gate.reset();
  g_gate.release();
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "mcast-fan");
  TenantConfig cfg;
  cfg.flow_window = 2;  // the collective's 8 credits recycle 2 slots
  app.set_tenant_config(cfg);
  auto graph = build_mcast_fan_graph(app, 8);
  ActorScope scope(cluster.domain(), "main");
  auto sum = token_cast<SumTok>(graph->call(new ReqToken(8)));
  ASSERT_TRUE(sum);
  EXPECT_EQ(sum->total, 7 * 8) << "one shared token to each of 8 receivers";
  EXPECT_TRUE(wait_until(
      [&] { return cluster.controller(0).flow_account_count() == 0; }));
}

// Node death mid-multicast: the split is blocked in flow_acquire with part
// of the collective shipped when the receiving node dies. The blocked
// waiter must be poisoned awake (the call fails with kNodeDown, never
// hangs) and the stranded account reaped — flow_account_count() back to 0.
TEST(ServiceMesh, NodeDeathMidMulticastUnblocksAndReapsAccounts) {
  g_gate.reset();
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "mcast-fan");
  TenantConfig cfg;
  cfg.flow_window = 2;
  app.set_tenant_config(cfg);
  auto graph = build_mcast_fan_graph(app, 8);

  ActorScope scope(cluster.domain(), "main");
  CallHandle h = graph->call_async(new ReqToken(8));
  // Both window slots in flight toward the gated receivers: the split is
  // parked inside postTokenMulticast's flow_acquire.
  ASSERT_TRUE(wait_until(
      [&] { return cluster.controller(0).flow_account_count() == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  cluster.mark_node_down(1, "test-induced failure");
  try {
    (void)h.wait();
    FAIL() << "a collective toward a dead node must fail, not hang";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kNodeDown);
  }
  EXPECT_TRUE(wait_until(
      [&] { return cluster.controller(0).flow_account_count() == 0; }))
      << "the mid-multicast account must be reaped after poison";
  g_gate.release();  // unpark node 1's worker so shutdown can join it
}

// Shutdown mid-multicast: tearing the cluster down while a split is parked
// in flow_acquire part-way through a collective must poison the account
// (no blocked waiter survives) and drain the account table before the
// destructor returns — a hang here fails the test by timeout.
TEST(ServiceMesh, ShutdownMidMulticastLeavesNoBlockedWaiters) {
  g_gate.reset();
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "mcast-fan");
  TenantConfig cfg;
  cfg.flow_window = 2;
  app.set_tenant_config(cfg);
  auto graph = build_mcast_fan_graph(app, 8);

  ActorScope scope(cluster.domain(), "main");
  CallHandle h = graph->call_async(new ReqToken(8));
  ASSERT_TRUE(wait_until(
      [&] { return cluster.controller(0).flow_account_count() == 1; }));

  g_gate.release();   // receivers may drain, but the collective is underway
  cluster.shutdown();  // must poison flow accounts and unblock the split
  EXPECT_TRUE(wait_until(
      [&] { return cluster.controller(0).flow_account_count() == 0; }))
      << "shutdown must reap every flow account";
  try {
    (void)h.wait();  // either outcome is fine; hanging is not
  } catch (const Error&) {
  }
}

}  // namespace
}  // namespace dps
