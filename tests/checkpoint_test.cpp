// Checkpoint/restore tests (paper §6 future work): capture the distributed
// Game-of-Life state mid-run and resume it — in the same cluster, and in a
// freshly built one with a different node mapping, the graceful-degradation
// scenario.
#include <gtest/gtest.h>

#include "apps/life.hpp"
#include "core/checkpoint.hpp"

namespace dps {
namespace {

using apps::LifeApp;

life::Band seeded_world(int rows, int cols) {
  life::Band w(rows, cols);
  w.seed_random(123);
  return w;
}

TEST(Checkpoint, ResumeInSameCluster) {
  Cluster cluster(ClusterConfig::inproc(2));
  LifeApp app(cluster, 4);
  ActorScope scope(cluster.domain(), "main");
  life::Band world = seeded_world(32, 24);
  app.scatter(world);
  app.iterate(true);
  app.iterate(true);
  const auto image = checkpoint_cluster(cluster);

  // Diverge, then roll back.
  app.iterate(true);
  app.iterate(true);
  restore_cluster(cluster, image);
  EXPECT_EQ(app.gather(), life::step_world(world, 2))
      << "restore must roll the distributed state back to the capture";
}

TEST(Checkpoint, ResumeInFreshClusterWithDifferentMapping) {
  std::vector<std::byte> image;
  life::Band world = seeded_world(40, 20);
  {
    Cluster cluster(ClusterConfig::inproc(4));
    LifeApp app(cluster, 4);
    ActorScope scope(cluster.domain(), "main");
    app.scatter(world);
    for (int i = 0; i < 3; ++i) app.iterate(false);
    image = checkpoint_cluster(cluster);
  }  // the "failed" cluster is gone

  // Rebuild on fewer nodes (collections in the same order), restore, and
  // continue; the result must equal an uninterrupted run.
  Cluster cluster(ClusterConfig::inproc(2));
  LifeApp app(cluster, 4);
  ActorScope scope(cluster.domain(), "main");
  app.scatter(life::Band(40, 20));  // placeholder state, then roll in
  restore_cluster(cluster, image);
  for (int i = 0; i < 2; ++i) app.iterate(true);
  EXPECT_EQ(app.gather(), life::step_world(world, 5));
}

// The graceful-degradation pipeline without a fault injector: checkpoint,
// operator-declared node death, remap onto the survivors, restore, resume.
TEST(Checkpoint, KillRemapRestoreIntoDegradedCluster) {
  std::vector<std::byte> image;
  ClusterConfig degraded;
  life::Band world = seeded_world(16, 12);
  {
    Cluster cluster(ClusterConfig::inproc(3));
    LifeApp app(cluster, 3);
    ActorScope scope(cluster.domain(), "main");
    app.scatter(world);
    app.iterate(false);
    image = checkpoint_cluster(cluster);

    cluster.mark_node_down(1, "operator kill (test)");
    EXPECT_TRUE(cluster.node_down(1));
    // A failed cluster rejects new calls instead of stalling on the dead
    // node's threads.
    try {
      app.iterate(true);
      FAIL() << "calls on a degraded cluster must fail fast";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), Errc::kNodeDown);
    }
    degraded = degraded_config(cluster);
  }
  EXPECT_EQ(degraded.nodes, (std::vector<std::string>{"node0", "node2"}));

  Cluster fresh(degraded);
  LifeApp app(fresh, 3);
  ActorScope scope(fresh.domain(), "main");
  app.scatter(life::Band(16, 12));  // placeholder state, then roll in
  recover_cluster(fresh, image);
  for (int i = 0; i < 2; ++i) app.iterate(i == 0);
  EXPECT_EQ(app.gather(), life::step_world(world, 3));
}

TEST(Checkpoint, DegradedConfigRequiresADeadNode) {
  Cluster cluster(ClusterConfig::inproc(2));
  EXPECT_THROW(degraded_config(cluster), Error);
}

TEST(Checkpoint, ImageRoundTripsThroughBytes) {
  Cluster cluster(ClusterConfig::inproc(1));
  LifeApp app(cluster, 2);
  ActorScope scope(cluster.domain(), "main");
  app.scatter(seeded_world(10, 10));
  const auto image = checkpoint_cluster(cluster);
  EXPECT_GT(image.size(), 2u * 10 * 10 / 2) << "bands must be in the image";
  // A second capture of unchanged state is identical.
  EXPECT_EQ(checkpoint_cluster(cluster), image);
}

TEST(Checkpoint, CorruptImageRejected) {
  Cluster cluster(ClusterConfig::inproc(1));
  LifeApp app(cluster, 2);
  ActorScope scope(cluster.domain(), "main");
  app.scatter(seeded_world(8, 8));
  auto image = checkpoint_cluster(cluster);
  image[0] = std::byte{0xAA};  // break the magic
  EXPECT_THROW(restore_cluster(cluster, image), Error);
  auto truncated = checkpoint_cluster(cluster);
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(restore_cluster(cluster, truncated), Error);
}

}  // namespace
}  // namespace dps
