// Unit tests for the serialization substrate: wire reader/writer, simple
// tokens (memcpy family), complex tokens (field-wrapper family), nesting,
// inheritance, the registry, and Ptr<> reference counting.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "serial/buffer_pool.hpp"
#include "serial/registry.hpp"

namespace dps {
namespace {

// --- Wire primitives --------------------------------------------------------

TEST(Wire, ScalarRoundTrip) {
  Writer w;
  w.put<int32_t>(-7);
  w.put<uint64_t>(1ull << 40);
  w.put<double>(3.25);
  Reader r(w.bytes());
  EXPECT_EQ(r.get<int32_t>(), -7);
  EXPECT_EQ(r.get<uint64_t>(), 1ull << 40);
  EXPECT_EQ(r.get<double>(), 3.25);
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, StringRoundTrip) {
  Writer w;
  w.put_string("hello");
  w.put_string("");
  w.put_string(std::string("a\0b", 3));
  Reader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), std::string("a\0b", 3));
}

TEST(Wire, OverrunThrowsProtocol) {
  Writer w;
  w.put<uint16_t>(42);
  Reader r(w.bytes());
  EXPECT_EQ(r.get<uint16_t>(), 42);
  try {
    (void)r.get<uint32_t>();
    FAIL() << "expected overrun";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kProtocol);
  }
}

TEST(Wire, TruncatedStringThrows) {
  Writer w;
  w.put<uint32_t>(100);  // claims 100 bytes, provides none
  Reader r(w.bytes());
  EXPECT_THROW((void)r.get_string(), Error);
}

// --- Tokens under test ------------------------------------------------------

// The paper's tutorial token, verbatim semantics.
class SCharToken : public SimpleToken {
 public:
  char chr = 0;
  int pos = 0;
  SCharToken(char c = 0, int p = 0) : chr(c), pos(p) {}
  DPS_IDENTIFY(SCharToken);
};

class SEmptyToken : public SimpleToken {
  DPS_IDENTIFY(SEmptyToken);
};

struct Inner : Serializable {
  CT<int> id;
  CT<std::string> label;
};

// Mirrors the paper's MyComplexToken.
class SComplexTok : public ComplexToken {
 public:
  CT<int> id;
  CT<std::string> name;
  Vector<Inner> children;
  Buffer<int> numbers;
  DPS_IDENTIFY(SComplexTok);
};

// Inheritance: derived complex tokens serialize base + derived fields.
class SDerivedTok : public SComplexTok {
 public:
  CT<double> extra;
  DPS_IDENTIFY(SDerivedTok);
};

// Direct nesting of a field-bearing struct as a plain member.
class SNestingTok : public ComplexToken {
 public:
  Inner direct;
  CT<Inner> wrapped;
  DPS_IDENTIFY(SNestingTok);
};

Ptr<Token> round_trip(const Token& t) {
  Writer w;
  serialize_token(t, w);
  Reader r(w.bytes());
  Ptr<Token> out = deserialize_token(r);
  EXPECT_TRUE(r.at_end());
  return out;
}

// --- Simple tokens ----------------------------------------------------------

TEST(SimpleTokens, RoundTrip) {
  SCharToken in('Q', 1234);
  auto out = token_cast<SCharToken>(round_trip(in));
  ASSERT_TRUE(out);
  EXPECT_EQ(out->chr, 'Q');
  EXPECT_EQ(out->pos, 1234);
}

TEST(SimpleTokens, EmptyPayload) {
  SEmptyToken in;
  auto out = token_cast<SEmptyToken>(round_trip(in));
  ASSERT_TRUE(out);
}

TEST(SimpleTokens, PayloadSizeIsDerivedRegion) {
  Writer w;
  serialize_token(SCharToken('x', 1), w);
  // u64 type id + (sizeof(SCharToken) - sizeof(SimpleToken)) payload bytes.
  EXPECT_EQ(w.size(), 8 + sizeof(SCharToken) - sizeof(SimpleToken));
}

// --- Complex tokens ---------------------------------------------------------

TEST(ComplexTokens, RoundTrip) {
  SComplexTok in;
  in.id = 42;
  in.name = std::string("widget");
  Inner a;
  a.id = 1;
  a.label = std::string("first");
  Inner b;
  b.id = 2;
  b.label = std::string("second");
  in.children.push_back(a);
  in.children.push_back(b);
  for (int i = 0; i < 100; ++i) in.numbers.push_back(i * i);

  auto out = token_cast<SComplexTok>(round_trip(in));
  ASSERT_TRUE(out);
  EXPECT_EQ(out->id.get(), 42);
  EXPECT_EQ(out->name.get(), "widget");
  ASSERT_EQ(out->children.size(), 2u);
  EXPECT_EQ(out->children[0].id.get(), 1);
  EXPECT_EQ(out->children[0].label.get(), "first");
  EXPECT_EQ(out->children[1].label.get(), "second");
  ASSERT_EQ(out->numbers.size(), 100u);
  EXPECT_EQ(out->numbers[99], 99 * 99);
}

TEST(ComplexTokens, EmptyContainers) {
  SComplexTok in;
  auto out = token_cast<SComplexTok>(round_trip(in));
  ASSERT_TRUE(out);
  EXPECT_EQ(out->children.size(), 0u);
  EXPECT_EQ(out->numbers.size(), 0u);
}

TEST(ComplexTokens, DerivedClassCarriesBaseAndOwnFields) {
  SDerivedTok in;
  in.id = 7;
  in.name = std::string("base-part");
  in.extra = 2.5;
  auto out = token_cast<SDerivedTok>(round_trip(in));
  ASSERT_TRUE(out);
  EXPECT_EQ(out->id.get(), 7);
  EXPECT_EQ(out->name.get(), "base-part");
  EXPECT_EQ(out->extra.get(), 2.5);
}

TEST(ComplexTokens, DirectAndWrappedNesting) {
  SNestingTok in;
  in.direct.id = 5;
  in.direct.label = std::string("direct");
  in.wrapped.get().id = 6;
  in.wrapped.get().label = std::string("wrapped");
  auto out = token_cast<SNestingTok>(round_trip(in));
  ASSERT_TRUE(out);
  EXPECT_EQ(out->direct.id.get(), 5);
  EXPECT_EQ(out->direct.label.get(), "direct");
  EXPECT_EQ(out->wrapped.get().id.get(), 6);
  EXPECT_EQ(out->wrapped.get().label.get(), "wrapped");
}

TEST(ComplexTokens, FieldTableCountsAllWrappers) {
  // SComplexTok: id, name, children, numbers -> 4 wrapper fields.
  EXPECT_EQ(FieldTable::of<SComplexTok>().field_count(), 4u);
  // SDerivedTok adds one.
  EXPECT_EQ(FieldTable::of<SDerivedTok>().field_count(), 5u);
  // SNestingTok: direct.{id,label} and wrapped's inner {id,label} register
  // individually (CT<field-bearing> delegates to the inner wrappers) -> 4.
  EXPECT_EQ(FieldTable::of<SNestingTok>().field_count(), 4u);
}

TEST(ComplexTokens, CopyingTokensOutsideCaptureIsInert) {
  SComplexTok a;
  a.id = 9;
  SComplexTok b(a);  // wrapper copy-ctors run; must not disturb the table
  EXPECT_EQ(b.id.get(), 9);
  EXPECT_EQ(FieldTable::of<SComplexTok>().field_count(), 4u);
}

// --- Registry ---------------------------------------------------------------

TEST(Registry, FindByIdAndName) {
  const TokenTypeInfo& info = SCharToken::staticTypeInfo();
  EXPECT_EQ(info.name, "SCharToken");
  EXPECT_EQ(&TokenRegistry::instance().find(info.id), &info);
  EXPECT_EQ(&TokenRegistry::instance().find_by_name("SCharToken"), &info);
  EXPECT_TRUE(TokenRegistry::instance().contains(info.id));
}

TEST(Registry, UnknownIdThrowsNotFound) {
  try {
    TokenRegistry::instance().find(0xdeadbeefdeadbeefull);
    FAIL() << "expected not_found";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kNotFound);
  }
}

TEST(Registry, CorruptTypeTagRejected) {
  Writer w;
  serialize_token(SCharToken('a', 1), w);
  auto bytes = w.take();
  bytes[0] = std::byte{0xFF};  // clobber the type id
  Reader r(bytes.data(), bytes.size());
  EXPECT_THROW((void)deserialize_token(r), Error);
}

TEST(Registry, CloneProducesIndependentObject) {
  SComplexTok in;
  in.id = 1;
  in.numbers.push_back(10);
  auto c = token_cast<SComplexTok>(clone_token(in));
  ASSERT_TRUE(c);
  c->numbers[0] = 99;
  EXPECT_EQ(in.numbers[0], 10);
}

// --- Ptr<> ------------------------------------------------------------------

struct SProbeToken : SimpleToken {
  static inline int live = 0;
  SProbeToken() { ++live; }
  SProbeToken(const SProbeToken&) = delete;
  ~SProbeToken() override { --live; }
  DPS_IDENTIFY(SProbeToken);
};

TEST(Ptr, DeletesAtZero) {
  {
    Ptr<SProbeToken> p(new SProbeToken);
    EXPECT_EQ(SProbeToken::live, 1);
    {
      Ptr<SProbeToken> q = p;
      EXPECT_EQ(p->token_refs(), 2u);
    }
    EXPECT_EQ(p->token_refs(), 1u);
  }
  EXPECT_EQ(SProbeToken::live, 0);
}

TEST(Ptr, MoveDoesNotChangeCount) {
  Ptr<SProbeToken> p(new SProbeToken);
  Ptr<SProbeToken> q(std::move(p));
  EXPECT_FALSE(p);
  EXPECT_EQ(q->token_refs(), 1u);
  q.reset();
  EXPECT_EQ(SProbeToken::live, 0);
}

TEST(Ptr, UpcastAndTokenCast) {
  Ptr<SCharToken> c(new SCharToken('z', 3));
  Ptr<Token> t = c;  // upcast
  EXPECT_EQ(t->token_refs(), 2u);
  auto back = token_cast<SCharToken>(t);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->chr, 'z');
  auto wrong = token_cast<SComplexTok>(t);
  EXPECT_FALSE(wrong);
}

TEST(Ptr, SharedIntrusiveCountFromRaw) {
  SProbeToken* raw = new SProbeToken;
  Ptr<SProbeToken> a(raw);
  Ptr<SProbeToken> b(raw);  // second wrap of the same raw pointer is safe
  EXPECT_EQ(raw->token_refs(), 2u);
  a.reset();
  EXPECT_EQ(SProbeToken::live, 1);
  b.reset();
  EXPECT_EQ(SProbeToken::live, 0);
}

// --- Hashing ----------------------------------------------------------------

TEST(Fnv, KnownVectorsAndDistinctness) {
  EXPECT_EQ(fnv1a(""), 14695981039346656037ull);
  EXPECT_NE(fnv1a("SCharToken"), fnv1a("charToken"));
  EXPECT_EQ(fnv1a("SCharToken"), SCharToken::staticTypeInfo().id);
}

// --- Arithmetic sizing + the encode buffer pool ----------------------------
//
// The transmit path sizes every encode up front (serialized_token_size) and
// draws an exact-size buffer from the pool, so a serialize must never grow
// the writer. These tests pin the size arithmetic to the actual bytes
// produced for every token family.

size_t actual_serialized_size(const Token& t) {
  Writer w;
  serialize_token(t, w);
  return w.size();
}

TEST(SizedEncode, SimpleTokenSizeMatchesBytes) {
  SCharToken t('x', 99);
  EXPECT_EQ(serialized_token_size(t), actual_serialized_size(t));
  SEmptyToken e;
  EXPECT_EQ(serialized_token_size(e), actual_serialized_size(e));
}

TEST(SizedEncode, ComplexTokenSizeMatchesBytes) {
  SComplexTok t;
  t.id = 7;
  t.name = std::string("a complex token with a heap string");
  t.children.resize(3);
  for (size_t i = 0; i < 3; ++i) {
    t.children[i].id = static_cast<int>(i);
    t.children[i].label = "child-" + std::to_string(i);
  }
  t.numbers.resize(17);
  EXPECT_EQ(serialized_token_size(t), actual_serialized_size(t));

  SDerivedTok d;
  d.id = 1;
  d.name = std::string("derived");
  d.extra = 2.5;
  EXPECT_EQ(serialized_token_size(d), actual_serialized_size(d));

  SNestingTok n;
  n.direct.label = std::string("direct");
  n.wrapped.get().label = std::string("wrapped");
  EXPECT_EQ(serialized_token_size(n), actual_serialized_size(n));
}

TEST(SizedEncode, ReservedWriterNeverGrows) {
  SComplexTok t;
  t.name = std::string(200, 'n');
  t.numbers.resize(64);
  const size_t need = serialized_token_size(t);
  Writer w;
  w.reserve(need);
  serialize_token(t, w);
  EXPECT_EQ(w.size(), need);
  EXPECT_EQ(w.growth_count(), 0u)
      << "an exact reserve must absorb the whole encode";

  Writer tight;  // no reserve: the growth counter must notice
  serialize_token(t, tight);
  EXPECT_GT(tight.growth_count(), 0u);
}

TEST(BufferPoolTest, RecyclesCapacityAndCountsStats) {
  BufferPool& pool = BufferPool::instance();
  pool.trim();
  pool.reset_stats();

  std::vector<std::byte> a = pool.acquire(512);
  EXPECT_GE(a.capacity(), 512u);
  EXPECT_TRUE(a.empty());
  pool.release(std::move(a));

  // The freed capacity must satisfy the next fitting request without a
  // fresh allocation.
  std::vector<std::byte> b = pool.acquire(256);
  EXPECT_GE(b.capacity(), 256u);
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.releases, 1u);
  EXPECT_EQ(s.reuses, 1u);
  EXPECT_EQ(s.encode_growths, 0u);
  pool.release(std::move(b));
  pool.trim();
  pool.reset_stats();
}

TEST(BufferPoolTest, OversizedBuffersAreNotRetained) {
  BufferPool& pool = BufferPool::instance();
  pool.trim();
  pool.reset_stats();
  std::vector<std::byte> huge;
  huge.reserve((1 << 20) + 1);  // beyond the per-buffer retention cap
  pool.release(std::move(huge));
  EXPECT_EQ(pool.stats().dropped, 1u);
  pool.reset_stats();
}

}  // namespace
}  // namespace dps
