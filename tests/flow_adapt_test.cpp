// Property tests for the adaptive split flow-control window
// (src/core/flow_adapt.hpp). AdaptiveWindow is a pure state machine, so the
// properties are driven with injected signals and seeded randomness:
//
//  * bounds      — the window never leaves [floor, ceiling] under ANY signal
//                  sequence, and a tenant ceiling below the floor wins;
//  * monotone    — from an identical controller state, one ack with worse
//                  signals (higher RTT, deeper receiver queue) never yields
//                  a LARGER window than an ack with better signals;
//  * convergence — persistent health drives the window to the ceiling,
//                  persistent congestion to the floor, in bounded acks; and
//                  end-to-end on the simulated matmul the adaptive engine
//                  path lands within 5% of the best static window (the
//                  bench/ablation_flowctl gate, asserted here at test size).
//
// Randomized cases replay via DPS_TEST_SEED=<seed> ./dps_tests
// --gtest_filter=FlowAdapt.*
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "apps/matmul.hpp"
#include "core/flow_adapt.hpp"
#include "test_seed.hpp"

namespace dps {
namespace {

TEST(FlowAdapt, WindowStaysWithinBoundsUnderRandomSignals) {
  const uint32_t seed = dps_testing::effective_seed(0xf10a);
  SCOPED_TRACE(::testing::Message() << "seed " << seed);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> rtt(1e-6, 5e-3);
  std::uniform_int_distribution<uint64_t> depth(0, 256);
  std::uniform_int_distribution<uint32_t> acks(1, 8);
  for (uint32_t ceiling : {1u, 2u, 3u, 8u, 64u, 1024u}) {
    AdaptiveWindow w(ceiling);
    const uint32_t lo = w.floor();
    const uint32_t hi = w.ceiling();
    ASSERT_LE(lo, hi);
    for (int step = 0; step < 2000; ++step) {
      w.on_ack(rtt(rng), depth(rng), acks(rng));
      ASSERT_GE(w.window(), lo) << "ceiling " << ceiling << " step " << step;
      ASSERT_LE(w.window(), hi) << "ceiling " << ceiling << " step " << step;
    }
  }
}

TEST(FlowAdapt, TenantCeilingBelowFloorWins) {
  AdaptiveWindowConfig cfg;
  cfg.min_window = 4;
  AdaptiveWindow w(2, cfg);  // tenant allows at most 2 in flight
  EXPECT_EQ(w.ceiling(), 2u);
  EXPECT_EQ(w.floor(), 2u) << "the floor must drop to the ceiling, never "
                              "raise the tenant's limit";
  EXPECT_LE(w.window(), 2u);
  for (int i = 0; i < 100; ++i) {
    w.on_ack(1e-4, 0, 1);  // perfectly healthy: still must not exceed 2
    ASSERT_LE(w.window(), 2u);
  }
}

// Step response is monotone in the signals: clone one controller state,
// feed the twin a strictly worse ack, and the twin may never end up with
// the bigger window.
TEST(FlowAdapt, StepResponseMonotoneInSignals) {
  const uint32_t seed = dps_testing::effective_seed(0xf10b);
  SCOPED_TRACE(::testing::Message() << "seed " << seed);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> rtt(1e-5, 2e-3);
  std::uniform_int_distribution<uint64_t> depth(0, 128);
  std::uniform_int_distribution<int> len(0, 200);
  for (int trial = 0; trial < 200; ++trial) {
    AdaptiveWindow base(64);
    const int prefix = len(rng);
    for (int i = 0; i < prefix; ++i) base.on_ack(rtt(rng), depth(rng), 1);

    AdaptiveWindow good = base;  // identical state
    AdaptiveWindow bad = base;
    const double r = rtt(rng);
    const uint64_t d = depth(rng);
    good.on_ack(r, d, 1);
    bad.on_ack(r * 4, d + 64, 1);  // worse RTT, deeper receiver queue
    ASSERT_LE(bad.window(), good.window())
        << "trial " << trial << ": worse signals produced a larger window";
  }
}

TEST(FlowAdapt, ConvergesToCeilingWhenHealthy) {
  AdaptiveWindow w(32);
  // Flat RTT at the floor value, empty receiver queue: pure health. The
  // additive increase must reach the ceiling within ceiling windows-of-acks
  // (sum of window sizes is < 32*32 acks).
  int acks_needed = 0;
  while (w.window() < w.ceiling() && acks_needed < 32 * 32 + 1) {
    w.on_ack(1e-4, 0, 1);
    ++acks_needed;
  }
  EXPECT_EQ(w.window(), w.ceiling())
      << "healthy signals must grow the window to the tenant ceiling";
}

TEST(FlowAdapt, ConvergesToFloorWhenCongested) {
  AdaptiveWindowConfig cfg;
  cfg.initial = 1024;
  AdaptiveWindow w(1024, cfg);
  // Receiver queue pinned far beyond depth_high: multiplicative decrease
  // must reach the floor in ~log2(1024) adjustments; each adjustment takes
  // at most one window-of-acks.
  for (int i = 0; i < 1024 * 16 && w.window() > w.floor(); ++i) {
    w.on_ack(5e-3, 10000, 16);
  }
  EXPECT_EQ(w.window(), w.floor())
      << "persistent congestion must shrink the window to the floor";
}

// RTT inflation alone (no queue-depth signal) must also shrink the window:
// srtt beyond choke * rtt_min is the Vegas-style congestion verdict.
TEST(FlowAdapt, RttInflationAloneShrinksWindow) {
  AdaptiveWindowConfig cfg;
  cfg.initial = 16;
  AdaptiveWindow w(64, cfg);
  for (int i = 0; i < 32; ++i) w.on_ack(1e-4, 0, 1);  // establish rtt_min
  const uint32_t before = w.window();
  for (int i = 0; i < 256; ++i) w.on_ack(5e-3, 0, 1);  // 50x the floor RTT
  EXPECT_LT(w.window(), before)
      << "a 50x RTT inflation must register as congestion";
  EXPECT_EQ(w.window(), w.floor());
}

// End-to-end convergence on the engine path: the adaptive controller,
// driven by real flow-credit RTTs and piggybacked queue depths on the
// simulated matmul, must land within 5% of the best static window found by
// a sweep — the same gate bench/ablation_flowctl enforces at full size.
TEST(FlowAdapt, AdaptiveWithinFivePercentOfBestStaticOnSimMatmul) {
  constexpr int kN = 128;
  constexpr int kS = 8;
  constexpr int kWorkers = 4;
  constexpr double kRate = 220e6;
  auto run = [&](uint32_t window, bool adaptive) {
    ClusterConfig cfg = ClusterConfig::simulated(kWorkers + 1);
    cfg.flow_window = window;
    cfg.adaptive_flow = adaptive;
    Cluster cluster(cfg);
    Application app(cluster, "matmul");
    auto graph = apps::build_matmul_graph(app, kWorkers);
    ActorScope scope(cluster.domain(), "main");
    la::Matrix a(kN, kN);
    la::Matrix b(kN, kN);
    const double t0 = cluster.domain().now();
    (void)apps::run_matmul(*graph, a, b, kS, kRate);
    return cluster.domain().now() - t0;
  };
  double best = -1;
  for (uint32_t window : {1u, 2u, 4u, 8u, 16u, 64u}) {
    const double dt = run(window, false);
    if (best < 0 || dt < best) best = dt;
  }
  const double adaptive = run(1024, true);
  EXPECT_LE(adaptive, best / 0.95)
      << "adaptive " << adaptive * 1e3 << " ms vs best static " << best * 1e3
      << " ms";
}

}  // namespace
}  // namespace dps
