// Seed plumbing for randomized tests. Every randomized test derives its RNG
// seed through effective_seed() and prints it via SCOPED_TRACE, so a failure
// report always names the seed that reproduces it:
//
//   DPS_TEST_SEED=1234 ./dps_tests --gtest_filter=Seeds/RandomPipeline.*
//
// When DPS_TEST_SEED is set it overrides the per-instance base seed, making
// every instance replay the one failing configuration.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace dps_testing {

/// True when DPS_TEST_SEED is set in the environment; *out receives it
/// (decimal, or hex with a 0x prefix).
inline bool env_seed(uint32_t* out) {
  const char* s = std::getenv("DPS_TEST_SEED");
  if (s == nullptr || *s == '\0') return false;
  *out = static_cast<uint32_t>(std::strtoul(s, nullptr, 0));
  return true;
}

/// The seed a randomized test should actually use: DPS_TEST_SEED when set,
/// otherwise the test's own base seed.
inline uint32_t effective_seed(uint32_t base) {
  uint32_t env = 0;
  return env_seed(&env) ? env : base;
}

}  // namespace dps_testing
