// Parallel-service tests: one application publishes a flow graph, another
// calls it — directly (call_service) and as a vertex inside its own graph
// (ServiceNode), the paper's Fig. 10 inter-application graph call.
#include <gtest/gtest.h>

#include "core/application.hpp"
#include "core/controller.hpp"
#include "util/mapping.hpp"

namespace dps {
namespace {

class QueryToken : public SimpleToken {
 public:
  int key;
  QueryToken(int k = 0) : key(k) {}
  DPS_IDENTIFY(QueryToken);
};

class PartToken : public SimpleToken {
 public:
  int key;
  int part;
  int value;
  PartToken(int k = 0, int p = 0, int v = 0) : key(k), part(p), value(v) {}
  DPS_IDENTIFY(PartToken);
};

class AnswerToken : public SimpleToken {
 public:
  int key;
  int value;
  AnswerToken(int k = 0, int v = 0) : key(k), value(v) {}
  DPS_IDENTIFY(AnswerToken);
};

class SMainThread : public Thread {
  DPS_IDENTIFY_THREAD(SMainThread);
};

class SStoreThread : public Thread {
 public:
  int served = 0;  // how many part-reads this store thread handled
  DPS_IDENTIFY_THREAD(SStoreThread);
};

DPS_ROUTE(SMainQueryRoute, SMainThread, QueryToken, 0);
DPS_ROUTE(SMainPartRoute, SMainThread, PartToken, 0);
DPS_ROUTE(SStorePartRoute, SStoreThread, PartToken,
          currentToken->part % threadCount());

// --- The service: a "distributed store" application -------------------------
// Split a query to every store thread; each contributes key * (part+1);
// merge sums the parts. The expected answer for `parts` threads is
// key * parts * (parts+1) / 2.

class QuerySplit
    : public SplitOperation<SMainThread, TV1(QueryToken), TV1(PartToken)> {
 public:
  void execute(QueryToken* in) override {
    for (int p = 0; p < kParts; ++p) postToken(new PartToken(in->key, p, 0));
  }
  static inline int kParts = 4;
  DPS_IDENTIFY_OPERATION(QuerySplit);
};

class ReadPart
    : public LeafOperation<SStoreThread, TV1(PartToken), TV1(PartToken)> {
 public:
  void execute(PartToken* in) override {
    thread()->served++;
    postToken(new PartToken(in->key, in->part, in->key * (in->part + 1)));
  }
  DPS_IDENTIFY_OPERATION(ReadPart);
};

class AnswerMerge
    : public MergeOperation<SMainThread, TV1(PartToken), TV1(AnswerToken)> {
 public:
  void execute(PartToken* first) override {
    int key = first->key;
    int sum = first->value;
    while (auto t = waitForNextToken()) {
      sum += token_cast<PartToken>(t)->value;
    }
    postToken(new AnswerToken(key, sum));
  }
  DPS_IDENTIFY_OPERATION(AnswerMerge);
};

std::shared_ptr<Flowgraph> build_store_service(Application& app, int parts) {
  QuerySplit::kParts = parts;
  auto mains = app.thread_collection<SMainThread>("svc-main");
  mains->map(app.cluster().node_name(0));
  auto stores = app.thread_collection<SStoreThread>("svc-store");
  std::vector<std::string> nodes;
  for (size_t i = 0; i < app.cluster().node_count(); ++i) {
    nodes.push_back(app.cluster().node_name(static_cast<NodeId>(i)));
  }
  stores->map(round_robin_mapping(nodes, parts));
  FlowgraphBuilder b = FlowgraphNode<QuerySplit, SMainQueryRoute>(mains) >>
                       FlowgraphNode<ReadPart, SStorePartRoute>(stores) >>
                       FlowgraphNode<AnswerMerge, SMainPartRoute>(mains);
  return app.build_graph(b, "store-read");
}

TEST(Services, DirectServiceCall) {
  Cluster cluster(ClusterConfig::inproc(2));
  Application service(cluster, "store");
  auto graph = build_store_service(service, 4);
  service.publish_graph(graph, "store/read");

  Application client(cluster, "client", 1);  // home on node1
  ActorScope scope(cluster.domain(), "main");
  auto answer =
      token_cast<AnswerToken>(client.call_service("store/read", new QueryToken(7)));
  ASSERT_TRUE(answer);
  EXPECT_EQ(answer->key, 7);
  EXPECT_EQ(answer->value, 7 * (1 + 2 + 3 + 4));
}

TEST(Services, CallRejectsWrongTokenType) {
  Cluster cluster(ClusterConfig::inproc(1));
  Application service(cluster, "store");
  auto graph = build_store_service(service, 2);
  service.publish_graph(graph, "store/read");
  Application client(cluster, "client");
  ActorScope scope(cluster.domain(), "main");
  try {
    (void)client.call_service("store/read", new AnswerToken(1, 2));
    FAIL() << "expected type mismatch";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kTypeMismatch);
  }
}

// --- Client graph embedding the service as a vertex (Fig. 10) ---------------

class ClientSplit
    : public SplitOperation<SMainThread, TV1(QueryToken), TV1(QueryToken)> {
 public:
  void execute(QueryToken* in) override {
    // Fan out several queries keyed 1..n.
    for (int k = 1; k <= in->key; ++k) postToken(new QueryToken(k));
  }
  DPS_IDENTIFY_OPERATION(ClientSplit);
};

DPS_ROUTE(SMainQuerySpreadRoute, SMainThread, QueryToken,
          currentToken->key % threadCount());
DPS_ROUTE(SMainAnswerRoute, SMainThread, AnswerToken, 0);

class ClientMerge
    : public MergeOperation<SMainThread, TV1(AnswerToken), TV1(AnswerToken)> {
 public:
  void execute(AnswerToken* first) override {
    int total = first->value;
    while (auto t = waitForNextToken()) {
      total += token_cast<AnswerToken>(t)->value;
    }
    postToken(new AnswerToken(0, total));
  }
  DPS_IDENTIFY_OPERATION(ClientMerge);
};

TEST(Services, ServiceAsGraphVertex) {
  Cluster cluster(ClusterConfig::inproc(3));
  Application service(cluster, "store");
  auto svc_graph = build_store_service(service, 3);
  service.publish_graph(svc_graph, "store/read");

  Application client(cluster, "client", 2);
  auto mains = client.thread_collection<SMainThread>("cli-main");
  mains->map("node2 node2");
  // split -> [service call] -> merge: the called graph appears as a leaf.
  FlowgraphBuilder b =
      FlowgraphNode<ClientSplit, SMainQueryRoute>(mains) >>
      ServiceNode<SMainQuerySpreadRoute, TV1(QueryToken), TV1(AnswerToken)>(
          mains, "store/read") >>
      FlowgraphNode<ClientMerge, SMainAnswerRoute>(mains);
  auto client_graph = client.build_graph(b, "client-batch");

  ActorScope scope(cluster.domain(), "main");
  auto result =
      token_cast<AnswerToken>(client_graph->call(new QueryToken(5)));
  ASSERT_TRUE(result);
  // sum over k=1..5 of k*(1+2+3) = 15 * 6
  EXPECT_EQ(result->value, 15 * 6);
}

TEST(Services, ServiceVertexUnderVirtualTime) {
  Cluster cluster(ClusterConfig::simulated(3));
  Application service(cluster, "store");
  auto svc_graph = build_store_service(service, 3);
  service.publish_graph(svc_graph, "store/read");

  Application client(cluster, "client", 2);
  auto mains = client.thread_collection<SMainThread>("cli-main");
  mains->map("node2 node2");
  FlowgraphBuilder b =
      FlowgraphNode<ClientSplit, SMainQueryRoute>(mains) >>
      ServiceNode<SMainQuerySpreadRoute, TV1(QueryToken), TV1(AnswerToken)>(
          mains, "store/read") >>
      FlowgraphNode<ClientMerge, SMainAnswerRoute>(mains);
  auto client_graph = client.build_graph(b, "client-batch");

  ActorScope scope(cluster.domain(), "main");
  auto result =
      token_cast<AnswerToken>(client_graph->call(new QueryToken(4)));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->value, (1 + 2 + 3 + 4) * 6);
  EXPECT_GT(cluster.domain().now(), 0.0);
}

TEST(Services, LateServicePublication) {
  // A service call issued before publish_graph blocks until the service
  // appears (the paper's lazily started applications).
  Cluster cluster(ClusterConfig::inproc(1));
  Application service(cluster, "store");
  auto graph = build_store_service(service, 2);

  Application client(cluster, "client");
  ActorScope scope(cluster.domain(), "main");
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    service.publish_graph(graph, "store/late");
  });
  auto answer = token_cast<AnswerToken>(
      client.call_service("store/late", new QueryToken(3)));
  publisher.join();
  ASSERT_TRUE(answer);
  EXPECT_EQ(answer->value, 3 * (1 + 2));
}

}  // namespace
}  // namespace dps
