// NEGATIVE-COMPILE CASE — must NOT build.
//
// DPS_IDENTIFY requires a default constructor: the deserialization factory
// creates a blank token before filling it from the wire (the paper's
// CharToken gives every constructor parameter a default value for exactly
// this reason). Expected diagnostic: "tokens need a default constructor".
#include "serial/registry.hpp"
#include "serial/token.hpp"

namespace {

class NoDefault : public dps::SimpleToken {
 public:
  explicit NoDefault(int v) : v_(v) {}  // no default value -> no factory
  int v_;
  DPS_IDENTIFY(NoDefault);
};

}  // namespace
