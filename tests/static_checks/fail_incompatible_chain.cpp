// NEGATIVE-COMPILE CASE — must NOT build.
//
// operator>> must reject a chain where no output token type of the left
// operation is accepted by the right operation (paper: "The operator >>
// generates compile time errors when two incompatible operations are
// linked together"). EmitsA only emits TokA; WantsB only accepts TokB.
// Expected diagnostic: "incompatible operations linked with >>".
#include "core/flowgraph.hpp"
#include "core/operation.hpp"
#include "core/route.hpp"

namespace {

using namespace dps;

class TokA : public SimpleToken {
 public:
  int v = 0;
  DPS_IDENTIFY(TokA);
};

class TokB : public SimpleToken {
 public:
  int v = 0;
  DPS_IDENTIFY(TokB);
};

class WorkThread : public Thread {
  DPS_IDENTIFY_THREAD(WorkThread);
};

DPS_ROUTE(RouteA, WorkThread, TokA, 0);
DPS_ROUTE(RouteB, WorkThread, TokB, 0);

class EmitsA : public LeafOperation<WorkThread, TV1(TokA), TV1(TokA)> {
 public:
  void execute(TokA* in) override { postToken(new TokA(*in)); }
  DPS_IDENTIFY_OPERATION(EmitsA);
};

class WantsB : public LeafOperation<WorkThread, TV1(TokB), TV1(TokB)> {
 public:
  void execute(TokB* in) override { postToken(new TokB(*in)); }
  DPS_IDENTIFY_OPERATION(WantsB);
};

// Instantiating the operator>> body is what trips the static_assert; no
// runtime objects are needed.
auto chain(const FlowgraphNode<EmitsA, RouteA>& a,
           const FlowgraphNode<WantsB, RouteB>& b) {
  return a >> b;
}

}  // namespace
