// NEGATIVE-COMPILE CASE — must NOT build.
//
// postTokenMulticast() must enforce the same compile-time routing contract
// as postToken(): the multicast payload type has to be in the operation's
// declared output list, or successor selection by token type breaks for
// every replica at once. Expected diagnostic:
// "postTokenMulticast: type is not in this operation's output list".
#include "core/operation.hpp"

#include <vector>

namespace {

using namespace dps;

class TokA : public SimpleToken {
 public:
  int v = 0;
  DPS_IDENTIFY(TokA);
};

class TokB : public SimpleToken {
 public:
  int v = 0;
  DPS_IDENTIFY(TokB);
};

class WorkThread : public Thread {
  DPS_IDENTIFY_THREAD(WorkThread);
};

class SneakyMulticast : public LeafOperation<WorkThread, TV1(TokA), TV1(TokA)> {
 public:
  void execute(TokA*) override {
    // TokB is not in the output list TV1(TokA).
    postTokenMulticast(new TokB(), std::vector<int>{0, 1});
  }
  DPS_IDENTIFY_OPERATION(SneakyMulticast);
};

}  // namespace
