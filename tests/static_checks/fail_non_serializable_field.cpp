// NEGATIVE-COMPILE CASE — must NOT build.
//
// CT<T> only wraps types the wire format can handle: trivially copyable
// values, std::string, or nested field-bearing structs. A CT<std::vector>
// member would silently truncate to the vector's header bytes, so the
// wrapper rejects it at compile time (Vector<> is the right tool there).
// Expected diagnostic: "supports trivially copyable types".
#include <vector>

#include "serial/fields.hpp"
#include "serial/token.hpp"

namespace {

class BadFields : public dps::ComplexToken {
 public:
  dps::CT<std::vector<int>> values;  // not trivially copyable, not a string
};

}  // namespace
