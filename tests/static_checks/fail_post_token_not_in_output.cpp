// NEGATIVE-COMPILE CASE — must NOT build.
//
// postToken() must reject token types that are not in the operation's
// declared output list — otherwise the graph's compile-time routing
// contract (successor selection by token type) would be violated at
// runtime. Expected diagnostic: "not in this operation's output list".
#include "core/operation.hpp"

namespace {

using namespace dps;

class TokA : public SimpleToken {
 public:
  int v = 0;
  DPS_IDENTIFY(TokA);
};

class TokB : public SimpleToken {
 public:
  int v = 0;
  DPS_IDENTIFY(TokB);
};

class WorkThread : public Thread {
  DPS_IDENTIFY_THREAD(WorkThread);
};

class Sneaky : public LeafOperation<WorkThread, TV1(TokA), TV1(TokA)> {
 public:
  void execute(TokA*) override {
    postToken(new TokB());  // TokB is not in the output list TV1(TokA)
  }
  DPS_IDENTIFY_OPERATION(Sneaky);
};

}  // namespace
