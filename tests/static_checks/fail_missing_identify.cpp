// NEGATIVE-COMPILE CASE — must NOT build.
//
// A token class that never invoked DPS_IDENTIFY has no staticTypeInfo(),
// so it cannot appear in an operation's input/output type list: the
// framework could not look up its factory during deserialization. The
// failure surfaces in tl::type_ids<> (which forces registration of every
// listed type). Expected diagnostic mentions "staticTypeInfo".
#include <cstdint>
#include <vector>

#include "core/typelist.hpp"
#include "serial/token.hpp"

namespace {

class Unregistered : public dps::SimpleToken {
 public:
  int v = 0;
  // DPS_IDENTIFY(Unregistered) deliberately missing.
};

std::vector<uint64_t> ids() {
  return dps::tl::type_ids<dps::TV<Unregistered>>::get();
}

}  // namespace
