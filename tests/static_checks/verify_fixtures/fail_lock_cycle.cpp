// verify_fixtures: an A->B / B->A lock-order inversion.
//
// forward() acquires a_ then b_; backward() acquires b_ then a_. Run
// concurrently they deadlock. dps_verify's acquisition graph must contain
// both edges and report the strongly connected component as a cycle.
//
// DPS-VERIFY-EXPECT: lock-order
// DPS-VERIFY-EXPECT: potential deadlock cycle

struct Mutex {
  void lock();
  void unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

struct Engine {
  Mutex a_;
  Mutex b_;
  void forward();
  void backward();
};

void Engine::forward() {
  MutexLock la(a_);
  MutexLock lb(b_);  // a_ -> b_
}

void Engine::backward() {
  MutexLock lb(b_);
  MutexLock la(a_);  // BUG: b_ -> a_ inverts forward()'s order
}
