// verify_fixtures: reduced reproduction of the PR 6 flow-window leak.
//
// The split path created a flow account sized to the tenant's window, but
// the empty-fanout early return skipped finish_flow_account — so every
// empty split shrank the tenant's window permanently ("a window that can
// never refill"). dps_verify's path-sensitive protocol check must flag the
// early-return path that drops the account.
//
// This corpus is analyzed, never compiled: each fixture is self-contained
// (local stub declarations, no includes) and is asserted by ctest
// Lint.DpsVerifyFixtures to produce exactly its expected diagnostics.
//
// DPS-VERIFY-EXPECT: protocol[flow-account]
// DPS-VERIFY-EXPECT: returns without releasing
// DPS-VERIFY-EXPECT: window can never refill

using ContextId = unsigned long long;

struct Controller {
  ContextId new_context_id();
  void create_flow_account(ContextId ctx, unsigned window);
  void finish_flow_account(ContextId ctx);
  void post(int item);
};

void run_split(Controller& controller, int fanout) {
  ContextId ctx = controller.new_context_id();
  controller.create_flow_account(ctx, 32);
  if (fanout == 0) {
    return;  // BUG: the account is never finished on this path
  }
  for (int i = 0; i < fanout; ++i) {
    controller.post(i);
  }
  controller.finish_flow_account(ctx);
}
