// verify_fixtures: a silently discarded Errc result.
//
// The service mesh reports backpressure through Errc return values in a
// few non-throwing paths; dropping one on the floor means a shed call
// looks like a successful one. dps_verify's discard check must flag the
// bare statement-expression call; the `(void)` cast below is the
// sanctioned explicit discard and must NOT be flagged.
//
// DPS-VERIFY-EXPECT: discard: result of probe_backlog()
// DPS-VERIFY-EXPECT: silently dropped

enum class Errc { kOk, kBackpressure };

struct Mesh {
  Errc probe_backlog();
  void shed();
  void step();
  void tick();
};

Errc Mesh::probe_backlog() { return Errc::kOk; }

void Mesh::step() {
  probe_backlog();  // BUG: Errc dropped — backpressure goes unnoticed
}

void Mesh::tick() {
  (void)probe_backlog();  // explicit discard: allowed
  Errc e = probe_backlog();
  if (e == Errc::kBackpressure) {
    shed();
  }
}
