// verify_fixtures: the corrected protocol patterns — must produce ZERO
// findings (asserted by the pass_* rule in dps_verify --check-fixtures).
//
// This is the shape the PR 6/PR 7 fixes actually shipped: every path out
// of the creating function finishes the flow account — including the
// exception edge out of a poisoned flow_acquire, which is covered by a
// catch-all that releases before rethrowing — the early return releases
// before leaving, lock order is consistent across both functions, and the
// Errc result is consumed.

using ContextId = unsigned long long;

struct Controller {
  ContextId new_context_id();
  void create_flow_account(ContextId ctx, unsigned window);
  void finish_flow_account(ContextId ctx);
  void flow_acquire(ContextId ctx, unsigned min_window);
  void send_now(int item);
};

void run_split(Controller& controller, int fanout) {
  ContextId ctx = controller.new_context_id();
  controller.create_flow_account(ctx, 32);
  if (fanout == 0) {
    controller.finish_flow_account(ctx);  // early exit still releases
    return;
  }
  try {
    for (int i = 0; i < fanout; ++i) {
      controller.flow_acquire(ctx, 1);
      controller.send_now(i);
    }
  } catch (...) {
    controller.finish_flow_account(ctx);  // exception edge releases too
    throw;
  }
  controller.finish_flow_account(ctx);
}

struct Mutex {
  void lock();
  void unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};

struct Engine {
  Mutex a_;
  Mutex b_;
  void forward();
  void also_forward();
};

void Engine::forward() {
  MutexLock la(a_);
  MutexLock lb(b_);  // a_ -> b_
}

void Engine::also_forward() {
  MutexLock la(a_);
  MutexLock lb(b_);  // same order: no cycle
}

enum class Errc { kOk, kBackpressure };

struct Mesh {
  Errc probe_backlog();
  void shed();
  void step();
};

Errc Mesh::probe_backlog() { return Errc::kOk; }

void Mesh::step() {
  if (probe_backlog() == Errc::kBackpressure) {
    shed();  // result consumed, not discarded
  }
}
