// verify_fixtures: a flight-recorder touch that survives trace-off builds.
//
// The first record() call is not inside any #ifdef DPS_TRACE region, so it
// is compiled into production builds; the second is properly gated and the
// third sits under a condition the analyzer must evaluate (not pattern
// match) as unreachable when DPS_TRACE is undefined. Exactly one finding.
//
// DPS-VERIFY-EXPECT: trace-gate
// DPS-VERIFY-EXPECT: can survive preprocessing with DPS_TRACE undefined

namespace obs {
struct Trace {
  static Trace& instance();
  void record(int v);
};
}  // namespace obs

void hot_path(int v) {
  obs::Trace::instance().record(v);  // BUG: lives in trace-off builds
#ifdef DPS_TRACE
  obs::Trace::instance().record(v + 1);  // correctly gated
#endif
#if defined(DPS_TRACE) && !defined(NDEBUG)
  obs::Trace::instance().record(v + 2);  // gated by a compound condition
#endif
}
