// verify_fixtures: a BufferPool buffer dropped on an early return.
//
// encode_frame acquires a pooled buffer, but the validation early-return
// neither releases it nor hands it off, so the pool's capacity shrinks by
// one buffer per bad frame. The success path hands the buffer to
// release() and must not be flagged.
//
// DPS-VERIFY-EXPECT: protocol[buffer-pool]
// DPS-VERIFY-EXPECT: returns without releasing

struct Buffer {
  unsigned char* data();
  unsigned long size();
};

struct BufferPool {
  static BufferPool& instance();
  Buffer acquire(unsigned long size_hint);
  void release(Buffer buf);
};

bool encode_frame(unsigned long length) {
  Buffer buf = BufferPool::instance().acquire(length);
  if (length == 0) {
    return false;  // BUG: buf is dropped — pool capacity leaks
  }
  BufferPool::instance().release(buf);
  return true;
}
