// verify_fixtures: reduced reproduction of the PR 7 skipped-release bug.
//
// The split loop calls flow_acquire for every fan-out token; when the
// account is poisoned during shutdown, flow_acquire raises dps::Error —
// and the original code had no handler, so the exception propagated out
// of run() with the flow account still open. dps_verify must flag the
// exception edge out of flow_acquire (and the send) while the member
// handle split_ctx_ is live with no protective catch-all.
//
// DPS-VERIFY-EXPECT: protocol[flow-account]
// DPS-VERIFY-EXPECT: may raise out of flow_acquire()
// DPS-VERIFY-EXPECT: exception path drops the resource

using ContextId = unsigned long long;

struct Controller {
  ContextId new_context_id();
  unsigned tenant_window(unsigned tenant);
  void create_flow_account(ContextId ctx, unsigned window);
  void finish_flow_account(ContextId ctx);
  void flow_acquire(ContextId ctx, unsigned min_window);
  void send_now(int item);
};

struct ExecCtx {
  Controller& controller_;
  ContextId split_ctx_;
  unsigned tenant_;
  void run(int fanout);
};

void ExecCtx::run(int fanout) {
  split_ctx_ = controller_.new_context_id();
  controller_.create_flow_account(split_ctx_,
                                  controller_.tenant_window(tenant_));
  for (int i = 0; i < fanout; ++i) {
    // BUG: a poisoned account makes flow_acquire raise; nothing catches,
    // so the account above is never finished on that path.
    controller_.flow_acquire(split_ctx_, 1);
    controller_.send_now(i);
  }
  controller_.finish_flow_account(split_ctx_);
}
