// Compile-pass coverage of the core/typelist.hpp metafunctions. Every
// static_assert here is part of the contract the negative-compile cases in
// this directory lean on: operator>> uses intersects_v, postToken uses
// contains_v, and the operation base classes use all_tokens_v.
#include <type_traits>

#include "core/typelist.hpp"
#include "serial/token.hpp"

namespace {

using dps::TV;
namespace tl = dps::tl;

class A : public dps::SimpleToken {};
class B : public dps::SimpleToken {};
class C : public dps::ComplexToken {};
struct NotAToken {};

// TV<> size arithmetic.
static_assert(TV<>::size == 0);
static_assert(TV<A>::size == 1);
static_assert(TV<A, B, C>::size == 3);
static_assert(TV<A, A>::size == 2);  // duplicates are kept, not folded

// Membership.
static_assert(tl::contains_v<A, TV<A>>);
static_assert(tl::contains_v<B, TV<A, B, C>>);
static_assert(!tl::contains_v<C, TV<A, B>>);
static_assert(!tl::contains_v<A, TV<>>);
// Exact-type matching: a base class is not "contained" via its derived type.
static_assert(!tl::contains_v<dps::SimpleToken, TV<A>>);

// Intersection (the operator>> compatibility test).
static_assert(tl::intersects_v<TV<A, B>, TV<B, C>>);
static_assert(tl::intersects_v<TV<A>, TV<A>>);
static_assert(!tl::intersects_v<TV<A>, TV<B, C>>);
static_assert(!tl::intersects_v<TV<>, TV<A>>);
static_assert(!tl::intersects_v<TV<A>, TV<>>);
static_assert(!tl::intersects_v<TV<>, TV<>>);

// Token-ness of whole lists.
static_assert(tl::all_tokens_v<TV<A, B, C>>);
static_assert(tl::all_tokens_v<TV<>>);
static_assert(!tl::all_tokens_v<TV<NotAToken>>);
static_assert(!tl::all_tokens_v<TV<A, NotAToken>>);

// Paper-style arity macros expand to the same lists.
static_assert(std::is_same_v<TV1(A), TV<A>>);
static_assert(std::is_same_v<TV2(A, B), TV<A, B>>);

}  // namespace
