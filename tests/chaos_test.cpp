// Fault-tolerance tests (docs/FAULT_TOLERANCE.md): schedules running over a
// ChaosFabric that drops, duplicates, delays and severs traffic must produce
// results byte-identical to a clean run — and a node killed mid-call must
// surface as Error(kNodeDown) followed by checkpoint-based recovery, never a
// hang. All fault decisions are seed-pinned for reproducibility.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "apps/life.hpp"
#include "core/checkpoint.hpp"
#include "net/chaos_fabric.hpp"
#include "net/framing.hpp"
#include "net/inproc_transport.hpp"
#include "net/shm_fabric.hpp"
#include "net/tcp_transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_query.hpp"
#include "serial/wire.hpp"
#include "test_seed.hpp"
#include "tests/mcast_app.hpp"
#include "tests/toupper_app.hpp"

namespace dps {
namespace {

using apps::LifeApp;
using dps_tutorial::build_toupper_graph;
using dps_tutorial::StringToken;

constexpr const char* kPhrase =
    "the quick brown fox jumps over the lazy dog 0123456789";
constexpr const char* kPhraseUpper =
    "THE QUICK BROWN FOX JUMPS OVER THE LAZY DOG 0123456789";

ClusterConfig chaos_config(int nodes, const FaultPlan& plan,
                           std::shared_ptr<ChaosFabric>* out = nullptr) {
  ClusterConfig cfg = ClusterConfig::inproc(nodes);
  auto chaos = std::make_shared<ChaosFabric>(
      std::make_shared<InprocFabric>(static_cast<size_t>(nodes)), plan);
  if (out != nullptr) *out = chaos;
  cfg.external_fabric = chaos;
  cfg.fault.reliable = true;
  return cfg;
}

std::string run_toupper(const ClusterConfig& cfg) {
  Cluster cluster(cfg);
  Application app(cluster, "toupper");
  auto graph = build_toupper_graph(app, 4);
  ActorScope scope(cluster.domain(), "main");
  auto result = token_cast<StringToken>(graph->call(new StringToken(kPhrase)));
  return std::string(result->str, static_cast<size_t>(result->len));
}

TEST(Chaos, ToupperSurvivesDropSweep) {
  for (double drop : {0.0, 0.01, 0.10}) {
    FaultPlan plan;
    plan.seed = 0xd20b + static_cast<uint64_t>(drop * 100);
    plan.all.drop = drop;
    EXPECT_EQ(run_toupper(chaos_config(3, plan)), kPhraseUpper)
        << "drop rate " << drop;
  }
}

// Accounting soundness of the reliability layer: every injected drop of a
// kReliable data frame leaves that frame unacked, so the sender's timer must
// eventually resend it — at quiescence sum(retransmissions) >=
// frames_dropped(kReliable). The counters converge rather than match at any
// instant (a drop near the end of the run is only resent one RTO later), so
// the test polls both to a deadline before asserting. With DPS_TRACE
// compiled in, the same bound must hold for the dps.fabric.retransmits
// metric and the kRetransmit events in the flight recorder.
TEST(Chaos, RetransmitsAccountForInjectedDrops) {
  FaultPlan plan;
  plan.seed = 0x5e7a;
  plan.all.drop = 0.15;
  std::shared_ptr<ChaosFabric> chaos;
  Cluster cluster(chaos_config(3, plan, &chaos));

  if (obs::kTraceCompiled) {
    obs::Metrics::instance().reset();
    obs::Trace::instance().reset();
    obs::Trace::instance().configure(
        {/*enabled=*/true, /*sample_every=*/1, /*buffer_capacity=*/1u << 15});
  }

  Application app(cluster, "toupper");
  auto graph = build_toupper_graph(app, 4);
  ActorScope scope(cluster.domain(), "main");
  for (int i = 0; i < 3; ++i) {
    auto result =
        token_cast<StringToken>(graph->call(new StringToken(kPhrase)));
    ASSERT_TRUE(result);
    EXPECT_EQ(std::string(result->str, static_cast<size_t>(result->len)),
              kPhraseUpper);
  }

  // Poll to quiescence. Drops are sampled before retransmissions so the
  // compared pair is conservative: anything dropped after the first sample
  // can only raise the retransmit side.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  uint64_t drops = 0, retrans = 0;
  for (;;) {
    drops = chaos->frames_dropped(FrameKind::kReliable);
    retrans = 0;
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      retrans += cluster.controller(n).retransmissions();
    }
    if (drops > 0 && retrans >= drops) break;
    if (std::chrono::steady_clock::now() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(drops, 0u)
      << "15% loss over three graph calls must drop reliable frames";
  EXPECT_GE(retrans, drops)
      << "every dropped reliable frame must be retransmitted";

  if (obs::kTraceCompiled) {
    const obs::MetricsSnapshot snap = obs::Metrics::instance().snapshot();
    obs::TraceQuery q(obs::Trace::instance().collect());
    obs::Trace::instance().set_enabled(false);
    obs::Trace::instance().reset();
    // The metric is bumped at the same site as the controller counter and
    // sampled later, so it bounds both the counter and the injected drops.
    EXPECT_GE(snap.counter("dps.fabric.retransmits"), retrans);
    EXPECT_GE(snap.counter("dps.fabric.retransmits"), drops);
    EXPECT_GE(q.count(obs::EventKind::kRetransmit), drops)
        << "each retransmission must appear in the flight recorder";
    EXPECT_GT(q.count(obs::EventKind::kFabricSend), 0u);
  }
}

TEST(Chaos, ExactlyOnceUnderDuplication) {
  FaultPlan plan;
  plan.seed = 0xd0b1e;
  plan.all.duplicate = 0.10;
  plan.all.duplicate_every = 3;
  plan.all.drop = 0.02;
  std::shared_ptr<ChaosFabric> chaos;
  const ClusterConfig cfg = chaos_config(3, plan, &chaos);
  {
    Cluster cluster(cfg);
    Application app(cluster, "toupper");
    auto graph = build_toupper_graph(app, 4);
    ActorScope scope(cluster.domain(), "main");
    auto result =
        token_cast<StringToken>(graph->call(new StringToken(kPhrase)));
    EXPECT_EQ(std::string(result->str, static_cast<size_t>(result->len)),
              kPhraseUpper);
    uint64_t suppressed = 0;
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      suppressed += cluster.controller(n).duplicates_suppressed();
    }
    EXPECT_GT(chaos->frames_duplicated(), 0u);
    EXPECT_GT(suppressed, 0u)
        << "injected duplicates must be caught by the receive filter";
  }
}

TEST(Chaos, ToupperSurvivesReorderingDelays) {
  FaultPlan plan;
  plan.seed = 0x0d3;
  plan.all.delay_min = 0.0;
  plan.all.delay_max = 0.002;  // 0–2 ms random per frame: heavy reordering
  std::shared_ptr<ChaosFabric> chaos;
  const ClusterConfig cfg = chaos_config(3, plan, &chaos);
  EXPECT_EQ(run_toupper(cfg), kPhraseUpper);
  EXPECT_GT(chaos->frames_delayed(), 0u);
}

// The acceptance scenario: a multi-iteration split–merge schedule under 10%
// drop plus one duplicate every 50 frames is byte-identical to a fault-free
// run.
TEST(Chaos, LifeByteIdenticalUnderDropAndDuplication) {
  life::Band world(24, 16);
  world.seed_random(7);

  FaultPlan plan;
  plan.seed = 0x11fe;
  plan.all.drop = 0.10;
  plan.all.duplicate_every = 50;
  std::shared_ptr<ChaosFabric> chaos;
  Cluster cluster(chaos_config(2, plan, &chaos));
  LifeApp app(cluster, 4);
  ActorScope scope(cluster.domain(), "main");
  app.scatter(world);
  for (int i = 0; i < 3; ++i) app.iterate(i % 2 == 0);
  EXPECT_EQ(app.gather(), life::step_world(world, 3));
  EXPECT_GT(chaos->frames_dropped(), 0u)
      << "the sweep must actually have exercised loss";
}

// The batched receive path (FrameReader chunks + grouped controller
// delivery, docs/PERFORMANCE.md) must not weaken exactly-once: over real
// TCP sockets, a seeded sweep of drops, duplicates and delay-reorder —
// where retransmitted and duplicated frames land mid-chunk between healthy
// ones — still yields the clean result, and the dup filter must actually
// fire so the sweep is known to have exercised it.
TEST(Chaos, BatchedRxSurvivesSeededFaultSweepOverTcp) {
  uint64_t dups_seen = 0;
  for (uint64_t seed : {0xbeef1ull, 0xbeef2ull, 0xbeef3ull}) {
    FaultPlan plan;
    plan.seed = seed;
    plan.all.drop = 0.05;
    plan.all.duplicate = 0.10;
    plan.all.delay_min = 0.0002;
    plan.all.delay_max = 0.002;  // spread forces reordering
    ClusterConfig cfg = ClusterConfig::inproc(3);
    auto chaos = std::make_shared<ChaosFabric>(
        std::make_shared<TcpFabric>(3), plan);
    cfg.external_fabric = chaos;
    cfg.fault.reliable = true;
    Cluster cluster(cfg);
    Application app(cluster, "toupper");
    auto graph = build_toupper_graph(app, 4);
    ActorScope scope(cluster.domain(), "main");
    auto result =
        token_cast<StringToken>(graph->call(new StringToken(kPhrase)));
    ASSERT_TRUE(result) << "seed " << seed;
    EXPECT_EQ(std::string(result->str, static_cast<size_t>(result->len)),
              kPhraseUpper)
        << "seed " << seed;
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      dups_seen += cluster.controller(n).duplicates_suppressed();
    }
  }
  EXPECT_GT(dups_seen, 0u)
      << "the sweep must exercise the receive-side duplicate filter";
}

// Same seed, same traffic => same fault decisions; the chaos layer itself is
// deterministic so failing runs replay from their seed.
TEST(Chaos, FaultDecisionsAreSeedPinned) {
  class RecordingFabric : public Fabric {
   public:
    void attach(NodeId, Handler) override {}
    void send(NodeId, NodeId, FrameKind, std::vector<std::byte>) override {
      ++delivered;
    }
    void shutdown() override {}
    uint64_t bytes_sent() const override { return 0; }
    uint64_t messages_sent() const override { return delivered; }
    uint64_t delivered = 0;
  };

  auto pattern = [](uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.all.drop = 0.5;
    plan.all.duplicate = 0.2;
    auto inner = std::make_shared<RecordingFabric>();
    ChaosFabric chaos(inner, plan);
    std::vector<uint8_t> delivered;
    for (int i = 0; i < 200; ++i) {
      const uint64_t before = inner->delivered;
      chaos.send(0, 1, FrameKind::kEnvelope, {});
      delivered.push_back(static_cast<uint8_t>(inner->delivered - before));
    }
    chaos.shutdown();
    return delivered;
  };

  EXPECT_EQ(pattern(42), pattern(42));
  EXPECT_NE(pattern(42), pattern(43));
}

// Acceptance scenario: one node dies mid-call. The in-flight graph call must
// fail with Error(kNodeDown) — not hang — and a fresh cluster built from
// degraded_config() + recover_cluster() finishes the computation with the
// exact result of an uninterrupted run.
TEST(Chaos, NodeKillFailsCallThenCheckpointRecoveryCompletes) {
  life::Band world(20, 16);
  world.seed_random(99);
  std::vector<std::byte> image;
  ClusterConfig degraded;

  {
    FaultPlan plan;  // clean links; the only fault is the kill below
    std::shared_ptr<ChaosFabric> chaos;
    ClusterConfig cfg = chaos_config(3, plan, &chaos);
    cfg.fault.heartbeat = true;
    cfg.fault.heartbeat_period = 0.01;
    cfg.fault.heartbeat_miss = 3;
    Cluster cluster(cfg);
    LifeApp app(cluster, 3);
    ActorScope scope(cluster.domain(), "main");
    app.scatter(world);
    app.iterate(true);
    app.iterate(false);
    image = checkpoint_cluster(cluster);  // quiescent between calls

    chaos->kill_node(2);  // pulled cable: process survives, network dead
    try {
      app.iterate(true);
      FAIL() << "iterate over a dead node must fail, not hang";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), Errc::kNodeDown) << e.what();
    }
    // Heartbeat adjudication must blame exactly the killed node.
    EXPECT_EQ(cluster.dead_nodes(), std::vector<NodeId>{2});
    EXPECT_TRUE(cluster.node_down(2));
    EXPECT_FALSE(cluster.node_down(0));
    degraded = degraded_config(cluster);
  }  // the failed cluster (and its chaos fabric) is destroyed

  ASSERT_EQ(degraded.nodes.size(), 2u);
  EXPECT_EQ(degraded.nodes, (std::vector<std::string>{"node0", "node1"}));

  // Recovery: same collections on the surviving nodes, state rolled back to
  // the checkpoint, interrupted call simply re-issued.
  Cluster fresh(degraded);
  LifeApp app(fresh, 3);
  ActorScope scope(fresh.domain(), "main");
  app.scatter(life::Band(20, 16));  // placeholder state, then roll in
  recover_cluster(fresh, image);
  app.iterate(true);  // the re-issued interrupted iteration
  app.iterate(false);
  EXPECT_EQ(app.gather(), life::step_world(world, 4))
      << "recovered run must match an uninterrupted one";
}

// Satellite: a TCP peer that vanishes without a shutdown frame must be
// surfaced as a named protocol error through a kPeerDown report — silence
// (the old behavior) turns one lost node into a cluster-wide hang.
TEST(Chaos, TcpTornStreamSurfacesProtocolErrorNamingTheNode) {
  TcpFabric fabric(2);
  fabric.set_node_names({"alpha", "bravo"});
  std::mutex mu;
  std::condition_variable cv;
  std::vector<NodeMessage> received;
  fabric.attach(0, [&](NodeMessage&& m) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(std::move(m));
    cv.notify_all();
  });
  fabric.attach(1, [](NodeMessage&&) {});

  {
    // Pose as node 1, then die mid-frame: header promises 64 payload bytes,
    // only 8 arrive before the connection closes.
    TcpConn conn = TcpConn::connect("127.0.0.1", fabric.port_of(0));
    Frame hello;
    hello.kind = FrameKind::kHello;
    hello.from = 1;
    write_frame(conn, hello);
    Writer w;
    w.put<uint32_t>(kFrameMagic);
    w.put<uint16_t>(static_cast<uint16_t>(FrameKind::kEnvelope));
    w.put<uint16_t>(0);                       // reserved
    w.put<uint32_t>(1);                       // from
    w.put<uint32_t>(64);                      // promised payload length
    const char junk[8] = {};
    w.put_raw(junk, sizeof(junk));            // ...but deliver only 8 bytes
    conn.send_all(w.bytes().data(), w.size());
  }  // close

  std::unique_lock<std::mutex> lock(mu);
  const bool got = cv.wait_for(lock, std::chrono::seconds(5),
                               [&] { return !received.empty(); });
  ASSERT_TRUE(got) << "torn stream must be reported, not swallowed";
  EXPECT_EQ(received[0].kind, FrameKind::kPeerDown);
  EXPECT_EQ(received[0].from, 1u);
  Reader r(received[0].payload.data(), received[0].payload.size());
  const std::string reason = r.get_string();
  EXPECT_NE(reason.find(to_string(Errc::kProtocol)), std::string::npos)
      << reason;
  EXPECT_NE(reason.find("bravo"), std::string::npos)
      << "the offending node must be named: " << reason;
  fabric.shutdown();
}

// The async batched transmit path composed with the reliability layer: a
// seeded drop/duplicate sweep over a ChaosFabric wrapping the *real* TCP
// fabric (per-peer sender queues, writev coalescing) must still deliver
// every graph call's tokens exactly once. Replay a failure with
// DPS_TEST_SEED=<seed> ./dps_tests --gtest_filter=Chaos.TcpBatched*
TEST(Chaos, TcpBatchedSendsDeliverExactlyOnceUnderSeededSweep) {
  const uint32_t seed = dps_testing::effective_seed(0xb47c);
  SCOPED_TRACE(::testing::Message() << "seed " << seed);
  uint64_t dropped = 0, duplicated = 0, suppressed = 0;
  for (int round = 0; round < 3; ++round) {
    FaultPlan plan;
    plan.seed = seed + static_cast<uint64_t>(round) * 0x9e3779b9u;
    plan.all.drop = 0.05 * round;           // 0%, 5%, 10%
    plan.all.duplicate = 0.05;
    plan.all.duplicate_every = 7;
    ClusterConfig cfg = ClusterConfig::tcp(3);
    auto chaos =
        std::make_shared<ChaosFabric>(std::make_shared<TcpFabric>(3), plan);
    cfg.external_fabric = chaos;
    cfg.fault.reliable = true;
    Cluster cluster(cfg);
    Application app(cluster, "toupper");
    auto graph = build_toupper_graph(app, 4);
    ActorScope scope(cluster.domain(), "main");
    auto result =
        token_cast<StringToken>(graph->call(new StringToken(kPhrase)));
    ASSERT_TRUE(result) << "round " << round;
    EXPECT_EQ(std::string(result->str, static_cast<size_t>(result->len)),
              kPhraseUpper)
        << "round " << round;
    dropped += chaos->frames_dropped();
    duplicated += chaos->frames_duplicated();
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      suppressed += cluster.controller(n).duplicates_suppressed();
    }
  }
  EXPECT_GT(dropped, 0u) << "the sweep must actually have exercised loss";
  EXPECT_GT(duplicated, 0u) << "the sweep must have injected duplicates";
  EXPECT_GT(suppressed, 0u)
      << "injected duplicates must be suppressed, not re-dispatched";
}

// The same seeded sweep over the shared-memory fabric: drops force the
// reliable layer to retransmit through the rings, duplicates must be
// suppressed, and the result must stay byte-identical — the shm fast path
// earns the same exactly-once guarantees as TCP.
// Replay: DPS_TEST_SEED=<seed> ./dps_tests --gtest_filter=Chaos.ShmBatched*
TEST(Chaos, ShmBatchedSendsDeliverExactlyOnceUnderSeededSweep) {
  if (!shm_available()) GTEST_SKIP() << "POSIX shm unavailable or DPS_SHM=0";
  const uint32_t seed = dps_testing::effective_seed(0x5a11);
  SCOPED_TRACE(::testing::Message() << "seed " << seed);
  uint64_t dropped = 0, duplicated = 0, suppressed = 0;
  for (int round = 0; round < 3; ++round) {
    FaultPlan plan;
    plan.seed = seed + static_cast<uint64_t>(round) * 0x9e3779b9u;
    plan.all.drop = 0.05 * round;           // 0%, 5%, 10%
    plan.all.duplicate = 0.05;
    plan.all.duplicate_every = 7;
    ClusterConfig cfg = ClusterConfig::shm(3);
    auto chaos =
        std::make_shared<ChaosFabric>(std::make_shared<ShmFabric>(3), plan);
    cfg.external_fabric = chaos;
    cfg.fault.reliable = true;
    Cluster cluster(cfg);
    Application app(cluster, "toupper");
    auto graph = build_toupper_graph(app, 4);
    ActorScope scope(cluster.domain(), "main");
    auto result =
        token_cast<StringToken>(graph->call(new StringToken(kPhrase)));
    ASSERT_TRUE(result) << "round " << round;
    EXPECT_EQ(std::string(result->str, static_cast<size_t>(result->len)),
              kPhraseUpper)
        << "round " << round;
    dropped += chaos->frames_dropped();
    duplicated += chaos->frames_duplicated();
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      suppressed += cluster.controller(n).duplicates_suppressed();
    }
  }
  EXPECT_GT(dropped, 0u) << "the sweep must actually have exercised loss";
  EXPECT_GT(duplicated, 0u) << "the sweep must have injected duplicates";
  EXPECT_GT(suppressed, 0u)
      << "injected duplicates must be suppressed, not re-dispatched";
}

// Service-mesh churn (docs/SERVICE_MESH.md): client tenants join and leave
// across rounds — one identity re-joining every round, one fresh per round —
// while a seeded drop/duplicate sweep runs underneath and small in-flight
// budgets force load shedding. Every call must either complete with the
// exact clean-run result (exactly-once delivery) or shed synchronously with
// kBackpressure; completed + shed must account for every issue, the peak
// per-tenant in-flight must respect the budget, and nothing may hang.
// Replay: DPS_TEST_SEED=<seed> ./dps_tests --gtest_filter=Chaos.TenantChurn*
TEST(Chaos, TenantChurnShedsCleanlyAndDeliversExactlyOnce) {
  const uint32_t seed = dps_testing::effective_seed(0x7e4a);
  SCOPED_TRACE(::testing::Message() << "seed " << seed);
  FaultPlan plan;
  plan.seed = seed;
  plan.all.drop = 0.05;
  plan.all.duplicate = 0.05;
  plan.all.duplicate_every = 5;
  std::shared_ptr<ChaosFabric> chaos;
  Cluster cluster(chaos_config(3, plan, &chaos));
  ActorScope scope(cluster.domain(), "main");

  TenantConfig budget;
  budget.max_inflight = 2;
  uint64_t issued = 0, completed = 0, shed = 0;
  TenantId rejoiner_id = kNoTenant;
  for (int round = 0; round < 6; ++round) {
    Application rejoiner(cluster, "churn-rejoiner");
    rejoiner.set_tenant_config(budget);
    if (round == 0) rejoiner_id = rejoiner.tenant();
    EXPECT_EQ(rejoiner.tenant(), rejoiner_id)
        << "a re-joining tenant keeps its identity";
    Application drifter(cluster, "churn-round" + std::to_string(round));
    drifter.set_tenant_config(budget);
    auto g1 = build_toupper_graph(rejoiner, 4);
    auto g2 = build_toupper_graph(drifter, 4);

    // Burst faster than the service can drain: with a budget of two, part
    // of each burst must shed — synchronously, with the named error.
    std::vector<CallHandle> live;
    for (int i = 0; i < 10; ++i) {
      Flowgraph* graph = (i % 2 == 0) ? g1.get() : g2.get();
      ++issued;
      try {
        live.push_back(graph->call_async(new StringToken(kPhrase)));
      } catch (const Error& e) {
        ASSERT_EQ(e.code(), Errc::kBackpressure) << e.what();
        ++shed;
      }
    }
    for (auto& call : live) {
      auto result = token_cast<StringToken>(call.wait());
      ASSERT_TRUE(result);
      EXPECT_EQ(std::string(result->str, static_cast<size_t>(result->len)),
                kPhraseUpper);
      ++completed;
    }

    const Controller::SvcStats stats =
        cluster.controller(rejoiner.home()).svc_stats(rejoiner.tenant());
    EXPECT_LE(stats.peak_inflight, budget.max_inflight)
        << "admission must bound concurrent calls per tenant";
    EXPECT_EQ(stats.inflight, 0u) << "all slots retired at round end";
  }  // both clients leave; the next round re-creates them

  EXPECT_EQ(completed + shed, issued) << "every call accounted for";
  EXPECT_GT(completed, 0u);
  EXPECT_GT(shed, 0u) << "the bursts must actually exercise shedding";
  EXPECT_GT(chaos->frames_dropped(), 0u)
      << "the sweep must actually have exercised loss";
  const Controller::SvcStats stats =
      cluster.controller(0).svc_stats(rejoiner_id);
  EXPECT_EQ(stats.admitted + stats.shed,
            static_cast<uint64_t>(issued) / 2)
      << "the re-joining tenant's stats must survive churn rounds";
}

// Multicast collectives under chaos: a broadcast to K receivers rides ONE
// shared payload per link (kMcastEnvelope frames), and exactly-once
// delivery composes per-link — so a seeded drop/duplicate/reorder sweep
// over both the inproc and the real-TCP fabric must still deliver the
// collective exactly once to every receiver: K distinct echoes, zero
// duplicates, every receiver decoding the identical payload. Replay:
// DPS_TEST_SEED=<seed> ./dps_tests --gtest_filter=Chaos.Mcast*
TEST(Chaos, McastExactlyOnceUnderSeededFaultSweepInprocAndTcp) {
  const uint32_t seed = dps_testing::effective_seed(0x3ca57);
  SCOPED_TRACE(::testing::Message() << "seed " << seed);
  constexpr int kFanout = 6;
  uint64_t dropped = 0, duplicated = 0;
  for (int use_tcp : {0, 1}) {
    for (int round = 0; round < 2; ++round) {
      FaultPlan plan;
      plan.seed = seed + static_cast<uint64_t>(round) * 0x9e3779b9u +
                  static_cast<uint64_t>(use_tcp) * 0x85ebca6bu;
      plan.all.drop = 0.05 * round;  // clean round, then 5% loss
      plan.all.duplicate = 0.08;
      plan.all.duplicate_every = 5;
      plan.all.delay_min = 0.0;
      plan.all.delay_max = 0.001;  // reordering pressure
      ClusterConfig cfg =
          use_tcp ? ClusterConfig::tcp(3) : ClusterConfig::inproc(3);
      std::shared_ptr<Fabric> inner;
      if (use_tcp) {
        inner = std::make_shared<TcpFabric>(3);
      } else {
        inner = std::make_shared<InprocFabric>(3);
      }
      auto chaos = std::make_shared<ChaosFabric>(inner, plan);
      cfg.external_fabric = chaos;
      cfg.fault.reliable = true;
      Cluster cluster(cfg);
      Application app(cluster, "bcast");
      auto graph = dps_mcast::build_bcast_graph(app, kFanout);
      ActorScope scope(cluster.domain(), "main");
      for (int call = 0; call < 3; ++call) {
        auto res = dps_mcast::run_bcast(
            *graph, kFanout, 0xabc0 + static_cast<uint64_t>(call), 2048);
        ASSERT_TRUE(res) << "tcp=" << use_tcp << " round=" << round;
        EXPECT_EQ(res->distinct, kFanout)
            << "every receiver exactly once (tcp=" << use_tcp << ")";
        EXPECT_EQ(res->total, kFanout);
        EXPECT_EQ(res->duplicates, 0);
        EXPECT_EQ(res->uniform, 1)
            << "all receivers must decode the identical shared payload";
      }
      dropped += chaos->frames_dropped();
      duplicated += chaos->frames_duplicated();
    }
  }
  EXPECT_GT(dropped, 0u) << "the sweep must actually have exercised loss";
  EXPECT_GT(duplicated, 0u) << "the sweep must have injected duplicates";
}

// The tree fan-out relays kMcastEnvelope frames through intermediate nodes;
// each hop is its own reliable link, so exactly-once must survive the same
// sweep when forwarding is in play.
TEST(Chaos, McastTreeTopologySurvivesSeededFaults) {
  const uint32_t seed = dps_testing::effective_seed(0x7ee3);
  SCOPED_TRACE(::testing::Message() << "seed " << seed);
  constexpr int kFanout = 8;
  uint64_t dropped = 0;
  for (int round = 0; round < 2; ++round) {
    FaultPlan plan;
    plan.seed = seed + static_cast<uint64_t>(round) * 0x9e3779b9u;
    plan.all.drop = 0.04;
    plan.all.duplicate_every = 6;
    ClusterConfig cfg = ClusterConfig::inproc(4);
    cfg.mcast_topology = McastTopology::kTree;
    auto chaos = std::make_shared<ChaosFabric>(
        std::make_shared<InprocFabric>(4), plan);
    cfg.external_fabric = chaos;
    cfg.fault.reliable = true;
    Cluster cluster(cfg);
    Application app(cluster, "bcast");
    auto graph = dps_mcast::build_bcast_graph(app, kFanout);
    ActorScope scope(cluster.domain(), "main");
    for (int call = 0; call < 3; ++call) {
      auto res = dps_mcast::run_bcast(
          *graph, kFanout, 0x7ee30 + static_cast<uint64_t>(call), 1024);
      ASSERT_TRUE(res) << "round " << round;
      EXPECT_EQ(res->distinct, kFanout);
      EXPECT_EQ(res->total, kFanout);
      EXPECT_EQ(res->duplicates, 0);
      EXPECT_EQ(res->uniform, 1);
    }
    dropped += chaos->frames_dropped();
  }
  EXPECT_GT(dropped, 0u) << "the sweep must actually have exercised loss";
}

// A link partition opened mid-collective must stall the multicast (reliable
// retransmission keeps trying), and healing the link must let the same call
// complete exactly-once — no loss, no duplicate deliveries from the
// retransmit storm that crossed the heal.
TEST(Chaos, McastPartitionHealDeliversExactlyOnce) {
  FaultPlan plan;  // clean links; the only fault is the partition below
  std::shared_ptr<ChaosFabric> chaos;
  ClusterConfig cfg = chaos_config(3, plan, &chaos);
  Cluster cluster(cfg);
  Application app(cluster, "bcast");
  constexpr int kFanout = 6;
  auto graph = dps_mcast::build_bcast_graph(app, kFanout);
  ActorScope scope(cluster.domain(), "main");

  // Warm-up proves the graph works before the fault.
  auto warm = dps_mcast::run_bcast(*graph, kFanout, 1, 512);
  ASSERT_TRUE(warm);
  ASSERT_EQ(warm->distinct, kFanout);

  chaos->partition(0, 2);  // node 2's receivers unreachable from the master
  CallHandle call = [&] {
    auto* req = new dps_mcast::BcastPayload();
    req->fanout = kFanout;
    req->stamp = 2;
    req->blob.resize(512);
    for (size_t i = 0; i < 512; ++i) {
      req->blob[i] = static_cast<uint8_t>((2 + i * 131) & 0xff);
    }
    return graph->call_async(req);
  }();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  chaos->heal(0, 2);

  auto res = token_cast<dps_mcast::BcastResult>(call.wait());
  ASSERT_TRUE(res) << "healed partition must let the collective finish";
  EXPECT_EQ(res->distinct, kFanout);
  EXPECT_EQ(res->total, kFanout);
  EXPECT_EQ(res->duplicates, 0);
  EXPECT_EQ(res->uniform, 1);
  EXPECT_GT(chaos->frames_dropped(), 0u)
      << "the partition must actually have severed frames";
}

// Reliable delivery and heartbeats are wall-clock mechanisms; under virtual
// time they must disarm rather than freeze the simulation.
TEST(Chaos, FaultToleranceDisarmsUnderVirtualTime) {
  ClusterConfig cfg = ClusterConfig::simulated(2);
  cfg.fault.reliable = true;
  cfg.fault.heartbeat = true;
  Cluster cluster(cfg);
  EXPECT_FALSE(cluster.fault_tolerant());
  EXPECT_TRUE(cluster.dead_nodes().empty());
}

}  // namespace
}  // namespace dps
