// Streaming pipeline app (apps/stream.hpp): end-to-end checksum identity,
// stat aggregation, and the paced-source latency property enabled by
// flushTokens (each frame enters the pipeline without waiting for the next
// post). The wall-clock rate/SLO characterization lives in
// bench/stream_video.cpp; these tests pin correctness at test-sized
// configurations.
#include <gtest/gtest.h>

#include "apps/stream.hpp"

namespace dps {
namespace {

using namespace apps;

// Reference XOR over all frames with the job's default stage costs (1/4/2
// sweeps).
uint64_t expected_checksum_xor(int frames, int frame_bytes) {
  const StreamJobToken defaults;
  uint64_t x = 0;
  for (int f = 0; f < frames; ++f) {
    x ^= stream_frame_checksum(f, frame_bytes, defaults.decode_passes,
                               defaults.analyze_passes,
                               defaults.encode_passes);
  }
  return x;
}

TEST(StreamApp, ChecksumsAndStatsMatchReference) {
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "stream-test");
  auto graph = build_stream_graph(app, /*decoders=*/2, /*analyzers=*/2,
                                  /*encoders=*/2);
  ActorScope scope(cluster.domain(), "main");

  auto* job = new StreamJobToken();
  job->phases = 2;
  job->frame_bytes = 512;
  job->frames[0] = 12;
  job->rate_hz[0] = 0;  // unpaced
  job->frames[1] = 8;
  job->rate_hz[1] = 2000;  // paced, but fast enough for a test
  auto done = token_cast<StreamDoneToken>(graph->call(job));
  ASSERT_TRUE(done);
  EXPECT_EQ(done->frames, 20);
  EXPECT_EQ(done->phases, 2);
  EXPECT_EQ(done->checksum_xor, expected_checksum_xor(20, 512));
  for (int ph = 0; ph < 2; ++ph) {
    const StreamPhaseStats& p = done->phase[ph];
    EXPECT_EQ(p.frames, ph == 0 ? 12 : 8);
    EXPECT_GT(p.sustained_hz, 0.0);
    EXPECT_GE(p.p99_total, p.p50_total);
    EXPECT_GT(p.p50_total, 0.0);
  }
}

TEST(StreamApp, SingleFrameSinglePhase) {
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "stream-one");
  auto graph = build_stream_graph(app, 1, 1, 1);
  ActorScope scope(cluster.domain(), "main");

  auto* job = new StreamJobToken();
  job->phases = 1;
  job->frame_bytes = 64;
  job->frames[0] = 1;
  job->rate_hz[0] = 0;
  auto done = token_cast<StreamDoneToken>(graph->call(job));
  ASSERT_TRUE(done);
  EXPECT_EQ(done->frames, 1);
  EXPECT_EQ(done->checksum_xor, expected_checksum_xor(1, 64));
}

TEST(StreamApp, PacedFrameLatencyIsNotOnePacingGap) {
  // Before flushTokens, a paced source delivered every frame one full
  // pacing interval late (the engine's held-back-last-token protocol).
  // With the source flushing after each non-final post, median end-to-end
  // latency must sit well below the 50 ms gap.
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "stream-paced");
  auto graph = build_stream_graph(app, 1, 1, 1);
  ActorScope scope(cluster.domain(), "main");

  auto* job = new StreamJobToken();
  job->phases = 1;
  job->frame_bytes = 256;
  job->frames[0] = 6;
  job->rate_hz[0] = 20;  // 50 ms between frames

  auto done = token_cast<StreamDoneToken>(graph->call(job));
  ASSERT_TRUE(done);
  EXPECT_EQ(done->frames, 6);
  EXPECT_LT(done->phase[0].p50_total, 0.025)
      << "median latency is at the pacing gap: frames are being held back "
         "by the split instead of flushed";
}

}  // namespace
}  // namespace dps
