// Integration tests for the parallel Game of Life: both iteration graphs
// against the sequential reference, the gather/scatter round trip, the
// read-subset service, and the synthetic (virtual-time) mode.
#include <gtest/gtest.h>

#include "apps/life.hpp"

namespace dps {
namespace {

using apps::LifeApp;

life::Band random_world(int rows, int cols, uint64_t seed) {
  life::Band w(rows, cols);
  w.seed_random(seed);
  return w;
}

class LifeGraphParam
    : public ::testing::TestWithParam<std::tuple<bool, int, int>> {};

TEST_P(LifeGraphParam, MatchesSequentialReference) {
  const auto [improved, bands, nodes] = GetParam();
  Cluster cluster(ClusterConfig::inproc(nodes));
  LifeApp life_app(cluster, bands);
  ActorScope scope(cluster.domain(), "main");

  life::Band world = random_world(37, 23, 99);
  life_app.scatter(world);
  const int iterations = 4;
  for (int i = 0; i < iterations; ++i) life_app.iterate(improved);
  life::Band result = life_app.gather();
  EXPECT_EQ(result, life::step_world(world, iterations))
      << (improved ? "improved" : "simple") << " graph, " << bands
      << " bands on " << nodes << " nodes";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LifeGraphParam,
    ::testing::Values(std::make_tuple(false, 1, 1),
                      std::make_tuple(false, 2, 2),
                      std::make_tuple(false, 4, 2),
                      std::make_tuple(false, 5, 3),
                      std::make_tuple(true, 1, 1),
                      std::make_tuple(true, 2, 2),
                      std::make_tuple(true, 4, 2),
                      std::make_tuple(true, 5, 3),
                      std::make_tuple(true, 8, 4)));

TEST(LifeApp, ScatterGatherRoundTrip) {
  Cluster cluster(ClusterConfig::inproc(3));
  LifeApp life_app(cluster, 5);
  ActorScope scope(cluster.domain(), "main");
  life::Band world = random_world(31, 19, 5);
  life_app.scatter(world);
  EXPECT_EQ(life_app.gather(), world);
}

TEST(LifeApp, ReadSubsetReflectsWorldState) {
  Cluster cluster(ClusterConfig::inproc(2));
  LifeApp life_app(cluster, 4);
  ActorScope scope(cluster.domain(), "main");
  life::Band world = random_world(40, 30, 17);
  life_app.scatter(world);
  life_app.iterate(true);
  life::Band expected = life::step_world(world, 1);

  // A block spanning several bands (rows 7..26).
  auto subset = life_app.read(3, 7, 20, 19);
  ASSERT_TRUE(subset);
  EXPECT_EQ(subset->x.get(), 3);
  EXPECT_EQ(subset->y.get(), 7);
  EXPECT_EQ(subset->w.get(), 20);
  EXPECT_EQ(subset->h.get(), 19);
  for (int r = 0; r < 19; ++r) {
    for (int c = 0; c < 20; ++c) {
      EXPECT_EQ(subset->cells[static_cast<size_t>(r) * 20 + c],
                expected.at(7 + r, 3 + c))
          << "cell (" << r << "," << c << ")";
    }
  }
}

TEST(LifeApp, ReadServicePublishedAndCallable) {
  // Fig. 10: a client application calls the graph exposed by the Life app.
  Cluster cluster(ClusterConfig::inproc(2));
  LifeApp life_app(cluster, 2);
  ActorScope scope(cluster.domain(), "main");
  life::Band world = random_world(16, 16, 3);
  life_app.scatter(world);
  life_app.publish_read_service("life/read");

  Application client(cluster, "viewer", 1);
  auto subset = token_cast<apps::LifeSubsetToken>(client.call_service(
      "life/read",
      new apps::LifeReadRequestToken(0, 0, 16, 16, 16, 16, 2,
                                     life_app.world_id())));
  ASSERT_TRUE(subset);
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) {
      EXPECT_EQ(subset->cells[static_cast<size_t>(r) * 16 + c],
                world.at(r, c));
    }
  }
}

TEST(LifeApp, SyntheticIterationChargesVirtualTime) {
  Cluster cluster(ClusterConfig::simulated(4));
  LifeApp life_app(cluster, 4);
  ActorScope scope(cluster.domain(), "main");
  life::Band world = random_world(400, 400, 1);
  life_app.scatter(world);
  const double t0 = cluster.domain().now();
  life_app.iterate(true, /*sim_cell_rate=*/8e6);
  const double iter_time = cluster.domain().now() - t0;
  // 400x400 cells over 4 workers at 8 Mcells/s: >= 5 ms of virtual time.
  EXPECT_GT(iter_time, 0.8 * (400.0 * 400.0 / 4 / 8e6));
  EXPECT_LT(iter_time, 1.0);  // and far below a second
}

TEST(LifeApp, ReadCallsOverlapRunningIterations) {
  // Table 2's mechanism: service calls must complete in milliseconds while
  // a ~300 ms iteration is in flight — the read graph's own threads overlap
  // the iteration's master-side merges.
  const int world = 512, nodes = 4;
  Cluster cluster(ClusterConfig::simulated(nodes));
  LifeApp life_app(cluster, nodes);
  ActorScope scope(cluster.domain(), "main");
  life::Band init(world, world);
  life_app.scatter(init);
  life_app.publish_read_service("life/read");
  Application viewer(cluster, "viewer", nodes - 1);

  std::mutex mu;
  bool stop = false;
  std::vector<double> call_times;
  ActorGate gate;
  cluster.domain().reserve_actor();
  std::thread client([&] {
    ActorScope cs(cluster.domain(), "viewer");
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (stop) break;
      }
      const double t0 = cluster.domain().now();
      auto s = token_cast<apps::LifeSubsetToken>(viewer.call_service(
          "life/read",
          new apps::LifeReadRequestToken(3, 5, 40, 40, world, world, nodes,
                                         life_app.world_id())));
      const double dt = cluster.domain().now() - t0;
      std::lock_guard<std::mutex> lock(mu);
      if (s) call_times.push_back(dt);
    }
    gate.open(cluster.domain());
  });

  const double cell_rate = double(world) * world / nodes / 0.3;  // ~300 ms
  for (int i = 0; i < 3; ++i) life_app.iterate(true, cell_rate);
  {
    std::lock_guard<std::mutex> lock(mu);
    stop = true;
  }
  gate.wait(cluster.domain());
  client.join();

  ASSERT_GE(call_times.size(), 10u)
      << "back-to-back calls must flow during the iterations";
  std::sort(call_times.begin(), call_times.end());
  const double median = call_times[call_times.size() / 2];
  EXPECT_LT(median, 0.050) << "calls must overlap the iteration, not queue "
                              "behind it";
}

TEST(LifeApp, ImprovedBeatsSimpleUnderVirtualTime) {
  // The core claim of Fig. 9: overlapping border exchange with interior
  // compute shortens the iteration, most visibly for small worlds.
  auto run = [](bool improved) {
    Cluster cluster(ClusterConfig::simulated(4));
    LifeApp life_app(cluster, 4);
    ActorScope scope(cluster.domain(), "main");
    life::Band world(400, 400);
    world.seed_random(2);
    life_app.scatter(world);
    const double t0 = cluster.domain().now();
    for (int i = 0; i < 5; ++i) life_app.iterate(improved, 8e6);
    return cluster.domain().now() - t0;
  };
  const double t_simple = run(false);
  const double t_improved = run(true);
  EXPECT_LT(t_improved, t_simple);
}

}  // namespace
}  // namespace dps
