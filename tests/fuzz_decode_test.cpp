// Robustness tests for the wire decoders: random garbage, bit flips, and
// truncations must produce Error exceptions (kProtocol / kNotFound), never
// crashes, hangs, or silent misreads. Seed-parameterized gtest.
#include <gtest/gtest.h>

#include <random>

#include "core/envelope.hpp"
#include "obs/trace_format.hpp"
#include "serial/registry.hpp"

namespace dps {
namespace {

class FuzzSimpleToken : public SimpleToken {
 public:
  int64_t a;
  int32_t b;
  FuzzSimpleToken(int64_t a_ = 0, int32_t b_ = 0) : a(a_), b(b_) {}
  DPS_IDENTIFY(FuzzSimpleToken);
};

class FuzzComplexToken : public ComplexToken {
 public:
  CT<int32_t> id;
  CT<std::string> name;
  Buffer<uint32_t> values;
  DPS_IDENTIFY(FuzzComplexToken);
};

std::vector<std::byte> valid_token_bytes() {
  FuzzComplexToken t;
  t.id = 7;
  t.name = std::string("fuzz");
  for (uint32_t i = 0; i < 16; ++i) t.values.push_back(i);
  Writer w;
  serialize_token(t, w);
  return w.take();
}

std::vector<std::byte> valid_envelope_bytes() {
  Envelope e;
  e.app = 1;
  e.graph = 2;
  e.vertex = 3;
  e.call = 4;
  e.frames.push_back(SplitFrame{9, 1, 1, 5, 0});
  e.token = Ptr<Token>(new FuzzSimpleToken(1, 2));
  Writer w;
  e.encode(w);
  return w.take();
}

std::vector<std::byte> valid_trace_bytes() {
  std::vector<obs::TaggedEvent> events;
  for (uint64_t i = 0; i < 20; ++i) {
    obs::TaggedEvent ev;
    ev.e.t_ns = i * 100 + 1;
    ev.e.kind = static_cast<uint16_t>(i % 2 == 0 ? obs::EventKind::kEnqueue
                                                 : obs::EventKind::kOpStart);
    ev.e.node = static_cast<uint32_t>(i % 3);
    ev.e.a = i;
    ev.e.b = i * 2;
    ev.e.c = i * 3;
    ev.e.d = i * 4;
    ev.thread = static_cast<uint32_t>(i % 2);
    ev.thread_name = "fuzz-" + std::to_string(i % 2);
    events.push_back(std::move(ev));
  }
  Writer w;
  obs::encode_trace(w, events);
  return w.take();
}

class FuzzSeed : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzSeed, RandomBytesNeverCrashTokenDecoder) {
  std::mt19937 rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    std::vector<std::byte> bytes(rng() % 256);
    for (auto& b : bytes) b = static_cast<std::byte>(rng() & 0xff);
    Reader r(bytes.data(), bytes.size());
    try {
      auto t = deserialize_token(r);
      // Random bytes that happen to decode are fine — the registry id must
      // then have matched a registered type.
      EXPECT_NE(t.get(), nullptr);
    } catch (const Error&) {
      // expected in the overwhelming majority of rounds
    }
  }
}

TEST_P(FuzzSeed, BitFlipsNeverCrashTokenDecoder) {
  std::mt19937 rng(GetParam() ^ 0x9e3779b9u);
  const auto base = valid_token_bytes();
  for (int round = 0; round < 300; ++round) {
    auto bytes = base;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng() % bytes.size();
      bytes[pos] ^= static_cast<std::byte>(1u << (rng() % 8));
    }
    Reader r(bytes.data(), bytes.size());
    try {
      auto t = deserialize_token(r);
      (void)t;  // a flip confined to payload values decodes "successfully"
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeed, TruncationsNeverCrashEnvelopeDecoder) {
  std::mt19937 rng(GetParam() ^ 0x51f15eedu);
  const auto base = valid_envelope_bytes();
  for (size_t len = 0; len < base.size(); ++len) {
    Reader r(base.data(), len);
    EXPECT_THROW((void)Envelope::decode(r), Error) << "len=" << len;
  }
  (void)rng;
}

TEST_P(FuzzSeed, BitFlipsNeverCrashEnvelopeDecoder) {
  std::mt19937 rng(GetParam() ^ 0xabcdef01u);
  const auto base = valid_envelope_bytes();
  for (int round = 0; round < 300; ++round) {
    auto bytes = base;
    const size_t pos = rng() % bytes.size();
    bytes[pos] ^= static_cast<std::byte>(1u << (rng() % 8));
    Reader r(bytes.data(), bytes.size());
    try {
      Envelope e = Envelope::decode(r);
      (void)e;
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeed, RandomBytesNeverCrashTraceDecoder) {
  std::mt19937 rng(GetParam() ^ 0x0b5e7a11u);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::byte> bytes(rng() % 256);
    for (auto& b : bytes) b = static_cast<std::byte>(rng() & 0xff);
    Reader r(bytes.data(), bytes.size());
    // Random bytes essentially never reproduce the magic, so decoding must
    // throw — and in every case must neither crash nor over-allocate.
    EXPECT_THROW((void)obs::decode_trace(r), Error);
  }
}

TEST_P(FuzzSeed, BitFlipsNeverCrashTraceDecoder) {
  std::mt19937 rng(GetParam() ^ 0x7ace5eedu);
  const auto base = valid_trace_bytes();
  for (int round = 0; round < 300; ++round) {
    auto bytes = base;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng() % bytes.size();
      bytes[pos] ^= static_cast<std::byte>(1u << (rng() % 8));
    }
    Reader r(bytes.data(), bytes.size());
    try {
      auto events = obs::decode_trace(r);
      (void)events;  // flips confined to payload fields decode fine
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeed, TruncationsNeverCrashTraceDecoder) {
  const auto base = valid_trace_bytes();
  // The decoder reads an exact event count and then requires end-of-buffer,
  // so every strict prefix must throw (and never read out of bounds).
  for (size_t len = 0; len < base.size(); ++len) {
    Reader r(base.data(), len);
    EXPECT_THROW((void)obs::decode_trace(r), Error) << "len=" << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed, ::testing::Values(1u, 2u, 3u, 4u));

// Oversized length prefixes must be rejected by bounds checks, not cause
// allocation explosions: a claimed 4 GiB buffer inside 40 bytes throws.
TEST(FuzzDecode, HugeClaimedLengthsRejected) {
  Writer w;
  w.put(FuzzComplexToken::staticTypeInfo().id);
  w.put<int32_t>(1);                 // id field
  w.put<uint32_t>(0xfffffff0u);      // name length: absurd
  Reader r(w.bytes());
  EXPECT_THROW((void)deserialize_token(r), Error);
}

TEST(FuzzDecode, HugeBufferCountRejected) {
  Writer w;
  w.put(FuzzComplexToken::staticTypeInfo().id);
  w.put<int32_t>(1);
  w.put_string("x");
  w.put<uint64_t>(0x7fffffffffffull);  // element count: absurd
  Reader r(w.bytes());
  EXPECT_THROW((void)deserialize_token(r), Error);
}

// Regression (found by the asan-ubsan preset): decoding a token whose
// string/buffer fields are empty made Reader::get_raw call memcpy with the
// empty container's null data() — UB flagged by -fsanitize=undefined's
// nonnull check ("null pointer passed as argument 1"), and the same held
// for Writer::put_raw on encode and std::string(nullptr, 0) in get_string.
// Zero-size reads/writes must be exact no-ops.
TEST(FuzzDecode, EmptyFieldsRoundTripWithoutTouchingNullData) {
  FuzzComplexToken t;
  t.id = 42;
  t.name = std::string();  // empty: data() is null in the decoded copy
  // values deliberately left empty too
  Writer w;
  serialize_token(t, w);
  Reader r(w.bytes());
  auto decoded = deserialize_token(r);
  auto* ct = dynamic_cast<FuzzComplexToken*>(decoded.get());
  ASSERT_NE(ct, nullptr);
  EXPECT_EQ(ct->id.get(), 42);
  EXPECT_EQ(ct->name.get(), "");
  EXPECT_EQ(ct->values.size(), 0u);
}

// Same surface, byte-level: zero-size raw accessors against a Reader over
// an empty buffer (data() == nullptr) must neither move the cursor nor
// dereference anything.
TEST(FuzzDecode, ZeroSizeRawAccessOnEmptyBufferIsANoOp) {
  std::vector<std::byte> empty;
  Reader r(empty);
  r.get_raw(nullptr, 0);  // must not reach memcpy
  EXPECT_THROW(r.get_raw(nullptr, 1), Error);

  Writer w;
  w.put_raw(empty.data(), 0);  // null src, zero size: no-op
  w.put_string(std::string());
  EXPECT_EQ(w.bytes().size(), sizeof(uint32_t));  // just the length prefix
  Reader r2(w.bytes());
  EXPECT_EQ(r2.get_string(), "");
}

TEST(FuzzDecode, TraceHugeThreadCountRejected) {
  Writer w;
  w.put<uint32_t>(obs::kTraceMagic);
  w.put<uint16_t>(obs::kTraceVersion);
  w.put<uint16_t>(0);
  w.put<uint32_t>(0xffffffffu);  // thread-name table entries: absurd
  Reader r(w.bytes());
  EXPECT_THROW((void)obs::decode_trace(r), Error);
}

TEST(FuzzDecode, TraceHugeEventCountRejected) {
  Writer w;
  w.put<uint32_t>(obs::kTraceMagic);
  w.put<uint16_t>(obs::kTraceVersion);
  w.put<uint16_t>(0);
  w.put<uint32_t>(0);                  // no thread names
  w.put<uint64_t>(0x7fffffffffffull);  // event count: absurd
  Reader r(w.bytes());
  EXPECT_THROW((void)obs::decode_trace(r), Error);
}

}  // namespace
}  // namespace dps
