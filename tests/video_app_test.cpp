// Integration tests for the video pipeline (Fig. 4): bit-exact frame
// recomposition through the stream operation, and the pipelining effect of
// streaming complete frames out before all parts are read.
#include <gtest/gtest.h>

#include "apps/video.hpp"

namespace dps {
namespace {

using namespace apps;

TEST(VideoApp, ChecksumsMatchReference) {
  Cluster cluster(ClusterConfig::inproc(3));
  Application app(cluster, "video");
  auto graph = build_video_graph(app, /*disks=*/3, /*processors=*/3);
  ActorScope scope(cluster.domain(), "main");
  const int frames = 12, parts = 4, part_bytes = 512;
  auto done = token_cast<VideoDoneToken>(
      graph->call(new VideoJobToken(frames, parts, part_bytes, 0)));
  ASSERT_TRUE(done);
  EXPECT_EQ(done->frames, frames);
  uint64_t expected = 0;
  for (int f = 0; f < frames; ++f) {
    expected ^= video_frame_checksum(f, parts, part_bytes);
  }
  EXPECT_EQ(done->checksum_xor, expected);
}

TEST(VideoApp, SingleFrameSinglePart) {
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "video1");
  auto graph = build_video_graph(app, 1, 1);
  ActorScope scope(cluster.domain(), "main");
  auto done = token_cast<VideoDoneToken>(
      graph->call(new VideoJobToken(1, 1, 64, 0)));
  ASSERT_TRUE(done);
  EXPECT_EQ(done->frames, 1);
  EXPECT_EQ(done->checksum_xor, video_frame_checksum(0, 1, 64));
}

TEST(VideoApp, StreamingOverlapsDiskLatency) {
  // With D parallel disks and per-read latency L, F*P reads pipeline to
  // about F*P*L/D of virtual time; frames are processed while later parts
  // are still being read. A merge-then-split design would instead pay all
  // reads before any processing. Verify the total stays near the read
  // pipeline bound (i.e. processing is fully hidden).
  Cluster cluster(ClusterConfig::simulated(4));
  Application app(cluster, "video-sim");
  auto graph = build_video_graph(app, 4, 4);
  ActorScope scope(cluster.domain(), "main");
  const int frames = 16, parts = 4;
  const double latency = 0.01;
  auto done = token_cast<VideoDoneToken>(
      graph->call(new VideoJobToken(frames, parts, 1024, latency)));
  ASSERT_TRUE(done);
  EXPECT_EQ(done->frames, frames);
  const double t = cluster.domain().now();
  const double read_bound = frames * parts * latency / 4;  // 4 disks
  EXPECT_GT(t, read_bound * 0.9);
  EXPECT_LT(t, read_bound * 1.6)
      << "frame processing must overlap the disk reads";
}

}  // namespace
}  // namespace dps
