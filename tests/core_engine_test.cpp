// End-to-end tests of the DPS core engine using the paper's tutorial
// application: split a string into characters, uppercase them on a thread
// collection spread over the cluster, merge them back in order.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "net/fabric.hpp"
#include "net/inproc_transport.hpp"
#include "net/tcp_transport.hpp"
#include "obs/trace.hpp"
#include "obs/trace_query.hpp"
#include "serial/buffer_pool.hpp"
#include "tests/mcast_app.hpp"
#include "tests/toupper_app.hpp"

namespace dps {
namespace {

using namespace dps_tutorial;

std::string run_toupper(Cluster& cluster, const std::string& input,
                        int compute_threads) {
  Application app(cluster, "toupper-test");
  auto graph = build_toupper_graph(app, compute_threads);
  ActorScope scope(cluster.domain(), "test-main");
  auto result =
      token_cast<StringToken>(graph->call(new StringToken(input.c_str())));
  if (!result) return "<no result>";
  return std::string(result->str, static_cast<size_t>(result->len));
}

TEST(ToUpper, SingleNodeSingleThread) {
  Cluster cluster(ClusterConfig::inproc(1));
  EXPECT_EQ(run_toupper(cluster, "hello world", 1), "HELLO WORLD");
}

TEST(ToUpper, InprocFourNodes) {
  Cluster cluster(ClusterConfig::inproc(4));
  EXPECT_EQ(run_toupper(cluster, "hello, distributed world!", 4),
            "HELLO, DISTRIBUTED WORLD!");
}

TEST(ToUpper, MoreThreadsThanNodes) {
  // The paper's "nodeA*2 nodeB" multiplier: several DPS threads per node.
  Cluster cluster(ClusterConfig::inproc(2));
  EXPECT_EQ(run_toupper(cluster, "multiplier mapping", 6),
            "MULTIPLIER MAPPING");
}

TEST(ToUpper, OverTcpSockets) {
  Cluster cluster(ClusterConfig::tcp(3));
  EXPECT_EQ(run_toupper(cluster, "over real sockets", 3),
            "OVER REAL SOCKETS");
}

TEST(ToUpper, UnderVirtualTime) {
  Cluster cluster(ClusterConfig::simulated(4));
  EXPECT_EQ(run_toupper(cluster, "simulated cluster", 4),
            "SIMULATED CLUSTER");
  EXPECT_GT(cluster.domain().now(), 0.0)
      << "tokens crossed modeled links, the virtual clock must have moved";
}

TEST(ToUpper, RepeatedCallsPipelste) {
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "pipeline");
  auto graph = build_toupper_graph(app, 2);
  ActorScope scope(cluster.domain(), "test-main");
  // Several overlapping calls through the same graph.
  std::vector<CallHandle> handles;
  std::vector<std::string> inputs;
  for (int i = 0; i < 16; ++i) {
    inputs.push_back("call number " + std::to_string(i));
    handles.push_back(graph->call_async(new StringToken(inputs.back().c_str())));
  }
  for (int i = 0; i < 16; ++i) {
    auto result = token_cast<StringToken>(handles[static_cast<size_t>(i)].wait());
    ASSERT_TRUE(result);
    std::string expect = inputs[static_cast<size_t>(i)];
    for (auto& c : expect) c = static_cast<char>(std::toupper(c));
    EXPECT_EQ(std::string(result->str, static_cast<size_t>(result->len)),
              expect);
  }
}

TEST(ToUpper, SingleCharacterString) {
  Cluster cluster(ClusterConfig::inproc(2));
  EXPECT_EQ(run_toupper(cluster, "x", 2), "X");
}

TEST(ToUpper, ThreadStatePersistsAcrossExecutions) {
  // ComputeThread::executions counts per-thread work: after a call with N
  // characters over 1 thread, that thread must have executed N times —
  // thread member state persists, the basis for distributed data structures.
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "state");
  auto graph = build_toupper_graph(app, 1);
  ActorScope scope(cluster.domain(), "test-main");
  auto r1 = graph->call(new StringToken("aaaa"));
  ASSERT_TRUE(r1);
  auto r2 = graph->call(new StringToken("bb"));
  ASSERT_TRUE(r2);
  // 4 + 2 executions on the single compute thread; verified indirectly: a
  // third call still works and the engine dispatched 6 leaf executions.
  EXPECT_GE(cluster.controller(0).dispatched(), 6u);
}

// A leaf slow enough (~2 ms per token) that its executions are visible next
// to the merge's collection window in the flight recorder.
class SlowUpper
    : public LeafOperation<ComputeThread, TV1(CharToken), TV1(CharToken)> {
 public:
  void execute(CharToken* in) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    postToken(new CharToken(
        static_cast<char>(std::toupper(static_cast<unsigned char>(in->chr))),
        in->pos));
  }
  DPS_IDENTIFY_OPERATION(SlowUpper);
};

// The paper's Table 1 claim — DPS pipelines implicitly, overlapping the
// collecting merge with still-running compute — proven from the trace: the
// merge's kOpStart..kOpEnd interval must overlap leaf execution intervals
// by a nonzero window.
TEST(ToUpper, TraceProvesComputeMergeOverlap) {
  if (!obs::kTraceCompiled) {
    GTEST_SKIP() << "built without DPS_TRACE; use the trace preset";
  }
  obs::Trace::instance().reset();
  obs::Trace::instance().configure(
      {/*enabled=*/true, /*sample_every=*/1, /*buffer_capacity=*/1u << 15});
  {
    Cluster cluster(ClusterConfig::inproc(1));
    Application app(cluster, "overlap");
    auto main_threads = app.thread_collection<MainThread>("main");
    main_threads->map("node0");
    auto compute = app.thread_collection<ComputeThread>("proc");
    compute->map(round_robin_mapping({"node0"}, 2));
    FlowgraphBuilder b =
        FlowgraphNode<SplitString, MainRoute>(main_threads) >>
        FlowgraphNode<SlowUpper, RoundRobinRoute>(compute) >>
        FlowgraphNode<MergeString, MainCharRoute>(main_threads);
    auto graph = app.build_graph(b, "overlap");
    ActorScope scope(cluster.domain(), "test-main");
    auto result = token_cast<StringToken>(
        graph->call(new StringToken("pipelining overlap probe")));
    ASSERT_TRUE(result);
    EXPECT_EQ(std::string(result->str, static_cast<size_t>(result->len)),
              "PIPELINING OVERLAP PROBE");
  }
  obs::TraceQuery q(obs::Trace::instance().collect());
  obs::Trace::instance().set_enabled(false);
  obs::Trace::instance().reset();

  std::vector<obs::TraceQuery::Interval> leaves, merges;
  for (const auto& iv : q.intervals()) {
    if (iv.opkind == static_cast<uint64_t>(OpKind::kLeaf)) {
      leaves.push_back(iv);
    } else if (iv.opkind == static_cast<uint64_t>(OpKind::kMerge)) {
      merges.push_back(iv);
    }
  }
  ASSERT_FALSE(leaves.empty()) << "leaf executions must be recorded";
  ASSERT_FALSE(merges.empty()) << "the merge execution must be recorded";
  EXPECT_GT(obs::TraceQuery::overlap_ns(merges, leaves), 0u)
      << "the merge must collect while leaves still compute";
}

// The asynchronous transmit path's reason to exist: on the sending node,
// operation executions (split posting tokens, leaves computing) must overlap
// the sender thread's writev batches — with the old synchronous path the
// worker sat inside send_all and the two could never overlap.
TEST(ToUpper, TraceProvesComputeTransmitOverlap) {
  if (!obs::kTraceCompiled) {
    GTEST_SKIP() << "built without DPS_TRACE; use the trace preset";
  }
  obs::Trace::instance().reset();
  obs::Trace::instance().configure(
      {/*enabled=*/true, /*sample_every=*/1, /*buffer_capacity=*/1u << 15});
  {
    Cluster cluster(ClusterConfig::tcp(2));
    Application app(cluster, "tx-overlap");
    auto main_threads = app.thread_collection<MainThread>("main");
    main_threads->map("node0");
    auto compute = app.thread_collection<ComputeThread>("proc");
    compute->map(round_robin_mapping({"node0", "node1"}, 4));
    FlowgraphBuilder b =
        FlowgraphNode<SplitString, MainRoute>(main_threads) >>
        FlowgraphNode<SlowUpper, RoundRobinRoute>(compute) >>
        FlowgraphNode<MergeString, MainCharRoute>(main_threads);
    auto graph = app.build_graph(b, "tx-overlap");
    ActorScope scope(cluster.domain(), "test-main");
    const std::string input(96, 'q');
    auto result =
        token_cast<StringToken>(graph->call(new StringToken(input.c_str())));
    ASSERT_TRUE(result);
    EXPECT_EQ(std::string(result->str, static_cast<size_t>(result->len)),
              std::string(96, 'Q'));
  }
  obs::TraceQuery q(obs::Trace::instance().collect());
  obs::Trace::instance().set_enabled(false);
  obs::Trace::instance().reset();

  std::vector<obs::TraceQuery::Interval> compute0;
  for (const auto& iv : q.intervals()) {
    if (iv.node == 0) compute0.push_back(iv);
  }
  const auto transmit0 = q.transmit_intervals(/*node=*/0);
  ASSERT_FALSE(compute0.empty()) << "node-0 executions must be recorded";
  ASSERT_FALSE(transmit0.empty()) << "node-0 writev batches must be recorded";
  EXPECT_GT(obs::TraceQuery::overlap_ns(compute0, transmit0), 0u)
      << "the sender thread must transmit while node-0 operations execute";
}

class EmptySplit
    : public SplitOperation<MainThread, TV1(StringToken), TV1(CharToken)> {
 public:
  void execute(StringToken*) override {}
  DPS_IDENTIFY_OPERATION(EmptySplit);
};

TEST(GraphValidation, EmptySplitIsAnError) {
  // A split that posts zero tokens breaks its merge; the engine reports it
  // (the call then never completes, so use the simulated domain where the
  // stall is diagnosed as a deadlock).
  Cluster cluster(ClusterConfig::simulated(1));
  Application app(cluster, "empty-split");
  auto main_threads = app.thread_collection<MainThread>("main");
  main_threads->map("node0");
  auto compute = app.thread_collection<ComputeThread>("proc");
  compute->map("node0");
  FlowgraphBuilder b = FlowgraphNode<EmptySplit, MainRoute>(main_threads) >>
                       FlowgraphNode<ToUpperCase, RoundRobinRoute>(compute) >>
                       FlowgraphNode<MergeString, MainCharRoute>(main_threads);
  auto graph = app.build_graph(b, "empty");
  ActorScope scope(cluster.domain(), "test-main");
  auto handle = graph->call_async(new StringToken("ignored"));
  EXPECT_THROW((void)handle.wait(), Error);  // deadlock diagnosis
}

// ---------------------------------------------------------------------------
// Multicast collectives: one encode, K transmits (docs/PERFORMANCE.md)
// ---------------------------------------------------------------------------

/// Pass-through fabric wrapper that records the shared-body pointer of
/// every send_shared call — the proof that K multicast transmits reference
/// ONE encoded payload instead of K copies.
class SharedBodyRecorder : public Fabric {
 public:
  explicit SharedBodyRecorder(std::shared_ptr<Fabric> inner)
      : inner_(std::move(inner)) {}

  void attach(NodeId self, Handler handler) override {
    inner_->attach(self, std::move(handler));
  }
  void attach_batch(NodeId self, BatchHandler handler) override {
    inner_->attach_batch(self, std::move(handler));
  }
  void send(NodeId from, NodeId to, FrameKind kind,
            std::vector<std::byte> payload) override {
    inner_->send(from, to, kind, std::move(payload));
  }
  void send_shared(NodeId from, NodeId to, FrameKind kind,
                   std::vector<std::byte> prefix, SharedPayload body) override {
    {
      std::lock_guard<std::mutex> lock(mu);
      bodies.push_back(body.get());
      body_bytes.push_back(body ? body->size() : 0);
    }
    inner_->send_shared(from, to, kind, std::move(prefix), std::move(body));
  }
  void shutdown() override { inner_->shutdown(); }
  uint64_t bytes_sent() const override { return inner_->bytes_sent(); }
  uint64_t messages_sent() const override { return inner_->messages_sent(); }

  std::mutex mu;
  std::vector<const void*> bodies;
  std::vector<size_t> body_bytes;

 private:
  std::shared_ptr<Fabric> inner_;
};

// One collective with 8 destinations over 4 nodes must cost exactly one
// envelope encode and one kMcastEnvelope frame per remote node (the last
// destination rides the held-back unicast, so nodes 1..3 get one shared
// frame each); every frame's body is the SAME allocation, and no encode
// grows its pooled buffer.
TEST(Mcast, OneEncodeKTransmitSharesOnePayload) {
  constexpr int kFanout = 8;
  ClusterConfig cfg = ClusterConfig::inproc(4);
  auto recorder =
      std::make_shared<SharedBodyRecorder>(std::make_shared<InprocFabric>(4));
  cfg.external_fabric = recorder;
  BufferPool::instance().reset_stats();
  Cluster cluster(cfg);
  Application app(cluster, "bcast");
  auto graph = dps_mcast::build_bcast_graph(app, kFanout);
  ActorScope scope(cluster.domain(), "main");

  auto res = dps_mcast::run_bcast(*graph, kFanout, 0x5eed, 4096);
  ASSERT_TRUE(res);
  EXPECT_EQ(res->distinct, kFanout);
  EXPECT_EQ(res->duplicates, 0);
  EXPECT_EQ(res->uniform, 1);

  EXPECT_EQ(cluster.controller(0).multicast_encodes(), 1u)
      << "one collective => one envelope encode";
  EXPECT_EQ(cluster.controller(0).multicast_frames_sent(), 3u)
      << "flat fan-out: one frame per remote node (last dest held back as "
         "the unicast carrying the split total)";
  {
    std::lock_guard<std::mutex> lock(recorder->mu);
    ASSERT_EQ(recorder->bodies.size(), 3u);
    EXPECT_EQ(recorder->bodies[0], recorder->bodies[1]);
    EXPECT_EQ(recorder->bodies[1], recorder->bodies[2])
        << "all transmits must share one payload allocation";
    EXPECT_GT(recorder->body_bytes[0], size_t{4096})
        << "the shared body carries the encoded blob";
  }
  EXPECT_EQ(BufferPool::instance().stats().encode_growths, 0u)
      << "the single multicast encode must get an exact-size pooled buffer";
}

// Repeated collectives scale the counters linearly — the encode count stays
// one per collective regardless of fan-out, never one per destination.
TEST(Mcast, EncodeCountStaysOnePerCollective) {
  constexpr int kFanout = 12;
  constexpr int kCalls = 5;
  Cluster cluster(ClusterConfig::inproc(3));
  Application app(cluster, "bcast");
  auto graph = dps_mcast::build_bcast_graph(app, kFanout);
  ActorScope scope(cluster.domain(), "main");
  for (int i = 0; i < kCalls; ++i) {
    auto res = dps_mcast::run_bcast(*graph, kFanout,
                                    static_cast<uint64_t>(i), 1024);
    ASSERT_TRUE(res);
    EXPECT_EQ(res->distinct, kFanout);
  }
  EXPECT_EQ(cluster.controller(0).multicast_encodes(),
            static_cast<uint64_t>(kCalls));
  EXPECT_EQ(cluster.controller(0).multicast_frames_sent(),
            static_cast<uint64_t>(kCalls) * 2)  // nodes 1 and 2, one frame each
      << "K destinations never cost K frames";
}

// The bcast app maps its master collection onto a single thread, so the
// split and the merge share one worker. The adaptive window starts at 4 —
// below the fan-out — and a collective that parked that worker in
// flow_acquire would deadlock: the only releases come from the colocated
// merge queued behind it. The collective window floor must keep it live,
// over both fabrics (the huge static default window used to mask this).
TEST(Mcast, AdaptiveWindowBelowFanoutCannotStarveSharedSplitMergeWorker) {
  constexpr int kFanout = 9;  // > AdaptiveWindowConfig initial window (4)
  for (const bool tcp : {false, true}) {
    SCOPED_TRACE(tcp ? "tcp" : "inproc");
    ClusterConfig cfg =
        tcp ? ClusterConfig::tcp(3) : ClusterConfig::inproc(3);
    cfg.adaptive_flow = true;
    Cluster cluster(cfg);
    Application app(cluster, "bcast");
    auto graph = dps_mcast::build_bcast_graph(app, kFanout);
    ActorScope scope(cluster.domain(), "main");
    for (int r = 0; r < 3; ++r) {
      auto res = dps_mcast::run_bcast(*graph, kFanout,
                                      static_cast<uint64_t>(0xadab + r), 2048);
      ASSERT_TRUE(res);
      EXPECT_EQ(res->distinct, kFanout);
      EXPECT_EQ(res->duplicates, 0);
      EXPECT_EQ(res->uniform, 1);
    }
    EXPECT_EQ(cluster.controller(0).multicast_encodes(), 3u);
  }
}

// Trace-driven proof over the real TCP fabric: the flight recorder shows
// exactly one kMcastSend for the collective, one kMcastDeliver per remote
// node's frame, and the frames ride the async sender's coalesced kTxBatch
// windows — while the fabric-level recorder still sees a single shared
// body. This is the wire-level half of the one-encode-K-transmit claim.
TEST(Mcast, TraceShowsSharedTransmitsOverTcp) {
  if (!obs::kTraceCompiled) {
    GTEST_SKIP() << "built without DPS_TRACE; use the trace preset";
  }
  constexpr int kFanout = 8;
  obs::Trace::instance().reset();
  obs::Trace::instance().configure(
      {/*enabled=*/true, /*sample_every=*/1, /*buffer_capacity=*/1u << 15});

  ClusterConfig cfg = ClusterConfig::tcp(4);
  auto recorder =
      std::make_shared<SharedBodyRecorder>(std::make_shared<TcpFabric>(4));
  cfg.external_fabric = recorder;
  uint64_t mcast_frames = 0;
  {
    Cluster cluster(cfg);
    Application app(cluster, "bcast");
    auto graph = dps_mcast::build_bcast_graph(app, kFanout);
    ActorScope scope(cluster.domain(), "main");
    auto res = dps_mcast::run_bcast(*graph, kFanout, 0x7cb, 2048);
    ASSERT_TRUE(res);
    EXPECT_EQ(res->distinct, kFanout);
    EXPECT_EQ(res->uniform, 1);
    mcast_frames = cluster.controller(0).multicast_frames_sent();
  }

  obs::TraceQuery q(obs::Trace::instance().collect());
  obs::Trace::instance().set_enabled(false);
  obs::Trace::instance().reset();

  EXPECT_EQ(q.count(obs::EventKind::kMcastSend), 1u)
      << "one collective => one mcast_send event";
  EXPECT_EQ(q.count(obs::EventKind::kMcastDeliver), mcast_frames)
      << "one grouped delivery per remote node's frame";
  uint64_t delivered = 0;
  for (const auto& ev : q.of_kind(obs::EventKind::kMcastDeliver)) {
    delivered += ev.e.b;  // a = target vertex, b = tokens delivered
  }
  EXPECT_EQ(delivered, 5u)
      << "threads 1,2,3,5,6 arrive via mcast frames (0,4 are local; 7 is "
         "the held-back unicast)";
  EXPECT_GE(q.transmit_intervals(0).size(), 1u)
      << "the shared frames must ride the async sender's kTxBatch windows";
  {
    std::lock_guard<std::mutex> lock(recorder->mu);
    ASSERT_GE(recorder->bodies.size(), 3u);
    EXPECT_EQ(recorder->bodies[0], recorder->bodies[1]);
    EXPECT_EQ(recorder->bodies[1], recorder->bodies[2]);
  }
}

}  // namespace
}  // namespace dps
