// End-to-end tests of the DPS core engine using the paper's tutorial
// application: split a string into characters, uppercase them on a thread
// collection spread over the cluster, merge them back in order.
#include <gtest/gtest.h>

#include "tests/toupper_app.hpp"

namespace dps {
namespace {

using namespace dps_tutorial;

std::string run_toupper(Cluster& cluster, const std::string& input,
                        int compute_threads) {
  Application app(cluster, "toupper-test");
  auto graph = build_toupper_graph(app, compute_threads);
  ActorScope scope(cluster.domain(), "test-main");
  auto result =
      token_cast<StringToken>(graph->call(new StringToken(input.c_str())));
  if (!result) return "<no result>";
  return std::string(result->str, static_cast<size_t>(result->len));
}

TEST(ToUpper, SingleNodeSingleThread) {
  Cluster cluster(ClusterConfig::inproc(1));
  EXPECT_EQ(run_toupper(cluster, "hello world", 1), "HELLO WORLD");
}

TEST(ToUpper, InprocFourNodes) {
  Cluster cluster(ClusterConfig::inproc(4));
  EXPECT_EQ(run_toupper(cluster, "hello, distributed world!", 4),
            "HELLO, DISTRIBUTED WORLD!");
}

TEST(ToUpper, MoreThreadsThanNodes) {
  // The paper's "nodeA*2 nodeB" multiplier: several DPS threads per node.
  Cluster cluster(ClusterConfig::inproc(2));
  EXPECT_EQ(run_toupper(cluster, "multiplier mapping", 6),
            "MULTIPLIER MAPPING");
}

TEST(ToUpper, OverTcpSockets) {
  Cluster cluster(ClusterConfig::tcp(3));
  EXPECT_EQ(run_toupper(cluster, "over real sockets", 3),
            "OVER REAL SOCKETS");
}

TEST(ToUpper, UnderVirtualTime) {
  Cluster cluster(ClusterConfig::simulated(4));
  EXPECT_EQ(run_toupper(cluster, "simulated cluster", 4),
            "SIMULATED CLUSTER");
  EXPECT_GT(cluster.domain().now(), 0.0)
      << "tokens crossed modeled links, the virtual clock must have moved";
}

TEST(ToUpper, RepeatedCallsPipelste) {
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "pipeline");
  auto graph = build_toupper_graph(app, 2);
  ActorScope scope(cluster.domain(), "test-main");
  // Several overlapping calls through the same graph.
  std::vector<CallHandle> handles;
  std::vector<std::string> inputs;
  for (int i = 0; i < 16; ++i) {
    inputs.push_back("call number " + std::to_string(i));
    handles.push_back(graph->call_async(new StringToken(inputs.back().c_str())));
  }
  for (int i = 0; i < 16; ++i) {
    auto result = token_cast<StringToken>(handles[static_cast<size_t>(i)].wait());
    ASSERT_TRUE(result);
    std::string expect = inputs[static_cast<size_t>(i)];
    for (auto& c : expect) c = static_cast<char>(std::toupper(c));
    EXPECT_EQ(std::string(result->str, static_cast<size_t>(result->len)),
              expect);
  }
}

TEST(ToUpper, SingleCharacterString) {
  Cluster cluster(ClusterConfig::inproc(2));
  EXPECT_EQ(run_toupper(cluster, "x", 2), "X");
}

TEST(ToUpper, ThreadStatePersistsAcrossExecutions) {
  // ComputeThread::executions counts per-thread work: after a call with N
  // characters over 1 thread, that thread must have executed N times —
  // thread member state persists, the basis for distributed data structures.
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "state");
  auto graph = build_toupper_graph(app, 1);
  ActorScope scope(cluster.domain(), "test-main");
  auto r1 = graph->call(new StringToken("aaaa"));
  ASSERT_TRUE(r1);
  auto r2 = graph->call(new StringToken("bb"));
  ASSERT_TRUE(r2);
  // 4 + 2 executions on the single compute thread; verified indirectly: a
  // third call still works and the engine dispatched 6 leaf executions.
  EXPECT_GE(cluster.controller(0).dispatched(), 6u);
}

class EmptySplit
    : public SplitOperation<MainThread, TV1(StringToken), TV1(CharToken)> {
 public:
  void execute(StringToken*) override {}
  DPS_IDENTIFY_OPERATION(EmptySplit);
};

TEST(GraphValidation, EmptySplitIsAnError) {
  // A split that posts zero tokens breaks its merge; the engine reports it
  // (the call then never completes, so use the simulated domain where the
  // stall is diagnosed as a deadlock).
  Cluster cluster(ClusterConfig::simulated(1));
  Application app(cluster, "empty-split");
  auto main_threads = app.thread_collection<MainThread>("main");
  main_threads->map("node0");
  auto compute = app.thread_collection<ComputeThread>("proc");
  compute->map("node0");
  FlowgraphBuilder b = FlowgraphNode<EmptySplit, MainRoute>(main_threads) >>
                       FlowgraphNode<ToUpperCase, RoundRobinRoute>(compute) >>
                       FlowgraphNode<MergeString, MainCharRoute>(main_threads);
  auto graph = app.build_graph(b, "empty");
  ActorScope scope(cluster.domain(), "test-main");
  auto handle = graph->call_async(new StringToken("ignored"));
  EXPECT_THROW((void)handle.wait(), Error);  // deadlock diagnosis
}

}  // namespace
}  // namespace dps
