// Engine error-path tests: contract violations must be diagnosed loudly
// (logged + the schedule stalls detectably), never silently corrupt state.
#include <gtest/gtest.h>

#include "core/application.hpp"
#include "core/controller.hpp"

namespace dps {
namespace {

class ENumToken : public SimpleToken {
 public:
  int value;
  ENumToken(int v = 0) : value(v) {}
  DPS_IDENTIFY(ENumToken);
};

class EOtherToken : public SimpleToken {
 public:
  int value;
  EOtherToken(int v = 0) : value(v) {}
  DPS_IDENTIFY(EOtherToken);
};

class EMainThread : public Thread {
  DPS_IDENTIFY_THREAD(EMainThread);
};
class EWorkThread : public Thread {
  DPS_IDENTIFY_THREAD(EWorkThread);
};

DPS_ROUTE(EMainRoute, EMainThread, ENumToken, 0);
DPS_ROUTE(EWorkRoute, EWorkThread, ENumToken, 0);

// Leaf that breaks its cardinality contract: posts twice.
class EDoublePostLeaf
    : public LeafOperation<EWorkThread, TV1(ENumToken), TV1(ENumToken)> {
 public:
  void execute(ENumToken* in) override {
    postToken(new ENumToken(in->value));
    postToken(new ENumToken(in->value));  // contract violation
  }
  DPS_IDENTIFY_OPERATION(EDoublePostLeaf);
};

// Leaf that posts a type its successor does not accept.
class EWrongTypeLeaf
    : public LeafOperation<EWorkThread, TV1(ENumToken),
                           TV2(ENumToken, EOtherToken)> {
 public:
  void execute(ENumToken* in) override {
    postToken(new EOtherToken(in->value));  // no successor accepts this
  }
  DPS_IDENTIFY_OPERATION(EWrongTypeLeaf);
};

// Route that returns an out-of-range index.
class EBadRoute : public Route<EWorkThread, ENumToken> {
 public:
  int route(ENumToken*) override { return 999; }
  DPS_IDENTIFY_ROUTE(EBadRoute);
};

class ESplit
    : public SplitOperation<EMainThread, TV1(ENumToken), TV1(ENumToken)> {
 public:
  void execute(ENumToken* in) override {
    for (int i = 0; i < in->value; ++i) postToken(new ENumToken(i));
  }
  DPS_IDENTIFY_OPERATION(ESplit);
};

class EMerge
    : public MergeOperation<EMainThread, TV1(ENumToken), TV1(ENumToken)> {
 public:
  void execute(ENumToken* first) override {
    int sum = first->value;
    while (auto t = waitForNextToken()) sum += token_cast<ENumToken>(t)->value;
    postToken(new ENumToken(sum));
  }
  DPS_IDENTIFY_OPERATION(EMerge);
};

// User operation that throws mid-execution.
class EThrowingLeaf
    : public LeafOperation<EWorkThread, TV1(ENumToken), TV1(ENumToken)> {
 public:
  void execute(ENumToken* in) override {
    if (in->value == 3) throw std::runtime_error("user code failure");
    postToken(new ENumToken(in->value));
  }
  DPS_IDENTIFY_OPERATION(EThrowingLeaf);
};

template <class LeafOp, class RouteT = EWorkRoute>
void expect_deadlocked_call(const char* name) {
  Cluster cluster(ClusterConfig::simulated(2));
  Application app(cluster, name);
  auto mains = app.thread_collection<EMainThread>(std::string(name) + "-m");
  mains->map("node0");
  auto collectors =
      app.thread_collection<EMainThread>(std::string(name) + "-c");
  collectors->map("node0");
  auto workers = app.thread_collection<EWorkThread>(std::string(name) + "-w");
  workers->map("node1");
  FlowgraphBuilder b = FlowgraphNode<ESplit, EMainRoute>(mains) >>
                       FlowgraphNode<LeafOp, RouteT>(workers) >>
                       FlowgraphNode<EMerge, EMainRoute>(collectors);
  auto graph = app.build_graph(b, name);
  ActorScope scope(cluster.domain(), "main");
  auto handle = graph->call_async(new ENumToken(5));
  EXPECT_THROW((void)handle.wait(), Error)
      << name << ": the violation must surface as a detectable stall";
}

TEST(ErrorPaths, LeafDoublePostSuppressed) {
  // The contract check fires on the *second* postToken, before the extra
  // token enters the stream: the violation is logged, the duplicate never
  // reaches the merge, and the call completes with the correct result.
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "double-post");
  auto mains = app.thread_collection<EMainThread>("dp-m");
  mains->map("node0");
  auto workers = app.thread_collection<EWorkThread>("dp-w");
  workers->map("node1");
  FlowgraphBuilder b = FlowgraphNode<ESplit, EMainRoute>(mains) >>
                       FlowgraphNode<EDoublePostLeaf, EWorkRoute>(workers) >>
                       FlowgraphNode<EMerge, EMainRoute>(mains);
  auto graph = app.build_graph(b, "double-post");
  ActorScope scope(cluster.domain(), "main");
  auto result = token_cast<ENumToken>(graph->call(new ENumToken(5)));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->value, 0 + 1 + 2 + 3 + 4);
}

TEST(ErrorPaths, UnroutableTokenDiagnosed) {
  expect_deadlocked_call<EWrongTypeLeaf>("unroutable");
}

TEST(ErrorPaths, OutOfRangeRouteDiagnosed) {
  expect_deadlocked_call<EDoublePostLeaf, EBadRoute>("bad-route");
}

TEST(ErrorPaths, ThrowingUserOperationDiagnosed) {
  expect_deadlocked_call<EThrowingLeaf>("throwing");
}

TEST(ErrorPaths, TerminalPostWithoutCallRejected) {
  // A token posted at a terminal vertex belongs to a call; the engine
  // refuses stray terminal posts (env.call == 0 cannot occur through the
  // public API, but the check guards internal invariants). Covered
  // indirectly: every public path sets a call id, so a full round trip
  // must succeed.
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "terminal");
  auto mains = app.thread_collection<EMainThread>("t-m");
  mains->map("node0");
  auto workers = app.thread_collection<EWorkThread>("t-w");
  workers->map("node0");
  FlowgraphBuilder b = FlowgraphNode<ESplit, EMainRoute>(mains) >>
                       FlowgraphNode<EThrowingLeaf, EWorkRoute>(workers) >>
                       FlowgraphNode<EMerge, EMainRoute>(mains);
  auto graph = app.build_graph(b, "terminal");
  ActorScope scope(cluster.domain(), "main");
  auto result = token_cast<ENumToken>(graph->call(new ENumToken(2)));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->value, 0 + 1);
}

TEST(ErrorPaths, WrongInputTypeToCallRejected) {
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "wrong-input");
  auto mains = app.thread_collection<EMainThread>("wi-m");
  mains->map("node0");
  auto workers = app.thread_collection<EWorkThread>("wi-w");
  workers->map("node0");
  FlowgraphBuilder b = FlowgraphNode<ESplit, EMainRoute>(mains) >>
                       FlowgraphNode<EThrowingLeaf, EWorkRoute>(workers) >>
                       FlowgraphNode<EMerge, EMainRoute>(mains);
  auto graph = app.build_graph(b, "wrong-input");
  ActorScope scope(cluster.domain(), "main");
  try {
    (void)graph->call(new EOtherToken(1));
    FAIL() << "expected type mismatch";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kTypeMismatch);
  }
}

}  // namespace
}  // namespace dps
