// Unit tests for the utility substrate: error type, mapping-string parser,
// stopwatch sanity.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/mapping.hpp"
#include "util/stopwatch.hpp"

namespace dps {
namespace {

TEST(Error, CarriesCodeAndMessage) {
  try {
    raise(Errc::kTypeMismatch, "boom");
    FAIL() << "raise returned";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kTypeMismatch);
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("type_mismatch"), std::string::npos);
  }
}

TEST(Error, CodeNames) {
  EXPECT_STREQ(to_string(Errc::kUnroutable), "unroutable");
  EXPECT_STREQ(to_string(Errc::kProtocol), "protocol");
  EXPECT_STREQ(to_string(Errc::kDeadlock), "deadlock");
}

TEST(Mapping, SingleNode) {
  EXPECT_EQ(parse_mapping("nodeA"), (std::vector<std::string>{"nodeA"}));
}

TEST(Mapping, PaperExample) {
  // "nodeA*2 nodeB" creates three threads, two on nodeA, one on nodeB.
  EXPECT_EQ(parse_mapping("nodeA*2 nodeB"),
            (std::vector<std::string>{"nodeA", "nodeA", "nodeB"}));
}

TEST(Mapping, MultipliersAndWhitespace) {
  EXPECT_EQ(parse_mapping("  a*3   b*1  c  "),
            (std::vector<std::string>{"a", "a", "a", "b", "c"}));
}

TEST(Mapping, LargeMultiplier) {
  auto v = parse_mapping("n*64");
  ASSERT_EQ(v.size(), 64u);
  EXPECT_EQ(v.front(), "n");
  EXPECT_EQ(v.back(), "n");
}

TEST(Mapping, RejectsEmpty) {
  EXPECT_THROW(parse_mapping(""), Error);
  EXPECT_THROW(parse_mapping("   "), Error);
}

TEST(Mapping, RejectsDanglingStar) {
  EXPECT_THROW(parse_mapping("nodeA*"), Error);
  EXPECT_THROW(parse_mapping("nodeA* nodeB"), Error);
}

TEST(Mapping, RejectsZeroMultiplier) {
  EXPECT_THROW(parse_mapping("nodeA*0"), Error);
}

TEST(Mapping, RoundRobinHelper) {
  EXPECT_EQ(round_robin_mapping({"x", "y"}, 5), "x y x y x");
  EXPECT_EQ(round_robin_mapping({"solo"}, 2), "solo solo");
  EXPECT_THROW(round_robin_mapping({}, 3), Error);
  EXPECT_THROW(round_robin_mapping({"x"}, 0), Error);
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch sw;
  double a = sw.seconds();
  double b = sw.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

}  // namespace
}  // namespace dps
