// Unit tests for the token envelope: wire round trips, split-frame stacks,
// and tamper rejection.
#include <gtest/gtest.h>

#include "core/envelope.hpp"

namespace dps {
namespace {

class EnvPayloadToken : public SimpleToken {
 public:
  int32_t a;
  double b;
  EnvPayloadToken(int32_t a_ = 0, double b_ = 0) : a(a_), b(b_) {}
  DPS_IDENTIFY(EnvPayloadToken);
};

Envelope sample() {
  Envelope e;
  e.app = 3;
  e.graph = 1;
  e.vertex = 7;
  e.collection = 2;
  e.thread = 5;
  e.call = 0x1234567890abcdefull;
  e.call_reply_node = 1;
  e.frames.push_back(SplitFrame{111, 4, 0, 0, 2});
  e.frames.push_back(SplitFrame{222, 9, 1, 17, 0});
  e.token = Ptr<Token>(new EnvPayloadToken(42, 2.5));
  return e;
}

TEST(Envelope, EncodeDecodeRoundTrip) {
  Envelope e = sample();
  Writer w;
  e.encode(w);
  Reader r(w.bytes());
  Envelope d = Envelope::decode(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(d.app, e.app);
  EXPECT_EQ(d.graph, e.graph);
  EXPECT_EQ(d.vertex, e.vertex);
  EXPECT_EQ(d.collection, e.collection);
  EXPECT_EQ(d.thread, e.thread);
  EXPECT_EQ(d.call, e.call);
  EXPECT_EQ(d.call_reply_node, e.call_reply_node);
  ASSERT_EQ(d.frames.size(), 2u);
  EXPECT_EQ(d.frames[0].context, 111u);
  EXPECT_EQ(d.frames[0].seq, 4u);
  EXPECT_EQ(d.frames[1].context, 222u);
  EXPECT_EQ(d.frames[1].has_total, 1);
  EXPECT_EQ(d.frames[1].total, 17u);
  auto tok = token_cast<EnvPayloadToken>(d.token);
  ASSERT_TRUE(tok);
  EXPECT_EQ(tok->a, 42);
  EXPECT_EQ(tok->b, 2.5);
}

TEST(Envelope, EmptyFrameStack) {
  Envelope e;
  e.token = Ptr<Token>(new EnvPayloadToken(1, 1));
  Writer w;
  e.encode(w);
  Reader r(w.bytes());
  Envelope d = Envelope::decode(r);
  EXPECT_TRUE(d.frames.empty());
  EXPECT_EQ(d.vertex, kNoVertex);
}

TEST(Envelope, TopFrameAccessors) {
  Envelope e = sample();
  EXPECT_EQ(e.top_frame().context, 222u);
  const Envelope& ce = e;
  EXPECT_EQ(ce.top_frame().context, 222u);
}

TEST(Envelope, TruncatedPayloadRejected) {
  Envelope e = sample();
  Writer w;
  e.encode(w);
  auto bytes = w.take();
  bytes.resize(bytes.size() - 4);  // chop the token payload
  Reader r(bytes.data(), bytes.size());
  EXPECT_THROW((void)Envelope::decode(r), Error);
}

TEST(Envelope, EncodedSizeMatchesWriter) {
  Envelope e = sample();
  Writer w;
  e.encode(w);
  EXPECT_EQ(e.encoded_size(), w.size());
}

TEST(Envelope, DeepFrameStack) {
  Envelope e;
  for (uint32_t i = 0; i < 20; ++i) {
    e.frames.push_back(SplitFrame{1000 + i, i, 0, 0, i % 4});
  }
  e.token = Ptr<Token>(new EnvPayloadToken(0, 0));
  Writer w;
  e.encode(w);
  Reader r(w.bytes());
  Envelope d = Envelope::decode(r);
  ASSERT_EQ(d.frames.size(), 20u);
  for (uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(d.frames[i].context, 1000 + i);
  }
}

}  // namespace
}  // namespace dps
