// Unit tests for the linear-algebra substrate: gemm, panel LU with partial
// pivoting, trsm, and the sequential block-LU identity P*A = L*U.
#include <gtest/gtest.h>

#include "la/factor.hpp"

namespace dps::la {
namespace {

TEST(Matrix, BlockExtractAndSet) {
  Matrix a(4, 6);
  a.fill_random(1);
  Matrix b = a.block(1, 2, 2, 3);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.cols(), 3u);
  EXPECT_EQ(b.at(0, 0), a.at(1, 2));
  EXPECT_EQ(b.at(1, 2), a.at(2, 4));
  Matrix c(4, 6);
  c.set_block(1, 2, b);
  EXPECT_EQ(c.at(1, 2), a.at(1, 2));
  EXPECT_EQ(c.at(0, 0), 0.0);
}

TEST(Matrix, GemmAgainstHandComputed) {
  Matrix a(2, 3), b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  std::copy_n(av, 6, a.data());
  std::copy_n(bv, 6, b.data());
  Matrix c = gemm(a, b);
  EXPECT_EQ(c.at(0, 0), 58);
  EXPECT_EQ(c.at(0, 1), 64);
  EXPECT_EQ(c.at(1, 0), 139);
  EXPECT_EQ(c.at(1, 1), 154);
}

TEST(Matrix, GemmIdentity) {
  Matrix a(8, 8);
  a.fill_random(3);
  Matrix i = Matrix::identity(8);
  EXPECT_LT(max_abs_diff(gemm(a, i), a), 1e-12);
  EXPECT_LT(max_abs_diff(gemm(i, a), a), 1e-12);
}

TEST(Matrix, SwapRows) {
  Matrix a(3, 2);
  a.fill_random(5);
  Matrix b = a;
  a.swap_rows(0, 2);
  EXPECT_EQ(a.at(0, 0), b.at(2, 0));
  EXPECT_EQ(a.at(2, 1), b.at(0, 1));
  a.swap_rows(1, 1);  // no-op
  EXPECT_EQ(a.at(1, 0), b.at(1, 0));
}

class LuSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(LuSizes, SequentialLuReconstructs) {
  const size_t n = GetParam();
  Matrix a(n, n);
  a.fill_random(n * 7 + 1);
  Matrix original = a;
  std::vector<int> pivots;
  lu_sequential(a, pivots);
  Matrix pa = permute_rows(original, pivots);
  EXPECT_LT(max_abs_diff(lu_reconstruct(a, pivots), pa), 1e-9 * n)
      << "P*A != L*U for n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LuSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64, 100));

TEST(Lu, PanelFactorizationTall) {
  // Rectangular LU of a tall panel (the paper's step 1).
  Matrix a(12, 4);
  a.fill_random(11);
  Matrix original = a;
  std::vector<int> pivots;
  getrf_panel(a, pivots);
  // Reconstruct: P*A = L * U with L (12x4, unit lower trapezoid) and U (4x4).
  Matrix l(12, 4), u(4, 4);
  for (size_t r = 0; r < 12; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      if (r == c) {
        l.at(r, c) = 1.0;
        u.at(r, c) = a.at(r, c);
      } else if (r > c) {
        l.at(r, c) = a.at(r, c);
      } else {
        u.at(r, c) = a.at(r, c);
      }
    }
  }
  Matrix pa = permute_rows(original, pivots);
  EXPECT_LT(max_abs_diff(gemm(l, u), pa), 1e-10);
}

TEST(Lu, TrsmSolvesUnitLowerSystem) {
  // Build L (unit lower) and X, compute B = L*X, then solve and compare.
  const size_t n = 16, w = 5;
  Matrix l = Matrix::identity(n);
  Matrix seedm(n, n);
  seedm.fill_random(23);
  for (size_t r = 1; r < n; ++r) {
    for (size_t c = 0; c < r; ++c) l.at(r, c) = seedm.at(r, c);
  }
  Matrix x(n, w);
  x.fill_random(29);
  Matrix b = gemm(l, x);
  trsm_lower_unit(l, b);
  EXPECT_LT(max_abs_diff(b, x), 1e-9);
}

TEST(Lu, PivotingHandlesZeroLeadingElement) {
  Matrix a(3, 3);
  double v[] = {0, 1, 2, 3, 4, 5, 6, 7, 9};
  std::copy_n(v, 9, a.data());
  Matrix original = a;
  std::vector<int> pivots;
  lu_sequential(a, pivots);
  EXPECT_LT(max_abs_diff(lu_reconstruct(a, pivots),
                         permute_rows(original, pivots)),
            1e-10);
  EXPECT_EQ(pivots[0], 2);  // largest |a(i,0)| is row 2
}

TEST(Lu, BlockedStepsMatchUnblocked) {
  // Manually run the paper's three steps for one block level and compare to
  // the plain factorization.
  const size_t n = 24, r = 8;
  Matrix a(n, n);
  a.fill_random(77);
  Matrix reference = a;
  std::vector<int> ref_piv;
  lu_sequential(reference, ref_piv);

  // Step 1: rectangular LU of the first panel.
  Matrix panel = a.block(0, 0, n, r);
  std::vector<int> piv;
  getrf_panel(panel, piv);
  // Step 2: apply pivots to the trailing columns and solve the triangle.
  Matrix rest = a.block(0, r, n, n - r);
  apply_pivots(rest, piv);
  Matrix l11(r, r);
  for (size_t i = 0; i < r; ++i) {
    l11.at(i, i) = 1.0;
    for (size_t j = 0; j < i; ++j) l11.at(i, j) = panel.at(i, j);
  }
  Matrix t12 = rest.block(0, 0, r, n - r);
  trsm_lower_unit(l11, t12);
  // Step 3: trailing update A' = B - L21 * T12.
  Matrix l21 = panel.block(r, 0, n - r, r);
  Matrix b = rest.block(r, 0, n - r, n - r);
  Matrix update = gemm(l21, t12);
  for (size_t i = 0; i < b.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) b.at(i, j) -= update.at(i, j);
  }
  std::vector<int> piv2;
  getrf_panel(b, piv2);

  // The first r columns of the blocked factors must match the unblocked
  // reference up to the trailing permutation (compare U11 and T12, which
  // later pivots cannot change).
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = i; j < r; ++j) {
      EXPECT_NEAR(panel.at(i, j), reference.at(i, j), 1e-9);
    }
    for (size_t j = 0; j < n - r; ++j) {
      EXPECT_NEAR(t12.at(i, j), reference.at(i, r + j), 1e-9);
    }
  }
}

}  // namespace
}  // namespace dps::la
