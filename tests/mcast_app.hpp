// Broadcast test graph for the multicast collective path: a split posts ONE
// payload token to every compute thread via postTokenMulticast, each worker
// echoes its thread index plus a checksum of the shared payload, and the
// merge tallies distinct workers, duplicate deliveries and checksum
// mismatches. Exactly-once multicast therefore shows up as
//   distinct == fanout, total == fanout, duplicates == 0, uniform checksum —
// and any loss hangs the call (caught by test timeouts) while any duplicate
// or corruption lands in the counters. Shared by chaos_test.cpp,
// core_engine_test.cpp and service_mesh_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "core/application.hpp"
#include "core/controller.hpp"
#include "util/mapping.hpp"

namespace dps_mcast {

using namespace dps;

class BcastPayload : public ComplexToken {
 public:
  CT<int32_t> fanout;   ///< number of destination threads
  CT<uint64_t> stamp;   ///< caller-chosen value every receiver must see
  Buffer<uint8_t> blob;  ///< bulk payload (exercises the one-encode path)
  DPS_IDENTIFY(BcastPayload);
};

class BcastEcho : public SimpleToken {
 public:
  int32_t worker;
  uint64_t checksum;
  explicit BcastEcho(int32_t w = 0, uint64_t c = 0) : worker(w), checksum(c) {}
  DPS_IDENTIFY(BcastEcho);
};

class BcastResult : public SimpleToken {
 public:
  int32_t distinct;    ///< workers seen at least once
  int32_t total;       ///< echoes received in all
  int32_t duplicates;  ///< echoes beyond the first per worker
  uint64_t checksum;   ///< first echo's checksum
  int32_t uniform;     ///< 1 while every checksum matched the first
  BcastResult()
      : distinct(0), total(0), duplicates(0), checksum(0), uniform(1) {}
  DPS_IDENTIFY(BcastResult);
};

inline uint64_t bcast_checksum(const BcastPayload& p) {
  uint64_t h = p.stamp.get();
  for (size_t i = 0; i < p.blob.size(); ++i) {
    h = h * 1099511628211ull + p.blob[i];
  }
  return h;
}

class BcastMasterThread : public Thread {
  DPS_IDENTIFY_THREAD(BcastMasterThread);
};

class BcastWorkThread : public Thread {
 public:
  int deliveries = 0;  ///< tokens this thread consumed (per-thread state)
  DPS_IDENTIFY_THREAD(BcastWorkThread);
};

DPS_ROUTE(BcastRequestRoute, BcastMasterThread, BcastPayload, 0);
DPS_ROUTE(BcastEchoRoute, BcastMasterThread, BcastEcho, 0);
// Multicast posts are pre-routed per destination; this route only serves
// validation and any non-multicast fallback.
DPS_ROUTE(BcastWorkRoute, BcastWorkThread, BcastPayload, 0);

/// One postTokenMulticast to threads {0..fanout-1} of the compute
/// collection: a single encode, node-grouped frames on the wire.
class BcastSplit : public SplitOperation<BcastMasterThread, TV1(BcastPayload),
                                         TV1(BcastPayload)> {
 public:
  void execute(BcastPayload* in) override {
    std::vector<int> dests;
    for (int32_t t = 0; t < in->fanout.get(); ++t) dests.push_back(t);
    postTokenMulticast(in, dests);
  }
  DPS_IDENTIFY_OPERATION(BcastSplit);
};

class BcastWork : public LeafOperation<BcastWorkThread, TV1(BcastPayload),
                                       TV1(BcastEcho)> {
 public:
  void execute(BcastPayload* in) override {
    thread()->deliveries++;
    postToken(new BcastEcho(static_cast<int32_t>(threadIndex()),
                            bcast_checksum(*in)));
  }
  DPS_IDENTIFY_OPERATION(BcastWork);
};

class BcastMerge : public MergeOperation<BcastMasterThread, TV1(BcastEcho),
                                         TV1(BcastResult)> {
 public:
  void execute(BcastEcho* first) override {
    auto* out = new BcastResult();
    std::vector<int> seen;
    Ptr<BcastEcho> cur(first);
    for (;;) {
      out->total++;
      if (out->total == 1) out->checksum = cur->checksum;
      if (cur->checksum != out->checksum) out->uniform = 0;
      const int w = cur->worker;
      if (static_cast<size_t>(w) >= seen.size()) seen.resize(w + 1, 0);
      if (seen[w]++ == 0) {
        out->distinct++;
      } else {
        out->duplicates++;
      }
      auto t = waitForNextToken();
      if (!t) break;
      cur = token_cast<BcastEcho>(t);
    }
    postToken(out);
  }
  DPS_IDENTIFY_OPERATION(BcastMerge);
};

/// Builds the broadcast graph: master split/merge on node 0, `threads`
/// compute threads round-robin over every node of the cluster.
inline std::shared_ptr<Flowgraph> build_bcast_graph(Application& app,
                                                    int threads) {
  auto master = app.thread_collection<BcastMasterThread>("bcast-master");
  master->map(app.cluster().node_name(0));
  auto compute = app.thread_collection<BcastWorkThread>("bcast-work");
  std::vector<std::string> nodes;
  for (size_t i = 0; i < app.cluster().node_count(); ++i) {
    nodes.push_back(app.cluster().node_name(static_cast<NodeId>(i)));
  }
  compute->map(round_robin_mapping(nodes, threads));

  FlowgraphBuilder builder =
      FlowgraphNode<BcastSplit, BcastRequestRoute>(master) >>
      FlowgraphNode<BcastWork, BcastWorkRoute>(compute) >>
      FlowgraphNode<BcastMerge, BcastEchoRoute>(master);
  return app.build_graph(builder, "bcast");
}

/// One broadcast call: returns the merge's tally for `fanout` receivers.
inline Ptr<BcastResult> run_bcast(Flowgraph& graph, int fanout,
                                  uint64_t stamp, size_t blob_bytes) {
  auto* req = new BcastPayload();
  req->fanout = fanout;
  req->stamp = stamp;
  req->blob.resize(blob_bytes);
  for (size_t i = 0; i < blob_bytes; ++i) {
    req->blob[i] = static_cast<uint8_t>((stamp + i * 131) & 0xff);
  }
  return token_cast<BcastResult>(graph.call(req));
}

}  // namespace dps_mcast
