// Integration tests for the parallel block LU factorization: both graph
// variants against the sequential reference, pivot handling, and the
// virtual-time pipelining advantage (Fig. 15's core claim).
#include <gtest/gtest.h>

#include "apps/lu.hpp"

namespace dps {
namespace {

using apps::LuApp;

void expect_lu_correct(Cluster& cluster, int n, int r, bool pipelined) {
  const int blocks = n / r;
  LuApp lu(cluster, blocks);
  ActorScope scope(cluster.domain(), "main");
  la::Matrix a(static_cast<size_t>(n), static_cast<size_t>(n));
  a.fill_random(static_cast<uint64_t>(n * 31 + r));
  lu.scatter(a, r);
  lu.factorize(pipelined);
  std::vector<int> pivots;
  la::Matrix factors = lu.gather(&pivots);
  ASSERT_EQ(pivots.size(), static_cast<size_t>(n));
  const la::Matrix pa = la::permute_rows(a, pivots);
  EXPECT_LT(la::max_abs_diff(la::lu_reconstruct(factors, pivots), pa),
            1e-8 * n)
      << "n=" << n << " r=" << r << (pipelined ? " pipelined" : " barrier");
}

class LuVariant : public ::testing::TestWithParam<std::tuple<int, int, bool>> {
};

TEST_P(LuVariant, FactorizationReconstructs) {
  const auto [n, r, pipelined] = GetParam();
  Cluster cluster(ClusterConfig::inproc(std::min(4, n / r)));
  expect_lu_correct(cluster, n, r, pipelined);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LuVariant,
    ::testing::Values(std::make_tuple(16, 8, true),    // B=2, minimal
                      std::make_tuple(16, 8, false),
                      std::make_tuple(24, 8, true),    // B=3
                      std::make_tuple(24, 8, false),
                      std::make_tuple(32, 8, true),    // B=4
                      std::make_tuple(32, 8, false),
                      std::make_tuple(48, 8, true),    // B=6
                      std::make_tuple(48, 8, false),
                      std::make_tuple(64, 8, true),    // B=8
                      std::make_tuple(64, 8, false)));

TEST(LuApp, WorksOverTcpSockets) {
  Cluster cluster(ClusterConfig::tcp(3));
  expect_lu_correct(cluster, 24, 8, true);
}

TEST(LuApp, WorksUnderVirtualTime) {
  Cluster cluster(ClusterConfig::simulated(4));
  expect_lu_correct(cluster, 32, 8, true);
  EXPECT_GT(cluster.domain().now(), 0.0);
}

TEST(LuApp, PivotingActuallyPermutes) {
  // A matrix engineered to need row swaps: zero diagonal block leaders.
  Cluster cluster(ClusterConfig::inproc(2));
  LuApp lu(cluster, 2);
  ActorScope scope(cluster.domain(), "main");
  la::Matrix a(16, 16);
  a.fill_random(5);
  for (size_t i = 0; i < 16; ++i) a.at(i, i) = 0.0;  // force pivoting
  lu.scatter(a, 8);
  lu.factorize(true);
  std::vector<int> pivots;
  la::Matrix factors = lu.gather(&pivots);
  bool permuted = false;
  for (size_t k = 0; k < pivots.size(); ++k) {
    permuted = permuted || (pivots[k] != static_cast<int>(k));
  }
  EXPECT_TRUE(permuted);
  EXPECT_LT(la::max_abs_diff(la::lu_reconstruct(factors, pivots),
                             la::permute_rows(a, pivots)),
            1e-8);
}

TEST(LuApp, PipelinedBeatsBarrierUnderVirtualTime) {
  // Fig. 15's claim: the stream-based graph outruns the merge+split graph.
  auto run = [](bool pipelined) {
    Cluster cluster(ClusterConfig::simulated(4));
    LuApp lu(cluster, 8);
    ActorScope scope(cluster.domain(), "main");
    la::Matrix a(64, 64);
    a.fill_random(9);
    lu.scatter(a, 8);
    const double t0 = cluster.domain().now();
    lu.factorize(pipelined, /*sim_rate=*/220e6);
    return cluster.domain().now() - t0;
  };
  const double t_pipe = run(true);
  const double t_barrier = run(false);
  EXPECT_LT(t_pipe, t_barrier);
}

}  // namespace
}  // namespace dps
