// Tests for the indexed worker dispatch structure (core/run_queue.hpp) and
// the ordering/fairness contracts the engine builds on it: tokens of one
// context reach their merge in FIFO order, collection openers never run
// re-entrantly under a waiting collection, and dispatchable work queued
// behind a wall of non-matching envelopes is still found in O(1).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "core/application.hpp"
#include "core/controller.hpp"
#include "core/run_queue.hpp"

namespace dps {
namespace {

Envelope pending(VertexId vertex, ContextId ctx, uint32_t seq) {
  Envelope e;
  e.vertex = vertex;
  e.frames.push_back(SplitFrame{ctx, seq, 0, 0, 0});
  return e;
}

TEST(DispatchOrder, RunQueueFifoPerContext) {
  RunQueue q;
  // Two contexts interleaved on the same vertex.
  for (uint32_t i = 0; i < 5; ++i) {
    q.push(pending(3, 100, i), /*dispatchable=*/false);
    q.push(pending(3, 200, i), /*dispatchable=*/false);
  }
  EXPECT_EQ(q.size(), 10u);
  Envelope out;
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop_context(3, 200, &out));
    EXPECT_EQ(out.frames.back().seq, i) << "context 200 must stay FIFO";
  }
  EXPECT_FALSE(q.pop_context(3, 200, &out)) << "context 200 drained";
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop_context(3, 100, &out));
    EXPECT_EQ(out.frames.back().seq, i) << "context 100 must stay FIFO";
  }
  EXPECT_TRUE(q.empty());
}

TEST(DispatchOrder, RunQueueGlobalFifoSpansKinds) {
  RunQueue q;
  // Arrival order crosses bucketed and dispatchable envelopes; the
  // top-level pop_front must replay exactly that order.
  q.push(pending(1, 10, 0), false);
  q.push(pending(2, 0, 1), true);
  q.push(pending(1, 20, 2), false);
  q.push(pending(2, 0, 3), true);
  Envelope out;
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop_front(&out));
    EXPECT_EQ(out.frames.back().seq, i);
  }
  EXPECT_FALSE(q.pop_front(&out));
}

TEST(DispatchOrder, RunQueueDispatchableSkipsCollectionOpeners) {
  RunQueue q;
  // A wall of collection-opening envelopes ahead of one dispatchable leaf:
  // the old deque scanned past all of them; the indexed list goes straight
  // to the leaf and leaves the openers untouched.
  for (uint32_t i = 0; i < 100; ++i) q.push(pending(1, 1000 + i, i), false);
  q.push(pending(2, 0, 777), true);
  Envelope out;
  ASSERT_TRUE(q.pop_dispatchable(&out));
  EXPECT_EQ(out.frames.back().seq, 777u);
  EXPECT_FALSE(q.has_dispatchable());
  EXPECT_FALSE(q.pop_dispatchable(&out)) << "openers must not dispatch";
  EXPECT_EQ(q.size(), 100u);
}

TEST(DispatchOrder, RunQueuePopFrontMaintainsBuckets) {
  RunQueue q;
  q.push(pending(4, 50, 0), false);
  Envelope out;
  ASSERT_TRUE(q.pop_front(&out));
  // The bucket entry must go with it: a later context lookup finds nothing.
  EXPECT_FALSE(q.pop_context(4, 50, &out));
  EXPECT_TRUE(q.empty());
}

Envelope pending_for(TenantId tenant, uint32_t seq) {
  Envelope e = pending(2, 0, seq);
  e.tenant = tenant;
  return e;
}

TEST(DispatchOrder, RunQueueRoundRobinsAcrossTenants) {
  RunQueue q;
  // Tenant 1 floods the queue before tenants 2 and 3 contribute anything;
  // pop_dispatchable must still alternate across all three (seq encodes
  // tenant*100 + arrival index, so FIFO-within-tenant is checked too).
  for (uint32_t i = 0; i < 4; ++i) q.push(pending_for(1, 100 + i), true);
  for (uint32_t i = 0; i < 4; ++i) q.push(pending_for(2, 200 + i), true);
  for (uint32_t i = 0; i < 4; ++i) q.push(pending_for(3, 300 + i), true);
  Envelope out;
  for (uint32_t round = 0; round < 4; ++round) {
    for (uint32_t tenant = 1; tenant <= 3; ++tenant) {
      ASSERT_TRUE(q.pop_dispatchable(&out));
      EXPECT_EQ(out.tenant, tenant) << "round " << round;
      EXPECT_EQ(out.frames.back().seq, tenant * 100 + round);
    }
  }
  EXPECT_FALSE(q.pop_dispatchable(&out));
  EXPECT_TRUE(q.empty());
}

TEST(DispatchOrder, RunQueueRoundRobinSkipsDrainedTenants) {
  RunQueue q;
  // Uneven backlogs: once a tenant drains, the rotation tightens to the
  // remaining ones instead of burning turns on the empty queue.
  q.push(pending_for(7, 700), true);
  for (uint32_t i = 0; i < 3; ++i) q.push(pending_for(8, 800 + i), true);
  Envelope out;
  std::vector<uint32_t> order;
  while (q.pop_dispatchable(&out)) order.push_back(out.frames.back().seq);
  EXPECT_EQ(order, (std::vector<uint32_t>{700, 800, 801, 802}));
}

TEST(DispatchOrder, RunQueuePopFrontMaintainsTenantFifos) {
  RunQueue q;
  // Stealing a dispatchable envelope through the global FIFO must unlink
  // it from its tenant queue as well.
  q.push(pending_for(5, 1), true);
  q.push(pending_for(6, 2), true);
  Envelope out;
  ASSERT_TRUE(q.pop_front(&out));
  EXPECT_EQ(out.frames.back().seq, 1u);
  ASSERT_TRUE(q.pop_dispatchable(&out));
  EXPECT_EQ(out.frames.back().seq, 2u) << "tenant 5's entry already taken";
  EXPECT_FALSE(q.has_dispatchable());
  EXPECT_TRUE(q.empty());
}

TEST(DispatchOrder, RunQueueSlotsRecycle) {
  RunQueue q;
  Envelope out;
  // Steady-state churn across all three pop paths; every element must come
  // back exactly once and in the right order even as slots are reused.
  for (int round = 0; round < 50; ++round) {
    const auto ctx = static_cast<ContextId>(round + 1);
    for (uint32_t i = 0; i < 8; ++i) q.push(pending(1, ctx, i), false);
    q.push(pending(2, 0, 99), true);
    ASSERT_TRUE(q.pop_dispatchable(&out));
    EXPECT_EQ(out.frames.back().seq, 99u);
    for (uint32_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(q.pop_context(1, ctx, &out));
      EXPECT_EQ(out.frames.back().seq, i);
    }
    EXPECT_TRUE(q.empty());
  }
}

// --- work stealing: queue-level contracts ----------------------------------

TEST(Steal, TakesOldestContextAsFifoPrefix) {
  RunQueue q;
  // Two dispatchable (vertex, context) runs interleaved in arrival order.
  for (uint32_t i = 0; i < 5; ++i) {
    Envelope a = pending(1, 10, i);
    Envelope b = pending(2, 20, i);
    q.push(std::move(a), true);
    q.push(std::move(b), true);
  }
  std::vector<Envelope> loot;
  EXPECT_EQ(q.steal_context(&loot, 3), 3u);
  ASSERT_EQ(loot.size(), 3u);
  for (uint32_t i = 0; i < 3; ++i) {
    // The oldest run is (1, 10); the loot is its FIFO prefix, in order.
    EXPECT_EQ(loot[i].vertex, 1u);
    EXPECT_EQ(loot[i].frames.back().seq, i);
  }
  // Everything left behind is strictly newer than the stolen prefix, and
  // the victim's own dispatch order is otherwise untouched.
  Envelope out;
  std::vector<std::pair<VertexId, uint32_t>> rest;
  while (q.pop_dispatchable(&out)) {
    rest.emplace_back(out.vertex, out.frames.back().seq);
  }
  EXPECT_EQ(rest, (std::vector<std::pair<VertexId, uint32_t>>{
                      {2, 0}, {2, 1}, {2, 2}, {1, 3}, {2, 3}, {1, 4}, {2, 4}}));
  EXPECT_TRUE(q.empty());
}

TEST(Steal, NeverTakesBucketedCollectionOpeners) {
  RunQueue q;
  // Openers arrive first (older), but only dispatchable work is stealable:
  // merge/stream claims and their re-entrancy semantics stay victim-local.
  for (uint32_t i = 0; i < 3; ++i) q.push(pending(1, 10, i), false);
  q.push(pending(2, 0, 7), true);
  std::vector<Envelope> loot;
  EXPECT_EQ(q.steal_context(&loot, 10), 1u);
  EXPECT_EQ(loot[0].vertex, 2u);
  EXPECT_EQ(loot[0].frames.back().seq, 7u);
  Envelope out;
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.pop_context(1, 10, &out));
    EXPECT_EQ(out.frames.back().seq, i) << "openers must stay FIFO";
  }
  EXPECT_TRUE(q.empty());
  loot.clear();
  EXPECT_EQ(q.steal_context(&loot, 10), 0u) << "nothing dispatchable left";
}

TEST(Steal, LeavesTenantRoundRobinUntouched) {
  RunQueue q;
  // Same shape as RunQueueRoundRobinsAcrossTenants, but a thief takes two
  // envelopes of tenant 1's (oldest) run first. The rotation over what
  // remains must be unchanged: 1, 2, 3, 1, 2, 3, ... with FIFO per tenant.
  for (uint32_t i = 0; i < 4; ++i) q.push(pending_for(1, 100 + i), true);
  for (uint32_t i = 0; i < 4; ++i) q.push(pending_for(2, 200 + i), true);
  for (uint32_t i = 0; i < 4; ++i) q.push(pending_for(3, 300 + i), true);
  std::vector<Envelope> loot;
  EXPECT_EQ(q.steal_context(&loot, 2), 2u);
  EXPECT_EQ(loot[0].frames.back().seq, 100u);
  EXPECT_EQ(loot[1].frames.back().seq, 101u);
  EXPECT_EQ(loot[0].tenant, 1u) << "oldest run belongs to tenant 1";
  Envelope out;
  std::vector<uint32_t> order;
  while (q.pop_dispatchable(&out)) order.push_back(out.frames.back().seq);
  EXPECT_EQ(order, (std::vector<uint32_t>{102, 200, 300, 103, 201, 301, 202,
                                          302, 203, 303}));
}

TEST(Steal, AdversarialInterleavingKeepsPerConsumerFifoAndExactlyOnce) {
  // One owner thread pushes and pops; one thief steals concurrently with a
  // hostile cadence. The stealable contract under concurrency: every
  // envelope is consumed exactly once, and each consumer individually sees
  // its share of any one context in ascending (FIFO-prefix) order.
  RunQueue q;
  constexpr uint32_t kContexts = 4;
  constexpr uint32_t kPerContext = 400;
  std::vector<std::vector<uint32_t>> owner_got(kContexts);
  std::vector<std::vector<uint32_t>> thief_got(kContexts);
  std::atomic<bool> done{false};
  // The owner's progress condition reads only this counter; the thief_got
  // vectors stay thief-private until the join publishes them.
  std::atomic<uint64_t> stolen{0};
  std::thread thief([&] {
    std::vector<Envelope> loot;
    while (!done.load(std::memory_order_acquire)) {
      loot.clear();
      if (q.steal_context(&loot, 7) == 0) {
        std::this_thread::yield();
        continue;
      }
      for (Envelope& e : loot) {
        // One steal batch is a FIFO prefix of ONE context's run.
        ASSERT_EQ(e.vertex, loot[0].vertex);
        thief_got[e.vertex - 1].push_back(e.frames.back().seq);
      }
      stolen.fetch_add(loot.size(), std::memory_order_release);
    }
  });
  uint32_t next[kContexts] = {0, 0, 0, 0};
  uint64_t pushed = 0;
  uint64_t popped = 0;
  Envelope out;
  while (popped + stolen.load(std::memory_order_acquire) <
         static_cast<uint64_t>(kContexts) * kPerContext) {
    // Push in small rotating bursts so runs of several contexts coexist.
    for (uint32_t c = 0; c < kContexts && pushed < kContexts * kPerContext;
         ++c) {
      for (int b = 0; b < 3 && next[c] < kPerContext; ++b) {
        q.push(pending(c + 1, (c + 1) * 1000, next[c]++), true);
        ++pushed;
      }
    }
    if (q.pop_dispatchable(&out)) {
      owner_got[out.vertex - 1].push_back(out.frames.back().seq);
      ++popped;
    }
  }
  done.store(true, std::memory_order_release);
  thief.join();
  for (uint32_t c = 0; c < kContexts; ++c) {
    for (const auto* log : {&owner_got[c], &thief_got[c]}) {
      for (size_t i = 1; i < log->size(); ++i) {
        ASSERT_LT((*log)[i - 1], (*log)[i])
            << "consumer-local order of context " << c << " broken";
      }
    }
    // Exactly once: the two logs partition 0..kPerContext-1.
    std::vector<bool> seen(kPerContext, false);
    for (const auto* log : {&owner_got[c], &thief_got[c]}) {
      for (uint32_t s : *log) {
        ASSERT_LT(s, kPerContext);
        ASSERT_FALSE(seen[s]) << "seq " << s << " consumed twice";
        seen[s] = true;
      }
    }
    for (uint32_t s = 0; s < kPerContext; ++s) {
      ASSERT_TRUE(seen[s]) << "seq " << s << " of context " << c << " lost";
    }
  }
}

// --- engine-level ordering / fairness --------------------------------------

class DSeqToken : public SimpleToken {
 public:
  int index;
  DSeqToken(int i = 0) : index(i) {}
  DPS_IDENTIFY(DSeqToken);
};

class DStartToken : public SimpleToken {
 public:
  int count;
  DStartToken(int c = 0) : count(c) {}
  DPS_IDENTIFY(DStartToken);
};

class DOrderToken : public SimpleToken {
 public:
  int in_order;  ///< 1 when every token arrived in posting order
  int received;
  DOrderToken(int ok = 0, int n = 0) : in_order(ok), received(n) {}
  DPS_IDENTIFY(DOrderToken);
};

class DMainThread : public Thread {
  DPS_IDENTIFY_THREAD(DMainThread);
};
class DWorkThread : public Thread {
  DPS_IDENTIFY_THREAD(DWorkThread);
};

DPS_ROUTE(DMainStartRoute, DMainThread, DStartToken, 0);
DPS_ROUTE(DWorkSeqRoute, DWorkThread, DSeqToken, 0);

class DSplit : public SplitOperation<DMainThread, TV1(DStartToken),
                                     TV1(DSeqToken)> {
 public:
  void execute(DStartToken* in) override {
    for (int i = 0; i < in->count; ++i) postToken(new DSeqToken(i));
  }
  DPS_IDENTIFY_OPERATION(DSplit);
};

class DOrderMerge : public MergeOperation<DWorkThread, TV1(DSeqToken),
                                          TV1(DOrderToken)> {
 public:
  void execute(DSeqToken* first) override {
    int expected = 0;
    int ok = first->index == expected++ ? 1 : 0;
    while (auto t = waitForNextToken()) {
      if (token_cast<DSeqToken>(t)->index != expected++) ok = 0;
    }
    postToken(new DOrderToken(ok, expected));
  }
  DPS_IDENTIFY_OPERATION(DOrderMerge);
};

TEST(DispatchOrder, SameContextTokensReachMergeInOrder) {
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "order");
  auto mains = app.thread_collection<DMainThread>("d-main");
  mains->map("node0");
  auto workers = app.thread_collection<DWorkThread>("d-work");
  workers->map("node0");
  auto graph = app.build_graph(
      FlowgraphNode<DSplit, DMainStartRoute>(mains) >>
          FlowgraphNode<DOrderMerge, DWorkSeqRoute>(workers),
      "order");
  ActorScope scope(cluster.domain(), "main");
  for (int count : {1, 17, 400}) {
    auto r = token_cast<DOrderToken>(graph->call(new DStartToken(count)));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->received, count);
    EXPECT_EQ(r->in_order, 1) << count << " tokens must arrive in FIFO order";
  }
}

// Fairness: several graph calls in flight on ONE worker thread. Each call's
// merge is a distinct context; while the earliest merge waits, the other
// calls' envelopes sit in the same run queue as non-matching contexts. The
// leaf work of every call must still dispatch re-entrantly (no starvation),
// while the other merges' openers wait their turn — all calls completing
// with correct sums proves both halves.
class DPingToken : public SimpleToken {
 public:
  int value;
  DPingToken(int v = 0) : value(v) {}
  DPS_IDENTIFY(DPingToken);
};

class DPongToken : public SimpleToken {
 public:
  int value;
  DPongToken(int v = 0) : value(v) {}
  DPS_IDENTIFY(DPongToken);
};

class DSumToken : public SimpleToken {
 public:
  int64_t sum;
  DSumToken(int64_t s = 0) : sum(s) {}
  DPS_IDENTIFY(DSumToken);
};

DPS_ROUTE(DWorkPingRoute, DWorkThread, DPingToken, 0);
DPS_ROUTE(DWorkPongRoute, DWorkThread, DPongToken, 0);

class DPingSplit : public SplitOperation<DMainThread, TV1(DStartToken),
                                         TV2(DPingToken, DPongToken)> {
 public:
  void execute(DStartToken* in) override {
    postToken(new DPongToken(0));  // opens the collection
    for (int i = 1; i <= in->count; ++i) postToken(new DPingToken(i));
  }
  DPS_IDENTIFY_OPERATION(DPingSplit);
};

class DPingLeaf
    : public LeafOperation<DWorkThread, TV1(DPingToken), TV1(DPongToken)> {
 public:
  void execute(DPingToken* in) override {
    postToken(new DPongToken(in->value));
  }
  DPS_IDENTIFY_OPERATION(DPingLeaf);
};

class DSumMerge
    : public MergeOperation<DWorkThread, TV1(DPongToken), TV1(DSumToken)> {
 public:
  void execute(DPongToken* first) override {
    int64_t sum = first->value;
    while (auto t = waitForNextToken()) {
      sum += token_cast<DPongToken>(t)->value;
    }
    postToken(new DSumToken(sum));
  }
  DPS_IDENTIFY_OPERATION(DSumMerge);
};

TEST(DispatchOrder, ConcurrentCollectionsShareOneWorkerWithoutStarvation) {
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "fair");
  auto mains = app.thread_collection<DMainThread>("f-main");
  mains->map("node0");
  auto workers = app.thread_collection<DWorkThread>("f-work");
  workers->map("node0");  // one worker: every merge and leaf shares it
  FlowgraphNode<DPingSplit, DMainStartRoute> split(mains);
  FlowgraphNode<DPingLeaf, DWorkPingRoute> leaf(workers);
  FlowgraphNode<DSumMerge, DWorkPongRoute> merge(workers);
  FlowgraphBuilder b = split >> leaf >> merge;
  b += split >> merge;
  auto graph = app.build_graph(b, "fair");
  ActorScope scope(cluster.domain(), "main");

  std::vector<CallHandle> handles;
  std::vector<int> counts = {40, 1, 120, 7, 64, 200, 3, 90};
  handles.reserve(counts.size());
  for (int c : counts) handles.push_back(graph->call_async(new DStartToken(c)));
  for (size_t i = 0; i < handles.size(); ++i) {
    auto r = token_cast<DSumToken>(handles[i].wait());
    ASSERT_TRUE(r) << "call " << i;
    EXPECT_EQ(r->sum, int64_t(counts[i]) * (counts[i] + 1) / 2)
        << "call " << i << " (" << counts[i] << " pings)";
  }
}

// --- work stealing: engine-level -------------------------------------------

class DSpinLeaf
    : public LeafOperation<DWorkThread, TV1(DSeqToken), TV1(DSeqToken)> {
 public:
  void execute(DSeqToken* in) override {
    // Enough work per token that the victim is still busy when a hinted
    // sibling wakes up and looks for something to steal.
    uint64_t x = static_cast<uint64_t>(in->index) + 1;
    for (int i = 0; i < 20000; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
    }
    static std::atomic<uint64_t> sink;
    // Relaxed store keeps the spin loop from being optimized away; workers
    // execute concurrently, so the shared sink must not be a plain volatile.
    sink.store(x, std::memory_order_relaxed);
    postToken(new DSeqToken(in->index));
  }
  DPS_IDENTIFY_OPERATION(DSpinLeaf);
};

class DCountMerge : public MergeOperation<DMainThread, TV1(DSeqToken),
                                          TV1(DOrderToken)> {
 public:
  void execute(DSeqToken* first) override {
    int64_t sum = first->index;
    int n = 1;
    while (auto t = waitForNextToken()) {
      sum += token_cast<DSeqToken>(t)->index;
      ++n;
    }
    postToken(new DOrderToken(static_cast<int>(sum), n));
  }
  DPS_IDENTIFY_OPERATION(DCountMerge);
};

DPS_ROUTE(DMainSeqRoute, DMainThread, DSeqToken, 0);

/// An imbalanced pipeline — every leaf token routed to worker 0 of four —
/// with ClusterConfig::work_stealing on: siblings must actually steal, and
/// the results must be exactly the same as without stealing.
TEST(Steal, ImbalancedPipelineStealsAndStaysCorrect) {
  for (const bool stealing : {false, true}) {
    ClusterConfig cfg = ClusterConfig::inproc(1);
    cfg.work_stealing = stealing;
    Cluster cluster(cfg);
    Application app(cluster, "steal");
    auto mains = app.thread_collection<DMainThread>("s-main");
    mains->map("node0");
    auto collectors = app.thread_collection<DMainThread>("s-coll");
    collectors->map("node0");
    auto workers = app.thread_collection<DWorkThread>("s-work");
    workers->map("node0 node0 node0 node0");
    auto graph = app.build_graph(
        FlowgraphNode<DSplit, DMainStartRoute>(mains) >>
            FlowgraphNode<DSpinLeaf, DWorkSeqRoute>(workers) >>
            FlowgraphNode<DCountMerge, DMainSeqRoute>(collectors),
        "steal");
    ActorScope scope(cluster.domain(), "main");
    constexpr int kTokens = 96;
    for (int round = 0; round < 3; ++round) {
      auto r = token_cast<DOrderToken>(graph->call(new DStartToken(kTokens)));
      ASSERT_TRUE(r);
      EXPECT_EQ(r->received, kTokens);
      EXPECT_EQ(r->in_order, kTokens * (kTokens - 1) / 2)
          << "token values must survive stealing untouched";
    }
    if (stealing) {
      EXPECT_GT(cluster.controller(0).steals(), 0u)
          << "hinted siblings never stole from the overloaded worker";
      EXPECT_GE(cluster.controller(0).stolen_envelopes(),
                cluster.controller(0).steals());
    } else {
      EXPECT_EQ(cluster.controller(0).steals(), 0u)
          << "stealing must stay off unless opted into";
    }
  }
}

}  // namespace
}  // namespace dps
