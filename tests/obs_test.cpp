// Flight-recorder unit tests: ring-buffer wraparound and concurrent drains
// (the TSan target), Chrome-JSON and binary round-trips, metrics, and the
// TraceQuery assertions (happens-before, per-link order, overlap windows)
// on hand-built event streams. These run in every build; tests that need
// the engine to *emit* events live in core_engine_test / chaos_test and
// skip themselves when DPS_TRACE is compiled out.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_format.hpp"
#include "obs/trace_query.hpp"
#include "serial/wire.hpp"
#include "util/error.hpp"

namespace dps::obs {
namespace {

TraceEvent make_event(uint64_t t_ns, EventKind kind, uint32_t node = 0,
                      uint64_t a = 0, uint64_t b = 0, uint64_t c = 0,
                      uint64_t d = 0) {
  TraceEvent e;
  e.t_ns = t_ns;
  e.kind = static_cast<uint16_t>(kind);
  e.node = node;
  e.a = a;
  e.b = b;
  e.c = c;
  e.d = d;
  return e;
}

TaggedEvent tagged(uint64_t t_ns, EventKind kind, uint32_t thread = 0,
                   uint32_t node = 0, uint64_t a = 0, uint64_t b = 0,
                   uint64_t c = 0, uint64_t d = 0) {
  TaggedEvent ev;
  ev.e = make_event(t_ns, kind, node, a, b, c, d);
  ev.thread = thread;
  ev.thread_name = "t" + std::to_string(thread);
  return ev;
}

// --- TraceBuffer -----------------------------------------------------------

TEST(Obs, RingKeepsEverythingBelowCapacity) {
  TraceBuffer ring(16);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.record(make_event(i + 1, EventKind::kEnqueue, 0, i));
  }
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(events[i].a, i);
  EXPECT_EQ(ring.recorded(), 10u);
}

TEST(Obs, RingWraparoundKeepsNewestEvents) {
  TraceBuffer ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 0; i < 100; ++i) {
    ring.record(make_event(i + 1, EventKind::kEnqueue, 0, i));
  }
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest first, and exactly the last `capacity` records survive.
  for (uint64_t i = 0; i < 8; ++i) EXPECT_EQ(events[i].a, 92 + i);
  EXPECT_EQ(ring.recorded(), 100u);
}

TEST(Obs, RingCapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceBuffer(0).capacity(), 8u);
  EXPECT_EQ(TraceBuffer(9).capacity(), 16u);
  EXPECT_EQ(TraceBuffer(4096).capacity(), 4096u);
}

TEST(Obs, RingClearEmptiesAndRestarts) {
  TraceBuffer ring(8);
  ring.record(make_event(1, EventKind::kEnqueue));
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
  ring.record(make_event(2, EventKind::kDequeue, 0, 7));
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].a, 7u);
}

// The TSan target: one writer hammering the ring while a drainer snapshots
// concurrently. The seqlock must make torn slots detectable (skipped), so
// every event a drain returns is internally consistent. A full-speed writer
// can lap the reader so thoroughly that mid-run drains discard everything,
// which is correct behavior — so the count assertions run on a final,
// quiescent drain after the writer joins.
TEST(Obs, ConcurrentWriterAndDrainersSeeOnlyConsistentEvents) {
  constexpr uint64_t kWrites = 200000;
  TraceBuffer ring(64);
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (uint64_t i = 1; i <= kWrites; ++i) {
      // All payload words carry the same value: any mix is a torn read.
      ring.record(make_event(i, EventKind::kOpStart, 0, i, i, i, i));
    }
    done.store(true, std::memory_order_release);
  });
  auto check = [](const TraceEvent& e) {
    EXPECT_EQ(e.kind, static_cast<uint16_t>(EventKind::kOpStart));
    EXPECT_EQ(e.a, e.t_ns);
    EXPECT_EQ(e.b, e.t_ns);
    EXPECT_EQ(e.c, e.t_ns);
    EXPECT_EQ(e.d, e.t_ns);
  };
  while (!done.load(std::memory_order_acquire)) {
    for (const TraceEvent& e : ring.snapshot()) check(e);
  }
  writer.join();
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 64u);
  for (const TraceEvent& e : events) {
    check(e);
    EXPECT_GT(e.t_ns, kWrites - 64);
    EXPECT_LE(e.t_ns, kWrites);
  }
  EXPECT_EQ(ring.recorded(), kWrites);
}

// --- Trace registry --------------------------------------------------------

TEST(Obs, RecorderDisabledByDefaultAndTogglable) {
  Trace& trace = Trace::instance();
  trace.reset();
  trace.set_enabled(false);
  trace.record(EventKind::kEnqueue, 0, 1);
  EXPECT_TRUE(trace.collect().empty());

  trace.configure({/*enabled=*/true, /*sample_every=*/1,
                   /*buffer_capacity=*/256});
  trace.set_thread_name("obs-test");
  trace.record(EventKind::kEnqueue, 3, 1, 2, 3, 4);
  trace.record(EventKind::kDequeue, 3, 1, 2, 3, 4);
  const auto events = trace.collect();
  trace.set_enabled(false);
  trace.reset();
  ASSERT_GE(events.size(), 2u);
  bool found = false;
  for (const TaggedEvent& ev : events) {
    if (ev.e.kind == static_cast<uint16_t>(EventKind::kEnqueue) &&
        ev.e.node == 3) {
      found = true;
      EXPECT_EQ(ev.thread_name, "obs-test");
    }
  }
  EXPECT_TRUE(found);
}

TEST(Obs, SamplingRecordsOneInN) {
  Trace& trace = Trace::instance();
  trace.reset();
  trace.configure({/*enabled=*/true, /*sample_every=*/10,
                   /*buffer_capacity=*/4096});
  for (int i = 0; i < 1000; ++i) trace.record(EventKind::kEnqueue, 9, 1);
  uint64_t mine = 0;
  for (const TaggedEvent& ev : trace.collect()) {
    if (ev.e.node == 9) ++mine;
  }
  trace.set_enabled(false);
  trace.reset();
  EXPECT_EQ(mine, 100u);
}

TEST(Obs, CollectMergesThreadsInTimeOrder) {
  Trace& trace = Trace::instance();
  trace.reset();
  trace.configure({/*enabled=*/true, /*sample_every=*/1,
                   /*buffer_capacity=*/256});
  std::thread a([&] {
    trace.set_thread_name("worker-a");
    trace.record(EventKind::kOpStart, 1, 11);
  });
  a.join();
  std::thread b([&] {
    trace.set_thread_name("worker-b");
    trace.record(EventKind::kOpStart, 1, 22);
  });
  b.join();
  const auto events = trace.collect(/*clear=*/true);
  trace.set_enabled(false);
  std::vector<std::string> names;
  uint64_t last_t = 0;
  for (const TaggedEvent& ev : events) {
    EXPECT_GE(ev.e.t_ns, last_t) << "collect must sort by timestamp";
    last_t = ev.e.t_ns;
    if (ev.e.node == 1) names.push_back(ev.thread_name);
  }
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "worker-a");
  EXPECT_EQ(names[1], "worker-b");
}

// --- Metrics ---------------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramRoundTrip) {
  Metrics& m = Metrics::instance();
  m.reset();
  m.counter("t.count").inc();
  m.counter("t.count").inc(4);
  m.gauge("t.depth").set(3);
  m.gauge("t.depth").update_max(3);
  m.gauge("t.depth").update_max(9);
  m.gauge("t.depth").update_max(5);
  m.histogram("t.lat").observe(0);
  m.histogram("t.lat").observe(1);
  m.histogram("t.lat").observe(1000);

  const MetricsSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.counter("t.count"), 5u);
  EXPECT_EQ(snap.gauge("t.depth"), 3);
  EXPECT_EQ(snap.values.at("t.depth").gauge_max, 9);
  const MetricValue& h = snap.values.at("t.lat");
  EXPECT_EQ(h.hist_count, 3u);
  EXPECT_EQ(h.hist_sum, 1001u);
  EXPECT_TRUE(snap.has("t.lat"));
  EXPECT_FALSE(snap.has("t.nope"));
  EXPECT_GT(snap.t_ns, 0u);
}

TEST(Metrics, ReferencesStayValidAcrossReset) {
  Metrics& m = Metrics::instance();
  Counter& c = m.counter("t.stable");
  c.inc(7);
  m.reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  EXPECT_EQ(m.counter("t.stable").value(), 1u);
  EXPECT_EQ(&m.counter("t.stable"), &c);
}

TEST(Metrics, TypeClashIsAnError) {
  Metrics& m = Metrics::instance();
  m.counter("t.clash");
  EXPECT_THROW(m.gauge("t.clash"), Error);
  EXPECT_THROW(m.histogram("t.clash"), Error);
}

TEST(Metrics, HistogramBucketsArePowersOfTwo) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(1024), 11);
  EXPECT_EQ(Histogram::bucket_of(UINT64_MAX), 64);
  Histogram h;
  for (uint64_t v = 1; v <= 1024; ++v) h.observe(v);
  EXPECT_EQ(h.count(), 1024u);
  EXPECT_DOUBLE_EQ(h.mean(), 512.5);
  EXPECT_GE(h.quantile_bound(0.5), 512u);
}

// --- Chrome trace JSON -----------------------------------------------------

TEST(Obs, ChromeTraceRoundTripsRawFields) {
  std::vector<TaggedEvent> in;
  in.push_back(tagged(1000, EventKind::kOpStart, 1, 2, 30, 1, 40, 50));
  in.push_back(tagged(2000, EventKind::kFabricSend, 1, 2, 3, 6, 7, 64));
  in.push_back(tagged(3000, EventKind::kOpEnd, 1, 2, 30, 1, 40, 50));
  in[0].thread_name = in[1].thread_name = in[2].thread_name = "w\"1\"";

  const std::string json = chrome_trace_json(in);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);

  const auto out = parse_chrome_trace(json);
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].e.t_ns, in[i].e.t_ns);
    EXPECT_EQ(out[i].e.kind, in[i].e.kind);
    EXPECT_EQ(out[i].e.node, in[i].e.node);
    EXPECT_EQ(out[i].e.a, in[i].e.a);
    EXPECT_EQ(out[i].e.b, in[i].e.b);
    EXPECT_EQ(out[i].e.c, in[i].e.c);
    EXPECT_EQ(out[i].e.d, in[i].e.d);
    EXPECT_EQ(out[i].thread, in[i].thread);
    EXPECT_EQ(out[i].thread_name, in[i].thread_name);
  }
}

TEST(Obs, ChromeTraceParserRejectsForeignJson) {
  EXPECT_THROW((void)parse_chrome_trace("{\"hello\": 1}"), Error);
}

// --- Binary format ---------------------------------------------------------

TEST(Obs, BinaryTraceRoundTrips) {
  std::vector<TaggedEvent> in;
  for (uint64_t i = 0; i < 50; ++i) {
    in.push_back(tagged(i * 10 + 1, EventKind::kEnqueue,
                        static_cast<uint32_t>(i % 3), 0, i, i * 2, i * 3,
                        i * 4));
  }
  Writer w;
  encode_trace(w, in);
  Reader r(w.bytes());
  const auto out = decode_trace(r);
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].e.t_ns, in[i].e.t_ns);
    EXPECT_EQ(out[i].e.a, in[i].e.a);
    EXPECT_EQ(out[i].thread, in[i].thread);
    EXPECT_EQ(out[i].thread_name, in[i].thread_name);
  }
}

TEST(Obs, BinaryTraceRejectsBadMagicAndVersion) {
  Writer w;
  encode_trace(w, {tagged(1, EventKind::kEnqueue)});
  auto bytes = w.take();
  bytes[0] ^= std::byte{0xff};  // magic
  {
    Reader r(bytes.data(), bytes.size());
    EXPECT_THROW((void)decode_trace(r), Error);
  }
  bytes[0] ^= std::byte{0xff};
  bytes[4] ^= std::byte{0xff};  // version
  {
    Reader r(bytes.data(), bytes.size());
    EXPECT_THROW((void)decode_trace(r), Error);
  }
}

TEST(Obs, BinaryTraceRejectsTrailingBytes) {
  Writer w;
  encode_trace(w, {tagged(1, EventKind::kEnqueue)});
  w.put<uint8_t>(0);
  Reader r(w.bytes());
  EXPECT_THROW((void)decode_trace(r), Error);
}

// --- TraceQuery ------------------------------------------------------------

TEST(TraceQuery, KindFiltersAndOrdering) {
  TraceQuery q({
      tagged(30, EventKind::kOpEnd, 0, 0, 5),
      tagged(10, EventKind::kOpStart, 0, 0, 5),
      tagged(20, EventKind::kEnqueue, 1, 0, 9),
  });
  // Constructor sorts by time regardless of input order.
  EXPECT_EQ(q.events().front().e.t_ns, 10u);
  EXPECT_EQ(q.count(EventKind::kOpStart), 1u);
  EXPECT_EQ(q.of_kind(EventKind::kEnqueue).size(), 1u);
  EXPECT_FALSE(q.first(EventKind::kRetransmit).has_value());

  const auto start = q.first(EventKind::kOpStart);
  const auto end = q.last(EventKind::kOpEnd);
  ASSERT_TRUE(start && end);
  EXPECT_TRUE(TraceQuery::happens_before(*start, *end));
  EXPECT_FALSE(TraceQuery::happens_before(*end, *start));
}

TEST(TraceQuery, ExistsOrderedAndAllOrdered) {
  TraceQuery q({
      tagged(10, EventKind::kFabricSend, 0, 0, 1),
      tagged(20, EventKind::kFabricSend, 0, 0, 2),
      tagged(15, EventKind::kFabricRecv, 1, 1, 0),
      tagged(25, EventKind::kFabricRecv, 1, 1, 0),
  });
  const auto any = [](const TaggedEvent&) { return true; };
  EXPECT_TRUE(
      q.exists_ordered(EventKind::kFabricSend, any, EventKind::kFabricRecv, any));
  // Not ALL sends precede ALL receives: send@20 is after recv@15.
  EXPECT_FALSE(
      q.all_ordered(EventKind::kFabricSend, any, EventKind::kFabricRecv, any));
  // An empty side is a test bug, not a vacuous pass.
  EXPECT_FALSE(
      q.all_ordered(EventKind::kRetransmit, any, EventKind::kFabricRecv, any));
}

TEST(TraceQuery, LinkDeliveryOrderAndFifo) {
  TraceQuery q({
      tagged(10, EventKind::kFabricRecv, 0, /*node=*/2, /*a=from*/1, 0, 1),
      tagged(20, EventKind::kFabricRecv, 0, 2, 1, 0, 2),
      tagged(30, EventKind::kFabricRecv, 0, 2, 1, 0, 4),
      tagged(40, EventKind::kFabricRecv, 0, 2, 3, 0, 3),  // other link
      tagged(50, EventKind::kFabricRecv, 0, 9, 1, 0, 9),  // other node
  });
  const auto seqs = q.link_delivery_order(/*from=*/1, /*to=*/2);
  EXPECT_EQ(seqs, (std::vector<uint64_t>{1, 2, 4}));
  EXPECT_TRUE(TraceQuery::is_fifo(seqs));
  EXPECT_FALSE(TraceQuery::is_fifo({1, 3, 2}));
  EXPECT_FALSE(TraceQuery::is_fifo({1, 1, 2}));
  EXPECT_TRUE(TraceQuery::is_fifo({}));
}

TEST(TraceQuery, IntervalsPairStartsWithEnds) {
  const uint64_t kLeaf = static_cast<uint64_t>(1);
  TraceQuery q({
      tagged(10, EventKind::kOpStart, 1, 0, /*vertex=*/7, kLeaf, 100, 0),
      tagged(40, EventKind::kOpEnd, 1, 0, 7, kLeaf, 100, 0),
      tagged(20, EventKind::kOpStart, 2, 0, 7, kLeaf, 100, 1),
      tagged(60, EventKind::kOpEnd, 2, 0, 7, kLeaf, 100, 1),
      tagged(30, EventKind::kOpStart, 1, 0, 8, kLeaf, 100, 0),  // no end
  });
  const auto all = q.intervals();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].begin_ns, 10u);
  EXPECT_EQ(all[0].end_ns, 40u);
  EXPECT_EQ(all[0].duration_ns(), 30u);
  EXPECT_EQ(all[1].seq, 1u);
  EXPECT_TRUE(all[0].overlaps(all[1]));

  const auto v7 = q.intervals(7);
  EXPECT_EQ(v7.size(), 2u);
  EXPECT_TRUE(q.intervals(99).empty());
}

TEST(TraceQuery, NestedIntervalsOnOneThread) {
  // Re-entrant dispatch: a merge suspends while a leaf with the same
  // identity fields would be ill-formed, but same-key nesting (stream
  // re-execution) must pair inner end with inner start.
  TraceQuery q({
      tagged(10, EventKind::kOpStart, 1, 0, 5, 2, 77, 0),
      tagged(20, EventKind::kOpStart, 1, 0, 5, 2, 77, 0),
      tagged(30, EventKind::kOpEnd, 1, 0, 5, 2, 77, 0),
      tagged(50, EventKind::kOpEnd, 1, 0, 5, 2, 77, 0),
  });
  const auto ivs = q.intervals(5);
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[0].begin_ns, 10u);
  EXPECT_EQ(ivs[0].end_ns, 50u);
  EXPECT_EQ(ivs[1].begin_ns, 20u);
  EXPECT_EQ(ivs[1].end_ns, 30u);
}

TEST(TraceQuery, OverlapWindowComputation) {
  using Interval = TraceQuery::Interval;
  auto iv = [](uint64_t b, uint64_t e) {
    Interval i;
    i.begin_ns = b;
    i.end_ns = e;
    return i;
  };
  // xs covers [0,100); ys covers [50,70) and [90,120): overlap 20 + 10.
  EXPECT_EQ(TraceQuery::overlap_ns({iv(0, 100)}, {iv(50, 70), iv(90, 120)}),
            30u);
  // Disjoint.
  EXPECT_EQ(TraceQuery::overlap_ns({iv(0, 10)}, {iv(10, 20)}), 0u);
  // Overlapping intervals within one set do not double-count.
  EXPECT_EQ(TraceQuery::overlap_ns({iv(0, 50), iv(10, 60)}, {iv(20, 30)}),
            10u);
  EXPECT_EQ(TraceQuery::overlap_ns({}, {iv(0, 10)}), 0u);
}

}  // namespace
}  // namespace dps::obs
