// Unit tests for the virtual-time substrate: charge accounting, event
// ordering, waitpoint semantics, deadlock (stall) detection, determinism,
// and the modeled link fabric.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/link.hpp"
#include "sim/scheduler.hpp"

namespace dps {
namespace {

TEST(SimDomain, ChargeAdvancesVirtualClock) {
  SimDomain sim;
  EXPECT_EQ(sim.now(), 0.0);
  sim.charge(1.5);
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
  sim.charge(0.25);
  EXPECT_DOUBLE_EQ(sim.now(), 1.75);
  sim.charge(0.0);  // no-op
  EXPECT_DOUBLE_EQ(sim.now(), 1.75);
}

TEST(SimDomain, ParallelChargesOverlapInVirtualTime) {
  // Two actors each charging 1s concurrently -> the clock reaches 1s, not
  // 2s: virtual time models parallel hardware even on one core. The
  // handshake guarantees both are registered before either charge starts
  // (the clock cannot advance while the main actor runs).
  SimDomain sim;
  Mutex mu;
  WaitPoint wp;
  bool worker_ready = false;
  sim.reserve_actor();
  std::thread worker([&] {
    ActorScope scope(sim, "worker");
    {
      MutexLock lock(mu);
      worker_ready = true;
      sim.notify_all(wp);
    }
    sim.charge(1.0);
  });
  {
    MutexLock lock(mu);
    sim.wait_until(wp, mu, [&] { return worker_ready; });
  }
  sim.charge(1.0);
  sim.actor_finished();
  worker.join();
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(SimDomain, SequentialDependentChargesAccumulate) {
  SimDomain sim;
  Mutex mu;
  WaitPoint wp;
  bool ready = false;
  double worker_end = 0;
  std::thread worker([&] {
    ActorScope scope(sim, "worker");
    {
      MutexLock lock(mu);
      sim.wait_until(wp, mu, [&] { return ready; });
    }
    sim.charge(2.0);
    worker_end = sim.now();
  });
  sim.charge(3.0);
  {
    MutexLock lock(mu);
    ready = true;
    sim.notify_all(wp);
  }
  sim.actor_finished();  // joining is not domain-aware; retire first
  worker.join();
  EXPECT_DOUBLE_EQ(worker_end, 5.0);  // 3s (producer) + 2s (consumer)
}

TEST(SimDomain, EventsFireInTimeOrder) {
  SimDomain sim;
  std::mutex mu;
  std::vector<int> order;
  sim.post_event(0.3, [&] { std::lock_guard<std::mutex> l(mu); order.push_back(3); });
  sim.post_event(0.1, [&] { std::lock_guard<std::mutex> l(mu); order.push_back(1); });
  sim.post_event(0.2, [&] { std::lock_guard<std::mutex> l(mu); order.push_back(2); });
  sim.charge(1.0);  // waits past every event
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_fired(), 3u);
}

TEST(SimDomain, SameTimeEventsKeepPostOrder) {
  SimDomain sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.post_event(0.5, [&order, i] { order.push_back(i); });
  }
  sim.charge(1.0);
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimDomain, EventWakesWaiterBeforeClockMovesOn) {
  // A waiter woken by an event at t=1 must observe now()==1, and a charge
  // after that lands at 1 + dt; the pre-credit rule prevents the clock from
  // skipping ahead to the t=5 decoy event while the waiter is resuming.
  SimDomain sim;
  Mutex mu;
  WaitPoint wp;
  bool delivered = false;
  double woke_at = -1, after_charge = -1;
  sim.reserve_actor();
  std::thread waiter([&] {
    ActorScope scope(sim, "waiter");
    {
      MutexLock lock(mu);
      sim.wait_until(wp, mu, [&] { return delivered; });
    }
    woke_at = sim.now();
    sim.charge(0.5);
    after_charge = sim.now();
  });
  sim.post_event(1.0, [&] {
    MutexLock lock(mu);
    delivered = true;
    sim.notify_all(wp);
  });
  sim.post_event(5.0, [] {});  // decoy far in the future
  sim.charge(10.0);            // sleeps past everything
  waiter.join();
  EXPECT_DOUBLE_EQ(woke_at, 1.0);
  EXPECT_DOUBLE_EQ(after_charge, 1.5);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(SimDomain, StallDetectionThrowsDeadlock) {
  SimDomain sim;
  Mutex mu;
  WaitPoint wp;
  std::atomic<bool> threw{false};
  sim.reserve_actor();
  std::thread waiter([&] {
    ActorScope scope(sim, "waiter");
    MutexLock lock(mu);
    try {
      sim.wait_until(wp, mu, [] { return false; });
    } catch (const Error& e) {
      threw = (e.code() == Errc::kDeadlock);
    }
  });
  // Main actor sleeps on the virtual clock, then retires; the waiter is the
  // only actor left, nothing can ever wake it -> deadlock diagnosis.
  sim.charge(1.0);
  sim.actor_finished();
  waiter.join();
  EXPECT_TRUE(threw.load());
}

TEST(SimDomain, DeterministicTimingAcrossRuns) {
  auto run = [] {
    SimDomain sim;
    double end = 0;
    sim.reserve_actor();
    std::thread t([&] {
      ActorScope scope(sim, "t");
      for (int i = 0; i < 50; ++i) sim.charge(0.01);
    });
    for (int i = 0; i < 30; ++i) sim.charge(0.02);
    t.join();
    end = sim.now();
    return end;
  };
  const double a = run();
  const double b = run();
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(a, 0.6);  // max(50*0.01, 30*0.02)
}

TEST(SimDomain, CpuGroupSerializesCharges) {
  // Two actors bound to the same single-CPU group: their 1 s charges queue,
  // so the clock reaches 2 s; an unconstrained pair would finish at 1 s.
  SimDomain sim(/*cpus_per_group=*/1);
  Mutex mu;
  WaitPoint wp;
  int ready = 0;
  auto worker = [&] {
    ActorScope scope(sim, "w");
    sim.bind_cpu(0);
    {
      MutexLock lock(mu);
      ++ready;
      sim.notify_all(wp);
      sim.wait_until(wp, mu, [&] { return ready == 2; });
    }
    sim.charge(1.0);
  };
  sim.reserve_actor();
  sim.reserve_actor();
  std::thread a(worker), b(worker);
  sim.actor_finished();
  a.join();
  b.join();
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(SimDomain, TwoCpusRunChargesConcurrently) {
  SimDomain sim(/*cpus_per_group=*/2);
  Mutex mu;
  WaitPoint wp;
  int ready = 0;
  auto worker = [&] {
    ActorScope scope(sim, "w");
    sim.bind_cpu(0);
    {
      MutexLock lock(mu);
      ++ready;
      sim.notify_all(wp);
      sim.wait_until(wp, mu, [&] { return ready == 2; });
    }
    sim.charge(1.0);
  };
  sim.reserve_actor();
  sim.reserve_actor();
  std::thread a(worker), b(worker);
  sim.actor_finished();
  a.join();
  b.join();
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(SimDomain, DistinctGroupsDoNotContend) {
  SimDomain sim(1);
  Mutex mu;
  WaitPoint wp;
  int ready = 0;
  auto worker = [&](int group) {
    ActorScope scope(sim, "w");
    sim.bind_cpu(group);
    {
      MutexLock lock(mu);
      ++ready;
      sim.notify_all(wp);
      sim.wait_until(wp, mu, [&] { return ready == 2; });
    }
    sim.charge(1.0);
  };
  sim.reserve_actor();
  sim.reserve_actor();
  std::thread a(worker, 0), b(worker, 1);
  sim.actor_finished();
  a.join();
  b.join();
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

// --- SimFabric link model ---------------------------------------------------

TEST(SimFabric, SingleMessageLatencyPlusOccupancy) {
  SimDomain sim;
  LinkModel link;
  link.bandwidth_bytes_per_s = 1e6;
  link.latency_s = 0.001;
  link.per_message_s = 0;
  SimFabric fabric(2, sim, link);
  std::mutex mu;
  double arrival = -1;
  fabric.attach(0, [](NodeMessage&&) {});
  fabric.attach(1, [&](NodeMessage&&) {
    std::lock_guard<std::mutex> lock(mu);
    arrival = sim.now();
  });
  std::vector<std::byte> payload(10000 - 16);  // wire size 10000 bytes
  fabric.send(0, 1, FrameKind::kEnvelope, std::move(payload));
  sim.charge(1.0);
  // Cut-through model: the receive side overlaps the transmit side after
  // the latency offset, so a free link delivers at latency + size/bw =
  // 0.001 + 0.01.
  EXPECT_NEAR(arrival, 0.011, 1e-9);
}

TEST(SimFabric, BackToBackMessagesPipelineAtBandwidth) {
  SimDomain sim;
  LinkModel link;
  link.bandwidth_bytes_per_s = 1e6;
  link.latency_s = 0;
  link.per_message_s = 0;
  link.per_message_burst_s = 0;
  SimFabric fabric(2, sim, link);
  std::mutex mu;
  double last_arrival = -1;
  int got = 0;
  fabric.attach(0, [](NodeMessage&&) {});
  fabric.attach(1, [&](NodeMessage&&) {
    std::lock_guard<std::mutex> lock(mu);
    last_arrival = sim.now();
    ++got;
  });
  for (int i = 0; i < 10; ++i) {
    fabric.send(0, 1, FrameKind::kEnvelope,
                std::vector<std::byte>(100000 - 16));
  }
  sim.charge(10.0);
  EXPECT_EQ(got, 10);
  // 10 x 100 kB at 1 MB/s: the TX NIC serializes them and the RX side
  // streams concurrently -> the last message lands at 1.0 s, i.e. the
  // stream moves at full link bandwidth.
  EXPECT_NEAR(last_arrival, 1.0, 1e-9);
}

TEST(SimFabric, DistinctSendersUseIndependentNics) {
  SimDomain sim;
  LinkModel link;
  link.bandwidth_bytes_per_s = 1e6;
  link.latency_s = 0;
  link.per_message_s = 0;
  link.per_message_burst_s = 0;
  SimFabric fabric(3, sim, link);
  std::mutex mu;
  std::vector<double> arrivals;
  for (NodeId n = 0; n < 2; ++n) fabric.attach(n, [](NodeMessage&&) {});
  fabric.attach(2, [&](NodeMessage&&) {
    std::lock_guard<std::mutex> lock(mu);
    arrivals.push_back(sim.now());
  });
  // Two senders to one receiver: their TX NICs overlap, the shared RX NIC
  // serializes (0.1 s each).
  fabric.send(0, 2, FrameKind::kEnvelope, std::vector<std::byte>(100000 - 16));
  fabric.send(1, 2, FrameKind::kEnvelope, std::vector<std::byte>(100000 - 16));
  sim.charge(5.0);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.1, 1e-9);
  EXPECT_NEAR(arrivals[1], 0.2, 1e-9);
}

TEST(SimFabric, PerMessageOverheadDominatesSmallMessages) {
  SimDomain sim;
  LinkModel link;
  link.bandwidth_bytes_per_s = 1e9;
  link.latency_s = 0;
  link.per_message_s = 0.001;
  link.per_message_burst_s = 0.001;  // unbatched transport: no amortization
  SimFabric fabric(2, sim, link);
  std::mutex mu;
  double last = -1;
  int got = 0;
  fabric.attach(0, [](NodeMessage&&) {});
  fabric.attach(1, [&](NodeMessage&&) {
    std::lock_guard<std::mutex> lock(mu);
    last = sim.now();
    ++got;
  });
  for (int i = 0; i < 100; ++i) {
    fabric.send(0, 1, FrameKind::kEnvelope, std::vector<std::byte>(8));
  }
  sim.charge(10.0);
  EXPECT_EQ(got, 100);
  EXPECT_NEAR(last, 0.1, 1e-4);  // ~100 x 1 ms per-message cost
}

TEST(SimFabric, BurstAmortizesPerMessageCost) {
  // Frames that find their NIC busy ride the transport's batch (writev on
  // TX, chunked recv on RX) and pay the reduced burst cost, so a burst of
  // small messages completes far faster than messages-x-per_message_s.
  SimDomain sim;
  LinkModel link;
  link.bandwidth_bytes_per_s = 1e9;
  link.latency_s = 0;
  link.per_message_s = 0.001;
  link.per_message_burst_s = 0.0001;
  SimFabric fabric(2, sim, link);
  std::mutex mu;
  double first = -1, last = -1;
  int got = 0;
  fabric.attach(0, [](NodeMessage&&) {});
  fabric.attach(1, [&](NodeMessage&&) {
    std::lock_guard<std::mutex> lock(mu);
    if (got == 0) first = sim.now();
    last = sim.now();
    ++got;
  });
  for (int i = 0; i < 100; ++i) {
    fabric.send(0, 1, FrameKind::kEnvelope, std::vector<std::byte>(8));
  }
  sim.charge(10.0);
  EXPECT_EQ(got, 100);
  // The burst opener still pays the full cost...
  EXPECT_NEAR(first, 0.001, 1e-4);
  // ...but the stream as a whole moves near the burst rate: well under the
  // 0.1 s an unbatched link would take, yet above the pure burst floor.
  EXPECT_LT(last, 0.025);
  EXPECT_GT(last, 0.001 + 99 * 0.0001 - 1e-9);
}

TEST(SimFabric, SharedMemoryModelOutpacesGigabitEthernet) {
  // The shm preset models the intra-node fast path (net/shm_fabric.cpp):
  // memcpy bandwidth and sub-microsecond handoff. A burst of small frames
  // — where the wire fabric is per-message-cost-bound — must complete
  // orders of magnitude sooner under it, so simulated co-location studies
  // actually see the fast path they are asking about.
  auto run = [](LinkModel link) {
    SimDomain sim;
    SimFabric fabric(2, sim, link);
    std::mutex mu;
    double last = -1;
    fabric.attach(0, [](NodeMessage&&) {});
    fabric.attach(1, [&](NodeMessage&&) {
      std::lock_guard<std::mutex> lock(mu);
      last = sim.now();
    });
    for (int i = 0; i < 100; ++i) {
      fabric.send(0, 1, FrameKind::kEnvelope, std::vector<std::byte>(1000));
    }
    sim.charge(10.0);
    return last;
  };
  const double gbe = run(LinkModel::gigabit_ethernet());
  const double shm = run(LinkModel::shared_memory());
  EXPECT_GT(shm, 0.0);
  EXPECT_LT(shm * 20, gbe)
      << "1 kB bursts must be >20x faster on the shm link model";
}

}  // namespace
}  // namespace dps
