// Engine feature tests: stream operations, nested split–merge constructs,
// multi-path type-directed routing, flow control, graph validation, and
// load-balancing routes.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/application.hpp"
#include "core/controller.hpp"
#include "util/mapping.hpp"

namespace dps {
namespace {

// --- Shared fixture types ----------------------------------------------------

class NumToken : public SimpleToken {
 public:
  int64_t value;
  int index;
  NumToken(int64_t v = 0, int i = 0) : value(v), index(i) {}
  DPS_IDENTIFY(NumToken);
};

class OddToken : public SimpleToken {
 public:
  int64_t value;
  int index;
  OddToken(int64_t v = 0, int i = 0) : value(v), index(i) {}
  DPS_IDENTIFY(OddToken);
};

class SumToken : public SimpleToken {
 public:
  int64_t sum;
  int count;
  SumToken(int64_t s = 0, int c = 0) : sum(s), count(c) {}
  DPS_IDENTIFY(SumToken);
};

class RangeToken : public SimpleToken {
 public:
  int begin;
  int end;
  RangeToken(int b = 0, int e = 0) : begin(b), end(e) {}
  DPS_IDENTIFY(RangeToken);
};

class FMainThread : public Thread {
  DPS_IDENTIFY_THREAD(FMainThread);
};

class FWorkThread : public Thread {
 public:
  int processed = 0;
  DPS_IDENTIFY_THREAD(FWorkThread);
};

DPS_ROUTE(FMainRangeRoute, FMainThread, RangeToken, 0);
DPS_ROUTE(FMainNumRoute, FMainThread, NumToken, 0);
DPS_ROUTE(FMainSumRoute, FMainThread, SumToken, 0);
DPS_ROUTE(FWorkNumRoute, FWorkThread, NumToken,
          currentToken->index % threadCount());
DPS_ROUTE(FWorkOddRoute, FWorkThread, OddToken,
          currentToken->index % threadCount());
DPS_ROUTE(FWorkRangeRoute, FWorkThread, RangeToken,
          currentToken->begin % threadCount());

// Splits a range into one NumToken per integer.
class RangeSplit
    : public SplitOperation<FMainThread, TV1(RangeToken), TV1(NumToken)> {
 public:
  void execute(RangeToken* in) override {
    for (int i = in->begin; i < in->end; ++i) {
      postToken(new NumToken(i, i));
    }
  }
  DPS_IDENTIFY_OPERATION(RangeSplit);
};

class SquareLeaf
    : public LeafOperation<FWorkThread, TV1(NumToken), TV1(NumToken)> {
 public:
  void execute(NumToken* in) override {
    thread()->processed++;
    postToken(new NumToken(in->value * in->value, in->index));
  }
  DPS_IDENTIFY_OPERATION(SquareLeaf);
};

class SumMerge
    : public MergeOperation<FMainThread, TV1(NumToken), TV1(SumToken)> {
 public:
  void execute(NumToken* first) override {
    int64_t sum = first->value;
    int count = 1;
    while (auto t = waitForNextToken()) {
      sum += token_cast<NumToken>(t)->value;
      ++count;
    }
    postToken(new SumToken(sum, count));
  }
  DPS_IDENTIFY_OPERATION(SumMerge);
};

int64_t sum_of_squares(int begin, int end) {
  int64_t s = 0;
  for (int i = begin; i < end; ++i) s += int64_t(i) * i;
  return s;
}

// --- Stream operation --------------------------------------------------------

// Stream: collects squared numbers and re-emits batches eagerly — each
// incoming token is forwarded doubled, without waiting for the whole set
// (the pipelining property of section 3).
class DoubleStream
    : public StreamOperation<FMainThread, TV1(NumToken), TV1(NumToken)> {
 public:
  void execute(NumToken* first) override {
    postToken(new NumToken(first->value * 2, first->index));
    while (auto t = waitForNextToken()) {
      auto n = token_cast<NumToken>(t);
      postToken(new NumToken(n->value * 2, n->index));
    }
  }
  DPS_IDENTIFY_OPERATION(DoubleStream);
};

TEST(StreamOp, CollectsAndReemitsPipelined) {
  Cluster cluster(ClusterConfig::inproc(3));
  Application app(cluster, "stream");
  auto mains = app.thread_collection<FMainThread>("main");
  mains->map("node0");
  auto workers = app.thread_collection<FWorkThread>("work");
  workers->map("node0 node1 node2");
  // split -> square -> stream(double) -> square -> merge
  FlowgraphBuilder b =
      FlowgraphNode<RangeSplit, FMainRangeRoute>(mains) >>
      FlowgraphNode<SquareLeaf, FWorkNumRoute>(workers) >>
      FlowgraphNode<DoubleStream, FMainNumRoute>(mains) >>
      FlowgraphNode<SquareLeaf, FWorkNumRoute>(workers) >>
      FlowgraphNode<SumMerge, FMainNumRoute>(mains);
  auto graph = app.build_graph(b, "stream-pipe");
  ActorScope scope(cluster.domain(), "main");
  auto result = token_cast<SumToken>(graph->call(new RangeToken(0, 50)));
  ASSERT_TRUE(result);
  int64_t expect = 0;
  for (int i = 0; i < 50; ++i) {
    const int64_t sq = int64_t(i) * i;
    expect += (2 * sq) * (2 * sq);
  }
  EXPECT_EQ(result->sum, expect);
  EXPECT_EQ(result->count, 50);
}

// --- flushTokens: eager release of the held-back last post -------------------

// The engine holds each split/stream post back by one so the final token
// can carry the context total. flushTokens() ships the held post
// immediately; these tests pin down both the eager delivery and the
// protocol contract around the final post.

std::atomic<bool> g_flush_probe_seen{false};

// Forwards its input unchanged; records when the probe token (index 0)
// arrives so the split can observe delivery mid-execute.
class MarkArrivalLeaf
    : public LeafOperation<FWorkThread, TV1(NumToken), TV1(NumToken)> {
 public:
  void execute(NumToken* in) override {
    if (in->index == 0) g_flush_probe_seen.store(true);
    postToken(new NumToken(in->value, in->index));
  }
  DPS_IDENTIFY_OPERATION(MarkArrivalLeaf);
};

// Posts a probe token, flushes it, then waits until the downstream leaf
// confirms arrival — deterministic proof that the flush shipped the token
// while this execute is still running (held back, it could only leave with
// the next post). Encodes the observation in the second token's value so a
// broken flush fails the sum check instead of deadlocking.
class FlushProbeSplit
    : public SplitOperation<FMainThread, TV1(RangeToken), TV1(NumToken)> {
 public:
  void execute(RangeToken*) override {
    postToken(new NumToken(10, 0));
    flushTokens();
    bool seen = false;
    for (int spin = 0; spin < 5000; ++spin) {
      if (g_flush_probe_seen.load()) {
        seen = true;
        break;
      }
      sleepFor(0.001);
    }
    postToken(new NumToken(seen ? 100 : -1, 1));
  }
  DPS_IDENTIFY_OPERATION(FlushProbeSplit);
};

TEST(StreamOp, FlushTokensShipsHeldPostEagerly) {
  g_flush_probe_seen.store(false);
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "flush-probe");
  auto mains = app.thread_collection<FMainThread>("fp-m");
  mains->map("node0");
  auto workers = app.thread_collection<FWorkThread>("fp-w");
  workers->map("node1");
  FlowgraphBuilder b = FlowgraphNode<FlushProbeSplit, FMainRangeRoute>(mains) >>
                       FlowgraphNode<MarkArrivalLeaf, FWorkNumRoute>(workers) >>
                       FlowgraphNode<SumMerge, FMainNumRoute>(mains);
  auto graph = app.build_graph(b, "flush-probe");
  ActorScope scope(cluster.domain(), "main");
  auto result = token_cast<SumToken>(graph->call(new RangeToken(0, 0)));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->count, 2);
  EXPECT_EQ(result->sum, 110) << "probe token was not delivered during the "
                                 "split's execute: flushTokens left it held";
}

// The canonical streaming idiom — flush the previous post before working
// on the next token; the final post stays held so the engine can stamp the
// context total into it.
class EagerDoubleStream
    : public StreamOperation<FMainThread, TV1(NumToken), TV1(NumToken)> {
 public:
  void execute(NumToken* first) override {
    postToken(new NumToken(first->value * 2, first->index));
    while (auto t = waitForNextToken()) {
      flushTokens();
      auto n = token_cast<NumToken>(t);
      postToken(new NumToken(n->value * 2, n->index));
    }
  }
  DPS_IDENTIFY_OPERATION(EagerDoubleStream);
};

TEST(StreamOp, StreamFlushBetweenPostsKeepsPipelineCorrect) {
  Cluster cluster(ClusterConfig::inproc(3));
  Application app(cluster, "eager-stream");
  auto mains = app.thread_collection<FMainThread>("es-m");
  mains->map("node0");
  auto workers = app.thread_collection<FWorkThread>("es-w");
  workers->map("node0 node1 node2");
  FlowgraphBuilder b =
      FlowgraphNode<RangeSplit, FMainRangeRoute>(mains) >>
      FlowgraphNode<SquareLeaf, FWorkNumRoute>(workers) >>
      FlowgraphNode<EagerDoubleStream, FMainNumRoute>(mains) >>
      FlowgraphNode<SquareLeaf, FWorkNumRoute>(workers) >>
      FlowgraphNode<SumMerge, FMainNumRoute>(mains);
  auto graph = app.build_graph(b, "eager-stream");
  ActorScope scope(cluster.domain(), "main");
  auto result = token_cast<SumToken>(graph->call(new RangeToken(0, 50)));
  ASSERT_TRUE(result);
  int64_t expect = 0;
  for (int i = 0; i < 50; ++i) {
    const int64_t sq = int64_t(i) * i;
    expect += (2 * sq) * (2 * sq);
  }
  EXPECT_EQ(result->sum, expect);
  EXPECT_EQ(result->count, 50);
}

// Flushing the FINAL post violates the contract: the engine has no token
// left to stamp the context total into, and must diagnose that instead of
// letting the merge hang forever.
class FlushFinalSplit
    : public SplitOperation<FMainThread, TV1(RangeToken), TV1(NumToken)> {
 public:
  void execute(RangeToken*) override {
    postToken(new NumToken(1, 0));
    flushTokens();  // contract violation: nothing is posted afterwards
  }
  DPS_IDENTIFY_OPERATION(FlushFinalSplit);
};

TEST(StreamOp, FlushAfterFinalPostDiagnosed) {
  Cluster cluster(ClusterConfig::simulated(2));
  Application app(cluster, "flush-final");
  auto mains = app.thread_collection<FMainThread>("ff-m");
  mains->map("node0");
  auto workers = app.thread_collection<FWorkThread>("ff-w");
  workers->map("node1");
  FlowgraphBuilder b = FlowgraphNode<FlushFinalSplit, FMainRangeRoute>(mains) >>
                       FlowgraphNode<SquareLeaf, FWorkNumRoute>(workers) >>
                       FlowgraphNode<SumMerge, FMainNumRoute>(mains);
  auto graph = app.build_graph(b, "flush-final");
  ActorScope scope(cluster.domain(), "main");
  auto handle = graph->call_async(new RangeToken(0, 0));
  EXPECT_THROW((void)handle.wait(), Error)
      << "flushing the final post must surface as a detectable failure";
}

// --- Nested split–merge ------------------------------------------------------

// Outer split: one RangeToken per chunk; inner construct squares and sums
// each chunk; outer merge adds the partial sums.
class ChunkSplit
    : public SplitOperation<FMainThread, TV1(RangeToken), TV1(RangeToken)> {
 public:
  void execute(RangeToken* in) override {
    const int chunk = 10;
    for (int b = in->begin; b < in->end; b += chunk) {
      postToken(new RangeToken(b, std::min(b + chunk, in->end)));
    }
  }
  DPS_IDENTIFY_OPERATION(ChunkSplit);
};

class InnerSplit
    : public SplitOperation<FWorkThread, TV1(RangeToken), TV1(NumToken)> {
 public:
  void execute(RangeToken* in) override {
    // index = chunk id for every token: the whole inner context stays on
    // one worker thread (all tokens of a context must converge on one
    // merge instance).
    for (int i = in->begin; i < in->end; ++i) {
      postToken(new NumToken(i, in->begin));
    }
  }
  DPS_IDENTIFY_OPERATION(InnerSplit);
};

class InnerSum
    : public MergeOperation<FWorkThread, TV1(NumToken), TV1(NumToken)> {
 public:
  void execute(NumToken* first) override {
    int64_t sum = first->value;
    while (auto t = waitForNextToken()) sum += token_cast<NumToken>(t)->value;
    postToken(new NumToken(sum, threadIndex()));
  }
  DPS_IDENTIFY_OPERATION(InnerSum);
};

TEST(Nesting, SplitMergeInsideSplitMerge) {
  Cluster cluster(ClusterConfig::inproc(4));
  Application app(cluster, "nested");
  auto mains = app.thread_collection<FMainThread>("main");
  mains->map("node0");
  auto workers = app.thread_collection<FWorkThread>("work");
  workers->map(round_robin_mapping({"node0", "node1", "node2", "node3"}, 4));
  FlowgraphBuilder b =
      FlowgraphNode<ChunkSplit, FMainRangeRoute>(mains) >>
      FlowgraphNode<InnerSplit, FWorkRangeRoute>(workers) >>
      FlowgraphNode<SquareLeaf, FWorkNumRoute>(workers) >>
      FlowgraphNode<InnerSum, FWorkNumRoute>(workers) >>
      FlowgraphNode<SumMerge, FMainNumRoute>(mains);
  auto graph = app.build_graph(b, "nested");
  ActorScope scope(cluster.domain(), "main");
  auto result = token_cast<SumToken>(graph->call(new RangeToken(0, 95)));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->sum, sum_of_squares(0, 95));
  EXPECT_EQ(result->count, 10);  // ceil(95/10) partial sums
}

// But wait: InnerSum routes by token->index; the inner merge must receive
// all tokens of one inner context on ONE thread. SquareLeaf preserves the
// index, and InnerSplit posts indexes spanning the whole chunk, which would
// scatter one context over several threads. The test above therefore uses
// a chunk-constant index: verify that the engine *diagnoses* the scattered
// variant instead of hanging.
class ScatterInnerSplit
    : public SplitOperation<FWorkThread, TV1(RangeToken), TV1(NumToken)> {
 public:
  void execute(RangeToken* in) override {
    // Deliberately varying index -> inner merge tokens scatter.
    for (int i = in->begin; i < in->end; ++i) postToken(new NumToken(i, i));
  }
  DPS_IDENTIFY_OPERATION(ScatterInnerSplit);
};

TEST(Nesting, ScatteredContextIsDiagnosed) {
  Cluster cluster(ClusterConfig::simulated(2));
  Application app(cluster, "scatter");
  auto mains = app.thread_collection<FMainThread>("main");
  mains->map("node0");
  auto workers = app.thread_collection<FWorkThread>("work");
  workers->map("node0 node1");
  FlowgraphBuilder b =
      FlowgraphNode<ChunkSplit, FMainRangeRoute>(mains) >>
      FlowgraphNode<ScatterInnerSplit, FWorkRangeRoute>(workers) >>
      FlowgraphNode<InnerSum, FWorkNumRoute>(workers) >>
      FlowgraphNode<SumMerge, FMainNumRoute>(mains);
  auto graph = app.build_graph(b, "scatter");
  ActorScope scope(cluster.domain(), "main");
  auto handle = graph->call_async(new RangeToken(0, 40));
  // The scattered context either trips the claim diagnostic (logged, the
  // merge never completes) or stalls; both surface as a deadlock here.
  EXPECT_THROW((void)handle.wait(), Error);
}

// --- Multi-path type-directed routing (paper Fig. 3) -------------------------

class ParitySplit
    : public SplitOperation<FMainThread, TV1(RangeToken),
                            TV2(NumToken, OddToken)> {
 public:
  void execute(RangeToken* in) override {
    for (int i = in->begin; i < in->end; ++i) {
      if (i % 2 == 0) {
        postToken(new NumToken(i, i));
      } else {
        postToken(new OddToken(i, i));
      }
    }
  }
  DPS_IDENTIFY_OPERATION(ParitySplit);
};

// Evens are squared; odds are negated. Distinct input types select the path.
class NegateLeaf
    : public LeafOperation<FWorkThread, TV1(OddToken), TV1(NumToken)> {
 public:
  void execute(OddToken* in) override {
    postToken(new NumToken(-in->value, in->index));
  }
  DPS_IDENTIFY_OPERATION(NegateLeaf);
};

TEST(MultiPath, TokenTypeSelectsPath) {
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "multipath");
  auto mains = app.thread_collection<FMainThread>("main");
  mains->map("node0");
  auto workers = app.thread_collection<FWorkThread>("work");
  workers->map("node0 node1");

  FlowgraphNode<ParitySplit, FMainRangeRoute> split(mains);
  FlowgraphNode<SquareLeaf, FWorkNumRoute> square(workers);
  FlowgraphNode<NegateLeaf, FWorkOddRoute> negate(workers);
  FlowgraphNode<SumMerge, FMainNumRoute> merge(mains);
  FlowgraphBuilder b = split >> square >> merge;
  b += split >> negate >> merge;

  auto graph = app.build_graph(b, "parity");
  ActorScope scope(cluster.domain(), "main");
  auto result = token_cast<SumToken>(graph->call(new RangeToken(0, 21)));
  ASSERT_TRUE(result);
  int64_t expect = 0;
  for (int i = 0; i < 21; ++i) expect += (i % 2 == 0) ? int64_t(i) * i : -i;
  EXPECT_EQ(result->sum, expect);
  EXPECT_EQ(result->count, 21);
}

// --- Flow control -------------------------------------------------------------

TEST(FlowControl, WindowBoundsInFlightTokens) {
  // With a window of 4 and a slow consumer, the split must stall rather
  // than queue all 1000 tokens; the run still completes correctly.
  ClusterConfig cfg = ClusterConfig::inproc(2);
  cfg.flow_window = 4;
  Cluster cluster(cfg);
  Application app(cluster, "flowctl");
  auto mains = app.thread_collection<FMainThread>("main");
  mains->map("node0");
  // A blocked split occupies its DPS thread, so the merge needs its own
  // thread when the window can fill (same-thread split+merge is fine only
  // while the split never stalls).
  auto collectors = app.thread_collection<FMainThread>("collector");
  collectors->map("node0");
  auto workers = app.thread_collection<FWorkThread>("work");
  workers->map("node1");
  FlowgraphBuilder b = FlowgraphNode<RangeSplit, FMainRangeRoute>(mains) >>
                       FlowgraphNode<SquareLeaf, FWorkNumRoute>(workers) >>
                       FlowgraphNode<SumMerge, FMainNumRoute>(collectors);
  auto graph = app.build_graph(b, "flow");
  ActorScope scope(cluster.domain(), "main");
  auto result = token_cast<SumToken>(graph->call(new RangeToken(0, 1000)));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->sum, sum_of_squares(0, 1000));
}

TEST(FlowControl, TinyWindowStillCompletesUnderVirtualTime) {
  ClusterConfig cfg = ClusterConfig::simulated(2);
  cfg.flow_window = 1;
  Cluster cluster(cfg);
  Application app(cluster, "flowctl-sim");
  auto mains = app.thread_collection<FMainThread>("main");
  mains->map("node0");
  auto collectors = app.thread_collection<FMainThread>("collector");
  collectors->map("node0");
  auto workers = app.thread_collection<FWorkThread>("work");
  workers->map("node1");
  FlowgraphBuilder b = FlowgraphNode<RangeSplit, FMainRangeRoute>(mains) >>
                       FlowgraphNode<SquareLeaf, FWorkNumRoute>(workers) >>
                       FlowgraphNode<SumMerge, FMainNumRoute>(collectors);
  auto graph = app.build_graph(b, "flow");
  ActorScope scope(cluster.domain(), "main");
  auto result = token_cast<SumToken>(graph->call(new RangeToken(0, 32)));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->sum, sum_of_squares(0, 32));
  // Window 1 serializes every token round trip: the virtual time must be
  // much larger than with a wide window.
  const double serialized_time = cluster.domain().now();
  EXPECT_GT(serialized_time, 0.0);
}

// --- Graph validation ---------------------------------------------------------

TEST(Validation, RejectsUnbalancedGraph) {
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "invalid");
  auto mains = app.thread_collection<FMainThread>("main");
  mains->map("node0");
  auto workers = app.thread_collection<FWorkThread>("work");
  workers->map("node0");
  // split -> leaf with no merge: leaves a frame open.
  FlowgraphBuilder b = FlowgraphNode<RangeSplit, FMainRangeRoute>(mains) >>
                       FlowgraphNode<SquareLeaf, FWorkNumRoute>(workers);
  try {
    app.build_graph(b, "unbalanced");
    FAIL() << "expected invalid_argument";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kInvalidArgument);
    EXPECT_NE(std::string(e.what()).find("unbalanced"), std::string::npos);
  }
}

TEST(Validation, RejectsMergeAtEntry) {
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "invalid2");
  auto mains = app.thread_collection<FMainThread>("main");
  mains->map("node0");
  FlowgraphBuilder b;
  b.add_vertex(FlowgraphNode<SumMerge, FMainNumRoute>(mains).spec());
  EXPECT_THROW(app.build_graph(b, "merge-entry"), Error);
}

TEST(Validation, RejectsUnmappedCollection) {
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "invalid3");
  auto mains = app.thread_collection<FMainThread>("main");
  mains->map("node0");
  auto workers = app.thread_collection<FWorkThread>("work");  // never mapped
  FlowgraphBuilder b = FlowgraphNode<RangeSplit, FMainRangeRoute>(mains) >>
                       FlowgraphNode<SquareLeaf, FWorkNumRoute>(workers) >>
                       FlowgraphNode<SumMerge, FMainNumRoute>(mains);
  try {
    app.build_graph(b, "unmapped");
    FAIL() << "expected state error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kState);
  }
}

TEST(Validation, RejectsAmbiguousSuccessors) {
  // Two successors accepting the same token type: path choice undefined.
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "invalid4");
  auto mains = app.thread_collection<FMainThread>("main");
  mains->map("node0");
  auto workers = app.thread_collection<FWorkThread>("work");
  workers->map("node0");
  FlowgraphNode<RangeSplit, FMainRangeRoute> split(mains);
  FlowgraphNode<SquareLeaf, FWorkNumRoute> sq1(workers);
  FlowgraphNode<SquareLeaf, FWorkNumRoute> sq2(workers);
  FlowgraphNode<SumMerge, FMainNumRoute> merge(mains);
  FlowgraphBuilder b = split >> sq1 >> merge;
  b += split >> sq2 >> merge;
  EXPECT_THROW(app.build_graph(b, "ambiguous"), Error);
}

TEST(Validation, RejectsMappingToUnknownNode) {
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "invalid5");
  auto mains = app.thread_collection<FMainThread>("main");
  try {
    mains->map("node0 nodeX");
    FAIL() << "expected not_found";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kNotFound);
  }
}

TEST(Validation, RejectsDoubleMap) {
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "invalid6");
  auto mains = app.thread_collection<FMainThread>("main");
  mains->map("node0");
  EXPECT_THROW(mains->map("node0"), Error);
}

// --- Load-balancing route ------------------------------------------------------

// The paper: "After the split operation, the routing function sends data
// objects to those processing nodes which have previously posted data
// objects to the merge operation" — approximated here with live queue
// depths: route to the least-loaded thread.
class LeastLoadedRoute : public Route<FWorkThread, NumToken> {
 public:
  int route(NumToken*) override {
    int best = 0;
    uint32_t best_depth = queueDepth(0);
    for (int i = 1; i < threadCount(); ++i) {
      const uint32_t d = queueDepth(i);
      if (d < best_depth) {
        best_depth = d;
        best = i;
      }
    }
    return best;
  }
  DPS_IDENTIFY_ROUTE(LeastLoadedRoute);
};

TEST(LoadBalancing, LeastLoadedRouteCompletesAndSpreads) {
  Cluster cluster(ClusterConfig::inproc(4));
  Application app(cluster, "lb");
  auto mains = app.thread_collection<FMainThread>("main");
  mains->map("node0");
  auto workers = app.thread_collection<FWorkThread>("work");
  workers->map("node0 node1 node2 node3");
  FlowgraphBuilder b = FlowgraphNode<RangeSplit, FMainRangeRoute>(mains) >>
                       FlowgraphNode<SquareLeaf, LeastLoadedRoute>(workers) >>
                       FlowgraphNode<SumMerge, FMainNumRoute>(mains);
  auto graph = app.build_graph(b, "lb");
  ActorScope scope(cluster.domain(), "main");
  auto result = token_cast<SumToken>(graph->call(new RangeToken(0, 400)));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->sum, sum_of_squares(0, 400));
  EXPECT_EQ(result->count, 400);
}

}  // namespace
}  // namespace dps
