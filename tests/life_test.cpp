// Unit tests for the Game-of-Life substrate: rule correctness on known
// patterns, band split/join, and the interior/border decomposition the
// improved flow graph relies on.
#include <gtest/gtest.h>

#include "life/world.hpp"

namespace dps::life {
namespace {

Band make(const std::vector<std::string>& rows) {
  Band b(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < b.rows(); ++r) {
    for (int c = 0; c < b.cols(); ++c) {
      b.set(r, c, rows[static_cast<size_t>(r)][static_cast<size_t>(c)] == '#');
    }
  }
  return b;
}

std::vector<std::string> render(const Band& b) {
  std::vector<std::string> rows;
  for (int r = 0; r < b.rows(); ++r) {
    std::string row;
    for (int c = 0; c < b.cols(); ++c) row += b.at(r, c) ? '#' : '.';
    rows.push_back(row);
  }
  return rows;
}

TEST(Life, BlinkerOscillates) {
  Band b = make({".....",
                 "..#..",
                 "..#..",
                 "..#..",
                 "....."});
  Band s1 = step_world(b, 1);
  EXPECT_EQ(render(s1), (std::vector<std::string>{".....",
                                                  ".....",
                                                  ".###.",
                                                  ".....",
                                                  "....."}));
  EXPECT_EQ(step_world(b, 2), b) << "period-2 oscillator";
}

TEST(Life, BlockIsStill) {
  Band b = make({"....",
                 ".##.",
                 ".##.",
                 "...."});
  EXPECT_EQ(step_world(b, 5), b);
}

TEST(Life, GliderMovesDiagonally) {
  Band b = make({".#....",
                 "..#...",
                 "###...",
                 "......",
                 "......",
                 "......"});
  Band s4 = step_world(b, 4);  // a glider translates by (1, 1) every 4 steps
  Band expected = make({"......",
                        "..#...",
                        "...#..",
                        ".###..",
                        "......",
                        "......"});
  EXPECT_EQ(s4, expected);
}

TEST(Life, EdgesAreDead) {
  // A blinker against the top edge: cells beyond the world are dead.
  Band b = make({"###",
                 "...",
                 "..."});
  Band s1 = step_world(b, 1);
  EXPECT_EQ(render(s1), (std::vector<std::string>{".#.",
                                                  ".#.",
                                                  "..."}));
}

TEST(Life, SplitJoinRoundTrip) {
  Band w(17, 9);
  w.seed_random(42);
  for (int bands : {1, 2, 3, 5, 8, 17}) {
    auto parts = split_world(w, bands);
    EXPECT_EQ(static_cast<int>(parts.size()), bands);
    EXPECT_EQ(join_bands(parts), w) << bands << " bands";
    int total = 0;
    for (auto& p : parts) total += p.rows();
    EXPECT_EQ(total, 17);
  }
}

TEST(Life, BandedStepMatchesGlobalStep) {
  Band w(24, 16);
  w.seed_random(7);
  Band global = step_world(w, 1);
  for (int bands : {2, 3, 4, 6}) {
    auto parts = split_world(w, bands);
    std::vector<Band> stepped;
    for (size_t i = 0; i < parts.size(); ++i) {
      const auto above = i > 0 ? parts[i - 1].row(parts[i - 1].rows() - 1)
                               : std::vector<uint8_t>{};
      const auto below =
          i + 1 < parts.size() ? parts[i + 1].row(0) : std::vector<uint8_t>{};
      stepped.push_back(step_band(parts[i], above, below));
    }
    EXPECT_EQ(join_bands(stepped), global) << bands << " bands";
  }
}

TEST(Life, InteriorPlusBordersEqualsFullStep) {
  // The improved graph (paper Fig. 8) computes the interior while borders
  // travel; interior + borders must equal the plain banded step.
  Band w(30, 20);
  w.seed_random(19);
  auto parts = split_world(w, 3);
  for (size_t i = 0; i < parts.size(); ++i) {
    const auto above = i > 0 ? parts[i - 1].row(parts[i - 1].rows() - 1)
                             : std::vector<uint8_t>{};
    const auto below =
        i + 1 < parts.size() ? parts[i + 1].row(0) : std::vector<uint8_t>{};
    Band combined = step_interior(parts[i]);
    step_borders(parts[i], above, below, combined);
    EXPECT_EQ(combined, step_band(parts[i], above, below)) << "band " << i;
  }
}

TEST(Life, PopulationIsPlausible) {
  Band w(100, 100);
  w.seed_random(1);
  const double density =
      static_cast<double>(w.population()) / (100.0 * 100.0);
  EXPECT_GT(density, 0.25);
  EXPECT_LT(density, 0.45);
}

TEST(Life, SingleRowBands) {
  // Degenerate band height 1: border rows are the whole band.
  Band w(4, 8);
  w.seed_random(3);
  Band global = step_world(w, 1);
  auto parts = split_world(w, 4);
  std::vector<Band> stepped;
  for (size_t i = 0; i < parts.size(); ++i) {
    const auto above = i > 0 ? parts[i - 1].row(parts[i - 1].rows() - 1)
                             : std::vector<uint8_t>{};
    const auto below =
        i + 1 < parts.size() ? parts[i + 1].row(0) : std::vector<uint8_t>{};
    stepped.push_back(step_band(parts[i], above, below));
  }
  EXPECT_EQ(join_bands(stepped), global);
}

}  // namespace
}  // namespace dps::life
