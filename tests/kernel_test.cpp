// Multi-process runtime tests: the name server protocol, the spawn-lock
// claim, and a full SPMD round trip (leader spawns followers lazily, tokens
// cross real process boundaries, leader shuts everything down).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>

#include "kernel/name_server.hpp"

namespace dps {
namespace {

TEST(NameServer, PublishLookupRoundTrip) {
  NameServerDaemon server(0);
  NameClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.lookup("missing"), "");
  client.publish("svc", "127.0.0.1:4242");
  EXPECT_EQ(client.lookup("svc"), "127.0.0.1:4242");
  client.publish("svc", "127.0.0.1:5151");  // replace
  EXPECT_EQ(client.lookup("svc"), "127.0.0.1:5151");
}

TEST(NameServer, WaitBlocksUntilPublished) {
  NameServerDaemon server(0);
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    NameClient c("127.0.0.1", server.port());
    c.publish("late", "value");
  });
  NameClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.wait_for("late"), "value");
  publisher.join();
}

TEST(NameServer, ClaimIsExclusive) {
  NameServerDaemon server(0);
  NameClient a("127.0.0.1", server.port());
  NameClient b("127.0.0.1", server.port());
  EXPECT_TRUE(a.claim("lock/x", "a"));
  EXPECT_FALSE(b.claim("lock/x", "b"));
  EXPECT_EQ(b.lookup("lock/x"), "a");
}

TEST(NameServer, ManyConcurrentClients) {
  NameServerDaemon server(0);
  std::vector<std::thread> clients;
  std::atomic<int> winners{0};
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&, i] {
      NameClient c("127.0.0.1", server.port());
      c.publish("k" + std::to_string(i), "v" + std::to_string(i));
      if (c.claim("the-lock", std::to_string(i))) winners++;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(winners.load(), 1);
  NameClient c("127.0.0.1", server.port());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(c.lookup("k" + std::to_string(i)), "v" + std::to_string(i));
  }
}

// --- Full SPMD round trip ------------------------------------------------------

std::string example_binary(const char* name) {
  // tests/dps_tests -> ../examples/<name> within the build tree.
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  std::string path(buf, static_cast<size_t>(n));
  const size_t slash = path.rfind('/');
  const size_t slash2 = path.rfind('/', slash - 1);
  return path.substr(0, slash2) + "/examples/" + name;
}

TEST(Spmd, MultiprocessToUpperRoundTrip) {
  const std::string binary = example_binary("multiprocess_toupper");
  if (::access(binary.c_str(), X_OK) != 0) {
    GTEST_SKIP() << "example binary not found at " << binary;
  }
  const std::string cmd =
      binary + " 3 multi process dps 2>/dev/null";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char line[512];
  while (::fgets(line, sizeof(line), pipe) != nullptr) output += line;
  const int status = ::pclose(pipe);
  EXPECT_EQ(WEXITSTATUS(status), 0) << output;
  EXPECT_NE(output.find("output: MULTI PROCESS DPS"), std::string::npos)
      << output;
}

// The run above negotiates the shm fast path between the co-located kernels
// (when the host allows it); this one pins the deployment to TCP via the
// DPS_SHM=0 opt-out — the "/shm" name-server key is never published and the
// per-peer negotiation must degrade to pure sockets with the same result.
TEST(Spmd, MultiprocessToUpperFallsBackToTcpWhenShmDisabled) {
  const std::string binary = example_binary("multiprocess_toupper");
  if (::access(binary.c_str(), X_OK) != 0) {
    GTEST_SKIP() << "example binary not found at " << binary;
  }
  const std::string cmd =
      "DPS_SHM=0 " + binary + " 3 multi process dps 2>/dev/null";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char line[512];
  while (::fgets(line, sizeof(line), pipe) != nullptr) output += line;
  const int status = ::pclose(pipe);
  EXPECT_EQ(WEXITSTATUS(status), 0) << output;
  EXPECT_NE(output.find("output: MULTI PROCESS DPS"), std::string::npos)
      << output;
}

}  // namespace
}  // namespace dps
