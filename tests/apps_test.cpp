// Integration tests for the experiment applications: the ring transfer
// graph (Fig. 6) and the block matrix multiplication (Table 1).
#include <gtest/gtest.h>

#include "apps/matmul.hpp"
#include "apps/ring.hpp"

namespace dps {
namespace {

using apps::build_matmul_graph;
using apps::build_ring_graph;
using apps::RingDoneToken;
using apps::RingStartToken;

TEST(RingApp, AllBlocksArriveInproc) {
  Cluster cluster(ClusterConfig::inproc(4));
  Application app(cluster, "ring");
  auto graph = build_ring_graph(app, 4);
  ActorScope scope(cluster.domain(), "main");
  auto done =
      token_cast<RingDoneToken>(graph->call(new RingStartToken(25, 4096)));
  ASSERT_TRUE(done);
  EXPECT_EQ(done->blocks, 25);
  EXPECT_EQ(done->payload_bytes, 25ll * 4096);
  // Every block crossed 4 inter-node links (3 forwards + return to merge).
  EXPECT_GE(cluster.fabric().messages_sent(), 100u);
}

TEST(RingApp, ThroughputScalesWithModeledBandwidth) {
  // Under virtual time, halving the link bandwidth must roughly double the
  // steady-state transfer time of a payload-dominated ring.
  auto run = [](double bandwidth) {
    LinkModel link;
    link.bandwidth_bytes_per_s = bandwidth;
    link.latency_s = 1e-4;
    link.per_message_s = 0;
    Cluster cluster(ClusterConfig::simulated(4, link));
    Application app(cluster, "ring");
    auto graph = build_ring_graph(app, 4);
    ActorScope scope(cluster.domain(), "main");
    auto done = token_cast<RingDoneToken>(
        graph->call(new RingStartToken(20, 100 * 1024)));
    EXPECT_TRUE(done.get() != nullptr);
    return cluster.domain().now();
  };
  const double t_fast = run(70e6);
  const double t_slow = run(35e6);
  EXPECT_GT(t_slow, 1.7 * t_fast);
  EXPECT_LT(t_slow, 2.3 * t_fast);
}

TEST(RingApp, TwoHopDegenerateRing) {
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "ring2");
  auto graph = build_ring_graph(app, 2);
  ActorScope scope(cluster.domain(), "main");
  auto done =
      token_cast<RingDoneToken>(graph->call(new RingStartToken(5, 128)));
  ASSERT_TRUE(done);
  EXPECT_EQ(done->blocks, 5);
}

class MatMulParam : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(MatMulParam, MatchesSequentialGemm) {
  const auto [n, s, workers] = GetParam();
  Cluster cluster(ClusterConfig::inproc(workers + 1));
  Application app(cluster, "matmul");
  auto graph = build_matmul_graph(app, workers);
  ActorScope scope(cluster.domain(), "main");

  la::Matrix a(static_cast<size_t>(n), static_cast<size_t>(n));
  la::Matrix b(static_cast<size_t>(n), static_cast<size_t>(n));
  a.fill_random(1);
  b.fill_random(2);
  la::Matrix c = apps::run_matmul(*graph, a, b, s);
  EXPECT_LT(la::max_abs_diff(c, la::gemm(a, b)), 1e-9)
      << "n=" << n << " s=" << s << " workers=" << workers;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatMulParam,
    ::testing::Values(std::make_tuple(16, 2, 1), std::make_tuple(16, 4, 2),
                      std::make_tuple(32, 4, 3), std::make_tuple(32, 8, 4),
                      std::make_tuple(64, 8, 2), std::make_tuple(48, 3, 2)));

TEST(MatMulApp, SyntheticModeChargesVirtualTime) {
  Cluster cluster(ClusterConfig::simulated(3));
  Application app(cluster, "matmul-sim");
  auto graph = build_matmul_graph(app, 2);
  ActorScope scope(cluster.domain(), "main");
  la::Matrix a(64, 64), b(64, 64);
  a.fill_random(3);
  b.fill_random(4);
  (void)apps::run_matmul(*graph, a, b, 4, /*sim_flops_per_s=*/220e6);
  // 2*64^3 flops at 220 MFLOPS across 2 workers >= 1.2 ms of virtual time.
  EXPECT_GT(cluster.domain().now(), 2.0 * 64 * 64 * 64 / 220e6 / 2 * 0.9);
}

TEST(MatMulApp, NarrowWindowSerializesTransfers) {
  // The Table 1 "no overlap" baseline: flow window = one task per worker.
  ClusterConfig cfg = ClusterConfig::simulated(3);
  cfg.flow_window = 2;  // 2 workers
  Cluster narrow_cluster(cfg);
  Application napp(narrow_cluster, "mm");
  auto ngraph = build_matmul_graph(napp, 2);
  double t_narrow = 0, t_wide = 0;
  la::Matrix a(64, 64), b(64, 64);
  a.fill_random(5);
  b.fill_random(6);
  {
    ActorScope scope(narrow_cluster.domain(), "main");
    (void)apps::run_matmul(*ngraph, a, b, 8, 50e6);
    t_narrow = narrow_cluster.domain().now();
  }
  Cluster wide_cluster(ClusterConfig::simulated(3));
  Application wapp(wide_cluster, "mm");
  auto wgraph = build_matmul_graph(wapp, 2);
  {
    ActorScope scope(wide_cluster.domain(), "main");
    (void)apps::run_matmul(*wgraph, a, b, 8, 50e6);
    t_wide = wide_cluster.domain().now();
  }
  EXPECT_LT(t_wide, t_narrow)
      << "pipelined transfers must beat the serialized window";
}

}  // namespace
}  // namespace dps
