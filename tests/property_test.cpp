// Property-style tests: randomized nested split–merge pipelines, swept over
// seeds with parameterized gtest. Invariants checked per run:
//   * conservation — every generated value is consumed exactly once (the
//     final sum/count equals the sequential reference);
//   * completion — the graph call terminates (no lost tokens/acks);
//   * determinism of results across fabrics (inproc vs simulated).
#include <gtest/gtest.h>

#include <random>

#include "core/application.hpp"
#include "core/controller.hpp"
#include "test_seed.hpp"
#include "util/mapping.hpp"

namespace dps {
namespace {

class PRangeToken : public SimpleToken {
 public:
  int begin, end, chunk;
  PRangeToken(int b = 0, int e = 0, int c = 0) : begin(b), end(e), chunk(c) {}
  DPS_IDENTIFY(PRangeToken);
};

class PNumToken : public SimpleToken {
 public:
  int64_t value;
  int chunk;
  PNumToken(int64_t v = 0, int c = 0) : value(v), chunk(c) {}
  DPS_IDENTIFY(PNumToken);
};

class PSumToken : public SimpleToken {
 public:
  int64_t sum;
  int count;
  PSumToken(int64_t s = 0, int c = 0) : sum(s), count(c) {}
  DPS_IDENTIFY(PSumToken);
};

class PMainThread : public Thread {
  DPS_IDENTIFY_THREAD(PMainThread);
};
class PWorkThread : public Thread {
  DPS_IDENTIFY_THREAD(PWorkThread);
};
// Dedicated merge threads: a split that stalls on the flow-control window
// occupies its DPS thread, so consumers must never live behind producers —
// with arbitrary windows the only always-safe topology keeps the collecting
// merges on their own collection.
class PMergeThread : public Thread {
  DPS_IDENTIFY_THREAD(PMergeThread);
};

DPS_ROUTE(PMainRangeRoute, PMainThread, PRangeToken, 0);
DPS_ROUTE(PMainNumRoute, PMainThread, PNumToken, 0);
DPS_ROUTE(PWorkRangeRoute, PWorkThread, PRangeToken,
          currentToken->begin % threadCount());
DPS_ROUTE(PWorkNumRoute, PWorkThread, PNumToken,
          currentToken->chunk % threadCount());
DPS_ROUTE(PMergeNumRoute, PMergeThread, PNumToken,
          currentToken->chunk % threadCount());

// Outer split: cuts [begin, end) into chunks of the token's chunk size.
class PChunkSplit : public SplitOperation<PMainThread, TV1(PRangeToken),
                                          TV1(PRangeToken)> {
 public:
  void execute(PRangeToken* in) override {
    for (int b = in->begin; b < in->end; b += in->chunk) {
      postToken(
          new PRangeToken(b, std::min(b + in->chunk, in->end), in->chunk));
    }
  }
  DPS_IDENTIFY_OPERATION(PChunkSplit);
};

// Inner split: one token per value; all tokens of a chunk share its id so
// the chunk's context converges on one thread.
class PValueSplit : public SplitOperation<PWorkThread, TV1(PRangeToken),
                                          TV1(PNumToken)> {
 public:
  void execute(PRangeToken* in) override {
    for (int i = in->begin; i < in->end; ++i) {
      postToken(new PNumToken(i, in->begin));
    }
  }
  DPS_IDENTIFY_OPERATION(PValueSplit);
};

// Lives on the merge collection: the inner split may stall on its window,
// and everything it feeds must execute on threads it does not occupy.
class PCubeLeaf
    : public LeafOperation<PMergeThread, TV1(PNumToken), TV1(PNumToken)> {
 public:
  void execute(PNumToken* in) override {
    postToken(new PNumToken(in->value * in->value * in->value, in->chunk));
  }
  DPS_IDENTIFY_OPERATION(PCubeLeaf);
};

class PInnerMerge
    : public MergeOperation<PMergeThread, TV1(PNumToken), TV1(PNumToken)> {
 public:
  void execute(PNumToken* first) override {
    int64_t sum = first->value;
    int chunk = first->chunk;
    while (auto t = waitForNextToken()) sum += token_cast<PNumToken>(t)->value;
    postToken(new PNumToken(sum, chunk));
  }
  DPS_IDENTIFY_OPERATION(PInnerMerge);
};

class POuterMerge
    : public MergeOperation<PMainThread, TV1(PNumToken), TV1(PSumToken)> {
 public:
  void execute(PNumToken* first) override {
    int64_t sum = first->value;
    int count = 1;
    while (auto t = waitForNextToken()) {
      sum += token_cast<PNumToken>(t)->value;
      ++count;
    }
    postToken(new PSumToken(sum, count));
  }
  DPS_IDENTIFY_OPERATION(POuterMerge);
};

struct RandomConfig {
  int nodes;
  int workers;
  int total;
  int chunk;
  uint32_t window;
  bool simulated;
};

RandomConfig config_for_seed(uint32_t seed) {
  std::mt19937 rng(seed);
  RandomConfig cfg;
  cfg.nodes = 1 + static_cast<int>(rng() % 4);
  cfg.workers = cfg.nodes + static_cast<int>(rng() % 5);
  cfg.total = 1 + static_cast<int>(rng() % 300);
  cfg.chunk = 1 + static_cast<int>(rng() % 40);
  const uint32_t windows[] = {2, 4, 16, 256, 1u << 16};
  cfg.window = windows[rng() % 5];
  cfg.simulated = (rng() % 2) == 0;
  return cfg;
}

class RandomPipeline : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RandomPipeline, ConservesEveryToken) {
  // DPS_TEST_SEED overrides the swept seed so one failing configuration can
  // be replayed alone: DPS_TEST_SEED=<seed> ./dps_tests
  // --gtest_filter='Seeds/RandomPipeline.*'
  const uint32_t seed = dps_testing::effective_seed(GetParam());
  const RandomConfig cfg = config_for_seed(seed);
  SCOPED_TRACE(::testing::Message()
               << "seed=" << seed << " (replay: DPS_TEST_SEED=" << seed
               << ") nodes=" << cfg.nodes << " workers=" << cfg.workers
               << " total=" << cfg.total << " chunk=" << cfg.chunk
               << " window=" << cfg.window << " sim=" << cfg.simulated);

  ClusterConfig cluster_cfg = cfg.simulated
                                  ? ClusterConfig::simulated(cfg.nodes)
                                  : ClusterConfig::inproc(cfg.nodes);
  cluster_cfg.flow_window = cfg.window;
  Cluster cluster(std::move(cluster_cfg));
  Application app(cluster, "property");
  auto mains = app.thread_collection<PMainThread>("p-main");
  mains->map("node0");
  auto collectors = app.thread_collection<PMainThread>("p-coll");
  collectors->map("node0");
  auto workers = app.thread_collection<PWorkThread>("p-work");
  auto mergers = app.thread_collection<PMergeThread>("p-merge");
  std::vector<std::string> names;
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    names.push_back(cluster.node_name(static_cast<NodeId>(i)));
  }
  workers->map(round_robin_mapping(names, cfg.workers));
  mergers->map(round_robin_mapping(names, cfg.workers));

  FlowgraphBuilder b = FlowgraphNode<PChunkSplit, PMainRangeRoute>(mains) >>
                       FlowgraphNode<PValueSplit, PWorkRangeRoute>(workers) >>
                       FlowgraphNode<PCubeLeaf, PMergeNumRoute>(mergers) >>
                       FlowgraphNode<PInnerMerge, PMergeNumRoute>(mergers) >>
                       FlowgraphNode<POuterMerge, PMainNumRoute>(collectors);
  auto graph = app.build_graph(b, "property");

  ActorScope scope(cluster.domain(), "main");
  auto result =
      token_cast<PSumToken>(graph->call(new PRangeToken(0, cfg.total, cfg.chunk)));
  ASSERT_TRUE(result);

  int64_t expected = 0;
  for (int i = 0; i < cfg.total; ++i) {
    expected += int64_t(i) * i * i;
  }
  EXPECT_EQ(result->sum, expected);
  EXPECT_EQ(result->count, (cfg.total + cfg.chunk - 1) / cfg.chunk);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipeline, ::testing::Range(1u, 25u));

}  // namespace
}  // namespace dps
