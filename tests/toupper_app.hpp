// The paper's tutorial application (section 3): convert a string to
// uppercase in parallel by splitting it into individual characters.
// Shared by tests and the quickstart example.
#pragma once

#include <cctype>
#include <cstring>
#include <string>

#include "core/application.hpp"
#include "core/controller.hpp"
#include "util/mapping.hpp"

namespace dps_tutorial {

using namespace dps;

inline constexpr int kMaxString = 256;

class StringToken : public SimpleToken {
 public:
  char str[kMaxString];
  int len;
  StringToken(const char* s = "") : str{}, len(0) {
    len = static_cast<int>(std::strlen(s));
    if (len >= kMaxString) len = kMaxString - 1;
    std::memcpy(str, s, static_cast<size_t>(len));
  }
  DPS_IDENTIFY(StringToken);
};

class CharToken : public SimpleToken {
 public:
  char chr;
  int pos;
  CharToken(char c = 0, int p = 0) : chr(c), pos(p) {}
  DPS_IDENTIFY(CharToken);
};

class MainThread : public Thread {
  DPS_IDENTIFY_THREAD(MainThread);
};

class ComputeThread : public Thread {
 public:
  int executions = 0;  // per-thread state, visible to operations
  DPS_IDENTIFY_THREAD(ComputeThread);
};

DPS_ROUTE(MainRoute, MainThread, StringToken, 0);
DPS_ROUTE(MainCharRoute, MainThread, CharToken, 0);
DPS_ROUTE(RoundRobinRoute, ComputeThread, CharToken,
          currentToken->pos % threadCount());

class SplitString
    : public SplitOperation<MainThread, TV1(StringToken), TV1(CharToken)> {
 public:
  void execute(StringToken* in) override {
    for (int i = 0; i < in->len; ++i) {
      postToken(new CharToken(in->str[i], i));
    }
  }
  DPS_IDENTIFY_OPERATION(SplitString);
};

class ToUpperCase
    : public LeafOperation<ComputeThread, TV1(CharToken), TV1(CharToken)> {
 public:
  void execute(CharToken* in) override {
    thread()->executions++;
    postToken(new CharToken(
        static_cast<char>(std::toupper(static_cast<unsigned char>(in->chr))),
        in->pos));
  }
  DPS_IDENTIFY_OPERATION(ToUpperCase);
};

class MergeString
    : public MergeOperation<MainThread, TV1(CharToken), TV1(StringToken)> {
 public:
  void execute(CharToken* first) override {
    StringToken* out = new StringToken();
    Ptr<Token> cur(first);
    do {
      auto* c = dynamic_cast<CharToken*>(cur.get());
      out->str[c->pos] = c->chr;
      if (c->pos + 1 > out->len) out->len = c->pos + 1;
    } while ((cur = waitForNextToken()));
    postToken(out);
  }
  DPS_IDENTIFY_OPERATION(MergeString);
};

/// Builds the tutorial graph on an application whose cluster has
/// `compute_nodes` nodes for the compute collection (one thread each).
/// Returns the runnable graph.
inline std::shared_ptr<Flowgraph> build_toupper_graph(Application& app,
                                                      int compute_threads) {
  auto main_threads = app.thread_collection<MainThread>("main");
  main_threads->map(app.cluster().node_name(0));
  auto compute = app.thread_collection<ComputeThread>("proc");
  std::vector<std::string> nodes;
  for (size_t i = 0; i < app.cluster().node_count(); ++i) {
    nodes.push_back(app.cluster().node_name(static_cast<NodeId>(i)));
  }
  compute->map(round_robin_mapping(nodes, compute_threads));

  FlowgraphBuilder builder =
      FlowgraphNode<SplitString, MainRoute>(main_threads) >>
      FlowgraphNode<ToUpperCase, RoundRobinRoute>(compute) >>
      FlowgraphNode<MergeString, MainCharRoute>(main_threads);
  return app.build_graph(builder, "toupper");
}

}  // namespace dps_tutorial
