// Tests for the Graphviz export of flow graphs (the paper highlights that
// flow graphs "can be easily visualized").
#include <gtest/gtest.h>

#include "core/graphviz.hpp"
#include "tests/toupper_app.hpp"

namespace dps {
namespace {

using namespace dps_tutorial;

TEST(Graphviz, RendersTutorialGraph) {
  Cluster cluster(ClusterConfig::inproc(2));
  Application app(cluster, "dot");
  auto graph = build_toupper_graph(app, 3);
  const std::string dot = to_dot(*graph);

  EXPECT_NE(dot.find("digraph \"toupper\""), std::string::npos);
  EXPECT_NE(dot.find("SplitString"), std::string::npos);
  EXPECT_NE(dot.find("ToUpperCase"), std::string::npos);
  EXPECT_NE(dot.find("MergeString"), std::string::npos);
  // Kinds and collections appear in the labels.
  EXPECT_NE(dot.find("split @ main[1]"), std::string::npos);
  EXPECT_NE(dot.find("leaf @ proc[3]"), std::string::npos);
  EXPECT_NE(dot.find("merge @ main[1]"), std::string::npos);
  // Edges labeled with the travelling token type.
  EXPECT_NE(dot.find("CharToken"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Exactly one entry vertex is emphasized.
  size_t pos = 0, bold = 0;
  while ((pos = dot.find("penwidth=2", pos)) != std::string::npos) {
    ++bold;
    pos += 1;
  }
  EXPECT_EQ(bold, 1u);
}

TEST(Graphviz, ShapesFollowOperationKinds) {
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "dot2");
  auto graph = build_toupper_graph(app, 1);
  const std::string dot = to_dot(*graph);
  EXPECT_NE(dot.find("shape=trapezium"), std::string::npos);     // split
  EXPECT_NE(dot.find("shape=box"), std::string::npos);           // leaf
  EXPECT_NE(dot.find("shape=invtrapezium"), std::string::npos);  // merge
}

}  // namespace
}  // namespace dps
