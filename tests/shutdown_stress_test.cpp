// Adversarial shutdown/lock-order coverage (docs/STATIC_ANALYSIS.md).
//
// TcpFabric::shutdown() walks every per-peer sender queue under mu_, closes
// the queues under each OutConn::mu, and joins senders that are still
// draining — while producers race it with sends (blocking on OutConn::space
// backpressure) and, in reliable mode, the controller's ack retirement
// recycles encode buffers through the process-wide BufferPool. These tests
// drive all three at once from many threads so the tsan and asan-ubsan
// stages exercise the exact lock orders the thread-safety annotations
// describe: mu_ -> OutConn::mu, never the reverse, and rel_mu_ never held
// across a fabric send.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/application.hpp"
#include "core/cluster.hpp"
#include "net/tcp_transport.hpp"
#include "serial/buffer_pool.hpp"
#include "tests/toupper_app.hpp"
#include "util/error.hpp"

namespace dps {
namespace {

using dps_tutorial::build_toupper_graph;
using dps_tutorial::StringToken;

// Many producers spam a fabric while the main thread shuts it down from
// under them. The drain contract: a send() that returns without throwing
// fully precedes the queue close, so every accepted frame must be delivered
// to the peer before shutdown() returns — under arbitrary interleaving.
TEST(ShutdownStress, ConcurrentSendsRaceShutdownWithoutLosingAcceptedFrames) {
  constexpr int kNodes = 3;
  constexpr int kProducers = 4;
  TcpFabric fabric(kNodes);
  fabric.set_send_queue_limit(1 << 12);  // small budget: hit backpressure

  std::atomic<uint64_t> received{0};
  for (NodeId n = 0; n < kNodes; ++n) {
    fabric.attach(n, [&](NodeMessage&&) {
      received.fetch_add(1, std::memory_order_relaxed);
    });
  }

  std::atomic<uint64_t> accepted{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) {
      }
      const NodeId from = static_cast<NodeId>(p % kNodes);
      const NodeId to = static_cast<NodeId>((p + 1) % kNodes);
      for (int i = 0; i < 400; ++i) {
        std::vector<std::byte> payload(64 + static_cast<size_t>(i % 7) * 32);
        try {
          fabric.send(from, to, FrameKind::kEnvelope, std::move(payload));
        } catch (const Error& e) {
          // Shutdown won the race; nothing sent after this point.
          EXPECT_EQ(e.code(), Errc::kNetwork);
          return;
        }
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  go.store(true, std::memory_order_release);
  // Let the race actually overlap: some frames in flight, some queued, some
  // producers parked on backpressure.
  std::this_thread::yield();
  fabric.shutdown();
  for (auto& t : producers) t.join();

  EXPECT_EQ(received.load(), accepted.load())
      << "shutdown() must drain every accepted frame through the EOF "
         "barrier before returning";
}

// shutdown() must be idempotent and re-entrant across threads: concurrent
// callers and late senders may all observe the fabric going down at once.
TEST(ShutdownStress, ConcurrentShutdownCallsAreIdempotent) {
  TcpFabric fabric(2);
  fabric.attach(0, [](NodeMessage&&) {});
  fabric.attach(1, [](NodeMessage&&) {});
  fabric.send(0, 1, FrameKind::kEnvelope, std::vector<std::byte>(128));

  std::vector<std::thread> closers;
  for (int i = 0; i < 3; ++i) {
    closers.emplace_back([&] { fabric.shutdown(); });
  }
  for (auto& t : closers) t.join();
  EXPECT_THROW(
      fabric.send(0, 1, FrameKind::kEnvelope, std::vector<std::byte>(8)),
      Error);
}

// Full-engine variant: a reliable-delivery cluster over real TCP tears down
// while graph calls are still completing on other threads. Ack retirement
// (controller rel_mu_), per-peer sender queues (OutConn::mu), worker
// mailboxes (Worker::mu) and the BufferPool free list all churn while the
// cluster destructor runs shutdown. The assertion is the absence of
// deadlock, loss, or sanitizer reports — plus every issued call completing
// exactly once.
TEST(ShutdownStress, ClusterTeardownRacesReliableCallTraffic) {
  constexpr int kCallers = 3;
  constexpr int kCallsEach = 4;
  std::atomic<int> completed{0};
  {
    ClusterConfig cfg = ClusterConfig::tcp(2);
    cfg.fault.reliable = true;  // acks + retransmit timers + pooled buffers
    Cluster cluster(cfg);
    Application app(cluster, "toupper");
    auto graph = build_toupper_graph(app, 2);

    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int c = 0; c < kCallers; ++c) {
      cluster.domain().reserve_actor();
      callers.emplace_back([&] {
        ActorScope scope(cluster.domain(), "caller");
        for (int i = 0; i < kCallsEach; ++i) {
          auto result = token_cast<StringToken>(
              graph->call(new StringToken("abcdefghij")));
          ASSERT_EQ(std::string(result->str,
                                static_cast<size_t>(result->len)),
                    "ABCDEFGHIJ");
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : callers) t.join();
    // Cluster (and its TcpFabric) tears down here, immediately after the
    // last call retires — acks for the final window are still in flight.
  }
  EXPECT_EQ(completed.load(), kCallers * kCallsEach);
  BufferPool::instance().trim();  // leak hygiene for the asan stage
}

}  // namespace
}  // namespace dps
