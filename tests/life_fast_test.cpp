// LifeFast property suite: the LUT Life kernel (life/fast_step.hpp) must be
// bit-identical to the naive reference on every input shape, the 512-entry
// rule table must encode exactly Conway's rule, and the backend seam
// (compute/backend.hpp) must honour its selection precedence.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "life/fast_step.hpp"
#include "life/world.hpp"
#include "obs/metrics.hpp"
#include "test_seed.hpp"
#include "util/error.hpp"

namespace dps::life {
namespace {

/// Restores the process-global backend selection state on scope exit so a
/// test can never leak a pinned kernel into later suites.
class SelectionGuard {
 public:
  ~SelectionGuard() {
    compute::set_default_backend("");
    LifeBackends::reset_selection();
  }
};

Band random_band(int rows, int cols, std::mt19937& rng, double density = 0.35) {
  Band b(rows, cols);
  std::bernoulli_distribution alive(density);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) b.set(r, c, alive(rng) ? 1 : 0);
  }
  return b;
}

std::vector<uint8_t> random_row(int cols, std::mt19937& rng) {
  std::vector<uint8_t> row(static_cast<size_t>(cols));
  std::bernoulli_distribution alive(0.35);
  for (auto& v : row) v = alive(rng) ? 1 : 0;
  return row;
}

TEST(LifeFast, RuleLutMatchesConwayOnAll512Neighbourhoods) {
  // Every possible packed 3x3 neighbourhood, decoded into a 3x3 board whose
  // centre is stepped by the naive reference with dead world edges.
  const uint8_t* lut = rule_lut();
  const std::vector<uint8_t> dead;
  for (int w = 0; w < kRuleLutSize; ++w) {
    Band board(3, 3);
    for (int dr = -1; dr <= 1; ++dr) {
      for (int dc = -1; dc <= 1; ++dc) {
        board.set(1 + dr, 1 + dc,
                  static_cast<uint8_t>((w >> rule_lut_bit(dr, dc)) & 1));
      }
    }
    const Band next = step_band_naive(board, dead, dead);
    ASSERT_EQ(lut[w], next.at(1, 1)) << "LUT entry " << w;
  }
}

TEST(LifeFast, LutMatchesNaiveOnSeededRandomBands) {
  const uint32_t seed = dps_testing::effective_seed(0xf19u);
  SCOPED_TRACE("DPS_TEST_SEED=" + std::to_string(seed));
  std::mt19937 rng(seed);
  const struct {
    int rows, cols;
  } shapes[] = {{1, 1}, {1, 9}, {9, 1}, {2, 5}, {17, 33}, {64, 64}, {5, 128}};
  for (const auto& sh : shapes) {
    for (int variant = 0; variant < 4; ++variant) {
      SCOPED_TRACE(std::to_string(sh.rows) + "x" + std::to_string(sh.cols) +
                   " variant " + std::to_string(variant));
      const Band band = random_band(sh.rows, sh.cols, rng);
      // Variants: dead/dead, live/dead, dead/live, live/live ghost rows.
      const std::vector<uint8_t> above =
          (variant & 1) ? random_row(sh.cols, rng) : std::vector<uint8_t>();
      const std::vector<uint8_t> below =
          (variant & 2) ? random_row(sh.cols, rng) : std::vector<uint8_t>();
      const Band naive = step_band_naive(band, above, below);
      const Band lut = lut_step_band(band, above, below);
      ASSERT_TRUE(naive == lut);
    }
  }
}

TEST(LifeFast, InteriorPlusBordersEqualsFullStepForBothKernels) {
  const uint32_t seed = dps_testing::effective_seed(0x1f5u);
  SCOPED_TRACE("DPS_TEST_SEED=" + std::to_string(seed));
  std::mt19937 rng(seed);
  for (int rows : {1, 2, 3, 8, 31}) {
    SCOPED_TRACE("rows=" + std::to_string(rows));
    const int cols = 24;
    const Band band = random_band(rows, cols, rng);
    const std::vector<uint8_t> above = random_row(cols, rng);
    const std::vector<uint8_t> below = random_row(cols, rng);

    Band lut_split = lut_step_interior(band);
    lut_step_borders(band, above, below, lut_split);
    ASSERT_TRUE(lut_split == lut_step_band(band, above, below));

    Band naive_split = step_interior_naive(band);
    step_borders_naive(band, above, below, naive_split);
    ASSERT_TRUE(naive_split == step_band_naive(band, above, below));
  }
}

TEST(LifeFast, EmptyAndFullBoards) {
  const std::vector<uint8_t> dead;
  Band empty(16, 16);
  ASSERT_EQ(lut_step_band(empty, dead, dead).population(), 0u);

  Band full(16, 16);
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) full.set(r, c, 1);
  }
  const Band naive = step_band_naive(full, dead, dead);
  const Band lut = lut_step_band(full, dead, dead);
  ASSERT_TRUE(naive == lut);
  // Overcrowding kills the interior; only the four corners (3 neighbours)
  // survive a fully populated board.
  ASSERT_EQ(lut.population(), 4u);
}

/// Steps a world decomposed into horizontal bands through the dispatch
/// seam, exchanging ghost rows each iteration — the LifeApp communication
/// pattern, minus the flow graph.
Band step_banded(const Band& world, const std::vector<int>& cuts, int iters) {
  std::vector<Band> bands;
  int r0 = 0;
  for (int cut : cuts) {
    Band b(cut - r0, world.cols());
    for (int r = r0; r < cut; ++r) b.set_row(r - r0, world.row(r));
    bands.push_back(b);
    r0 = cut;
  }
  for (int it = 0; it < iters; ++it) {
    std::vector<Band> next;
    for (size_t i = 0; i < bands.size(); ++i) {
      const std::vector<uint8_t> above =
          i > 0 ? bands[i - 1].row(bands[i - 1].rows() - 1)
                : std::vector<uint8_t>();
      const std::vector<uint8_t> below =
          i + 1 < bands.size() ? bands[i + 1].row(0) : std::vector<uint8_t>();
      next.push_back(step_band(bands[i], above, below));
    }
    bands = std::move(next);
  }
  Band out(world.rows(), world.cols());
  int r = 0;
  for (const Band& b : bands) {
    for (int br = 0; br < b.rows(); ++br, ++r) out.set_row(r, b.row(br));
  }
  return out;
}

TEST(LifeFast, GliderCrossesBandBordersBitIdentically) {
  SelectionGuard guard;
  // A glider starting in the top band walks down-right across both band
  // cuts over 40 generations; banded stepping with ghost-row exchange must
  // reproduce the whole-world oracle bit-for-bit with either kernel.
  Band world(20, 20);
  world.set(2, 3, 1);
  world.set(3, 4, 1);
  world.set(4, 2, 1);
  world.set(4, 3, 1);
  world.set(4, 4, 1);
  const std::vector<int> cuts = {7, 14, 20};
  const int iters = 40;
  const Band oracle = step_world(world, iters);
  ASSERT_GT(oracle.population(), 0u) << "glider left the world; bad setup";
  for (const char* kernel : {"lut", "naive"}) {
    SCOPED_TRACE(kernel);
    LifeBackends::select(kernel);
    ASSERT_TRUE(step_banded(world, cuts, iters) == oracle);
  }
}

TEST(LifeFast, BackendSelectionPrecedence) {
  SelectionGuard guard;
  active_life_kernel();  // ensure registration

  const std::vector<std::string> names = LifeBackends::names();
  ASSERT_NE(std::find(names.begin(), names.end(), "naive"), names.end());
  ASSERT_NE(std::find(names.begin(), names.end(), "lut"), names.end());

  // Registration default: lut.
  compute::set_default_backend("");
  LifeBackends::reset_selection();
  EXPECT_EQ(LifeBackends::active_name(), "lut");

  // Process-wide default (what ClusterConfig::leaf_backend feeds).
  compute::set_default_backend("naive");
  EXPECT_EQ(LifeBackends::active_name(), "naive");

  // Unknown process-wide name falls back to the registration default
  // rather than breaking the kernel family.
  compute::set_default_backend("no-such-kernel");
  EXPECT_EQ(LifeBackends::active_name(), "lut");

  // Explicit select() outranks the process default.
  compute::set_default_backend("lut");
  LifeBackends::select("naive");
  EXPECT_EQ(LifeBackends::active_name(), "naive");
  EXPECT_EQ(active_life_kernel().id, 0);

  // Unknown explicit selection is a loud error.
  EXPECT_THROW(LifeBackends::select("no-such-kernel"), Error);

  LifeBackends::reset_selection();
  EXPECT_EQ(LifeBackends::active_name(), "lut");
  EXPECT_EQ(active_life_kernel().id, 1);
}

TEST(LifeFast, LeafCellsCounterCountsSteppedCells) {
  const uint32_t seed = dps_testing::effective_seed(0xce11u);
  std::mt19937 rng(seed);
  const Band band = random_band(12, 30, rng);
  const std::vector<uint8_t> dead;
  obs::Counter& cells = obs::Metrics::instance().counter("dps.leaf.cells");
  const uint64_t before = cells.value();
  (void)step_band(band, dead, dead);
  const uint64_t after = cells.value();
  EXPECT_EQ(after - before, 12u * 30u);
}

}  // namespace
}  // namespace dps::life
