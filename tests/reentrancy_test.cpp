// Regression tests for re-entrant dispatch: while a merge/stream collects,
// its DPS thread must keep executing other queued operations — the LU
// stage opener depends on this (its notifications transitively require
// leaf work on the same column thread). Without re-entrancy the graph in
// these tests deadlocks.
#include <gtest/gtest.h>

#include <random>

#include "core/application.hpp"
#include "core/controller.hpp"
#include "test_seed.hpp"

namespace dps {
namespace {

class RPingToken : public SimpleToken {
 public:
  int value;
  RPingToken(int v = 0) : value(v) {}
  DPS_IDENTIFY(RPingToken);
};

class RPongToken : public SimpleToken {
 public:
  int value;
  RPongToken(int v = 0) : value(v) {}
  DPS_IDENTIFY(RPongToken);
};

class RStartToken : public SimpleToken {
 public:
  int pings;
  RStartToken(int p = 0) : pings(p) {}
  DPS_IDENTIFY(RStartToken);
};

class RSumToken : public SimpleToken {
 public:
  int64_t sum;
  RSumToken(int64_t s = 0) : sum(s) {}
  DPS_IDENTIFY(RSumToken);
};

class RMainThread : public Thread {
  DPS_IDENTIFY_THREAD(RMainThread);
};
class RWorkThread : public Thread {
  DPS_IDENTIFY_THREAD(RWorkThread);
};

DPS_ROUTE(RMainStartRoute, RMainThread, RStartToken, 0);
DPS_ROUTE(RWorkPingRoute, RWorkThread, RPingToken, 0);
DPS_ROUTE(RWorkPongRoute, RWorkThread, RPongToken, 0);

// Posts one pong directly (it reaches the merge first and opens the
// collection), then the pings whose processing — on the SAME worker
// thread as the merge — produces the remaining pongs.
class RSplit : public SplitOperation<RMainThread, TV1(RStartToken),
                                     TV2(RPingToken, RPongToken)> {
 public:
  void execute(RStartToken* in) override {
    postToken(new RPongToken(0));
    for (int i = 1; i <= in->pings; ++i) postToken(new RPingToken(i));
  }
  DPS_IDENTIFY_OPERATION(RSplit);
};

class RPingLeaf
    : public LeafOperation<RWorkThread, TV1(RPingToken), TV1(RPongToken)> {
 public:
  void execute(RPingToken* in) override {
    postToken(new RPongToken(in->value));
  }
  DPS_IDENTIFY_OPERATION(RPingLeaf);
};

class RMerge
    : public MergeOperation<RWorkThread, TV1(RPongToken), TV1(RSumToken)> {
 public:
  void execute(RPongToken* first) override {
    int64_t sum = first->value;
    while (auto t = waitForNextToken()) {
      sum += token_cast<RPongToken>(t)->value;
    }
    postToken(new RSumToken(sum));
  }
  DPS_IDENTIFY_OPERATION(RMerge);
};

std::shared_ptr<Flowgraph> build(Application& app) {
  auto mains = app.thread_collection<RMainThread>("r-main");
  mains->map("node0");
  auto workers = app.thread_collection<RWorkThread>("r-work");
  workers->map("node0");  // ONE worker thread: merge and leaf share it

  FlowgraphNode<RSplit, RMainStartRoute> split(mains);
  FlowgraphNode<RPingLeaf, RWorkPingRoute> leaf(workers);
  FlowgraphNode<RMerge, RWorkPongRoute> merge(workers);
  FlowgraphBuilder b = split >> leaf >> merge;
  b += split >> merge;  // the direct pong path
  return app.build_graph(b, "reentrant");
}

TEST(Reentrancy, MergeThreadKeepsExecutingLeaves) {
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "reentrant");
  auto graph = build(app);
  ActorScope scope(cluster.domain(), "main");
  auto result = token_cast<RSumToken>(graph->call(new RStartToken(100)));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->sum, 100 * 101 / 2);
}

TEST(Reentrancy, WorksUnderVirtualTime) {
  Cluster cluster(ClusterConfig::simulated(1));
  Application app(cluster, "reentrant-sim");
  auto graph = build(app);
  ActorScope scope(cluster.domain(), "main");
  auto result = token_cast<RSumToken>(graph->call(new RStartToken(25)));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->sum, 25 * 26 / 2);
}

TEST(Reentrancy, ManySequentialCalls) {
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "reentrant-seq");
  auto graph = build(app);
  ActorScope scope(cluster.domain(), "main");
  for (int i = 1; i <= 20; ++i) {
    auto result = token_cast<RSumToken>(graph->call(new RStartToken(i)));
    ASSERT_TRUE(result);
    EXPECT_EQ(result->sum, i * (i + 1) / 2);
  }
}

// Randomized ping counts hammer the single shared worker thread with
// varying collection sizes. DPS_TEST_SEED overrides the base seed so a
// failing sequence replays exactly:
//   DPS_TEST_SEED=<seed> ./dps_tests --gtest_filter=Reentrancy.RandomizedPingCounts
TEST(Reentrancy, RandomizedPingCounts) {
  const uint32_t seed = dps_testing::effective_seed(0xd15bu);
  SCOPED_TRACE(::testing::Message()
               << "seed=" << seed << " (replay: DPS_TEST_SEED=" << seed << ")");
  std::mt19937 rng(seed);
  Cluster cluster(ClusterConfig::inproc(1));
  Application app(cluster, "reentrant-rand");
  auto graph = build(app);
  ActorScope scope(cluster.domain(), "main");
  for (int round = 0; round < 12; ++round) {
    const int pings = 1 + static_cast<int>(rng() % 200);
    SCOPED_TRACE(::testing::Message() << "round=" << round
                                      << " pings=" << pings);
    auto result = token_cast<RSumToken>(graph->call(new RStartToken(pings)));
    ASSERT_TRUE(result);
    EXPECT_EQ(result->sum, int64_t(pings) * (pings + 1) / 2);
  }
}

}  // namespace
}  // namespace dps
