// Video frame recomposition pipeline (paper, section 3, Figure 4).
//
// Partial frames are read from a simulated disk array; a stream operation
// recomposes them and emits each complete frame for processing as soon as
// it is ready — the stream construct's pipelining in action.
//
// Usage: video_pipeline [frames] [parts] [disks]
#include <cstdlib>
#include <iostream>

#include "apps/video.hpp"

using namespace dps;

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 24;
  const int parts = argc > 2 ? std::atoi(argv[2]) : 4;
  const int disks = argc > 3 ? std::atoi(argv[3]) : 4;
  const int part_bytes = 64 * 1024;
  const double disk_latency = 0.008;  // 8 ms per partial-frame read

  std::cout << frames << " frames x " << parts << " parts, " << disks
            << " disks, " << part_bytes / 1024 << " kB parts\n";

  Cluster cluster(ClusterConfig::simulated(std::max(disks, 2)));
  Application app(cluster, "video");
  auto graph = apps::build_video_graph(app, disks, disks);
  ActorScope scope(cluster.domain(), "main");

  auto done = token_cast<apps::VideoDoneToken>(graph->call(
      new apps::VideoJobToken(frames, parts, part_bytes, disk_latency)));
  if (!done || done->frames != frames) {
    std::cerr << "pipeline failed\n";
    return 1;
  }
  uint64_t expected = 0;
  for (int f = 0; f < frames; ++f) {
    expected ^= apps::video_frame_checksum(f, parts, part_bytes);
  }
  std::cout << "frames processed : " << done->frames << "\n";
  std::cout << "checksum         : " << std::hex << done->checksum_xor
            << (done->checksum_xor == expected ? " (verified)" : " (WRONG)")
            << std::dec << "\n";
  const double t = cluster.domain().now();
  const double serial_reads = frames * parts * disk_latency;
  std::cout << "virtual time     : " << t * 1e3 << " ms\n";
  std::cout << "serial read time : " << serial_reads * 1e3
            << " ms (what a single disk with no overlap would need)\n";
  return done->checksum_xor == expected ? 0 : 1;
}
