// Parallel services (paper, section 5, Figure 10 and Table 2).
//
// The Game-of-Life application publishes its read-subset flow graph as a
// parallel service; a separate viewer application calls it while the
// simulation iterates, just like the paper's visualization client. The
// example prints a small ASCII rendering fetched exclusively through the
// service.
//
// Usage: life_service [nodes] [iterations]
#include <cstdlib>
#include <iostream>

#include "apps/life.hpp"

using namespace dps;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 4;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 3;
  const int rows = 24, cols = 48;

  Cluster cluster(ClusterConfig::inproc(nodes));

  // Application 1: the Game of Life, exposing its read graph by name.
  apps::LifeApp life_app(cluster, nodes);
  ActorScope scope(cluster.domain(), "main");
  life::Band world(rows, cols);
  world.seed_random(7);
  life_app.scatter(world);
  life_app.publish_read_service("life/read");

  // Application 2: a viewer that only ever talks to the service.
  Application viewer(cluster, "viewer", static_cast<NodeId>(nodes - 1));

  for (int it = 0; it <= iterations; ++it) {
    auto subset = token_cast<apps::LifeSubsetToken>(viewer.call_service(
        "life/read",
        new apps::LifeReadRequestToken(0, 0, cols, rows, rows, cols, nodes,
                                       life_app.world_id())));
    if (!subset) {
      std::cerr << "service call failed\n";
      return 1;
    }
    std::cout << "--- iteration " << it << " (via life/read service) ---\n";
    for (int r = 0; r < rows; ++r) {
      std::string line;
      for (int c = 0; c < cols; ++c) {
        line += subset->cells[static_cast<size_t>(r) * cols + c] ? '#' : '.';
      }
      std::cout << line << "\n";
    }
    std::cout << "\n";
    if (it < iterations) life_app.iterate(/*improved=*/true);
  }

  // Sanity: the final service view matches the sequential reference.
  const life::Band expected = life::step_world(world, iterations);
  auto final_view = token_cast<apps::LifeSubsetToken>(viewer.call_service(
      "life/read",
      new apps::LifeReadRequestToken(0, 0, cols, rows, rows, cols, nodes,
                                       life_app.world_id())));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (final_view->cells[static_cast<size_t>(r) * cols + c] !=
          expected.at(r, c)) {
        std::cerr << "MISMATCH vs sequential reference at (" << r << "," << c
                  << ")\n";
        return 1;
      }
    }
  }
  std::cout << "final state verified against the sequential reference\n";
  return 0;
}
