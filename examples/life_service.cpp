// Parallel services (paper, section 5, Figure 10 and Table 2).
//
// The Game-of-Life application publishes its read-subset flow graph as a
// parallel service; a separate viewer application calls it while the
// simulation iterates, just like the paper's visualization client. The
// example prints a small ASCII rendering fetched exclusively through the
// service.
//
// The second half is the service-mesh quickstart (docs/SERVICE_MESH.md):
// two viewer tenants share the published service — one polite, one
// deliberately abusive, bursting far past its small in-flight budget. The
// mesh sheds the abuser's overhang with kBackpressure while the polite
// tenant's latency stays flat.
//
// Usage: life_service [nodes] [iterations]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "apps/life.hpp"

using namespace dps;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 4;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 3;
  const int rows = 24, cols = 48;

  Cluster cluster(ClusterConfig::inproc(nodes));

  // Application 1: the Game of Life, exposing its read graph by name.
  apps::LifeApp life_app(cluster, nodes);
  ActorScope scope(cluster.domain(), "main");
  life::Band world(rows, cols);
  world.seed_random(7);
  life_app.scatter(world);
  life_app.publish_read_service("life/read");

  // Application 2: a viewer that only ever talks to the service.
  Application viewer(cluster, "viewer", static_cast<NodeId>(nodes - 1));

  for (int it = 0; it <= iterations; ++it) {
    auto subset = token_cast<apps::LifeSubsetToken>(viewer.call_service(
        "life/read",
        new apps::LifeReadRequestToken(0, 0, cols, rows, rows, cols, nodes,
                                       life_app.world_id())));
    if (!subset) {
      std::cerr << "service call failed\n";
      return 1;
    }
    std::cout << "--- iteration " << it << " (via life/read service) ---\n";
    for (int r = 0; r < rows; ++r) {
      std::string line;
      for (int c = 0; c < cols; ++c) {
        line += subset->cells[static_cast<size_t>(r) * cols + c] ? '#' : '.';
      }
      std::cout << line << "\n";
    }
    std::cout << "\n";
    if (it < iterations) life_app.iterate(/*improved=*/true);
  }

  // Sanity: the final service view matches the sequential reference.
  const life::Band expected = life::step_world(world, iterations);
  auto final_view = token_cast<apps::LifeSubsetToken>(viewer.call_service(
      "life/read",
      new apps::LifeReadRequestToken(0, 0, cols, rows, rows, cols, nodes,
                                       life_app.world_id())));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (final_view->cells[static_cast<size_t>(r) * cols + c] !=
          expected.at(r, c)) {
        std::cerr << "MISMATCH vs sequential reference at (" << r << "," << c
                  << ")\n";
        return 1;
      }
    }
  }
  std::cout << "final state verified against the sequential reference\n";

  // --- service mesh: polite vs abusive tenant (docs/SERVICE_MESH.md) ------
  // Each Application is a tenant; budgets are set per tenant. The polite
  // viewer issues one call at a time; the abusive one bursts eight calls
  // against an in-flight budget of two, so the mesh must shed six per
  // round — and the polite tenant must not feel it.
  Application polite(cluster, "viewer-polite", 0);
  Application abusive(cluster, "viewer-abusive",
                      static_cast<NodeId>(nodes - 1));
  TenantConfig abusive_budget;
  abusive_budget.max_inflight = 2;
  abusive.set_tenant_config(abusive_budget);

  auto read_request = [&] {
    return new apps::LifeReadRequestToken(0, 0, cols, rows, rows, cols, nodes,
                                          life_app.world_id());
  };
  auto polite_median_ms = [&](int calls) {
    std::vector<double> times;
    for (int i = 0; i < calls; ++i) {
      const double t0 = cluster.domain().now();
      if (!polite.call_service("life/read", read_request())) return -1.0;
      times.push_back(cluster.domain().now() - t0);
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2] * 1e3;
  };

  constexpr int kCalls = 40;
  const double calm_ms = polite_median_ms(kCalls);

  bool stop = false;
  Mutex mu;
  uint64_t abusive_done = 0, abusive_shed = 0;
  std::thread abuser([&] {
    for (;;) {
      {
        MutexLock lock(mu);
        if (stop) break;
      }
      std::vector<CallHandle> live;
      for (int b = 0; b < 8; ++b) {
        try {
          live.push_back(abusive.call_service_async("life/read",
                                                    read_request()));
        } catch (const Error& e) {
          if (e.code() != Errc::kBackpressure) throw;
          MutexLock lock(mu);
          ++abusive_shed;
        }
      }
      for (auto& call : live) {
        call.wait();
        MutexLock lock(mu);
        ++abusive_done;
      }
    }
  });
  const double stormy_ms = polite_median_ms(kCalls);
  {
    MutexLock lock(mu);
    stop = true;
  }
  abuser.join();

  std::cout << "\n--- service mesh: polite vs abusive tenant ---\n";
  std::printf("polite median call: %.2f ms alone, %.2f ms under abuse\n",
              calm_ms, stormy_ms);
  std::printf("abusive tenant: %llu served, %llu shed with %s\n",
              static_cast<unsigned long long>(abusive_done),
              static_cast<unsigned long long>(abusive_shed),
              to_string(Errc::kBackpressure));
  if (calm_ms < 0 || stormy_ms < 0 || abusive_shed == 0) {
    std::cerr << "mesh demo failed: polite calls errored or nothing shed\n";
    return 1;
  }
  // "Flat" allowing for scheduling noise on small absolute latencies.
  if (stormy_ms > 10 * calm_ms + 5.0) {
    std::cerr << "mesh demo failed: polite latency not flat under abuse\n";
    return 1;
  }
  return 0;
}
