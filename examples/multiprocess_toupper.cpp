// Multi-process deployment (paper, section 4).
//
// Runs the tutorial uppercase application across real OS processes: the
// leader starts a name server, and the first token bound for each remote
// node makes the kernel spawn a follower process there (lazy application
// launch); TCP connections open lazily as in the paper. Every process runs
// this same program (SPMD): followers build the identical collections and
// graphs, then serve until the leader finishes.
//
// Usage: multiprocess_toupper [nodes] [text...]
#include <cctype>
#include <cstring>
#include <iostream>

#include "core/application.hpp"
#include "core/controller.hpp"
#include "kernel/kernel.hpp"
#include "util/mapping.hpp"

using namespace dps;

namespace {

constexpr int kMaxString = 256;

class MpStringToken : public SimpleToken {
 public:
  char str[kMaxString];
  int len;
  MpStringToken(const char* s = "") : str{}, len(0) {
    len = static_cast<int>(std::strlen(s));
    if (len >= kMaxString) len = kMaxString - 1;
    std::memcpy(str, s, static_cast<size_t>(len));
  }
  DPS_IDENTIFY(MpStringToken);
};

class MpCharToken : public SimpleToken {
 public:
  char chr;
  int pos;
  MpCharToken(char c = 0, int p = 0) : chr(c), pos(p) {}
  DPS_IDENTIFY(MpCharToken);
};

class MpMainThread : public Thread {
  DPS_IDENTIFY_THREAD(MpMainThread);
};
class MpComputeThread : public Thread {
  DPS_IDENTIFY_THREAD(MpComputeThread);
};

DPS_ROUTE(MpMainRoute, MpMainThread, MpStringToken, 0);
DPS_ROUTE(MpMainCharRoute, MpMainThread, MpCharToken, 0);
DPS_ROUTE(MpRoundRobinRoute, MpComputeThread, MpCharToken,
          currentToken->pos % threadCount());

class MpSplitString
    : public SplitOperation<MpMainThread, TV1(MpStringToken),
                            TV1(MpCharToken)> {
 public:
  void execute(MpStringToken* in) override {
    for (int i = 0; i < in->len; ++i) {
      postToken(new MpCharToken(in->str[i], i));
    }
  }
  DPS_IDENTIFY_OPERATION(MpSplitString);
};

class MpToUpperCase
    : public LeafOperation<MpComputeThread, TV1(MpCharToken),
                           TV1(MpCharToken)> {
 public:
  void execute(MpCharToken* in) override {
    postToken(new MpCharToken(
        static_cast<char>(std::toupper(static_cast<unsigned char>(in->chr))),
        in->pos));
  }
  DPS_IDENTIFY_OPERATION(MpToUpperCase);
};

class MpMergeString
    : public MergeOperation<MpMainThread, TV1(MpCharToken),
                            TV1(MpStringToken)> {
 public:
  void execute(MpCharToken* first) override {
    MpStringToken* out = new MpStringToken();
    Ptr<Token> cur(first);
    do {
      auto c = token_cast<MpCharToken>(cur);
      out->str[c->pos] = c->chr;
      if (c->pos + 1 > out->len) out->len = c->pos + 1;
    } while ((cur = waitForNextToken()));
    postToken(out);
  }
  DPS_IDENTIFY_OPERATION(MpMergeString);
};

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::max(1, std::atoi(argv[1])) : 3;
  std::string text = "spmd across real processes";
  if (argc > 2) {
    text.clear();
    for (int i = 2; i < argc; ++i) {
      if (i > 2) text += ' ';
      text += argv[i];
    }
  }

  // Identical setup in every process (leader and spawned followers).
  SpmdRuntime spmd(argc, argv, nodes);
  Cluster& cluster = spmd.cluster();
  Application app(cluster, "mp-toupper");
  auto mains = app.thread_collection<MpMainThread>("main");
  mains->map("node0");
  auto compute = app.thread_collection<MpComputeThread>("proc");
  std::vector<std::string> names;
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    names.push_back(cluster.node_name(static_cast<NodeId>(i)));
  }
  compute->map(round_robin_mapping(names, nodes));
  auto graph = app.build_graph(
      FlowgraphNode<MpSplitString, MpMainRoute>(mains) >>
          FlowgraphNode<MpToUpperCase, MpRoundRobinRoute>(compute) >>
          FlowgraphNode<MpMergeString, MpMainCharRoute>(mains),
      "mp-toupper");

  if (!spmd.leader()) return spmd.serve();  // followers park here

  ActorScope scope(cluster.domain(), "main");
  auto result =
      token_cast<MpStringToken>(graph->call(new MpStringToken(text.c_str())));
  if (!result) {
    std::cerr << "no result\n";
    return 1;
  }
  std::cout << "input : " << text << "\n";
  std::cout << "output: "
            << std::string(result->str, static_cast<size_t>(result->len))
            << "\n";
  std::cout << "pid " << getpid() << " drove " << nodes
            << " processes (spawned lazily)\n";
  return 0;
}
