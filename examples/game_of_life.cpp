// Parallel Game of Life (paper, section 5, Figures 7-9).
//
// Runs the simple (border exchange, global sync, compute) and improved
// (border exchange overlapped with interior compute) flow graphs, verifies
// both against the sequential stepper, and reports virtual-time speedups on
// a simulated Gigabit-Ethernet cluster.
//
// Usage: game_of_life [rows] [cols] [nodes] [iterations]
#include <cstdlib>
#include <iostream>

#include "apps/life.hpp"

using namespace dps;

int main(int argc, char** argv) {
  const int rows = argc > 1 ? std::atoi(argv[1]) : 400;
  const int cols = argc > 2 ? std::atoi(argv[2]) : 400;
  const int nodes = argc > 3 ? std::atoi(argv[3]) : 4;
  const int iterations = argc > 4 ? std::atoi(argv[4]) : 5;

  life::Band world(rows, cols);
  world.seed_random(2026);
  std::cout << "world " << rows << "x" << cols << ", " << nodes
            << " nodes, " << iterations << " iterations\n\n";

  // Correctness: real compute on an in-process cluster.
  {
    Cluster cluster(ClusterConfig::inproc(nodes));
    apps::LifeApp app(cluster, nodes);
    ActorScope scope(cluster.domain(), "main");
    app.scatter(world);
    for (int i = 0; i < iterations; ++i) app.iterate(/*improved=*/true);
    const life::Band expected = life::step_world(world, iterations);
    const bool ok = (app.gather() == expected);
    std::cout << "improved graph result vs sequential reference: "
              << (ok ? "MATCH" : "MISMATCH") << "\n";
    if (!ok) return 1;
  }

  // Performance: both graphs on the simulated cluster (virtual time).
  const double cell_rate = 8e6;  // cells/s per worker, PIII-era calibration
  for (bool improved : {false, true}) {
    Cluster cluster(ClusterConfig::simulated(nodes));
    apps::LifeApp app(cluster, nodes);
    ActorScope scope(cluster.domain(), "main");
    app.scatter(world);
    const double t0 = cluster.domain().now();
    for (int i = 0; i < iterations; ++i) app.iterate(improved, cell_rate);
    const double per_iter =
        (cluster.domain().now() - t0) / iterations * 1e3;
    std::cout << (improved ? "improved" : "simple  ")
              << " graph: " << per_iter << " ms per iteration (virtual)\n";
  }
  return 0;
}
