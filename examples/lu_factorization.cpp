// Parallel block LU factorization (paper, section 5, Figures 11-15).
//
// Builds the dynamically-sized LU flow graph, factorizes a random matrix,
// verifies P*A = L*U, and compares the pipelined (stream) graph against the
// non-pipelined (merge+split) baseline on a simulated cluster.
//
// Usage: lu_factorization [n] [block] [nodes]
#include <cstdlib>
#include <iostream>

#include "apps/lu.hpp"

using namespace dps;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 128;
  const int r = argc > 2 ? std::atoi(argv[2]) : 16;
  const int nodes = argc > 3 ? std::atoi(argv[3]) : 4;
  if (n % r != 0 || n / r < 2) {
    std::cerr << "need n divisible by block with at least 2 blocks\n";
    return 1;
  }
  const int blocks = n / r;
  std::cout << n << "x" << n << " matrix, " << blocks << " block columns ("
            << r << " wide), " << nodes << " nodes\n\n";

  la::Matrix a(static_cast<size_t>(n), static_cast<size_t>(n));
  a.fill_random(7);

  // Correctness: real arithmetic, in-process cluster.
  {
    Cluster cluster(ClusterConfig::inproc(nodes));
    apps::LuApp lu(cluster, blocks);
    ActorScope scope(cluster.domain(), "main");
    lu.scatter(a, r);
    lu.factorize(/*pipelined=*/true);
    std::vector<int> pivots;
    la::Matrix factors = lu.gather(&pivots);
    const double residual = la::max_abs_diff(
        la::lu_reconstruct(factors, pivots), la::permute_rows(a, pivots));
    std::cout << "max |P*A - L*U| = " << residual << "  ("
              << (residual < 1e-8 * n ? "OK" : "TOO LARGE") << ")\n";
    if (residual >= 1e-8 * n) return 1;
  }

  // Performance: pipelined vs non-pipelined on the simulated cluster.
  const double flops_rate = 220e6;  // paper-era PIII gemm rate
  for (bool pipelined : {true, false}) {
    Cluster cluster(ClusterConfig::simulated(nodes));
    apps::LuApp lu(cluster, blocks);
    ActorScope scope(cluster.domain(), "main");
    lu.scatter(a, r);
    const double t0 = cluster.domain().now();
    lu.factorize(pipelined, flops_rate);
    const double dt = cluster.domain().now() - t0;
    std::cout << (pipelined ? "pipelined (stream ops)   " : "non-pipelined (merge+split)")
              << ": " << dt * 1e3 << " ms (virtual)\n";
  }
  return 0;
}
