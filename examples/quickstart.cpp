// Quickstart: the paper's tutorial application (section 3).
//
// Converts a string to uppercase in parallel by splitting it into its
// individual characters, routing them round-robin over a thread collection
// spread across the cluster, and merging them back in order.
//
// Usage: quickstart [--trace out.json] [nodes] [text...]
//
// With --trace (and a build configured with -DDPS_TRACE=ON, e.g. the
// `trace` CMake preset) the run is recorded by the flight recorder and
// written as Chrome tracing JSON: open chrome://tracing or
// https://ui.perfetto.dev and load the file to see the split, the
// round-robin leaf executions, and the collecting merge overlap in time.
#include <cctype>
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/application.hpp"
#include "core/controller.hpp"
#include "obs/trace.hpp"
#include "obs/trace_format.hpp"
#include "util/mapping.hpp"

using namespace dps;

namespace {

constexpr int kMaxString = 256;

// --- Data objects (paper: "Expressing data objects") -------------------------

class StringToken : public SimpleToken {
 public:
  char str[kMaxString];
  int len;
  StringToken(const char* s = "") : str{}, len(0) {
    len = static_cast<int>(std::strlen(s));
    if (len >= kMaxString) len = kMaxString - 1;
    std::memcpy(str, s, static_cast<size_t>(len));
  }
  DPS_IDENTIFY(StringToken);
};

class CharToken : public SimpleToken {
 public:
  char chr;  // a character
  int pos;   // its position within the string
  CharToken(char c = 0, int p = 0) : chr(c), pos(p) {}
  DPS_IDENTIFY(CharToken);
};

// --- Threads (paper: "Expressing threads and routing functions") -------------

class MainThread : public Thread {
  DPS_IDENTIFY_THREAD(MainThread);
};

class ComputeThread : public Thread {
  DPS_IDENTIFY_THREAD(ComputeThread);
};

DPS_ROUTE(MainRoute, MainThread, StringToken, 0);
DPS_ROUTE(MainCharRoute, MainThread, CharToken, 0);
DPS_ROUTE(RoundRobinRoute, ComputeThread, CharToken,
          currentToken->pos % threadCount());

// --- Operations (paper: "Expressing operations") ------------------------------

class SplitString
    : public SplitOperation<MainThread, TV1(StringToken), TV1(CharToken)> {
 public:
  void execute(StringToken* in) override {
    // Post one token for each character.
    for (int i = 0; i < in->len; ++i) postToken(new CharToken(in->str[i], i));
  }
  DPS_IDENTIFY_OPERATION(SplitString);
};

class ToUpperCase
    : public LeafOperation<ComputeThread, TV1(CharToken), TV1(CharToken)> {
 public:
  void execute(CharToken* in) override {
    // Post the uppercase equivalent of the incoming character.
    postToken(new CharToken(
        static_cast<char>(std::toupper(static_cast<unsigned char>(in->chr))),
        in->pos));
  }
  DPS_IDENTIFY_OPERATION(ToUpperCase);
};

class MergeString
    : public MergeOperation<MainThread, TV1(CharToken), TV1(StringToken)> {
 public:
  void execute(CharToken* first) override {
    StringToken* out = new StringToken();
    Ptr<Token> cur(first);
    do {
      // Store incoming characters at the appropriate position.
      auto c = token_cast<CharToken>(cur);
      out->str[c->pos] = c->chr;
      if (c->pos + 1 > out->len) out->len = c->pos + 1;
    } while ((cur = waitForNextToken()));  // wait for all chars
    postToken(out);
  }
  DPS_IDENTIFY_OPERATION(MergeString);
};

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  int arg = 1;
  if (arg + 1 < argc && std::strcmp(argv[arg], "--trace") == 0) {
    trace_path = argv[arg + 1];
    arg += 2;
    if (!dps::obs::kTraceCompiled) {
      std::cerr << "warning: built without DPS_TRACE; the trace will only "
                   "contain events from always-on sites (configure with the "
                   "`trace` preset for full instrumentation)\n";
    }
    dps::obs::Trace::instance().configure(
        {/*enabled=*/true, /*sample_every=*/1, /*buffer_capacity=*/1u << 16});
  }
  const int nodes = argc > arg ? std::max(1, std::atoi(argv[arg])) : 3;
  std::string text = "hello, dynamic parallel schedules!";
  if (argc > arg + 1) {
    text.clear();
    for (int i = arg + 1; i < argc; ++i) {
      if (i > arg + 1) text += ' ';
      text += argv[i];
    }
  }

  // A cluster of in-process nodes: tokens crossing node boundaries take the
  // full serialization path (the paper's several-kernels-per-host mode).
  Cluster cluster(ClusterConfig::inproc(nodes));
  Application app(cluster, "quickstart");

  // Thread collections are created and mapped dynamically at run time.
  auto main_threads = app.thread_collection<MainThread>("main");
  main_threads->map("node0");
  auto compute_threads = app.thread_collection<ComputeThread>("proc");
  std::vector<std::string> names;
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    names.push_back(cluster.node_name(static_cast<NodeId>(i)));
  }
  compute_threads->map(round_robin_mapping(names, nodes * 2));

  // The flow graph, built with overloaded operators (checked at compile
  // time: linking incompatible operations does not compile).
  FlowgraphBuilder builder =
      FlowgraphNode<SplitString, MainRoute>(main_threads) >>
      FlowgraphNode<ToUpperCase, RoundRobinRoute>(compute_threads) >>
      FlowgraphNode<MergeString, MainCharRoute>(main_threads);
  auto graph = app.build_graph(builder, "toupper");

  ActorScope scope(cluster.domain(), "main");
  auto result = token_cast<StringToken>(graph->call(new StringToken(text.c_str())));
  if (!result) {
    std::cerr << "no result!\n";
    return 1;
  }
  std::cout << "input : " << text << "\n";
  std::cout << "output: " << std::string(result->str, static_cast<size_t>(result->len))
            << "\n";
  std::cout << "(" << nodes << " nodes, " << nodes * 2
            << " compute threads, " << cluster.fabric().messages_sent()
            << " inter-node messages)\n";

  if (!trace_path.empty()) {
    auto events = dps::obs::Trace::instance().collect();
    dps::obs::Trace::instance().set_enabled(false);
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
    dps::obs::write_chrome_trace(out, events);
    std::cout << "trace : " << events.size() << " events -> " << trace_path
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }
  return 0;
}
