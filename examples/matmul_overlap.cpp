// Block matrix multiplication with communication/computation overlap
// (paper, section 4, Table 1).
//
// Multiplies two matrices through the split-compute-merge graph, verifies
// the product, and shows how the split factor s trades communication
// against computation on a simulated Gigabit-Ethernet cluster.
//
// Usage: matmul_overlap [n] [workers]
#include <cstdlib>
#include <iostream>

#include "apps/matmul.hpp"

using namespace dps;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 128;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 3;

  la::Matrix a(static_cast<size_t>(n), static_cast<size_t>(n));
  la::Matrix b(static_cast<size_t>(n), static_cast<size_t>(n));
  a.fill_random(1);
  b.fill_random(2);

  // Correctness with real arithmetic.
  {
    Cluster cluster(ClusterConfig::inproc(workers + 1));
    Application app(cluster, "matmul");
    auto graph = apps::build_matmul_graph(app, workers);
    ActorScope scope(cluster.domain(), "main");
    la::Matrix c = apps::run_matmul(*graph, a, b, 4);
    const double err = la::max_abs_diff(c, la::gemm(a, b));
    std::cout << n << "x" << n << " product on " << workers
              << " workers: max error " << err
              << (err < 1e-9 ? " (OK)\n" : " (WRONG)\n");
    if (err >= 1e-9) return 1;
  }

  // The overlap experiment: sweep the split factor on the simulated
  // cluster; finer splits shift the communication/computation balance.
  std::cout << "\nsplit factor sweep (simulated GbE, " << workers
            << " workers, 220 MFLOPS each):\n";
  for (int s : {2, 4, 8}) {
    if (n % s != 0) continue;
    Cluster cluster(ClusterConfig::simulated(workers + 1));
    Application app(cluster, "matmul-sim");
    auto graph = apps::build_matmul_graph(app, workers);
    ActorScope scope(cluster.domain(), "main");
    (void)apps::run_matmul(*graph, a, b, s, /*sim_flops_per_s=*/220e6);
    std::cout << "  s=" << s << ": " << cluster.domain().now() * 1e3
              << " ms virtual, "
              << cluster.fabric().bytes_sent() / 1024.0 << " kB moved\n";
  }
  return 0;
}
