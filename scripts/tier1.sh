#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the concurrency-heavy
# net/core subset rebuilt and re-run under ThreadSanitizer (the tsan test
# preset selects that subset; see CMakePresets.json), the full suite under
# AddressSanitizer+UBSan, the observability subset with the flight recorder
# compiled in (DPS_TRACE=ON), the DPS-specific lint pass, the dps_verify
# AST-level protocol/lock-order stage, and — when clang is installed — the
# Clang Thread Safety Analysis build (-Werror) and a clang-tidy sweep whose
# WarningsAsErrors subset is fatal. docs/STATIC_ANALYSIS.md describes each
# stage.
#
# Usage: scripts/tier1.sh            # everything
#        DPS_SKIP_TSAN=1 scripts/tier1.sh    # skip the TSan stage
#        DPS_SKIP_ASAN=1 scripts/tier1.sh    # skip the ASan+UBSan stage
#        DPS_SKIP_TRACE=1 scripts/tier1.sh   # skip the DPS_TRACE=ON stage
#        DPS_SKIP_ANALYZE=1 scripts/tier1.sh # skip -Wthread-safety (clang)
#        DPS_SKIP_TIDY=1 scripts/tier1.sh    # skip clang-tidy
#        DPS_SKIP_VERIFY=1 scripts/tier1.sh  # skip the dps_verify AST stage
#        DPS_VERIFY_REQUIRE_LIBCLANG=1       # SKIP (not run) verify-ast when
#            the clang python bindings are missing, instead of running the
#            analyzer's built-in fallback frontend
#        DPS_BENCH_SMOKE=1 scripts/tier1.sh  # also run a reduced pass of
#            every bench binary with --json, concatenate the records into
#            BENCH_pr10.json (includes micro_serialization's zero-realloc
#            assertion, micro_engine's flat-dispatch assertion, the
#            table2_services service-mesh sweep + overload self-checks,
#            fig15_lu's --check-scaleout gate — 8-node pipelined must beat
#            1-node — fig6_throughput's --check-shm gate — shm must beat
#            TCP loopback 2x at 1 KB on multi-core hosts — micro_steal's
#            work-stealing gate, ablation_flowctl's knee +
#            adaptive-window gates: adaptive within 5% of the best static
#            window at every message size, fig9_life's --check-leaf gate —
#            the LUT leaf kernel must beat naive 3x at 1024^2 on
#            multi-core hosts — and stream_video's streaming self-checks:
#            checksum-verified frames, base rate sustained within 20%, p99
#            end-to-end under the SLO), and flag fig15_lu / fig6_throughput
#            / fig9_life throughput regressions >10% against the committed
#            BENCH_pr9.json baseline
set -uo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

failures=0
pass() { echo "== PASS: $1"; }
fail() { echo "== FAIL: $1"; failures=$((failures + 1)); }
skip() { echo "== SKIP: $1 ($2)"; }

run_preset() {  # run_preset <name> — configure + build + ctest one preset
  cmake --preset "$1" &&
    cmake --build --preset "$1" -j "$JOBS" &&
    ctest --preset "$1" -j "$JOBS"
}

# --- default build + full suite (includes Lint.DpsLint and the
# --- negative-compile checks, which run at configure time) ------------------
if run_preset default; then
  pass "default build + full ctest suite"
else
  fail "default build + full ctest suite"
fi

# --- dps_lint standalone (also a ctest above; run it visibly here) ----------
if python3 scripts/dps_lint.py; then
  pass "dps_lint (token registration, raw primitives, tsan coverage, live allowlists)"
else
  fail "dps_lint"
fi

# --- verify-ast: protocol & lock-order analysis (scripts/dps_verify.py) -----
# Runs over the compile database from the `compile-commands` preset; the
# fixture corpus is asserted first so a broken analyzer can never
# green-light src/. With the clang python bindings installed the real
# clang AST is used; otherwise the built-in fallback frontend runs (set
# DPS_VERIFY_REQUIRE_LIBCLANG=1 to SKIP instead in that situation).
if [ "${DPS_SKIP_VERIFY:-0}" = "1" ]; then
  skip "verify-ast" "DPS_SKIP_VERIFY=1"
elif [ "${DPS_VERIFY_REQUIRE_LIBCLANG:-0}" = "1" ] &&
    ! python3 -c 'import clang.cindex' 2>/dev/null; then
  skip "verify-ast" "clang python bindings not installed (DPS_VERIFY_REQUIRE_LIBCLANG=1)"
else
  cmake --preset compile-commands >/dev/null
  if python3 scripts/dps_verify.py \
        --check-fixtures tests/static_checks/verify_fixtures &&
      python3 scripts/dps_verify.py \
        --compile-commands build-cc/compile_commands.json \
        --dot docs/lock_order.dot; then
    pass "verify-ast (fixture corpus + lock-order/protocol/discard/trace-gate over src/)"
  else
    fail "verify-ast"
  fi
fi

# --- shared-memory fabric (skipped where POSIX shm is unusable: no
# --- /dev/shm in the container, or an explicit DPS_SHM=0 opt-out) -----------
if [ "${DPS_SHM:-1}" = "0" ]; then
  skip "shm fabric" "DPS_SHM=0"
elif [ ! -d /dev/shm ]; then
  skip "shm fabric" "/dev/shm not mounted"
elif build/tests/dps_tests --gtest_filter='ShmFabric.*' >/dev/null 2>&1; then
  pass "shm fabric (ShmFabric.* suite)"
else
  fail "shm fabric (ShmFabric.* suite)"
fi

# --- ThreadSanitizer over the concurrency subset ----------------------------
if [ "${DPS_SKIP_TSAN:-0}" = "1" ]; then
  skip "tsan" "DPS_SKIP_TSAN=1"
elif run_preset tsan; then
  pass "tsan (concurrency subset)"
else
  fail "tsan (concurrency subset)"
fi

# --- AddressSanitizer + UBSan over the full suite ---------------------------
if [ "${DPS_SKIP_ASAN:-0}" = "1" ]; then
  skip "asan-ubsan" "DPS_SKIP_ASAN=1"
elif run_preset asan-ubsan; then
  pass "asan-ubsan (full suite)"
else
  fail "asan-ubsan (full suite)"
fi

# --- flight recorder compiled in -------------------------------------------
if [ "${DPS_SKIP_TRACE:-0}" = "1" ]; then
  skip "trace" "DPS_SKIP_TRACE=1"
elif run_preset trace; then
  pass "trace (DPS_TRACE=ON subset)"
else
  fail "trace (DPS_TRACE=ON subset)"
fi

# --- Clang Thread Safety Analysis (build-only, -Werror=thread-safety) -------
if [ "${DPS_SKIP_ANALYZE:-0}" = "1" ]; then
  skip "analyze" "DPS_SKIP_ANALYZE=1"
elif ! command -v clang++ >/dev/null 2>&1; then
  skip "analyze" "clang++ not installed; annotations are no-ops under gcc"
elif cmake --preset analyze && cmake --build --preset analyze -j "$JOBS"; then
  pass "analyze (-Wthread-safety clean)"
else
  fail "analyze (-Wthread-safety)"
fi

# --- clang-tidy (the WarningsAsErrors subset in .clang-tidy is fatal:
# --- use-after-move / dangling-handle / mt-unsafe; the rest is advisory) ----
if [ "${DPS_SKIP_TIDY:-0}" = "1" ]; then
  skip "clang-tidy" "DPS_SKIP_TIDY=1"
elif ! command -v clang-tidy >/dev/null 2>&1; then
  skip "clang-tidy" "clang-tidy not installed"
else
  # Needs a compile database; CMAKE_EXPORT_COMPILE_COMMANDS is on globally,
  # so the default preset build dir always carries one.
  cmake --preset default >/dev/null
  mapfile -t tidy_sources < <(find src -name '*.cpp' | sort)
  if clang-tidy -p build "${tidy_sources[@]}"; then
    pass "clang-tidy (no fatal findings; remaining output is advisory)"
  else
    fail "clang-tidy (WarningsAsErrors subset: bugprone-use-after-move, bugprone-dangling-handle, concurrency-mt-unsafe)"
  fi
fi

echo
if [ "$failures" -ne 0 ]; then
  echo "tier1: $failures stage(s) FAILED"
  exit 1
fi
echo "tier1: all stages passed (or were skipped explicitly)"

if [ "${DPS_BENCH_SMOKE:-0}" != "1" ]; then
  exit 0
fi

# Bench smoke: tiny configurations of every harness, machine-readable
# results concatenated into BENCH_pr10.json for cross-commit diffing.
# micro_serialization exits nonzero if an envelope encode reallocates,
# micro_engine exits nonzero if merge matching scales with queue depth, the
# table2_services sweep/overload pass exits nonzero if the service mesh
# breaks its contract (iteration slowdown >= 2x at 100 clients, a shed call
# reporting anything but kBackpressure, or a tenant exceeding its in-flight
# budget), fig15_lu --check-scaleout exits nonzero unless the 8-node
# pipelined run actually beats 1 node (multicast scale-out),
# fig6_throughput --check-shm exits nonzero unless the shm ring beats DPS
# over TCP loopback 2x at 1 KB tokens (skipped on single-core hosts, where
# a pipelined ring cannot overlap transport with compute), micro_steal
# exits nonzero unless enabling work stealing actually steals and speeds up
# an imbalanced pipeline (skipped below 4 cores), ablation_flowctl
# exits nonzero unless a flow-window knee exists and the adaptive
# controller lands within 5% of the best static window at every message
# size, fig9_life --check-leaf exits nonzero unless the LUT leaf kernel
# beats naive 3x at 1024^2 through the backend seam (skipped on
# single-core hosts) or the two kernels disagree bit-wise, and
# stream_video exits nonzero unless every frame's chained checksum
# verifies, the base rate is sustained within 20%, and base-rate p99
# end-to-end latency meets the SLO — all of those invariants are enforced
# here too.
set -e
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
b=build/bench
"$b/fig6_throughput"    4    --check-shm --json "$smoke_dir/fig6.json"
"$b/micro_steal"             --json "$smoke_dir/micro_steal.json"
"$b/table1_overlap"     256  --json "$smoke_dir/table1.json"
"$b/fig9_life"          1    --check-leaf --json "$smoke_dir/fig9.json"
"$b/fig15_lu"           512 110 32 --check-scaleout \
  --json "$smoke_dir/fig15.json"
"$b/table2_services"    1024 1 --json "$smoke_dir/table2.json"
"$b/table2_services"    512 1 --sweep 1,10,100 --overload 100 2 \
  --json "$smoke_dir/table2_mesh.json"
"$b/ablation_flowctl"   256  --json "$smoke_dir/ablation.json"
"$b/stream_video"       120  --json "$smoke_dir/stream_video.json"
"$b/micro_engine"        --json "$smoke_dir/micro_engine.json" \
  --benchmark_filter='BM_CallLatencySingleNode|BM_TokenThroughputSerialized/256|BM_DispatchMergeMatch'
"$b/micro_serialization" --json "$smoke_dir/micro_serial.json" \
  --benchmark_filter='BM_SimpleTokenRoundTrip|BM_ComplexTokenRoundTrip/4096'
cat "$smoke_dir"/*.json > BENCH_pr10.json
echo "bench smoke: $(wc -l < BENCH_pr10.json) records -> BENCH_pr10.json"
# Guard the hot-path wins: any fig15_lu / fig6_throughput / fig9_life
# config more than 10% below the PR-9 baseline fails the smoke stage
# (fig9's wall-clock leaf=* configs are advisory; the in-binary
# --check-leaf gate owns that win).
python3 scripts/bench_compare.py BENCH_pr9.json BENCH_pr10.json
