#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the concurrency-heavy
# net/core subset rebuilt and re-run under ThreadSanitizer (the tsan test
# preset selects that subset; see CMakePresets.json), then the observability
# subset rebuilt with the flight recorder compiled in (DPS_TRACE=ON) so the
# trace-driven assertions — pipeline overlap, retransmit accounting — run
# instead of skipping.
#
# Usage: scripts/tier1.sh            # everything
#        DPS_SKIP_TSAN=1 scripts/tier1.sh    # skip the TSan stage
#        DPS_SKIP_TRACE=1 scripts/tier1.sh   # skip the DPS_TRACE=ON stage
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

cmake --preset default
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

if [ "${DPS_SKIP_TSAN:-0}" != "1" ]; then
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS"
  ctest --preset tsan -j "$JOBS"
fi

if [ "${DPS_SKIP_TRACE:-0}" != "1" ]; then
  cmake --preset trace
  cmake --build --preset trace -j "$JOBS"
  ctest --preset trace -j "$JOBS"
fi
