#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the concurrency-heavy
# net/core subset rebuilt and re-run under ThreadSanitizer (the tsan test
# preset selects that subset; see CMakePresets.json), then the observability
# subset rebuilt with the flight recorder compiled in (DPS_TRACE=ON) so the
# trace-driven assertions — pipeline overlap, retransmit accounting — run
# instead of skipping.
#
# Usage: scripts/tier1.sh            # everything
#        DPS_SKIP_TSAN=1 scripts/tier1.sh    # skip the TSan stage
#        DPS_SKIP_TRACE=1 scripts/tier1.sh   # skip the DPS_TRACE=ON stage
#        DPS_BENCH_SMOKE=1 scripts/tier1.sh  # also run a reduced pass of
#            every bench binary with --json and concatenate the records
#            into BENCH_pr3.json (includes micro_serialization's
#            zero-realloc assertion)
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

cmake --preset default
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

if [ "${DPS_SKIP_TSAN:-0}" != "1" ]; then
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS"
  ctest --preset tsan -j "$JOBS"
fi

if [ "${DPS_SKIP_TRACE:-0}" != "1" ]; then
  cmake --preset trace
  cmake --build --preset trace -j "$JOBS"
  ctest --preset trace -j "$JOBS"
fi

if [ "${DPS_BENCH_SMOKE:-0}" != "1" ]; then
  exit 0
fi

# Bench smoke: tiny configurations of every harness, machine-readable
# results concatenated into BENCH_pr3.json for cross-commit diffing.
# micro_serialization exits nonzero if an envelope encode reallocates, so
# the zero-realloc invariant is enforced here too.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
b=build/bench
"$b/fig6_throughput"    4    --json "$smoke_dir/fig6.json"
"$b/table1_overlap"     256  --json "$smoke_dir/table1.json"
"$b/fig9_life"          1    --json "$smoke_dir/fig9.json"
"$b/fig15_lu"           512  --json "$smoke_dir/fig15.json"
"$b/table2_services"    1024 1 --json "$smoke_dir/table2.json"
"$b/ablation_flowctl"   256  --json "$smoke_dir/ablation.json"
"$b/micro_engine"        --json "$smoke_dir/micro_engine.json" \
  --benchmark_filter='BM_CallLatencySingleNode|BM_TokenThroughputSerialized/256'
"$b/micro_serialization" --json "$smoke_dir/micro_serial.json" \
  --benchmark_filter='BM_SimpleTokenRoundTrip|BM_ComplexTokenRoundTrip/4096'
cat "$smoke_dir"/*.json > BENCH_pr3.json
echo "bench smoke: $(wc -l < BENCH_pr3.json) records -> BENCH_pr3.json"
