#!/usr/bin/env python3
"""dps-verify: AST-level protocol & lock-order analyzer (ctest `Lint.DpsVerify`).

Where `scripts/dps_lint.py` pattern-matches lines, this tool understands
statements: it parses every translation unit named by compile_commands.json
into a small function/statement IR and runs four semantic checks over it,
each targeting a bug class this repo has actually shipped:

  1. lock-order      build the cross-TU lock acquisition graph over
                     dps::Mutex / dps::MutexLock (seeded by DPS_REQUIRES
                     annotations and propagated through the call graph),
                     report cycles as potential deadlocks, emit the graph
                     as DOT (docs/lock_order.dot).
  2. protocol        path-sensitive acquire/release pairing of the runtime
                     protocols: create_flow_account -> finish_flow_account
                     (the PR-6 "window that can never refill" leak and the
                     PR-7 raise-out-of-flow_acquire leak), BufferPool
                     acquire -> release/ownership transfer, and
                     admit_call -> retire_call/retire_admission. Every
                     control-flow path out of a function — early returns,
                     `return Error(...)`, and exception edges out of
                     may-raise calls — must release or hand off the
                     resource.
  3. discard         calls whose Errc/Error-bearing return value is
                     silently dropped (statement-expression calls outside
                     the allowlist; `(void)call()` is the sanctioned
                     explicit discard).
  4. trace-gate      preprocessor-record-accurate verification that every
                     flight-recorder touch outside src/obs/ is compiled
                     out when DPS_TRACE is undefined. Unlike the retired
                     dps_lint regex rule this evaluates the real
                     conditional structure (#if defined(DPS_TRACE) && ...,
                     #elif, #else, nesting) with three-valued logic, so a
                     touch that is only *possibly* live in a trace-off
                     build is still a finding.

Frontends. With the clang python bindings installed (`import clang.cindex`)
the IR is lowered from the real clang AST using the exact flags recorded in
compile_commands.json. Without them the built-in fallback frontend — a
tokenizer plus a structured-statement parser tuned to this codebase's
idiom — produces the same IR, so the checks run (and the fixture corpus is
asserted) on GCC-only hosts too. `--frontend` forces one or the other;
`--frontend libclang` exits with status 3 ("no usable frontend") when the
bindings are missing, which scripts/tier1.sh maps to SKIP.

Findings are suppressed only through ALLOWLIST below, keyed by stable
(check, file, symbol) ids — never by line number — and every entry carries
a written reason. docs/STATIC_ANALYSIS.md documents the policy.

Exit status: 0 clean, 1 findings, 2 usage/internal error, 3 no frontend.
"""

import argparse
import json
import os
import re
import sys

# --------------------------------------------------------------------------
# Allowlists. Key: "check:file:symbol" (file repo-relative, symbol = the
# qualified function for protocol/discard findings, the cycle's sorted node
# list for lock-order, the touched symbol for trace-gate). Value: reason.
# An entry that stops matching any finding is itself a finding (dead
# allowlist entries rot; same policy as dps_lint's TSAN_OPT_OUT).
# --------------------------------------------------------------------------

ALLOWLIST = {
    # (empty — the first full run over src/ came back clean after the
    #  convictions below were fixed in source instead of silenced)
}

# Lock cycles that are understood and accepted, keyed by the sorted "A<->B"
# node pair list. Every entry needs a written reason; acceptance criteria
# require each one to be documented in docs/STATIC_ANALYSIS.md too.
ACCEPTED_LOCK_CYCLES = {
}

# Functions whose Errc/Error return may be dropped without `(void)`.
DISCARD_ALLOWLIST = {
    # (empty)
}

# --- protocol definitions ---------------------------------------------------

# The engine protocols checked by the `protocol` pass. `acquire`/`release`
# map callee name -> index of the argument that identifies the resource
# (None = the call's assigned variable is the resource, value-style).
PROTOCOLS = [
    {
        "name": "flow-account",
        "acquire": {"create_flow_account": 0},
        "release": {"finish_flow_account": 0, "poison_flow_accounts": None},
        "desc": "split flow-control account (docs/SERVICE_MESH.md): every "
                "path out of the creating function must finish_flow_account "
                "or the window can never refill",
    },
    {
        "name": "buffer-pool",
        "acquire": {"acquire": None},      # value-style: tracks the variable
        "acquire_recv": "BufferPool",      # only when the receiver resolves
        "release": {"release": 0},
        "transfer_releases": True,         # passing the buffer on = handoff
        "desc": "BufferPool buffer: release it or hand it off (encode/send "
                "own it after transfer); dropping it leaks pool capacity",
    },
    {
        "name": "admission",
        "acquire": {"admit_call": 0},
        "release": {"retire_call": 0, "retire_admission": 0,
                    "bind_admission": 1},  # tenant is arg 1; binding hands
                                           # the slot to the CallState
        "desc": "tenant admission slot (docs/SERVICE_MESH.md): exactly one "
                "retirement per admitted call",
    },
]

# Calls that can raise dps::Error mid-protocol (the PR-7 class: a poisoned
# flow_acquire raises while the caller still owes a release). A call to one
# of these while a tracked resource is live must sit inside a try block
# whose catch-all releases (directly, or via a one-call cleanup helper).
MAY_RAISE = {"flow_acquire", "send_now", "route_and_send", "raise",
             "acquire_collective_credit"}

# Trace-API touches that must vanish from trace-off builds (check 4).
TRACE_TOUCH_TOKENS = {"Trace", "tracing_active", "trace_clock_ns"}
# `Trace` alone is too broad; require the qualified forms below.
TRACE_TOUCH_RE = re.compile(
    r"\bTrace::instance\b|\bobs::tracing_active\b|\bobs::trace_clock_ns\b")

CPP_EXTS = (".cpp", ".cc", ".cxx")
HDR_EXTS = (".hpp", ".h", ".hh")

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "alignof", "decltype", "static_assert", "new", "delete",
    "throw", "case", "default", "assert",
}

TYPE_INTRO = {
    "void", "bool", "char", "int", "long", "short", "unsigned", "signed",
    "float", "double", "auto", "size_t", "uint8_t", "uint16_t", "uint32_t",
    "uint64_t", "int8_t", "int16_t", "int32_t", "int64_t",
}


def rel(root, path):
    return os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")


# ==========================================================================
# Lexing (fallback frontend)
# ==========================================================================

TOKEN_RE = re.compile(r"""
      (?P<id>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<num>\.?[0-9](?:[0-9a-fA-F'.xXbBpP+-]*[0-9a-fA-FlLuUzZ]|[0-9])?)
    | (?P<str>"(?:\\.|[^"\\])*"|'(?:\\.|[^'\\])*')
    | (?P<punct>->\*|->|::|\+\+|--|<<=|>>=|<=>|<<|>>|<=|>=|==|!=|&&|\|\|
                |\+=|-=|\*=|/=|%=|&=|\|=|\^=|\.\.\.|[{}()\[\];,.<>:=+\-*/%&|^!~?])
""", re.VERBOSE)


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.text}@{self.line}"


def strip_comments(text):
    """Blank // and /* */ bodies and string/char contents, keeping lines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 2
                elif text[j] == "\n":
                    break  # unterminated on this line; bail out
                else:
                    j += 1
            # Keep the quotes, blank the body (so tokens never match inside).
            body = text[i + 1:j]
            out.append(quote + "".join(
                ch if ch == "\n" else " " for ch in body))
            if j < n and text[j] == quote:
                out.append(quote)
                j += 1
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lex(text):
    toks = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        kind = m.lastgroup
        toks.append(Tok(kind, m.group(), line))
    return toks


# ==========================================================================
# Preprocessor view (fallback frontend) — the "record" of check 4
# ==========================================================================

PP_DIRECTIVE = re.compile(r"^\s*#\s*(\w+)\b(.*)$")

T, F, U = "T", "F", "U"  # three-valued condition results


def eval_pp_cond(expr, defines):
    """Three-valued evaluation of an #if condition.

    `defines` maps macro name -> bool (defined / explicitly undefined);
    unknown macros evaluate to U. Handles defined(X), !, &&, ||, parens and
    integer literals; anything fancier degrades to U, never to a guess.
    """
    expr = expr.strip()
    expr = re.sub(r"/\*.*?\*/", " ", expr)

    tokens = re.findall(r"defined\s*\(\s*\w+\s*\)|defined\s+\w+|\w+|&&|\|\||!|\(|\)", expr)

    def to_val(tok):
        m = re.match(r"defined\s*\(?\s*(\w+)\s*\)?", tok)
        if m:
            name = m.group(1)
            if name in defines:
                return T if defines[name] else F
            return U
        if re.fullmatch(r"\d+", tok):
            return T if int(tok) else F
        if re.fullmatch(r"\w+", tok):
            # Bare macro in arithmetic context: defined-and-nonzero.
            if tok in defines:
                return T if defines[tok] else F
            return U
        return tok

    vals = [to_val(t) for t in tokens]

    # Tiny recursive-descent over ! && || ( ).
    pos = [0]

    def peek():
        return vals[pos[0]] if pos[0] < len(vals) else None

    def eat():
        v = peek()
        pos[0] += 1
        return v

    def parse_primary():
        v = peek()
        if v == "(":
            eat()
            r = parse_or()
            if peek() == ")":
                eat()
            return r
        if v == "!":
            eat()
            r = parse_primary()
            return {T: F, F: T, U: U}[r]
        if v in (T, F, U):
            eat()
            return v
        # Unparseable operator (e.g. comparison): give up on this operand.
        eat()
        return U

    def parse_and():
        r = parse_primary()
        while peek() == "&&":
            eat()
            rhs = parse_primary()
            if r == F or rhs == F:
                r = F
            elif r == T and rhs == T:
                r = T
            else:
                r = U
        return r

    def parse_or():
        r = parse_and()
        while peek() == "||":
            eat()
            rhs = parse_and()
            if r == T or rhs == T:
                r = T
            elif r == F and rhs == F:
                r = F
            else:
                r = U
        return r

    if not vals:
        return U
    return parse_or()


class PpView:
    """One pass over a file's preprocessor structure.

    Produces (a) `parse_text`: the single-branch view used by the fallback
    parser (conditions with DPS_TRACE undefined; unknown macros take their
    first branch so braces stay balanced), and (b) `possibly_active`: per
    line, whether it can survive preprocessing in a trace-off build — the
    record the trace-gate check reads.
    """

    def __init__(self, text, defines=None):
        self.defines = dict(defines or {})
        self.defines.setdefault("DPS_TRACE", False)
        lines = text.split("\n")
        kept = []
        self.possibly_active = []
        # Frames: [taken_now, seen_true, possible_now, seen_possible]
        stack = []
        for raw in lines:
            m = PP_DIRECTIVE.match(raw)
            parent_taken = all(f[0] for f in stack)
            parent_possible = all(f[2] != F for f in stack)
            if m:
                d, rest = m.group(1), m.group(2)
                if d in ("if", "ifdef", "ifndef"):
                    if d == "ifdef":
                        v = eval_pp_cond(f"defined({rest.strip()})",
                                        self.defines)
                    elif d == "ifndef":
                        v = eval_pp_cond(f"!defined({rest.strip()})",
                                        self.defines)
                    else:
                        v = eval_pp_cond(rest, self.defines)
                    taken = parent_taken and v != F
                    stack.append([taken, taken, v, v])
                elif d == "elif":
                    if stack:
                        f = stack[-1]
                        v = eval_pp_cond(rest, self.defines)
                        f[0] = parent_taken_of(stack) and not f[1] and v != F
                        f[1] = f[1] or f[0]
                        # possible: this branch possible if no earlier branch
                        # was definitely taken and v may hold
                        f[2] = F if f[3] == T else v
                        if f[2] == T:
                            f[3] = T
                        elif f[2] == U and f[3] == F:
                            f[3] = U
                elif d == "else":
                    if stack:
                        f = stack[-1]
                        f[0] = parent_taken_of(stack) and not f[1]
                        f[1] = True
                        f[2] = {T: F, F: T, U: U}[f[3]]
                elif d == "endif":
                    if stack:
                        stack.pop()
                elif d == "define" and parent_taken:
                    name = rest.strip().split("(")[0].split()[0] \
                        if rest.strip() else ""
                    if name:
                        self.defines.setdefault(name, True)
                # Directive lines never carry code.
                kept.append("")
                self.possibly_active.append(False)
                continue
            taken = all(f[0] for f in stack)
            possible = all(f[2] != F for f in stack)
            kept.append(raw if taken else "")
            self.possibly_active.append(possible)
        self.parse_text = "\n".join(kept)


def parent_taken_of(stack):
    return all(f[0] for f in stack[:-1])


# ==========================================================================
# IR
# ==========================================================================

class Stmt:
    """One structured statement.

    kind: block | if | loop | switch | try | return | throw | expr | jump
      block:  stmts
      if:     then_s, else_s (Stmt or None), cond_text
      loop:   body
      switch: cases (list of blocks), has_default
      try:    body, handlers [(is_catch_all, block)]
      return: text, line
      throw:  line            (covers `throw` and dps::raise)
      expr:   calls, decls, text, line
      jump:   'break' | 'continue'
    """

    def __init__(self, kind, line=0, **kw):
        self.kind = kind
        self.line = line
        self.__dict__.update(kw)


class CallSite:
    __slots__ = ("name", "recv", "args", "line", "stmt_is_bare")

    def __init__(self, name, recv, args, line, stmt_is_bare=False):
        self.name = name
        self.recv = recv          # receiver expr text ('' for free calls)
        self.args = args          # list of raw arg strings
        self.line = line
        self.stmt_is_bare = stmt_is_bare  # whole statement == this call


class VarDecl:
    __slots__ = ("name", "type", "init", "line")

    def __init__(self, name, type_, init, line):
        self.name = name
        self.type = type_
        self.init = init
        self.line = line


class Function:
    def __init__(self, qualname, cls, name, path, line):
        self.qualname = qualname
        self.cls = cls              # enclosing class name or ""
        self.name = name
        self.path = path            # repo-relative
        self.line = line
        self.params = {}            # name -> type text
        self.requires = []          # DPS_REQUIRES argument exprs
        self.rettype = ""
        self.body = None            # Stmt('block')

    def all_stmts(self):
        out = []

        def walk(s):
            if s is None:
                return
            out.append(s)
            if s.kind == "block":
                for c in s.stmts:
                    walk(c)
            elif s.kind == "if":
                walk(s.then_s)
                walk(s.else_s)
            elif s.kind == "loop":
                walk(s.body)
            elif s.kind == "switch":
                for c in s.cases:
                    walk(c)
            elif s.kind == "try":
                walk(s.body)
                for _, h in s.handlers:
                    walk(h)
        walk(self.body)
        return out


class TU:
    def __init__(self, path):
        self.path = path
        self.functions = []
        self.classes = {}           # class -> {member: type}


# ==========================================================================
# Fallback frontend: parsing
# ==========================================================================

def parse_file(root, path, defines=None):
    with open(os.path.join(root, path), encoding="utf-8",
              errors="replace") as f:
        raw = f.read()
    stripped = strip_comments(raw)
    view = PpView(stripped, defines)
    toks = lex(view.parse_text)
    tu = TU(path)
    _scan_top(toks, 0, len(toks), tu, [], path)
    return tu, view


def _match_paren(toks, i, open_c="(", close_c=")"):
    """toks[i] must be open_c; returns index just past the match."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_c:
            depth += 1
        elif t == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _rfind_sig(toks, brace_i, lo):
    """Looking back from a '{' at brace_i, recognize a function signature.

    Returns (name, qual_cls, params_lo, params_hi, sig_lo) or None.
    Skips trailing const/noexcept/override/final/&&/&, annotation macros
    (DPS_*), trailing-return types, and constructor initializer lists.
    """
    j = brace_i - 1

    def skip_balanced_back(j, close_c, open_c):
        depth = 0
        while j >= lo:
            t = toks[j].text
            if t == close_c:
                depth += 1
            elif t == open_c:
                depth -= 1
                if depth == 0:
                    return j - 1
            j -= 1
        return lo - 1

    # Skip the constructor initializer list:   ') : a_(x), b_{y} {'
    # and trailing qualifiers / annotations / trailing return.
    guard = 0
    while j >= lo and guard < 500:
        guard += 1
        t = toks[j].text
        if t in ("const", "noexcept", "override", "final", "mutable",
                 "&", "&&", "try"):
            j -= 1
        elif t == ")":
            # Could be params, an annotation macro, or init-list member.
            k = skip_balanced_back(j, ")", "(")
            if k >= lo and toks[k].kind == "id":
                nm = toks[k].text
                if nm.startswith("DPS_") or nm == "noexcept":
                    j = k - 1
                    continue
                # ident( ... )  — params of the function, or an init-list
                # member ctor. Decide: if the token before ident is ':' or
                # ',', it's an init-list entry — keep scanning back.
                if k - 1 >= lo and toks[k - 1].text in (":", ","):
                    j = k - 2
                    # skip back through further init-list entries
                    continue
                # This is the signature's parameter list.
                return _sig_from(toks, k, j, lo)
            return None
        elif t == "}":
            # brace-init in an init-list member:  b_{y}
            j = skip_balanced_back(j, "}", "{")
            if j >= lo and toks[j].kind == "id" and j - 1 >= lo and \
                    toks[j - 1].text in (":", ","):
                j -= 2
                continue
            return None
        elif t == ">":
            # trailing return type like '-> std::vector<int>' — scan to '->'
            while j >= lo and toks[j].text != "->":
                j -= 1
            j -= 1
        elif toks[j].kind in ("id", "num") or t in ("::", "<", ">", "*",
                                                    ",", ".", "[", "]"):
            # tokens of a trailing return type; keep looking for '->'
            k = j
            found = False
            while k >= lo and k > j - 30:
                if toks[k].text == "->":
                    j = k - 1
                    found = True
                    break
                k -= 1
            if not found:
                return None
        else:
            return None
    return None


def _sig_from(toks, name_i, params_close, lo):
    """name_i indexes the function-name token just before its '(' ... ')'."""
    name = toks[name_i].text
    if name in CONTROL_KEYWORDS or not re.match(r"[A-Za-z_~]", name):
        return None
    # Qualifier:  Class::name  (possibly nested A::B::name)
    cls = ""
    j = name_i - 1
    while j - 1 >= lo and toks[j].text == "::" and toks[j - 1].kind == "id":
        cls = toks[j - 1].text  # innermost qualifier wins
        j -= 2
    # Return type heuristic: the token run before the (qualified) name.
    ret_toks = []
    k = j
    while k >= lo and k > j - 8:
        t = toks[k]
        if t.kind == "id" or t.text in ("::", "<", ">", "*", "&", "&&"):
            ret_toks.append(t.text)
            k -= 1
        else:
            break
    rettype = "".join(reversed(ret_toks))
    params_open = None
    depth = 0
    for p in range(params_close, lo - 1, -1):
        if toks[p].text == ")":
            depth += 1
        elif toks[p].text == "(":
            depth -= 1
            if depth == 0:
                params_open = p
                break
    if params_open is None:
        return None
    return (name, cls, params_open, params_close, k + 1, rettype)


def _scan_top(toks, i, end, tu, ctx, path):
    """Scan a namespace/class/file scope for classes and function bodies."""
    n = end
    while i < n:
        t = toks[i]
        if t.text in ("namespace",):
            # namespace [name] {  — recurse transparently.
            j = i + 1
            while j < n and toks[j].text != "{":
                if toks[j].text == ";":
                    break
                j += 1
            if j < n and toks[j].text == "{":
                close = _match_brace_span(toks, j)
                _scan_top(toks, j + 1, close - 1, tu, ctx, path)
                i = close
                continue
            i = j + 1
            continue
        if t.text in ("class", "struct") and i + 1 < n and \
                toks[i + 1].kind == "id":
            cname = toks[i + 1].text
            j = i + 2
            while j < n and toks[j].text not in ("{", ";"):
                j += 1
            if j < n and toks[j].text == "{":
                close = _match_brace_span(toks, j)
                _scan_class(toks, j + 1, close - 1, tu, ctx + [cname], path)
                i = close
                continue
            i = j + 1
            continue
        if t.text == "{":
            sig = _rfind_sig(toks, i, 0)
            if sig:
                i = _consume_function(toks, i, tu, ctx, path, sig)
                continue
            i = _match_brace_span(toks, i)
            continue
        i += 1


def _scan_class(toks, i, end, tu, ctx, path):
    cname = ctx[-1]
    members = tu.classes.setdefault(cname, {})
    n = end
    stmt_start = i
    while i < n:
        t = toks[i]
        if t.text in ("class", "struct") and i + 1 < n and \
                toks[i + 1].kind == "id" and _is_nested_class(toks, i, n):
            cname2 = toks[i + 1].text
            j = i + 2
            while j < n and toks[j].text not in ("{", ";"):
                j += 1
            if j < n and toks[j].text == "{":
                close = _match_brace_span(toks, j)
                _scan_class(toks, j + 1, close - 1, tu, ctx + [cname2], path)
                i = close
                stmt_start = i
                continue
            i = j + 1
            stmt_start = i
            continue
        if t.text == "{":
            sig = _rfind_sig(toks, i, stmt_start)
            if sig:
                i = _consume_function(toks, i, tu, ctx, path, sig,
                                      decl_lo=stmt_start)
                stmt_start = i
                continue
            i = _match_brace_span(toks, i)
            # `};` of an inline aggregate member or lambda-ish init
            continue
        if t.text == ";":
            _member_decl(toks, stmt_start, i, members, tu, ctx, path)
            i += 1
            stmt_start = i
            continue
        if t.text in ("public", "private", "protected") and i + 1 < n and \
                toks[i + 1].text == ":":
            i += 2
            stmt_start = i
            continue
        i += 1


def _is_nested_class(toks, i, n):
    # Heuristic: 'class X {' or 'class X final {' or 'class X : base {'
    j = i + 2
    while j < n and toks[j].text not in ("{", ";", "("):
        j += 1
    return j < n and toks[j].text == "{"


def _member_decl(toks, lo, hi, members, tu, ctx, path):
    """Record `Type name;` members and DPS_REQUIRES on method decls."""
    span = toks[lo:hi]
    if not span:
        return
    # DPS_REQUIRES on a declaration:  RetT name(args) ... DPS_REQUIRES(mu);
    for k, t in enumerate(span):
        if t.text in ("DPS_REQUIRES", "DPS_ACQUIRE", "DPS_RELEASE") and \
                k + 1 < len(span) and span[k + 1].text == "(":
            close = _match_paren(span, k + 1)
            args = "".join(x.text for x in span[k + 2:close - 1])
            # method name = id just before the first '(' of the span
            for m in range(len(span)):
                if span[m].text == "(" and m > 0 and span[m - 1].kind == "id":
                    mname = span[m - 1].text
                    key = "::".join(ctx + [mname])
                    tu.classes.setdefault("__requires__", {}).setdefault(
                        key, []).append((t.text, args))
                    break
            break
    # Simple member:  [mutable] [static] Type [*&] name [= init] ;
    #                 [mutable] Type name DPS_GUARDED_BY(mu);
    idx = 0
    texts = [t.text for t in span]
    while idx < len(texts) and texts[idx] in ("mutable", "static", "inline",
                                              "constexpr", "const"):
        idx += 1
    # Collect the type run, then the declarator name.
    ty = []
    j = idx
    depth = 0
    while j < len(span):
        t = span[j]
        if t.text == "<":
            depth += 1
        elif t.text == ">":
            depth -= 1
        elif depth == 0 and t.kind == "id" and j + 1 < len(span) and \
                span[j + 1].kind != "id" and ty and \
                span[j + 1].text not in ("::", "<"):
            # `t` is the declarator name
            name = t.text
            members[name] = "".join(ty).strip()
            return
        if t.text in ("(", "="):
            break
        ty.append(t.text)
        j += 1


def _match_brace_span(toks, i):
    return _match_paren(toks, i, "{", "}")


def _consume_function(toks, brace_i, tu, ctx, path, sig, decl_lo=0):
    name, cls, p_open, p_close, sig_lo, rettype = sig
    close = _match_brace_span(toks, brace_i)
    qual_cls = cls or (ctx[-1] if ctx else "")
    fn = Function("::".join(([qual_cls] if qual_cls else []) + [name]),
                  qual_cls, name, path, toks[brace_i].line)
    fn.rettype = rettype
    # Params:  Type name, Type name = default, ...
    fn.params = _parse_params(toks, p_open + 1, p_close)
    # Annotations between ')' and '{' — DPS_REQUIRES(mu) etc.
    j = p_close + 1
    while j < brace_i:
        if toks[j].kind == "id" and toks[j].text.startswith("DPS_") and \
                j + 1 < brace_i and toks[j + 1].text == "(":
            c = _match_paren(toks, j + 1)
            args = "".join(t.text for t in toks[j + 2:c - 1])
            if toks[j].text in ("DPS_REQUIRES",):
                fn.requires.extend(a.strip() for a in args.split(",") if a.strip())
            j = c
        else:
            j += 1
    # Header-declared REQUIRES (for out-of-line definitions).
    req = tu.classes.get("__requires__", {})
    for kind, args in req.get(fn.qualname, []):
        if kind == "DPS_REQUIRES":
            for a in args.split(","):
                if a.strip() and a.strip() not in fn.requires:
                    fn.requires.append(a.strip())
    fn.body, _ = _parse_block(toks, brace_i)
    tu.functions.append(fn)
    return close


def _parse_params(toks, lo, hi):
    params = {}
    depth = 0
    start = lo
    spans = []
    for j in range(lo, hi):
        t = toks[j].text
        if t in ("(", "<", "[", "{"):
            depth += 1
        elif t in (")", ">", "]", "}"):
            depth -= 1
        elif t == "," and depth == 0:
            spans.append((start, j))
            start = j + 1
    if start < hi:
        spans.append((start, hi))
    for a, b in spans:
        span = toks[a:b]
        # strip default value
        for k, t in enumerate(span):
            if t.text == "=":
                span = span[:k]
                break
        if not span:
            continue
        # last id token = name; everything before = type
        if span[-1].kind == "id" and len(span) > 1:
            nm = span[-1].text
            ty = "".join(t.text for t in span[:-1])
            params[nm] = ty
    return params


def _parse_block(toks, i):
    """toks[i] == '{'. Returns (Stmt('block'), index past '}')."""
    assert toks[i].text == "{"
    stmts = []
    j = i + 1
    n = len(toks)
    while j < n and toks[j].text != "}":
        s, j = _parse_stmt(toks, j)
        if s is not None:
            stmts.append(s)
    return Stmt("block", toks[i].line, stmts=stmts), min(j + 1, n)


def _parse_stmt(toks, i):
    n = len(toks)
    t = toks[i]
    if t.text == ";":
        return None, i + 1
    if t.text == "{":
        return _parse_block(toks, i)
    if t.text == "if":
        j = i + 1
        if j < n and toks[j].text == "constexpr":
            j += 1
        cond_lo = j
        j = _match_paren(toks, j) if j < n and toks[j].text == "(" else j
        cond_text = "".join(x.text for x in toks[cond_lo:j])
        then_s, j = _parse_stmt(toks, j)
        else_s = None
        if j < n and toks[j].text == "else":
            else_s, j = _parse_stmt(toks, j + 1)
        return Stmt("if", t.line, cond_text=cond_text, then_s=then_s,
                    else_s=else_s), j
    if t.text in ("while", "for"):
        j = i + 1
        if j < n and toks[j].text == "(":
            j = _match_paren(toks, j)
        body, j = _parse_stmt(toks, j)
        return Stmt("loop", t.line, body=body), j
    if t.text == "do":
        body, j = _parse_stmt(toks, i + 1)
        # consume `while ( ... ) ;`
        if j < n and toks[j].text == "while":
            j += 1
            if j < n and toks[j].text == "(":
                j = _match_paren(toks, j)
            if j < n and toks[j].text == ";":
                j += 1
        return Stmt("loop", t.line, body=body), j
    if t.text == "switch":
        j = i + 1
        if j < n and toks[j].text == "(":
            j = _match_paren(toks, j)
        if j < n and toks[j].text == "{":
            close = _match_brace_span(toks, j)
            cases, has_default = _parse_switch_body(toks, j + 1, close - 1)
            return Stmt("switch", t.line, cases=cases,
                        has_default=has_default), close
        s, j = _parse_stmt(toks, j)
        return s, j
    if t.text == "try":
        body, j = _parse_block(toks, i + 1) if i + 1 < n and \
            toks[i + 1].text == "{" else (Stmt("block", t.line, stmts=[]), i + 1)
        handlers = []
        while j < n and toks[j].text == "catch":
            k = j + 1
            catch_all = False
            if k < n and toks[k].text == "(":
                c = _match_paren(toks, k)
                inner = "".join(x.text for x in toks[k + 1:c - 1])
                catch_all = inner.strip() == "..."
                k = c
            if k < n and toks[k].text == "{":
                hb, k = _parse_block(toks, k)
            else:
                hb, k = _parse_stmt(toks, k)
            handlers.append((catch_all, hb))
            j = k
        return Stmt("try", t.line, body=body, handlers=handlers), j
    if t.text == "return":
        j = i
        depth = 0
        while j < n:
            x = toks[j].text
            if x in ("(", "[", "{"):
                depth += 1
            elif x in (")", "]", "}"):
                depth -= 1
            elif x == ";" and depth == 0:
                break
            j += 1
        text = " ".join(x.text for x in toks[i + 1:j])
        return Stmt("return", t.line, text=text,
                    calls=_calls_in(toks, i + 1, j)), j + 1
    if t.text == "throw":
        j = i
        while j < n and toks[j].text != ";":
            j += 1
        return Stmt("throw", t.line), j + 1
    if t.text in ("break", "continue"):
        j = i
        while j < n and toks[j].text != ";":
            j += 1
        return Stmt("jump", t.line, which=t.text), j + 1
    if t.text in ("case", "default"):
        # stray labels (outside _parse_switch_body pre-split) — skip to ':'
        j = i
        while j < n and toks[j].text != ":":
            j += 1
        return None, j + 1
    # Expression / declaration statement: up to ';' at depth 0. A '{' that
    # opens a lambda or init-list is balanced through.
    j = i
    depth = 0
    while j < n:
        x = toks[j].text
        if x in ("(", "[", "{"):
            depth += 1
        elif x in (")", "]", "}"):
            if depth == 0 and x == "}":
                break  # malformed / end of enclosing block
            depth -= 1
        elif x == ";" and depth == 0:
            break
        j += 1
    calls = _calls_in(toks, i, j)
    decls = _decls_in(toks, i, j)
    # `shared_ptr<Flowgraph> graph(new Flowgraph(...))` is a declaration,
    # not a call to a function named `graph` — drop pseudo-calls whose name
    # is this statement's own declarator.
    declnames = {d.name for d in decls}
    if declnames:
        calls = [c for c in calls if c.name not in declnames]
    bare = bool(calls) and _stmt_is_bare_call(toks, i, j, calls)
    if bare:
        calls[0].stmt_is_bare = True
    text = " ".join(x.text for x in toks[i:j])
    return Stmt("expr", t.line, calls=calls, decls=decls, text=text), j + 1


def _parse_switch_body(toks, lo, hi):
    """Split `case X: stmts...` groups into alternative blocks."""
    cases = []
    has_default = False
    j = lo
    cur = None
    while j < hi:
        t = toks[j]
        if t.text in ("case", "default") and _at_case_depth(toks, lo, j):
            if t.text == "default":
                has_default = True
            while j < hi and toks[j].text != ":":
                j += 1
            j += 1
            # consecutive labels share one group
            if cur is None or cur.stmts:
                cur = Stmt("block", t.line, stmts=[])
                cases.append(cur)
            continue
        s, j2 = _parse_stmt(toks, j)
        if j2 <= j:
            j += 1
            continue
        j = j2
        if s is not None:
            if cur is None:
                cur = Stmt("block", s.line, stmts=[])
                cases.append(cur)
            cur.stmts.append(s)
    return cases, has_default


def _at_case_depth(toks, lo, j):
    depth = 0
    for k in range(lo, j):
        x = toks[k].text
        if x in ("{", "(", "["):
            depth += 1
        elif x in ("}", ")", "]"):
            depth -= 1
    return depth == 0


def _stmt_is_bare_call(toks, lo, hi, calls):
    """True when the statement is exactly `[recv .] name ( args )`."""
    c = calls[0]
    # first token must begin the receiver/name chain; last must be ')'
    if hi - 1 < 0 or toks[hi - 1].text != ")":
        return False
    k = lo
    # walk an id(::id)*((.|->)id)* chain then '('
    if toks[k].kind != "id":
        return False
    while k < hi and (toks[k].kind == "id" or
                      toks[k].text in ("::", ".", "->")):
        k += 1
    return k < hi and toks[k].text == "(" and _match_paren(toks, k) == hi


def _lambda_ranges(toks, lo, hi):
    """Token index ranges of lambda bodies within [lo, hi).

    A lambda body's calls run when the lambda runs — on a worker thread, in
    a CondVar predicate, after the enclosing scope unlocked — so they must
    not be attributed to the enclosing statement's locked/resource context.
    """
    ranges = []
    for j in range(lo, hi):
        if toks[j].text != "{" or j == lo:
            continue
        k = j - 1
        while k > lo and toks[k].text in ("mutable", "noexcept"):
            k -= 1
        if toks[k].text == ")":
            depth = 0
            while k >= lo:
                if toks[k].text == ")":
                    depth += 1
                elif toks[k].text == "(":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            k -= 1
        if k >= lo and toks[k].text == "]":
            close = _match_paren(toks, j, "{", "}")
            ranges.append((j, min(close, hi)))
    return ranges


def _calls_in(toks, lo, hi):
    calls = []
    skip = _lambda_ranges(toks, lo, hi)
    for j in range(lo, hi):
        if any(a <= j < b for a, b in skip):
            continue
        if toks[j].kind == "id" and j + 1 < hi and toks[j + 1].text == "(" \
                and toks[j].text not in CONTROL_KEYWORDS:
            name = toks[j].text
            # receiver chain before name:  a.b->c::name(
            recv_parts = []
            k = j - 1
            while k >= lo and toks[k].text in (".", "->", "::"):
                if k - 1 >= lo and toks[k - 1].kind == "id":
                    recv_parts.append(toks[k - 1].text + toks[k].text)
                    k -= 2
                elif k - 1 >= lo and toks[k - 1].text == ")":
                    # chained call result:  f().name( — record as dynamic
                    d = 0
                    m = k - 1
                    while m >= lo:
                        if toks[m].text == ")":
                            d += 1
                        elif toks[m].text == "(":
                            d -= 1
                            if d == 0:
                                break
                        m -= 1
                    inner = "".join(t.text for t in toks[m:k])
                    # include the callee before the inner '(' if present
                    if m - 1 >= lo and toks[m - 1].kind == "id":
                        mm = m - 1
                        pre = [toks[mm].text]
                        mm -= 1
                        while mm >= lo and toks[mm].text == "::" and \
                                mm - 1 >= lo and toks[mm - 1].kind == "id":
                            pre[:0] = [toks[mm - 1].text, "::"]
                            mm -= 2
                        inner = "".join(pre) + inner
                    recv_parts.append(inner + toks[k].text)
                    k = m - 1 if m - 1 >= lo and toks[m - 1].kind != "id" \
                        else m - 2
                    break
                else:
                    break
            recv = "".join(reversed(recv_parts))
            close = _match_paren(toks, j + 1)
            args = _split_args(toks, j + 2, close - 1)
            calls.append(CallSite(name, recv, args, toks[j].line))
    return calls


def _split_args(toks, lo, hi):
    args = []
    depth = 0
    start = lo
    for j in range(lo, hi):
        x = toks[j].text
        if x in ("(", "[", "{", "<"):
            depth += 1
        elif x in (")", "]", "}", ">"):
            depth -= 1
        elif x == "," and depth == 0:
            args.append("".join(t.text for t in toks[start:j]))
            start = j + 1
    if start < hi:
        args.append("".join(t.text for t in toks[start:hi]))
    return [a.strip() for a in args]


DECL_HEAD = re.compile(r"[A-Za-z_]")


def _decls_in(toks, lo, hi):
    """Best-effort local declarations in one statement."""
    decls = []
    # Pattern: [const] Type[<..>][*&] name ( = init | ( args ) | { args } | ; )
    j = lo
    # Only consider statements that *start* with a type-ish token.
    if j >= hi or toks[j].kind != "id":
        return decls
    k = j
    ty_toks = []
    depth = 0
    while k < hi:
        t = toks[k]
        if t.text == "<":
            depth += 1
            ty_toks.append(t.text)
        elif t.text == ">":
            depth -= 1
            ty_toks.append(t.text)
        elif depth == 0 and t.kind == "id":
            nxt = toks[k + 1].text if k + 1 < hi else ";"
            if ty_toks and ty_toks[-1] not in ("::", "<", "const") and \
                    nxt in ("=", "(", "{", ";", ","):
                # t is the declarator name — but only if the collected type
                # run looks like a type (not an arbitrary expression).
                ty = "".join(ty_toks).strip()
                if ty and not ty[0].isdigit() and ty not in ("return",):
                    init = " ".join(x.text for x in toks[k + 1:hi])
                    decls.append(VarDecl(t.text, ty, init, t.line))
                return decls
            ty_toks.append(t.text)
        elif depth == 0 and t.text in ("::", "*", "&", "&&"):
            ty_toks.append(t.text)
        elif depth == 0 and t.text == "const":
            ty_toks.append(t.text)
        elif depth > 0:
            ty_toks.append(t.text)
        else:
            break
        k += 1
    return decls


# ==========================================================================
# libclang frontend (optional)
# ==========================================================================

def try_libclang():
    try:
        import clang.cindex as ci  # noqa: F401
        ci.Index.create()
        return ci
    except Exception:
        return None


def parse_with_libclang(ci, root, path, args):
    """Lower a clang AST into the shared IR. Returns (TU, PpView)."""
    idx = ci.Index.create()
    opts = ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD
    tu_c = idx.parse(os.path.join(root, path), args=args, options=opts)
    tu = TU(path)

    K = ci.CursorKind

    def lower_stmt(cur):
        k = cur.kind
        line = cur.location.line or 0
        if k == K.COMPOUND_STMT:
            return Stmt("block", line,
                        stmts=[s for s in map(lower_stmt, cur.get_children())
                               if s is not None])
        if k == K.IF_STMT:
            ch = list(cur.get_children())
            cond = ch[0] if ch else None
            then_s = lower_stmt(ch[1]) if len(ch) > 1 else None
            else_s = lower_stmt(ch[2]) if len(ch) > 2 else None
            cond_text = " ".join(t.spelling for t in cond.get_tokens()) \
                if cond is not None else ""
            return Stmt("if", line, cond_text=cond_text, then_s=then_s,
                        else_s=else_s)
        if k in (K.FOR_STMT, K.WHILE_STMT, K.DO_STMT,
                 K.CXX_FOR_RANGE_STMT):
            body = None
            for c in cur.get_children():
                body = lower_stmt(c)
            return Stmt("loop", line, body=body)
        if k == K.SWITCH_STMT:
            cases = []
            has_default = False
            for c in cur.get_children():
                if c.kind == K.COMPOUND_STMT:
                    cur_case = None
                    for cc in c.get_children():
                        if cc.kind in (K.CASE_STMT, K.DEFAULT_STMT):
                            if cc.kind == K.DEFAULT_STMT:
                                has_default = True
                            cur_case = Stmt("block", cc.location.line,
                                            stmts=[])
                            cases.append(cur_case)
                            sub = list(cc.get_children())
                            body = sub[-1] if sub else None
                            while body is not None and body.kind in \
                                    (K.CASE_STMT, K.DEFAULT_STMT):
                                sub = list(body.get_children())
                                body = sub[-1] if sub else None
                            if body is not None:
                                s = lower_stmt(body)
                                if s:
                                    cur_case.stmts.append(s)
                        elif cur_case is not None:
                            s = lower_stmt(cc)
                            if s:
                                cur_case.stmts.append(s)
            return Stmt("switch", line, cases=cases, has_default=has_default)
        if k == K.CXX_TRY_STMT:
            ch = list(cur.get_children())
            body = lower_stmt(ch[0]) if ch else None
            handlers = []
            for h in ch[1:]:
                hch = list(h.get_children())
                catch_all = len(hch) == 1  # no exception decl child
                hb = lower_stmt(hch[-1]) if hch else None
                handlers.append((catch_all, hb))
            return Stmt("try", line, body=body, handlers=handlers)
        if k == K.RETURN_STMT:
            text = " ".join(t.spelling for t in cur.get_tokens())
            return Stmt("return", line, text=text, calls=collect_calls(cur))
        if k == K.CXX_THROW_EXPR:
            return Stmt("throw", line)
        if k == K.BREAK_STMT:
            return Stmt("jump", line, which="break")
        if k == K.CONTINUE_STMT:
            return Stmt("jump", line, which="continue")
        if k == K.DECL_STMT:
            decls = []
            calls = collect_calls(cur)
            for c in cur.get_children():
                if c.kind == K.VAR_DECL:
                    init = " ".join(t.spelling for t in c.get_tokens())
                    decls.append(VarDecl(c.spelling, c.type.spelling, init,
                                         c.location.line))
            return Stmt("expr", line, calls=calls, decls=decls,
                        text=" ".join(t.spelling for t in cur.get_tokens()))
        if k == K.NULL_STMT:
            return None
        # default: expression statement
        calls = collect_calls(cur)
        text = " ".join(t.spelling for t in cur.get_tokens())
        s = Stmt("expr", line, calls=calls, decls=[], text=text)
        if len(calls) == 1 and cur.kind == K.CALL_EXPR:
            calls[0].stmt_is_bare = True
        if calls and cur.kind == K.CALL_EXPR:
            calls[0].stmt_is_bare = True
        return s

    def collect_calls(cur):
        calls = []

        def walk(c):
            if c.kind == K.CALL_EXPR:
                name = c.spelling or ""
                recv = ""
                args = []
                ch = list(c.get_arguments())
                for a in ch:
                    args.append(" ".join(t.spelling for t in a.get_tokens()))
                sub = list(c.get_children())
                if sub and sub[0].kind == K.MEMBER_REF_EXPR:
                    base = list(sub[0].get_children())
                    if base:
                        recv = " ".join(
                            t.spelling for t in base[0].get_tokens())
                if name:
                    calls.append(CallSite(name, recv, args,
                                          c.location.line))
            for cc in c.get_children():
                walk(cc)
        walk(cur)
        return calls

    def in_main_file(cur):
        try:
            return cur.location.file and \
                os.path.samefile(cur.location.file.name,
                                 os.path.join(root, path))
        except OSError:
            return False

    def walk_decls(cur, cls):
        for c in cur.get_children():
            k = c.kind
            if k in (K.NAMESPACE, K.UNEXPOSED_DECL, K.LINKAGE_SPEC):
                walk_decls(c, cls)
            elif k in (K.CLASS_DECL, K.STRUCT_DECL):
                members = tu.classes.setdefault(c.spelling, {})
                for m in c.get_children():
                    if m.kind == K.FIELD_DECL:
                        members[m.spelling] = m.type.spelling
                walk_decls(c, c.spelling)
            elif k in (K.CXX_METHOD, K.FUNCTION_DECL, K.CONSTRUCTOR,
                       K.DESTRUCTOR) and c.is_definition() and \
                    in_main_file(c):
                parent = c.semantic_parent
                pcls = parent.spelling if parent and parent.kind in \
                    (K.CLASS_DECL, K.STRUCT_DECL) else (cls or "")
                fn = Function(
                    ("%s::%s" % (pcls, c.spelling)) if pcls else c.spelling,
                    pcls, c.spelling, path, c.location.line)
                fn.rettype = c.result_type.spelling
                for a in c.get_arguments():
                    fn.params[a.spelling] = a.type.spelling
                # DPS_REQUIRES shows up as an annotate-like attr only with
                # -Wthread-safety; recover it from tokens instead.
                sig_toks = " ".join(t.spelling for t in c.get_tokens()[:64])
                for m in re.finditer(r"DPS_REQUIRES\s*\(([^)]*)\)", sig_toks):
                    fn.requires.extend(
                        x.strip() for x in m.group(1).split(",") if x.strip())
                body = None
                for ch in c.get_children():
                    if ch.kind == K.COMPOUND_STMT:
                        body = lower_stmt(ch)
                fn.body = body or Stmt("block", c.location.line, stmts=[])
                tu.functions.append(fn)

    walk_decls(tu_c.cursor, "")
    # PpView still comes from the text (the conditional structure is what
    # the trace-gate check needs; the preprocessing record validates it).
    with open(os.path.join(root, path), encoding="utf-8",
              errors="replace") as f:
        view = PpView(strip_comments(f.read()))
    return tu, view


# ==========================================================================
# Check 1: lock-order
# ==========================================================================

PTR_WRAP = re.compile(r"(?:std::)?(?:unique_ptr|shared_ptr)<(.*)>$")


def _strip_type(ty):
    ty = ty.replace("const", "").strip()
    ty = ty.rstrip("*& ").strip()
    m = PTR_WRAP.match(ty)
    if m:
        ty = m.group(1).strip()
    # drop namespaces:  dps::detail::CallState -> CallState
    if "::" in ty:
        ty = ty.split("::")[-1]
    ty = ty.split("<")[0].strip()
    return ty


class LockOrder:
    def __init__(self, tus, verbose=False):
        self.tus = tus
        self.classes = {}
        for tu in tus:
            for cname, members in tu.classes.items():
                if cname == "__requires__":
                    continue
                self.classes.setdefault(cname, {}).update(members)
        self.edges = {}          # (A, B) -> example "file:line"
        self.direct = {}         # fn.qualname -> set of nodes acquired
        self.calls_under = []    # (holder_node, callee_name, site)
        self.fn_by_name = {}
        self.unresolved = 0
        self.verbose = verbose

    def resolve(self, expr, fn, local_types):
        """Map a mutex expression to a node label 'Class::member' or None."""
        expr = expr.strip()
        if expr.startswith("*"):
            expr = expr[1:].strip()
        if expr.startswith("&"):
            expr = expr[1:].strip()
        parts = re.split(r"\.|->", expr)
        if len(parts) == 1:
            name = parts[0]
            if not re.fullmatch(r"[A-Za-z_]\w*", name):
                return None
            # a member of the enclosing class?
            if fn.cls and name in self.classes.get(fn.cls, {}):
                return f"{fn.cls}::{name}"
            # a Mutex& parameter / local — identity unknown statically
            if name in fn.params or name in local_types:
                self.unresolved += 1
                return None
            # classless (fixture / free function) global
            if not fn.cls:
                return name
            # unknown member (class table may be incomplete: header not in
            # this TU's view). Fall back to class-qualified label.
            return f"{fn.cls}::{name}"
        base, member = parts[0], parts[-1]
        if not re.fullmatch(r"[A-Za-z_]\w*", member):
            return None
        bty = None
        if base in local_types:
            bty = _strip_type(local_types[base])
        elif base in fn.params:
            bty = _strip_type(fn.params[base])
        elif fn.cls and base in self.classes.get(fn.cls, {}):
            bty = _strip_type(self.classes[fn.cls][base])
        if bty and bty in self.classes and member in self.classes[bty]:
            return f"{bty}::{member}"
        if bty and bty not in ("auto",):
            return f"{bty}::{member}"
        self.unresolved += 1
        return None

    def run(self):
        for tu in self.tus:
            for fn in tu.functions:
                self.fn_by_name.setdefault(fn.name, []).append(fn)
        for tu in self.tus:
            for fn in tu.functions:
                self._walk_fn(tu, fn)
        # Propagate: locks acquired by callees become edges from held locks.
        may_acq = {q: set(v) for q, v in self.direct.items()}
        changed = True
        rounds = 0
        while changed and rounds < 20:
            changed = False
            rounds += 1
            for tu in self.tus:
                for fn in tu.functions:
                    acq = may_acq.setdefault(fn.qualname, set())
                    for callee_fn in self._callees(fn):
                        sub = may_acq.get(callee_fn.qualname, set())
                        if not sub <= acq:
                            acq |= sub
                            changed = True
        for holder, call, site, caller in self.calls_under:
            for cand in self._resolve_callee(call, caller):
                for node in may_acq.get(cand.qualname, set()):
                    self.edges.setdefault((holder, node), site)
        return self.edges

    def _callees(self, fn):
        out = []
        for s in fn.all_stmts():
            for c in getattr(s, "calls", []) or []:
                out.extend(self._resolve_callee(c, fn))
        return out

    def _resolve_callee(self, call, caller):
        """Receiver-typed callee resolution.

        `q.size()` on a std::vector member must NOT resolve to the
        enclosing class's own size() — that receiver blindness is exactly
        how bogus self-deadlock edges appear. With a receiver we resolve
        its static type through locals/params/members and only match
        methods of that class; an unresolvable receiver propagates nothing
        (documented under-approximation, see docs/STATIC_ANALYSIS.md)."""
        cands = self.fn_by_name.get(call.name, [])
        if not cands:
            return []
        recv = (call.recv or "").strip()
        if not recv:
            same_cls = [f for f in cands if f.cls == caller.cls]
            if same_cls:
                return same_cls
            if len(cands) <= 2:
                return cands
            return []  # too ambiguous to propagate through
        if recv in ("this->", "this."):
            return [f for f in cands if f.cls == caller.cls]
        # static call:  Cls::name(...)
        m = re.match(r"^([A-Za-z_]\w*)::$", recv)
        if m:
            return [f for f in cands if f.cls == m.group(1)]
        base = re.split(r"\.|->|::", recv)[0].strip("*& ")
        if not re.fullmatch(r"[A-Za-z_]\w*", base):
            return []
        local_types = getattr(caller, "_local_types", {})
        bty = None
        if base == "this":
            bty = caller.cls
        elif base in local_types:
            bty = _strip_type(local_types[base])
        elif base in caller.params:
            bty = _strip_type(caller.params[base])
        elif caller.cls and base in self.classes.get(caller.cls, {}):
            bty = _strip_type(self.classes[caller.cls][base])
        elif base in self.classes:
            bty = base  # e.g. Singleton::instance().method(...)
        if bty:
            return [f for f in cands if f.cls == bty]
        return []

    def _walk_fn(self, tu, fn):
        local_types = {}
        for s in fn.all_stmts():
            for d in getattr(s, "decls", []) or []:
                local_types[d.name] = d.type
        fn._local_types = local_types  # reused by _resolve_callee

        direct = self.direct.setdefault(fn.qualname, set())
        base_held = []
        for r in fn.requires:
            node = self.resolve(r, fn, local_types)
            if node:
                base_held.append((node, f"{fn.path}:{fn.line}"))
        # Hand-over-hand guard: once a function explicitly unlocks a lock
        # its caller handed it via DPS_REQUIRES (e.g. SimDomain::
        # handle_stall unlocking mu before taking wait-point locks), later
        # acquisitions no longer nest under the caller's locks — exporting
        # them through the call graph would fabricate cycles. Local edge
        # recording stays exact; only `direct` (the propagated set) stops.
        requires_intact = [True]

        def site(line):
            return f"{fn.path}:{line}"

        def walk(stmt, held):
            """held: list of [node, site, active, varname]. Returns nothing;
            mutates held within a block scope and restores on exit."""
            if stmt is None:
                return
            if stmt.kind == "block":
                mark = len(held)
                for s in stmt.stmts:
                    walk(s, held)
                del held[mark:]
                return
            if stmt.kind == "if":
                walk(stmt.then_s, held)
                walk(stmt.else_s, held)
                return
            if stmt.kind == "loop":
                walk(stmt.body, held)
                return
            if stmt.kind == "switch":
                for c in stmt.cases:
                    walk(c, held)
                return
            if stmt.kind == "try":
                walk(stmt.body, held)
                for _, h in stmt.handlers:
                    walk(h, held)
                return
            if stmt.kind in ("return", "throw", "jump"):
                return
            # expr statement: lock declarations, lock()/unlock(), calls
            for d in getattr(stmt, "decls", []) or []:
                if _strip_type(d.type).endswith("MutexLock"):
                    m = re.match(r"\(\s*(.*?)\s*\)", d.init or "")
                    arg = None
                    if d.init:
                        mm = re.match(r"^[({]\s*(.*?)\s*[)}]\s*$", d.init)
                        if mm:
                            arg = mm.group(1).split(",")[0]
                    if arg:
                        node = self.resolve(arg, fn, local_types)
                        if node:
                            self._acquire(node, held, site(d.line), d.name,
                                          direct, requires_intact[0])
                    continue
            for c in getattr(stmt, "calls", []) or []:
                if c.name == "lock" and c.recv:
                    var = c.recv.rstrip(".->")
                    for h in held:
                        if h[3] == var:
                            h[2] = True
                            break
                    else:
                        # mu_.lock() direct on a Mutex
                        node = self.resolve(var, fn, local_types)
                        if node:
                            self._acquire(node, held, site(c.line), None,
                                          direct, requires_intact[0])
                elif c.name == "unlock" and c.recv:
                    var = c.recv.rstrip(".->")
                    for h in held:
                        if h[3] == var:
                            h[2] = False
                    # also direct Mutex unlock by mutex name
                    node = self.resolve(var, fn, local_types)
                    if node:
                        for h in held:
                            if h[0] == node:
                                h[2] = False
                        if any(n == node for n, _ in base_held):
                            requires_intact[0] = False
                elif c.name not in ("lock", "unlock"):
                    active = [h for h in held if h[2]]
                    for h in active:
                        self.calls_under.append(
                            (h[0], c, site(c.line), fn))

        def _noop():
            pass

        # DPS_REQUIRES(mu) asserts the caller already holds mu — it seeds
        # the held-set (so locks this function takes order after mu) but is
        # NOT an acquisition: adding it to `direct` would turn every
        # `helper_locked()` call under mu into a bogus mu->mu self-cycle.
        held0 = [[n, s, True, None] for n, s in base_held]
        walk(fn.body, held0)

    def _acquire(self, node, held, site_s, varname, direct, export=True):
        for h in held:
            if h[2]:
                self.edges.setdefault((h[0], node), site_s)
        held.append([node, site_s, True, varname])
        if export:
            direct.add(node)

    def cycles(self):
        """SCCs with >1 node, plus self-loops."""
        adj = {}
        for (a, b) in self.edges:
            adj.setdefault(a, set()).add(b)
            adj.setdefault(b, set())
        index = {}
        low = {}
        stack = []
        onstk = set()
        out = []
        counter = [0]
        sys.setrecursionlimit(10000)

        def strong(v):
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            onstk.add(v)
            for w in adj.get(v, ()):  # noqa
                if w not in index:
                    strong(w)
                    low[v] = min(low[v], low[w])
                elif w in onstk:
                    low[v] = min(low[v], index[w])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    onstk.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                if len(comp) > 1:
                    out.append(sorted(comp))

        for v in sorted(adj):
            if v not in index:
                strong(v)
        for (a, b) in self.edges:
            if a == b:
                out.append([a])
        return out

    def to_dot(self):
        lines = ["// Lock acquisition order of the DPS engine.",
                 "// Generated by scripts/dps_verify.py --dot; an edge",
                 "// A -> B means B was acquired while A was held (label =",
                 "// one example site). Cycles here are potential deadlocks",
                 "// and fail ctest Lint.DpsVerify unless accepted with a",
                 "// written reason in ACCEPTED_LOCK_CYCLES.",
                 "digraph lock_order {",
                 '  rankdir=LR;',
                 '  node [shape=box, fontname="monospace", fontsize=10];',
                 '  edge [fontname="monospace", fontsize=8];']
        nodes = sorted({n for e in self.edges for n in e})
        for n in nodes:
            lines.append(f'  "{n}";')
        for (a, b), site in sorted(self.edges.items()):
            lines.append(f'  "{a}" -> "{b}" [label="{site}"];')
        lines.append("}")
        return "\n".join(lines) + "\n"


def check_lock_order(tus, findings, dot_path=None, root=None, verbose=False):
    lo = LockOrder(tus, verbose)
    lo.run()
    if dot_path:
        with open(dot_path, "w", encoding="utf-8") as f:
            f.write(lo.to_dot())
    for comp in lo.cycles():
        key = "lock-order:*:" + "<->".join(comp)
        if key in ACCEPTED_LOCK_CYCLES:
            ACCEPTED_LOCK_CYCLES[key] = ACCEPTED_LOCK_CYCLES[key]  # mark used
            continue
        example = ""
        for (a, b), site in lo.edges.items():
            if a in comp and b in comp:
                example = site
                break
        findings.append(
            (key, f"{example}: lock-order: potential deadlock cycle "
                  f"{' -> '.join(comp)} -> {comp[0]} — acquisition order "
                  f"must be a DAG (see docs/lock_order.dot); if this cycle "
                  f"is provably benign, accept it in ACCEPTED_LOCK_CYCLES "
                  f"with a reason and document it in "
                  f"docs/STATIC_ANALYSIS.md"))
    if verbose:
        print(f"  lock-order: {len(lo.edges)} edges, "
              f"{lo.unresolved} unresolved mutex exprs", file=sys.stderr)
    return lo


# ==========================================================================
# Check 2: acquire/release protocol
# ==========================================================================

def _norm_expr(e):
    return re.sub(r"\s+", "", e or "")


class ProtoState:
    """Set-of-states abstract interpretation over the statement tree."""

    def __init__(self, fn, proto, findings, member_handles):
        self.fn = fn
        self.proto = proto
        self.findings = findings
        self.member_handles = member_handles  # lenient-mode resource keys
        self.reported = set()

    def is_acquire(self, c):
        idx = self.proto["acquire"].get(c.name, "missing")
        if idx == "missing":
            return None
        if self.proto.get("acquire_recv"):
            if self.proto["acquire_recv"] not in (c.recv or ""):
                return None
        if idx is None:
            return "__value__"
        if idx < len(c.args):
            return _norm_expr(c.args[idx])
        return None

    def is_release(self, c, key):
        idx = self.proto["release"].get(c.name, "missing")
        if idx == "missing":
            return False
        if idx is None:
            return True  # releases every resource of this protocol
        return idx < len(c.args) and _norm_expr(c.args[idx]) == key


def check_protocol(tus, findings, verbose=False):
    for tu in tus:
        for fn in tu.functions:
            local_names = set(fn.params)
            for s in fn.all_stmts():
                for d in getattr(s, "decls", []) or []:
                    local_names.add(d.name)
            for proto in PROTOCOLS:
                _check_fn_protocol(fn, proto, local_names, findings)


def _check_fn_protocol(fn, proto, local_names, findings):
    # quick reject: does the function mention any acquire callee?
    names = proto["acquire"].keys()
    found = False
    for s in fn.all_stmts():
        for c in getattr(s, "calls", []) or []:
            if c.name in names:
                found = True
                break
        if found:
            break
    if not found:
        return

    ps = ProtoState(fn, proto, findings, set())

    # A state is a frozenset of live (key, acquire_line, strict) triples.
    def report(key, acq_line, exit_line, why):
        fid = f"protocol:{fn.path}:{fn.qualname}"
        msg = (f"{fn.path}:{exit_line}: protocol[{proto['name']}]: "
               f"{fn.qualname} {why} for resource '{key}' acquired at "
               f"line {acq_line} — {proto['desc']}")
        dedup = (fid, key, exit_line, why)
        if dedup in ps.reported:
            return
        ps.reported.add(dedup)
        findings.append((fid, msg))

    def release_all(state, call):
        ns = set()
        for (key, line, strict) in state:
            k = key[4:] if key.startswith("var:") else key
            if ps.is_release(call, k):
                continue
            ns.add((key, line, strict))
        return frozenset(ns)

    def value_escape(state, call, released_var):
        """Value-style resources escape when passed to any call."""
        if not proto.get("transfer_releases"):
            return state
        ns = set()
        for (key, line, strict) in state:
            if key.startswith("var:"):
                var = key[4:]
                touched = any(re.search(r"\b%s\b" % re.escape(var), a)
                              for a in call.args) or \
                    re.search(r"\b%s\b" % re.escape(var), call.recv or "")
                if touched and not ps.is_release(call, var):
                    continue  # ownership handed off (or moved)
            ns.add((key, line, strict))
        return frozenset(ns)

    protective = []  # stack of try-frames that release on catch

    def catch_protects(handlers, key):
        """A catch-all that releases `key` (or rethrows after a cleanup
        call) protects may-raise calls in its try body."""
        for catch_all, hb in handlers:
            if not catch_all or hb is None:
                continue
            for s in _stmts_of(hb):
                for c in getattr(s, "calls", []) or []:
                    if ps.is_release(c, key):
                        return True
                    # one-level cleanup helper: any call in a catch-all
                    # whose sole job is cleanup counts (lenient mode only)
            # catch-all with any call at all: lenient acceptance
            if any(getattr(s, "calls", None)
                   for s in _stmts_of(hb)):
                return "lenient"
        return False

    def _stmts_of(stmt):
        out = []

        def w(s):
            if s is None:
                return
            out.append(s)
            for attr in ("stmts",):
                for c in getattr(s, attr, []) or []:
                    w(c)
            for attr in ("then_s", "else_s", "body"):
                w(getattr(s, attr, None))
            for c in getattr(s, "cases", []) or []:
                w(c)
            for _, h in getattr(s, "handlers", []) or []:
                w(h)
        w(stmt)
        return out

    MAX_STATES = 128

    def walk(stmt, states, try_stack):
        """states: set of frozensets. Returns set of out-states; paths that
        exit the function report leaks here."""
        if stmt is None:
            return states
        if stmt.kind == "block":
            cur = states
            for s in stmt.stmts:
                cur = walk(s, cur, try_stack)
                if not cur:
                    return cur
            return cur
        if stmt.kind == "if":
            a = walk(stmt.then_s, states, try_stack)
            b = walk(stmt.else_s, states, try_stack) \
                if stmt.else_s is not None else states
            out = a | b
            return _cap(out)
        if stmt.kind == "loop":
            once = walk(stmt.body, states, try_stack)
            return _cap(states | once)
        if stmt.kind == "switch":
            out = set()
            for c in stmt.cases:
                out |= walk(c, states, try_stack)
            if not stmt.has_default or not stmt.cases:
                out |= states
            return _cap(out)
        if stmt.kind == "try":
            inner = walk(stmt.body, states, try_stack + [stmt.handlers])
            out = set(inner)
            # handler bodies run with whatever was live at entry (approx.)
            for catch_all, hb in stmt.handlers:
                out |= walk(hb, states | inner, try_stack)
            return _cap(out)
        if stmt.kind == "return":
            for st in states:
                for (key, line, strict) in st:
                    if strict:
                        report(key, line, stmt.line,
                               "returns without releasing")
            return set()
        if stmt.kind == "throw":
            for st in states:
                for (key, line, strict) in st:
                    if strict and not _protected(try_stack, key):
                        report(key, line, stmt.line,
                               "throws without releasing")
            return set()
        if stmt.kind == "jump":
            # break/continue: approximate as fallthrough (resource state
            # unchanged; the loop/switch exit handles the rest).
            return states
        # expr
        out = set()
        for st in states:
            cur = st
            for c in getattr(stmt, "calls", []) or []:
                # 1. may-raise exception edge while something is live.
                # A bare `raise(...)` is a deliberate exit: for member
                # (lenient) handles it is assumed to be value-correlated
                # with the acquire (e.g. a kLeaf-only raise after a
                # kSplit-only acquire) — only callee-raises (flow_acquire
                # poison, send failures) are flagged there. Strict (local)
                # handles flag both.
                if c.name in MAY_RAISE:
                    for (key, line, strict) in cur:
                        if c.name == "raise" and not strict:
                            continue
                        prot = _protected(try_stack, key)
                        if not prot:
                            report(key, line, c.line,
                                   f"may raise out of {c.name}() without "
                                   f"releasing (exception path drops the "
                                   f"resource)")
                # 2. release
                cur = release_all(cur, c)
                # 3. value escape
                cur = value_escape(cur, c, None)
                # 4. acquire
                akey = ps.is_acquire(c)
                if akey is not None:
                    if akey == "__value__":
                        var = _assigned_var(stmt)
                        if var:
                            cur = cur | {("var:" + var, c.line, True)}
                        # unbound temporaries are immediately handed off
                    else:
                        strict = _is_local_expr(akey, local_names)
                        cur = cur | {(akey, c.line, strict)}
            out.add(frozenset(cur))
        return _cap(out)

    def _protected(try_stack, key):
        for handlers in reversed(try_stack):
            p = catch_protects(handlers, key)
            if p:
                return True
        return False

    def _cap(states):
        if len(states) > MAX_STATES:
            # merge everything into one conservative union state
            merged = set()
            for st in states:
                merged |= st
            return {frozenset(merged)}
        return states

    def _assigned_var(stmt):
        for d in getattr(stmt, "decls", []) or []:
            # `auto f = [&](...) { ... acquire ... }` declares a lambda;
            # an acquire inside its body does not bind to the variable.
            if re.match(r"=\s*\[", d.init or ""):
                return None
            return d.name
        m = re.match(r"\s*([A-Za-z_]\w*)\s*=", getattr(stmt, "text", ""))
        return m.group(1) if m else None

    def _is_local_expr(key, local_names):
        ids = re.findall(r"[A-Za-z_]\w*", key)
        if not ids:
            return True  # literal handle (fixture style)
        return all(i in local_names or i.isdigit() for i in ids) and \
            not any(i.endswith("_") and i not in local_names for i in ids)

    final = walk(fn.body, {frozenset()}, [])
    for st in final:
        for (key, line, strict) in st:
            if strict:
                report(key, line, fn.line,
                       "can reach the end of the function without releasing")


# ==========================================================================
# Check 3: discarded Errc/Error results
# ==========================================================================

def check_discard(tus, findings, verbose=False):
    returners = {}
    for tu in tus:
        for fn in tu.functions:
            rt = (fn.rettype or "").replace("dps::", "").strip()
            if rt in ("Errc", "Error"):
                returners[fn.name] = rt
    if not returners:
        return
    for tu in tus:
        for fn in tu.functions:
            for s in fn.all_stmts():
                if s.kind != "expr":
                    continue
                text = getattr(s, "text", "")
                for c in getattr(s, "calls", []) or []:
                    if not c.stmt_is_bare:
                        continue
                    if c.name not in returners:
                        continue
                    fid = f"discard:{fn.path}:{fn.qualname}"
                    if c.name in DISCARD_ALLOWLIST:
                        continue
                    if re.match(r"\s*\(\s*void\s*\)", text):
                        continue
                    findings.append(
                        (fid,
                         f"{fn.path}:{c.line}: discard: result of "
                         f"{c.name}() ({returners[c.name]}) is silently "
                         f"dropped in {fn.qualname} — handle it, cast to "
                         f"(void) with a comment, or add to "
                         f"DISCARD_ALLOWLIST with a reason"))


# ==========================================================================
# Check 4: trace gating (preprocessor-record based)
# ==========================================================================

def check_trace_gate(root, paths, findings, views, verbose=False):
    for path in paths:
        if path.startswith("src/obs/") or not path.startswith("src/"):
            continue
        view = views.get(path)
        if view is None:
            continue
        with open(os.path.join(root, path), encoding="utf-8",
                  errors="replace") as f:
            text = strip_comments(f.read())
        for lineno, line in enumerate(text.split("\n"), 1):
            m = TRACE_TOUCH_RE.search(line)
            if not m:
                continue
            if lineno - 1 < len(view.possibly_active) and \
                    view.possibly_active[lineno - 1]:
                fid = f"trace-gate:{path}:{m.group(0)}"
                findings.append(
                    (fid,
                     f"{path}:{lineno}: trace-gate: '{m.group(0)}' can "
                     f"survive preprocessing with DPS_TRACE undefined "
                     f"(checked against the file's real conditional "
                     f"structure, not a line regex) — wrap it in #ifdef "
                     f"DPS_TRACE or use DPS_TRACE_EVENT"))


# ==========================================================================
# Driver
# ==========================================================================

def load_compile_commands(path):
    with open(path, encoding="utf-8") as f:
        db = json.load(f)
    out = []
    for e in db:
        f_ = os.path.normpath(os.path.join(e["directory"], e["file"]))
        args = e.get("arguments")
        if not args and "command" in e:
            args = e["command"].split()
        out.append((f_, args or []))
    return out


def collect_sources(root, cc_path):
    """(cpp_files, headers) under src/, repo-relative."""
    cpps = []
    if cc_path and os.path.exists(cc_path):
        for f_, _args in load_compile_commands(cc_path):
            r = rel(root, f_)
            if r.startswith("src/") and r.endswith(CPP_EXTS):
                cpps.append(r)
    if not cpps:
        for dirpath, _dirs, files in os.walk(os.path.join(root, "src")):
            for fn in files:
                if fn.endswith(CPP_EXTS):
                    cpps.append(rel(root, os.path.join(dirpath, fn)))
    hdrs = []
    for dirpath, _dirs, files in os.walk(os.path.join(root, "src")):
        for fn in files:
            if fn.endswith(HDR_EXTS):
                hdrs.append(rel(root, os.path.join(dirpath, fn)))
    return sorted(set(cpps)), sorted(set(hdrs))


def analyze(root, paths, frontend, ci, cc_args=None, verbose=False):
    """Parse `paths` and return (tus, views)."""
    tus = []
    views = {}
    for p in paths:
        if frontend == "libclang" and ci is not None and p.endswith(CPP_EXTS):
            try:
                tu, view = parse_with_libclang(
                    ci, root, p, (cc_args or {}).get(p, []))
            except Exception as e:  # pragma: no cover — env specific
                if verbose:
                    print(f"  libclang failed on {p} ({e}); falling back",
                          file=sys.stderr)
                tu, view = parse_file(root, p)
        else:
            tu, view = parse_file(root, p)
        tus.append(tu)
        views[p] = view
    # Merge class tables across TUs so x.mu resolves cross-TU.
    merged = {}
    for tu in tus:
        for c, mem in tu.classes.items():
            merged.setdefault(c, {}).update(mem)
    for tu in tus:
        tu.classes = merged
    return tus, views


def run_checks(root, tus, views, paths, dot_path, checks, verbose):
    findings = []
    if "lock-order" in checks:
        check_lock_order(tus, findings, dot_path, root, verbose)
    if "protocol" in checks:
        check_protocol(tus, findings, verbose)
    if "discard" in checks:
        check_discard(tus, findings, verbose)
    if "trace-gate" in checks:
        check_trace_gate(root, paths, findings, views, verbose)
    # Apply the allowlist; track which entries matched.
    used = set()
    out = []
    for fid, msg in findings:
        if fid in ALLOWLIST:
            used.add(fid)
            continue
        out.append(msg)
    for fid in ALLOWLIST:
        if fid not in used:
            out.append(
                f"dps_verify: allowlist entry '{fid}' no longer matches any "
                f"finding; remove it (reason on file: {ALLOWLIST[fid]})")
    return out


EXPECT_RE = re.compile(r"DPS-VERIFY-EXPECT:\s*(.+?)\s*$", re.M)


def run_fixtures(root, fixture_dir, frontend, ci, verbose):
    """Each fail_*.cpp must yield every `// DPS-VERIFY-EXPECT: <substr>`
    diagnostic; each pass_*.cpp must yield none. Returns exit status."""
    failures = []
    files = sorted(f for f in os.listdir(os.path.join(root, fixture_dir))
                   if f.endswith(".cpp"))
    if not files:
        print(f"dps_verify: no fixtures in {fixture_dir}", file=sys.stderr)
        return 2
    for fname in files:
        relp = f"{fixture_dir}/{fname}"
        with open(os.path.join(root, relp), encoding="utf-8") as f:
            raw = f.read()
        expects = EXPECT_RE.findall(raw)
        tus, views = analyze(root, [relp], frontend, ci, verbose=verbose)
        # Fixtures live outside src/ — run trace-gate on them explicitly.
        findings = []
        check_lock_order(tus, findings, None, root, verbose)
        check_protocol(tus, findings, verbose)
        check_discard(tus, findings, verbose)
        view = views[relp]
        with open(os.path.join(root, relp), encoding="utf-8") as f:
            text = strip_comments(f.read())
        for lineno, line in enumerate(text.split("\n"), 1):
            m = TRACE_TOUCH_RE.search(line)
            if m and view.possibly_active[lineno - 1]:
                findings.append(
                    (f"trace-gate:{relp}:{m.group(0)}",
                     f"{relp}:{lineno}: trace-gate: '{m.group(0)}' can "
                     f"survive preprocessing with DPS_TRACE undefined"))
        msgs = [m for _fid, m in findings]
        if fname.startswith("pass_"):
            if msgs:
                failures.append(
                    f"{relp}: expected clean, got {len(msgs)} finding(s):\n"
                    + "\n".join("    " + m for m in msgs))
            elif verbose:
                print(f"  {relp}: clean (as intended)")
            continue
        for exp in expects:
            if not any(exp in m for m in msgs):
                failures.append(
                    f"{relp}: missing expected diagnostic containing "
                    f"'{exp}'; got:\n"
                    + ("\n".join("    " + m for m in msgs) or "    (clean)"))
        if not expects:
            failures.append(f"{relp}: fixture has no DPS-VERIFY-EXPECT line")
        if verbose and not failures:
            print(f"  {relp}: {len(expects)} expected diagnostic(s) matched")
    if failures:
        for f_ in failures:
            print(f_)
        print(f"dps_verify --check-fixtures: {len(failures)} fixture "
              f"assertion(s) FAILED")
        return 1
    print(f"dps_verify --check-fixtures: {len(files)} fixture(s) OK "
          f"(every expected diagnostic produced, pass fixtures clean)")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="AST-level protocol & lock-order analyzer for DPS")
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json (default: build/, build-cc/)")
    ap.add_argument("--sources", nargs="*", default=None,
                    help="restrict analysis to these repo-relative files")
    ap.add_argument("--frontend", choices=["auto", "libclang", "fallback"],
                    default="auto")
    ap.add_argument("--dot", default=None,
                    help="write the lock acquisition graph here as DOT")
    ap.add_argument("--checks", default="lock-order,protocol,discard,"
                    "trace-gate")
    ap.add_argument("--check-fixtures", default=None, metavar="DIR",
                    help="run the known-bad fixture corpus and assert "
                         "every expected diagnostic")
    ap.add_argument("--expect-clean", action="store_true",
                    help="exit 1 if any finding at all is produced "
                         "(no-false-positive corpus check)")
    ap.add_argument("--verbose", "-v", action="store_true")
    args = ap.parse_args()
    root = os.path.abspath(args.root)

    ci = None
    frontend = args.frontend
    if frontend in ("auto", "libclang"):
        ci = try_libclang()
        if ci is None:
            if frontend == "libclang":
                print("dps_verify: libclang python bindings not available "
                      "(pip install libclang / clang); cannot honor "
                      "--frontend=libclang", file=sys.stderr)
                return 3
            frontend = "fallback"
        else:
            frontend = "libclang"
    print(f"dps_verify: frontend={frontend}")

    if args.check_fixtures:
        return run_fixtures(root, args.check_fixtures.rstrip("/"),
                            frontend, ci, args.verbose)

    cc = args.compile_commands
    if cc is None:
        for cand in ("build/compile_commands.json",
                     "build-cc/compile_commands.json"):
            p = os.path.join(root, cand)
            if os.path.exists(p):
                cc = p
                break
    cc_args = {}
    if cc and os.path.exists(cc):
        for f_, a in load_compile_commands(cc):
            cc_args[rel(root, f_)] = [x for x in a[1:]
                                      if not x.endswith(".cpp")
                                      and x not in ("-o", "-c")]
    elif args.frontend == "libclang":
        print(f"dps_verify: compile_commands.json not found (configure the "
              f"'compile-commands' preset first)", file=sys.stderr)
        return 2

    if args.sources:
        paths = [p.rstrip("/") for p in args.sources]
    else:
        cpps, hdrs = collect_sources(root, cc)
        paths = cpps + hdrs
    checks = set(args.checks.split(","))

    tus, views = analyze(root, paths, frontend, ci, cc_args, args.verbose)
    nfun = sum(len(t.functions) for t in tus)
    if args.verbose:
        print(f"  parsed {len(tus)} file(s), {nfun} function bodies",
              file=sys.stderr)
    msgs = run_checks(root, tus, views, paths, args.dot, checks, args.verbose)

    if msgs:
        for m in msgs:
            print(m)
        print(f"dps_verify: {len(msgs)} finding(s) over {len(paths)} "
              f"file(s), {nfun} functions")
        return 1
    print(f"dps_verify: clean ({len(paths)} files, {nfun} functions, "
          f"checks: {','.join(sorted(checks))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
