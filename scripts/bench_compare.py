#!/usr/bin/env python3
"""Cross-PR bench comparator: flags throughput regressions.

Reads two bench-smoke artifacts (one JSON record per line, as written by
tier1.sh's DPS_BENCH_SMOKE stage) and compares the throughput of every
config of the watched benches. A config counts as regressed when its
current throughput falls more than --threshold below the baseline; any
regression makes the script exit nonzero so CI fails loudly.

Wall-clock loopback configs (fig6's real-TCP `dps/` and `sockets/`
series) are compared and printed but never fatal: on the shared 1-core
host even the raw-socket control series — which contains no DPS code at
all — swings up to +-40% between runs (EXPERIMENTS.md documents 8-200
MB/s at 1 kB), so a hard gate there measures the neighbours, not the
engine. The deterministic virtual-time series (`sim/` and everything in
fig15_lu) reproduce bit-stable medians and carry the gate.

Usage:
  scripts/bench_compare.py BENCH_pr3.json BENCH_pr5.json
  scripts/bench_compare.py old.json new.json --benches fig15_lu \
      --threshold 0.05
"""
import argparse
import json
import sys


def load(path):
    records = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                r = json.loads(line)
            except json.JSONDecodeError:
                continue  # tolerate stray non-JSON output in the artifact
            if "bench" in r and "config" in r and "throughput" in r:
                records[(r["bench"], r["config"])] = float(r["throughput"])
    return records


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--benches",
        default="fig15_lu,fig6_throughput,fig9_life",
        help="comma-separated bench names to compare (default: %(default)s)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="fractional throughput drop that counts as a regression "
        "(default: %(default)s)",
    )
    # shm/* is advisory because the futex-parked rings make every size a
    # scheduler-luck measurement on a single-core host: a 1 MB token dwarfs
    # the ring and forces producer/consumer lockstep (269-377 MB/s across
    # identical-binary runs, +-30%), and small sizes are no better —
    # back-to-back size=3000 runs of the same binary measured 160-295
    # tokens/s. A 10% gate on any of them only flakes. The shm win itself
    # is still gated, in-binary, by fig6_throughput --check-shm (>=2x over
    # TCP loopback at 1 kB on multi-core hosts).
    # fig9_life's leaf=* configs are the wall-clock naive/LUT kernel
    # microbench: real CPU time on a shared host, so cross-run deltas are
    # noise. The LUT win is gated in-binary by fig9_life --check-leaf
    # (>= 3x on multi-core hosts); only fig9's deterministic simulated
    # world=* series carry the comparator gate.
    ap.add_argument(
        "--advisory-prefixes",
        default="dps/,sockets/,shm/,leaf=",
        help="comma-separated config prefixes whose regressions are "
        "reported but not fatal (wall-clock loopback noise; default: "
        "%(default)s)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    watched = set(args.benches.split(","))
    advisory = tuple(p for p in args.advisory_prefixes.split(",") if p)

    regressions = []
    compared = 0
    for key in sorted(base):
        bench, config = key
        if bench not in watched or key not in cur:
            continue
        compared += 1
        b, c = base[key], cur[key]
        delta = (c - b) / b if b > 0 else 0.0
        marker = ""
        if b > 0 and c < b * (1.0 - args.threshold):
            if config.startswith(advisory):
                marker = "  (noisy wall-clock config, not gated)"
            else:
                marker = "  <-- REGRESSION"
                regressions.append((bench, config, b, c, delta))
        print(f"{bench:20s} {config:28s} {b:10.3f} -> {c:10.3f} "
              f"({delta:+7.1%}){marker}")

    if compared == 0:
        print("bench_compare: no overlapping configs to compare", file=sys.stderr)
        return 1
    if regressions:
        print(
            f"bench_compare: {len(regressions)} config(s) regressed more "
            f"than {args.threshold:.0%} vs {args.baseline}",
            file=sys.stderr,
        )
        return 1
    print(f"bench_compare: {compared} configs within {args.threshold:.0%} "
          f"of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
