#!/usr/bin/env python3
"""DPS-specific lint pass (registered as ctest `Lint.DpsLint`).

Checks project invariants that neither the compiler nor the generic
sanitizers can express:

  1. token-identify   every SimpleToken/ComplexToken subclass carries
                      DPS_IDENTIFY(...) in the same file, so the wire
                      decoder can always find its factory.
  2. raw-primitives   src/ uses dps::Mutex / dps::MutexLock / dps::CondVar
                      (the Clang-thread-safety-annotated wrappers in
                      util/thread_annotations.hpp) instead of the raw std::
                      types, and spawns std::thread only from the known
                      thread-owning translation units.
  3. include-cpp      no `#include` of a .cpp file anywhere.
  4. tsan-coverage    every gtest suite name in tests/ is matched by the
                      tsan testPreset filter in CMakePresets.json, or is
                      explicitly opted out below with a reason. This is the
                      regression guard for the hand-enumerated filter regex:
                      a new suite that nobody lists is a lint failure, not a
                      silent gap in sanitizer coverage.
  5. live-allowlists  every RAW_SYNC_ALLOWLIST / THREAD_SPAWNER_ALLOWLIST
                      entry still names an existing file that still uses
                      the primitive it is exempted for. A dead entry is a
                      finding: a future file reusing the path would inherit
                      an exemption whose rationale no longer applies (same
                      spirit as the dead-tsan-filter rule).

Trace gating (formerly rule 2 here) moved to scripts/dps_verify.py, which
verifies it against the file's real preprocessor conditional structure
instead of a line regex.

Exit status 0 = clean; 1 = findings (printed one per line).
"""

import argparse
import json
import os
import re
import sys

# --- rule 2 allowlists ------------------------------------------------------

# Files allowed to name raw std:: synchronization primitives.
RAW_SYNC_ALLOWLIST = {
    # Defines the annotated wrappers themselves.
    "src/util/thread_annotations.hpp",
    # Reader/writer lock on the life-app band registry; the wrapper has no
    # shared mode (and clang TSA handles std::shared_mutex natively).
    "src/apps/life.hpp",
}

# Translation units that own threads (spawn + join). Everything else in src/
# must receive work through an ExecDomain or a fabric, not spawn directly.
THREAD_SPAWNER_ALLOWLIST = {
    "src/core/cluster.cpp",
    "src/core/cluster.hpp",       # failure-monitor thread member
    "src/core/controller.cpp",
    "src/kernel/kernel.cpp",
    "src/kernel/name_server.cpp",
    "src/net/chaos_fabric.cpp",
    "src/net/chaos_fabric.hpp",   # delay-delivery thread member
    "src/net/shm_fabric.cpp",
    "src/net/shm_fabric.hpp",     # inbox rx thread member
    "src/net/tcp_transport.cpp",
    "src/net/tcp_transport.hpp",  # acceptor/receiver/sender thread members
    "src/sim/domain.cpp",
    "src/sim/scheduler.cpp",
}

RAW_SYNC_PATTERN = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable"
    r"|condition_variable_any|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
RAW_THREAD_PATTERN = re.compile(r"std::(thread|jthread)\b")

# --- rule 4 opt-outs --------------------------------------------------------

# Suites deliberately absent from the tsan filter. Every entry needs a
# reason; an uncovered suite without one fails the lint. Keep this honest:
# "slow" is only a valid reason when an equivalent concurrent path is
# already covered by another tsan'd suite.
TSAN_OPT_OUT = {
    # Single-threaded serialization / pure-logic unit suites: no threads,
    # nothing for tsan to observe that the default build doesn't already.
    "Fnv": "hash function unit test, single-threaded",
    "Ptr": "intrusive-pointer unit test, single-threaded",
    "Registry": "type-registry lookup unit test, single-threaded",
    "SimpleTokens": "serialization round-trip, single-threaded",
    "ComplexTokens": "serialization round-trip, single-threaded",
    "SizedEncode": "encoder sizing unit test, single-threaded",
    "Wire": "wire-format unit test, single-threaded",
    "Envelope": "envelope encode/decode unit test, single-threaded",
    "FuzzDecode": "decoder robustness on crafted bytes, single-threaded",
    "Seeds/FuzzSeed": "parameterized decoder corpus, single-threaded",
    "Matrix": "dense-matrix helper unit test, single-threaded",
    "Stopwatch": "clock helper unit test, single-threaded",
    "Mapping": "thread-mapping arithmetic unit test, single-threaded",
    "GraphValidation": "graph shape checks raise before any thread starts",
    "Validation": "graph shape checks raise before any thread starts",
    "Graphviz": "dot-format printer unit test, single-threaded",
    "Error": "error type unit test, single-threaded",
    "TraceQuery": "trace-buffer query logic on synthetic events, no threads",
    # Whole-application suites: the engine paths they exercise (workers,
    # flow control, split/merge, reliable delivery) are already under tsan
    # via ToUpper/FlowControl/StreamOp/Nesting/MultiPath/Chaos/Checkpoint/
    # Reentrancy/ShutdownStress; these apps multiply runtime (minutes each
    # under tsan on one core) without adding new concurrent structure.
    "Life": "app-level; engine concurrency covered by tsan'd core suites",
    "LifeApp": "app-level; engine concurrency covered by tsan'd core suites",
    "LifeFast": "leaf-kernel bit-identity and backend-registry unit tests, "
                "single-threaded",
    "Sweep/LifeGraphParam": "app-level parameterization of the Life suite",
    "Lu": "app-level; engine concurrency covered by tsan'd core suites",
    "LuApp": "app-level; engine concurrency covered by tsan'd core suites",
    "Sweep/LuSizes": "app-level parameterization of the Lu suite",
    "Sweep/LuVariant": "app-level parameterization of the Lu suite",
    "MatMulApp": "app-level; engine concurrency covered by tsan'd core suites",
    "Sweep/MatMulParam": "app-level parameterization of the MatMul suite",
    "VideoApp": "app-level; engine concurrency covered by tsan'd core suites",
    "StreamApp": "app-level; the flushTokens engine path it leans on is "
                 "tsan'd via the StreamOp suite",
    "RingApp": "app-level; engine concurrency covered by tsan'd core suites",
    "Seeds/RandomPipeline": "randomized app graphs; engine covered by "
                            "tsan'd core suites",
    "LoadBalancing": "route statistics over engine paths tsan'd elsewhere",
    "Services": "cross-app graph calls ride the same tsan'd controller path",
    "Spmd": "launches subprocesses; tsan must target each process, not the "
            "test harness",
    "ErrorPaths": "error propagation over engine paths tsan'd elsewhere",
    "Lint": "python lint process, not a C++ test binary",
}

TEST_MACRO = re.compile(
    r"^\s*(?:TEST|TEST_F|TEST_P|TYPED_TEST|TYPED_TEST_P)\s*\(\s*"
    r"([A-Za-z_][A-Za-z0-9_]*)\s*,",
    re.M,
)
INSTANTIATE_MACRO = re.compile(
    r"^\s*INSTANTIATE_TEST_SUITE_P\s*\(\s*([A-Za-z_][A-Za-z0-9_]*)\s*,\s*"
    r"([A-Za-z_][A-Za-z0-9_]*)\s*,",
    re.M,
)

CPP_EXTS = (".hpp", ".cpp", ".h", ".cc", ".hh")


def iter_sources(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, dirnames, filenames in os.walk(base):
            # Negative-compile fixtures violate the rules on purpose.
            dirnames[:] = [d for d in dirnames
                           if d not in ("static_checks", "build")]
            for fn in sorted(filenames):
                if fn.endswith(CPP_EXTS):
                    path = os.path.join(dirpath, fn)
                    yield os.path.relpath(path, root).replace(os.sep, "/")


def read(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8") as f:
        return f.read()


def strip_comments(text):
    """Blank out // and /* */ comment bodies, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:end]))
            i = end
        elif c in "\"'":
            # Skip string/char literals so "std::mutex" in a message is fine.
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(text[i:min(j + 1, n)])
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# --- rule 1: token-identify -------------------------------------------------

TOKEN_BASE = re.compile(
    r"\b(?:class|struct)\s+([A-Za-z_][A-Za-z0-9_]*)\s*(?:final\s*)?:"
    r"[^({;]*\bpublic\s+(?:dps::)?(?:SimpleToken|ComplexToken)\b"
)


def check_token_identify(root, findings):
    for rel in iter_sources(root, ["src", "tests", "examples", "bench"]):
        text = read(root, rel)
        for m in TOKEN_BASE.finditer(text):
            name = m.group(1)
            if not re.search(r"DPS_IDENTIFY\s*\(\s*%s\s*\)" % re.escape(name),
                             text):
                line = text.count("\n", 0, m.start()) + 1
                findings.append(
                    f"{rel}:{line}: token-identify: token class '{name}' has "
                    f"no DPS_IDENTIFY({name}) — the decoder cannot "
                    f"instantiate it from the wire")


# --- rule 2: raw-primitives -------------------------------------------------

def check_raw_primitives(root, findings):
    for rel in iter_sources(root, ["src"]):
        text = strip_comments(read(root, rel))
        if rel not in RAW_SYNC_ALLOWLIST:
            for lineno, line in enumerate(text.splitlines(), 1):
                m = RAW_SYNC_PATTERN.search(line)
                if m:
                    findings.append(
                        f"{rel}:{lineno}: raw-primitives: std::{m.group(1)} — "
                        f"use dps::Mutex/MutexLock/CondVar from "
                        f"util/thread_annotations.hpp so clang TSA sees it")
        if rel not in THREAD_SPAWNER_ALLOWLIST:
            for lineno, line in enumerate(text.splitlines(), 1):
                m = RAW_THREAD_PATTERN.search(line)
                if m:
                    findings.append(
                        f"{rel}:{lineno}: raw-primitives: std::{m.group(1)} "
                        f"outside the thread-spawner allowlist — dispatch "
                        f"through an ExecDomain, or add the file to "
                        f"THREAD_SPAWNER_ALLOWLIST with a rationale")


# --- rule 3: include-cpp ----------------------------------------------------

INCLUDE_CPP = re.compile(r'^\s*#\s*include\s*[<"][^<">]*\.cpp[">]')


def check_include_cpp(root, findings):
    for rel in iter_sources(root, ["src", "tests", "examples", "bench"]):
        for lineno, line in enumerate(read(root, rel).splitlines(), 1):
            if INCLUDE_CPP.match(line):
                findings.append(
                    f"{rel}:{lineno}: include-cpp: #include of a .cpp file — "
                    f"add the file to the build instead")


# --- rule 4: tsan-coverage --------------------------------------------------

def tsan_filter_names(root, findings):
    with open(os.path.join(root, "CMakePresets.json"), encoding="utf-8") as f:
        presets = json.load(f)
    for tp in presets.get("testPresets", []):
        if tp.get("name") == "tsan":
            regex = tp.get("filter", {}).get("include", {}).get("name", "")
            m = re.fullmatch(r"\^\(([^)]*)\)\\\.", regex)
            if not m:
                findings.append(
                    "CMakePresets.json: tsan-coverage: tsan filter regex is "
                    "not the expected ^(A|B|...)\\. shape; update "
                    "scripts/dps_lint.py if it was restructured")
                return regex, set()
            return regex, set(m.group(1).split("|"))
    findings.append("CMakePresets.json: tsan-coverage: no tsan testPreset")
    return "", set()


def check_tsan_coverage(root, findings):
    _, covered = tsan_filter_names(root, findings)
    suites = set()
    for rel in iter_sources(root, ["tests"]):
        text = read(root, rel)
        plain = set(TEST_MACRO.findall(text))
        suites |= plain
        for prefix, base in INSTANTIATE_MACRO.findall(text):
            suites.add(f"{prefix}/{base}")
            # The un-instantiated TEST_P base never appears as a ctest name.
            suites.discard(base)
    for suite in sorted(suites):
        if suite in covered:
            continue
        if suite in TSAN_OPT_OUT:
            continue
        findings.append(
            f"tests/: tsan-coverage: gtest suite '{suite}' is neither "
            f"matched by the tsan testPreset filter in CMakePresets.json "
            f"nor opted out in scripts/dps_lint.py TSAN_OPT_OUT (add it to "
            f"one of the two, with a reason if opting out)")
    stale = set(TSAN_OPT_OUT) - suites - {"Lint"}
    for suite in sorted(stale & covered):
        findings.append(
            f"scripts/dps_lint.py: tsan-coverage: '{suite}' is both in the "
            f"tsan filter and in TSAN_OPT_OUT; remove one")
    # Dead entries (the suite no longer exists at all) also rot the opt-out
    # list: a future suite reusing the name would inherit an exemption whose
    # recorded reason no longer applies.
    for suite in sorted(stale - covered):
        findings.append(
            f"scripts/dps_lint.py: tsan-coverage: TSAN_OPT_OUT entry "
            f"'{suite}' names a gtest suite that no longer exists; remove it")
    for suite in sorted(covered - suites):
        findings.append(
            f"CMakePresets.json: tsan-coverage: tsan filter entry '{suite}' "
            f"names a gtest suite that no longer exists; remove it")


# --- rule 5: live-allowlists ------------------------------------------------

def check_live_allowlists(root, findings):
    src_files = set(iter_sources(root, ["src"]))
    for rel in sorted(RAW_SYNC_ALLOWLIST):
        if rel not in src_files:
            findings.append(
                f"scripts/dps_lint.py: live-allowlists: RAW_SYNC_ALLOWLIST "
                f"entry '{rel}' names a file that no longer exists; remove "
                f"it")
        elif not RAW_SYNC_PATTERN.search(strip_comments(read(root, rel))):
            findings.append(
                f"scripts/dps_lint.py: live-allowlists: RAW_SYNC_ALLOWLIST "
                f"entry '{rel}' no longer uses any raw std:: sync primitive; "
                f"remove the exemption so it cannot be inherited silently")
    for rel in sorted(THREAD_SPAWNER_ALLOWLIST):
        if rel not in src_files:
            findings.append(
                f"scripts/dps_lint.py: live-allowlists: "
                f"THREAD_SPAWNER_ALLOWLIST entry '{rel}' names a file that "
                f"no longer exists; remove it")
        elif not RAW_THREAD_PATTERN.search(strip_comments(read(root, rel))):
            findings.append(
                f"scripts/dps_lint.py: live-allowlists: "
                f"THREAD_SPAWNER_ALLOWLIST entry '{rel}' no longer spawns "
                f"std::thread/std::jthread; remove the exemption so it "
                f"cannot be inherited silently")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    args = ap.parse_args()
    root = args.root

    findings = []
    check_token_identify(root, findings)
    check_raw_primitives(root, findings)
    check_include_cpp(root, findings)
    check_tsan_coverage(root, findings)
    check_live_allowlists(root, findings)

    if findings:
        for f in findings:
            print(f)
        print(f"dps_lint: {len(findings)} finding(s)")
        return 1
    print("dps_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
