// Multi-process DPS runtime: kernels, lazy application launch, SPMD bootstrap.
//
// Paper, section 4: "DPS provides a kernel that is running on all computers
// participating in the parallel program execution. ... Kernels locate each
// other either by using UDP broadcasts or by accessing a simple name
// server. ... When an application thread posts a data object to a thread
// running on a node where there is no active instance of the application,
// the kernel on that node starts a new instance of the application."
//
// This reproduction's multi-process mode is SPMD: every process runs the
// same executable and performs the same setup (collections, graphs, in the
// same order, so ids agree across processes); the process without a
// DPS_NODE environment variable is the *leader* (node 0) and drives the
// program, follower processes serve until the leader shuts them down.
// Followers are launched lazily: the first frame destined to node k spawns
// the executable with DPS_NODE=k, which registers its kernel endpoint with
// the name server; connections open lazily as in the paper.
//
//   int main(int argc, char** argv) {
//     dps::SpmdRuntime spmd(argc, argv, /*nodes=*/4);
//     dps::Application app(spmd.cluster(), "myapp");
//     ... identical setup in every process ...
//     if (!spmd.leader()) return spmd.serve();   // followers park here
//     ... leader-only: graph->call(...), print results ...
//     return 0;                                  // shuts the followers down
//   }
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "kernel/name_server.hpp"
#include "net/fabric.hpp"

namespace dps {

/// Fabric connecting the nodes of an SPMD multi-process run. Each process
/// owns the endpoint of its own node; frames to other nodes go over TCP,
/// with peers resolved through the name server and spawned on demand.
class ProcessFabric : public Fabric {
 public:
  /// `self` is this process's node; `exe`/`base_args` describe how to spawn
  /// followers (leader only).
  ProcessFabric(NodeId self, size_t node_count, std::string ns_host,
                uint16_t ns_port, std::string run_id, std::string exe,
                std::vector<std::string> base_args);
  ~ProcessFabric() override;

  void attach(NodeId self, Handler handler) override;
  void attach_batch(NodeId self, BatchHandler handler) override;
  void send(NodeId from, NodeId to, FrameKind kind,
            std::vector<std::byte> payload) override;
  void shutdown() override;
  uint64_t bytes_sent() const override;
  uint64_t messages_sent() const override;

  /// Registers this node's endpoint with the name server. Call once the
  /// handler is attached.
  void announce();

  /// Sends the shutdown frame to every follower that was started.
  void stop_followers();

  /// True after a kShutdown frame arrived (followers poll this to serve).
  bool shutdown_requested() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// SPMD bootstrap helper: decides the process role from the environment,
/// builds the multi-process cluster, and implements the follower park loop.
class SpmdRuntime {
 public:
  /// Reads DPS_NODE / DPS_NAMESERVER / DPS_RUN from the environment; when
  /// absent, this process becomes the leader and starts a name server.
  SpmdRuntime(int argc, char** argv, int nodes);
  ~SpmdRuntime();

  bool leader() const { return node_ == 0; }
  NodeId node() const { return node_; }
  Cluster& cluster() { return *cluster_; }

  /// Follower main tail: blocks until the leader's shutdown, returns 0.
  int serve();

 private:
  NodeId node_ = 0;
  std::unique_ptr<NameServerDaemon> name_server_;  // leader only
  std::unique_ptr<Cluster> cluster_;
  ProcessFabric* fabric_ = nullptr;  // owned by cluster_
};

}  // namespace dps
