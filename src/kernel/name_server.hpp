// TCP name server — the multi-process equivalent of the paper's "simple
// name server" through which DPS kernels locate each other.
//
// Protocol: one frame per request over a fresh connection (fits the very
// low request rate of kernel discovery). Payload = command string +
// arguments, written with the wire Writer:
//   "publish" name value   -> reply "ok"
//   "lookup"  name         -> reply value ("" when absent)
//   "wait"    name         -> blocks until published, then replies value
//   "list"                 -> reply space-joined names
#pragma once

#include <memory>
#include <string>

#include "core/tenant.hpp"
#include "net/name_registry.hpp"
#include "net/socket.hpp"
#include "sim/domain.hpp"

namespace dps {

/// In-process daemon serving the registry over TCP (run it in the test or
/// leader process; kernels of other processes connect by port).
class NameServerDaemon {
 public:
  /// Binds 127.0.0.1:port (0 = ephemeral) and starts serving.
  explicit NameServerDaemon(uint16_t port = 0);
  ~NameServerDaemon();

  uint16_t port() const;
  NameRegistry& registry();
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Client-side access to a remote name server.
class NameClient {
 public:
  NameClient(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  void publish(const std::string& name, const std::string& value);
  /// Atomic publish-if-absent; true when this caller won the claim.
  bool claim(const std::string& name, const std::string& value);
  /// Non-blocking: empty string when absent.
  std::string lookup(const std::string& name);
  /// Blocks until the name is published.
  std::string wait_for(const std::string& name);

  // --- service-mesh tenant directory (docs/SERVICE_MESH.md) -----------------
  /// Registers tenant `name` in the shared directory: claims a cluster-wide
  /// unique id and publishes "tenant/<name>" with the same record codec the
  /// in-process Cluster uses, so kernels of every process resolve the same
  /// identity and budgets. Idempotent by name — a kernel re-joining (tenant
  /// churn) gets the id and budgets of the first registration back.
  TenantId register_tenant(const std::string& name,
                           const TenantConfig& config = {});

  /// Reads tenant `name`'s record; false when it is not registered.
  bool tenant(const std::string& name, TenantId* id, TenantConfig* config);

 private:
  std::string request(const std::string& cmd, const std::string& a,
                      const std::string& b);
  std::string host_;
  uint16_t port_;
};

}  // namespace dps
