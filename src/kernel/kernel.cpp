#include "kernel/kernel.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <thread>

#include "net/framing.hpp"
#include "net/shm_fabric.hpp"
#include "util/logging.hpp"

namespace dps {

// ---------------------------------------------------------------------------
// ProcessFabric
// ---------------------------------------------------------------------------

struct ProcessFabric::Impl {
  NodeId self;
  size_t node_count;
  std::string ns_host;
  uint16_t ns_port;
  std::string run_id;
  std::string exe;
  std::vector<std::string> base_args;

  TcpListener listener;
  std::thread acceptor;
  Handler handler;
  BatchHandler batch_handler;

  /// Intra-node fast path: when two kernels share a host (the common case
  /// for this SPMD runtime) and POSIX shm is usable, data frames bypass the
  /// loopback sockets and go through a ShmPeerTx into the peer's ShmInbox.
  /// The TCP connection is still established and carries kShutdown, so
  /// mixed deployments (DPS_SHM=0 on one side, or shm probe failure)
  /// degrade to pure TCP transparently. Created in announce(), before any
  /// traffic; only the rx thread and senders touch it afterwards.
  std::unique_ptr<ShmInbox> shm_inbox;

  Mutex mu;
  CondVar cv;
  std::map<NodeId, std::unique_ptr<TcpConn>> out DPS_GUARDED_BY(mu);
  std::map<NodeId, std::unique_ptr<ShmPeerTx>> shm_out DPS_GUARDED_BY(mu);
  std::set<NodeId> shm_failed DPS_GUARDED_BY(mu);  // negotiated down to TCP
  /// Per-connection write locks (one writer at a time per socket). The map
  /// itself is guarded by mu; the pointed-to mutexes are their own
  /// capabilities, locked without mu held.
  std::map<NodeId, std::unique_ptr<Mutex>> out_mu DPS_GUARDED_BY(mu);
  std::vector<std::thread> receivers DPS_GUARDED_BY(mu);
  std::vector<pid_t> children DPS_GUARDED_BY(mu);
  bool down DPS_GUARDED_BY(mu) = false;
  bool shutdown_flag DPS_GUARDED_BY(mu) = false;
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> messages{0};

  std::string endpoint_key(NodeId node) const {
    return run_id + "/node" + std::to_string(node);
  }

  /// shm_open names allow exactly one leading slash, so the run id is
  /// sanitized to [A-Za-z0-9-] before use.
  std::string shm_segment_name(NodeId node) const {
    std::string s = "/dps-";
    for (const char c : run_id) {
      s += std::isalnum(static_cast<unsigned char>(c)) ? c : '-';
    }
    s += "-n" + std::to_string(node);
    return s;
  }

  /// Frames arriving over shared memory funnel into the same handling as
  /// the TCP receive loop: kShutdown trips the serve-loop flag, everything
  /// else goes to the (preferably batched) controller handler.
  void deliver_shm(std::vector<NodeMessage>&& batch) {
    size_t keep = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      NodeMessage& m = batch[i];
      if (m.kind == FrameKind::kShutdown) {
        MutexLock lock(mu);
        shutdown_flag = true;
        cv.notify_all();
        continue;
      }
      // Guard against self-move: with no shutdown frame in the batch the
      // compaction is the identity and must leave each payload untouched.
      if (keep != i) batch[keep] = std::move(m);
      ++keep;
    }
    batch.resize(keep);
    if (batch.empty()) return;
    if (batch_handler) {
      batch_handler(std::move(batch));
      return;
    }
    for (NodeMessage& m : batch) handler(std::move(m));
  }

  /// Returns the shm sender for `to`, opening it on first use, or nullptr
  /// when the peer negotiated down to TCP. Callers must already hold a live
  /// TCP connection (connection_to), which guarantees the peer has
  /// announced — and the shm key is published before the TCP endpoint, so
  /// an empty lookup here means "peer has no shm", not "peer not up yet".
  ShmPeerTx* shm_tx_for(NodeId to) {
    if (!shm_available()) return nullptr;
    {
      MutexLock lock(mu);
      auto it = shm_out.find(to);
      if (it != shm_out.end()) return it->second.get();
      if (shm_failed.count(to) != 0) return nullptr;
    }
    std::unique_ptr<ShmPeerTx> tx;
    try {
      NameClient ns(ns_host, ns_port);
      const std::string seg = ns.lookup(endpoint_key(to) + "/shm");
      if (!seg.empty()) tx = std::make_unique<ShmPeerTx>(seg, self);
    } catch (const Error& e) {
      DPS_WARN("kernel " << self << ": shm to node " << to
                         << " unavailable, staying on tcp: " << e.what());
    }
    MutexLock lock(mu);
    if (!tx) {
      shm_failed.insert(to);
      return nullptr;
    }
    auto it = shm_out.emplace(to, std::move(tx)).first;  // first open wins
    return it->second.get();
  }

  void accept_loop() {
    for (;;) {
      TcpConn conn = listener.accept();
      if (!conn.valid()) return;
      MutexLock lock(mu);
      if (down) return;
      receivers.emplace_back(
          [this, c = std::make_shared<TcpConn>(std::move(conn))] {
            receive_loop(*c);
          });
    }
  }

  void receive_loop(TcpConn& conn) {
    try {
      Frame hello;
      if (!read_frame(conn, &hello) || hello.kind != FrameKind::kHello) return;
      const NodeId peer = hello.from;
      Frame f;
      while (read_frame(conn, &f)) {
        if (f.kind == FrameKind::kShutdown) {
          MutexLock lock(mu);
          shutdown_flag = true;
          cv.notify_all();
          continue;
        }
        handler(NodeMessage{peer, f.kind, std::move(f.payload)});
      }
    } catch (const Error& e) {
      MutexLock lock(mu);
      if (!down) {
        DPS_WARN("process fabric node " << self << " receiver: " << e.what());
      }
    }
  }

  /// Spawns the follower process for `node` as a detached grandchild (the
  /// intermediate child exits immediately, so no zombies accumulate).
  void spawn_node(NodeId node) {
    const pid_t child = ::fork();
    if (child < 0) raise(Errc::kState, "fork failed");
    if (child == 0) {
      const pid_t grand = ::fork();
      if (grand != 0) ::_exit(0);
      // Grandchild: become the follower. setenv is mt-unsafe in general,
      // but this freshly-forked process is single-threaded until execv —
      // nothing can race the environment writes.
      // NOLINTBEGIN(concurrency-mt-unsafe)
      ::setenv("DPS_NODE", std::to_string(node).c_str(), 1);
      ::setenv("DPS_NAMESERVER",
               (ns_host + ":" + std::to_string(ns_port)).c_str(), 1);
      ::setenv("DPS_RUN", run_id.c_str(), 1);
      // NOLINTEND(concurrency-mt-unsafe)
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(exe.c_str()));
      for (auto& a : base_args) argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      ::execv(exe.c_str(), argv.data());
      std::fprintf(stderr, "dps kernel: execv(%s) failed: %s\n", exe.c_str(),
                   std::strerror(errno));
      ::_exit(127);
    }
    int status = 0;
    ::waitpid(child, &status, 0);  // reap the intermediate child
  }

  TcpConn& connection_to(NodeId to) {
    {
      MutexLock lock(mu);
      auto it = out.find(to);
      if (it != out.end()) return *it->second;
      if (out_mu.find(to) == out_mu.end()) {
        out_mu.emplace(to, std::make_unique<Mutex>());
      }
    }
    NameClient ns(ns_host, ns_port);
    std::string endpoint = ns.lookup(endpoint_key(to));
    if (endpoint.empty()) {
      // Lazy application launch (paper, section 4): the first token bound
      // for a node with no running instance starts one there. The claim is
      // an atomic spawn lock so concurrent senders start one process only.
      if (ns.claim("spawn/" + endpoint_key(to),
                   std::to_string(::getpid()))) {
        DPS_INFO("kernel " << self << " launching node " << to);
        spawn_node(to);
      }
      endpoint = ns.wait_for(endpoint_key(to));
    }
    const size_t colon = endpoint.rfind(':');
    DPS_CHECK(colon != std::string::npos, "malformed endpoint");
    TcpConn conn = TcpConn::connect(
        endpoint.substr(0, colon),
        static_cast<uint16_t>(std::stoi(endpoint.substr(colon + 1))));
    Frame hello;
    hello.kind = FrameKind::kHello;
    hello.from = self;
    write_frame(conn, hello);
    MutexLock lock(mu);
    auto it = out.find(to);
    if (it != out.end()) return *it->second;  // lost a connect race
    it = out.emplace(to, std::make_unique<TcpConn>(std::move(conn))).first;
    return *it->second;
  }
};

ProcessFabric::ProcessFabric(NodeId self, size_t node_count,
                             std::string ns_host, uint16_t ns_port,
                             std::string run_id, std::string exe,
                             std::vector<std::string> base_args)
    : impl_(std::make_unique<Impl>()) {
  impl_->self = self;
  impl_->node_count = node_count;
  impl_->ns_host = std::move(ns_host);
  impl_->ns_port = ns_port;
  impl_->run_id = std::move(run_id);
  impl_->exe = std::move(exe);
  impl_->base_args = std::move(base_args);
  impl_->listener = TcpListener::bind(0);
  impl_->acceptor = std::thread([this] { impl_->accept_loop(); });
}

ProcessFabric::~ProcessFabric() { shutdown(); }

void ProcessFabric::attach(NodeId self, Handler handler) {
  if (self != impl_->self) return;  // other nodes live in other processes
  impl_->handler = std::move(handler);
}

void ProcessFabric::attach_batch(NodeId self, BatchHandler handler) {
  if (self != impl_->self) return;
  impl_->batch_handler = std::move(handler);
}

void ProcessFabric::announce() {
  NameClient ns(impl_->ns_host, impl_->ns_port);
  if (shm_available() && !impl_->shm_inbox) {
    try {
      impl_->shm_inbox = std::make_unique<ShmInbox>(
          impl_->shm_segment_name(impl_->self), impl_->self,
          static_cast<uint32_t>(impl_->node_count), size_t{1} << 20);
      impl_->shm_inbox->start(
          [impl = impl_.get()](std::vector<NodeMessage>&& batch) {
            impl->deliver_shm(std::move(batch));
          });
      // Published before the TCP endpoint: senders resolve the TCP key
      // first (connection_to), so by the time they probe for "/shm" it is
      // guaranteed to be visible — negotiation cannot race.
      ns.publish(impl_->endpoint_key(impl_->self) + "/shm",
                 impl_->shm_inbox->segment_name());
    } catch (const Error& e) {
      impl_->shm_inbox.reset();
      DPS_WARN("kernel " << impl_->self
                         << ": shm inbox unavailable, serving tcp only: "
                         << e.what());
    }
  }
  ns.publish(impl_->endpoint_key(impl_->self),
             "127.0.0.1:" + std::to_string(impl_->listener.port()));
}

void ProcessFabric::send(NodeId from, NodeId to, FrameKind kind,
                         std::vector<std::byte> payload) {
  DPS_CHECK(from == impl_->self, "send from a non-local node");
  DPS_CHECK(to != impl_->self, "local traffic must not reach the fabric");
  // Establishing the TCP connection first also spawns the peer on demand
  // and blocks until it announced, so the shm probe below is definitive.
  TcpConn& conn = impl_->connection_to(to);
  Frame f;
  f.kind = kind;
  f.from = from;
  f.payload = std::move(payload);
  impl_->messages.fetch_add(1, std::memory_order_relaxed);
  impl_->bytes.fetch_add(frame_wire_size(f), std::memory_order_relaxed);
  if (ShmPeerTx* tx = impl_->shm_tx_for(to)) {
    if (tx->send(kind, nullptr, 0, f.payload.data(), f.payload.size())) {
      return;
    }
    // Ring closed under us (peer tearing down): fall back to the socket so
    // the frame still gets a best-effort delivery attempt.
  }
  Mutex* conn_mu;
  {
    MutexLock lock(impl_->mu);
    conn_mu = impl_->out_mu.at(to).get();
  }
  MutexLock lock(*conn_mu);
  write_frame(conn, f);
}

void ProcessFabric::stop_followers() {
  for (NodeId n = 0; n < impl_->node_count; ++n) {
    if (n == impl_->self) continue;
    NameClient ns(impl_->ns_host, impl_->ns_port);
    if (ns.lookup(impl_->endpoint_key(n)).empty()) continue;  // never started
    try {
      TcpConn& conn = impl_->connection_to(n);
      Frame f;
      f.kind = FrameKind::kShutdown;
      f.from = impl_->self;
      Mutex* conn_mu;
      {
        MutexLock lock(impl_->mu);
        conn_mu = impl_->out_mu.at(n).get();
      }
      MutexLock lock(*conn_mu);
      write_frame(conn, f);
    } catch (const Error& e) {
      DPS_WARN("stop_followers: node " << n << ": " << e.what());
    }
  }
}

bool ProcessFabric::shutdown_requested() const {
  MutexLock lock(impl_->mu);
  return impl_->shutdown_flag;
}

void ProcessFabric::shutdown() {
  std::vector<std::thread> receivers;
  {
    MutexLock lock(impl_->mu);
    if (impl_->down) return;
    impl_->down = true;
    receivers.swap(impl_->receivers);
  }
  impl_->listener.close();
  {
    MutexLock lock(impl_->mu);
    for (auto& [node, conn] : impl_->out) conn->close();
  }
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  for (auto& r : receivers) {
    if (r.joinable()) r.join();
  }
  // Stopping the inbox marks the segment closed, which unblocks any remote
  // producer parked on a full ring, then unlinks the segment.
  if (impl_->shm_inbox) impl_->shm_inbox->stop();
}

uint64_t ProcessFabric::bytes_sent() const {
  return impl_->bytes.load(std::memory_order_relaxed);
}
uint64_t ProcessFabric::messages_sent() const {
  return impl_->messages.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// SpmdRuntime
// ---------------------------------------------------------------------------

namespace {

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  DPS_CHECK(n > 0, "cannot resolve /proc/self/exe");
  buf[n] = '\0';
  return std::string(buf);
}

}  // namespace

SpmdRuntime::SpmdRuntime(int argc, char** argv, int nodes) {
  std::string ns_host = "127.0.0.1";
  uint16_t ns_port = 0;
  std::string run_id;

  const char* node_env = std::getenv("DPS_NODE");
  if (node_env == nullptr) {
    node_ = 0;
    name_server_ = std::make_unique<NameServerDaemon>(0);
    ns_port = name_server_->port();
    run_id = "run" + std::to_string(::getpid());
  } else {
    node_ = static_cast<NodeId>(std::atoi(node_env));
    const char* ns_env = std::getenv("DPS_NAMESERVER");
    DPS_CHECK(ns_env != nullptr, "follower without DPS_NAMESERVER");
    const std::string ns(ns_env);
    const size_t colon = ns.rfind(':');
    DPS_CHECK(colon != std::string::npos, "malformed DPS_NAMESERVER");
    ns_host = ns.substr(0, colon);
    ns_port = static_cast<uint16_t>(std::stoi(ns.substr(colon + 1)));
    const char* run_env = std::getenv("DPS_RUN");
    DPS_CHECK(run_env != nullptr, "follower without DPS_RUN");
    run_id = run_env;
  }

  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  auto fabric = std::make_shared<ProcessFabric>(
      node_, static_cast<size_t>(nodes), ns_host, ns_port, run_id,
      self_exe_path(), std::move(args));
  fabric_ = fabric.get();

  ClusterConfig cfg = ClusterConfig::inproc(nodes);
  cfg.external_fabric = fabric;
  cfg.local_node = node_;
  cluster_ = std::make_unique<Cluster>(std::move(cfg));
  // The leader announces now (nothing sends to it until it spawns the
  // senders itself). Followers announce in serve(): their endpoint may only
  // become visible once their collections and graphs exist, or the first
  // envelope would beat the setup.
  if (leader()) fabric_->announce();
}

SpmdRuntime::~SpmdRuntime() {
  if (leader()) fabric_->stop_followers();
  cluster_->shutdown();
}

int SpmdRuntime::serve() {
  DPS_CHECK(!leader(), "serve() is the follower's main tail");
  fabric_->announce();  // setup is complete; traffic may now arrive
  while (!fabric_->shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return 0;
}

}  // namespace dps
