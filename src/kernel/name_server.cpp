#include "kernel/name_server.hpp"

#include <thread>
#include <vector>

#include "net/framing.hpp"
#include "serial/wire.hpp"
#include "util/logging.hpp"

namespace dps {

struct NameServerDaemon::Impl {
  WallDomain domain;
  NameRegistry registry{domain};
  TcpListener listener;
  std::thread acceptor;
  Mutex mu;
  std::vector<std::thread> sessions;
  bool stopping = false;

  void serve(TcpConn conn) {
    try {
      Frame f;
      if (!read_frame(conn, &f)) return;
      Reader r(f.payload.data(), f.payload.size());
      const std::string cmd = r.get_string();
      std::string reply;
      if (cmd == "publish") {
        const std::string name = r.get_string();
        const std::string value = r.get_string();
        registry.publish(name, value);
        reply = "ok";
      } else if (cmd == "claim") {
        const std::string name = r.get_string();
        const std::string value = r.get_string();
        reply = registry.publish_if_absent(name, value) ? "ok" : "taken";
      } else if (cmd == "lookup") {
        reply = registry.lookup(r.get_string()).value_or("");
      } else if (cmd == "wait") {
        reply = registry.wait_for(r.get_string());
      } else if (cmd == "list") {
        for (const auto& n : registry.names()) {
          if (!reply.empty()) reply += ' ';
          reply += n;
        }
      } else {
        reply = "error: unknown command";
      }
      Writer w;
      w.put_string(reply);
      Frame out;
      out.kind = FrameKind::kHello;
      out.payload = w.take();
      write_frame(conn, out);
    } catch (const Error& e) {
      DPS_WARN("name server session: " << e.what());
    }
  }

  void accept_loop() {
    for (;;) {
      TcpConn conn = listener.accept();
      if (!conn.valid()) return;  // listener closed
      MutexLock lock(mu);
      if (stopping) return;
      sessions.emplace_back(
          [this, c = std::make_shared<TcpConn>(std::move(conn))]() mutable {
            serve(std::move(*c));
          });
    }
  }
};

NameServerDaemon::NameServerDaemon(uint16_t port)
    : impl_(std::make_unique<Impl>()) {
  impl_->listener = TcpListener::bind(port);
  impl_->acceptor = std::thread([this] { impl_->accept_loop(); });
}

NameServerDaemon::~NameServerDaemon() { stop(); }

uint16_t NameServerDaemon::port() const { return impl_->listener.port(); }
NameRegistry& NameServerDaemon::registry() { return impl_->registry; }

void NameServerDaemon::stop() {
  {
    MutexLock lock(impl_->mu);
    if (impl_->stopping) return;
    impl_->stopping = true;
  }
  impl_->listener.close();
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  std::vector<std::thread> sessions;
  {
    MutexLock lock(impl_->mu);
    sessions.swap(impl_->sessions);
  }
  for (auto& s : sessions) {
    if (s.joinable()) s.join();
  }
}

std::string NameClient::request(const std::string& cmd, const std::string& a,
                                const std::string& b) {
  TcpConn conn = TcpConn::connect(host_, port_);
  Writer w;
  w.put_string(cmd);
  w.put_string(a);  // handlers read only what their command needs;
  w.put_string(b);  // trailing arguments are simply left unread

  Frame f;
  f.kind = FrameKind::kHello;
  f.payload = w.take();
  write_frame(conn, f);
  Frame reply;
  if (!read_frame(conn, &reply)) {
    raise(Errc::kNetwork, "name server closed the connection");
  }
  Reader r(reply.payload.data(), reply.payload.size());
  return r.get_string();
}

void NameClient::publish(const std::string& name, const std::string& value) {
  const std::string reply = request("publish", name, value);
  if (reply != "ok") raise(Errc::kProtocol, "publish failed: " + reply);
}

bool NameClient::claim(const std::string& name, const std::string& value) {
  return request("claim", name, value) == "ok";
}

std::string NameClient::lookup(const std::string& name) {
  return request("lookup", name, "");
}

std::string NameClient::wait_for(const std::string& name) {
  return request("wait", name, "");
}

TenantId NameClient::register_tenant(const std::string& name,
                                     const TenantConfig& config) {
  for (;;) {
    const std::string existing = lookup(kTenantRecordPrefix + name);
    if (!existing.empty()) {
      TenantId id = kNoTenant;
      TenantConfig recorded;
      if (!decode_tenant_record(existing, &id, &recorded)) {
        raise(Errc::kProtocol, "malformed tenant record for '" + name + "'");
      }
      return id;  // re-join: keep the first registration's identity
    }
    // Two-step allocation over the claim primitive: "tenant/#<i>" names are
    // id reservations, "tenant/<name>" the directory entry. A reservation
    // burned by a lost name race stays burned — ids only need uniqueness.
    TenantId id = 1;
    while (!claim(kTenantRecordPrefix + ("#" + std::to_string(id)), name)) {
      ++id;
    }
    if (claim(kTenantRecordPrefix + name, encode_tenant_record(id, config))) {
      return id;
    }
  }
}

bool NameClient::tenant(const std::string& name, TenantId* id,
                        TenantConfig* config) {
  const std::string rec = lookup(kTenantRecordPrefix + name);
  if (rec.empty()) return false;
  if (!decode_tenant_record(rec, id, config)) {
    raise(Errc::kProtocol, "malformed tenant record for '" + name + "'");
  }
  return true;
}

}  // namespace dps
