#include "la/factor.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dps::la {

void getrf_panel(Matrix& a, std::vector<int>& pivots) {
  const size_t m = a.rows(), n = a.cols();
  DPS_CHECK(m >= n, "getrf_panel needs a tall panel (m >= n)");
  pivots.assign(n, 0);
  for (size_t k = 0; k < n; ++k) {
    // Partial pivoting: the largest magnitude in column k, rows k..m-1.
    size_t p = k;
    double best = std::fabs(a.at(k, k));
    for (size_t r = k + 1; r < m; ++r) {
      const double v = std::fabs(a.at(r, k));
      if (v > best) {
        best = v;
        p = r;
      }
    }
    pivots[k] = static_cast<int>(p);
    a.swap_rows(k, p);
    const double akk = a.at(k, k);
    if (akk == 0.0) continue;  // singular column; factors stay valid
    for (size_t r = k + 1; r < m; ++r) {
      const double l = a.at(r, k) / akk;
      a.at(r, k) = l;
      if (l == 0.0) continue;
      for (size_t c = k + 1; c < n; ++c) a.at(r, c) -= l * a.at(k, c);
    }
  }
}

void apply_pivots(Matrix& a, const std::vector<int>& pivots) {
  for (size_t k = 0; k < pivots.size(); ++k) {
    a.swap_rows(k, static_cast<size_t>(pivots[k]));
  }
}

void trsm_lower_unit(const Matrix& l, Matrix& b) {
  const size_t n = l.rows();
  DPS_CHECK(l.cols() == n && b.rows() == n, "trsm size mismatch");
  const size_t w = b.cols();
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < i; ++k) {
      const double lik = l.at(i, k);
      if (lik == 0.0) continue;
      for (size_t j = 0; j < w; ++j) b.at(i, j) -= lik * b.at(k, j);
    }
    // unit diagonal: no division
  }
}

void lu_sequential(Matrix& a, std::vector<int>& pivots) {
  DPS_CHECK(a.rows() == a.cols(), "lu_sequential needs a square matrix");
  getrf_panel(a, pivots);  // the unblocked panel code handles m == n
}

Matrix permute_rows(const Matrix& a, const std::vector<int>& pivots) {
  Matrix p = a;
  apply_pivots(p, pivots);
  return p;
}

Matrix lu_reconstruct(const Matrix& lu, const std::vector<int>& pivots) {
  const size_t n = lu.rows();
  DPS_CHECK(lu.cols() == n, "lu_reconstruct needs square factors");
  DPS_CHECK(pivots.size() == n, "pivot count mismatch");
  Matrix l = Matrix::identity(n);
  Matrix u(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      if (r > c) {
        l.at(r, c) = lu.at(r, c);
      } else {
        u.at(r, c) = lu.at(r, c);
      }
    }
  }
  return gemm(l, u);
}

}  // namespace dps::la
