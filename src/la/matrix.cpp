#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dps::la {

Matrix Matrix::block(size_t r0, size_t c0, size_t br, size_t bc) const {
  DPS_CHECK(r0 + br <= rows_ && c0 + bc <= cols_, "block out of range");
  Matrix b(br, bc);
  for (size_t r = 0; r < br; ++r) {
    std::copy_n(&a_[(r0 + r) * cols_ + c0], bc, &b.a_[r * bc]);
  }
  return b;
}

void Matrix::set_block(size_t r0, size_t c0, const Matrix& b) {
  DPS_CHECK(r0 + b.rows_ <= rows_ && c0 + b.cols_ <= cols_,
            "set_block out of range");
  for (size_t r = 0; r < b.rows_; ++r) {
    std::copy_n(&b.a_[r * b.cols_], b.cols_, &a_[(r0 + r) * cols_ + c0]);
  }
}

void Matrix::fill_random(uint64_t seed) {
  uint64_t s = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (double& x : a_) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    // Map the top bits to (-0.5, 0.5); keeps LU well conditioned enough
    // with partial pivoting.
    x = (static_cast<double>(s >> 11) / 9007199254740992.0) - 0.5;
  }
}

Matrix Matrix::identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

void Matrix::zero() { std::fill(a_.begin(), a_.end(), 0.0); }

void Matrix::swap_rows(size_t r1, size_t r2) {
  DPS_CHECK(r1 < rows_ && r2 < rows_, "swap_rows out of range");
  if (r1 == r2) return;
  std::swap_ranges(&a_[r1 * cols_], &a_[r1 * cols_] + cols_, &a_[r2 * cols_]);
}

void gemm_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  DPS_CHECK(a.cols() == b.rows() && c.rows() == a.rows() &&
                c.cols() == b.cols(),
            "gemm size mismatch");
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < k; ++p) {
      const double aip = a.at(i, p);
      if (aip == 0.0) continue;
      const double* brow = b.data() + p * n;
      double* crow = c.data() + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm_acc(a, b, c);
  return c;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  DPS_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
            "max_abs_diff size mismatch");
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace dps::la
