// Dense matrix substrate for the paper's numerical experiments.
//
// The paper's Table 1 uses block-based matrix multiplication and its
// Figure 15 a block LU factorization with partial pivoting. "No optimized
// linear algebra library was used for this implementation" — likewise here:
// straightforward triple-loop kernels, which also makes the calibrated
// per-block cost model of the simulated benchmarks honest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dps::la {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), a_(rows * cols) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return a_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return a_[r * cols_ + c]; }

  double* data() { return a_.data(); }
  const double* data() const { return a_.data(); }
  size_t size() const { return a_.size(); }

  /// Extracts the block of size (br x bc) whose top-left corner is (r0, c0).
  Matrix block(size_t r0, size_t c0, size_t br, size_t bc) const;

  /// Writes `b` into this matrix at (r0, c0).
  void set_block(size_t r0, size_t c0, const Matrix& b);

  /// Fills with a reproducible pseudo-random pattern (LCG, seeded).
  void fill_random(uint64_t seed);

  /// Identity / zero helpers.
  static Matrix identity(size_t n);
  void zero();

  /// Swaps rows r1 and r2.
  void swap_rows(size_t r1, size_t r2);

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && a_ == o.a_;
  }

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<double> a_;
};

/// c += a * b  (sizes must agree; triple loop, no blocking).
void gemm_acc(const Matrix& a, const Matrix& b, Matrix& c);

/// Returns a * b.
Matrix gemm(const Matrix& a, const Matrix& b);

/// Max-abs elementwise difference; the correctness metric in tests.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Floating-point multiply-add count of an (m x k) * (k x n) product —
/// used to calibrate the simulated compute-cost model.
inline double gemm_flops(size_t m, size_t k, size_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n);
}

}  // namespace dps::la
