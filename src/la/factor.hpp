// LU factorization kernels (paper, section 5, "LU Factorization").
//
// The paper performs block LU factorization with partial pivoting in three
// steps (its equations reproduced in the comments below):
//   1. rectangular LU of the current panel [A11; A21] -> [L11; L21], U11;
//   2. triangular solve A12 = L11 * T12 (BLAS trsm) + row flipping;
//   3. trailing update A' = B - L21 * T12, recursively factorized.
// These kernels implement the sequential pieces the DPS graph distributes.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace dps::la {

/// Unblocked right-looking LU with partial pivoting of an m x n panel
/// (m >= n), in place: unit-lower L below the diagonal, U on/above.
/// pivots[k] = row index swapped with row k at step k (absolute, 0-based).
void getrf_panel(Matrix& a, std::vector<int>& pivots);

/// Applies the pivot sequence (row flipping) to a matrix with the same row
/// count as the factored panel.
void apply_pivots(Matrix& a, const std::vector<int>& pivots);

/// Solves L * X = B in place of B, where L is unit lower triangular
/// (the paper's "trsm routine in BLAS").
void trsm_lower_unit(const Matrix& l, Matrix& b);

/// Full sequential LU with partial pivoting; reference for the parallel
/// graph. Returns the combined LU factors in `a` and the pivot sequence.
void lu_sequential(Matrix& a, std::vector<int>& pivots);

/// Reconstructs P*A from packed LU factors and pivots; used by tests to
/// verify both the reference and the DPS factorization.
Matrix lu_reconstruct(const Matrix& lu, const std::vector<int>& pivots);

/// Applies `pivots` to a fresh copy of `a` (i.e. computes P*A).
Matrix permute_rows(const Matrix& a, const std::vector<int>& pivots);

/// Multiply-add count of an n x n LU — calibrates the simulated benchmarks.
inline double lu_flops(size_t n) {
  const double nd = static_cast<double>(n);
  return 2.0 / 3.0 * nd * nd * nd;
}

}  // namespace dps::la
