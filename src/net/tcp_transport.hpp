// TCP fabric: real sockets between the nodes of one cluster run.
//
// Every node owns a loopback listener; a connection from node A to node B
// is opened lazily on A's first send to B (the paper's delayed connection
// strategy: "It neither launches an application on a node nor opens a
// connection (TCP socket) to another application unless a data object
// needs to reach that node"). A hello frame announces the sender's node id;
// afterwards the socket carries frames one way, read by a per-connection
// receiver thread that feeds the destination node's handler.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/fabric.hpp"
#include "net/socket.hpp"

namespace dps {

class TcpFabric : public Fabric {
 public:
  explicit TcpFabric(size_t node_count);
  ~TcpFabric() override;

  void attach(NodeId self, Handler handler) override;
  void send(NodeId from, NodeId to, FrameKind kind,
            std::vector<std::byte> payload) override;
  void shutdown() override;
  uint64_t bytes_sent() const override;
  uint64_t messages_sent() const override;

  /// Listening port of a node (exposed for tests).
  uint16_t port_of(NodeId node) const;

  /// Human-readable node names for error reports ("torn connection from
  /// node 'alpha'"); set by the cluster, optional.
  void set_node_names(std::vector<std::string> names);

 private:
  struct NodeEnd {
    TcpListener listener;
    Handler handler;
    std::thread acceptor;
  };
  struct OutConn {
    std::mutex mu;  // serializes writers from one node to one peer
    TcpConn conn;
    bool closed = false;  // guarded by mu: set by shutdown, checked by send
  };

  void acceptor_loop(NodeId self);
  void receiver_loop(NodeId self, std::shared_ptr<TcpConn> conn);
  OutConn& out_conn(NodeId from, NodeId to);
  std::string node_label(NodeId node) const;  // caller holds mu_

  mutable std::mutex mu_;
  std::vector<std::string> names_;  // empty until set_node_names
  std::vector<std::unique_ptr<NodeEnd>> nodes_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<OutConn>> out_;
  std::vector<std::thread> receivers_;
  bool down_ = false;
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> messages_{0};
};

}  // namespace dps
