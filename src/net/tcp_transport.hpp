// TCP fabric: real sockets between the nodes of one cluster run.
//
// Every node owns a loopback listener; a connection from node A to node B
// is opened lazily on A's first send to B (the paper's delayed connection
// strategy: "It neither launches an application on a node nor opens a
// connection (TCP socket) to another application unless a data object
// needs to reach that node"). A hello frame announces the sender's node id;
// afterwards the socket carries frames one way, read by a per-connection
// receiver thread that feeds the destination node's handler.
//
// Transmission is asynchronous and batched (docs/PERFORMANCE.md): send()
// enqueues the frame on the connection's bounded byte-budget queue and
// returns; a per-peer sender thread drains the queue and coalesces every
// pending frame into one scatter-gather writev. The producing worker only
// blocks when the queue budget is exhausted (backpressure), so compute on
// the sending node overlaps the wire time of earlier tokens. Per-link FIFO
// is preserved: one queue, one sender thread, one socket per (from, to).
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/fabric.hpp"
#include "net/socket.hpp"
#include "util/thread_annotations.hpp"

namespace dps {

class TcpFabric : public Fabric {
 public:
  explicit TcpFabric(size_t node_count);
  ~TcpFabric() override;

  void attach(NodeId self, Handler handler) override;
  void attach_batch(NodeId self, BatchHandler handler) override;
  void send(NodeId from, NodeId to, FrameKind kind,
            std::vector<std::byte> payload) override;
  /// Zero-copy multicast hot path: the shared body rides the frame as a
  /// separate writev iovec, never copied into the per-frame payload. The
  /// sender releases only the owned prefix buffer to the BufferPool.
  void send_shared(NodeId from, NodeId to, FrameKind kind,
                   std::vector<std::byte> prefix, SharedPayload body) override;
  void shutdown() override;
  uint64_t bytes_sent() const override;
  uint64_t messages_sent() const override;

  /// Listening port of a node (exposed for tests).
  uint16_t port_of(NodeId node) const;

  /// Human-readable node names for error reports ("torn connection from
  /// node 'alpha'"); set by the cluster, optional.
  void set_node_names(std::vector<std::string> names);

  /// Shrinks the per-connection queue budget (tests exercise backpressure
  /// without queueing megabytes). Applies to connections opened afterwards.
  void set_send_queue_limit(size_t bytes) { queue_limit_ = bytes; }

 private:
  struct NodeEnd {
    TcpListener listener;
    Handler handler;
    BatchHandler batch_handler;  ///< preferred when set (grouped delivery)
    std::thread acceptor;
  };
  struct OutConn {
    NodeId from = 0;
    NodeId to = 0;
    uint16_t port = 0;  ///< the peer's listener; connected by the sender
    size_t queue_limit = 0;

    Mutex mu;
    CondVar space;  ///< producers wait here (backpressure)
    CondVar data;   ///< the sender thread waits here
    std::deque<Frame> queue DPS_GUARDED_BY(mu);  ///< pending frames, FIFO
    /// Wire bytes represented by `queue`.
    size_t queued_bytes DPS_GUARDED_BY(mu) = 0;
    /// No new sends accepted (shutdown started).
    bool closed DPS_GUARDED_BY(mu) = false;
    /// A write failed; the link is dead.
    bool failed DPS_GUARDED_BY(mu) = false;

    TcpConn conn;         ///< written only by the sender thread after setup
    std::thread sender;
  };

  void acceptor_loop(NodeId self);
  void receiver_loop(NodeId self, std::shared_ptr<TcpConn> conn);
  void sender_loop(OutConn& oc);
  OutConn& out_conn(NodeId from, NodeId to);
  /// Common enqueue path for send() and send_shared(): backpressure wait,
  /// FIFO queue append, stats, sender wakeup.
  void enqueue_frame(NodeId from, NodeId to, Frame f);
  std::string node_label(NodeId node) const DPS_REQUIRES(mu_);

  // Default per-connection queue budget: deep enough to decouple a worker
  // from the wire across many small tokens, small enough to bound memory
  // and keep backpressure meaningful for large ones.
  static constexpr size_t kDefaultQueueLimit = 4 << 20;  // 4 MB

  mutable Mutex mu_;
  /// Empty until set_node_names.
  std::vector<std::string> names_ DPS_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<NodeEnd>> nodes_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<OutConn>> out_
      DPS_GUARDED_BY(mu_);
  std::vector<std::thread> receivers_ DPS_GUARDED_BY(mu_);
  bool down_ DPS_GUARDED_BY(mu_) = false;
  std::atomic<size_t> queue_limit_{kDefaultQueueLimit};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> messages_{0};
};

}  // namespace dps
