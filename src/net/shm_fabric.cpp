#include "net/shm_fabric.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "serial/buffer_pool.hpp"
#include "util/error.hpp"

#ifdef DPS_TRACE
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#endif

namespace dps {
namespace {

constexpr uint32_t kShmMagic = 0x4450534d;  // "DPSM"
constexpr uint32_t kShmVersion = 1;
constexpr size_t kBatchBytes = 64 * 1024;  // mirrors FrameReader's chunk
constexpr size_t kRecordHeader = 8;
constexpr int kParkTimeoutMs = 100;  // dead-peer degradation bound

/// In-ring frame record header. Always memcpy'd: the ring is a byte
/// stream, so records are unaligned after a wrap.
struct RecordHeader {
  uint32_t length;  ///< payload bytes following this header
  uint16_t kind;    ///< FrameKind
  uint16_t pad;
};
static_assert(sizeof(RecordHeader) == kRecordHeader);
static_assert(std::is_trivially_copyable_v<RecordHeader>);

/// Segment-wide control block. The doorbell futex word is bumped by a
/// producer only when it observed the consumer's parked flag (Dekker-style
/// store-load fences on both sides make a missed wake impossible); the
/// consumer captures the doorbell *before* scanning rings so a publish
/// racing its park flips the futex compare and the wait returns at once.
struct alignas(64) SegHeader {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t peers = 0;
  uint32_t pad0 = 0;
  uint64_t ring_bytes = 0;
  alignas(64) std::atomic<uint32_t> doorbell{0};
  std::atomic<uint32_t> consumer_parked{0};
  /// Set once by the consumer on stop(): producers fail sends instead of
  /// parking on a ring nobody will drain again.
  alignas(64) std::atomic<uint32_t> closed{0};
};

/// One SPSC byte ring. head/tail are monotonically increasing byte counts;
/// position-in-ring is pos & (ring_bytes - 1). The producer owns head
/// (release), the consumer owns tail (release); each reads the other's
/// word with acquire — this is the whole cross-process protocol, and it is
/// exactly the pattern TSan models.
struct alignas(64) RingHeader {
  alignas(64) std::atomic<uint64_t> head{0};
  alignas(64) std::atomic<uint64_t> tail{0};
  /// Space futex word, bumped by the consumer after freeing space while
  /// the producer's parked flag is up.
  alignas(64) std::atomic<uint32_t> space_seq{0};
  std::atomic<uint32_t> producer_parked{0};
};

#if defined(__linux__)
void futex_wait_ms(std::atomic<uint32_t>* word, uint32_t expected, int ms) {
  timespec ts{ms / 1000, static_cast<long>(ms % 1000) * 1000000L};
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(word), FUTEX_WAIT, expected,
          &ts, nullptr, 0);
}
void futex_wake_one(std::atomic<uint32_t>* word) {
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(word), FUTEX_WAKE, 1, nullptr,
          nullptr, 0);
}
#else
// No futex off Linux: parked sides nap briefly and recheck. Correctness is
// unchanged (the park paths always recheck state), only wake latency.
void futex_wait_ms(std::atomic<uint32_t>* word, uint32_t expected, int ms) {
  (void)ms;
  if (word->load(std::memory_order_acquire) == expected) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}
void futex_wake_one(std::atomic<uint32_t>*) {}
#endif

size_t round_up_pow2(size_t v) {
  size_t p = 64;
  while (p < v) p <<= 1;
  return p;
}

size_t align_up(size_t v, size_t a) { return (v + a - 1) & ~(a - 1); }

/// Copies n bytes out of a ring starting at absolute position pos,
/// splitting at the wrap point.
void copy_out(std::byte* dst, const std::byte* ring, uint64_t pos, size_t n,
              uint64_t cap) {
  const uint64_t off = pos & (cap - 1);
  const size_t first = static_cast<size_t>(std::min<uint64_t>(n, cap - off));
  std::memcpy(dst, ring + off, first);
  if (n > first) std::memcpy(dst + first, ring, n - first);
}

/// Copies n bytes into a ring starting at absolute position pos.
void copy_in(std::byte* ring, uint64_t pos, const std::byte* src, size_t n,
             uint64_t cap) {
  const uint64_t off = pos & (cap - 1);
  const size_t first = static_cast<size_t>(std::min<uint64_t>(n, cap - off));
  std::memcpy(ring + off, src, first);
  if (n > first) std::memcpy(ring, src + first, n - first);
}

}  // namespace

/// A mapped POSIX segment: SegHeader, then peers RingHeaders, then peers
/// ring data arrays. The creator (consumer side) initializes the layout;
/// openers (producers) validate magic/version and adopt it.
class ShmSegment {
 public:
  static std::unique_ptr<ShmSegment> create(const std::string& name,
                                            uint32_t peers,
                                            size_t ring_bytes) {
    ring_bytes = round_up_pow2(ring_bytes);
    const size_t data_off =
        align_up(sizeof(SegHeader) + peers * sizeof(RingHeader), 64);
    const size_t total = data_off + peers * ring_bytes;
    int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0 && errno == EEXIST) {  // stale leftover of a crashed run
      ::shm_unlink(name.c_str());
      fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    }
    if (fd < 0) {
      raise(Errc::kNetwork, "shm_open(" + name + "): " + std::strerror(errno));
    }
    if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
      const int err = errno;
      ::close(fd);
      ::shm_unlink(name.c_str());
      raise(Errc::kNetwork, "ftruncate(" + name + "): " + std::strerror(err));
    }
    void* base =
        ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      ::shm_unlink(name.c_str());
      raise(Errc::kNetwork, "mmap(" + name + "): " + std::strerror(errno));
    }
    auto seg = std::unique_ptr<ShmSegment>(new ShmSegment(name, base, total));
    auto* h = new (base) SegHeader();
    for (uint32_t r = 0; r < peers; ++r) {
      new (static_cast<std::byte*>(base) + sizeof(SegHeader) +
           r * sizeof(RingHeader)) RingHeader();
    }
    h->peers = peers;
    h->ring_bytes = ring_bytes;
    h->version = kShmVersion;
    // Published last: an opener that wins a race with initialization sees
    // a zero magic and rejects the segment.
    h->magic = kShmMagic;
    return seg;
  }

  static std::unique_ptr<ShmSegment> open(const std::string& name) {
    const int fd = ::shm_open(name.c_str(), O_RDWR, 0);
    if (fd < 0) {
      raise(Errc::kNetwork, "shm_open(" + name + "): " + std::strerror(errno));
    }
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size < static_cast<off_t>(
                                                  sizeof(SegHeader))) {
      ::close(fd);
      raise(Errc::kNetwork, "shm segment " + name + " too small");
    }
    const size_t total = static_cast<size_t>(st.st_size);
    void* base =
        ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      raise(Errc::kNetwork, "mmap(" + name + "): " + std::strerror(errno));
    }
    auto seg = std::unique_ptr<ShmSegment>(new ShmSegment(name, base, total));
    const SegHeader& h = seg->header();
    if (h.magic != kShmMagic || h.version != kShmVersion || h.peers == 0) {
      raise(Errc::kNetwork, "shm segment " + name + " failed validation");
    }
    return seg;
  }

  ~ShmSegment() {
    if (base_ != nullptr) ::munmap(base_, size_);
  }
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  SegHeader& header() { return *static_cast<SegHeader*>(base_); }
  const SegHeader& header() const {
    return *static_cast<const SegHeader*>(base_);
  }
  uint32_t peers() const { return header().peers; }
  uint64_t ring_bytes() const { return header().ring_bytes; }

  RingHeader& ring(uint32_t r) {
    return *reinterpret_cast<RingHeader*>(static_cast<std::byte*>(base_) +
                                          sizeof(SegHeader) +
                                          r * sizeof(RingHeader));
  }
  std::byte* ring_data(uint32_t r) {
    const size_t data_off =
        align_up(sizeof(SegHeader) + peers() * sizeof(RingHeader), 64);
    return static_cast<std::byte*>(base_) + data_off + r * ring_bytes();
  }

  const std::string& name() const { return name_; }
  void unlink() { ::shm_unlink(name_.c_str()); }  // idempotent

 private:
  ShmSegment(std::string name, void* base, size_t size)
      : name_(std::move(name)), base_(base), size_(size) {}

  std::string name_;
  void* base_ = nullptr;
  size_t size_ = 0;
};

bool shm_available() {
#if !defined(__linux__) && !defined(__APPLE__)
  return false;
#else
  if (const char* env = std::getenv("DPS_SHM");
      env != nullptr && env[0] == '0') {
    return false;  // explicit opt-out: force the TCP path everywhere
  }
  static const bool ok = [] {
    const std::string name = "/dps-shm-probe-" + std::to_string(::getpid());
    int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0 && errno == EEXIST) {
      ::shm_unlink(name.c_str());
      fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    }
    if (fd < 0) return false;
    bool good = ::ftruncate(fd, 4096) == 0;
    if (good) {
      void* p = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                       0);
      good = p != MAP_FAILED;
      if (good) ::munmap(p, 4096);
    }
    ::close(fd);
    ::shm_unlink(name.c_str());
    return good;
  }();
  return ok;
#endif
}

// ---------------------------------------------------------------------------
// ShmInbox (consumer)

ShmInbox::ShmInbox(std::string segment_name, NodeId self, uint32_t peers,
                   size_t ring_bytes)
    : name_(std::move(segment_name)),
      self_(self),
      seg_(ShmSegment::create(name_, peers, ring_bytes)) {}

ShmInbox::~ShmInbox() { stop(); }

void ShmInbox::start(Deliver deliver) {
  DPS_CHECK(!started_.load(std::memory_order_acquire),
            "ShmInbox::start called twice");
  deliver_ = std::move(deliver);
  started_.store(true, std::memory_order_release);
  rx_ = std::thread([this] { rx_loop(); });
}

void ShmInbox::stop() {
  if (!seg_) return;
  SegHeader& sh = seg_->header();
  sh.closed.store(1, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  // Wake ourselves if parked on the doorbell, and every producer parked on
  // a full ring — they observe `closed` and fail their sends.
  sh.doorbell.fetch_add(1, std::memory_order_release);
  futex_wake_one(&sh.doorbell);
  for (uint32_t r = 0; r < seg_->peers(); ++r) {
    RingHeader& rh = seg_->ring(r);
    rh.space_seq.fetch_add(1, std::memory_order_release);
    futex_wake_one(&rh.space_seq);
  }
  if (rx_.joinable()) rx_.join();
  seg_->unlink();
}

void ShmInbox::rx_loop() {
#ifdef DPS_TRACE
  if (obs::tracing_active()) {
    obs::Trace::instance().set_thread_name("shm rx " + std::to_string(self_));
  }
#endif
  SegHeader& sh = seg_->header();
  const uint32_t peers = seg_->peers();
  const uint64_t cap = seg_->ring_bytes();

  /// Reassembly state of one ring: a frame may arrive across many head
  /// publishes (streamed oversized frames) and its record header may
  /// itself straddle a publish boundary.
  struct Pending {
    size_t hdr_filled = 0;
    std::byte hdr[kRecordHeader];
    bool active = false;  ///< header complete, collecting payload
    RecordHeader rec{};
    size_t filled = 0;
    std::vector<std::byte> buf;
  };
  std::vector<Pending> pending(peers);

  std::vector<NodeMessage> batch;
  size_t batch_bytes = 0;

  auto flush = [&] {
    if (batch.empty()) return;
#ifdef DPS_TRACE
    if (obs::tracing_active()) {
      obs::Trace::instance().record(obs::EventKind::kShmBatch, self_,
                                    batch.size(), batch_bytes, 0, 0);
      static obs::Counter& batches =
          obs::Metrics::instance().counter("dps.shm.rx_batches");
      batches.inc();
      static obs::Counter& frames =
          obs::Metrics::instance().counter("dps.shm.rx_frames");
      frames.inc(batch.size());
      static obs::Counter& bytes =
          obs::Metrics::instance().counter("dps.shm.rx_bytes");
      bytes.inc(batch_bytes);
    }
#endif
    deliver_(std::move(batch));
    batch.clear();  // moved-from: back to a known-empty state
    batch_bytes = 0;
  };

  // Frees ring space and wakes the producer if it parked on the ring being
  // full. The fence pairs with the producer's park-side fence so the wake
  // cannot be missed (see SegHeader comment).
  auto advance_tail = [&](RingHeader& rh, uint64_t t) {
    rh.tail.store(t, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // exchange for the same reason as the doorbell: one wake per park, not
    // one per tail advance while the producer waits to be scheduled.
    if (rh.producer_parked.exchange(0, std::memory_order_relaxed) != 0) {
      rh.space_seq.fetch_add(1, std::memory_order_release);
      futex_wake_one(&rh.space_seq);
    }
  };

  auto drain_ring = [&](uint32_t r) {
    RingHeader& rh = seg_->ring(r);
    const std::byte* data = seg_->ring_data(r);
    Pending& p = pending[r];
    bool consumed = false;
    uint64_t tail = rh.tail.load(std::memory_order_relaxed);
    for (;;) {
      uint64_t avail = rh.head.load(std::memory_order_acquire) - tail;
      if (avail == 0) break;
      consumed = true;
      if (!p.active) {
        const size_t k = static_cast<size_t>(
            std::min<uint64_t>(avail, kRecordHeader - p.hdr_filled));
        copy_out(p.hdr + p.hdr_filled, data, tail, k, cap);
        tail += k;
        p.hdr_filled += k;
        advance_tail(rh, tail);
        if (p.hdr_filled < kRecordHeader) continue;
        std::memcpy(&p.rec, p.hdr, kRecordHeader);
        p.hdr_filled = 0;
        p.active = true;
        p.filled = 0;
        p.buf = BufferPool::instance().acquire(p.rec.length);
        p.buf.resize(p.rec.length);
        if (p.rec.length != 0) continue;
        // fall through: zero-payload frame completes immediately
      } else {
        const size_t k = static_cast<size_t>(
            std::min<uint64_t>(avail, p.rec.length - p.filled));
        copy_out(p.buf.data() + p.filled, data, tail, k, cap);
        tail += k;
        p.filled += k;
        advance_tail(rh, tail);
        if (p.filled < p.rec.length) continue;
      }
      batch_bytes += kRecordHeader + p.rec.length;
      batch.push_back(NodeMessage{static_cast<NodeId>(r),
                                  static_cast<FrameKind>(p.rec.kind),
                                  std::move(p.buf)});
      p.active = false;
      p.buf = {};
      if (batch_bytes >= kBatchBytes) flush();
    }
    return consumed;
  };

  while (!stop_.load(std::memory_order_acquire)) {
    const uint32_t captured = sh.doorbell.load(std::memory_order_acquire);
    bool any = false;
    for (uint32_t r = 0; r < peers; ++r) {
      if (drain_ring(r)) any = true;
    }
    flush();
    if (any) continue;
    // Park: flag, fence, recheck every ring, then wait on the captured
    // doorbell value. A producer publishing concurrently either makes the
    // recheck see its head, or sees our parked flag and bumps the doorbell
    // (making the futex compare fail) and wakes us.
    sh.consumer_parked.store(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    bool data = stop_.load(std::memory_order_acquire);
    for (uint32_t r = 0; !data && r < peers; ++r) {
      RingHeader& rh = seg_->ring(r);
      data = rh.head.load(std::memory_order_acquire) !=
             rh.tail.load(std::memory_order_relaxed);
    }
    if (!data) futex_wait_ms(&sh.doorbell, captured, kParkTimeoutMs);
    sh.consumer_parked.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// ShmPeerTx (producer)

ShmPeerTx::ShmPeerTx(const std::string& segment_name, NodeId self)
    : seg_(ShmSegment::open(segment_name)), ring_(self) {
  if (ring_ >= seg_->peers()) {
    raise(Errc::kNetwork, "shm segment " + segment_name + " has no ring for node " +
                              std::to_string(self));
  }
}

ShmPeerTx::~ShmPeerTx() = default;

bool ShmPeerTx::send(FrameKind kind, const std::byte* prefix,
                     size_t prefix_len, const std::byte* body,
                     size_t body_len) {
  MutexLock lock(mu_);
  SegHeader& sh = seg_->header();
  if (sh.closed.load(std::memory_order_acquire) != 0) return false;
  RingHeader& rh = seg_->ring(ring_);
  std::byte* data = seg_->ring_data(ring_);
  const uint64_t cap = seg_->ring_bytes();

  uint64_t head = rh.head.load(std::memory_order_relaxed);
  const uint64_t start = head;

  // Publishes everything written so far and, if the consumer parked after
  // its ring scan, bumps the doorbell and wakes it (Dekker fence pair with
  // the consumer's park path).
  auto publish = [&] {
    rh.head.store(head, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // exchange, not load: the consumer stays marked parked from the moment
    // it decides to sleep until the OS actually runs it again, which on a
    // busy host spans many sends. Claiming the flag here means exactly one
    // frame of a burst pays the FUTEX_WAKE syscall; the consumer re-arms
    // the flag the next time it parks.
    if (sh.consumer_parked.exchange(0, std::memory_order_relaxed) != 0) {
      sh.doorbell.fetch_add(1, std::memory_order_release);
      futex_wake_one(&sh.doorbell);
      wakes_.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // Copies one span into the ring, publishing + parking whenever the ring
  // fills — this is how frames larger than the ring stream through it.
  auto write_span = [&](const std::byte* src, size_t n) {
    size_t done = 0;
    while (done < n) {
      const uint64_t used = head - rh.tail.load(std::memory_order_acquire);
      const uint64_t avail = cap - used;
      if (avail == 0) {
        publish();  // consumer must see our bytes to free space
        const uint32_t seq = rh.space_seq.load(std::memory_order_acquire);
        rh.producer_parked.store(1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (head - rh.tail.load(std::memory_order_acquire) == cap &&
            sh.closed.load(std::memory_order_acquire) == 0) {
          parks_.fetch_add(1, std::memory_order_relaxed);
          futex_wait_ms(&rh.space_seq, seq, kParkTimeoutMs);
        }
        rh.producer_parked.store(0, std::memory_order_relaxed);
        if (sh.closed.load(std::memory_order_acquire) != 0) return false;
        continue;
      }
      const size_t k =
          static_cast<size_t>(std::min<uint64_t>(n - done, avail));
      copy_in(data, head, src + done, k, cap);
      head += k;
      done += k;
    }
    return true;
  };

  RecordHeader rec{static_cast<uint32_t>(prefix_len + body_len),
                   static_cast<uint16_t>(kind), 0};
  std::byte hdr[kRecordHeader];
  std::memcpy(hdr, &rec, kRecordHeader);
  bool ok = write_span(hdr, kRecordHeader);
  if (ok && prefix_len != 0) ok = write_span(prefix, prefix_len);
  if (ok && body_len != 0) ok = write_span(body, body_len);
  if (!ok) {
    // The receiver shut down mid-frame; whatever was published stays in
    // the dead ring. Report the failure so callers stop using this peer.
    return false;
  }
  publish();
  frames_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(head - start, std::memory_order_relaxed);
#ifdef DPS_TRACE
  if (obs::tracing_active()) {
    static obs::Counter& frames =
        obs::Metrics::instance().counter("dps.shm.tx_frames");
    frames.inc();
    static obs::Counter& bytes =
        obs::Metrics::instance().counter("dps.shm.tx_bytes");
    bytes.inc(head - start);
  }
#endif
  return true;
}

ShmTxStats ShmPeerTx::stats() const {
  ShmTxStats s;
  s.frames = frames_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.doorbell_wakes = wakes_.load(std::memory_order_relaxed);
  s.space_parks = parks_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// ShmFabric (standalone, all nodes in this process)

ShmFabric::ShmFabric(size_t node_count, size_t ring_bytes)
    : nodes_(node_count),
      handlers_(node_count),
      batch_handlers_(node_count) {
  // Segment names are unique per process and per fabric instance so
  // overlapping runs (parallel ctest) never collide.
  static std::atomic<uint64_t> instances{0};
  const uint64_t inst = instances.fetch_add(1, std::memory_order_relaxed);
  inboxes_.resize(node_count);
  tx_.resize(node_count * node_count);
  for (size_t i = 0; i < node_count; ++i) {
    const std::string name = "/dps-shm-" + std::to_string(::getpid()) + "-" +
                             std::to_string(inst) + "-n" + std::to_string(i);
    inboxes_[i] =
        std::make_unique<ShmInbox>(name, static_cast<NodeId>(i),
                                   static_cast<uint32_t>(node_count),
                                   ring_bytes);
  }
  for (size_t from = 0; from < node_count; ++from) {
    for (size_t to = 0; to < node_count; ++to) {
      tx_[from * node_count + to] = std::make_unique<ShmPeerTx>(
          inboxes_[to]->segment_name(), static_cast<NodeId>(from));
    }
  }
  for (size_t i = 0; i < node_count; ++i) {
    const NodeId self = static_cast<NodeId>(i);
    inboxes_[i]->start([this, self](std::vector<NodeMessage>&& batch) {
      deliver(self, std::move(batch));
    });
  }
}

ShmFabric::~ShmFabric() { ShmFabric::shutdown(); }

void ShmFabric::attach(NodeId self, Handler handler) {
  MutexLock lock(mu_);
  DPS_CHECK(self < handlers_.size(), "attach: node id out of range");
  handlers_[self] = std::move(handler);
}

void ShmFabric::attach_batch(NodeId self, BatchHandler handler) {
  MutexLock lock(mu_);
  DPS_CHECK(self < batch_handlers_.size(), "attach_batch: node out of range");
  batch_handlers_[self] = std::move(handler);
}

void ShmFabric::deliver(NodeId to, std::vector<NodeMessage>&& batch) {
  BatchHandler bh;
  Handler h;
  {
    MutexLock lock(mu_);
    if (down_) return;
    bh = batch_handlers_[to];  // copy so delivery runs outside mu_
    if (!bh) h = handlers_[to];
  }
  if (bh) {
    bh(std::move(batch));
    return;
  }
  if (!h) return;  // attach() not done yet: attach-before-traffic contract
  for (NodeMessage& m : batch) h(std::move(m));
}

void ShmFabric::send(NodeId from, NodeId to, FrameKind kind,
                     std::vector<std::byte> payload) {
  {
    MutexLock lock(mu_);
    if (down_) return;
  }
  DPS_CHECK(from < nodes_ && to < nodes_, "shm send: node id out of range");
  if (tx_[from * nodes_ + to]->send(kind, payload.data(), payload.size(),
                                    nullptr, 0)) {
    messages_.fetch_add(1, std::memory_order_relaxed);
  }
  BufferPool::instance().release(std::move(payload));
}

void ShmFabric::send_shared(NodeId from, NodeId to, FrameKind kind,
                            std::vector<std::byte> prefix,
                            SharedPayload body) {
  {
    MutexLock lock(mu_);
    if (down_) return;
  }
  DPS_CHECK(from < nodes_ && to < nodes_, "shm send: node id out of range");
  const std::byte* b = body && !body->empty() ? body->data() : nullptr;
  const size_t nb = b != nullptr ? body->size() : 0;
  if (tx_[from * nodes_ + to]->send(kind, prefix.data(), prefix.size(), b,
                                    nb)) {
    messages_.fetch_add(1, std::memory_order_relaxed);
  }
  BufferPool::instance().release(std::move(prefix));
}

void ShmFabric::shutdown() {
  {
    MutexLock lock(mu_);
    if (down_) return;
    down_ = true;
  }
  // Stopping the inboxes marks their segments closed, which unblocks any
  // producer parked on a full ring.
  for (auto& inbox : inboxes_) {
    if (inbox) inbox->stop();
  }
}

uint64_t ShmFabric::bytes_sent() const {
  uint64_t total = 0;
  for (const auto& t : tx_) {
    if (t) total += t->stats().bytes;
  }
  return total;
}

uint64_t ShmFabric::messages_sent() const {
  return messages_.load(std::memory_order_relaxed);
}

}  // namespace dps
