#include "net/tcp_transport.hpp"

#include "util/error.hpp"
#include "util/logging.hpp"

namespace dps {

TcpFabric::TcpFabric(size_t node_count) {
  nodes_.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    auto end = std::make_unique<NodeEnd>();
    end->listener = TcpListener::bind(0);
    nodes_.push_back(std::move(end));
  }
  // Acceptors start immediately; handlers may attach slightly later, and
  // receiver loops wait for the handler before dispatching.
  for (size_t i = 0; i < node_count; ++i) {
    nodes_[i]->acceptor =
        std::thread([this, i] { acceptor_loop(static_cast<NodeId>(i)); });
  }
}

TcpFabric::~TcpFabric() { shutdown(); }

void TcpFabric::attach(NodeId self, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  DPS_CHECK(self < nodes_.size(), "attach: node id out of range");
  nodes_[self]->handler = std::move(handler);
}

uint16_t TcpFabric::port_of(NodeId node) const {
  DPS_CHECK(node < nodes_.size(), "port_of: node id out of range");
  return nodes_[node]->listener.port();
}

void TcpFabric::acceptor_loop(NodeId self) {
  for (;;) {
    TcpConn conn = nodes_[self]->listener.accept();
    if (!conn.valid()) return;  // listener closed: shutting down
    auto shared = std::make_shared<TcpConn>(std::move(conn));
    std::lock_guard<std::mutex> lock(mu_);
    if (down_) return;
    receivers_.emplace_back(
        [this, self, shared] { receiver_loop(self, shared); });
  }
}

void TcpFabric::receiver_loop(NodeId self, std::shared_ptr<TcpConn> conn) {
  try {
    Frame hello;
    if (!read_frame(*conn, &hello) || hello.kind != FrameKind::kHello) {
      DPS_WARN("tcp fabric: connection without hello, dropping");
      return;
    }
    const NodeId peer = hello.from;
    Handler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      handler = nodes_[self]->handler;
    }
    DPS_CHECK(static_cast<bool>(handler), "receiver started before attach");
    Frame f;
    while (read_frame(*conn, &f)) {
      if (f.kind == FrameKind::kShutdown) return;
      handler(NodeMessage{peer, f.kind, std::move(f.payload)});
    }
  } catch (const Error& e) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!down_) {
      DPS_WARN("tcp fabric: receiver for node " << self
                                                << " ended: " << e.what());
    }
  }
}

TcpFabric::OutConn& TcpFabric::out_conn(NodeId from, NodeId to) {
  std::unique_lock<std::mutex> lock(mu_);
  auto key = std::make_pair(from, to);
  auto it = out_.find(key);
  if (it != out_.end()) return *it->second;
  if (down_) raise(Errc::kNetwork, "fabric is shut down");
  const uint16_t port = nodes_[to]->listener.port();
  lock.unlock();
  // Lazy connect outside mu_ (connect can block); racing senders may both
  // connect, the loser's socket is discarded below.
  TcpConn conn = TcpConn::connect("127.0.0.1", port);
  Frame hello;
  hello.kind = FrameKind::kHello;
  hello.from = from;
  write_frame(conn, hello);
  lock.lock();
  it = out_.find(key);
  if (it != out_.end()) return *it->second;  // lost the race; drop ours
  auto oc = std::make_unique<OutConn>();
  oc->conn = std::move(conn);
  it = out_.emplace(key, std::move(oc)).first;
  return *it->second;
}

void TcpFabric::send(NodeId from, NodeId to, FrameKind kind,
                     std::vector<std::byte> payload) {
  OutConn& oc = out_conn(from, to);
  Frame f;
  f.kind = kind;
  f.from = from;
  f.payload = std::move(payload);
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(frame_wire_size(f), std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(oc.mu);
  write_frame(oc.conn, f);
}

void TcpFabric::shutdown() {
  std::vector<std::thread> receivers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_) return;
    down_ = true;
    receivers.swap(receivers_);
  }
  for (auto& node : nodes_) node->listener.close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, oc] : out_) {
      std::lock_guard<std::mutex> cl(oc->mu);
      oc->conn.close();  // unblocks the peer's receiver with EOF/error
    }
  }
  for (auto& node : nodes_) {
    if (node->acceptor.joinable()) node->acceptor.join();
  }
  for (auto& r : receivers) {
    if (r.joinable()) r.join();
  }
}

uint64_t TcpFabric::bytes_sent() const {
  return bytes_.load(std::memory_order_relaxed);
}
uint64_t TcpFabric::messages_sent() const {
  return messages_.load(std::memory_order_relaxed);
}

}  // namespace dps
