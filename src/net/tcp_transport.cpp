#include "net/tcp_transport.hpp"

#include "serial/buffer_pool.hpp"
#include "serial/wire.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

#ifdef DPS_TRACE
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#endif

namespace dps {

TcpFabric::TcpFabric(size_t node_count) {
  nodes_.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    auto end = std::make_unique<NodeEnd>();
    end->listener = TcpListener::bind(0);
    nodes_.push_back(std::move(end));
  }
  // Acceptors start immediately; handlers may attach slightly later, and
  // receiver loops wait for the handler before dispatching.
  for (size_t i = 0; i < node_count; ++i) {
    nodes_[i]->acceptor =
        std::thread([this, i] { acceptor_loop(static_cast<NodeId>(i)); });
  }
}

TcpFabric::~TcpFabric() { shutdown(); }

void TcpFabric::attach(NodeId self, Handler handler) {
  MutexLock lock(mu_);
  DPS_CHECK(self < nodes_.size(), "attach: node id out of range");
  nodes_[self]->handler = std::move(handler);
}

void TcpFabric::attach_batch(NodeId self, BatchHandler handler) {
  MutexLock lock(mu_);
  DPS_CHECK(self < nodes_.size(), "attach_batch: node id out of range");
  nodes_[self]->batch_handler = std::move(handler);
}

void TcpFabric::set_node_names(std::vector<std::string> names) {
  MutexLock lock(mu_);
  names_ = std::move(names);
}

std::string TcpFabric::node_label(NodeId node) const {
  if (node < names_.size()) {
    return "node '" + names_[node] + "' (id " + std::to_string(node) + ")";
  }
  return "node " + std::to_string(node);
}

uint16_t TcpFabric::port_of(NodeId node) const {
  DPS_CHECK(node < nodes_.size(), "port_of: node id out of range");
  return nodes_[node]->listener.port();
}

void TcpFabric::acceptor_loop(NodeId self) {
  for (;;) {
    TcpConn conn = nodes_[self]->listener.accept();
    if (!conn.valid()) return;  // listener closed: shutting down
    auto shared = std::make_shared<TcpConn>(std::move(conn));
    // Registered even while shutting down: a sender draining its queue may
    // have a connection waiting in the backlog, and its frames must still
    // be delivered. shutdown() joins this acceptor before it collects
    // receivers_, so no registration races the final join.
    MutexLock lock(mu_);
    receivers_.emplace_back(
        [this, self, shared] { receiver_loop(self, shared); });
  }
}

void TcpFabric::receiver_loop(NodeId self, std::shared_ptr<TcpConn> conn) {
  // The buffered reader turns the old two-recvs-per-frame pattern into one
  // recv per chunk: the hello below and the first data frames of the burst
  // typically decode from a single syscall (docs/PERFORMANCE.md).
  FrameReader reader(*conn);
  Frame hello;
  try {
    if (!reader.next(&hello) || hello.kind != FrameKind::kHello) {
      DPS_WARN("tcp fabric: connection without hello, dropping");
      return;
    }
  } catch (const Error&) {
    DPS_WARN("tcp fabric: connection torn during hello, dropping");
    return;
  }
  const NodeId peer = hello.from;
  Handler handler;
  BatchHandler batch_handler;
  {
    MutexLock lock(mu_);
    handler = nodes_[self]->handler;
    batch_handler = nodes_[self]->batch_handler;
  }
  DPS_CHECK(static_cast<bool>(handler), "receiver started before attach");

#ifdef DPS_TRACE
  // Folded in when the connection ends, whichever exit path it takes.
  struct RecvCalls {
    FrameReader& r;
    ~RecvCalls() {
      if (obs::tracing_active()) {
        static obs::Counter& c =
            obs::Metrics::instance().counter("dps.rx.recv_calls");
        c.inc(r.recv_calls());
      }
    }
  } recv_calls_scope{reader};
#endif

  // Frames decoded from the current chunk, delivered together when the
  // chunk is exhausted: one grouped handoff (one controller inbox append +
  // notify per destination worker) instead of one per frame.
  std::vector<NodeMessage> batch;
  size_t batch_bytes = 0;
  auto flush = [&] {
    if (batch.empty()) return;
    const size_t count = batch.size();
#ifdef DPS_TRACE
    const bool t_on = obs::tracing_active();
    if (t_on) {
      obs::Trace::instance().record(obs::EventKind::kRxBatchStart, peer, self,
                                    count, batch_bytes, 0);
    }
#endif
    if (batch_handler) {
      batch_handler(std::move(batch));
      batch.clear();  // moved-from: back to a known-empty state
    } else {
      for (NodeMessage& m : batch) handler(std::move(m));
      batch.clear();
    }
#ifdef DPS_TRACE
    if (t_on) {
      obs::Trace::instance().record(obs::EventKind::kRxBatchEnd, peer, self,
                                    count, batch_bytes,
                                    batch_handler ? 1 : 0);
      static obs::Counter& batches =
          obs::Metrics::instance().counter("dps.rx.batches");
      batches.inc();
      static obs::Histogram& frames_hist =
          obs::Metrics::instance().histogram("dps.rx.batch_frames");
      frames_hist.observe(count);
      static obs::Histogram& bytes_hist =
          obs::Metrics::instance().histogram("dps.rx.batch_bytes");
      bytes_hist.observe(batch_bytes);
    }
#else
    (void)count;
#endif
    batch_bytes = 0;
  };

  // A healthy peer ends the stream with an explicit kShutdown frame. EOF
  // without it — at a frame boundary or mid-frame — means the peer died or
  // the connection broke: surface it instead of going quiet.
  std::string torn;
  try {
    Frame f;
    for (;;) {
      if (!reader.next(&f)) {
        torn = "connection closed without shutdown frame";
        break;
      }
      if (f.kind == FrameKind::kShutdown) {  // clean close
        flush();
        return;
      }
#ifdef DPS_TRACE
      obs::Trace::instance().record(obs::EventKind::kTransportRecv, self, peer,
                                    static_cast<uint64_t>(f.kind), 0,
                                    f.payload.size());
#endif
      batch_bytes += frame_wire_size(f);
      batch.push_back(NodeMessage{peer, f.kind, std::move(f.payload)});
      // Chunk exhausted (next frame would block): natural batch boundary.
      if (!reader.frame_buffered()) flush();
    }
  } catch (const Error& e) {
    torn = e.what();  // partial frame, bad magic, socket error
  }
  flush();  // frames that decoded cleanly before the tear still count
  std::string reason;
  {
    MutexLock lock(mu_);
    if (down_) return;  // our own shutdown raced the read: not an error
    reason = to_string(Errc::kProtocol) + std::string(": torn stream from ") +
             node_label(peer) + " to " + node_label(self) + ": " + torn;
  }
  DPS_ERROR("tcp fabric: " << reason);
  // Hand the failure to the node's controller as a peer-down report so the
  // engine can fail calls / trigger recovery rather than hang.
  Writer w;
  w.put_string(reason);
  handler(NodeMessage{peer, FrameKind::kPeerDown, w.take()});
}

void TcpFabric::sender_loop(OutConn& oc) {
#ifdef DPS_TRACE
  if (obs::tracing_active()) {
    obs::Trace::instance().set_thread_name(
        "tx " + std::to_string(oc.from) + "->" + std::to_string(oc.to));
  }
#endif
  // Lazy connect (the paper's delayed connection strategy), off the
  // producer's thread: the first enqueue created this link, the connect and
  // hello happen here while the producer continues computing.
  try {
    oc.conn = TcpConn::connect("127.0.0.1", oc.port);
    Frame hello;
    hello.kind = FrameKind::kHello;
    hello.from = oc.from;
    write_frame(oc.conn, hello);
  } catch (const Error& e) {
    MutexLock lock(oc.mu);
    if (!oc.closed) {
      DPS_WARN("tcp fabric: connect " << oc.from << "->" << oc.to
                                      << " failed: " << e.what());
    }
    oc.failed = true;
    oc.queue.clear();
    oc.queued_bytes = 0;
    oc.space.notify_all();
  }
  std::deque<Frame> batch;
  for (;;) {
    {
      MutexLock lock(oc.mu);
      oc.data.wait(oc.mu, [&] { return !oc.queue.empty() || oc.closed; });
      if (oc.queue.empty()) break;  // closed and drained
      batch.swap(oc.queue);
      oc.queued_bytes = 0;
    }
    // Budget freed: wake every producer blocked on backpressure.
    oc.space.notify_all();
#ifdef DPS_TRACE
    size_t batch_bytes = 0;
    const bool t_on = obs::tracing_active();
    if (t_on) {
      for (const Frame& f : batch) batch_bytes += frame_wire_size(f);
      obs::Trace::instance().record(obs::EventKind::kTxBatchStart, oc.from,
                                    oc.to, batch.size(), batch_bytes, 0);
    }
#endif
    bool wrote = false;
    try {
      // The coalesced write: every pending frame for this peer leaves in
      // one scatter-gather batch. deque storage is chunked, so frames are
      // handed over as a contiguous copy of Frame headers — the payloads
      // themselves are not copied (iovecs point at them).
      std::vector<Frame> contiguous(std::make_move_iterator(batch.begin()),
                                    std::make_move_iterator(batch.end()));
      write_frames(oc.conn, contiguous.data(), contiguous.size());
      wrote = true;
      // Encode buffers go back to the pool now that the bytes are on the
      // wire (docs/PERFORMANCE.md: buffer-pool lifecycle).
      for (Frame& f : contiguous) {
        BufferPool::instance().release(std::move(f.payload));
      }
    } catch (const Error& e) {
      MutexLock lock(oc.mu);
      if (!oc.closed && !oc.failed) {
        DPS_WARN("tcp fabric: send " << oc.from << "->" << oc.to
                                     << " failed: " << e.what());
      }
      oc.failed = true;
      oc.queue.clear();  // undeliverable; peer's receiver reports the tear
      oc.queued_bytes = 0;
      oc.space.notify_all();
    }
#ifdef DPS_TRACE
    if (t_on) {
      obs::Trace::instance().record(obs::EventKind::kTxBatchEnd, oc.from,
                                    oc.to, batch.size(), batch_bytes,
                                    wrote ? 1 : 0);
      static obs::Counter& writevs =
          obs::Metrics::instance().counter("dps.tx.writev_batches");
      writevs.inc();
      static obs::Histogram& frames_hist =
          obs::Metrics::instance().histogram("dps.tx.batch_frames");
      frames_hist.observe(batch.size());
      static obs::Histogram& bytes_hist =
          obs::Metrics::instance().histogram("dps.tx.batch_bytes");
      bytes_hist.observe(batch_bytes);
    }
#else
    (void)wrote;
#endif
    batch.clear();
  }
  // Closed and fully drained: announce the planned close so the peer's
  // receiver can tell it from a torn stream, then close the socket.
  bool announce;
  {
    MutexLock lock(oc.mu);
    announce = !oc.failed;
  }
  if (announce) {
    Frame bye;
    bye.kind = FrameKind::kShutdown;
    bye.from = oc.from;
    try {
      write_frame(oc.conn, bye);
      // Wait for the peer to close: its receiver only closes the socket
      // after it has read — and delivered — every frame up to the bye, so
      // this EOF is the drain barrier shutdown() joins on. Written bytes
      // alone prove nothing (they may still sit in a socket buffer or an
      // unaccepted backlog connection).
      char sink;
      while (oc.conn.recv_all(&sink, 1)) {
      }
    } catch (const Error&) {
      // peer already gone; its receiver reported the torn stream
    }
  }
  oc.conn.close();  // unblocks the peer's receiver
}

TcpFabric::OutConn& TcpFabric::out_conn(NodeId from, NodeId to) {
  MutexLock lock(mu_);
  auto key = std::make_pair(from, to);
  auto it = out_.find(key);
  if (it != out_.end()) return *it->second;
  if (down_) raise(Errc::kNetwork, "fabric is shut down");
  // The sender thread performs the (possibly blocking) connect and hello,
  // so the link is registered atomically under mu_: concurrent first sends
  // can never race two half-open connections against each other.
  auto oc = std::make_unique<OutConn>();
  oc->from = from;
  oc->to = to;
  oc->port = nodes_[to]->listener.port();
  oc->queue_limit = queue_limit_.load(std::memory_order_relaxed);
  OutConn* raw = oc.get();
  it = out_.emplace(key, std::move(oc)).first;
  raw->sender = std::thread([this, raw] { sender_loop(*raw); });
  return *it->second;
}

void TcpFabric::send(NodeId from, NodeId to, FrameKind kind,
                     std::vector<std::byte> payload) {
  Frame f;
  f.kind = kind;
  f.from = from;
  f.payload = std::move(payload);
  enqueue_frame(from, to, std::move(f));
}

void TcpFabric::send_shared(NodeId from, NodeId to, FrameKind kind,
                            std::vector<std::byte> prefix, SharedPayload body) {
  Frame f;
  f.kind = kind;
  f.from = from;
  f.payload = std::move(prefix);
  f.shared = std::move(body);
  enqueue_frame(from, to, std::move(f));
}

void TcpFabric::enqueue_frame(NodeId from, NodeId to, Frame f) {
  OutConn& oc = out_conn(from, to);
  const FrameKind kind = f.kind;
  const size_t wire = frame_wire_size(f);
  {
    MutexLock lock(oc.mu);
    // Backpressure: block while the byte budget is exhausted. The budget is
    // a soft bound (one frame may overshoot it) so frames larger than the
    // whole budget still make progress.
    oc.space.wait(oc.mu, [&] {
      return oc.queued_bytes < oc.queue_limit || oc.closed || oc.failed;
    });
    // Checked under oc.mu: a send either fully precedes the queue close or
    // observes `closed` — the sender thread drains everything enqueued
    // before the shutdown frame, so accepted frames are never lost.
    if (oc.closed) raise(Errc::kNetwork, "fabric is shut down");
    if (oc.failed) {
      raise(Errc::kNetwork, "connection " + std::to_string(from) + "->" +
                                std::to_string(to) + " failed");
    }
    oc.queue.push_back(std::move(f));
    oc.queued_bytes += wire;
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(wire, std::memory_order_relaxed);
#ifdef DPS_TRACE
    if (obs::tracing_active()) {
      obs::Trace::instance().record(obs::EventKind::kTransportSend, from, to,
                                    static_cast<uint64_t>(kind),
                                    oc.queue.size(), wire);
      static obs::Gauge& depth =
          obs::Metrics::instance().gauge("dps.tx.queue_bytes");
      depth.set(static_cast<int64_t>(oc.queued_bytes));
      depth.update_max(static_cast<int64_t>(oc.queued_bytes));
    }
#endif
  }
  oc.data.notify_one();
}

void TcpFabric::shutdown() {
  std::vector<OutConn*> conns;
  {
    MutexLock lock(mu_);
    if (down_) return;
    down_ = true;  // no new out-connections; torn-stream reports go quiet
    for (auto& [key, oc] : out_) conns.push_back(oc.get());
  }
  // Stop accepting new frames; senders drain what is queued, append the
  // shutdown announcement, and block until the peer's receiver has consumed
  // the stream (EOF barrier in sender_loop). Listeners and acceptors stay
  // up throughout so a connection still sitting in a backlog is accepted,
  // read, and delivered rather than torn down.
  for (OutConn* oc : conns) {
    {
      MutexLock lock(oc->mu);
      oc->closed = true;
    }
    oc->data.notify_all();
    oc->space.notify_all();
  }
  for (OutConn* oc : conns) {
    if (oc->sender.joinable()) oc->sender.join();
  }
  for (auto& node : nodes_) node->listener.close();
  for (auto& node : nodes_) {
    if (node->acceptor.joinable()) node->acceptor.join();
  }
  std::vector<std::thread> receivers;
  {
    MutexLock lock(mu_);
    receivers.swap(receivers_);
  }
  for (auto& r : receivers) {
    if (r.joinable()) r.join();
  }
}

uint64_t TcpFabric::bytes_sent() const {
  return bytes_.load(std::memory_order_relaxed);
}
uint64_t TcpFabric::messages_sent() const {
  return messages_.load(std::memory_order_relaxed);
}

}  // namespace dps
