#include "net/tcp_transport.hpp"

#include "serial/wire.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

#ifdef DPS_TRACE
#include "obs/trace.hpp"
#endif

namespace dps {

TcpFabric::TcpFabric(size_t node_count) {
  nodes_.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    auto end = std::make_unique<NodeEnd>();
    end->listener = TcpListener::bind(0);
    nodes_.push_back(std::move(end));
  }
  // Acceptors start immediately; handlers may attach slightly later, and
  // receiver loops wait for the handler before dispatching.
  for (size_t i = 0; i < node_count; ++i) {
    nodes_[i]->acceptor =
        std::thread([this, i] { acceptor_loop(static_cast<NodeId>(i)); });
  }
}

TcpFabric::~TcpFabric() { shutdown(); }

void TcpFabric::attach(NodeId self, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  DPS_CHECK(self < nodes_.size(), "attach: node id out of range");
  nodes_[self]->handler = std::move(handler);
}

void TcpFabric::set_node_names(std::vector<std::string> names) {
  std::lock_guard<std::mutex> lock(mu_);
  names_ = std::move(names);
}

std::string TcpFabric::node_label(NodeId node) const {
  if (node < names_.size()) {
    return "node '" + names_[node] + "' (id " + std::to_string(node) + ")";
  }
  return "node " + std::to_string(node);
}

uint16_t TcpFabric::port_of(NodeId node) const {
  DPS_CHECK(node < nodes_.size(), "port_of: node id out of range");
  return nodes_[node]->listener.port();
}

void TcpFabric::acceptor_loop(NodeId self) {
  for (;;) {
    TcpConn conn = nodes_[self]->listener.accept();
    if (!conn.valid()) return;  // listener closed: shutting down
    auto shared = std::make_shared<TcpConn>(std::move(conn));
    std::lock_guard<std::mutex> lock(mu_);
    if (down_) return;
    receivers_.emplace_back(
        [this, self, shared] { receiver_loop(self, shared); });
  }
}

void TcpFabric::receiver_loop(NodeId self, std::shared_ptr<TcpConn> conn) {
  Frame hello;
  try {
    if (!read_frame(*conn, &hello) || hello.kind != FrameKind::kHello) {
      DPS_WARN("tcp fabric: connection without hello, dropping");
      return;
    }
  } catch (const Error&) {
    DPS_WARN("tcp fabric: connection torn during hello, dropping");
    return;
  }
  const NodeId peer = hello.from;
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handler = nodes_[self]->handler;
  }
  DPS_CHECK(static_cast<bool>(handler), "receiver started before attach");

  // A healthy peer ends the stream with an explicit kShutdown frame. EOF
  // without it — at a frame boundary or mid-frame — means the peer died or
  // the connection broke: surface it instead of going quiet.
  std::string torn;
  try {
    Frame f;
    for (;;) {
      if (!read_frame(*conn, &f)) {
        torn = "connection closed without shutdown frame";
        break;
      }
      if (f.kind == FrameKind::kShutdown) return;  // clean close
#ifdef DPS_TRACE
      obs::Trace::instance().record(obs::EventKind::kTransportRecv, self, peer,
                                    static_cast<uint64_t>(f.kind), 0,
                                    f.payload.size());
#endif
      handler(NodeMessage{peer, f.kind, std::move(f.payload)});
    }
  } catch (const Error& e) {
    torn = e.what();  // partial frame, bad magic, socket error
  }
  std::string reason;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_) return;  // our own shutdown raced the read: not an error
    reason = to_string(Errc::kProtocol) + std::string(": torn stream from ") +
             node_label(peer) + " to " + node_label(self) + ": " + torn;
  }
  DPS_ERROR("tcp fabric: " << reason);
  // Hand the failure to the node's controller as a peer-down report so the
  // engine can fail calls / trigger recovery rather than hang.
  Writer w;
  w.put_string(reason);
  handler(NodeMessage{peer, FrameKind::kPeerDown, w.take()});
}

TcpFabric::OutConn& TcpFabric::out_conn(NodeId from, NodeId to) {
  std::unique_lock<std::mutex> lock(mu_);
  auto key = std::make_pair(from, to);
  auto it = out_.find(key);
  if (it != out_.end()) return *it->second;
  if (down_) raise(Errc::kNetwork, "fabric is shut down");
  const uint16_t port = nodes_[to]->listener.port();
  lock.unlock();
  // Lazy connect outside mu_ (connect can block); racing senders may both
  // connect, the loser's socket is discarded below.
  TcpConn conn = TcpConn::connect("127.0.0.1", port);
  Frame hello;
  hello.kind = FrameKind::kHello;
  hello.from = from;
  write_frame(conn, hello);
  lock.lock();
  it = out_.find(key);
  if (it != out_.end()) return *it->second;  // lost the race; drop ours
  auto oc = std::make_unique<OutConn>();
  oc->conn = std::move(conn);
  it = out_.emplace(key, std::move(oc)).first;
  return *it->second;
}

void TcpFabric::send(NodeId from, NodeId to, FrameKind kind,
                     std::vector<std::byte> payload) {
  OutConn& oc = out_conn(from, to);
  Frame f;
  f.kind = kind;
  f.from = from;
  f.payload = std::move(payload);
  std::lock_guard<std::mutex> lock(oc.mu);
  // Checked under oc.mu: a send either fully precedes the shutdown frame on
  // this connection or observes `closed` — it can never interleave bytes
  // with the close or write into a closed socket.
  if (oc.closed) raise(Errc::kNetwork, "fabric is shut down");
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(frame_wire_size(f), std::memory_order_relaxed);
#ifdef DPS_TRACE
  obs::Trace::instance().record(obs::EventKind::kTransportSend, from, to,
                                static_cast<uint64_t>(kind), 0,
                                frame_wire_size(f));
#endif
  write_frame(oc.conn, f);
}

void TcpFabric::shutdown() {
  std::vector<std::thread> receivers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_) return;
    down_ = true;
    receivers.swap(receivers_);
  }
  {
    // Announce the close on every open connection so peers can tell this
    // planned shutdown from a torn stream, then close under the same lock
    // that serializes senders.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, oc] : out_) {
      std::lock_guard<std::mutex> cl(oc->mu);
      if (oc->closed) continue;
      Frame bye;
      bye.kind = FrameKind::kShutdown;
      bye.from = key.first;
      try {
        write_frame(oc->conn, bye);
      } catch (const Error&) {
        // peer already gone; its receiver reported the torn stream
      }
      oc->closed = true;
      oc->conn.close();  // unblocks the peer's receiver
    }
  }
  for (auto& node : nodes_) node->listener.close();
  for (auto& node : nodes_) {
    if (node->acceptor.joinable()) node->acceptor.join();
  }
  for (auto& r : receivers) {
    if (r.joinable()) r.join();
  }
}

uint64_t TcpFabric::bytes_sent() const {
  return bytes_.load(std::memory_order_relaxed);
}
uint64_t TcpFabric::messages_sent() const {
  return messages_.load(std::memory_order_relaxed);
}

}  // namespace dps
