#include "net/inproc_transport.hpp"

#include "util/error.hpp"

namespace dps {

InprocFabric::InprocFabric(size_t node_count)
    : handlers_(node_count), batch_handlers_(node_count) {}

void InprocFabric::attach(NodeId self, Handler handler) {
  MutexLock lock(mu_);
  DPS_CHECK(self < handlers_.size(), "attach: node id out of range");
  handlers_[self] = std::move(handler);
}

void InprocFabric::attach_batch(NodeId self, BatchHandler handler) {
  MutexLock lock(mu_);
  DPS_CHECK(self < batch_handlers_.size(), "attach_batch: node out of range");
  batch_handlers_[self] = std::move(handler);
}

void InprocFabric::send(NodeId from, NodeId to, FrameKind kind,
                        std::vector<std::byte> payload) {
  Handler handler;
  BatchHandler batch_handler;
  {
    MutexLock lock(mu_);
    if (down_) return;
    if (to >= handlers_.size() || (!handlers_[to] && !batch_handlers_[to])) {
      raise(Errc::kNotFound,
            "no node " + std::to_string(to) + " attached to fabric");
    }
    // Copies so delivery runs outside mu_. Batched delivery wins when both
    // are attached, mirroring the TCP receive path.
    batch_handler = batch_handlers_[to];
    if (!batch_handler) handler = handlers_[to];
  }
  messages_.fetch_add(1, std::memory_order_relaxed);
  Frame f;  // accounted like a wire frame for fair benchmark comparisons
  f.payload = std::move(payload);
  bytes_.fetch_add(frame_wire_size(f), std::memory_order_relaxed);
  if (batch_handler) {
    std::vector<NodeMessage> batch;
    batch.push_back(NodeMessage{from, kind, std::move(f.payload)});
    batch_handler(std::move(batch));
    return;
  }
  handler(NodeMessage{from, kind, std::move(f.payload)});
}

void InprocFabric::shutdown() {
  MutexLock lock(mu_);
  down_ = true;
}

uint64_t InprocFabric::bytes_sent() const {
  return bytes_.load(std::memory_order_relaxed);
}
uint64_t InprocFabric::messages_sent() const {
  return messages_.load(std::memory_order_relaxed);
}

}  // namespace dps
