// Message framing shared by every DPS channel.
//
// A frame is: magic (u32) | kind (u16) | from-node (u32) | length (u32) |
// payload bytes. The same framing crosses real TCP sockets and the
// in-process serialized channels, so the two fabrics are interchangeable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/socket.hpp"

namespace dps {

/// Logical node index within one cluster run.
using NodeId = uint32_t;

/// Frame kinds understood by the controller.
enum class FrameKind : uint16_t {
  kEnvelope = 1,   ///< a routed token envelope
  kFlowAck = 2,    ///< split–merge flow-control acknowledgement
  kHello = 3,      ///< connection handshake: announces the sender's NodeId
  kShutdown = 4,   ///< orderly channel teardown
  kCallReply = 5,  ///< final token of a graph call returning to the caller
  // Fault-tolerant delivery (docs/FAULT_TOLERANCE.md):
  kReliable = 6,   ///< seq/ack-wrapped frame carrying one of the kinds above
  kAck = 7,        ///< pure cumulative acknowledgement (u64 ack)
  kHeartbeat = 8,  ///< liveness beacon, carries the link's cumulative ack
  kPeerDown = 9,   ///< synthesized by a fabric: peer channel failed
                   ///< (payload = human-readable reason)
};

struct Frame {
  FrameKind kind = FrameKind::kEnvelope;
  NodeId from = 0;
  std::vector<std::byte> payload;
};

inline constexpr uint32_t kFrameMagic = 0x44505331;  // "DPS1"

/// Size of a frame on the wire, including the header — used by benchmarks
/// to account for DPS control overhead exactly.
size_t frame_wire_size(const Frame& frame);

/// Blocking frame write to a TCP connection (one scatter-gather syscall for
/// header + payload).
void write_frame(TcpConn& conn, const Frame& frame);

/// Coalesced write of `count` frames in order: headers and payloads of the
/// whole batch go out through scatter-gather writes (at most
/// ceil(2*count / IOV_MAX) syscalls) instead of two sends per frame. The
/// byte stream is identical to `count` write_frame calls.
void write_frames(TcpConn& conn, const Frame* frames, size_t count);

/// Blocking frame read. Returns false on clean EOF before a new frame.
/// Throws Error(kProtocol) on bad magic, Error(kNetwork) on socket errors.
bool read_frame(TcpConn& conn, Frame* out);

}  // namespace dps
