// Message framing shared by every DPS channel.
//
// A frame is: magic (u32) | kind (u16) | from-node (u32) | length (u32) |
// payload bytes. The same framing crosses real TCP sockets and the
// in-process serialized channels, so the two fabrics are interchangeable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/socket.hpp"

namespace dps {

/// Logical node index within one cluster run.
using NodeId = uint32_t;

/// Immutable payload bytes shared between several in-flight frames — the
/// multicast body: one encode, K transmits. Receivers always see the frame
/// as one contiguous payload; sharing is a sender-side optimization.
using SharedPayload = std::shared_ptr<const std::vector<std::byte>>;

/// Frame kinds understood by the controller.
enum class FrameKind : uint16_t {
  kEnvelope = 1,   ///< a routed token envelope
  kFlowAck = 2,    ///< split–merge flow-control acknowledgement
  kHello = 3,      ///< connection handshake: announces the sender's NodeId
  kShutdown = 4,   ///< orderly channel teardown
  kCallReply = 5,  ///< final token of a graph call returning to the caller
  // Fault-tolerant delivery (docs/FAULT_TOLERANCE.md):
  kReliable = 6,   ///< seq/ack-wrapped frame carrying one of the kinds above
  kAck = 7,        ///< pure cumulative acknowledgement (u64 ack)
  kHeartbeat = 8,  ///< liveness beacon, carries the link's cumulative ack
  kPeerDown = 9,   ///< synthesized by a fabric: peer channel failed
                   ///< (payload = human-readable reason)
  // Multicast collectives (docs/PERFORMANCE.md):
  kMcastEnvelope = 10,  ///< one envelope body fanned out to K destinations:
                        ///< [u8 topology | u32 n | n x {node,thread,seq} |
                        ///<  envelope body]
};

/// On the wire a frame's payload is `payload` followed by `*shared` (when
/// set). The owned part carries per-destination prefixes (headers, seq/ack
/// wraps); the shared part is the multicast body encoded exactly once.
struct Frame {
  FrameKind kind = FrameKind::kEnvelope;
  NodeId from = 0;
  std::vector<std::byte> payload;
  SharedPayload shared;  ///< optional trailing segment, shared across frames
};

inline constexpr uint32_t kFrameMagic = 0x44505331;  // "DPS1"

/// Size of a frame on the wire, including the header — used by benchmarks
/// to account for DPS control overhead exactly.
size_t frame_wire_size(const Frame& frame);

/// Blocking frame write to a TCP connection (one scatter-gather syscall for
/// header + payload).
void write_frame(TcpConn& conn, const Frame& frame);

/// Coalesced write of `count` frames in order: headers and payloads of the
/// whole batch go out through scatter-gather writes (at most
/// ceil(2*count / IOV_MAX) syscalls) instead of two sends per frame. The
/// byte stream is identical to `count` write_frame calls.
void write_frames(TcpConn& conn, const Frame* frames, size_t count);

/// Blocking frame read. Returns false on clean EOF before a new frame.
/// Throws Error(kProtocol) on bad magic, Error(kNetwork) on socket errors.
/// One recv per header and one per payload; the hot receive path uses
/// FrameReader instead (one recv per *chunk* of frames).
bool read_frame(TcpConn& conn, Frame* out);

/// Buffered frame decoder over one TCP connection — the RX mirror of
/// write_frames (docs/PERFORMANCE.md). Each refill reads as many bytes as
/// the socket has ready (up to the chunk size) in a single recv, then
/// next() decodes complete frames out of the buffer without further
/// syscalls. frame_buffered() tells the caller when the chunk is exhausted,
/// which is the natural batch boundary for grouped delivery. Frames larger
/// than the chunk bypass the buffer: the payload tail is read directly into
/// the frame's pooled buffer (no double copy).
///
/// Owned by one receiver thread; not thread safe. The chunk buffer is
/// recycled through BufferPool on destruction.
class FrameReader {
 public:
  explicit FrameReader(TcpConn& conn);
  ~FrameReader();
  FrameReader(const FrameReader&) = delete;
  FrameReader& operator=(const FrameReader&) = delete;

  /// Same contract as read_frame: false on clean EOF at a frame boundary,
  /// Error(kProtocol) on bad magic, Error(kNetwork) on errors / mid-frame
  /// EOF. Blocks only when no complete frame is buffered.
  bool next(Frame* out);

  /// True when a complete frame is already buffered — next() would return
  /// without touching the socket.
  bool frame_buffered() const;

  /// recv syscalls issued so far (dps.rx.* accounting).
  uint64_t recv_calls() const { return recv_calls_; }

 private:
  size_t buffered() const { return end_ - pos_; }
  /// One recv into the chunk buffer (compacting first). Returns false on
  /// EOF.
  bool fill();

  TcpConn& conn_;
  std::vector<std::byte> buf_;  ///< pooled chunk buffer
  size_t pos_ = 0;              ///< next undecoded byte
  size_t end_ = 0;              ///< one past the last received byte
  uint64_t recv_calls_ = 0;
};

}  // namespace dps
