// In-process fabric: serialized handover between thread-group "nodes".
//
// Reproduces the paper's debugging deployment where several DPS kernels run
// on one host: tokens still cross the full serialization path, but the
// bytes move by function call instead of a socket.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "util/thread_annotations.hpp"

#include "net/fabric.hpp"

namespace dps {

class InprocFabric : public Fabric {
 public:
  explicit InprocFabric(size_t node_count);

  void attach(NodeId self, Handler handler) override;
  /// Grouped delivery: when a batch handler is attached, send() delivers
  /// through it as a batch of one, so in-process runs exercise the same
  /// Controller::on_fabric_batch path as the batching fabrics (TCP, shm).
  void attach_batch(NodeId self, BatchHandler handler) override;
  void send(NodeId from, NodeId to, FrameKind kind,
            std::vector<std::byte> payload) override;
  void shutdown() override;
  uint64_t bytes_sent() const override;
  uint64_t messages_sent() const override;

 private:
  mutable Mutex mu_;
  std::vector<Handler> handlers_ DPS_GUARDED_BY(mu_);
  std::vector<BatchHandler> batch_handlers_ DPS_GUARDED_BY(mu_);
  bool down_ DPS_GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> messages_{0};
};

}  // namespace dps
