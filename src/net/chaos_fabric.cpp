#include "net/chaos_fabric.hpp"

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

#ifdef DPS_TRACE
#include "obs/trace.hpp"
#endif

namespace dps {

ChaosFabric::ChaosFabric(std::shared_ptr<Fabric> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {
  DPS_CHECK(inner_ != nullptr, "ChaosFabric needs an inner fabric");
  timer_ = std::thread([this] { timer_loop(); });
}

ChaosFabric::~ChaosFabric() { shutdown(); }

void ChaosFabric::attach(NodeId self, Handler handler) {
  inner_->attach(self, std::move(handler));
}

void ChaosFabric::attach_batch(NodeId self, BatchHandler handler) {
  // Faults are injected on the send side; delivery passes straight through,
  // so the inner fabric's batching reaches the controller untouched.
  inner_->attach_batch(self, std::move(handler));
}

ChaosFabric::LinkState& ChaosFabric::link(NodeId from, NodeId to) {
  MutexLock lock(mu_);
  auto key = std::make_pair(from, to);
  auto it = links_.find(key);
  if (it == links_.end()) {
    auto ls = std::make_unique<LinkState>();
    // Per-link seed: the k-th frame of a link always draws the k-th number
    // of the same stream, independent of other links' traffic.
    ls->rng.seed(plan_.seed ^ (static_cast<uint64_t>(from + 1) << 32) ^
                 (to + 1));
    it = links_.emplace(key, std::move(ls)).first;
  }
  return *it->second;
}

void ChaosFabric::note_drop(FrameKind kind, NodeId from, NodeId to,
                            size_t bytes) {
  dropped_.fetch_add(1, std::memory_order_relaxed);
  dropped_by_kind_[kind_index(kind)].fetch_add(1, std::memory_order_relaxed);
#ifdef DPS_TRACE
  obs::Trace::instance().record(obs::EventKind::kChaosDrop, from, to,
                                static_cast<uint64_t>(kind), 0, bytes);
#else
  (void)from;
  (void)to;
  (void)bytes;
#endif
}

bool ChaosFabric::severed(NodeId from, NodeId to) const {
  if (killed_.count(from) != 0 || killed_.count(to) != 0) return true;
  auto key = from < to ? std::make_pair(from, to) : std::make_pair(to, from);
  return partitions_.count(key) != 0;
}

void ChaosFabric::send(NodeId from, NodeId to, FrameKind kind,
                       std::vector<std::byte> payload) {
  inject(from, to, kind, std::move(payload), nullptr);
}

void ChaosFabric::send_shared(NodeId from, NodeId to, FrameKind kind,
                              std::vector<std::byte> prefix,
                              SharedPayload body) {
  inject(from, to, kind, std::move(prefix), std::move(body));
}

void ChaosFabric::forward(NodeId from, NodeId to, FrameKind kind,
                          std::vector<std::byte> prefix, SharedPayload body) {
  if (body) {
    inner_->send_shared(from, to, kind, std::move(prefix), std::move(body));
  } else {
    inner_->send(from, to, kind, std::move(prefix));
  }
}

void ChaosFabric::inject(NodeId from, NodeId to, FrameKind kind,
                         std::vector<std::byte> payload, SharedPayload body) {
  const size_t frame_bytes = payload.size() + (body ? body->size() : 0);
  {
    MutexLock lock(mu_);
    if (down_) return;
    if (severed(from, to)) {
      note_drop(kind, from, to, frame_bytes);
      return;
    }
  }

  const LinkFaults& faults = plan_.for_link(from, to);
  bool drop = false, dup = false;
  double delay = 0, dup_delay = 0;
  {
    LinkState& ls = link(from, to);
    MutexLock lock(ls.mu);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    ++ls.frame_count;
    if (faults.drop > 0) drop = uniform(ls.rng) < faults.drop;
    if (faults.duplicate > 0 && uniform(ls.rng) < faults.duplicate) dup = true;
    if (faults.duplicate_every > 0 &&
        ls.frame_count % faults.duplicate_every == 0) {
      dup = true;
    }
    if (faults.delay_max > 0) {
      delay = faults.delay_min +
              uniform(ls.rng) * (faults.delay_max - faults.delay_min);
      dup_delay = faults.delay_min +
                  uniform(ls.rng) * (faults.delay_max - faults.delay_min);
    }
  }
  if (drop) {
    note_drop(kind, from, to, frame_bytes);
    return;
  }
  if (dup) {
    duplicated_.fetch_add(1, std::memory_order_relaxed);
#ifdef DPS_TRACE
    obs::Trace::instance().record(obs::EventKind::kChaosDup, from, to,
                                  static_cast<uint64_t>(kind), 0, frame_bytes);
#endif
    // Only the owned prefix is copied; a duplicated multicast frame keeps
    // sharing the encoded body with the original.
    std::vector<std::byte> copy = payload;
    if (dup_delay > 0) {
      enqueue_delayed({mono_seconds() + dup_delay, 0, from, to, kind,
                       std::move(copy), body});
    } else {
      forward(from, to, kind, std::move(copy), body);
    }
  }
  if (delay > 0) {
    delayed_.fetch_add(1, std::memory_order_relaxed);
#ifdef DPS_TRACE
    obs::Trace::instance().record(obs::EventKind::kChaosDelay, from, to,
                                  static_cast<uint64_t>(kind),
                                  static_cast<uint64_t>(delay * 1e9),
                                  frame_bytes);
#endif
    enqueue_delayed({mono_seconds() + delay, 0, from, to, kind,
                     std::move(payload), std::move(body)});
    return;
  }
  forward(from, to, kind, std::move(payload), std::move(body));
}

void ChaosFabric::enqueue_delayed(Delayed d) {
  MutexLock lock(timer_mu_);
  if (timer_stop_) return;
  d.order = delayed_order_++;
  delayed_queue_.push(std::move(d));
  timer_cv_.notify_all();
}

void ChaosFabric::timer_loop() {
  MutexLock lock(timer_mu_);
  for (;;) {
    if (timer_stop_) return;
    if (delayed_queue_.empty()) {
      timer_cv_.wait(timer_mu_);
      continue;
    }
    const double now = mono_seconds();
    if (delayed_queue_.top().due > now) {
      timer_cv_.wait_for(timer_mu_, std::chrono::duration<double>(
                                        delayed_queue_.top().due - now));
      continue;
    }
    Delayed d = delayed_queue_.top();
    delayed_queue_.pop();
    lock.unlock();
    bool cut;
    {
      MutexLock g(mu_);
      cut = down_ || severed(d.from, d.to);
    }
    if (cut) {
      note_drop(d.kind, d.from, d.to,
                d.payload.size() + (d.shared ? d.shared->size() : 0));
    } else {
      try {
        forward(d.from, d.to, d.kind, std::move(d.payload),
                std::move(d.shared));
      } catch (const Error& e) {
        DPS_WARN("chaos fabric: delayed delivery failed: " << e.what());
      }
    }
    lock.lock();
  }
}

void ChaosFabric::kill_node(NodeId node) {
  MutexLock lock(mu_);
  killed_.insert(node);
  DPS_INFO("chaos fabric: node " << node << " killed");
}

void ChaosFabric::partition(NodeId a, NodeId b) {
  MutexLock lock(mu_);
  partitions_.insert(a < b ? std::make_pair(a, b) : std::make_pair(b, a));
}

void ChaosFabric::heal(NodeId a, NodeId b) {
  MutexLock lock(mu_);
  partitions_.erase(a < b ? std::make_pair(a, b) : std::make_pair(b, a));
}

void ChaosFabric::shutdown() {
  {
    MutexLock lock(mu_);
    if (down_) return;
    down_ = true;
  }
  {
    MutexLock lock(timer_mu_);
    timer_stop_ = true;
    timer_cv_.notify_all();
  }
  if (timer_.joinable()) timer_.join();
  inner_->shutdown();
}

}  // namespace dps
