#include "net/name_registry.hpp"

namespace dps {

void NameRegistry::publish(const std::string& name, const std::string& value) {
  MutexLock lock(mu_);
  entries_[name] = value;
  domain_.notify_all(published_);
}

bool NameRegistry::publish_if_absent(const std::string& name,
                                     const std::string& value) {
  MutexLock lock(mu_);
  auto [it, inserted] = entries_.emplace(name, value);
  if (inserted) domain_.notify_all(published_);
  return inserted;
}

void NameRegistry::withdraw(const std::string& name) {
  MutexLock lock(mu_);
  entries_.erase(name);
}

std::optional<std::string> NameRegistry::lookup(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string NameRegistry::wait_for(const std::string& name) {
  MutexLock lock(mu_);
  domain_.wait_until(published_, mu_,
                     [&] { return entries_.count(name) != 0; });
  return entries_[name];
}

std::vector<std::string> NameRegistry::names() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

}  // namespace dps
