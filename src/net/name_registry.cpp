#include "net/name_registry.hpp"

namespace dps {

void NameRegistry::publish(const std::string& name, const std::string& value) {
  std::unique_lock<std::mutex> lock(mu_);
  entries_[name] = value;
  domain_.notify_all(published_);
}

bool NameRegistry::publish_if_absent(const std::string& name,
                                     const std::string& value) {
  std::unique_lock<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(name, value);
  if (inserted) domain_.notify_all(published_);
  return inserted;
}

void NameRegistry::withdraw(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(name);
}

std::optional<std::string> NameRegistry::lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string NameRegistry::wait_for(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  domain_.wait_until(published_, lock,
                     [&] { return entries_.count(name) != 0; });
  return entries_[name];
}

std::vector<std::string> NameRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

}  // namespace dps
