// Name registry: the in-process equivalent of the paper's name server.
//
// DPS kernels "locate each other either by using UDP broadcasts or by
// accessing a simple name server". Inside one process the registry is a
// thread-safe name -> value map with blocking lookup (a lookup can wait for
// a registration that has not happened yet, which is how lazily started
// services are found). The multi-process kernel (src/kernel) exposes the
// same map over TCP.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/domain.hpp"
#include "util/thread_annotations.hpp"

namespace dps {

class NameRegistry {
 public:
  explicit NameRegistry(ExecDomain& domain) : domain_(domain) {}

  /// Registers or replaces a name.
  void publish(const std::string& name, const std::string& value);

  /// Atomic publish-if-absent; returns false when the name already exists
  /// (used as a spawn lock by the multi-process kernel).
  bool publish_if_absent(const std::string& name, const std::string& value);

  /// Removes a name (no-op if absent).
  void withdraw(const std::string& name);

  /// Non-blocking lookup.
  std::optional<std::string> lookup(const std::string& name) const;

  /// Blocking lookup: waits until the name is published. Throws
  /// Error(kDeadlock) if a simulated run stalls while waiting.
  std::string wait_for(const std::string& name);

  std::vector<std::string> names() const;

 private:
  ExecDomain& domain_;
  mutable Mutex mu_;
  WaitPoint published_ DPS_GUARDED_BY(mu_);
  std::map<std::string, std::string> entries_ DPS_GUARDED_BY(mu_);
};

}  // namespace dps
