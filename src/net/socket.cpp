#include "net/socket.hpp"

#include <arpa/inet.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace dps {
namespace {

[[noreturn]] void net_fail(const std::string& what) {
  raise(Errc::kNetwork, what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpConn& TcpConn::operator=(TcpConn&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

TcpConn TcpConn::connect(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) net_fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    raise(Errc::kNetwork, "invalid IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    net_fail("connect to " + host + ":" + std::to_string(port));
  }
  set_nodelay(fd);
  return TcpConn(fd);
}

void TcpConn::send_all(const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t n = ::send(fd_, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      net_fail("send");
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
}

void TcpConn::writev_all(iovec* iov, size_t iovcnt) {
  // sendmsg rather than writev: we need MSG_NOSIGNAL so a dead peer yields
  // EPIPE instead of killing the process, matching send_all.
  while (iovcnt > 0) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = std::min<size_t>(iovcnt, IOV_MAX);
    ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      net_fail("sendmsg");
    }
    size_t left = static_cast<size_t>(n);
    while (iovcnt > 0 && left >= iov->iov_len) {
      left -= iov->iov_len;
      ++iov;
      --iovcnt;
    }
    if (left > 0) {
      iov->iov_base = static_cast<char*>(iov->iov_base) + left;
      iov->iov_len -= left;
    }
  }
}

bool TcpConn::recv_all(void* data, size_t size) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      net_fail("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      raise(Errc::kNetwork, "connection closed mid-message");
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

size_t TcpConn::recv_some(void* data, size_t max) {
  for (;;) {
    ssize_t n = ::recv(fd_, data, max, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    net_fail("recv");
  }
}

void TcpConn::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpConn::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener TcpListener::bind(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) net_fail("socket");
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    net_fail("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    net_fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    net_fail("getsockname");
  }
  TcpListener l;
  l.fd_ = fd;
  l.port_ = ntohs(addr.sin_port);
  return l;
}

TcpConn TcpListener::accept() {
  for (;;) {
    int fd = ::accept(fd_.load(), nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return TcpConn(fd);
    }
    if (errno == EINTR) continue;
    // EBADF / EINVAL after a concurrent close(): clean shutdown.
    return TcpConn();
  }
}

void TcpListener::close() noexcept {
  int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() unblocks a thread parked in accept() on Linux.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace dps
