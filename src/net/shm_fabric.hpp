// ShmFabric: POSIX shared-memory transport for DPS kernels on one host.
//
// The paper's several-kernels-on-one-computer deployment pays the full TCP
// stack between co-located kernel processes. This fabric replaces that hop
// with shared memory: every *receiving* node owns one POSIX shm segment
// (its "inbox") holding a strictly single-producer/single-consumer byte
// ring per sending peer plus one futex doorbell word. Producers memcpy
// framed messages straight into their ring and advance a release-ordered
// head; the inbox's RX thread drains all rings into grouped deliveries
// mirroring FrameReader's 64 KB chunk batches, so the engine's
// Controller::on_fabric_batch path is exercised exactly like on TCP.
//
// Blocking is futex-parked on both sides (no spinning): the consumer parks
// on the doorbell when every ring is empty, a producer parks on its ring's
// space word when the ring is full. Both park paths use the classic
// capture/recheck protocol (Dekker-style store-load fences around a parked
// flag) so wakeups cannot be lost, and both wait with a timeout so a dead
// peer degrades into polling instead of a hang.
//
// One segment per *receiver* rather than per peer pair is a deliberate
// deviation from a literal pair-wise layout: a single RX thread can only
// futex-wait on one word, and co-locating the rings lets one doorbell
// cover all peers while each ring stays SPSC at the memory level. Within
// one process, multiple worker threads may send toward the same peer; an
// in-process mutex per ring serializes them, so the cross-process protocol
// still sees exactly one producer.
//
// Frames larger than a ring stream through it: the producer publishes the
// head incrementally as space frees up and the consumer reassembles from
// per-ring partial-frame state, so multi-megabyte tokens need no special
// casing (and no segment as large as the largest token).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/fabric.hpp"
#include "util/thread_annotations.hpp"

namespace dps {

/// True when POSIX shared memory is usable here (probed by creating,
/// mapping and unlinking a small segment). Tests and the tier1 shm stage
/// use it to SKIP gracefully when /dev/shm is absent or unwritable.
bool shm_available();

/// Traffic/parking statistics of one producer ring.
struct ShmTxStats {
  uint64_t frames = 0;
  uint64_t bytes = 0;           ///< ring bytes written (headers included)
  uint64_t doorbell_wakes = 0;  ///< futex wakes issued to a parked consumer
  uint64_t space_parks = 0;     ///< times the producer waited for ring space
};

class ShmSegment;  // mapped segment; layout lives in shm_fabric.cpp

/// Consumer end of one node's shm inbox. Creates and owns the POSIX
/// segment (unlinked again on stop()) and runs the RX thread that drains
/// every peer ring into batched NodeMessage deliveries.
class ShmInbox {
 public:
  using Deliver = std::function<void(std::vector<NodeMessage>&&)>;

  /// Creates segment `segment_name` with `peers` producer rings of
  /// `ring_bytes` each (rounded up to a power of two). Throws
  /// Error(kNetwork) when shared memory is unavailable.
  ShmInbox(std::string segment_name, NodeId self, uint32_t peers,
           size_t ring_bytes);
  ~ShmInbox();
  ShmInbox(const ShmInbox&) = delete;
  ShmInbox& operator=(const ShmInbox&) = delete;

  const std::string& segment_name() const { return name_; }

  /// Spawns the RX thread. `deliver` runs on that thread with batches of
  /// messages in per-peer FIFO order; same non-blocking contract as
  /// Fabric::BatchHandler.
  void start(Deliver deliver);

  /// Stops and joins the RX thread and unlinks the segment. Idempotent.
  void stop();

 private:
  void rx_loop();

  std::string name_;
  NodeId self_;
  std::unique_ptr<ShmSegment> seg_;
  Deliver deliver_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::thread rx_;
};

/// Producer end: attaches to a peer's existing inbox segment (same or
/// another process) and writes frames into the ring indexed by `self`.
/// send() may be called from any thread of the owning process; an internal
/// mutex keeps the shared-memory ring single-producer.
class ShmPeerTx {
 public:
  /// Opens `segment_name` created by a peer's ShmInbox. Throws
  /// Error(kNetwork) if the segment does not exist or fails validation.
  ShmPeerTx(const std::string& segment_name, NodeId self);
  ~ShmPeerTx();
  ShmPeerTx(const ShmPeerTx&) = delete;
  ShmPeerTx& operator=(const ShmPeerTx&) = delete;

  /// Writes one frame: `prefix` followed by `body` (either may be empty).
  /// Blocks (futex-parked) while the ring is full; returns false without
  /// sending once the receiving inbox has shut down.
  bool send(FrameKind kind, const std::byte* prefix, size_t prefix_len,
            const std::byte* body, size_t body_len);

  ShmTxStats stats() const;

 private:
  std::unique_ptr<ShmSegment> seg_;
  uint32_t ring_;
  Mutex mu_;  ///< serializes this process's senders; ring stays SPSC
  std::atomic<uint64_t> frames_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> wakes_{0};
  std::atomic<uint64_t> parks_{0};
};

/// Standalone Fabric over shm inboxes: `node_count` nodes in one process,
/// every message crossing real /dev/shm bytes. This is the
/// several-kernels-on-one-host mode used by tests and benches; the
/// multi-process deployment reuses ShmInbox/ShmPeerTx directly from the
/// kernel runtime with name-server negotiation (kernel/kernel.cpp).
class ShmFabric : public Fabric {
 public:
  /// Throws Error(kNetwork) when shared memory is unavailable; callers
  /// should probe shm_available() first.
  explicit ShmFabric(size_t node_count, size_t ring_bytes = 1 << 20);
  ~ShmFabric() override;

  void attach(NodeId self, Handler handler) override;
  void attach_batch(NodeId self, BatchHandler handler) override;
  void send(NodeId from, NodeId to, FrameKind kind,
            std::vector<std::byte> payload) override;
  /// Writes prefix + shared body straight into the ring: the multicast
  /// body is copied once per ring and never materialized into an owned
  /// per-destination payload.
  void send_shared(NodeId from, NodeId to, FrameKind kind,
                   std::vector<std::byte> prefix, SharedPayload body) override;
  void shutdown() override;
  uint64_t bytes_sent() const override;
  uint64_t messages_sent() const override;

 private:
  void deliver(NodeId to, std::vector<NodeMessage>&& batch);

  size_t nodes_;
  std::vector<std::unique_ptr<ShmInbox>> inboxes_;       // one per receiver
  std::vector<std::unique_ptr<ShmPeerTx>> tx_;           // from * nodes + to
  mutable Mutex mu_;
  std::vector<Handler> handlers_ DPS_GUARDED_BY(mu_);
  std::vector<BatchHandler> batch_handlers_ DPS_GUARDED_BY(mu_);
  bool down_ DPS_GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> messages_{0};
};

}  // namespace dps
