// Fabric: the node-to-node message transport of a cluster run.
//
// A cluster's nodes exchange framed messages (token envelopes, flow-control
// acks) through a Fabric. Three implementations exist, all carrying the
// same frames so they are interchangeable under the engine:
//
//  * InprocFabric — nodes are thread groups of one process; frames are
//    handed over in memory but only *after* full serialization, exactly
//    like the paper's several-kernels-on-one-host debugging mode, which
//    "enforces the use of the networking code ... although the application
//    is running within a single computer".
//  * TcpFabric (net/tcp_transport.hpp) — real TCP sockets on localhost,
//    with lazy connection establishment as in the paper's runtime.
//  * SimFabric (sim/link.hpp) — deliveries modeled on a virtual clock with
//    per-NIC bandwidth/latency, reproducing the paper's Gigabit Ethernet.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/framing.hpp"

namespace dps {

/// One delivered inter-node message.
struct NodeMessage {
  NodeId from = 0;
  FrameKind kind = FrameKind::kEnvelope;
  std::vector<std::byte> payload;
};

class Fabric {
 public:
  /// Delivery callback. Handlers MUST be non-blocking (enqueue + notify
  /// only): under SimFabric they run on the scheduler thread, and a
  /// blocking handler would freeze the virtual clock.
  using Handler = std::function<void(NodeMessage&&)>;

  /// Grouped delivery callback: every message decoded from one receive
  /// chunk, in arrival order. Same non-blocking contract as Handler.
  using BatchHandler = std::function<void(std::vector<NodeMessage>&&)>;

  virtual ~Fabric() = default;

  /// Registers node `self`'s delivery handler. Must complete for every
  /// node before any traffic flows to it.
  virtual void attach(NodeId self, Handler handler) = 0;

  /// Optionally registers a grouped delivery handler. Fabrics that batch on
  /// the receive side (TcpFabric) prefer it over the per-message handler
  /// when both are attached; the default implementation ignores it, so
  /// per-message fabrics (inproc, sim) are unaffected. Must complete before
  /// traffic flows, like attach().
  virtual void attach_batch(NodeId self, BatchHandler handler) {
    (void)self;
    (void)handler;
  }

  /// Sends one message; thread safe; may block (TCP backpressure).
  virtual void send(NodeId from, NodeId to, FrameKind kind,
                    std::vector<std::byte> payload) = 0;

  /// Sends one message whose wire payload is `prefix` followed by `*body`.
  /// The body is immutable and may be shared by many concurrent sends —
  /// this is the multicast hot path: one encode, K transmits. The default
  /// materializes the two segments into one owned payload; TcpFabric
  /// overrides it to point an extra writev iovec at the shared bytes, and
  /// ChaosFabric to inject per-link faults without copying the body.
  virtual void send_shared(NodeId from, NodeId to, FrameKind kind,
                           std::vector<std::byte> prefix, SharedPayload body) {
    std::vector<std::byte> payload = std::move(prefix);
    if (body && !body->empty()) {
      payload.insert(payload.end(), body->begin(), body->end());
    }
    send(from, to, kind, std::move(payload));
  }

  /// Stops delivery and releases transport resources. Idempotent.
  virtual void shutdown() = 0;

  // Traffic statistics (frame headers included), for benchmarks.
  virtual uint64_t bytes_sent() const = 0;
  virtual uint64_t messages_sent() const = 0;
};

}  // namespace dps
