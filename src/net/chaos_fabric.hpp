// ChaosFabric: deterministic fault injection around any Fabric.
//
// Wraps an inner fabric (inproc, TCP, ...) and perturbs its traffic
// according to a FaultPlan: per-link frame drop, duplication, delay-based
// reorder, link partitions, and whole-node kill. Faults are decided by a
// per-link PRNG seeded from the plan, so a failing run reproduces from its
// seed. The reliable-delivery layer of the Controller
// (docs/FAULT_TOLERANCE.md) is what makes split–merge calls survive these
// faults; ChaosFabric is the adversary the tests exercise it against.
//
// Wall-clock only: delayed frames are re-sent by a timer thread, which
// would freeze a SimDomain's virtual clock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <queue>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "net/fabric.hpp"
#include "util/thread_annotations.hpp"

namespace dps {

/// Fault parameters of one directed link (frames from -> to).
struct LinkFaults {
  double drop = 0;             ///< per-frame drop probability [0,1]
  double duplicate = 0;        ///< per-frame duplication probability [0,1]
  uint32_t duplicate_every = 0;  ///< deterministic: duplicate every Nth
                                 ///< frame on the link (0 = off)
  double delay_min = 0;        ///< delivery delay lower bound, seconds
  double delay_max = 0;        ///< upper bound; > 0 causes reordering
};

/// Cluster-wide fault schedule. `all` applies to every link unless a
/// per-link override is present in `links`.
struct FaultPlan {
  uint64_t seed = 0x5eed;
  LinkFaults all;
  std::map<std::pair<NodeId, NodeId>, LinkFaults> links;

  const LinkFaults& for_link(NodeId from, NodeId to) const {
    auto it = links.find({from, to});
    return it == links.end() ? all : it->second;
  }
};

class ChaosFabric : public Fabric {
 public:
  ChaosFabric(std::shared_ptr<Fabric> inner, FaultPlan plan);
  ~ChaosFabric() override;

  void attach(NodeId self, Handler handler) override;
  void attach_batch(NodeId self, BatchHandler handler) override;
  void send(NodeId from, NodeId to, FrameKind kind,
            std::vector<std::byte> payload) override;
  /// Multicast frames draw per-link faults exactly like unicast ones; a
  /// duplicate copies only the owned prefix and re-shares the body.
  void send_shared(NodeId from, NodeId to, FrameKind kind,
                   std::vector<std::byte> prefix, SharedPayload body) override;
  void shutdown() override;
  uint64_t bytes_sent() const override { return inner_->bytes_sent(); }
  uint64_t messages_sent() const override { return inner_->messages_sent(); }

  /// Node failure: every frame from or to `node` is dropped from now on.
  /// The node's process state survives (this is a network death, like a
  /// pulled cable); heartbeat detection declares it dead.
  void kill_node(NodeId node);

  /// Cuts both directions between a and b until heal() is called.
  void partition(NodeId a, NodeId b);
  void heal(NodeId a, NodeId b);

  // Injection statistics, for test assertions.
  uint64_t frames_dropped() const { return dropped_.load(); }
  uint64_t frames_duplicated() const { return duplicated_.load(); }
  uint64_t frames_delayed() const { return delayed_.load(); }

  /// Drops of one frame kind only (e.g. FrameKind::kReliable). Every
  /// dropped kReliable data frame forces the sender's reliability layer to
  /// retransmit it, so tests can assert
  ///   sum(retransmissions) >= frames_dropped(FrameKind::kReliable).
  uint64_t frames_dropped(FrameKind kind) const {
    return dropped_by_kind_[kind_index(kind)].load();
  }

 private:
  struct LinkState {
    Mutex mu;
    std::mt19937_64 rng DPS_GUARDED_BY(mu);
    uint64_t frame_count DPS_GUARDED_BY(mu) = 0;
  };
  struct Delayed {
    double due;
    uint64_t order;  // tie-break: preserves injection order at equal due
    NodeId from, to;
    FrameKind kind;
    std::vector<std::byte> payload;
    SharedPayload shared;  ///< optional shared body (multicast frames)
    bool operator>(const Delayed& o) const {
      return due != o.due ? due > o.due : order > o.order;
    }
  };

  LinkState& link(NodeId from, NodeId to);
  bool severed(NodeId from, NodeId to) const DPS_REQUIRES(mu_);
  /// Shared fault pipeline for send() and send_shared(); `body` may be null.
  void inject(NodeId from, NodeId to, FrameKind kind,
              std::vector<std::byte> prefix, SharedPayload body);
  /// Hands a (possibly shared-body) frame to the inner fabric.
  void forward(NodeId from, NodeId to, FrameKind kind,
               std::vector<std::byte> prefix, SharedPayload body);
  void enqueue_delayed(Delayed d);
  void timer_loop();
  void note_drop(FrameKind kind, NodeId from, NodeId to, size_t bytes);

  static constexpr size_t kKindSlots = 16;
  static size_t kind_index(FrameKind kind) {
    const auto k = static_cast<size_t>(kind);
    return k < kKindSlots ? k : 0;
  }

  std::shared_ptr<Fabric> inner_;
  FaultPlan plan_;

  mutable Mutex mu_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<LinkState>> links_
      DPS_GUARDED_BY(mu_);
  std::set<NodeId> killed_ DPS_GUARDED_BY(mu_);
  /// Normalized a < b.
  std::set<std::pair<NodeId, NodeId>> partitions_ DPS_GUARDED_BY(mu_);
  bool down_ DPS_GUARDED_BY(mu_) = false;

  Mutex timer_mu_;
  CondVar timer_cv_;
  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<Delayed>>
      delayed_queue_ DPS_GUARDED_BY(timer_mu_);
  uint64_t delayed_order_ DPS_GUARDED_BY(timer_mu_) = 0;
  bool timer_stop_ DPS_GUARDED_BY(timer_mu_) = false;
  std::thread timer_;

  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> duplicated_{0};
  std::atomic<uint64_t> delayed_{0};
  std::atomic<uint64_t> dropped_by_kind_[kKindSlots] = {};
};

}  // namespace dps
