// RAII TCP socket wrappers (IPv4, blocking I/O).
//
// The DPS runtime "performs communications using TCP sockets" with
// connections opened lazily (paper section 4). These wrappers own file
// descriptors, set the options a latency-sensitive token stream needs
// (TCP_NODELAY), and expose full-buffer send/recv so callers never handle
// short reads/writes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

struct iovec;  // <sys/uio.h>

namespace dps {

/// An established, owned TCP connection.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;
  TcpConn(TcpConn&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  TcpConn& operator=(TcpConn&& o) noexcept;
  ~TcpConn() { close(); }

  /// Connects to host:port; throws Error(kNetwork) on failure.
  static TcpConn connect(const std::string& host, uint16_t port);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// Sends the whole buffer; throws Error(kNetwork) on failure.
  void send_all(const void* data, size_t size);

  /// Scatter-gather send of every iovec in order; handles partial writes
  /// and EINTR, throws Error(kNetwork) on failure. `iov` is adjusted in
  /// place while draining (caller's array is consumed). Accepts any count —
  /// batches larger than the kernel's IOV_MAX are sent in chunks.
  void writev_all(iovec* iov, size_t iovcnt);

  /// Receives exactly `size` bytes. Returns false on clean EOF at a frame
  /// boundary (size bytes into the buffer, zero read so far); throws on
  /// errors and on EOF mid-buffer.
  bool recv_all(void* data, size_t size);

  /// Receives whatever is available, up to `max` bytes, in one syscall
  /// (blocks only when nothing is buffered). Returns the byte count, or 0
  /// on EOF. Throws Error(kNetwork) on socket errors. This is the chunked
  /// read the batched receive path is built on (docs/PERFORMANCE.md).
  size_t recv_some(void* data, size_t max);

  /// Shuts down the write side (signals EOF to the peer).
  void shutdown_write();

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  TcpListener() = default;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  TcpListener(TcpListener&& o) noexcept
      : fd_(o.fd_.exchange(-1)), port_(o.port_) {
    o.port_ = 0;
  }
  TcpListener& operator=(TcpListener&& o) noexcept {
    if (this != &o) {
      close();
      fd_ = o.fd_.exchange(-1);
      port_ = o.port_;
      o.port_ = 0;
    }
    return *this;
  }
  ~TcpListener() { close(); }

  /// Binds to 127.0.0.1:port (port 0 picks an ephemeral port).
  static TcpListener bind(uint16_t port);

  /// Blocks until a connection arrives. Returns an invalid TcpConn if the
  /// listener was closed concurrently (clean shutdown path).
  TcpConn accept();

  uint16_t port() const noexcept { return port_; }
  bool valid() const noexcept { return fd_.load() >= 0; }
  void close() noexcept;

 private:
  // Atomic: close() races with a thread parked in accept() by design
  // (closing the fd is how that thread is unblocked for shutdown).
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace dps
