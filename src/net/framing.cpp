#include "net/framing.hpp"

#include <sys/uio.h>

#include <cstring>

#include "serial/buffer_pool.hpp"
#include "util/error.hpp"

namespace dps {

namespace {
struct WireHeader {
  uint32_t magic;
  uint16_t kind;
  uint16_t reserved;
  uint32_t from;
  uint32_t length;
};
static_assert(sizeof(WireHeader) == 16);

size_t shared_size(const Frame& frame) {
  return frame.shared ? frame.shared->size() : 0;
}

WireHeader make_header(const Frame& frame) {
  WireHeader h{};
  h.magic = kFrameMagic;
  h.kind = static_cast<uint16_t>(frame.kind);
  h.reserved = 0;
  h.from = frame.from;
  h.length = static_cast<uint32_t>(frame.payload.size() + shared_size(frame));
  return h;
}
}  // namespace

size_t frame_wire_size(const Frame& frame) {
  return sizeof(WireHeader) + frame.payload.size() + shared_size(frame);
}

void write_frame(TcpConn& conn, const Frame& frame) {
  WireHeader h = make_header(frame);
  iovec iov[3];
  iov[0].iov_base = &h;
  iov[0].iov_len = sizeof(h);
  size_t cnt = 1;
  if (!frame.payload.empty()) {
    iov[cnt].iov_base = const_cast<std::byte*>(frame.payload.data());
    iov[cnt].iov_len = frame.payload.size();
    ++cnt;
  }
  if (shared_size(frame) > 0) {
    iov[cnt].iov_base = const_cast<std::byte*>(frame.shared->data());
    iov[cnt].iov_len = frame.shared->size();
    ++cnt;
  }
  conn.writev_all(iov, cnt);
}

void write_frames(TcpConn& conn, const Frame* frames, size_t count) {
  if (count == 0) return;
  // Headers live in one contiguous array so their iovecs stay valid for the
  // whole scatter-gather write; payload (and shared-body) iovecs point into
  // the frames.
  std::vector<WireHeader> headers(count);
  std::vector<iovec> iov;
  iov.reserve(3 * count);
  for (size_t i = 0; i < count; ++i) {
    headers[i] = make_header(frames[i]);
    iov.push_back({&headers[i], sizeof(WireHeader)});
    if (!frames[i].payload.empty()) {
      iov.push_back({const_cast<std::byte*>(frames[i].payload.data()),
                     frames[i].payload.size()});
    }
    if (shared_size(frames[i]) > 0) {
      iov.push_back({const_cast<std::byte*>(frames[i].shared->data()),
                     frames[i].shared->size()});
    }
  }
  conn.writev_all(iov.data(), iov.size());
}

bool read_frame(TcpConn& conn, Frame* out) {
  WireHeader h{};
  if (!conn.recv_all(&h, sizeof(h))) return false;
  if (h.magic != kFrameMagic) {
    raise(Errc::kProtocol, "bad frame magic");
  }
  out->kind = static_cast<FrameKind>(h.kind);
  out->from = h.from;
  out->payload.resize(h.length);
  if (h.length > 0 && !conn.recv_all(out->payload.data(), h.length)) {
    raise(Errc::kNetwork, "connection closed mid-frame");
  }
  return true;
}

namespace {
// One refill per chunk: sized so a burst of typical tokens (hundreds of
// bytes to a few kB each) decodes from a single recv, while staying small
// enough for BufferPool to retain the buffer between connections.
constexpr size_t kRxChunkSize = 64 * 1024;
}  // namespace

FrameReader::FrameReader(TcpConn& conn) : conn_(conn) {
  buf_ = BufferPool::instance().acquire(kRxChunkSize);
  buf_.resize(kRxChunkSize);
}

FrameReader::~FrameReader() {
  BufferPool::instance().release(std::move(buf_));
}

bool FrameReader::fill() {
  if (pos_ > 0) {
    // Compact the undecoded tail to the front so the recv below can use
    // the whole remaining chunk.
    std::memmove(buf_.data(), buf_.data() + pos_, buffered());
    end_ -= pos_;
    pos_ = 0;
  }
  const size_t n = conn_.recv_some(buf_.data() + end_, buf_.size() - end_);
  ++recv_calls_;
  if (n == 0) return false;  // EOF
  end_ += n;
  return true;
}

bool FrameReader::frame_buffered() const {
  if (buffered() < sizeof(WireHeader)) return false;
  WireHeader h{};
  std::memcpy(&h, buf_.data() + pos_, sizeof(h));
  return buffered() >= sizeof(h) + h.length;
}

bool FrameReader::next(Frame* out) {
  WireHeader h{};
  while (buffered() < sizeof(h)) {
    if (!fill()) {
      if (buffered() == 0) return false;  // clean EOF at a frame boundary
      raise(Errc::kNetwork, "connection closed mid-frame");
    }
  }
  std::memcpy(&h, buf_.data() + pos_, sizeof(h));
  if (h.magic != kFrameMagic) {
    raise(Errc::kProtocol, "bad frame magic");
  }
  out->kind = static_cast<FrameKind>(h.kind);
  out->from = h.from;
  out->payload = BufferPool::instance().acquire(h.length);
  out->payload.resize(h.length);
  const size_t total = sizeof(h) + h.length;
  if (total <= buf_.size()) {
    // Fits in the chunk: keep refilling so trailing frames of the same
    // burst ride along in the same recv.
    while (buffered() < total) {
      if (!fill()) raise(Errc::kNetwork, "connection closed mid-frame");
    }
    if (h.length > 0) {
      std::memcpy(out->payload.data(), buf_.data() + pos_ + sizeof(h),
                  h.length);
    }
    pos_ += total;
    return true;
  }
  // Oversized frame: move what is buffered, then read the tail straight
  // into the payload buffer (no intermediate copy through the chunk).
  const size_t have = buffered() - sizeof(h);
  if (have > 0) {
    std::memcpy(out->payload.data(), buf_.data() + pos_ + sizeof(h), have);
  }
  pos_ = end_ = 0;
  ++recv_calls_;  // recv_all below is one logical read
  if (h.length > have &&
      !conn_.recv_all(out->payload.data() + have, h.length - have)) {
    raise(Errc::kNetwork, "connection closed mid-frame");
  }
  return true;
}

}  // namespace dps
