#include "net/framing.hpp"

#include <cstring>

#include "util/error.hpp"

namespace dps {

namespace {
struct WireHeader {
  uint32_t magic;
  uint16_t kind;
  uint16_t reserved;
  uint32_t from;
  uint32_t length;
};
static_assert(sizeof(WireHeader) == 16);
}  // namespace

size_t frame_wire_size(const Frame& frame) {
  return sizeof(WireHeader) + frame.payload.size();
}

void write_frame(TcpConn& conn, const Frame& frame) {
  WireHeader h{};
  h.magic = kFrameMagic;
  h.kind = static_cast<uint16_t>(frame.kind);
  h.reserved = 0;
  h.from = frame.from;
  h.length = static_cast<uint32_t>(frame.payload.size());
  // One send for the header and one for the payload; TCP_NODELAY is set, but
  // the payload send immediately follows so coalescing still happens for
  // small frames on loopback.
  conn.send_all(&h, sizeof(h));
  if (!frame.payload.empty()) {
    conn.send_all(frame.payload.data(), frame.payload.size());
  }
}

bool read_frame(TcpConn& conn, Frame* out) {
  WireHeader h{};
  if (!conn.recv_all(&h, sizeof(h))) return false;
  if (h.magic != kFrameMagic) {
    raise(Errc::kProtocol, "bad frame magic");
  }
  out->kind = static_cast<FrameKind>(h.kind);
  out->from = h.from;
  out->payload.resize(h.length);
  if (h.length > 0 && !conn.recv_all(out->payload.data(), h.length)) {
    raise(Errc::kNetwork, "connection closed mid-frame");
  }
  return true;
}

}  // namespace dps
