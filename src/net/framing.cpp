#include "net/framing.hpp"

#include <sys/uio.h>

#include <cstring>

#include "util/error.hpp"

namespace dps {

namespace {
struct WireHeader {
  uint32_t magic;
  uint16_t kind;
  uint16_t reserved;
  uint32_t from;
  uint32_t length;
};
static_assert(sizeof(WireHeader) == 16);

WireHeader make_header(const Frame& frame) {
  WireHeader h{};
  h.magic = kFrameMagic;
  h.kind = static_cast<uint16_t>(frame.kind);
  h.reserved = 0;
  h.from = frame.from;
  h.length = static_cast<uint32_t>(frame.payload.size());
  return h;
}
}  // namespace

size_t frame_wire_size(const Frame& frame) {
  return sizeof(WireHeader) + frame.payload.size();
}

void write_frame(TcpConn& conn, const Frame& frame) {
  WireHeader h = make_header(frame);
  iovec iov[2];
  iov[0].iov_base = &h;
  iov[0].iov_len = sizeof(h);
  size_t cnt = 1;
  if (!frame.payload.empty()) {
    iov[1].iov_base = const_cast<std::byte*>(frame.payload.data());
    iov[1].iov_len = frame.payload.size();
    cnt = 2;
  }
  conn.writev_all(iov, cnt);
}

void write_frames(TcpConn& conn, const Frame* frames, size_t count) {
  if (count == 0) return;
  // Headers live in one contiguous array so their iovecs stay valid for the
  // whole scatter-gather write; payload iovecs point into the frames.
  std::vector<WireHeader> headers(count);
  std::vector<iovec> iov;
  iov.reserve(2 * count);
  for (size_t i = 0; i < count; ++i) {
    headers[i] = make_header(frames[i]);
    iov.push_back({&headers[i], sizeof(WireHeader)});
    if (!frames[i].payload.empty()) {
      iov.push_back({const_cast<std::byte*>(frames[i].payload.data()),
                     frames[i].payload.size()});
    }
  }
  conn.writev_all(iov.data(), iov.size());
}

bool read_frame(TcpConn& conn, Frame* out) {
  WireHeader h{};
  if (!conn.recv_all(&h, sizeof(h))) return false;
  if (h.magic != kFrameMagic) {
    raise(Errc::kProtocol, "bad frame magic");
  }
  out->kind = static_cast<FrameKind>(h.kind);
  out->from = h.from;
  out->payload.resize(h.length);
  if (h.length > 0 && !conn.recv_all(out->payload.data(), h.length)) {
    raise(Errc::kNetwork, "connection closed mid-frame");
  }
  return true;
}

}  // namespace dps
