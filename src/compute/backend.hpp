// Pluggable leaf-compute backends (HPVM-style kernel seam).
//
// DPS leaf operations spend their cycles inside compute kernels — the Life
// stepper, matrix blocks, frame filters. This seam separates *which
// implementation* of a kernel runs from the flow graph that invokes it: a
// kernel family is a plain struct of function pointers (e.g.
// life::LifeKernel in life/fast_step.hpp), and BackendRegistry<K> holds the
// named implementations plus the active selection. Call sites dispatch
// through `BackendRegistry<K>::active()` and stay oblivious to whether the
// naive reference or an optimized kernel is running underneath.
//
// Selection precedence (first match wins):
//   1. an explicit BackendRegistry<K>::select(name) — tests and benches;
//   2. the process-wide default requested through set_default_backend()
//      (Cluster applies ClusterConfig::leaf_backend here);
//   3. the DPS_LEAF environment variable;
//   4. the registration default (register_backend(..., make_default=true)).
// A name from (2)/(3) that no implementation of a given kernel family
// carries falls back to (4): DPS_LEAF=lut must not break a kernel family
// that only ships a naive implementation.
#pragma once

#include <atomic>
#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/thread_annotations.hpp"

namespace dps::compute {

namespace detail {

/// Process-wide requested backend name, shared by every registry. `gen`
/// bumps on each change so registries can cheaply notice and re-resolve.
struct DefaultBackendState {
  Mutex mu;
  std::string name DPS_GUARDED_BY(mu);
  std::atomic<uint64_t> gen{1};
};

inline DefaultBackendState& default_backend_state() {
  static DefaultBackendState s;
  return s;
}

}  // namespace detail

/// Requests `name` as the process-wide backend for every kernel family
/// (Cluster construction applies ClusterConfig::leaf_backend through this).
/// Empty string clears the request back to env/registration defaults.
inline void set_default_backend(const std::string& name) {
  auto& s = detail::default_backend_state();
  MutexLock lock(s.mu);
  s.name = name;
  s.gen.fetch_add(1, std::memory_order_release);
}

/// The currently requested process-wide backend name: the last
/// set_default_backend() value, else $DPS_LEAF, else "".
inline std::string default_backend() {
  auto& s = detail::default_backend_state();
  {
    MutexLock lock(s.mu);
    if (!s.name.empty()) return s.name;
  }
  const char* env = std::getenv("DPS_LEAF");
  return env != nullptr ? std::string(env) : std::string();
}

/// Named implementations of one kernel family KernelT (a trivially
/// copyable struct of function pointers). One registry instantiation per
/// family; registration happens once at startup from the family's own
/// translation unit (see life::active_life_kernel() for the
/// static-init-order-safe pattern).
template <class KernelT>
class BackendRegistry {
 public:
  struct Entry {
    std::string name;
    KernelT kernel;
  };

  /// Registers `name`; re-registering an existing name is an error.
  /// `make_default` marks this entry as the fallback when no explicit or
  /// process-wide selection names a registered implementation.
  static void register_backend(const std::string& name, const KernelT& kernel,
                               bool make_default = false) {
    State& s = state();
    MutexLock lock(s.mu);
    for (const Entry& e : s.entries) {
      DPS_CHECK(e.name != name, "duplicate leaf backend registration");
    }
    s.entries.push_back(Entry{name, kernel});
    if (make_default || s.entries.size() == 1) {
      s.default_index = s.entries.size() - 1;
    }
    s.resolved = nullptr;  // force re-resolution
  }

  /// The kernel registered under `name`, or nullptr when unknown.
  static const KernelT* find(const std::string& name) {
    State& s = state();
    MutexLock lock(s.mu);
    const Entry* e = find_locked(s, name);
    return e != nullptr ? &e->kernel : nullptr;
  }

  static std::vector<std::string> names() {
    State& s = state();
    MutexLock lock(s.mu);
    std::vector<std::string> out;
    out.reserve(s.entries.size());
    for (const Entry& e : s.entries) out.push_back(e.name);
    return out;
  }

  /// Pins this kernel family to `name`, overriding the process default.
  /// Throws Error(kInvalidArgument) for an unregistered name.
  static void select(const std::string& name) {
    State& s = state();
    MutexLock lock(s.mu);
    const Entry* e = find_locked(s, name);
    if (e == nullptr) {
      throw Error(Errc::kInvalidArgument, "unknown leaf backend: " + name);
    }
    s.explicit_name = name;
    s.resolved = e;
  }

  /// Clears an explicit select(); the family follows the process default
  /// (set_default_backend / DPS_LEAF) again.
  static void reset_selection() {
    State& s = state();
    MutexLock lock(s.mu);
    s.explicit_name.clear();
    s.resolved = nullptr;
  }

  /// The active kernel. At least one implementation must be registered.
  static const KernelT& active() {
    State& s = state();
    const uint64_t gen = detail::default_backend_state().gen.load(
        std::memory_order_acquire);
    MutexLock lock(s.mu);
    if (s.resolved == nullptr || s.resolved_gen != gen) resolve_locked(s, gen);
    return s.resolved->kernel;
  }

  /// Name of the kernel active() would return.
  static std::string active_name() {
    State& s = state();
    const uint64_t gen = detail::default_backend_state().gen.load(
        std::memory_order_acquire);
    MutexLock lock(s.mu);
    if (s.resolved == nullptr || s.resolved_gen != gen) resolve_locked(s, gen);
    return s.resolved->name;
  }

 private:
  struct State {
    Mutex mu;
    // deque: Entry addresses stay valid across registrations, so pointers
    // returned by find() never dangle.
    std::deque<Entry> entries DPS_GUARDED_BY(mu);
    size_t default_index DPS_GUARDED_BY(mu) = 0;
    std::string explicit_name DPS_GUARDED_BY(mu);
    const Entry* resolved DPS_GUARDED_BY(mu) = nullptr;
    uint64_t resolved_gen DPS_GUARDED_BY(mu) = 0;
  };

  static State& state() {
    static State s;
    return s;
  }

  static const Entry* find_locked(State& s, const std::string& name)
      DPS_REQUIRES(s.mu) {
    for (const Entry& e : s.entries) {
      if (e.name == name) return &e;
    }
    return nullptr;
  }

  static void resolve_locked(State& s, uint64_t gen) DPS_REQUIRES(s.mu) {
    DPS_CHECK(!s.entries.empty(), "no leaf backends registered");
    const Entry* choice = nullptr;
    if (!s.explicit_name.empty()) choice = find_locked(s, s.explicit_name);
    if (choice == nullptr) {
      const std::string requested = default_backend();
      if (!requested.empty()) choice = find_locked(s, requested);
    }
    if (choice == nullptr) choice = &s.entries[s.default_index];
    s.resolved = choice;
    s.resolved_gen = gen;
  }
};

}  // namespace dps::compute
