#include "life/fast_step.hpp"

#include <array>

#include "util/error.hpp"

namespace dps::life {

namespace {

constexpr std::array<uint8_t, kRuleLutSize> build_rule_lut() {
  std::array<uint8_t, kRuleLutSize> lut{};
  for (int w = 0; w < kRuleLutSize; ++w) {
    int live = 0;
    for (int bit = 0; bit < kRuleLutBits; ++bit) live += (w >> bit) & 1;
    const int alive = (w >> rule_lut_bit(0, 0)) & 1;
    const int neighbours = live - alive;
    const bool next = alive != 0 ? (neighbours == 2 || neighbours == 3)
                                 : neighbours == 3;
    lut[static_cast<size_t>(w)] = next ? 1 : 0;
  }
  return lut;
}

constexpr std::array<uint8_t, kRuleLutSize> kRuleLut = build_rule_lut();

/// Steps rows [r0, r1) of `band` into the same rows of `out`. Rows outside
/// the band come from `above`/`below`; nullptr means the dead world edge.
void step_rows(const Band& band, const uint8_t* above, const uint8_t* below,
               int r0, int r1, Band& out) {
  const int rows = band.rows(), cols = band.cols();
  if (r0 >= r1 || cols == 0) return;
  const uint8_t* cells = band.cells().data();
  uint8_t* dst = out.cells().data();
  const uint8_t* lut = kRuleLut.data();

  const auto row_ptr = [&](int r) -> const uint8_t* {
    if (r < 0) return above;
    if (r >= rows) return below;
    return cells + static_cast<size_t>(r) * cols;
  };

  // Prime the column triples for row r0: bit 2 = row above, bit 1 = the
  // row itself, bit 0 = row below.
  std::vector<uint8_t> colbits(static_cast<size_t>(cols));
  {
    const uint8_t* top = row_ptr(r0 - 1);
    const uint8_t* mid = row_ptr(r0);
    const uint8_t* bot = row_ptr(r0 + 1);
    for (int c = 0; c < cols; ++c) {
      colbits[static_cast<size_t>(c)] = static_cast<uint8_t>(
          ((top != nullptr ? top[c] : 0) << 2) |
          ((mid != nullptr ? mid[c] : 0) << 1) |
          (bot != nullptr ? bot[c] : 0));
    }
  }

  for (int r = r0;;) {
    uint8_t* drow = dst + static_cast<size_t>(r) * cols;
    // Slide the 9-bit window of three column triples across the row. The
    // left/right world edges are dead, so the window starts with an empty
    // left triple and drains to empty on the right.
    unsigned win = static_cast<unsigned>(colbits[0]) << 3;
    if (cols > 1) win |= static_cast<unsigned>(colbits[1]) << 6;
    int c = 0;
    for (; c + 2 < cols; ++c) {  // branch-free: shift, or, load, store
      drow[c] = lut[win];
      win = (win >> 3) | (static_cast<unsigned>(colbits[c + 2]) << 6);
    }
    for (; c < cols; ++c) {  // last two columns: dead right edge slides in
      drow[c] = lut[win];
      win >>= 3;
    }

    if (++r >= r1) break;
    // Advance the column triples one row down: drop the top bit, shift,
    // or in the new bottom row (dead when past the band's below border).
    const uint8_t* nxt = row_ptr(r + 1);
    if (nxt != nullptr) {
      for (int i = 0; i < cols; ++i) {
        colbits[static_cast<size_t>(i)] = static_cast<uint8_t>(
            ((colbits[static_cast<size_t>(i)] << 1) & 0x6) | nxt[i]);
      }
    } else {
      for (int i = 0; i < cols; ++i) {
        colbits[static_cast<size_t>(i)] =
            static_cast<uint8_t>((colbits[static_cast<size_t>(i)] << 1) & 0x6);
      }
    }
  }
}

void check_border(const std::vector<uint8_t>& border, int cols,
                  const char* what) {
  DPS_CHECK(border.empty() || static_cast<int>(border.size()) == cols, what);
}

}  // namespace

const uint8_t* rule_lut() { return kRuleLut.data(); }

Band lut_step_band(const Band& band, const std::vector<uint8_t>& above,
                   const std::vector<uint8_t>& below) {
  check_border(above, band.cols(), "lut_step_band: above width mismatch");
  check_border(below, band.cols(), "lut_step_band: below width mismatch");
  Band next(band.rows(), band.cols());
  step_rows(band, above.empty() ? nullptr : above.data(),
            below.empty() ? nullptr : below.data(), 0, band.rows(), next);
  return next;
}

Band lut_step_interior(const Band& band) {
  Band next = band;  // border rows keep old values until step_borders
  step_rows(band, nullptr, nullptr, 1, band.rows() - 1, next);
  return next;
}

void lut_step_borders(const Band& band, const std::vector<uint8_t>& above,
                      const std::vector<uint8_t>& below, Band& out) {
  DPS_CHECK(out.rows() == band.rows() && out.cols() == band.cols(),
            "step_borders size mismatch");
  check_border(above, band.cols(), "lut_step_borders: above width mismatch");
  check_border(below, band.cols(), "lut_step_borders: below width mismatch");
  const uint8_t* a = above.empty() ? nullptr : above.data();
  const uint8_t* b = below.empty() ? nullptr : below.data();
  const int last = band.rows() - 1;
  step_rows(band, a, b, 0, 1, out);
  if (last > 0) step_rows(band, a, b, last, last + 1, out);
}

const LifeKernel& active_life_kernel() {
  static const bool registered = [] {
    LifeBackends::register_backend(
        "naive",
        LifeKernel{&step_band_naive, &step_interior_naive, &step_borders_naive,
                   /*id=*/0});
    LifeBackends::register_backend(
        "lut",
        LifeKernel{&lut_step_band, &lut_step_interior, &lut_step_borders,
                   /*id=*/1},
        /*make_default=*/true);
    return true;
  }();
  (void)registered;
  return LifeBackends::active();
}

std::string active_life_kernel_name() {
  active_life_kernel();  // ensure registration
  return LifeBackends::active_name();
}

namespace {
// Registers the kernels at static-init time too, so LifeBackends::select /
// names() work before the first dispatch (the registry state itself is a
// function-local static, so ordering is safe; this object always links
// because world.o references the functions above).
const bool kLifeBackendsRegistered = (active_life_kernel(), true);
}  // namespace

}  // namespace dps::life
