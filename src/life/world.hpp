// Game-of-Life substrate (paper, section 5, "Game of Life").
//
// "The parallel implementation of Conway's Game of Life is especially
// interesting since it exhibits a parallel program structure similar to
// many iterative finite difference computational problems." The world is
// distributed as horizontal bands, one per worker thread; each step needs
// the border rows of the neighbouring bands. This module provides the
// band data structure, the stepping kernels (border rows vs. interior
// rows, so the improved graph can overlap border exchange with interior
// compute), and a sequential reference stepper for correctness checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dps::life {

/// A dense band of `rows` x `cols` cells (row 0 is the band's top).
class Band {
 public:
  Band() = default;
  Band(int rows, int cols) : rows_(rows), cols_(cols),
                             cells_(static_cast<size_t>(rows) * cols, 0) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  uint8_t at(int r, int c) const {
    return cells_[static_cast<size_t>(r) * cols_ + c];
  }
  void set(int r, int c, uint8_t v) {
    cells_[static_cast<size_t>(r) * cols_ + c] = v;
  }
  const std::vector<uint8_t>& cells() const { return cells_; }
  std::vector<uint8_t>& cells() { return cells_; }

  std::vector<uint8_t> row(int r) const;
  void set_row(int r, const std::vector<uint8_t>& values);

  /// Deterministic pseudo-random initialization (density about 1/3).
  void seed_random(uint64_t seed);

  uint64_t population() const;
  bool operator==(const Band& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && cells_ == o.cells_;
  }

 private:
  int rows_ = 0, cols_ = 0;
  std::vector<uint8_t> cells_;
};

/// Next state of the whole band given its neighbours' adjacent border rows
/// (empty vectors mean a dead border — the world edge). Dispatches to the
/// active leaf backend (life/fast_step.hpp; "lut" by default, selectable
/// via ClusterConfig::leaf_backend / env DPS_LEAF) and counts the stepped
/// cells on the always-on `dps.leaf.cells` metric.
Band step_band(const Band& band, const std::vector<uint8_t>& above,
               const std::vector<uint8_t>& below);

/// Next state of only the interior rows 1..rows-2 (no outside knowledge
/// needed); rows 0 and rows-1 of the result are left as in `band` and must
/// be overwritten by step_borders. This is the compute the improved graph
/// (paper Fig. 8) overlaps with the border exchange. Dispatches like
/// step_band.
Band step_interior(const Band& band);

/// Computes the next state of the band's first and last row into `out`
/// using the neighbours' borders; the counterpart of step_interior.
/// Dispatches like step_band.
void step_borders(const Band& band, const std::vector<uint8_t>& above,
                  const std::vector<uint8_t>& below, Band& out);

/// The naive reference kernels: straight-line 9-cell window recount per
/// cell. Every optimized backend must be bit-identical to these (the
/// LifeFast property suite enforces it); step_world below is built on them
/// so cross-backend comparisons always have an independent baseline.
Band step_band_naive(const Band& band, const std::vector<uint8_t>& above,
                     const std::vector<uint8_t>& below);
Band step_interior_naive(const Band& band);
void step_borders_naive(const Band& band, const std::vector<uint8_t>& above,
                        const std::vector<uint8_t>& below, Band& out);

/// Splits a world into `bands` horizontal bands (heights differ by <= 1).
std::vector<Band> split_world(const Band& world, int bands);

/// Reassembles bands into one world.
Band join_bands(const std::vector<Band>& bands);

/// Sequential reference: steps a whole world `iterations` times. Always
/// runs the naive kernel, independent of the active backend, so it stays a
/// trustworthy oracle for end-to-end bit-identity checks.
Band step_world(const Band& world, int iterations);

/// Cell updates per full-world step — calibrates the simulated benchmarks.
inline double step_cost_cells(int rows, int cols) {
  return static_cast<double>(rows) * static_cast<double>(cols);
}

}  // namespace dps::life
