#include "life/world.hpp"

#include "life/fast_step.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#ifdef DPS_TRACE
#include "obs/trace.hpp"
#endif

namespace dps::life {

namespace {

/// Conway rule for one cell given its live-neighbour count.
inline uint8_t rule(uint8_t alive, int neighbours) {
  if (alive != 0) return (neighbours == 2 || neighbours == 3) ? 1 : 0;
  return neighbours == 3 ? 1 : 0;
}

/// Live neighbours of (r, c) inside the band extended by the given border
/// rows; out-of-range cells are dead.
int neighbours_of(const Band& b, const std::vector<uint8_t>& above,
                  const std::vector<uint8_t>& below, int r, int c) {
  const int rows = b.rows(), cols = b.cols();
  int n = 0;
  for (int dr = -1; dr <= 1; ++dr) {
    for (int dc = -1; dc <= 1; ++dc) {
      if (dr == 0 && dc == 0) continue;
      const int rr = r + dr, cc = c + dc;
      if (cc < 0 || cc >= cols) continue;
      if (rr == -1) {
        if (!above.empty()) n += above[static_cast<size_t>(cc)];
      } else if (rr == rows) {
        if (!below.empty()) n += below[static_cast<size_t>(cc)];
      } else if (rr >= 0 && rr < rows) {
        n += b.at(rr, cc);
      }
    }
  }
  return n;
}

}  // namespace

std::vector<uint8_t> Band::row(int r) const {
  DPS_CHECK(r >= 0 && r < rows_, "row out of range");
  return std::vector<uint8_t>(
      cells_.begin() + static_cast<ptrdiff_t>(r) * cols_,
      cells_.begin() + static_cast<ptrdiff_t>(r + 1) * cols_);
}

void Band::set_row(int r, const std::vector<uint8_t>& values) {
  DPS_CHECK(r >= 0 && r < rows_, "row out of range");
  DPS_CHECK(static_cast<int>(values.size()) == cols_, "row width mismatch");
  std::copy(values.begin(), values.end(),
            cells_.begin() + static_cast<ptrdiff_t>(r) * cols_);
}

void Band::seed_random(uint64_t seed) {
  uint64_t s = seed * 2862933555777941757ull + 3037000493ull;
  for (uint8_t& c : cells_) {
    s = s * 2862933555777941757ull + 3037000493ull;
    c = ((s >> 33) % 3u) == 0 ? 1 : 0;
  }
}

uint64_t Band::population() const {
  uint64_t p = 0;
  for (uint8_t c : cells_) p += c;
  return p;
}

Band step_band_naive(const Band& band, const std::vector<uint8_t>& above,
                     const std::vector<uint8_t>& below) {
  Band next(band.rows(), band.cols());
  for (int r = 0; r < band.rows(); ++r) {
    for (int c = 0; c < band.cols(); ++c) {
      next.set(r, c, rule(band.at(r, c), neighbours_of(band, above, below, r, c)));
    }
  }
  return next;
}

Band step_interior_naive(const Band& band) {
  Band next = band;  // border rows keep old values until step_borders
  for (int r = 1; r < band.rows() - 1; ++r) {
    for (int c = 0; c < band.cols(); ++c) {
      next.set(r, c, rule(band.at(r, c), neighbours_of(band, {}, {}, r, c)));
    }
  }
  return next;
}

void step_borders_naive(const Band& band, const std::vector<uint8_t>& above,
                        const std::vector<uint8_t>& below, Band& out) {
  DPS_CHECK(out.rows() == band.rows() && out.cols() == band.cols(),
            "step_borders size mismatch");
  const int last = band.rows() - 1;
  for (int c = 0; c < band.cols(); ++c) {
    out.set(0, c, rule(band.at(0, c), neighbours_of(band, above, below, 0, c)));
  }
  if (last > 0) {
    for (int c = 0; c < band.cols(); ++c) {
      out.set(last, c,
              rule(band.at(last, c), neighbours_of(band, above, below, last, c)));
    }
  }
}

namespace {

/// Cells stepped through the backend seam — always on, so production
/// deployments can watch leaf throughput without the flight recorder.
obs::Counter& leaf_cells_counter() {
  static obs::Counter& c = obs::Metrics::instance().counter("dps.leaf.cells");
  return c;
}

/// Records one kLeafStep kernel interval when the flight recorder is
/// compiled in and enabled (a=kernel id, b=rows, c=cols, d=ns).
#ifdef DPS_TRACE
struct LeafStepInterval {
  const LifeKernel& kernel;
  uint64_t rows, cols;
  uint64_t t0 = 0;
  LeafStepInterval(const LifeKernel& k, uint64_t r, uint64_t c)
      : kernel(k), rows(r), cols(c) {
    if (obs::tracing_active()) t0 = obs::trace_clock_ns();
  }
  ~LeafStepInterval() {
    if (obs::tracing_active()) {
      obs::Trace::instance().record(obs::EventKind::kLeafStep, 0, kernel.id,
                                    rows, cols, obs::trace_clock_ns() - t0);
    }
  }
};
#define DPS_LEAF_INTERVAL(kernel, rows, cols) \
  LeafStepInterval leaf_interval_((kernel), (rows), (cols))
#else
#define DPS_LEAF_INTERVAL(kernel, rows, cols) \
  do {                                        \
  } while (false)
#endif

}  // namespace

Band step_band(const Band& band, const std::vector<uint8_t>& above,
               const std::vector<uint8_t>& below) {
  const LifeKernel& k = active_life_kernel();
  leaf_cells_counter().inc(static_cast<uint64_t>(band.rows()) *
                           static_cast<uint64_t>(band.cols()));
  DPS_LEAF_INTERVAL(k, band.rows(), band.cols());
  return k.step_band(band, above, below);
}

Band step_interior(const Band& band) {
  const LifeKernel& k = active_life_kernel();
  const int interior_rows = band.rows() > 2 ? band.rows() - 2 : 0;
  leaf_cells_counter().inc(static_cast<uint64_t>(interior_rows) *
                           static_cast<uint64_t>(band.cols()));
  DPS_LEAF_INTERVAL(k, band.rows(), band.cols());
  return k.step_interior(band);
}

void step_borders(const Band& band, const std::vector<uint8_t>& above,
                  const std::vector<uint8_t>& below, Band& out) {
  const LifeKernel& k = active_life_kernel();
  const int border_rows = band.rows() > 1 ? 2 : band.rows();
  leaf_cells_counter().inc(static_cast<uint64_t>(border_rows) *
                           static_cast<uint64_t>(band.cols()));
  DPS_LEAF_INTERVAL(k, band.rows(), band.cols());
  k.step_borders(band, above, below, out);
}

std::vector<Band> split_world(const Band& world, int bands) {
  DPS_CHECK(bands > 0 && bands <= world.rows(), "invalid band count");
  std::vector<Band> out;
  out.reserve(static_cast<size_t>(bands));
  const int base = world.rows() / bands;
  const int extra = world.rows() % bands;
  int r0 = 0;
  for (int b = 0; b < bands; ++b) {
    const int h = base + (b < extra ? 1 : 0);
    Band band(h, world.cols());
    for (int r = 0; r < h; ++r) band.set_row(r, world.row(r0 + r));
    out.push_back(std::move(band));
    r0 += h;
  }
  return out;
}

Band join_bands(const std::vector<Band>& bands) {
  DPS_CHECK(!bands.empty(), "join_bands: no bands");
  int rows = 0;
  const int cols = bands.front().cols();
  for (const Band& b : bands) rows += b.rows();
  Band world(rows, cols);
  int r0 = 0;
  for (const Band& b : bands) {
    DPS_CHECK(b.cols() == cols, "join_bands: width mismatch");
    for (int r = 0; r < b.rows(); ++r) world.set_row(r0 + r, b.row(r));
    r0 += b.rows();
  }
  return world;
}

Band step_world(const Band& world, int iterations) {
  Band cur = world;
  for (int i = 0; i < iterations; ++i) cur = step_band_naive(cur, {}, {});
  return cur;
}

}  // namespace dps::life
