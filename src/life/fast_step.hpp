// Fast Life stepper: 512-entry rule LUT + incremental neighbourhood
// maintenance (the ece454 technique adapted to banded worlds).
//
// The naive kernel in world.cpp recounts all 8 neighbours of every cell
// with bounds checks — ~20 branches per cell. This kernel removes both
// costs:
//
//   * Each column keeps a 3-bit *column triple* — the packed occupancy of
//     (row-1, row, row+1) in that column, the running per-column aggregate
//     over the current row triple. Moving to the next row is one
//     shift-and-or per column (drop the old top bit, shift, or in the new
//     bottom row) — update instead of recount.
//   * Across a row, a 9-bit window of three adjacent column triples slides
//     one triple per cell (`win = (win >> 3) | next_triple << 6`), and the
//     next state is a single load from a precomputed 512-entry rule table
//     indexed by the packed 3x3 neighbourhood. The inner loop is
//     branch-free: one shift, one or, one table load, one store per cell.
//
// The kernels are bit-identical to the naive reference (pinned by the
// LifeFast property suite, which also enumerates all 512 LUT entries) and
// plug into the leaf-backend seam of compute/backend.hpp as "lut".
#pragma once

#include "compute/backend.hpp"
#include "life/world.hpp"

namespace dps::life {

/// The Life kernel family: the three stepping entry points of world.hpp as
/// plain function pointers, registered with compute::BackendRegistry.
struct LifeKernel {
  Band (*step_band)(const Band&, const std::vector<uint8_t>&,
                    const std::vector<uint8_t>&);
  Band (*step_interior)(const Band&);
  void (*step_borders)(const Band&, const std::vector<uint8_t>&,
                       const std::vector<uint8_t>&, Band&);
  uint16_t id;  ///< stable id stamped into kLeafStep trace events
};

using LifeBackends = compute::BackendRegistry<LifeKernel>;

// --- the 512-entry rule LUT ------------------------------------------------

inline constexpr int kRuleLutBits = 9;
inline constexpr int kRuleLutSize = 1 << kRuleLutBits;  // 512

/// Bit position of neighbourhood cell (dr, dc), dr/dc in {-1, 0, 1}, inside
/// a rule-LUT index: three column triples packed left-to-right, each triple
/// bottom-to-top (left column = bits 0..2, centre = 3..5, right = 6..8; the
/// centre cell itself is bit 4).
constexpr int rule_lut_bit(int dr, int dc) { return (dc + 1) * 3 + (1 - dr); }

/// The 512-entry Conway rule table: entry w is the next state of the centre
/// cell of the 3x3 neighbourhood packed per rule_lut_bit().
const uint8_t* rule_lut();

// --- the LUT kernels (bit-identical to the *_naive reference) --------------

Band lut_step_band(const Band& band, const std::vector<uint8_t>& above,
                   const std::vector<uint8_t>& below);
Band lut_step_interior(const Band& band);
void lut_step_borders(const Band& band, const std::vector<uint8_t>& above,
                      const std::vector<uint8_t>& below, Band& out);

/// The active Life kernel. Registers the "naive" and "lut" backends on
/// first use (static-init-order safe: callers can never observe an empty
/// registry), then forwards to LifeBackends::active(). "lut" is the
/// registration default; override via ClusterConfig::leaf_backend, env
/// DPS_LEAF, or LifeBackends::select().
const LifeKernel& active_life_kernel();

/// Name of the kernel active_life_kernel() returns (for bench/service
/// banners); registers the backends like active_life_kernel().
std::string active_life_kernel_name();

}  // namespace dps::life
