// Execution domains: wall-clock vs virtual (simulated) time.
//
// The paper evaluates DPS on an 8-node Gigabit-Ethernet cluster of
// bi-processor Pentium III machines. This reproduction runs on one CPU
// core, so wall-clock speedup curves are unobtainable directly. Instead,
// the engine is written against the ExecDomain interface: every blocking
// point (mailbox pop, merge wait, flow-control credit wait, graph-call
// wait) funnels through WaitPoint/wait/notify, and every modeled CPU cost
// through charge(). Under WallDomain these map to plain condition
// variables and no-ops; under SimDomain (sim/scheduler.hpp) they map to a
// conservative discrete-event scheduler that advances a virtual clock —
// the same engine and the same user code produce the paper's cluster-scale
// timing behaviour.
#pragma once

#include <cstdint>
#include <functional>

#include "util/error.hpp"
#include "util/thread_annotations.hpp"

namespace dps {

/// A condition-variable wait site that an ExecDomain can reason about.
/// The embedding data structure's Mutex guards the WaitPoint: wait() must
/// be entered with that mutex locked, and notify_all() called while holding
/// it.
struct WaitPoint {
  CondVar cv;
  /// Sim-mode bookkeeping: actor ids currently parked here.
  std::vector<uint32_t> sim_waiters;
  /// Set by the simulation scheduler when the whole virtual world stalls
  /// (no runnable actor, no future event) while someone still waits: that
  /// is a deadlock of the parallel schedule, reported to the waiters.
  bool stalled = false;
};

/// Time, blocking, and event services for one cluster run.
class ExecDomain {
 public:
  virtual ~ExecDomain() = default;

  /// Seconds since the start of the run (virtual or wall).
  virtual double now() const = 0;

  /// Accounts `seconds` of CPU work by the calling actor. Wall mode: no-op
  /// (the work physically ran). Sim mode: advances this actor's position on
  /// the virtual clock. Must not be called while holding locks.
  virtual void charge(double seconds) = 0;

  /// Models a delay (e.g. disk latency in the video example). Wall mode:
  /// really sleeps. Sim mode: identical to charge().
  virtual void sleep(double seconds) = 0;

  /// Schedules `fn` to run `delay` seconds from now on the domain's event
  /// thread. Used by fabrics for message delivery.
  virtual void post_event(double delay, std::function<void()> fn) = 0;

  /// Actor lifecycle. Every thread that can block inside the engine during
  /// a simulated run must be bracketed by these (worker threads are handled
  /// by the framework; benchmark main threads use ActorScope).
  virtual void actor_started(const char* name) = 0;
  virtual void actor_finished() = 0;

  /// Declares that a new actor thread is about to be spawned. The placeholder
  /// counts as runnable until the thread calls actor_started, so the virtual
  /// clock can neither advance past the spawn nor misdiagnose a stall while
  /// the OS thread is still starting. Call from the spawning thread,
  /// immediately before creating the thread.
  virtual void reserve_actor() = 0;

  /// Binds the calling actor to a CPU group (one group per cluster node).
  /// Under virtual time the group's processor slots are a shared resource:
  /// when more actors charge concurrently than the node has CPUs, the
  /// excess queues — this is what makes "several DPS threads on one
  /// bi-processor node" cost what it did on the paper's cluster. No-op
  /// under wall clock and for unbound actors (group < 0 = infinite CPUs).
  virtual void bind_cpu(int group) = 0;

  /// Blocks on wp until notified. `mu` is the Mutex guarding wp; it must be
  /// held on entry and is re-held on return (released while blocked).
  virtual void wait(WaitPoint& wp, Mutex& mu) DPS_REQUIRES(mu) = 0;

  /// Wakes all waiters of wp. Caller holds the Mutex guarding wp.
  virtual void notify_all(WaitPoint& wp) = 0;

  virtual bool simulated() const = 0;

  /// Quiesces any domain-owned scheduler thread. After stop() returns, the
  /// domain no longer touches WaitPoints registered by past waiters — the
  /// teardown barrier Cluster::shutdown() needs before worker memory (which
  /// embeds those WaitPoints) is freed. Idempotent; wall clock: no-op.
  virtual void stop() {}

  /// Predicate-driven wait; throws Error(kDeadlock) if the simulation
  /// stalls while this waiter still needs progress.
  template <class Pred>
  void wait_until(WaitPoint& wp, Mutex& mu, Pred pred) DPS_REQUIRES(mu) {
    while (!pred()) {
      if (wp.stalled) {
        raise(Errc::kDeadlock,
              "parallel schedule stalled: no runnable thread, no pending "
              "message, but this wait is unsatisfied (check thread mappings "
              "and merge routing)");
      }
      wait(wp, mu);
    }
  }
};

/// Rendezvous for joining an actor thread from another actor under virtual
/// time. A plain std::thread::join() freezes the clock (the joiner still
/// counts as runnable, so pending events never fire and the joined actor
/// cannot finish). Instead the exiting actor calls open(); the joiner calls
/// wait() — a scheduler-aware block — and only then join()s the thread.
class ActorGate {
 public:
  /// Called by the exiting actor as its last action.
  void open(ExecDomain& domain) {
    MutexLock lock(mu_);
    done_ = true;
    domain.notify_all(wp_);
  }

  /// Called by the joiner before std::thread::join().
  void wait(ExecDomain& domain) {
    MutexLock lock(mu_);
    domain.wait_until(wp_, mu_, [&] { return done_; });
  }

 private:
  Mutex mu_;
  WaitPoint wp_ DPS_GUARDED_BY(mu_);
  bool done_ DPS_GUARDED_BY(mu_) = false;
};

/// RAII actor registration for non-framework threads (benchmark mains).
class ActorScope {
 public:
  ActorScope(ExecDomain& domain, const char* name) : domain_(domain) {
    domain_.actor_started(name);
  }
  ActorScope(const ActorScope&) = delete;
  ActorScope& operator=(const ActorScope&) = delete;
  ~ActorScope() { domain_.actor_finished(); }

 private:
  ExecDomain& domain_;
};

/// Real-time domain: plain condition variables, real sleeps, no-op charge.
class WallDomain : public ExecDomain {
 public:
  WallDomain();
  ~WallDomain() override;

  double now() const override;
  void charge(double seconds) override;
  void sleep(double seconds) override;
  void post_event(double delay, std::function<void()> fn) override;
  void actor_started(const char* name) override;
  void actor_finished() override;
  void reserve_actor() override {}
  void bind_cpu(int) override {}
  void wait(WaitPoint& wp, Mutex& mu) DPS_REQUIRES(mu) override;
  void notify_all(WaitPoint& wp) override;
  bool simulated() const override { return false; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dps
