#include "sim/link.hpp"

#include <atomic>
#include <vector>

#include "util/error.hpp"
#include "util/thread_annotations.hpp"

namespace dps {

struct SimFabric::Impl {
  ExecDomain& domain;
  LinkModel link;
  Mutex mu;
  std::vector<Handler> handlers DPS_GUARDED_BY(mu);
  // next instant a node's TX/RX NIC is idle
  std::vector<double> tx_free DPS_GUARDED_BY(mu);
  std::vector<double> rx_free DPS_GUARDED_BY(mu);
  bool down DPS_GUARDED_BY(mu) = false;
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> messages{0};

  Impl(size_t n, ExecDomain& d, LinkModel l)
      : domain(d), link(l), handlers(n), tx_free(n, 0), rx_free(n, 0) {}
};

SimFabric::SimFabric(size_t node_count, ExecDomain& domain, LinkModel link)
    : impl_(std::make_unique<Impl>(node_count, domain, link)) {}

SimFabric::~SimFabric() = default;

void SimFabric::attach(NodeId self, Handler handler) {
  MutexLock lock(impl_->mu);
  DPS_CHECK(self < impl_->handlers.size(), "attach: node id out of range");
  impl_->handlers[self] = std::move(handler);
}

void SimFabric::send(NodeId from, NodeId to, FrameKind kind,
                     std::vector<std::byte> payload) {
  Frame f;
  f.payload = std::move(payload);
  const size_t wire = frame_wire_size(f);
  const double now = impl_->domain.now();

  Handler handler;
  double arrival = 0;
  {
    MutexLock lock(impl_->mu);
    if (impl_->down) return;
    if (to >= impl_->handlers.size() || !impl_->handlers[to]) {
      raise(Errc::kNotFound,
            "no node " + std::to_string(to) + " attached to sim fabric");
    }
    handler = impl_->handlers[to];
    // A NIC whose timeline is still busy means this frame queued behind
    // others: the transport coalesces it into the in-flight writev batch
    // (TX) or the same received chunk (RX), so it pays the reduced burst
    // cost instead of the full per-message overhead. TX and RX are judged
    // independently — a burst can form at either end.
    const bool tx_burst = impl_->tx_free[from] > now;
    const double tx_occ = tx_burst ? impl_->link.occupancy_burst(wire)
                                   : impl_->link.occupancy(wire);
    const double tx_start = std::max(now, impl_->tx_free[from]);
    impl_->tx_free[from] = tx_start + tx_occ;
    const double rx_earliest = tx_start + impl_->link.latency_s;
    const bool rx_burst = impl_->rx_free[to] > rx_earliest;
    const double rx_occ = rx_burst ? impl_->link.occupancy_burst(wire)
                                   : impl_->link.occupancy(wire);
    const double rx_start = std::max(rx_earliest, impl_->rx_free[to]);
    impl_->rx_free[to] = rx_start + rx_occ;
    arrival = rx_start + rx_occ;
  }
  impl_->messages.fetch_add(1, std::memory_order_relaxed);
  impl_->bytes.fetch_add(wire, std::memory_order_relaxed);

  auto msg = std::make_shared<NodeMessage>(
      NodeMessage{from, kind, std::move(f.payload)});
  impl_->domain.post_event(arrival - now, [handler, msg] {
    handler(std::move(*msg));
  });
}

void SimFabric::shutdown() {
  MutexLock lock(impl_->mu);
  impl_->down = true;
}

uint64_t SimFabric::bytes_sent() const {
  return impl_->bytes.load(std::memory_order_relaxed);
}
uint64_t SimFabric::messages_sent() const {
  return impl_->messages.load(std::memory_order_relaxed);
}

const LinkModel& SimFabric::link() const { return impl_->link; }

}  // namespace dps
