#include "sim/scheduler.hpp"

#include <atomic>
#include <deque>
#include <limits>
#include <map>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/logging.hpp"

#ifdef DPS_TRACE
#include "obs/trace.hpp"
#endif

namespace dps {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

struct SimDomain::Impl {
  enum class State { kRunning, kCharging, kWaiting, kDone };

  struct Actor {
    State state = State::kRunning;
    double wake = 0;
    bool released = false;
    WaitPoint* wp = nullptr;   // valid while kWaiting
    Mutex* wp_mutex = nullptr;  // mutex guarding wp while kWaiting
    int cpu_group = -1;                // -1: unconstrained
    std::string name;
  };

  struct Event {
    double time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  Mutex mu;
  CondVar sched_cv;   // wakes the scheduler thread
  CondVar charge_cv;  // wakes charging actors
  // deque: stable references across push_back
  std::deque<Actor> actors DPS_GUARDED_BY(mu);
  int running DPS_GUARDED_BY(mu) = 0;
  double now DPS_GUARDED_BY(mu) = 0;
  std::atomic<double> now_mirror{0};
  uint64_t event_seq DPS_GUARDED_BY(mu) = 0;
  std::atomic<uint64_t> events_done{0};
  std::priority_queue<Event, std::vector<Event>, EventLater> events
      DPS_GUARDED_BY(mu);
  bool stopping DPS_GUARDED_BY(mu) = false;
  std::thread sched_thread;

  // Per-CPU-group processor slots: slot_free[i] is the next instant slot i
  // is idle (same reservation pattern as the link model's NIC timelines).
  int cpus_per_group = 2;
  std::map<int, std::vector<double>> cpu_groups DPS_GUARDED_BY(mu);

  double reserve_cpu_locked(int group, double seconds) DPS_REQUIRES(mu) {
    auto [it, inserted] = cpu_groups.try_emplace(
        group, static_cast<size_t>(cpus_per_group), 0.0);
    std::vector<double>& slots = it->second;
    size_t best = 0;
    for (size_t i = 1; i < slots.size(); ++i) {
      if (slots[i] < slots[best]) best = i;
    }
    const double start = std::max(now, slots[best]);
    slots[best] = start + seconds;
    return slots[best];
  }

  // --- thread-local actor identity -----------------------------------------

  // Each Impl gets a process-unique uid so a stale thread-local from a
  // destroyed domain can never alias a new domain at a reused address.
  static std::atomic<uint64_t>& uid_counter() {
    static std::atomic<uint64_t> c{1};
    return c;
  }
  const uint64_t uid = uid_counter().fetch_add(1);

  struct Tls {
    uint64_t impl_uid = 0;
    uint32_t id = 0;
    int depth = 0;  // re-entrant actor_started/actor_finished nesting
  };
  static Tls& tls() {
    thread_local Tls t;
    return t;
  }

  int reserved DPS_GUARDED_BY(mu) = 0;  // spawn placeholders, runnable

  uint32_t register_actor(const char* name) {
    MutexLock lock(mu);
    actors.push_back(Actor{});
    actors.back().name = name;
    ++running;
    if (reserved > 0) {
      --reserved;
      --running;  // consume the spawn placeholder
    }
    const uint32_t id = static_cast<uint32_t>(actors.size() - 1);
    tls() = Tls{uid, id, 0};
    return id;
  }

  /// Current thread's actor id; auto-registers unknown threads so that a
  /// stray caller cannot corrupt the accounting.
  uint32_t self() {
    Tls& t = tls();
    if (t.impl_uid != uid) return register_actor("auto");
    return t.id;
  }

  void kick_if_idle_locked() DPS_REQUIRES(mu) {
    if (running == 0) sched_cv.notify_one();
  }

  // --- scheduler thread ------------------------------------------------------

  double next_charge_locked() const DPS_REQUIRES(mu) {
    double t = kInf;
    for (const Actor& a : actors) {
      if (a.state == State::kCharging && a.wake < t) t = a.wake;
    }
    return t;
  }

  bool anyone_waiting_locked() const DPS_REQUIRES(mu) {
    for (const Actor& a : actors) {
      if (a.state == State::kWaiting) return true;
    }
    return false;
  }

  void loop() {
    MutexLock lock(mu);
    while (!stopping) {
      sched_cv.wait(mu, [&] {
        return stopping ||
               (running == 0 && (!events.empty() ||
                                 next_charge_locked() != kInf ||
                                 anyone_waiting_locked()));
      });
      if (stopping) break;
      if (running != 0) continue;

      const double t_charge = next_charge_locked();
      const double t_event = events.empty() ? kInf : events.top().time;
      const double t = std::min(t_charge, t_event);

      if (t == kInf) {
        // Full stall with waiters: the schedule is deadlocked.
        handle_stall();
        continue;
      }

      if (t > now) {
        now = t;
        now_mirror.store(now, std::memory_order_relaxed);
#ifdef DPS_TRACE
        obs::Trace::instance().record(
            obs::EventKind::kSimAdvance, 0,
            static_cast<uint64_t>(now * 1e9), events.size(), 0, 0);
#endif
      }

      // Release charging actors that are due.
      bool released_any = false;
      for (Actor& a : actors) {
        if (a.state == State::kCharging && a.wake <= now) {
          a.state = State::kRunning;
          a.released = true;
          ++running;
          released_any = true;
        }
      }
      if (released_any) charge_cv.notify_all();

      // Collect and fire due events (outside the lock: handlers take
      // mailbox locks and call notify_all, which re-locks mu).
      std::vector<std::function<void()>> due;
      while (!events.empty() && events.top().time <= now) {
        due.push_back(std::move(const_cast<Event&>(events.top()).fn));
        events.pop();
      }
      if (!due.empty()) {
        lock.unlock();
        for (auto& fn : due) {
#ifdef DPS_TRACE
          obs::Trace::instance().record(
              obs::EventKind::kSimEvent, 0,
              static_cast<uint64_t>(now * 1e9), 0, 0, 0);
#endif
          fn();
          events_done.fetch_add(1, std::memory_order_relaxed);
        }
        lock.lock();
      }
    }
  }

  // Entered and left with mu held; drops it mid-body to notify the wait
  // sites (lock order everywhere is: waitpoint mutex before mu).
  void handle_stall() DPS_REQUIRES(mu) {
    std::vector<std::pair<WaitPoint*, Mutex*>> sites;
    for (Actor& a : actors) {
      if (a.state == State::kWaiting) {
        bool seen = false;
        for (auto& s : sites) seen = seen || (s.first == a.wp);
        if (!seen) sites.emplace_back(a.wp, a.wp_mutex);
      }
    }
    DPS_ERROR("simulation stalled with " << sites.size()
                                         << " blocked wait site(s)");
    mu.unlock();
    for (auto& [wp, wp_mu] : sites) {
      MutexLock g(*wp_mu);
      wp->stalled = true;
      wp->cv.notify_all();
    }
    mu.lock();
    // The woken actors self-resume (running > 0) and throw kDeadlock; the
    // scheduler simply resumes its loop.
    sched_cv.wait(mu, [&] { return stopping || running > 0; });
  }
};

SimDomain::SimDomain(int cpus_per_group) : impl_(std::make_unique<Impl>()) {
  DPS_CHECK(cpus_per_group >= 1, "a CPU group needs at least one slot");
  impl_->cpus_per_group = cpus_per_group;
  impl_->register_actor("main");
  impl_->sched_thread = std::thread([this] { impl_->loop(); });
}

SimDomain::~SimDomain() { stop(); }

void SimDomain::stop() {
  {
    MutexLock lock(impl_->mu);
    if (impl_->stopping) return;
    impl_->stopping = true;
  }
  impl_->sched_cv.notify_all();
  impl_->charge_cv.notify_all();
  if (impl_->sched_thread.joinable()) impl_->sched_thread.join();
}

double SimDomain::now() const {
  return impl_->now_mirror.load(std::memory_order_relaxed);
}

void SimDomain::charge(double seconds) {
  if (seconds <= 0) return;
  const uint32_t id = impl_->self();
  MutexLock lock(impl_->mu);
  if (impl_->stopping) return;
  Impl::Actor& a = impl_->actors[id];
  a.state = Impl::State::kCharging;
  a.wake = a.cpu_group >= 0
               ? impl_->reserve_cpu_locked(a.cpu_group, seconds)
               : impl_->now + seconds;
  a.released = false;
  --impl_->running;
  impl_->kick_if_idle_locked();
  impl_->charge_cv.wait(impl_->mu,
                        [&] { return a.released || impl_->stopping; });
  if (impl_->stopping && !a.released) {
    // Shutdown path: restore the running state without time accounting.
    a.state = Impl::State::kRunning;
    ++impl_->running;
  }
}

void SimDomain::post_event(double delay, std::function<void()> fn) {
  MutexLock lock(impl_->mu);
  if (impl_->stopping) return;
  impl_->events.push(Impl::Event{impl_->now + (delay > 0 ? delay : 0),
                                 impl_->event_seq++, std::move(fn)});
  // No kick: the poster is a running actor (or the scheduler thread), so
  // the clock cannot be waiting on this event yet.
}

void SimDomain::actor_started(const char* name) {
  Impl::Tls& t = Impl::tls();
  if (t.impl_uid == impl_->uid) {
    // Already an actor of this domain (e.g. ActorScope on the thread that
    // constructed the SimDomain): count the nesting, register nothing.
    ++t.depth;
    return;
  }
  impl_->register_actor(name);
}

void SimDomain::reserve_actor() {
  MutexLock lock(impl_->mu);
  ++impl_->reserved;
  ++impl_->running;
}

void SimDomain::bind_cpu(int group) {
  const uint32_t id = impl_->self();
  MutexLock lock(impl_->mu);
  impl_->actors[id].cpu_group = group;
}

void SimDomain::actor_finished() {
  Impl::Tls& t = Impl::tls();
  if (t.impl_uid == impl_->uid && t.depth > 0) {
    --t.depth;
    return;
  }
  const uint32_t id = impl_->self();
  MutexLock lock(impl_->mu);
  Impl::Actor& a = impl_->actors[id];
  if (a.state == Impl::State::kRunning) --impl_->running;
  a.state = Impl::State::kDone;
  Impl::tls() = Impl::Tls{};
  impl_->kick_if_idle_locked();
}

void SimDomain::wait(WaitPoint& wp, Mutex& mu) {
  const uint32_t id = impl_->self();
  {
    MutexLock g(impl_->mu);
    if (impl_->stopping) {
      // Shutdown: make the enclosing wait_until throw rather than spin.
      wp.stalled = true;
      return;
    }
    Impl::Actor& a = impl_->actors[id];
    a.state = Impl::State::kWaiting;
    a.wp = &wp;
    a.wp_mutex = &mu;
    --impl_->running;
    wp.sim_waiters.push_back(id);
    impl_->kick_if_idle_locked();
  }
  wp.cv.wait(mu);
  {
    MutexLock g(impl_->mu);
    Impl::Actor& a = impl_->actors[id];
    if (a.state == Impl::State::kWaiting) {
      // Spurious or stall wake-up: resume ourselves and let a scheduler
      // parked in handle_stall() observe running > 0.
      a.state = Impl::State::kRunning;
      ++impl_->running;
      impl_->sched_cv.notify_one();
    }
    a.wp = nullptr;
    a.wp_mutex = nullptr;
  }
}

void SimDomain::notify_all(WaitPoint& wp) {
  {
    MutexLock g(impl_->mu);
    for (uint32_t id : wp.sim_waiters) {
      Impl::Actor& a = impl_->actors[id];
      if (a.state == Impl::State::kWaiting && a.wp == &wp) {
        // Pre-credit: the waiter counts as running before the clock can
        // advance past the event that woke it.
        a.state = Impl::State::kRunning;
        ++impl_->running;
      }
    }
  }
  wp.sim_waiters.clear();
  wp.cv.notify_all();
}

uint64_t SimDomain::events_fired() const {
  return impl_->events_done.load(std::memory_order_relaxed);
}

}  // namespace dps
