// Modeled network links and the simulated fabric.
//
// SimFabric delivers frames on a virtual clock through a two-resource
// cut-through model: a message from A to B occupies A's transmit NIC for
// size/bandwidth seconds and B's receive NIC for the same span offset by
// `latency` — the receive side streams concurrently with the transmit
// side, so an uncontended transfer completes after latency + size/bw.
// Transmit and receive are independent resources (full-duplex, as on the
// paper's Gigabit Ethernet switch); messages between the same pair keep
// FIFO order by construction (both NIC timelines advance monotonically).
//
// The default parameters reproduce the paper's measured fabric: Figure 6
// shows DPS transfers saturating near 35 MB/s on their Gigabit Ethernet
// cluster (commodity GbE of that era was far from wire speed), and
// footnote-level latencies of commodity clusters were O(100 µs).
#pragma once

#include <memory>

#include "net/fabric.hpp"
#include "sim/domain.hpp"

namespace dps {

/// Point-to-point link parameters.
struct LinkModel {
  double bandwidth_bytes_per_s = 35e6;  ///< effective GbE of the paper
  double latency_s = 100e-6;            ///< one-way message latency
  /// Fixed per-message protocol cost. Calibrated from the paper's own
  /// Figure 6: DPS moves ~5 MB/s at 1 kB tokens, i.e. ~200 us per message
  /// of combined TCP + DPS control overhead on their hardware.
  double per_message_s = 150e-6;
  /// Fixed cost of a frame that finds its NIC already busy. The transport
  /// batches such frames: back-to-back sends leave in one coalesced writev
  /// and back-to-back arrivals decode from one received chunk
  /// (docs/PERFORMANCE.md), so only the first frame of a burst pays the
  /// full syscall + handoff cost; followers pay framing + copy only.
  double per_message_burst_s = 20e-6;

  /// Transfer seconds a `bytes`-sized message occupies an idle NIC.
  double occupancy(size_t bytes) const {
    return per_message_s +
           static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }

  /// Occupancy when the frame rides a burst on an already-busy NIC.
  double occupancy_burst(size_t bytes) const {
    return per_message_burst_s +
           static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }

  /// The paper's cluster fabric.
  static LinkModel gigabit_ethernet() { return LinkModel{}; }

  /// Same-host shared-memory transport (the ShmFabric fast path): memcpy
  /// bandwidth instead of wire bandwidth, sub-microsecond handoff latency,
  /// and a small per-record cost (ring bookkeeping + one futex wake per
  /// burst instead of a syscall per message). Lets simulated deployments
  /// ask "what if these two kernels shared a node?" without real shm.
  static LinkModel shared_memory() {
    LinkModel m;
    m.bandwidth_bytes_per_s = 4e9;  // conservative single-core memcpy
    m.latency_s = 0.5e-6;
    m.per_message_s = 2e-6;       // record header + doorbell wake
    m.per_message_burst_s = 0.3e-6;  // followers: header + copy only
    return m;
  }
};

// Multicast note: SimFabric does not override Fabric::send_shared — shared
// multicast bodies go through the default implementation, which materializes
// prefix + body into one frame before send(). The simulated cost model only
// sees frame sizes, so the copy changes nothing it measures; the zero-copy
// iovec path is a real-transport (TcpFabric) optimization.
class SimFabric : public Fabric {
 public:
  SimFabric(size_t node_count, ExecDomain& domain, LinkModel link);
  ~SimFabric() override;

  void attach(NodeId self, Handler handler) override;
  void send(NodeId from, NodeId to, FrameKind kind,
            std::vector<std::byte> payload) override;
  void shutdown() override;
  uint64_t bytes_sent() const override;
  uint64_t messages_sent() const override;

  const LinkModel& link() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dps
