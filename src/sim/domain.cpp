#include "sim/domain.hpp"

#include <chrono>
#include <map>
#include <thread>

#include "util/stopwatch.hpp"

namespace dps {

// WallDomain events run on one timer thread with a time-ordered queue.
struct WallDomain::Impl {
  Stopwatch clock;
  Mutex mu;
  CondVar cv;
  /// Pending events keyed by due time (s).
  std::multimap<double, std::function<void()>> events DPS_GUARDED_BY(mu);
  bool stopping DPS_GUARDED_BY(mu) = false;
  std::thread timer;

  void timer_loop() {
    MutexLock lock(mu);
    while (!stopping) {
      if (events.empty()) {
        cv.wait(mu);
        continue;
      }
      const double due = events.begin()->first;
      const double now_s = clock.seconds();
      if (now_s < due) {
        cv.wait_for(mu, std::chrono::duration<double>(due - now_s));
        continue;
      }
      auto fn = std::move(events.begin()->second);
      events.erase(events.begin());
      lock.unlock();
      fn();
      lock.lock();
    }
  }
};

WallDomain::WallDomain() : impl_(std::make_unique<Impl>()) {
  impl_->timer = std::thread([this] { impl_->timer_loop(); });
}

WallDomain::~WallDomain() {
  {
    MutexLock lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  impl_->timer.join();
}

double WallDomain::now() const { return impl_->clock.seconds(); }

void WallDomain::charge(double) {
  // Wall mode: the computation physically happened; nothing to account.
}

void WallDomain::sleep(double seconds) {
  if (seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

void WallDomain::post_event(double delay, std::function<void()> fn) {
  {
    MutexLock lock(impl_->mu);
    impl_->events.emplace(impl_->clock.seconds() + (delay > 0 ? delay : 0),
                          std::move(fn));
  }
  impl_->cv.notify_all();
}

void WallDomain::actor_started(const char*) {}
void WallDomain::actor_finished() {}

void WallDomain::wait(WaitPoint& wp, Mutex& mu) { wp.cv.wait(mu); }

void WallDomain::notify_all(WaitPoint& wp) { wp.cv.notify_all(); }

}  // namespace dps
