// Conservative discrete-event scheduler driving real OS threads.
//
// SimDomain implements ExecDomain over a virtual clock. Engine threads
// (DPS workers, the benchmark main) are *actors*; at any instant each actor
// is either
//
//   running  — executing user/engine code (virtual time frozen),
//   charging — inside charge(s): parked until the clock reaches now+s,
//   waiting  — parked on a WaitPoint (empty mailbox, unmet credits, ...).
//
// The clock only advances when no actor is running; it then jumps to the
// earliest pending charge wake-up or message-delivery event. Message
// deliveries (posted by fabrics through post_event) execute on the
// scheduler thread and wake waiting actors through ExecDomain::notify_all,
// which pre-credits them as running before the clock can move again — the
// advancement rule is therefore conservative and the virtual timeline is
// causally consistent.
//
// If the virtual world reaches a state with no runnable actor, no charge,
// and no event while actors still wait, the parallel schedule is
// deadlocked; the scheduler then marks the affected WaitPoints stalled and
// the waiters throw Error(kDeadlock) (see ExecDomain::wait_until).
#pragma once

#include <memory>

#include "sim/domain.hpp"

namespace dps {

class SimDomain : public ExecDomain {
 public:
  /// The constructing thread is registered as the "main" actor.
  /// `cpus_per_group` is the number of processor slots per CPU group
  /// (cluster node); the paper's machines are bi-processor Pentium IIIs.
  explicit SimDomain(int cpus_per_group = 2);
  ~SimDomain() override;

  double now() const override;
  void charge(double seconds) override;
  void sleep(double seconds) override { charge(seconds); }
  void post_event(double delay, std::function<void()> fn) override;
  void actor_started(const char* name) override;
  void actor_finished() override;
  void reserve_actor() override;
  void bind_cpu(int group) override;
  void wait(WaitPoint& wp, Mutex& mu) DPS_REQUIRES(mu) override;
  void notify_all(WaitPoint& wp) override;
  bool simulated() const override { return true; }

  /// Ends the simulation: wakes every parked actor and stops the scheduler
  /// thread. Called automatically on destruction.
  void stop() override;

  /// Number of timed events fired so far (test/diagnostic hook).
  uint64_t events_fired() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dps
