// DPS thread classes.
//
// "Operations within a flow graph are carried out within threads grouped in
// thread collections. DPS threads are mapped to operating system threads."
// (paper, section 1). A user thread class derives from dps::Thread and may
// carry member data — that is how distributed data structures are built
// (each thread of a collection holds its part, e.g. a band of the
// Game-of-Life world or a column of blocks in the LU factorization).
//
// DPS_IDENTIFY_THREAD(T) registers the class factory so collections can
// instantiate the per-thread state on whichever node each thread maps to.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace dps {

/// Base class for user-defined DPS thread state.
class Thread {
 public:
  Thread() = default;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;
  virtual ~Thread() = default;

  /// Name of the registered thread class (set by DPS_IDENTIFY_THREAD).
  virtual const char* dps_thread_type() const = 0;
};

namespace detail {

struct ThreadTypeInfo {
  std::string name;
  uint64_t id = 0;
  Thread* (*create)() = nullptr;
};

/// name -> factory registry (thread safe).
class ThreadTypeRegistry {
 public:
  static ThreadTypeRegistry& instance();
  void add(const ThreadTypeInfo* info);
  const ThreadTypeInfo& find(const std::string& name) const;

 private:
  struct Impl;
  Impl& impl() const;
};

template <class T>
const ThreadTypeInfo& register_thread_type(const char* name) {
  static_assert(std::is_base_of_v<Thread, T>,
                "DPS_IDENTIFY_THREAD is for dps::Thread subclasses");
  static_assert(std::is_default_constructible_v<T>,
                "thread classes need a default constructor (per-thread state "
                "is created by the framework on the thread's home node)");
  static const ThreadTypeInfo info = [&] {
    ThreadTypeInfo i;
    i.name = name;
    i.create = []() -> Thread* { return new T(); };
    return i;
  }();
  ThreadTypeRegistry::instance().add(&info);
  return info;
}

}  // namespace detail
}  // namespace dps

/// Registers the enclosing dps::Thread subclass. Mirrors the paper's
/// IDENTIFY(ComputeThread); inside thread classes.
#define DPS_IDENTIFY_THREAD(T)                                          \
 public:                                                                \
  static const ::dps::detail::ThreadTypeInfo& staticThreadInfo() {      \
    static const ::dps::detail::ThreadTypeInfo& info =                  \
        ::dps::detail::register_thread_type<T>(#T);                     \
    return info;                                                        \
  }                                                                     \
  const char* dps_thread_type() const override {                        \
    return staticThreadInfo().name.c_str();                             \
  }                                                                     \
                                                                        \
 private:                                                               \
  inline static const bool dps_thread_registered_ =                     \
      (T::staticThreadInfo(), true)
