// Application: one parallel program running on a cluster.
//
// An application owns its thread collections and flow graphs; several
// applications coexist on one cluster and call each other's published
// graphs (the paper's parallel services, Fig. 5 and Fig. 10). The home
// node is where the application was launched: graph-call results return
// there, like the paper's application instance that initiated the call.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/flowgraph.hpp"
#include "core/thread_collection.hpp"

namespace dps {

class Application {
 public:
  Application(Cluster& cluster, std::string name, NodeId home_node = 0);
  ~Application();
  Application(const Application&) = delete;
  Application& operator=(const Application&) = delete;

  Cluster& cluster() { return cluster_; }
  const std::string& name() const { return name_; }
  AppId id() const { return id_; }
  NodeId home() const { return home_; }

  /// This application's mesh tenant (docs/SERVICE_MESH.md). Registered by
  /// name at construction, so an application re-created under the same
  /// name (tenant churn) keeps its identity and configured budgets.
  TenantId tenant() const { return tenant_; }

  /// Replaces this tenant's admission budgets, flow window, and default
  /// deadline; applies to calls made afterwards.
  void set_tenant_config(const TenantConfig& config) {
    cluster_.set_tenant_config(tenant_, config);
  }

  /// Creates (and registers) a named thread collection; map() it before
  /// building graphs that use it.
  template <class T>
  std::shared_ptr<ThreadCollection<T>> thread_collection(std::string name) {
    auto coll = std::make_shared<ThreadCollection<T>>(*this, std::move(name));
    // The cluster co-owns the collection (in-flight envelopes may reference
    // it after this application is gone) and assigns its cluster-wide id.
    coll->id_ = cluster_.register_collection(coll);
    remember_collection(coll);
    return coll;
  }

  /// Validates the builder's graph and returns the runnable flow graph.
  /// Throws Error(kInvalidArgument/kState) on structural problems
  /// (unmapped collections, cycles, unbalanced split/merge nesting,
  /// ambiguous successor types, merge at entry, ...).
  std::shared_ptr<Flowgraph> build_graph(const FlowgraphBuilder& builder,
                                         std::string name);

  /// Publishes a graph as a parallel service other applications can call
  /// by name (ServiceNode or Application::call_service).
  void publish_graph(const std::shared_ptr<Flowgraph>& graph,
                     const std::string& service_name);

  /// Calls a service published by any application on this cluster.
  Ptr<Token> call_service(const std::string& service_name, Ptr<Token> input);
  CallHandle call_service_async(const std::string& service_name,
                                Ptr<Token> input);

  /// Shared ownership: the engine holds the graph alive while envelopes of
  /// a dispatch still reference it, even across this application's exit.
  std::shared_ptr<Flowgraph> graph(GraphId id) const;

 private:
  friend class ThreadCollectionBase;
  void remember_collection(std::shared_ptr<ThreadCollectionBase> coll);

  Cluster& cluster_;
  std::string name_;
  AppId id_;
  NodeId home_;
  TenantId tenant_ = kNoTenant;

  mutable Mutex mu_;
  std::vector<std::shared_ptr<Flowgraph>> graphs_ DPS_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<ThreadCollectionBase>> collections_
      DPS_GUARDED_BY(mu_);
};

}  // namespace dps
