#include "core/ids.hpp"

namespace dps {

const char* to_string(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kLeaf: return "leaf";
    case OpKind::kSplit: return "split";
    case OpKind::kMerge: return "merge";
    case OpKind::kStream: return "stream";
    case OpKind::kGraphCall: return "graph_call";
  }
  return "?";
}

}  // namespace dps
