// Checkpointing of distributed thread state (paper, section 6, future
// work: "The dynamicity of DPS combined with appropriate checkpointing
// procedures may also lead to more lightweight approaches for graceful
// degradation in case of node failures").
//
// A thread class opts in by implementing Checkpointable; the cluster can
// then capture every opted-in DPS thread's state into one byte image and
// later restore it — into the same cluster, or into a freshly constructed
// one with the same collections (e.g. after a failure, possibly with a
// different node mapping: the image addresses threads by (collection,
// index), not by node).
//
// Contract: the schedule must be quiescent (no graph calls in flight) at
// capture and at restore; DPS's call boundaries make such points easy to
// establish.
#pragma once

#include <vector>

#include "core/cluster.hpp"
#include "serial/wire.hpp"

namespace dps {

/// Implemented by dps::Thread subclasses whose state should be captured.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual void checkpoint(Writer& w) const = 0;
  virtual void restore(Reader& r) = 0;
};

/// Captures every Checkpointable DPS thread of the cluster.
std::vector<std::byte> checkpoint_cluster(Cluster& cluster);

/// Restores a previously captured image. Threads are addressed by
/// (collection id, thread index); collections must have been created in
/// the same order as in the captured run. Throws Error(kNotFound) when a
/// record's thread does not exist and Error(kProtocol) on malformed
/// images.
void restore_cluster(Cluster& cluster, const std::vector<std::byte>& image);

// --- graceful degradation (docs/FAULT_TOLERANCE.md) --------------------------

/// Recovery step 1: the failed cluster's config with its dead nodes removed.
/// The external fabric and multi-process pinning are cleared — both are
/// sized/numbered for the old node set. Throws Error(kState) when no node is
/// dead (nothing to degrade) or none survives.
ClusterConfig degraded_config(const Cluster& failed);

/// Recovery step 2: restores `image` into `fresh` — a cluster built from
/// degraded_config() and re-populated with the same applications and
/// thread collections (remapped over the surviving nodes). After this the
/// interrupted graph call can simply be issued again. Throws Error(kState)
/// if `fresh` already has dead nodes of its own.
void recover_cluster(Cluster& fresh, const std::vector<std::byte>& image);

}  // namespace dps
