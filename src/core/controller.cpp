#include "core/controller.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <numeric>
#include <optional>

#include <cstring>

#if defined(__linux__)
#include <sched.h>
#endif

#include "core/flow_adapt.hpp"

#include "core/application.hpp"
#include "core/checkpoint.hpp"
#include "core/cluster.hpp"
#include "core/run_queue.hpp"
#include "core/thread_collection.hpp"
#include "serial/buffer_pool.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

#ifdef DPS_TRACE
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#endif

namespace dps {

namespace {

bool accepts(const Flowgraph::Vertex& v, uint64_t type_id) {
  for (uint64_t id : v.input_type_ids) {
    if (id == type_id) return true;
  }
  return false;
}

/// Wire prefix of a kReliable frame: [u64 seq][u64 cumulative ack][u16
/// inner kind]. Written as a placeholder at encode time and patched once
/// the link assigns the sequence number (single-buffer reliable path).
constexpr size_t kRelSeqOffset = 0;
constexpr size_t kRelAckOffset = sizeof(uint64_t);
constexpr size_t kRelHeaderSize = 2 * sizeof(uint64_t) + sizeof(uint16_t);

void patch_u64(std::vector<std::byte>& buf, size_t offset, uint64_t value) {
  std::memcpy(buf.data() + offset, &value, sizeof(value));
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------------

// Two-phase mailbox. Producers (fabric callbacks, local postToken) only
// ever touch the MPSC `inbox`: one short lock, append, notify. The owning
// worker thread drains the inbox in batch into `run`, a worker-private
// indexed structure (core/run_queue.hpp) where every dispatch decision —
// next top-level envelope, next input of the waiting merge context, next
// re-entrantly-safe envelope — is an O(1) pop instead of a scan.
//
// Envelopes of a *suspended* collection need no explicit tracking (the old
// active_contexts list): a collection only ever suspends at a merge/stream
// vertex, so its envelopes classify as collection-starting and are
// bucketed, never on the dispatchable list; the innermost running
// collection pops exactly its own (vertex, context) bucket.
struct Controller::Worker {
  CollectionId collection = 0;
  ThreadIndex index = 0;
  int collection_size = 0;
  std::string label;
  std::unique_ptr<Thread> user_thread;

  Mutex mu;
  WaitPoint wp DPS_GUARDED_BY(mu);
  std::vector<Envelope> inbox DPS_GUARDED_BY(mu);
  /// Lock-free drain hint: producers bump it after appending, the worker
  /// skips the inbox lock while it reads 0. Purely advisory — every
  /// blocking decision re-checks `inbox` under `mu`.
  std::atomic<uint32_t> inbox_count{0};
  // Atomic: the worker loop's error handlers test it without taking mu.
  std::atomic<bool> poison{false};
  std::atomic<uint32_t>* depth_slot = nullptr;

  /// Run-queue state. The owning OS thread is the only pusher and the
  /// dominant popper; with ClusterConfig::work_stealing, idle siblings
  /// additionally call run.steal_context() — the RunQueue serializes
  /// internally. drain_buf stays worker-private (thieves never drain a
  /// sibling's inbox: two interleaved drains could invert the same-context
  /// arrival order while the envelopes sit in separate swap buffers).
  RunQueue run;
  std::vector<Envelope> drain_buf;  ///< recycled swap target for drains

  /// This worker's steal domain (siblings of its collection on this node);
  /// null when work stealing is off. Set before the OS thread starts.
  StealGroup* steal_group = nullptr;
  /// Raised (under mu) by a backlogged sibling: "wake up and steal".
  std::atomic<bool> steal_hint{false};
  /// CPU this worker pinned itself to; -1 while unpinned. Written once by
  /// the worker thread, read by worker_pinning().
  std::atomic<int> pinned_cpu{-1};

  std::thread os_thread;
};

/// The workers of one collection on one node — the domain inside which
/// idle workers steal. Membership only grows (workers are never removed
/// before controller shutdown joins them all), and the group object is
/// heap-stable, so workers hold raw pointers.
struct Controller::StealGroup {
  Mutex mu;
  std::vector<Worker*> members DPS_GUARDED_BY(mu);
  size_t rr DPS_GUARDED_BY(mu) = 0;  ///< hint round-robin cursor
};

struct Controller::FlowAccount {
  Mutex mu;
  WaitPoint wp DPS_GUARDED_BY(mu);
  /// Window ceiling of the owning tenant, frozen at split start (per-tenant
  /// flow control, docs/SERVICE_MESH.md). With `adaptive` set this is the
  /// upper clamp; otherwise it is the static window itself.
  uint32_t window = 0;
  uint32_t in_flight DPS_GUARDED_BY(mu) = 0;
  /// Owning split/stream execution completed.
  bool finished DPS_GUARDED_BY(mu) = false;
  bool poison DPS_GUARDED_BY(mu) = false;
  /// ClusterConfig::adaptive_flow controller; null = static window.
  std::unique_ptr<AdaptiveWindow> adaptive DPS_GUARDED_BY(mu);
  /// domain().now() stamps of in-flight credits, oldest first — the RTT
  /// source of the adaptive controller (credit round trip, not frame RTT).
  std::deque<double> sends DPS_GUARDED_BY(mu);
};

/// Per-peer reliable-delivery state (docs/FAULT_TOLERANCE.md). One link per
/// (this node, peer) pair, lazily created, guarded by rel_mu_.
struct Controller::ReliableLink {
  // --- sender side ---
  struct Pending {
    FrameKind kind;
    /// The full kReliable frame ([seq|ack|kind|payload]) as first sent.
    /// Kept whole so a retransmit only patches the ack field and copies —
    /// no re-wrap, and the buffer recycles through the pool once acked.
    std::vector<std::byte> wrapped;
    /// Shared multicast body appended after `wrapped` on every transmit;
    /// null for ordinary frames. Dropped (not released) on ack — the last
    /// per-link reference frees the one encoded payload.
    SharedPayload body;
    double next_due = 0;             ///< wall-clock retransmit deadline
    double rto = 0;                  ///< current backoff interval
    int retries = 0;
  };
  uint64_t next_seq = 1;               ///< next sequence number to assign
  std::map<uint64_t, Pending> unacked;  ///< sent, not yet cumulatively acked

  // --- receiver side ---
  uint64_t rx_contig = 0;          ///< highest seq with all predecessors seen
  std::set<uint64_t> rx_above;     ///< received out of order, > rx_contig
  uint64_t acked_sent = 0;         ///< highest cumulative ack we transmitted
  bool ack_pending = false;        ///< delivery since last ack we sent

  // --- liveness ---
  double last_heard = 0;  ///< wall clock of last frame from this peer
  bool dead = false;      ///< peer declared down; link is a black hole
};

// ---------------------------------------------------------------------------
// ExecCtx: one operation execution (implements the OpServices the user's
// postToken / waitForNextToken / thread() calls run against).
// ---------------------------------------------------------------------------

class Controller::ExecCtx : public detail::OpServices {
 public:
  ExecCtx(Controller& controller, Worker& worker, const Flowgraph& graph,
          Envelope env)
      : controller_(controller),
        worker_(worker),
        graph_(graph),
        vertex_(env.vertex),
        env_(std::move(env)) {}

  void run() {
    const Flowgraph::Vertex& v = graph_.vertex(vertex_);
    kind_ = v.kind;
#ifdef DPS_TRACE
    // Identity fields for kOpStart/kOpEnd pairing (obs::TraceQuery keys
    // intervals on thread/vertex/context/seq).
    const bool t_on = obs::tracing_active();
    uint64_t t_ctx = 0, t_seq = 0, t_begin = 0;
    if (t_on) {
      t_ctx = env_.frames.empty() ? 0 : env_.frames.back().context;
      t_seq = env_.frames.empty() ? 0 : env_.frames.back().seq;
      t_begin = obs::trace_clock_ns();
      obs::Trace::instance().record(obs::EventKind::kOpStart,
                                    controller_.self(), vertex_,
                                    static_cast<uint64_t>(kind_), t_ctx,
                                    t_seq);
    }
#endif
    std::unique_ptr<Operation> op(v.op->create());
    op->services_ = this;

    switch (kind_) {
      case OpKind::kLeaf:
        out_frames_ = env_.frames;
        break;
      case OpKind::kSplit: {
        out_frames_ = env_.frames;
        split_ctx_ = controller_.new_context_id();
        controller_.create_flow_account(
            split_ctx_, controller_.tenant_window(env_.tenant));
        out_frames_.push_back(
            SplitFrame{split_ctx_, 0, 0, 0, controller_.self()});
        break;
      }
      case OpKind::kMerge:
      case OpKind::kStream: {
        DPS_CHECK(!env_.frames.empty(),
                  "merge/stream dispatched without a split frame");
        const SplitFrame first = env_.frames.back();
        merge_ctx_ = first.context;
        controller_.cluster_.claim_context(merge_ctx_, &worker_);
        claimed_ = true;
        out_frames_ = env_.frames;
        out_frames_.pop_back();
        received_ = 1;
        if (first.has_total != 0) {
          total_ = first.total;
          total_known_ = true;
        }
        // Batch flow acks: one kFlowAck per ~quarter window instead of one
        // per token keeps the remote split pipelining while cutting ack
        // frames; flush points below guarantee no credit is withheld while
        // this collection blocks. The window is the tenant's — split and
        // merge of one context always share the call's tenant.
        ack_batch_ = std::max<uint32_t>(
            1, std::min<uint32_t>(
                   controller_.tenant_window(env_.tenant) / 4, 16));
        note_consumed(first);
        if (kind_ == OpKind::kStream) {
          split_ctx_ = controller_.new_context_id();
          controller_.create_flow_account(
              split_ctx_, controller_.tenant_window(env_.tenant));
          out_frames_.push_back(
              SplitFrame{split_ctx_, 0, 0, 0, controller_.self()});
        }
        break;
      }
      case OpKind::kGraphCall:
        DPS_CHECK(false, "graph-call vertices are not user operations");
    }

    try {
      op->run_erased(env_.token.get());
    } catch (...) {
      cleanup_after_failure();
      throw;
    }

    // Post-execution contracts and bookkeeping.
    if (kind_ == OpKind::kMerge || kind_ == OpKind::kStream) {
      // Drain tokens the user did not explicitly consume so the context
      // closes and flow-control credits return.
      while (!merge_done()) {
        if (!drain_warned_) {
          DPS_DEBUG("auto-draining merge context at vertex " << vertex_);
          drain_warned_ = true;
        }
        (void)wait_next();
      }
      flush_acks();  // covers contexts whose user code never blocked
      if (claimed_) {
        unclaim();
      }
    }
    if (kind_ == OpKind::kSplit || kind_ == OpKind::kStream) {
      if (posted_ == 0) {
        controller_.finish_flow_account(split_ctx_);
        raise(Errc::kState,
              std::string(to_string(kind_)) +
                  " posted no tokens; the downstream merge would never "
                  "complete");
      }
      if (!held_.has_value()) {
        // Only reachable when user code flushTokens()'d its final post: the
        // engine then has no token left to stamp the context total into.
        controller_.finish_flow_account(split_ctx_);
        raise(Errc::kState,
              std::string(to_string(kind_)) +
                  " flushed its last token; flushTokens() must be followed "
                  "by at least one more postToken before execute returns");
      }
      held_->frames.back().has_total = 1;
      held_->frames.back().total = posted_;
      Envelope last = std::move(*held_);
      held_.reset();
      const bool routed = held_routed_;
      held_routed_ = false;
      // send_now acquires a flow credit; a shutdown/node-down poison can
      // raise out of it, and the account must be finished either way or it
      // leaks (poison passes only reap finished accounts).
      try {
        send_now(std::move(last), routed);
      } catch (...) {
        controller_.finish_flow_account(split_ctx_);
        throw;
      }
      controller_.finish_flow_account(split_ctx_);
#ifdef DPS_TRACE
      if (t_on) {
        static obs::Histogram& fanout =
            obs::Metrics::instance().histogram("dps.split.fanout");
        fanout.observe(posted_);
      }
#endif
    }
    if (kind_ == OpKind::kLeaf && posted_ != 1) {
      raise(Errc::kState, "leaf operation must post exactly one token, got " +
                              std::to_string(posted_));
    }
    if (kind_ == OpKind::kMerge && posted_ != 1) {
      raise(Errc::kState, "merge operation must post exactly one token, got " +
                              std::to_string(posted_));
    }
#ifdef DPS_TRACE
    if (t_on) {
      obs::Trace::instance().record(obs::EventKind::kOpEnd,
                                    controller_.self(), vertex_,
                                    static_cast<uint64_t>(kind_), t_ctx,
                                    t_seq);
      static obs::Histogram& op_latency =
          obs::Metrics::instance().histogram("dps.op.latency_ns");
      op_latency.observe(obs::trace_clock_ns() - t_begin);
    }
#endif
  }

  // --- OpServices -----------------------------------------------------------

  void post(Ptr<Token> token) override {
    DPS_CHECK(token.get() != nullptr, "postToken(nullptr)");
    const Flowgraph::Vertex& v = graph_.vertex(vertex_);
    const uint64_t tid = token->typeInfo().id;

    VertexId target = kNoVertex;
    for (VertexId s : v.successors) {
      if (accepts(graph_.vertex(s), tid)) {
        DPS_CHECK(target == kNoVertex,
                  "ambiguous successor (validated at build; registry drift?)");
        target = s;
      }
    }

    const bool splitish =
        kind_ == OpKind::kSplit || kind_ == OpKind::kStream;

    if (target == kNoVertex) {
      if (!v.successors.empty()) {
        raise(Errc::kUnroutable,
              "no successor of vertex " + std::to_string(vertex_) +
                  " accepts token type '" + token->typeInfo().name + "'");
      }
      // Terminal vertex: the token is the graph-call result.
      if (env_.call == 0) {
        raise(Errc::kState,
              "token posted at a terminal vertex outside a graph call");
      }
      bump_posted(splitish);
      Envelope reply;
      reply.app = env_.app;
      reply.graph = env_.graph;
      reply.vertex = kNoVertex;
      reply.call = env_.call;
      reply.call_reply_node = env_.call_reply_node;
      reply.tenant = env_.tenant;
      reply.token = std::move(token);
      controller_.send_reply(std::move(reply));
      return;
    }

    Envelope out;
    out.app = env_.app;
    out.graph = env_.graph;
    out.vertex = target;
    out.call = env_.call;
    out.call_reply_node = env_.call_reply_node;
    out.tenant = env_.tenant;
    out.frames = out_frames_;
    if (splitish) out.frames.back().seq = posted_;
    out.token = std::move(token);
    bump_posted(splitish);

    if (splitish) {
      // Held-back-last-token protocol: delay each token by one post so the
      // final one can carry the context total while the rest pipeline out
      // eagerly. Latency-sensitive sources release the hold early with
      // flushTokens().
      std::optional<Envelope> to_send;
      bool to_send_routed = false;
      if (held_.has_value()) {
        to_send = std::move(held_);
        to_send_routed = held_routed_;
      }
      held_ = std::move(out);
      held_routed_ = false;
      if (to_send.has_value()) send_now(std::move(*to_send), to_send_routed);
    } else {
      send_now(std::move(out));
    }
  }

  /// Operation::flushTokens — ship the held-back last post immediately so a
  /// paced source does not delay every token by one pacing interval. The
  /// finalization above enforces the contract that another post follows.
  void flush_posted() override {
    if (kind_ != OpKind::kSplit && kind_ != OpKind::kStream) {
      raise(Errc::kState, "flushTokens outside a split/stream operation");
    }
    flush_held();
  }

  void post_multicast(Ptr<Token> token, const std::vector<int>& threads) override {
    DPS_CHECK(token.get() != nullptr, "postTokenMulticast(nullptr)");
    if (threads.empty()) return;
    if (kind_ != OpKind::kSplit && kind_ != OpKind::kStream) {
      raise(Errc::kState,
            "postTokenMulticast outside a split/stream operation");
    }
    const Flowgraph::Vertex& v = graph_.vertex(vertex_);
    const uint64_t tid = token->typeInfo().id;
    VertexId target = kNoVertex;
    for (VertexId s : v.successors) {
      if (accepts(graph_.vertex(s), tid)) {
        DPS_CHECK(target == kNoVertex,
                  "ambiguous successor (validated at build; registry drift?)");
        target = s;
      }
    }
    if (target == kNoVertex) {
      raise(Errc::kUnroutable,
            "no successor of vertex " + std::to_string(vertex_) +
                " accepts multicast token type '" + token->typeInfo().name +
                "'");
    }
    const Flowgraph::Vertex& tv = graph_.vertex(target);
    ThreadCollectionBase* coll = tv.collection;
    for (int t : threads) {
      if (t < 0 || t >= coll->size()) {
        raise(Errc::kState, "multicast destination thread " +
                                std::to_string(t) + " outside collection '" +
                                coll->name() + "'");
      }
    }

    // FIFO with earlier posts: flush the previously held token before any
    // of the collective's envelopes leave.
    flush_held();

    // One envelope per destination shares the frame stack and the token
    // object; destinations receive it read-only. The last destination is
    // held back (pre-routed) so split finalization can stamp the total.
    Envelope base;
    base.app = env_.app;
    base.graph = env_.graph;
    base.vertex = target;
    base.call = env_.call;
    base.call_reply_node = env_.call_reply_node;
    base.tenant = env_.tenant;
    base.collection = coll->id();
    base.frames = out_frames_;
    base.token = std::move(token);

    const size_t K = threads.size();
    std::vector<McastEntry> entries;  // all but the held-back last
    entries.reserve(K - 1);
    for (size_t i = 0; i + 1 < K; ++i) {
      entries.push_back(McastEntry{coll->node_of(threads[i]),
                                   static_cast<uint32_t>(threads[i]),
                                   posted_});
      ++posted_;
    }
    {
      Envelope last;
      last.app = base.app;
      last.graph = base.graph;
      last.vertex = base.vertex;
      last.call = base.call;
      last.call_reply_node = base.call_reply_node;
      last.tenant = base.tenant;
      last.collection = base.collection;
      last.thread = static_cast<ThreadIndex>(threads.back());
      last.frames = base.frames;
      last.frames.back().seq = posted_;
      ++posted_;
      last.token = base.token;
      held_ = std::move(last);
      held_routed_ = true;  // thread chosen here, not by the route
    }
    if (entries.empty()) return;  // K == 1 collapses to a routed post

    // Partition: remote destinations grouped by node (groups ordered by
    // first appearance; entries keep posting order within their node, so
    // per-link FIFO holds). The encode happens once, before any receiver
    // can touch the token.
    std::vector<McastGroup> remote;
    size_t remote_count = 0;
    for (const McastEntry& e : entries) {
      if (e.node == controller_.self_) continue;
      McastGroup* g = nullptr;
      for (McastGroup& have : remote) {
        if (have.node == e.node) {
          g = &have;
          break;
        }
      }
      if (g == nullptr) {
        remote.push_back(McastGroup{e.node, {}});
        g = &remote.back();
      }
      g->entries.push_back(e);
      ++remote_count;
    }

    SharedPayload body;
    if (!remote.empty()) {
      // The one-encode-K-transmit payload: a single exact-size pooled
      // buffer, shared by every transmit (and retransmit) of this
      // collective, recycled into the pool when the last frame drops it.
      base.thread = 0;  // placeholders; receivers stamp their header entry
      base.frames.back().seq = 0;
      Writer w(BufferPool::instance().acquire(base.encoded_size()));
      base.encode(w);
      BufferPool::instance().note_growth(w.growth_count());
      auto* vec = new std::vector<std::byte>(w.take());
      body = SharedPayload(vec, [](const std::vector<std::byte>* p) {
        BufferPool::instance().release(
            std::move(*const_cast<std::vector<std::byte>*>(p)));
        delete p;
      });
      controller_.mcast_encodes_.fetch_add(1, std::memory_order_relaxed);
    }

#ifdef DPS_TRACE
    if (obs::tracing_active()) {
      obs::Trace::instance().record(obs::EventKind::kMcastSend,
                                    controller_.self_, target, K,
                                    remote_count,
                                    body == nullptr ? 0 : body->size());
      static obs::Counter& collectives =
          obs::Metrics::instance().counter("dps.mcast.collectives");
      collectives.inc();
    }
#endif

    // Local destinations: envelope copies sharing the token pointer.
    for (const McastEntry& e : entries) {
      if (e.node != controller_.self_) continue;
      acquire_collective_credit();
      Envelope env;
      env.app = base.app;
      env.graph = base.graph;
      env.vertex = base.vertex;
      env.call = base.call;
      env.call_reply_node = base.call_reply_node;
      env.tenant = base.tenant;
      env.collection = base.collection;
      env.thread = static_cast<ThreadIndex>(e.thread);
      env.frames = out_frames_;
      env.frames.back().seq = e.seq;
      env.token = base.token;
      controller_.send(std::move(env));
    }
    if (remote.empty()) return;

    // Remote fan-out. Credits are acquired here (the split end) for every
    // remote destination; the window floor above keeps the acquisition
    // live even when the window is smaller than the collective, but a
    // structured topology that outsizes the window still degrades to flat
    // so its per-frame chunks interleave with credit returns instead of
    // bursting past the receivers' advertised capacity.
    McastTopology topo = controller_.cluster_.config().mcast_topology;
    const uint32_t window =
        std::max<uint32_t>(1, controller_.tenant_window(env_.tenant));
    if (topo != McastTopology::kFlat && remote_count >= window) {
      topo = McastTopology::kFlat;
    }
    if (topo == McastTopology::kFlat) {
      for (const McastGroup& g : remote) {
        for (size_t lo = 0; lo < g.entries.size(); lo += window) {
          const size_t n = std::min<size_t>(window, g.entries.size() - lo);
          for (size_t i = 0; i < n; ++i) {
            acquire_collective_credit();
          }
          McastGroup chunk{g.node,
                          {g.entries.begin() + lo, g.entries.begin() + lo + n}};
          controller_.mcast_ship(McastTopology::kFlat, {chunk}, body);
        }
      }
    } else {
      for (size_t i = 0; i < remote_count; ++i) {
        acquire_collective_credit();
      }
      controller_.mcast_ship(topo, remote, body);
    }
  }

  Ptr<Token> wait_next() override {
    DPS_CHECK(kind_ == OpKind::kMerge || kind_ == OpKind::kStream,
              "waitForNextToken outside a merge/stream operation");
    if (merge_done()) {
      flush_acks();
      return {};
    }
    // While this collection waits, the DPS thread keeps working: envelopes
    // for other operations are dispatched re-entrantly (the paper's threads
    // process their queues; a waiting merge does not idle the thread — the
    // LU graph depends on this, its stage opener collects notifications
    // that transitively need leaf work on the same column thread).
    //
    // Matching inputs of this collection are an O(1) bucket pop; the next
    // re-entrantly-safe envelope is an O(1) list pop — no scans, no
    // mid-queue erase (the old O(n²)-per-collection hot path).
    for (;;) {
      controller_.drain_inbox(worker_);
      Envelope env2;
      const bool matched =
          worker_.run.pop_context(vertex_, merge_ctx_, &env2);
      if (matched || worker_.run.pop_dispatchable(&env2)) {
        if (worker_.depth_slot != nullptr) {
          worker_.depth_slot->fetch_sub(1, std::memory_order_relaxed);
        }
#ifdef DPS_TRACE
        obs::Trace::instance().record(
            obs::EventKind::kDequeue, controller_.self(), env2.vertex,
            worker_.collection, worker_.index, worker_.run.size());
#endif
        if (matched) {
          const SplitFrame f = env2.frames.back();
          ++received_;
          if (f.has_total != 0) {
            total_ = f.total;
            total_known_ = true;
          }
          note_consumed(f);
          return env2.token;
        }
        // Nested execution of an unrelated operation on this thread. Its
        // failures must not unwind the suspended collection we service.
        try {
          controller_.dispatch(worker_, std::move(env2));
        } catch (const std::exception& e) {
          DPS_ERROR("worker " << worker_.label
                              << ": nested operation failed: " << e.what());
        }
        continue;
      }
      // Nothing runnable: every pending envelope belongs to a suspended
      // collection or would start a new one. Block on the inbox.
      MutexLock lock(worker_.mu);
      if (worker_.inbox.empty() && acks_pending_ > 0 && !worker_.poison) {
        // About to block: return every withheld flow credit first, or the
        // remote split could stall on a window this batch still owes.
        lock.unlock();
        flush_acks();
        lock.lock();
      }
      controller_.cluster_.domain().wait_until(
          worker_.wp, worker_.mu,
          [&] { return worker_.poison || !worker_.inbox.empty(); });
      if (worker_.inbox.empty()) {
        raise(Errc::kState, "worker shut down during merge collection");
      }
      // Loop re-drains under no lock and re-checks the buckets.
    }
  }

  Thread* user_thread() override { return worker_.user_thread.get(); }
  ExecDomain& domain() override { return controller_.cluster_.domain(); }
  int thread_index() const override {
    return static_cast<int>(worker_.index);
  }
  int collection_size() const override { return worker_.collection_size; }

 private:
  bool merge_done() const { return total_known_ && received_ == total_; }

  void bump_posted(bool splitish) {
    ++posted_;
    if (!splitish && posted_ > 1) {
      raise(Errc::kState,
            std::string(to_string(kind_)) + " operation posted " +
                std::to_string(posted_) + " tokens; exactly one is allowed");
    }
  }

  void unclaim() {
    controller_.cluster_.release_context(merge_ctx_);
    claimed_ = false;
  }

  /// Takes a flow credit for a collective. Scalar posts block one token at
  /// a time — that blocking IS the throttle — but a collective acquires its
  /// whole fan-out before the operation yields the worker, and a merge
  /// colocated on that worker cannot run (and release credits) until it
  /// does. Flooring the window at one past everything this execution
  /// already holds makes that self-deadlock impossible; backpressure still
  /// applies across executions, whose accounts are independent.
  void acquire_collective_credit() {
    controller_.flow_acquire(split_ctx_, credits_taken_ + 1);
    ++credits_taken_;
  }

  /// `routed == true` skips the routing function: the destination thread
  /// was already chosen (multicast held-back last token).
  /// Releases the held-back-last-token (no-op when nothing is held). Shared
  /// by flushTokens and the multicast FIFO barrier.
  void flush_held() {
    if (!held_.has_value()) return;
    Envelope prev = std::move(*held_);
    held_.reset();
    const bool routed = held_routed_;
    held_routed_ = false;
    send_now(std::move(prev), routed);
  }

  void send_now(Envelope e, bool routed = false) {
    if (kind_ == OpKind::kSplit || kind_ == OpKind::kStream) {
      if (routed) {
        // The held-back last token of a collective: its siblings' credits
        // may still be in flight, so it floors past them like they did.
        acquire_collective_credit();
      } else {
        controller_.flow_acquire(split_ctx_);
        ++credits_taken_;
      }
    }
    if (routed) {
      controller_.send(std::move(e));
    } else {
      controller_.route_and_send(graph_, std::move(e));
    }
  }

  /// This worker's inbox depth, piggybacked on flow acks as the receiver
  /// congestion signal of the adaptive window controller.
  uint32_t inbox_depth() const {
    return worker_.depth_slot == nullptr
               ? 0
               : worker_.depth_slot->load(std::memory_order_relaxed);
  }

  /// Records one consumed token of the merge/stream input context; credits
  /// to remote splits are batched and flushed by flush_acks().
  void note_consumed(const SplitFrame& frame) {
    if (frame.split_node == controller_.self_) {
      controller_.apply_flow_release(frame.context, 1, inbox_depth());
      return;
    }
    if (acks_pending_ == 0) ack_frame_ = frame;
    ++acks_pending_;
    if (acks_pending_ >= ack_batch_) flush_acks();
  }

  void flush_acks() {
    if (acks_pending_ == 0) return;
    const uint32_t n = acks_pending_;
    acks_pending_ = 0;
    // All tokens of one merge context share the split's context id and
    // node, so the whole batch collapses into one frame.
    controller_.send_flow_ack(ack_frame_, n, inbox_depth());
  }

  void cleanup_after_failure() {
    flush_acks();  // consumed tokens still owe their credits
    if (claimed_) {
      unclaim();
    }
    if (kind_ == OpKind::kSplit || kind_ == OpKind::kStream) {
      controller_.finish_flow_account(split_ctx_);
    }
  }

  Controller& controller_;
  Worker& worker_;
  const Flowgraph& graph_;
  VertexId vertex_;
  Envelope env_;

  OpKind kind_ = OpKind::kLeaf;
  std::vector<SplitFrame> out_frames_;
  uint32_t posted_ = 0;
  std::optional<Envelope> held_;
  /// The held envelope is pre-routed (multicast last destination): send it
  /// via Controller::send, not through the routing function.
  bool held_routed_ = false;
  /// Flow credits this execution has acquired (released ones included — a
  /// conservative overcount only ever raises the collective floor, never
  /// breaks it). See acquire_collective_credit().
  uint32_t credits_taken_ = 0;
  ContextId split_ctx_ = 0;  // split/stream output context
  ContextId merge_ctx_ = 0;  // merge/stream input context
  bool claimed_ = false;
  uint32_t received_ = 0;
  uint32_t total_ = 0;
  bool total_known_ = false;
  bool drain_warned_ = false;
  uint32_t acks_pending_ = 0;  ///< consumed tokens not yet acked upstream
  uint32_t ack_batch_ = 1;     ///< flush threshold (derived from the window)
  SplitFrame ack_frame_{};     ///< context/split_node of the pending batch
};

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

Controller::Controller(Cluster& cluster, NodeId self)
    : cluster_(cluster), self_(self) {}

Controller::~Controller() { shutdown(); }

void Controller::spawn_worker(ThreadCollectionBase& collection,
                              ThreadIndex index,
                              const detail::ThreadTypeInfo& type) {
  auto w = std::make_unique<Worker>();
  w->collection = collection.id();
  w->index = index;
  w->collection_size = collection.size();
  w->label = collection.name() + "[" + std::to_string(index) + "]@" +
             cluster_.node_name(self_);
  w->user_thread.reset(type.create());
  w->depth_slot = collection.mutable_queue_depths() + index;
  Worker* raw = w.get();
  {
    MutexLock lock(workers_mu_);
    DPS_CHECK(!down_, "spawn_worker on a shut-down controller");
    auto key = std::make_pair(collection.id(), index);
    DPS_CHECK(workers_.find(key) == workers_.end(),
              "thread already spawned at this (collection, index)");
    if (cluster_.config().work_stealing) {
      auto& group = steal_groups_[collection.id()];
      if (!group) group = std::make_unique<StealGroup>();
      raw->steal_group = group.get();
      MutexLock glock(group->mu);
      group->members.push_back(raw);
    }
    workers_.emplace(key, std::move(w));
  }
  cluster_.domain().reserve_actor();
  raw->os_thread = std::thread([this, raw] { worker_loop(*raw); });
}

Controller::Worker& Controller::worker(CollectionId collection,
                                       ThreadIndex index) {
  MutexLock lock(workers_mu_);
  auto it = workers_.find(std::make_pair(collection, index));
  if (it == workers_.end()) {
    raise(Errc::kNotFound,
          "no thread " + std::to_string(index) + " of collection " +
              std::to_string(collection) + " on node " +
              cluster_.node_name(self_));
  }
  return *it->second;
}

void Controller::worker_loop(Worker& w) {
  ExecDomain& domain = cluster_.domain();
  domain.actor_started(w.label.c_str());
#ifdef DPS_TRACE
  if (obs::Trace::instance().enabled()) {
    obs::Trace::instance().set_thread_name(w.label);
  }
#endif
  // Under virtual time, this DPS thread competes for its node's CPUs.
  domain.bind_cpu(static_cast<int>(self_));
  pin_worker(w);
  const bool stealing = w.steal_group != nullptr;
  for (;;) {
    const bool drained = drain_inbox(w);
    if (stealing && drained) hint_siblings(w);
    if (w.run.empty()) {
      if (stealing && try_steal(w)) continue;
      MutexLock lock(w.mu);
      try {
        domain.wait_until(w.wp, w.mu, [&] {
          return w.poison || !w.inbox.empty() ||
                 w.steal_hint.load(std::memory_order_relaxed);
        });
      } catch (const Error&) {
        break;  // simulation stopped or stalled while idle
      }
      if (w.steal_hint.load(std::memory_order_relaxed)) {
        w.steal_hint.store(false, std::memory_order_relaxed);
        if (!w.poison || !w.inbox.empty()) continue;  // go drain + steal
      }
      if (w.inbox.empty()) break;  // poisoned and drained
      continue;  // re-drain outside the lock
    }
    Envelope env;
    w.run.pop_front(&env);
    if (w.depth_slot != nullptr) {
      w.depth_slot->fetch_sub(1, std::memory_order_relaxed);
    }
#ifdef DPS_TRACE
    obs::Trace::instance().record(obs::EventKind::kDequeue, self_, env.vertex,
                                  w.collection, w.index, w.run.size());
#endif
    try {
      dispatch(w, std::move(env));
    } catch (const Error& e) {
      if (w.poison) break;
      DPS_ERROR("worker " << w.label << ": " << e.what());
    } catch (const std::exception& e) {
      // User operation code threw: the token is lost (its context will be
      // diagnosed as stalled), the thread survives.
      if (w.poison) break;
      DPS_ERROR("worker " << w.label
                          << ": user operation threw: " << e.what());
    } catch (...) {
      if (w.poison) break;
      DPS_ERROR("worker " << w.label << ": user operation threw");
    }
  }
  domain.actor_finished();
}

void Controller::pin_worker(Worker& w) {
#if defined(__linux__)
  const ClusterConfig::PinPolicy policy = cluster_.config().pin_workers;
  if (policy == ClusterConfig::PinPolicy::kNone) return;
  const int ncpu =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int seq = cluster_.next_pin_seq();
  int cpu;
  if (policy == ClusterConfig::PinPolicy::kCompact) {
    cpu = seq % ncpu;
  } else {
    // Scatter: stride workers across the socket. The stride is made
    // coprime with the core count so `seq * stride % ncpu` visits every
    // core before repeating.
    int stride = std::max(2, ncpu / 2);
    while (std::gcd(stride, ncpu) != 1) ++stride;
    cpu = (seq * stride) % ncpu;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  if (sched_setaffinity(0, sizeof(set), &set) == 0) {
    w.pinned_cpu.store(cpu, std::memory_order_relaxed);
#ifdef DPS_TRACE
    if (obs::tracing_active()) {
      static obs::Gauge& pinned =
          obs::Metrics::instance().gauge("dps.sched.pinned_workers");
      pinned.add(1);
    }
#endif
  }
#else
  (void)w;
#endif
}

std::vector<Controller::WorkerPin> Controller::worker_pinning() const {
  std::vector<WorkerPin> pins;
  MutexLock lock(workers_mu_);
  pins.reserve(workers_.size());
  for (const auto& [key, w] : workers_) {
    pins.push_back(WorkerPin{key.first, key.second,
                             w->pinned_cpu.load(std::memory_order_relaxed)});
  }
  return pins;
}

bool Controller::try_steal(Worker& w) {
  StealGroup* g = w.steal_group;
  if (g == nullptr) return false;
  // Victim choice: the sibling with the deepest queue (inbox + run). The
  // depth slots are the same relaxed counters the routing load-balancers
  // read, so this costs no extra bookkeeping.
  Worker* victim = nullptr;
  uint32_t best = 0;
  {
    MutexLock lock(g->mu);
    for (Worker* m : g->members) {
      if (m == &w || m->poison.load(std::memory_order_relaxed)) continue;
      const uint32_t d = m->depth_slot != nullptr
                             ? m->depth_slot->load(std::memory_order_relaxed)
                             : 0;
      if (d > best) {
        best = d;
        victim = m;
      }
    }
  }
  if (victim == nullptr) return false;
  // Halving budget: taking at most half the victim's dispatchable backlog
  // keeps repeated steals convergent (no whole-queue ping-pong between two
  // idle workers) while still moving a meaningful chunk per operation.
  const size_t victim_disp = victim->run.dispatchable_count();
  if (victim_disp == 0) return false;
  const size_t budget = std::max<size_t>(1, victim_disp / 2);
  std::vector<Envelope> loot;
  const size_t n = victim->run.steal_context(&loot, budget);
  if (n == 0) return false;
  const auto moved = static_cast<uint32_t>(n);
  if (victim->depth_slot != nullptr) {
    victim->depth_slot->fetch_sub(moved, std::memory_order_relaxed);
  }
  if (w.depth_slot != nullptr) {
    w.depth_slot->fetch_add(moved, std::memory_order_relaxed);
  }
  steals_.fetch_add(1, std::memory_order_relaxed);
  stolen_envelopes_.fetch_add(n, std::memory_order_relaxed);
#ifdef DPS_TRACE
  if (obs::tracing_active()) {
    obs::Trace::instance().record(obs::EventKind::kSteal, self_, w.collection,
                                  victim->index, w.index, n);
    static obs::Counter& steals =
        obs::Metrics::instance().counter("dps.sched.steals");
    steals.inc();
    static obs::Counter& stolen =
        obs::Metrics::instance().counter("dps.sched.stolen_envelopes");
    stolen.inc(n);
  }
#endif
  // The loot is a FIFO prefix of one (vertex, context) run; re-pushing in
  // order makes this worker execute it in exactly that order.
  for (Envelope& env : loot) w.run.push(std::move(env), true);
  // Steal chaining: a thief that grabbed a real batch has become a victim
  // worth stealing from, and other siblings may still be parked (the
  // original victim hints one sibling per drain). Propagating the hint
  // fans the backlog out to the whole group in O(log workers) wakes.
  hint_siblings(w);
  return true;
}

void Controller::hint_siblings(Worker& w) {
  // Only worth waking anyone for a real backlog: one pending envelope is
  // this worker's next dispatch anyway.
  if (w.run.dispatchable_count() < 2) return;
  StealGroup* g = w.steal_group;
  if (g == nullptr) return;
  Worker* target = nullptr;
  {
    MutexLock lock(g->mu);
    const size_t k = g->members.size();
    for (size_t i = 0; i < k && target == nullptr; ++i) {
      Worker* m = g->members[g->rr++ % k];
      if (m == &w || m->poison.load(std::memory_order_relaxed)) continue;
      target = m;
    }
  }
  if (target == nullptr) return;
  MutexLock lock(target->mu);
  target->steal_hint.store(true, std::memory_order_relaxed);
  cluster_.domain().notify_all(target->wp);
}

bool Controller::drain_inbox(Worker& w) {
  // Cheap out: producers bump inbox_count after appending; while it reads
  // 0 the worker skips the lock entirely. A stale 0 only delays the drain
  // to the pre-block re-check under mu, so no wakeup is lost.
  if (w.inbox_count.load(std::memory_order_relaxed) == 0) return false;
  {
    MutexLock lock(w.mu);
    if (w.inbox.empty()) return false;
    w.inbox_count.store(0, std::memory_order_relaxed);
    w.drain_buf.swap(w.inbox);
  }
  // Classification is a static insert-time property: an envelope at a
  // merge/stream vertex starts (or belongs to) a collection and is
  // bucketed by (vertex, input context); everything else — leaves, splits,
  // graph calls, call replies — runs to completion and is dispatchable
  // under a waiting collection.
  for (Envelope& e : w.drain_buf) {
    const bool disp = !starts_collection(e);
    w.run.push(std::move(e), disp);
  }
  w.drain_buf.clear();
  return true;
}

void Controller::dispatch(Worker& w, Envelope env) {
  dispatched_.fetch_add(1, std::memory_order_relaxed);
#ifdef DPS_TRACE
  if (obs::tracing_active()) {
    static obs::Counter& tokens =
        obs::Metrics::instance().counter("dps.tokens.dispatched");
    tokens.inc();
  }
#endif
  Application* app = cluster_.app(env.app);
  std::shared_ptr<Flowgraph> graph = app->graph(env.graph);
  DPS_CHECK(graph != nullptr, "envelope names an unknown graph");
  if (graph->vertex(env.vertex).kind == OpKind::kGraphCall) {
    dispatch_graph_call(w, std::move(env));
    return;
  }
  ExecCtx ctx(*this, w, *graph, std::move(env));
  ctx.run();
}

void Controller::dispatch_graph_call(Worker& w, Envelope env) {
  (void)w;
  Application* app = cluster_.app(env.app);
  std::shared_ptr<Flowgraph> graph = app->graph(env.graph);
  const Flowgraph::Vertex& v = graph->vertex(env.vertex);

  // Resolve the published service; blocks until it appears (lazy start).
  const std::string value = cluster_.services().wait_for(v.service_name);
  AppId target_app_id = 0;
  GraphId target_graph_id = 0;
  if (std::sscanf(value.c_str(), "%u %u", &target_app_id, &target_graph_id) !=
      2) {
    raise(Errc::kProtocol,
          "malformed service record for '" + v.service_name + "'");
  }
  Application* target_app = cluster_.app(target_app_id);
  std::shared_ptr<Flowgraph> target = target_app->graph(target_graph_id);
  DPS_CHECK(target != nullptr, "service names an unknown graph");

  const Flowgraph::Vertex& entry = target->vertex(target->entry());
  if (!accepts(entry, env.token->typeInfo().id)) {
    raise(Errc::kTypeMismatch,
          "service '" + v.service_name + "' does not accept token type '" +
              env.token->typeInfo().name + "'");
  }

  const CallId sub = cluster_.new_call_id();
  auto state = cluster_.create_call(sub);
  state->continuation = [this, app_id = env.app, graph_id = env.graph,
                         vertex_id = env.vertex, frames = env.frames,
                         call = env.call, reply = env.call_reply_node,
                         tenant = env.tenant](Ptr<Token> result) {
    continue_graph_call(app_id, graph_id, vertex_id, frames, call, reply,
                        tenant, std::move(result));
  };

  // The sub-call rides the client's admission slot: the tenant was charged
  // at the mesh boundary (call_async / call_service_async), and the tenant
  // id keeps traveling so flow windows and scheduling stay per-tenant.
  Envelope sub_env;
  sub_env.app = target_app_id;
  sub_env.graph = target_graph_id;
  sub_env.vertex = target->entry();
  sub_env.call = sub;
  sub_env.call_reply_node = self_;
  sub_env.tenant = env.tenant;
  sub_env.token = std::move(env.token);
  route_and_send(*target, std::move(sub_env));
}

void Controller::continue_graph_call(AppId app_id, GraphId graph_id,
                                     VertexId vertex_id,
                                     std::vector<SplitFrame> frames,
                                     CallId call, NodeId reply_node,
                                     TenantId tenant, Ptr<Token> result) {
  // Runs on whatever thread completed the sub-call (possibly the simulation
  // scheduler): must not block and must not throw.
  try {
    Application* app = cluster_.app(app_id);
    std::shared_ptr<Flowgraph> graph = app->graph(graph_id);
    const Flowgraph::Vertex& v = graph->vertex(vertex_id);
    const uint64_t tid = result->typeInfo().id;
    VertexId target = kNoVertex;
    for (VertexId s : v.successors) {
      if (accepts(graph->vertex(s), tid)) target = s;
    }
    if (target == kNoVertex) {
      if (!v.successors.empty()) {
        raise(Errc::kUnroutable,
              "no successor accepts the service result type '" +
                  result->typeInfo().name + "'");
      }
      Envelope reply;
      reply.app = app_id;
      reply.graph = graph_id;
      reply.vertex = kNoVertex;
      reply.call = call;
      reply.call_reply_node = reply_node;
      reply.tenant = tenant;
      reply.token = std::move(result);
      send_reply(std::move(reply));
      return;
    }
    Envelope out;
    out.app = app_id;
    out.graph = graph_id;
    out.vertex = target;
    out.call = call;
    out.call_reply_node = reply_node;
    out.tenant = tenant;
    out.frames = std::move(frames);
    out.token = std::move(result);
    route_and_send(*graph, std::move(out));
  } catch (const Error& e) {
    DPS_ERROR("graph-call continuation failed: " << e.what());
  }
}

bool Controller::starts_collection(const Envelope& env) const {
  if (env.vertex == kNoVertex) return false;
  try {
    Application* app = cluster_.app(env.app);
    std::shared_ptr<Flowgraph> graph = app->graph(env.graph);
    const OpKind kind = graph->vertex(env.vertex).kind;
    return kind == OpKind::kMerge || kind == OpKind::kStream;
  } catch (const Error&) {
    return false;  // let the dispatch path report the real problem
  }
}

void Controller::route_and_send(const Flowgraph& graph, Envelope env) {
  const Flowgraph::Vertex& v = graph.vertex(env.vertex);
  std::unique_ptr<RouteBase> route(v.route->create());
  route->ctx_ = detail::RouteContext{v.collection->size(),
                                     v.collection->queue_depths()};
  const int idx = route->route_erased(env.token.get());
  env.collection = v.collection->id();
  env.thread = static_cast<ThreadIndex>(idx);
  send(std::move(env));
}

void Controller::send(Envelope env) {
  ThreadCollectionBase* coll = cluster_.collection(env.collection);
  const NodeId target = coll->node_of(env.thread);
  if (target == self_) {
    deliver_local(std::move(env));
    return;
  }
  send_envelope(target, FrameKind::kEnvelope, env);
}

void Controller::deliver_local(Envelope env) {
  Worker& w = worker(env.collection, env.thread);
#ifdef DPS_TRACE
  const bool t_on = obs::tracing_active();
  const uint64_t t_vertex = env.vertex;
  const uint64_t t_coll = env.collection;
  const uint64_t t_thread = env.thread;
  uint64_t t_depth = 0;
#endif
  MutexLock lock(w.mu);
  w.inbox.push_back(std::move(env));
  w.inbox_count.fetch_add(1, std::memory_order_relaxed);
  if (w.depth_slot != nullptr) {
    w.depth_slot->fetch_add(1, std::memory_order_relaxed);
  }
#ifdef DPS_TRACE
  if (t_on) {
    t_depth = w.inbox.size();
    obs::Trace::instance().record(obs::EventKind::kEnqueue, self_, t_vertex,
                                  t_coll, t_thread, t_depth);
    static obs::Gauge& depth_gauge =
        obs::Metrics::instance().gauge("dps.queue.depth");
    depth_gauge.set(static_cast<int64_t>(t_depth));
    depth_gauge.update_max(static_cast<int64_t>(t_depth));
  }
#endif
  cluster_.domain().notify_all(w.wp);
}

// ---------------------------------------------------------------------------
// Batched fabric delivery
// ---------------------------------------------------------------------------

/// Collects the envelopes decoded from one receive chunk, grouped by
/// destination worker, so the flush costs one lock + one notify per worker
/// instead of one per frame. The group list is a small linear vector: a
/// node hosts few workers and a chunk rarely fans out to more than a
/// handful of them.
class Controller::DeliveryBatch {
 public:
  explicit DeliveryBatch(Controller& controller) : controller_(controller) {}
  DeliveryBatch(const DeliveryBatch&) = delete;
  DeliveryBatch& operator=(const DeliveryBatch&) = delete;
  ~DeliveryBatch() { flush(); }

  void add(Envelope&& env) {
    Worker& w = controller_.worker(env.collection, env.thread);
    for (auto& g : groups_) {
      if (g.worker == &w) {
        g.envs.push_back(std::move(env));
        return;
      }
    }
    groups_.push_back(Group{&w, {}});
    groups_.back().envs.push_back(std::move(env));
  }

  void flush() {
    for (auto& g : groups_) {
      Worker& w = *g.worker;
      const uint32_t n = static_cast<uint32_t>(g.envs.size());
#ifdef DPS_TRACE
      const bool t_on = obs::tracing_active();
#endif
      MutexLock lock(w.mu);
      for (Envelope& env : g.envs) {
#ifdef DPS_TRACE
        if (t_on) {
          obs::Trace::instance().record(obs::EventKind::kEnqueue,
                                        controller_.self(), env.vertex,
                                        w.collection, w.index,
                                        w.inbox.size() + 1);
        }
#endif
        w.inbox.push_back(std::move(env));
      }
      w.inbox_count.fetch_add(n, std::memory_order_relaxed);
      if (w.depth_slot != nullptr) {
        w.depth_slot->fetch_add(n, std::memory_order_relaxed);
      }
#ifdef DPS_TRACE
      if (t_on) {
        static obs::Gauge& depth_gauge =
            obs::Metrics::instance().gauge("dps.queue.depth");
        depth_gauge.set(static_cast<int64_t>(w.inbox.size()));
        depth_gauge.update_max(static_cast<int64_t>(w.inbox.size()));
      }
#endif
      controller_.cluster_.domain().notify_all(w.wp);
    }
    groups_.clear();
  }

 private:
  struct Group {
    Worker* worker;
    std::vector<Envelope> envs;
  };
  Controller& controller_;
  std::vector<Group> groups_;
};

void Controller::send_reply(Envelope env) {
  if (env.call_reply_node == self_) {
    cluster_.complete_call(env.call, std::move(env.token));
    return;
  }
  send_envelope(env.call_reply_node, FrameKind::kCallReply, env);
}

void Controller::on_fabric(NodeMessage&& msg) {
  // Non-blocking by contract: enqueue, update accounts, notify.
  switch (msg.kind) {
    case FrameKind::kReliable:
      handle_reliable(std::move(msg));
      break;
    case FrameKind::kAck: {
      Reader r(msg.payload.data(), msg.payload.size());
      handle_ack(msg.from, r.get<uint64_t>());
      break;
    }
    case FrameKind::kHeartbeat: {
      Reader r(msg.payload.data(), msg.payload.size());
      handle_ack(msg.from, r.get<uint64_t>());
      break;
    }
    case FrameKind::kPeerDown: {
      // Transport-level death report (torn TCP stream). Under fault
      // tolerance the cluster converts it to kNodeDown on in-flight calls;
      // otherwise it is surfaced loudly as a protocol error.
      Reader r(msg.payload.data(), msg.payload.size());
      const std::string reason = r.get_string();
      if (cluster_.fault_tolerant()) {
        cluster_.mark_node_down(msg.from, reason);
      } else {
        DPS_ERROR("node " << self_ << ": " << to_string(Errc::kProtocol)
                          << ": " << reason);
      }
      break;
    }
    default:
#ifdef DPS_TRACE
      if (obs::tracing_active()) {
        obs::Trace::instance().record(obs::EventKind::kFabricRecv, self_,
                                      msg.from,
                                      static_cast<uint64_t>(msg.kind), 0,
                                      msg.payload.size());
        static obs::Counter& received_raw =
            obs::Metrics::instance().counter("dps.fabric.frames_received");
        received_raw.inc();
      }
#endif
      handle_frame(msg.kind, msg.from, msg.payload.data(),
                   msg.payload.size());
  }
}

void Controller::on_fabric_batch(std::vector<NodeMessage>&& msgs) {
  // One receive chunk's worth of frames. Envelopes are grouped per worker
  // (one inbox append + one notify each), and all reliable-link seq/ack
  // bookkeeping for the chunk runs under a single rel_mu_ acquisition.
  DeliveryBatch batch(*this);
  struct RelItem {
    size_t index;       ///< into msgs
    uint64_t seq = 0;
    uint64_t ack = 0;
    FrameKind inner = FrameKind::kEnvelope;
    size_t header = 0;
    bool deliver = false;
  };
  std::vector<RelItem> rel;
  for (size_t i = 0; i < msgs.size(); ++i) {
    NodeMessage& msg = msgs[i];
    switch (msg.kind) {
      case FrameKind::kReliable: {
        RelItem item;
        item.index = i;
        Reader r(msg.payload.data(), msg.payload.size());
        item.seq = r.get<uint64_t>();
        item.ack = r.get<uint64_t>();
        item.inner = static_cast<FrameKind>(r.get<uint16_t>());
        item.header = msg.payload.size() - r.remaining();
        rel.push_back(item);
        break;
      }
      case FrameKind::kAck:
      case FrameKind::kHeartbeat:
      case FrameKind::kPeerDown:
        on_fabric(std::move(msg));  // rare control kinds keep the slow path
        break;
      default: {
#ifdef DPS_TRACE
        if (obs::tracing_active()) {
          obs::Trace::instance().record(obs::EventKind::kFabricRecv, self_,
                                        msg.from,
                                        static_cast<uint64_t>(msg.kind), 0,
                                        msg.payload.size());
          static obs::Counter& received_raw =
              obs::Metrics::instance().counter("dps.fabric.frames_received");
          received_raw.inc();
        }
#endif
        handle_frame(msg.kind, msg.from, msg.payload.data(),
                     msg.payload.size(), &batch);
      }
    }
  }
  if (rel.empty()) return;

  // Dup re-acks, coalesced per peer: the last suppressed frame's
  // cumulative ack covers every earlier one in the chunk.
  struct PendingAck {
    NodeId peer;
    uint64_t val;
  };
  std::vector<PendingAck> acks;
  {
    MutexLock lock(rel_mu_);
    for (RelItem& item : rel) {
      const NodeId from = msgs[item.index].from;
      ReliableLink& l = rlink_locked(from);
      handle_ack_locked(l, from, item.ack);
      l.last_heard = mono_seconds();
      uint64_t ack_val = 0;
      item.deliver = reliable_rx_locked(l, item.seq, &ack_val);
      if (!item.deliver) {
#ifdef DPS_TRACE
        if (obs::tracing_active()) {
          obs::Trace::instance().record(obs::EventKind::kDupSuppressed,
                                        self_, from,
                                        static_cast<uint64_t>(item.inner),
                                        item.seq, 0);
          static obs::Counter& dups =
              obs::Metrics::instance().counter("dps.fabric.dup_suppressed");
          dups.inc();
        }
#endif
        bool found = false;
        for (auto& a : acks) {
          if (a.peer == from) {
            a.val = ack_val;
            found = true;
          }
        }
        if (!found) acks.push_back(PendingAck{from, ack_val});
      }
    }
  }
  for (const PendingAck& a : acks) {
    Writer w;
    w.put<uint64_t>(a.val);
#ifdef DPS_TRACE
    obs::Trace::instance().record(obs::EventKind::kAckSend, self_, a.peer, 0,
                                  a.val, 0);
#endif
    try {
      cluster_.fabric().send(self_, a.peer, FrameKind::kAck, w.take());
    } catch (const Error&) {
      // ack lost: the duplicate will come again
    }
  }
  for (const RelItem& item : rel) {
    if (!item.deliver) continue;
    NodeMessage& msg = msgs[item.index];
#ifdef DPS_TRACE
    if (obs::tracing_active()) {
      obs::Trace::instance().record(obs::EventKind::kFabricRecv, self_,
                                    msg.from,
                                    static_cast<uint64_t>(item.inner),
                                    item.seq,
                                    msg.payload.size() - item.header);
      static obs::Counter& received =
          obs::Metrics::instance().counter("dps.fabric.frames_received");
      received.inc();
    }
#endif
    handle_frame(item.inner, msg.from, msg.payload.data() + item.header,
                 msg.payload.size() - item.header, &batch);
  }
  // ~DeliveryBatch flushes the grouped envelopes.
}

void Controller::handle_frame(FrameKind kind, NodeId from,
                              const std::byte* data, size_t size,
                              DeliveryBatch* batch) {
  switch (kind) {
    case FrameKind::kEnvelope: {
      Reader r(data, size);
      if (batch != nullptr) {
        batch->add(Envelope::decode(r));
      } else {
        deliver_local(Envelope::decode(r));
      }
      break;
    }
    case FrameKind::kFlowAck: {
      Reader r(data, size);
      const ContextId ctx = r.get<ContextId>();
      const uint32_t n = r.get<uint32_t>();
      // Receiver inbox depth rides as an optional trailer (wire compat
      // with pre-adaptive senders that stop after the count).
      const uint32_t depth =
          r.remaining() >= sizeof(uint32_t) ? r.get<uint32_t>() : 0;
      apply_flow_release(ctx, n, depth);
      break;
    }
    case FrameKind::kMcastEnvelope:
      handle_mcast(from, data, size, batch);
      break;
    case FrameKind::kCallReply: {
      Reader r(data, size);
      Envelope env = Envelope::decode(r);
      cluster_.complete_call(env.call, std::move(env.token));
      break;
    }
    default:
      DPS_WARN("node " << self_ << ": unexpected frame kind "
                       << static_cast<int>(kind) << " from node " << from);
  }
}

void Controller::handle_mcast(NodeId from, const std::byte* data, size_t size,
                              DeliveryBatch* batch) {
  (void)from;
  Reader r(data, size);
  McastTopology topo = McastTopology::kFlat;
  const std::vector<McastEntry> entries = decode_mcast_header(r, &topo);
  const size_t body_off = size - r.remaining();
  Envelope base = Envelope::decode(r);
  if (base.frames.empty()) {
    raise(Errc::kProtocol, "multicast envelope without a split frame");
  }

  // Local entries become envelope copies sharing one decode of the token;
  // everything else is regrouped by node (first-appearance group order,
  // per-node posting order kept) for the next hop.
  std::vector<McastGroup> remote;
  uint64_t delivered = 0;
  for (const McastEntry& e : entries) {
    if (e.node != self_) {
      McastGroup* g = nullptr;
      for (McastGroup& have : remote) {
        if (have.node == e.node) {
          g = &have;
          break;
        }
      }
      if (g == nullptr) {
        remote.push_back(McastGroup{e.node, {}});
        g = &remote.back();
      }
      g->entries.push_back(e);
      continue;
    }
    Envelope env = base;  // token pointer shared, not re-decoded
    env.thread = static_cast<ThreadIndex>(e.thread);
    env.frames.back().seq = e.seq;
    ++delivered;
    if (batch != nullptr) {
      batch->add(std::move(env));
    } else {
      deliver_local(std::move(env));
    }
  }
#ifdef DPS_TRACE
  if (delivered > 0 && obs::tracing_active()) {
    obs::Trace::instance().record(obs::EventKind::kMcastDeliver, self_,
                                  base.vertex, delivered, entries.size(),
                                  size - body_off);
    static obs::Counter& deliveries =
        obs::Metrics::instance().counter("dps.mcast.deliveries");
    deliveries.inc(delivered);
  }
#endif
  if (remote.empty()) return;

  // Relay hop of a tree/ring collective: the body bytes are copied out of
  // the arrival frame once and shared by every forwarded subtree frame.
  auto body = std::make_shared<const std::vector<std::byte>>(data + body_off,
                                                             data + size);
#ifdef DPS_TRACE
  if (obs::tracing_active()) {
    obs::Trace::instance().record(obs::EventKind::kMcastForward, self_,
                                  base.vertex, remote.size(), 0, body->size());
    static obs::Counter& forwards =
        obs::Metrics::instance().counter("dps.mcast.forwards");
    forwards.inc();
  }
#endif
  mcast_ship(topo, remote, body);
}

// --- Flow control ------------------------------------------------------------

ContextId Controller::new_context_id() {
  return (static_cast<uint64_t>(self_ + 1) << 40) |
         (context_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
}

void Controller::create_flow_account(ContextId ctx, uint32_t window) {
  auto acc = std::make_unique<FlowAccount>();
  acc->window = window;
  if (cluster_.config().adaptive_flow) {
    // No concurrency before the account is published; the lock only
    // satisfies the GUARDED_BY annotation.
    MutexLock al(acc->mu);
    acc->adaptive = std::make_unique<AdaptiveWindow>(window);
  }
  MutexLock lock(flow_mu_);
  if (flow_down_) {
    MutexLock al(acc->mu);
    acc->poison = true;
  }
  accounts_.emplace(ctx, std::move(acc));
}

void Controller::flow_acquire(ContextId ctx, uint32_t min_window) {
  FlowAccount* acc = nullptr;
  {
    MutexLock lock(flow_mu_);
    auto it = accounts_.find(ctx);
    DPS_CHECK(it != accounts_.end(), "flow_acquire on unknown account");
    acc = it->second.get();
  }
  MutexLock lock(acc->mu);
  // Static accounts freeze the tenant window at split start; adaptive ones
  // re-read the controller's current window on every acquire. `min_window`
  // keeps a collective live: its posting worker may also serve the merge
  // that returns these very credits, so a wait that can only be satisfied
  // by releases is a deadlock, not backpressure.
  cluster_.domain().wait_until(acc->wp, acc->mu, [&] {
    uint32_t window =
        acc->adaptive != nullptr ? acc->adaptive->window() : acc->window;
    if (window < min_window) window = min_window;
    return acc->poison || acc->in_flight < window;
  });
  if (acc->poison) {
    raise(Errc::kState, "shutdown while waiting for flow-control window");
  }
  ++acc->in_flight;
  if (acc->adaptive != nullptr) {
    acc->sends.push_back(cluster_.domain().now());
  }
#ifdef DPS_TRACE
  obs::Trace::instance().record(obs::EventKind::kFlowAcquire, self_, ctx, 0, 0,
                                acc->in_flight);
#endif
}

void Controller::finish_flow_account(ContextId ctx) {
  MutexLock lock(flow_mu_);
  auto it = accounts_.find(ctx);
  if (it == accounts_.end()) return;
  bool drained = false;
  {
    MutexLock al(it->second->mu);
    it->second->finished = true;
    // A poisoned account's outstanding credits can never come back (the
    // acks died with the peer) — waiting for in_flight to reach zero would
    // leak the account forever. The split is done with it; reap it now.
    drained = (it->second->in_flight == 0) || it->second->poison;
  }
  if (drained) accounts_.erase(it);
}

void Controller::apply_flow_release(ContextId ctx, uint32_t n,
                                    uint32_t receiver_depth) {
  MutexLock lock(flow_mu_);
  auto it = accounts_.find(ctx);
  if (it == accounts_.end()) return;  // late ack after account drained
  bool drained = false;
  {
    MutexLock al(it->second->mu);
    FlowAccount& acc = *it->second;
    acc.in_flight = (acc.in_flight >= n) ? acc.in_flight - n : 0;
    if (acc.adaptive != nullptr) {
      // Credit round trip, measured from the oldest outstanding acquire.
      double rtt = 0;
      if (!acc.sends.empty()) {
        rtt = cluster_.domain().now() - acc.sends.front();
        for (uint32_t i = 0; i < n && !acc.sends.empty(); ++i) {
          acc.sends.pop_front();
        }
      }
      if (acc.adaptive->on_ack(rtt, receiver_depth, n)) {
#ifdef DPS_TRACE
        if (obs::tracing_active()) {
          obs::Trace::instance().record(obs::EventKind::kFlowWindow, self_,
                                        ctx, acc.adaptive->window(),
                                        receiver_depth, acc.in_flight);
          static obs::Gauge& window_gauge =
              obs::Metrics::instance().gauge("dps.flow.window");
          window_gauge.set(acc.adaptive->window());
          window_gauge.update_max(acc.adaptive->window());
        }
#endif
      }
    }
#ifdef DPS_TRACE
    obs::Trace::instance().record(obs::EventKind::kFlowRelease, self_, ctx, 0,
                                  n, acc.in_flight);
#endif
    cluster_.domain().notify_all(acc.wp);
    drained = acc.finished && acc.in_flight == 0;
  }
  if (drained) accounts_.erase(it);
}

void Controller::send_flow_ack(const SplitFrame& frame, uint32_t n,
                               uint32_t receiver_depth) {
  if (n == 0) return;
  if (frame.split_node == self_) {
    apply_flow_release(frame.context, n, receiver_depth);
    return;
  }
  Writer w;
  w.put<ContextId>(frame.context);
  w.put<uint32_t>(n);
  w.put<uint32_t>(receiver_depth);
  fabric_send(frame.split_node, FrameKind::kFlowAck, w.take());
}

// --- Service-mesh admission (docs/SERVICE_MESH.md) ---------------------------

void Controller::admit_call(TenantId tenant, const Flowgraph& target) {
  const TenantConfig cfg = cluster_.tenant_config(tenant);

  // Queue-depth overload signal, read outside svc_mu_ (atomics only): total
  // mailbox backlog of the service's entry collection.
  uint64_t depth = 0;
  if (cfg.queue_high_water > 0) {
    const Flowgraph::Vertex& entry = target.vertex(target.entry());
    const std::atomic<uint32_t>* depths = entry.collection->queue_depths();
    const int n = entry.collection->size();
    for (int i = 0; i < n; ++i) {
      depth += depths[i].load(std::memory_order_relaxed);
    }
  }

  const char* why = nullptr;
  uint32_t inflight = 0;
  {
    MutexLock lock(svc_mu_);
    SvcStats& s = svc_[tenant];
    if (cfg.max_inflight > 0 && s.inflight >= cfg.max_inflight) {
      ++s.shed;
      why = "in-flight budget exhausted";
    } else if (cfg.queue_high_water > 0 && depth >= cfg.queue_high_water) {
      ++s.shed;
      why = "service entry queue above the high-water mark";
    } else {
      ++s.admitted;
      inflight = ++s.inflight;
      if (inflight > s.peak_inflight) s.peak_inflight = inflight;
    }
  }

#ifdef DPS_TRACE
  {
    static obs::Counter& admitted =
        obs::Metrics::instance().counter("dps.svc.admitted");
    static obs::Counter& shed = obs::Metrics::instance().counter("dps.svc.shed");
    static obs::Gauge& inflight_g =
        obs::Metrics::instance().gauge("dps.svc.inflight");
    if (why == nullptr) {
      admitted.inc();
      inflight_g.add(1);
      inflight_g.update_max(inflight);
    } else {
      shed.inc();
    }
  }
  if (obs::tracing_active()) {
    obs::Trace::instance().record(
        why == nullptr ? obs::EventKind::kSvcAdmit : obs::EventKind::kSvcShed,
        self_, tenant, 0, 0, inflight);
  }
#endif

  if (why != nullptr) {
    raise(Errc::kBackpressure,
          "call shed for tenant '" + cluster_.tenant_name(tenant) +
              "': " + why);
  }
}

void Controller::retire_call(TenantId tenant, bool deadline_expired) {
  {
    MutexLock lock(svc_mu_);
    SvcStats& s = svc_[tenant];
    DPS_CHECK(s.inflight > 0, "retire_call without a matching admit_call");
    --s.inflight;
    if (deadline_expired) ++s.deadline_expired;
  }
#ifdef DPS_TRACE
  {
    static obs::Gauge& inflight_g =
        obs::Metrics::instance().gauge("dps.svc.inflight");
    inflight_g.sub(1);
    if (deadline_expired) {
      static obs::Counter& expired =
          obs::Metrics::instance().counter("dps.svc.deadline_expired");
      expired.inc();
    }
  }
  if (deadline_expired && obs::tracing_active()) {
    obs::Trace::instance().record(obs::EventKind::kSvcDeadline, self_, tenant,
                                  0, 0, 0);
  }
#endif
}

Controller::SvcStats Controller::svc_stats(TenantId tenant) const {
  MutexLock lock(svc_mu_);
  const auto it = svc_.find(tenant);
  return it == svc_.end() ? SvcStats{} : it->second;
}

uint32_t Controller::tenant_window(TenantId tenant) const {
  const TenantConfig cfg = cluster_.tenant_config(tenant);
  return cfg.flow_window > 0 ? cfg.flow_window : cluster_.flow_window();
}

size_t Controller::flow_account_count() const {
  MutexLock lock(flow_mu_);
  return accounts_.size();
}

// --- Fault tolerance (docs/FAULT_TOLERANCE.md) -------------------------------
//
// Lock discipline: rel_mu_ is never held across a fabric send. The inproc
// fabric delivers synchronously on the calling thread, so a send made under
// rel_mu_ could re-enter this controller (peer's ack) and self-deadlock.
// Frames are built under the lock and shipped after it is released.

void Controller::enable_fault_tolerance() {
  const FaultToleranceConfig& ft = cluster_.config().fault;
  reliable_ = ft.reliable;
  heartbeat_ = ft.heartbeat;
  const double now = mono_seconds();
  MutexLock lock(rel_mu_);
  for (NodeId peer = 0; peer < cluster_.node_count(); ++peer) {
    if (peer == self_) continue;
    rlink_locked(peer).last_heard = now;  // grace period from arming time
  }
}

Controller::ReliableLink& Controller::rlink_locked(NodeId peer) {
  auto it = rlinks_.find(peer);
  if (it == rlinks_.end()) {
    it = rlinks_.emplace(peer, std::make_unique<ReliableLink>()).first;
  }
  return *it->second;
}

void Controller::fabric_send(NodeId target, FrameKind kind,
                             std::vector<std::byte> payload) {
  if (!reliable_) {
#ifdef DPS_TRACE
    if (obs::tracing_active()) {
      obs::Trace::instance().record(obs::EventKind::kFabricSend, self_,
                                    target, static_cast<uint64_t>(kind), 0,
                                    payload.size());
      static obs::Counter& sent_raw =
          obs::Metrics::instance().counter("dps.fabric.frames_sent");
      sent_raw.inc();
    }
#endif
    cluster_.fabric().send(self_, target, kind, std::move(payload));
    return;
  }
  Writer w(BufferPool::instance().acquire(kRelHeaderSize + payload.size()));
  w.put<uint64_t>(0);  // seq placeholder, patched under rel_mu_
  w.put<uint64_t>(0);  // cumulative-ack placeholder
  w.put<uint16_t>(static_cast<uint16_t>(kind));
  w.put_raw(payload.data(), payload.size());
  send_reliable_wrapped(target, kind, w.take());
}

void Controller::fabric_send_shared(NodeId target, FrameKind kind,
                                    std::vector<std::byte> prefix,
                                    SharedPayload body) {
  if (!reliable_) {
#ifdef DPS_TRACE
    if (obs::tracing_active()) {
      obs::Trace::instance().record(
          obs::EventKind::kFabricSend, self_, target,
          static_cast<uint64_t>(kind), 0,
          prefix.size() + (body == nullptr ? 0 : body->size()));
      static obs::Counter& sent_raw =
          obs::Metrics::instance().counter("dps.fabric.frames_sent");
      sent_raw.inc();
    }
#endif
    cluster_.fabric().send_shared(self_, target, kind, std::move(prefix),
                                  std::move(body));
    return;
  }
  // Only the small per-receiver prefix is wrapped with [seq|ack|kind]; the
  // shared body stays outside the sequenced buffer and rides every
  // (re)transmit of this link's frame untouched.
  Writer w(BufferPool::instance().acquire(kRelHeaderSize + prefix.size()));
  w.put<uint64_t>(0);  // seq placeholder, patched under rel_mu_
  w.put<uint64_t>(0);  // cumulative-ack placeholder
  w.put<uint16_t>(static_cast<uint16_t>(kind));
  w.put_raw(prefix.data(), prefix.size());
  BufferPool::instance().release(std::move(prefix));
  send_reliable_wrapped(target, kind, w.take(), std::move(body));
}

void Controller::mcast_ship(McastTopology topo,
                            const std::vector<McastGroup>& groups,
                            const SharedPayload& body) {
  mcast_fanout(topo, groups, [&](NodeId to, const McastGroup* g,
                                 size_t count) {
    size_t n = 0;
    for (size_t i = 0; i < count; ++i) n += g[i].entries.size();
    Writer w(BufferPool::instance().acquire(mcast_header_size(n)));
    w.put(static_cast<uint8_t>(topo));
    w.put(static_cast<uint32_t>(n));
    for (size_t i = 0; i < count; ++i) {
      w.put_raw(g[i].entries.data(), g[i].entries.size() * sizeof(McastEntry));
    }
    BufferPool::instance().note_growth(w.growth_count());
    mcast_frames_.fetch_add(1, std::memory_order_relaxed);
#ifdef DPS_TRACE
    if (obs::tracing_active()) {
      static obs::Counter& frames =
          obs::Metrics::instance().counter("dps.mcast.frames");
      frames.inc();
    }
#endif
    fabric_send_shared(to, FrameKind::kMcastEnvelope, w.take(), body);
  });
}

void Controller::send_envelope(NodeId target, FrameKind kind,
                               const Envelope& env) {
  // One exact-size pooled allocation per cross-node envelope: encoded_size
  // is arithmetic, so Writer never reallocates mid-encode, and in reliable
  // mode the kReliable header shares the same buffer instead of re-wrapping
  // the encoded payload through a second writer (the old double copy).
  const size_t body = env.encoded_size();
  if (!reliable_) {
    Writer w(BufferPool::instance().acquire(body));
    env.encode(w);
    BufferPool::instance().note_growth(w.growth_count());
#ifdef DPS_TRACE
    if (obs::tracing_active()) {
      obs::Trace::instance().record(obs::EventKind::kFabricSend, self_,
                                    target, static_cast<uint64_t>(kind), 0,
                                    w.size());
      static obs::Counter& sent_raw =
          obs::Metrics::instance().counter("dps.fabric.frames_sent");
      sent_raw.inc();
    }
#endif
    cluster_.fabric().send(self_, target, kind, w.take());
    return;
  }
  Writer w(BufferPool::instance().acquire(kRelHeaderSize + body));
  w.put<uint64_t>(0);  // seq placeholder, patched under rel_mu_
  w.put<uint64_t>(0);  // cumulative-ack placeholder
  w.put<uint16_t>(static_cast<uint16_t>(kind));
  env.encode(w);
  BufferPool::instance().note_growth(w.growth_count());
  send_reliable_wrapped(target, kind, w.take());
}

void Controller::send_reliable_wrapped(NodeId target, FrameKind kind,
                                       std::vector<std::byte> wrapped,
                                       SharedPayload body) {
  const FaultToleranceConfig& ft = cluster_.config().fault;
  std::vector<std::byte> out;
#ifdef DPS_TRACE
  uint64_t t_seq = 0;
  const uint64_t t_size = wrapped.size() - kRelHeaderSize +
                          (body == nullptr ? 0 : body->size());
#endif
  {
    MutexLock lock(rel_mu_);
    ReliableLink& l = rlink_locked(target);
    if (l.dead) {
      // Peer declared down: the link is a black hole.
      BufferPool::instance().release(std::move(wrapped));
      return;
    }
    const uint64_t seq = l.next_seq++;
#ifdef DPS_TRACE
    t_seq = seq;
#endif
    patch_u64(wrapped, kRelSeqOffset, seq);
    patch_u64(wrapped, kRelAckOffset, l.rx_contig);  // piggybacked ack
    l.acked_sent = std::max(l.acked_sent, l.rx_contig);
    l.ack_pending = false;
    ReliableLink::Pending p;
    p.kind = kind;
    p.wrapped = std::move(wrapped);
    p.body = body;
    p.rto = ft.rto_initial;
    p.next_due = mono_seconds() + p.rto;
    out = p.wrapped;  // the in-flight copy; the original arms retransmission
    l.unacked.emplace(seq, std::move(p));
  }
#ifdef DPS_TRACE
  if (obs::tracing_active()) {
    obs::Trace::instance().record(obs::EventKind::kFabricSend, self_, target,
                                  static_cast<uint64_t>(kind), t_seq, t_size);
    static obs::Counter& sent =
        obs::Metrics::instance().counter("dps.fabric.frames_sent");
    sent.inc();
  }
#endif
  try {
    if (body != nullptr) {
      cluster_.fabric().send_shared(self_, target, FrameKind::kReliable,
                                    std::move(out), std::move(body));
    } else {
      cluster_.fabric().send(self_, target, FrameKind::kReliable,
                             std::move(out));
    }
  } catch (const Error& e) {
    // A torn transport is just a lossy link here: the retransmission timer
    // retries until the ack arrives or the peer is declared down.
    DPS_DEBUG("node " << self_ << ": send to " << target
                      << " failed, will retransmit: " << e.what());
  }
}

/// Receive-side bookkeeping for one sequenced frame; shared by the single
/// and batched delivery paths. On a duplicate (retransmission that crossed
/// our ack, or an injected copy) returns false and leaves the cumulative
/// ack to re-send in *ack_val so the sender stops.
bool Controller::reliable_rx_locked(ReliableLink& l, uint64_t seq,
                                    uint64_t* ack_val) {
  if (seq <= l.rx_contig || l.rx_above.count(seq) != 0) {
    dup_suppressed_.fetch_add(1, std::memory_order_relaxed);
    *ack_val = l.rx_contig;
    l.acked_sent = std::max(l.acked_sent, l.rx_contig);
    l.ack_pending = false;
    return false;
  }
  if (seq == l.rx_contig + 1) {
    ++l.rx_contig;
    while (l.rx_above.erase(l.rx_contig + 1) != 0) ++l.rx_contig;
  } else {
    l.rx_above.insert(seq);
  }
  l.ack_pending = true;  // flushed by the next tick or piggybacked
  return true;
}

void Controller::handle_reliable(NodeMessage&& msg, DeliveryBatch* batch) {
  Reader r(msg.payload.data(), msg.payload.size());
  const uint64_t seq = r.get<uint64_t>();
  const uint64_t ack = r.get<uint64_t>();
  const FrameKind inner = static_cast<FrameKind>(r.get<uint16_t>());
  const size_t header = msg.payload.size() - r.remaining();

  bool deliver = false;
  bool ack_now = false;
  uint64_t ack_val = 0;
  {
    MutexLock lock(rel_mu_);
    ReliableLink& l = rlink_locked(msg.from);
    handle_ack_locked(l, msg.from, ack);
    l.last_heard = mono_seconds();
    deliver = reliable_rx_locked(l, seq, &ack_val);
    ack_now = !deliver;
  }
#ifdef DPS_TRACE
  if (!deliver && obs::tracing_active()) {
    obs::Trace::instance().record(obs::EventKind::kDupSuppressed, self_,
                                  msg.from, static_cast<uint64_t>(inner),
                                  seq, 0);
    static obs::Counter& dups =
        obs::Metrics::instance().counter("dps.fabric.dup_suppressed");
    dups.inc();
  }
#endif
  if (ack_now) {
    Writer w;
    w.put<uint64_t>(ack_val);
#ifdef DPS_TRACE
    obs::Trace::instance().record(obs::EventKind::kAckSend, self_, msg.from, 0,
                                  ack_val, 0);
#endif
    try {
      cluster_.fabric().send(self_, msg.from, FrameKind::kAck, w.take());
    } catch (const Error&) {
      // ack lost: the duplicate will come again
    }
  }
  if (deliver) {
#ifdef DPS_TRACE
    if (obs::tracing_active()) {
      obs::Trace::instance().record(obs::EventKind::kFabricRecv, self_,
                                    msg.from, static_cast<uint64_t>(inner),
                                    seq, msg.payload.size() - header);
      static obs::Counter& received =
          obs::Metrics::instance().counter("dps.fabric.frames_received");
      received.inc();
    }
#endif
    // Frames are self-contained engine messages: out-of-order delivery is
    // harmless (merge contexts collect by SplitFrame, not arrival order),
    // so deliver immediately instead of buffering behind the gap.
    handle_frame(inner, msg.from, msg.payload.data() + header,
                 msg.payload.size() - header, batch);
  }
}

void Controller::handle_ack_locked(ReliableLink& l, NodeId from,
                                   uint64_t ack) {
#ifdef DPS_TRACE
  obs::Trace::instance().record(obs::EventKind::kAckRecv, self_, from, 0, ack,
                                0);
#else
  (void)from;
#endif
  auto end = l.unacked.upper_bound(ack);
  for (auto it = l.unacked.begin(); it != end; ++it) {
    BufferPool::instance().release(std::move(it->second.wrapped));
  }
  l.unacked.erase(l.unacked.begin(), end);
}

void Controller::handle_ack(NodeId from, uint64_t ack) {
  MutexLock lock(rel_mu_);
  ReliableLink& l = rlink_locked(from);
  l.last_heard = mono_seconds();
  handle_ack_locked(l, from, ack);
}

std::vector<NodeId> Controller::reliability_tick(double now) {
  const FaultToleranceConfig& ft = cluster_.config().fault;
  struct Out {
    NodeId to;
    FrameKind kind;
    std::vector<std::byte> payload;
    SharedPayload body;  ///< shared multicast payload; null for most frames
  };
  std::vector<Out> outs;
  std::vector<NodeId> suspects;
  {
    MutexLock lock(rel_mu_);
    for (auto& [peer, lp] : rlinks_) {
      ReliableLink& l = *lp;
      if (l.dead) continue;
      if (l.ack_pending && l.rx_contig > l.acked_sent) {
        Writer w;
        w.put<uint64_t>(l.rx_contig);
#ifdef DPS_TRACE
        obs::Trace::instance().record(obs::EventKind::kAckSend, self_, peer, 0,
                                      l.rx_contig, 0);
#endif
        outs.push_back({peer, FrameKind::kAck, w.take(), nullptr});
        l.acked_sent = l.rx_contig;
        l.ack_pending = false;
      }
      for (auto& [seq, p] : l.unacked) {
        if (p.next_due > now) continue;
        if (p.retries >= ft.max_retries) {
          suspects.push_back(peer);
          break;
        }
        ++p.retries;
        p.rto = std::min(p.rto * 2, ft.rto_max);
        // Deterministic jitter (from the seq, not a clock) de-synchronizes
        // retransmit bursts without breaking run-to-run reproducibility.
        p.next_due = now + p.rto * (1.0 + 0.25 * static_cast<double>(
                                              (seq * 2654435761ULL) % 97) / 97.0);
        // The pending buffer is already the full kReliable frame; refresh
        // its piggybacked ack in place and send a copy (the original stays
        // armed for the next timeout).
        patch_u64(p.wrapped, kRelAckOffset, l.rx_contig);
        l.acked_sent = std::max(l.acked_sent, l.rx_contig);
        outs.push_back({peer, FrameKind::kReliable, p.wrapped, p.body});
        retransmissions_.fetch_add(1, std::memory_order_relaxed);
#ifdef DPS_TRACE
        if (obs::tracing_active()) {
          obs::Trace::instance().record(obs::EventKind::kRetransmit, self_,
                                        peer, static_cast<uint64_t>(p.kind),
                                        seq,
                                        static_cast<uint64_t>(p.retries));
          static obs::Counter& rtx =
              obs::Metrics::instance().counter("dps.fabric.retransmits");
          rtx.inc();
        }
#endif
      }
    }
  }
  for (auto& o : outs) {
    try {
      if (o.body != nullptr) {
        cluster_.fabric().send_shared(self_, o.to, o.kind,
                                      std::move(o.payload), std::move(o.body));
      } else {
        cluster_.fabric().send(self_, o.to, o.kind, std::move(o.payload));
      }
    } catch (const Error&) {
      // transport refused: indistinguishable from a drop; retry next tick
    }
  }
  return suspects;
}

void Controller::send_heartbeats(double now) {
  (void)now;
  struct Out {
    NodeId to;
    std::vector<std::byte> payload;
  };
  std::vector<Out> outs;
  {
    MutexLock lock(rel_mu_);
    for (NodeId peer = 0; peer < cluster_.node_count(); ++peer) {
      if (peer == self_) continue;
      ReliableLink& l = rlink_locked(peer);
      if (l.dead) continue;
      Writer w;
      w.put<uint64_t>(l.rx_contig);  // heartbeats double as ack carriers
      l.acked_sent = std::max(l.acked_sent, l.rx_contig);
      l.ack_pending = false;
#ifdef DPS_TRACE
      obs::Trace::instance().record(obs::EventKind::kHeartbeat, self_, peer, 0,
                                    l.rx_contig, 0);
#endif
      outs.push_back({peer, w.take()});
    }
  }
  for (auto& o : outs) {
    try {
      cluster_.fabric().send(self_, o.to, FrameKind::kHeartbeat,
                             std::move(o.payload));
    } catch (const Error&) {
      // best effort; a missed beacon is exactly what detection measures
    }
  }
}

std::vector<NodeId> Controller::stale_peers(double now, double threshold) {
  std::vector<NodeId> stale;
  MutexLock lock(rel_mu_);
  for (auto& [peer, lp] : rlinks_) {
    if (lp->dead) continue;
    if (now - lp->last_heard > threshold) stale.push_back(peer);
  }
  return stale;
}

void Controller::on_node_down(NodeId node) {
  {
    MutexLock lock(rel_mu_);
    ReliableLink& l = rlink_locked(node);
    l.dead = true;
    // Stop retransmitting into the void; recycle the armed frames.
    for (auto& [seq, p] : l.unacked) {
      BufferPool::instance().release(std::move(p.wrapped));
    }
    l.unacked.clear();
  }
  // Unblock split/stream executions waiting for flow-control credits the
  // dead node will never return. The raised kState unwinds the operation;
  // the graph call itself fails with kNodeDown at the cluster level.
  poison_flow_accounts();
}

void Controller::poison_flow_accounts() {
  MutexLock lock(flow_mu_);
  for (auto it = accounts_.begin(); it != accounts_.end();) {
    bool reap = false;
    {
      MutexLock al(it->second->mu);
      it->second->poison = true;
      cluster_.domain().notify_all(it->second->wp);
      // An already-finished account was only waiting for credits that will
      // never arrive now — erase it here, or it leaks until the controller
      // dies (the pre-poison-fix window leak).
      reap = it->second->finished;
    }
    it = reap ? accounts_.erase(it) : std::next(it);
  }
}

// --- Checkpointing -------------------------------------------------------------

void Controller::checkpoint_workers(Writer& w) {
  MutexLock lock(workers_mu_);
  for (auto& [key, worker] : workers_) {
    auto* state = dynamic_cast<const Checkpointable*>(worker->user_thread.get());
    if (state == nullptr) continue;
    w.put<uint8_t>(1);
    w.put<CollectionId>(key.first);
    w.put<ThreadIndex>(key.second);
    Writer payload;
    state->checkpoint(payload);
    w.put_bytes(payload.bytes().data(), payload.size());
  }
}

void Controller::restore_worker(CollectionId collection, ThreadIndex index,
                                Reader& r) {
  Worker& w = worker(collection, index);
  auto* state = dynamic_cast<Checkpointable*>(w.user_thread.get());
  if (state == nullptr) {
    raise(Errc::kState,
          "checkpoint record addresses a thread whose class is not "
          "Checkpointable");
  }
  state->restore(r);
}

// --- Shutdown ----------------------------------------------------------------

void Controller::shutdown() {
  std::vector<Worker*> workers;
  {
    MutexLock lock(workers_mu_);
    if (down_) return;
    down_ = true;
    workers.reserve(workers_.size());
    for (auto& [key, w] : workers_) workers.push_back(w.get());
  }
  for (Worker* w : workers) {
    MutexLock lock(w->mu);
    w->poison = true;
    cluster_.domain().notify_all(w->wp);
  }
  {
    // Accounts created from here on are born poisoned (see flow_down_); a
    // split already mid-dispatch can otherwise publish one after the
    // poison pass below and leak it.
    MutexLock lock(flow_mu_);
    flow_down_ = true;
  }
  poison_flow_accounts();
  for (Worker* w : workers) {
    if (w->os_thread.joinable()) w->os_thread.join();
  }
  // Splits that raced the poison pass finished (or unwound) during the
  // join above; their accounts are poisoned, so this pass reaps any that
  // retired with credits still in flight.
  poison_flow_accounts();
}

}  // namespace dps
