// Multicast collectives: wire codec and fan-out planning.
//
// A kMcastEnvelope frame carries one envelope body (encoded exactly once,
// into one pooled buffer) to K destination threads:
//
//   u8 topology | u32 n | n x { u32 node | u32 thread | u32 seq } | body
//
// The body is a regular Envelope encode with placeholder thread/seq; each
// receiver stamps its own entry's thread and split-frame seq into a copy.
// The header is tiny and owned per frame; the body is a SharedPayload so
// every transmit of the collective points at the same bytes
// (docs/PERFORMANCE.md).
//
// Topologies (ClusterConfig::mcast_topology):
//  * kFlat — the sender emits one frame per destination node. No relaying,
//    so per-link FIFO with ordinary unicast envelopes is preserved; this is
//    the default and what order-sensitive graphs (LU) rely on.
//  * kTree — binomial: each hop sends the first half of the remaining node
//    groups to the first group's node, which delivers its own entries and
//    recursively fans out the rest. O(log K) hops, relays re-wrap reliable
//    delivery per link.
//  * kRing — chain: each hop forwards the whole remaining list to the next
//    node. O(K) hops, minimal per-hop fan-out.
#pragma once

#include <cstdint>
#include <vector>

#include "net/framing.hpp"
#include "serial/wire.hpp"

namespace dps {

enum class McastTopology : uint8_t {
  kFlat = 0,
  kTree = 1,
  kRing = 2,
};

/// One destination of a multicast: the receiving node, the destination
/// thread within the target collection, and the split-frame sequence number
/// assigned by the poster.
struct McastEntry {
  uint32_t node = 0;
  uint32_t thread = 0;
  uint32_t seq = 0;
};
static_assert(sizeof(McastEntry) == 12, "packed wire layout");

/// Destinations on one node, in posting order.
struct McastGroup {
  NodeId node = 0;
  std::vector<McastEntry> entries;
};

/// Exact encoded size of the multicast header for `n` entries.
inline size_t mcast_header_size(size_t n) {
  return 1 + 4 + n * sizeof(McastEntry);
}

inline void encode_mcast_header(Writer& w, McastTopology topo,
                                const McastEntry* entries, size_t n) {
  w.put(static_cast<uint8_t>(topo));
  w.put(static_cast<uint32_t>(n));
  w.put_raw(entries, n * sizeof(McastEntry));
}

/// Decodes the header, leaving the reader positioned at the envelope body.
inline std::vector<McastEntry> decode_mcast_header(Reader& r,
                                                   McastTopology* topo) {
  const auto t = r.get<uint8_t>();
  if (t > static_cast<uint8_t>(McastTopology::kRing)) {
    raise(Errc::kProtocol, "unknown multicast topology");
  }
  *topo = static_cast<McastTopology>(t);
  const auto n = r.get<uint32_t>();
  r.require_count(n, sizeof(McastEntry));
  std::vector<McastEntry> entries(n);
  r.get_raw(entries.data(), n * sizeof(McastEntry));
  return entries;
}

/// Plans this hop's transmits over the remaining node groups. `emit` is
/// called once per outgoing frame with (next_hop, first_group, group_count);
/// the frame must carry the entries of all `group_count` groups so the next
/// hop can deliver its own and fan out the rest.
template <class Emit>
void mcast_fanout(McastTopology topo, const std::vector<McastGroup>& groups,
                  Emit&& emit) {
  if (groups.empty()) return;
  switch (topo) {
    case McastTopology::kFlat:
      for (const McastGroup& g : groups) emit(g.node, &g, size_t{1});
      break;
    case McastTopology::kRing:
      emit(groups[0].node, groups.data(), groups.size());
      break;
    case McastTopology::kTree: {
      // Binomial halving: this hop keeps splitting the tail it still owns,
      // handing the first half of each split to that half's first node.
      size_t lo = 0;
      const size_t hi = groups.size();
      while (lo < hi) {
        const size_t span = hi - lo;
        const size_t take = (span + 1) / 2;
        emit(groups[lo].node, &groups[lo], take);
        lo += take;
      }
      break;
    }
  }
}

}  // namespace dps
