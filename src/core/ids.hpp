// Identifier types shared across the DPS core.
#pragma once

#include <cstdint>

#include "net/framing.hpp"  // NodeId

namespace dps {

/// Index of a thread collection within one cluster run.
using CollectionId = uint32_t;

/// Index of a DPS thread within its collection.
using ThreadIndex = uint32_t;

/// Application instance id within one cluster run.
using AppId = uint32_t;

/// Flow graph id within one application.
using GraphId = uint32_t;

/// Vertex (operation node) index within one flow graph.
using VertexId = uint32_t;

/// Unique id of one split/stream execution — the key of its merge context
/// and of its flow-control account.
using ContextId = uint64_t;

/// Unique id of one graph call.
using CallId = uint64_t;

/// Identity of one service-mesh tenant (one client application's traffic
/// class). Attached to every graph call and threaded through envelopes so
/// admission control, per-tenant flow windows and fair scheduling can tell
/// tenants apart (docs/SERVICE_MESH.md).
using TenantId = uint32_t;

/// Tenant of engine-internal traffic (and of applications that never
/// configured one): unlimited budget, cluster-default flow window.
inline constexpr TenantId kNoTenant = 0;

/// Sentinel vertex id used by call-result envelopes.
inline constexpr VertexId kNoVertex = 0xffffffffu;

/// The four operation families of the paper (section 2) plus the
/// graph-call vertex used for parallel services (section 5, Fig. 10).
enum class OpKind : uint8_t {
  kLeaf = 0,    ///< one input token -> exactly one output token
  kSplit = 1,   ///< one input token -> any number of output tokens
  kMerge = 2,   ///< all tokens of one context -> exactly one output token
  kStream = 3,  ///< all tokens of one context -> any number of outputs,
                ///< posted at any time (merge+split fused, pipelining)
  kGraphCall = 4,  ///< leaf-like vertex calling a published flow graph
};

const char* to_string(OpKind kind) noexcept;

}  // namespace dps
