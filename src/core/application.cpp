#include "core/application.hpp"

#include <cstdio>

#include "core/controller.hpp"
#include "util/logging.hpp"

namespace dps {

Application::Application(Cluster& cluster, std::string name, NodeId home_node)
    : cluster_(cluster), name_(std::move(name)), home_(home_node) {
  DPS_CHECK(home_ < cluster_.node_count(), "home node out of range");
  id_ = cluster_.register_app(this);
  tenant_ = cluster_.register_tenant(name_);
}

Application::~Application() { cluster_.unregister_app(id_); }

void Application::remember_collection(
    std::shared_ptr<ThreadCollectionBase> coll) {
  MutexLock lock(mu_);
  collections_.push_back(std::move(coll));
}

std::shared_ptr<Flowgraph> Application::build_graph(
    const FlowgraphBuilder& builder, std::string name) {
  MutexLock lock(mu_);
  const GraphId id = static_cast<GraphId>(graphs_.size());
  // Flowgraph's constructor is private; std::make_shared cannot reach it.
  std::shared_ptr<Flowgraph> graph(
      new Flowgraph(*this, id, std::move(name), builder));
  graphs_.push_back(graph);
  return graph;
}

std::shared_ptr<Flowgraph> Application::graph(GraphId id) const {
  MutexLock lock(mu_);
  if (id >= graphs_.size()) {
    raise(Errc::kNotFound, "application '" + name_ + "' has no graph " +
                               std::to_string(id));
  }
  return graphs_[id];
}

void Application::publish_graph(const std::shared_ptr<Flowgraph>& graph,
                                const std::string& service_name) {
  DPS_CHECK(graph != nullptr, "publish_graph(nullptr)");
  char value[32];
  std::snprintf(value, sizeof(value), "%u %u", id_, graph->id());
  cluster_.services().publish(service_name, value);
  DPS_INFO("application '" << name_ << "' published graph '" << graph->name()
                           << "' as service '" << service_name << "'");
}

CallHandle Application::call_service_async(const std::string& service_name,
                                           Ptr<Token> input) {
  const std::string value = cluster_.services().wait_for(service_name);
  AppId app_id = 0;
  GraphId graph_id = 0;
  if (std::sscanf(value.c_str(), "%u %u", &app_id, &graph_id) != 2) {
    raise(Errc::kProtocol,
          "malformed service record for '" + service_name + "'");
  }
  Application* target_app = cluster_.app(app_id);
  std::shared_ptr<Flowgraph> target = target_app->graph(graph_id);
  // The reply must come back to *this* application's home node, not the
  // service owner's: route the call ourselves instead of delegating to
  // target->call_async (which would use the owner's home).
  const Flowgraph::Vertex& entry = target->vertex(target->entry());
  const uint64_t tid = input->typeInfo().id;
  bool ok = false;
  for (uint64_t t : entry.input_type_ids) ok = ok || (t == tid);
  if (!ok) {
    raise(Errc::kTypeMismatch,
          "service '" + service_name + "' does not accept token type '" +
              input->typeInfo().name + "'");
  }
  // Admission control (docs/SERVICE_MESH.md): charged to *this*
  // application's tenant at the mesh boundary, before the token enters the
  // target graph. Sheds synchronously with Error(kBackpressure).
  cluster_.controller(home_).admit_call(tenant_, *target);

  const CallId id = cluster_.new_call_id();
  auto state = cluster_.create_call(id);
  cluster_.bind_admission(*state, tenant_, home_);
  Envelope env;
  env.app = app_id;
  env.graph = graph_id;
  env.vertex = target->entry();
  env.call = id;
  env.call_reply_node = home_;
  env.tenant = tenant_;
  env.token = std::move(input);
  cluster_.controller(home_).route_and_send(*target, std::move(env));

  CallHandle handle(id, std::move(state), &cluster_);
  const double deadline = cluster_.tenant_config(tenant_).default_deadline_ms;
  if (deadline > 0) handle.with_deadline(deadline);
  return handle;
}

Ptr<Token> Application::call_service(const std::string& service_name,
                                     Ptr<Token> input) {
  return call_service_async(service_name, std::move(input)).wait();
}

}  // namespace dps
