#include "core/envelope.hpp"

#include "util/error.hpp"

namespace dps {

SplitFrame& Envelope::top_frame() {
  DPS_CHECK(!frames.empty(), "envelope has no split frame");
  return frames.back();
}

const SplitFrame& Envelope::top_frame() const {
  DPS_CHECK(!frames.empty(), "envelope has no split frame");
  return frames.back();
}

void Envelope::encode(Writer& w) const {
  w.put(app);
  w.put(graph);
  w.put(vertex);
  w.put(collection);
  w.put(thread);
  w.put(call);
  w.put(call_reply_node);
  w.put(tenant);
  w.put(static_cast<uint32_t>(frames.size()));
  for (const SplitFrame& f : frames) w.put(f);
  DPS_CHECK(token.get() != nullptr, "encoding an envelope without a token");
  serialize_token(*token, w);
}

Envelope Envelope::decode(Reader& r) {
  Envelope e;
  e.app = r.get<AppId>();
  e.graph = r.get<GraphId>();
  e.vertex = r.get<VertexId>();
  e.collection = r.get<CollectionId>();
  e.thread = r.get<ThreadIndex>();
  e.call = r.get<CallId>();
  e.call_reply_node = r.get<NodeId>();
  e.tenant = r.get<TenantId>();
  const uint32_t n = r.get<uint32_t>();
  r.require_count(n, sizeof(SplitFrame));
  e.frames.resize(n);
  for (uint32_t i = 0; i < n; ++i) e.frames[i] = r.get<SplitFrame>();
  e.token = deserialize_token(r);
  return e;
}

size_t Envelope::encoded_size() const {
  // Arithmetic mirror of encode(): the send path sizes one exact-capacity
  // buffer from this, so the two functions must stay in lockstep.
  DPS_CHECK(token.get() != nullptr, "sizing an envelope without a token");
  return sizeof(AppId) + sizeof(GraphId) + sizeof(VertexId) +
         sizeof(CollectionId) + sizeof(ThreadIndex) + sizeof(CallId) +
         sizeof(NodeId) + sizeof(TenantId) + sizeof(uint32_t) +
         frames.size() * sizeof(SplitFrame) + serialized_token_size(*token);
}

}  // namespace dps
