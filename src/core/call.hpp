// Graph-call bookkeeping shared by Flowgraph, Application and Cluster.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/ids.hpp"
#include "serial/token.hpp"
#include "sim/domain.hpp"
#include "util/error.hpp"

namespace dps {
namespace detail {

/// State of one outstanding graph call. Completed either into the waiting
/// slot (synchronous/async callers) or through the continuation callback
/// (graph-call vertices, which must never block).
struct CallState {
  ExecDomain* domain = nullptr;
  std::mutex mu;
  WaitPoint wp;
  Ptr<Token> result;
  bool done = false;
  /// Failure delivery (node death, docs/FAULT_TOLERANCE.md): when set, the
  /// waiter rethrows instead of returning a result.
  bool failed = false;
  Errc err = Errc::kState;
  std::string err_msg;
  /// If set, invoked with the result instead of storing it.
  std::function<void(Ptr<Token>)> continuation;
};

}  // namespace detail
}  // namespace dps
