// Graph-call bookkeeping shared by Flowgraph, Application and Cluster.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/ids.hpp"
#include "serial/token.hpp"
#include "sim/domain.hpp"
#include "util/error.hpp"
#include "util/thread_annotations.hpp"

namespace dps {
namespace detail {

/// State of one outstanding graph call. Completed either into the waiting
/// slot (synchronous/async callers) or through the continuation callback
/// (graph-call vertices, which must never block).
struct CallState {
  ExecDomain* domain = nullptr;
  Mutex mu;
  WaitPoint wp DPS_GUARDED_BY(mu);
  Ptr<Token> result DPS_GUARDED_BY(mu);
  bool done DPS_GUARDED_BY(mu) = false;
  /// Failure delivery (node death, docs/FAULT_TOLERANCE.md): when set, the
  /// waiter rethrows instead of returning a result.
  bool failed DPS_GUARDED_BY(mu) = false;
  Errc err DPS_GUARDED_BY(mu) = Errc::kState;
  std::string err_msg DPS_GUARDED_BY(mu);
  /// If set, invoked with the result instead of storing it.
  std::function<void(Ptr<Token>)> continuation DPS_GUARDED_BY(mu);

  // --- service-mesh bookkeeping (docs/SERVICE_MESH.md) ----------------------
  /// Traffic class the call was admitted under, and the node whose
  /// controller holds the admission slot. `admitted` is cleared by exactly
  /// one of: normal completion, node-down failure, or deadline expiry —
  /// whoever clears it retires the slot (Controller::retire_call).
  TenantId tenant DPS_GUARDED_BY(mu) = kNoTenant;
  NodeId admit_node DPS_GUARDED_BY(mu) = 0;
  bool admitted DPS_GUARDED_BY(mu) = false;
};

}  // namespace detail
}  // namespace dps
