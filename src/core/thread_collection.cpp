#include "core/thread_collection.hpp"

#include "core/application.hpp"
#include "core/cluster.hpp"
#include "core/controller.hpp"
#include "util/error.hpp"
#include "util/mapping.hpp"

#ifdef DPS_TRACE
#include "obs/trace.hpp"
#endif

namespace dps {

ThreadCollectionBase::ThreadCollectionBase(Application& app, std::string name,
                                           const detail::ThreadTypeInfo& type)
    : app_(app),
      name_(std::move(name)),
      thread_type_(type.name),
      type_(type) {}

ThreadCollectionBase::~ThreadCollectionBase() = default;

void ThreadCollectionBase::map(const std::string& mapping) {
  if (mapped()) {
    raise(Errc::kState,
          "thread collection '" + name_ + "' is already mapped");
  }
  Cluster& cluster = app_.cluster();
  const std::vector<std::string> node_names = parse_mapping(mapping);
  std::vector<NodeId> placement;
  placement.reserve(node_names.size());
  for (const std::string& n : node_names) {
    placement.push_back(cluster.node_id(n));  // throws kNotFound on typos
  }
  // Publish the full placement before any worker can run.
  placement_ = std::move(placement);
#ifdef DPS_TRACE
  obs::Trace::instance().record(obs::EventKind::kCollectionMap, 0, id(),
                                placement_.size(), 0, 0);
#endif
  depths_ = std::make_unique<std::atomic<uint32_t>[]>(placement_.size());
  for (size_t i = 0; i < placement_.size(); ++i) depths_[i].store(0);
  for (size_t i = 0; i < placement_.size(); ++i) {
    // Multi-process mode: this process only hosts its own node's workers.
    if (!cluster.is_local(placement_[i])) continue;
    cluster.controller(placement_[i])
        .spawn_worker(*this, static_cast<ThreadIndex>(i), type_);
  }
}

NodeId ThreadCollectionBase::node_of(ThreadIndex index) const {
  if (index >= placement_.size()) {
    raise(Errc::kInvalidArgument,
          "thread index " + std::to_string(index) + " out of range for "
          "collection '" + name_ + "' of size " +
              std::to_string(placement_.size()));
  }
  return placement_[index];
}

}  // namespace dps
