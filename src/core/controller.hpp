// Controller: the per-node execution engine.
//
// "At the heart of the DPS library is the Controller object, instantiated
// in each node and responsible for sequencing within each node the program
// execution according to the flow graphs and thread collections
// instantiated by the application." (paper, section 3)
//
// The controller owns this node's engine workers (one OS thread + mailbox
// per DPS thread mapped here), dispatches arriving envelopes to operation
// executions, implements merge/stream context collection, tracks the
// split–merge flow-control accounts anchored on this node, and moves
// envelopes to other nodes through the cluster fabric.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.hpp"

#include "core/envelope.hpp"
#include "core/flowgraph.hpp"
#include "core/mcast.hpp"
#include "core/operation.hpp"
#include "core/thread.hpp"
#include "net/fabric.hpp"

namespace dps {

class Cluster;
class ThreadCollectionBase;

class Controller {
 public:
  Controller(Cluster& cluster, NodeId self);
  ~Controller();
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  NodeId self() const { return self_; }

  /// Spawns the engine worker for thread `index` of `collection` (whose
  /// home is this node): user Thread instance + mailbox + OS thread.
  void spawn_worker(ThreadCollectionBase& collection, ThreadIndex index,
                    const detail::ThreadTypeInfo& type);

  /// Routes an envelope whose destination vertex is set: applies the
  /// vertex's routing function, resolves the target thread's home node, and
  /// delivers locally or through the fabric. Also the entry point used by
  /// Flowgraph::call (from the application's home node).
  void route_and_send(const Flowgraph& graph, Envelope env);

  /// Delivers an already-routed envelope (collection/thread set).
  void send(Envelope env);

  /// Fabric delivery callback (non-blocking: enqueue + notify only).
  void on_fabric(NodeMessage&& msg);

  /// Batched fabric delivery: every frame decoded from one receive chunk
  /// arrives together, so envelopes bound for the same worker cost one
  /// inbox append + one notify for the whole chunk, and reliable-link
  /// seq/ack bookkeeping is applied under a single lock acquisition.
  void on_fabric_batch(std::vector<NodeMessage>&& msgs);

  /// Stops and joins this node's workers. Idempotent.
  void shutdown();

  /// Number of envelopes dispatched on this node (tests/benchmarks).
  uint64_t dispatched() const { return dispatched_.load(std::memory_order_relaxed); }

  // --- work stealing (docs/PERFORMANCE.md) ----------------------------------
  /// Always-on stealing counters (ClusterConfig::work_stealing): steal
  /// operations and envelopes moved. The dps.sched.steals metric mirrors
  /// these under DPS_TRACE; tests assert on the accessors in every flavor.
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }
  uint64_t stolen_envelopes() const {
    return stolen_envelopes_.load(std::memory_order_relaxed);
  }

  /// One worker's CPU-affinity record (ClusterConfig::pin_workers). cpu is
  /// -1 while unpinned (policy kNone, non-Linux, or thread not started yet).
  struct WorkerPin {
    CollectionId collection = 0;
    ThreadIndex index = 0;
    int cpu = -1;
  };
  /// The pinning map of this node's workers, for svc stats and tests.
  std::vector<WorkerPin> worker_pinning() const;

  // --- service-mesh admission control (docs/SERVICE_MESH.md) ----------------
  /// Always-on per-tenant admission counters. The authoritative source of
  /// the dps.svc.{admitted,shed,deadline_expired,inflight} metrics (the
  /// obs mirrors only exist under DPS_TRACE); benches and tests assert on
  /// these in every build flavor.
  struct SvcStats {
    uint64_t admitted = 0;          ///< calls that passed admission
    uint64_t shed = 0;              ///< calls refused with kBackpressure
    uint64_t deadline_expired = 0;  ///< calls retired by their deadline
    uint32_t inflight = 0;          ///< currently admitted calls
    uint32_t peak_inflight = 0;     ///< high-water mark of inflight
  };

  /// Admission check for one graph call of `tenant` targeting `target`:
  /// sheds with Error(kBackpressure) — never blocks, never queues — when
  /// the tenant's in-flight budget is exhausted or the target's entry
  /// collection sits above the tenant's queue-depth high-water mark.
  /// On success the tenant holds one in-flight slot until retire_call.
  void admit_call(TenantId tenant, const Flowgraph& target);

  /// Returns one admission slot. Exactly one retire per admitted call —
  /// normal completion, node-down failure and deadline expiry all funnel
  /// through Cluster::retire_admission.
  void retire_call(TenantId tenant, bool deadline_expired);

  SvcStats svc_stats(TenantId tenant) const;

  /// Flow-control window for `tenant`'s split/stream contexts: the
  /// tenant's configured window, or the cluster-wide default.
  uint32_t tenant_window(TenantId tenant) const;

  /// Live flow-control accounts anchored on this node (leak regression
  /// tests: must drain to zero after calls finish or fail).
  size_t flow_account_count() const;

  /// Checkpoint support (core/checkpoint.hpp): appends one record per
  /// Checkpointable worker of this node; restores one worker's state. The
  /// schedule must be quiescent.
  void checkpoint_workers(Writer& w);
  void restore_worker(CollectionId collection, ThreadIndex index, Reader& r);

  // --- fault tolerance (docs/FAULT_TOLERANCE.md) ----------------------------
  /// Arms reliable delivery / heartbeat state according to the cluster's
  /// FaultToleranceConfig. Called once by the Cluster before traffic flows.
  void enable_fault_tolerance();

  /// Retransmits overdue unacked frames and flushes delayed cumulative
  /// acks. Returns peers whose retry budget is exhausted (suspects for the
  /// caller — the cluster monitor — to adjudicate). Wall-clock `now` from
  /// mono_seconds().
  std::vector<NodeId> reliability_tick(double now);

  /// Beacons every live peer; carries this link's cumulative ack.
  void send_heartbeats(double now);

  /// Peers not heard from for `threshold` seconds.
  std::vector<NodeId> stale_peers(double now, double threshold);

  /// Peer was declared dead: stop retransmitting to it, drop its pending
  /// frames, and poison local flow accounts so no worker blocks on a
  /// window that can never refill. Poisoned accounts are reaped even with
  /// credits outstanding — the acks that would return them died with the
  /// peer (the window-leak hazard; regression-tested in
  /// tests/service_mesh_test.cpp).
  void on_node_down(NodeId node);

  /// Frames received more than once and dropped (tests).
  uint64_t duplicates_suppressed() const {
    return dup_suppressed_.load(std::memory_order_relaxed);
  }
  /// Frames re-sent by the retransmission timer (tests).
  uint64_t retransmissions() const {
    return retransmissions_.load(std::memory_order_relaxed);
  }

  // --- multicast collectives (docs/PERFORMANCE.md) --------------------------
  /// Envelope bodies encoded for multicast on this node. The one-encode-
  /// K-transmit invariant is `multicast_encodes() == collectives with >= 1
  /// remote destination` while `multicast_frames_sent()` counts the actual
  /// kMcastEnvelope transmits — always-on so every build flavor can assert
  /// it (tests/core_engine_test.cpp).
  uint64_t multicast_encodes() const {
    return mcast_encodes_.load(std::memory_order_relaxed);
  }
  /// kMcastEnvelope frames shipped from this node (root sends + relay
  /// forwards).
  uint64_t multicast_frames_sent() const {
    return mcast_frames_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker;
  struct StealGroup;
  struct FlowAccount;
  struct ReliableLink;
  class ExecCtx;
  class DeliveryBatch;

  // Engine internals.
  void worker_loop(Worker& w);
  /// Applies ClusterConfig::pin_workers to the calling worker thread
  /// (sched_setaffinity; Linux only, no-op elsewhere).
  void pin_worker(Worker& w);
  /// Swaps the worker's inbox out under its lock and indexes every drained
  /// envelope into the worker-private run queue. Returns false when the
  /// inbox was empty. Must run on the worker's own thread.
  bool drain_inbox(Worker& w);
  /// Steals the oldest dispatchable context run from the deepest sibling
  /// worker of `w`'s collection into `w`'s run queue. Returns true when
  /// anything was stolen. Called by idle workers only.
  bool try_steal(Worker& w);
  /// Wakes one sibling (round-robin) with a steal hint when `w` has a
  /// backlog of dispatchable work. Called after a successful drain.
  void hint_siblings(Worker& w);
  void dispatch(Worker& w, Envelope env);
  void dispatch_graph_call(Worker& w, Envelope env);
  void continue_graph_call(AppId app, GraphId graph, VertexId vertex,
                           std::vector<SplitFrame> frames, CallId call,
                           NodeId reply_node, TenantId tenant,
                           Ptr<Token> result);
  void deliver_local(Envelope env);
  void send_reply(Envelope env);
  Worker& worker(CollectionId collection, ThreadIndex index);
  bool starts_collection(const Envelope& env) const;

  // Flow control (accounts anchored at this node for splits running here).
  ContextId new_context_id();
  void create_flow_account(ContextId ctx, uint32_t window);
  /// Blocks until a window slot is free. `min_window` floors the effective
  /// window: a collective passes one more than the credits its execution
  /// already holds, so it can never park its own worker waiting for
  /// releases that only a merge colocated on that worker could produce.
  void flow_acquire(ContextId ctx, uint32_t min_window = 0);
  /// Split done; erase when drained — or immediately when poisoned, since
  /// a poisoned account's outstanding credits can never return.
  void finish_flow_account(ContextId ctx);
  /// `receiver_depth` is the consuming worker's inbox depth piggybacked on
  /// the ack — one input of the adaptive window controller.
  void apply_flow_release(ContextId ctx, uint32_t n,
                          uint32_t receiver_depth = 0);
  /// Unblocks every flow waiter (node death / shutdown) and reaps the
  /// accounts whose splits already finished.
  void poison_flow_accounts();
  /// Returns `n` consumed-token credits to the split's flow account —
  /// locally, or as one batched kFlowAck frame (ExecCtx coalesces).
  /// `receiver_depth` reports the consumer's current inbox depth.
  void send_flow_ack(const SplitFrame& frame, uint32_t n,
                     uint32_t receiver_depth);

  // Reliable delivery internals. fabric_send is the single exit point for
  // engine frames: it either forwards to the fabric directly or wraps the
  // frame in a sequence-numbered kReliable envelope.
  void fabric_send(NodeId target, FrameKind kind,
                   std::vector<std::byte> payload);
  /// fabric_send for prefix+shared-body frames (multicast): in reliable
  /// mode only the small prefix is wrapped with [seq|ack|kind]; the shared
  /// body rides every transmit — and every retransmit — untouched, so
  /// exactly-once composes per link over the one encoded payload.
  void fabric_send_shared(NodeId target, FrameKind kind,
                          std::vector<std::byte> prefix, SharedPayload body);
  /// Ships one hop's worth of multicast frames over `groups` (posting-order
  /// node groups) according to `topo`. Used by the posting root and by
  /// relays forwarding a subtree.
  void mcast_ship(McastTopology topo, const std::vector<McastGroup>& groups,
                  const SharedPayload& body);
  /// kMcastEnvelope arrival: decode the body once, deliver local entries
  /// (token pointer shared between co-located receivers), forward remaining
  /// subtree groups per the frame's topology.
  void handle_mcast(NodeId from, const std::byte* data, size_t size,
                    DeliveryBatch* batch);
  /// Encodes `env` into one exact-size pooled buffer and ships it — in
  /// reliable mode the kReliable header and envelope share that single
  /// buffer (no double-wrap copy).
  void send_envelope(NodeId target, FrameKind kind, const Envelope& env);
  /// Assigns a sequence number into the pre-encoded [seq|ack|kind|payload]
  /// buffer, records it for retransmission, and ships it. A non-null `body`
  /// is a shared multicast payload appended to every (re)transmit.
  void send_reliable_wrapped(NodeId target, FrameKind kind,
                             std::vector<std::byte> wrapped,
                             SharedPayload body = nullptr);
  /// `batch == nullptr` delivers envelopes directly (single-message path);
  /// otherwise they are collected for one grouped inbox append per worker.
  void handle_frame(FrameKind kind, NodeId from,
                    const std::byte* data, size_t size,
                    DeliveryBatch* batch = nullptr);
  void handle_reliable(NodeMessage&& msg, DeliveryBatch* batch = nullptr);
  void handle_ack(NodeId from, uint64_t ack);
  void handle_ack_locked(ReliableLink& l, NodeId from, uint64_t ack)
      DPS_REQUIRES(rel_mu_);
  /// Receive-side dup suppression / contiguity advance for one sequenced
  /// frame. Returns true when the frame is new and must be delivered;
  /// false for a duplicate (caller re-acks with *ack_val).
  bool reliable_rx_locked(ReliableLink& l, uint64_t seq, uint64_t* ack_val)
      DPS_REQUIRES(rel_mu_);
  ReliableLink& rlink_locked(NodeId peer) DPS_REQUIRES(rel_mu_);

  Cluster& cluster_;
  NodeId self_;

  bool reliable_ = false;
  bool heartbeat_ = false;
  // Lock discipline: rel_mu_ is never held across a fabric send, and never
  // acquired while workers_mu_ or flow_mu_ is held.
  Mutex rel_mu_;
  std::map<NodeId, std::unique_ptr<ReliableLink>> rlinks_
      DPS_GUARDED_BY(rel_mu_);
  std::atomic<uint64_t> dup_suppressed_{0};
  std::atomic<uint64_t> retransmissions_{0};

  mutable Mutex workers_mu_;
  std::map<std::pair<CollectionId, ThreadIndex>, std::unique_ptr<Worker>>
      workers_ DPS_GUARDED_BY(workers_mu_);
  /// Steal domains, one per collection with workers on this node. Only
  /// populated when ClusterConfig::work_stealing is on; groups are stable
  /// heap objects so workers keep a raw pointer to their own.
  std::map<CollectionId, std::unique_ptr<StealGroup>> steal_groups_
      DPS_GUARDED_BY(workers_mu_);
  bool down_ DPS_GUARDED_BY(workers_mu_) = false;
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> stolen_envelopes_{0};

  mutable Mutex flow_mu_;
  std::unordered_map<ContextId, std::unique_ptr<FlowAccount>> accounts_
      DPS_GUARDED_BY(flow_mu_);
  /// Set by shutdown() before it poisons the account table: a split that
  /// slips in after the poison pass (its worker was mid-dispatch when the
  /// poison flag was raised) gets an account that is born poisoned, so it
  /// unwinds at its first flow_acquire instead of leaking the account.
  bool flow_down_ DPS_GUARDED_BY(flow_mu_) = false;
  std::atomic<uint64_t> context_counter_{0};
  std::atomic<uint64_t> dispatched_{0};
  std::atomic<uint64_t> mcast_encodes_{0};
  std::atomic<uint64_t> mcast_frames_{0};

  // Service-mesh admission state: one record per tenant that ever called
  // through this node (its home). svc_mu_ is a leaf lock — taken with no
  // other controller lock held and never held across a send or a wait.
  mutable Mutex svc_mu_;
  std::unordered_map<TenantId, SvcStats> svc_ DPS_GUARDED_BY(svc_mu_);
};

}  // namespace dps
