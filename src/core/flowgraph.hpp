// Flow graphs: construction DSL and runtime representation.
//
// "Flow graphs are defined with overloaded C++ operators" (paper,
// section 3):
//
//   FlowgraphBuilder builder =
//       FlowgraphNode<SplitString, MainRoute>(mainThreads) >>
//       FlowgraphNode<ToUpperCase, RoundRobinRoute>(computeThreads) >>
//       FlowgraphNode<MergeString, MainRoute>(mainThreads);
//   auto graph = app.build_graph(builder, "graph");
//
// operator>> rejects incompatible sequences at compile time (output/input
// token-type lists must intersect); operator+= adds alternative paths and
// appends graph pieces, enabling data-dependent conditional execution and
// dynamically sized graphs (the LU factorization builds its graph to fit
// the matrix). ServiceNode embeds a call to a flow graph published by
// another application (paper, Fig. 10).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/call.hpp"
#include "core/ids.hpp"
#include "core/operation.hpp"
#include "core/route.hpp"
#include "core/thread_collection.hpp"
#include "serial/token.hpp"
#include "sim/domain.hpp"

namespace dps {

class Application;
class Cluster;
class Controller;

namespace detail {

/// Type-erased description of one graph vertex, accumulated by the DSL.
struct VertexSpec {
  OpKind kind = OpKind::kLeaf;
  std::string op_name;       // empty for kGraphCall
  std::string route_name;
  std::string service_name;  // kGraphCall only
  std::shared_ptr<ThreadCollectionBase> collection;
  std::vector<uint64_t> input_type_ids;
  std::vector<uint64_t> output_type_ids;
  std::string thread_type_name;
};

using VertexSpecPtr = std::shared_ptr<VertexSpec>;

}  // namespace detail

/// Accumulates vertices and edges. Type-erased; the typed checking happens
/// in operator>> before specs enter a builder.
class FlowgraphBuilder {
 public:
  FlowgraphBuilder() = default;

  /// Union of two graph pieces (the paper's "add 2nd path to graph" and
  /// "append pieces of graphs together"). Shared FlowgraphNode variables
  /// produce shared vertices, joining the pieces.
  FlowgraphBuilder& operator+=(const FlowgraphBuilder& other);

  void add_vertex(detail::VertexSpecPtr v);
  void add_edge(detail::VertexSpecPtr from, detail::VertexSpecPtr to);

  const std::vector<detail::VertexSpecPtr>& vertices() const {
    return vertices_;
  }
  const std::vector<std::pair<detail::VertexSpec*, detail::VertexSpec*>>&
  edges() const {
    return edges_;
  }

  /// Internal: tail vertex of the most recent >> chain.
  detail::VertexSpecPtr chain_tail;

 private:
  std::vector<detail::VertexSpecPtr> vertices_;  // first-appearance order
  std::vector<std::pair<detail::VertexSpec*, detail::VertexSpec*>> edges_;
};

namespace detail {
/// Builder whose chain tail emits `OutList` — carries the static type
/// information through a >> chain.
template <class OutList>
class TypedBuilder : public FlowgraphBuilder {};

/// Tag base for node expressions usable in >> chains.
struct NodeExprTag {};
}  // namespace detail

/// A graph vertex: operation Op reached through route RouteT, executing on
/// a thread collection of Op's thread class. Reusing one FlowgraphNode
/// variable in several chains reuses the same vertex (paper, Fig. 3).
template <class Op, class RouteT>
class FlowgraphNode : public detail::NodeExprTag {
  static_assert(std::is_base_of_v<RouteBase, RouteT>,
                "second parameter of FlowgraphNode must be a route class");
  static_assert(
      std::is_same_v<typename RouteT::TargetThreadType,
                     typename Op::ThreadType>,
      "route targets a different thread class than the operation runs on");
  static_assert(
      std::is_same_v<typename RouteT::TokenType, Token> ||
          tl::contains_v<typename RouteT::TokenType, typename Op::InputList>,
      "route's token type is not accepted by the operation (wildcard "
      "Route<Thread, Token> routes accept everything)");

 public:
  using InputList = typename Op::InputList;
  using OutputList = typename Op::OutputList;

  explicit FlowgraphNode(
      std::shared_ptr<ThreadCollection<typename Op::ThreadType>> collection)
      : spec_(std::make_shared<detail::VertexSpec>()) {
    const auto& op_info = Op::staticOperationInfo();
    const auto& route_info = RouteT::staticRouteInfo();
    spec_->kind = Op::kKind;
    spec_->op_name = op_info.name;
    spec_->route_name = route_info.name;
    spec_->collection = std::move(collection);
    spec_->input_type_ids = op_info.input_type_ids;
    spec_->output_type_ids = op_info.output_type_ids;
    spec_->thread_type_name = op_info.thread_type_name;
  }

  detail::VertexSpecPtr spec() const { return spec_; }

 private:
  detail::VertexSpecPtr spec_;
};

/// A vertex that calls a flow graph published by another application
/// (paper, Fig. 10 — "The client graph calls the graph exposed by the game
/// of life. It is seen by the client application as a simple leaf
/// operation."). In/Out are the claimed token types of the called graph,
/// verified against the target at call time.
template <class RouteT, class In, class Out>
class ServiceNode : public detail::NodeExprTag {
  static_assert(tl::all_tokens_v<In> && tl::all_tokens_v<Out>,
                "ServiceNode type lists must contain Token subclasses");

 public:
  using InputList = In;
  using OutputList = Out;
  using ThreadT = typename RouteT::TargetThreadType;

  ServiceNode(std::shared_ptr<ThreadCollection<ThreadT>> collection,
              std::string service_name)
      : spec_(std::make_shared<detail::VertexSpec>()) {
    spec_->kind = OpKind::kGraphCall;
    spec_->route_name = RouteT::staticRouteInfo().name;
    spec_->service_name = std::move(service_name);
    spec_->collection = std::move(collection);
    spec_->input_type_ids = tl::type_ids<In>::get();
    spec_->output_type_ids = tl::type_ids<Out>::get();
    spec_->thread_type_name = ThreadT::staticThreadInfo().name;
  }

  detail::VertexSpecPtr spec() const { return spec_; }

 private:
  detail::VertexSpecPtr spec_;
};

// --- operator>> : sequences, with compile-time type checking ----------------

template <class A, class B,
          class = std::enable_if_t<
              std::is_base_of_v<detail::NodeExprTag, A> &&
              std::is_base_of_v<detail::NodeExprTag, B>>>
detail::TypedBuilder<typename B::OutputList> operator>>(const A& a,
                                                        const B& b) {
  static_assert(
      tl::intersects_v<typename A::OutputList, typename B::InputList>,
      "incompatible operations linked with >>: no output token type of the "
      "left operation is accepted by the right operation");
  detail::TypedBuilder<typename B::OutputList> builder;
  builder.add_vertex(a.spec());
  builder.add_vertex(b.spec());
  builder.add_edge(a.spec(), b.spec());
  builder.chain_tail = b.spec();
  return builder;
}

template <class OutList, class B,
          class = std::enable_if_t<std::is_base_of_v<detail::NodeExprTag, B>>>
detail::TypedBuilder<typename B::OutputList> operator>>(
    detail::TypedBuilder<OutList> chain, const B& b) {
  static_assert(
      tl::intersects_v<OutList, typename B::InputList>,
      "incompatible operations linked with >>: no output token type of the "
      "chain tail is accepted by the right operation");
  detail::TypedBuilder<typename B::OutputList> builder;
  static_cast<FlowgraphBuilder&>(builder) = std::move(chain);
  builder.add_vertex(b.spec());
  builder.add_edge(builder.chain_tail, b.spec());
  builder.chain_tail = b.spec();
  return builder;
}

// --- Runtime graph ----------------------------------------------------------

class CallHandle;

/// A built, validated, callable flow graph. Created by
/// Application::build_graph; named graphs can be published as parallel
/// services via Application::publish_graph.
class Flowgraph {
 public:
  struct Vertex {
    OpKind kind;
    const detail::OperationTypeInfo* op = nullptr;  // null for kGraphCall
    const detail::RouteTypeInfo* route = nullptr;
    std::string service_name;
    ThreadCollectionBase* collection = nullptr;
    std::vector<uint64_t> input_type_ids;
    std::vector<uint64_t> output_type_ids;
    std::vector<VertexId> successors;
    int frame_depth_in = 0;  ///< split-frame stack depth on entry
  };

  const std::string& name() const { return name_; }
  GraphId id() const { return id_; }
  Application& app() const { return *app_; }

  const Vertex& vertex(VertexId v) const;
  VertexId entry() const { return entry_; }
  size_t vertex_count() const { return vertices_.size(); }

  /// Runs one token through the graph and returns the single result token.
  /// Blocks the calling thread (which must be a registered actor under
  /// virtual time; use ActorScope or call from DPS threads).
  Ptr<Token> call(Ptr<Token> input);

  /// Pipelined variant: posts the input and returns immediately; several
  /// outstanding calls overlap inside the graph.
  CallHandle call_async(Ptr<Token> input);

 private:
  friend class Application;
  Flowgraph(Application& app, GraphId id, std::string name,
            const FlowgraphBuilder& builder);

  Application* app_;
  GraphId id_;
  std::string name_;
  std::vector<Vertex> vertices_;
  VertexId entry_ = 0;
};

/// Completion handle of one asynchronous graph call.
class CallHandle {
 public:
  /// Blocks until the result token is available.
  Ptr<Token> wait();
  bool done() const;
  CallId id() const { return id_; }

  /// Arms a per-call deadline: after `ms` milliseconds of the cluster's
  /// time domain (virtual under simulation) an outstanding call fails with
  /// Error(kDeadlineExceeded), its admission slot retires, and late result
  /// tokens are dropped as stray (docs/SERVICE_MESH.md). Returns *this so
  /// it chains: `graph->call_async(tok).with_deadline(50).wait()`.
  CallHandle& with_deadline(double ms);

 private:
  friend class Application;
  friend class Cluster;
  friend class Flowgraph;
  CallHandle(CallId id, std::shared_ptr<detail::CallState> state,
             Cluster* cluster)
      : id_(id), state_(std::move(state)), cluster_(cluster) {}
  CallId id_;
  std::shared_ptr<detail::CallState> state_;
  Cluster* cluster_;
};

}  // namespace dps
