// AdaptiveWindow: Vegas-style controller for the split flow-control window.
//
// The static per-split window (PR 6's TenantConfig::flow_window) is a
// ceiling, not a good operating point: too small and the split stalls on
// round trips, too large and receiver queues bloat. AdaptiveWindow moves
// the window between a small floor and that ceiling from two signals the
// engine already measures on the ack path:
//
//  * round-trip time of a flow credit (flow_acquire stamp -> kFlowAck),
//    compared against the minimum RTT seen on this split, and
//  * the receiver's inbox depth, piggybacked on every kFlowAck.
//
// Control law (per window-of-acks, so at most one adjustment per RTT):
//  * additive increase (+1) while smoothed RTT stays within `slack` of the
//    floor and the receiver queue is shallow;
//  * multiplicative decrease (halve, never below min_window) when smoothed
//    RTT exceeds `choke` times the floor or the receiver queue is deep.
//
// The class is a pure state machine — no clocks, no locks (the caller holds
// the owning FlowAccount's mutex) — so tests/flow_adapt_test.cpp can drive
// it with injected signals and assert bounds, monotonicity and convergence
// deterministically.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace dps {

struct AdaptiveWindowConfig {
  uint32_t initial = 4;      ///< starting window (clamped to the ceiling)
  uint32_t min_window = 2;   ///< floor the decrease never crosses (2 keeps
                             ///< double-buffering: a window of 1 serializes
                             ///< the pipeline and never wins on throughput)
  double rtt_alpha = 0.2;    ///< EWMA weight of the newest RTT sample
  double slack = 1.5;        ///< grow while srtt < slack * rtt_min
  double choke = 2.5;        ///< shrink when srtt > choke * rtt_min
  uint64_t depth_high = 64;  ///< receiver inbox depth that forces a shrink
};

class AdaptiveWindow {
 public:
  /// The tenant ceiling always wins: a ceiling below min_window lowers the
  /// floor rather than the floor raising the ceiling.
  explicit AdaptiveWindow(uint32_t ceiling, AdaptiveWindowConfig cfg = {})
      : cfg_(cfg),
        ceiling_(std::max<uint32_t>(1, ceiling)),
        floor_(std::min(std::max<uint32_t>(1, cfg.min_window), ceiling_)),
        window_(std::clamp(cfg.initial, floor_, ceiling_)) {}

  uint32_t window() const { return window_; }
  uint32_t ceiling() const { return ceiling_; }
  uint32_t floor() const { return floor_; }
  double srtt() const { return srtt_; }
  double rtt_min() const { return rtt_min_; }

  /// Feeds `n` acknowledged credits with the measured round trip of the
  /// oldest one and the receiver's reported queue depth. Returns true when
  /// the window changed (callers mirror the new value into dps.flow.window).
  bool on_ack(double rtt_s, uint64_t receiver_depth, uint32_t n) {
    if (rtt_s > 0) {
      rtt_min_ = std::min(rtt_min_, rtt_s);
      srtt_ = srtt_ == 0 ? rtt_s
                         : (1 - cfg_.rtt_alpha) * srtt_ + cfg_.rtt_alpha * rtt_s;
    }
    acks_ += n;
    if (acks_ < window_) return false;  // at most one step per window-of-acks
    acks_ = 0;
    const bool have_rtt = rtt_min_ != std::numeric_limits<double>::infinity();
    const bool congested = receiver_depth >= cfg_.depth_high ||
                           (have_rtt && srtt_ > cfg_.choke * rtt_min_);
    if (congested) {
      const uint32_t next = std::max(floor_, window_ / 2);
      const bool changed = next != window_;
      window_ = next;
      return changed;
    }
    const bool healthy = receiver_depth < (cfg_.depth_high + 1) / 2 &&
                         (!have_rtt || srtt_ <= cfg_.slack * rtt_min_);
    if (healthy && window_ < ceiling_) {
      ++window_;
      return true;
    }
    return false;
  }

 private:
  AdaptiveWindowConfig cfg_;
  uint32_t ceiling_;
  uint32_t floor_;
  uint32_t window_;
  double rtt_min_ = std::numeric_limits<double>::infinity();
  double srtt_ = 0;
  uint64_t acks_ = 0;  ///< credits acknowledged since the last adjustment
};

}  // namespace dps
