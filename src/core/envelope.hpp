// Token envelopes — the control structure that travels with every token.
//
// "Data objects transferred over the network incorporate control structures
// giving information about their state and position within the flow graph."
// (paper, section 4). The envelope records the destination vertex/thread,
// the stack of split frames (one per enclosing split/stream construct,
// which is how nested split–merge constructs and context-complete detection
// work), and graph-call bookkeeping. Within one node envelopes move by
// pointer; across nodes they serialize through encode()/decode().
#pragma once

#include <vector>

#include "core/ids.hpp"
#include "serial/registry.hpp"
#include "serial/wire.hpp"

namespace dps {

/// One level of split/stream nesting.
struct SplitFrame {
  ContextId context = 0;  ///< id of the split execution (= flow account id)
  uint32_t seq = 0;       ///< this token's index within the split
  uint8_t has_total = 0;  ///< carried by the last token the split posted
  uint32_t total = 0;     ///< number of tokens the split posted
  NodeId split_node = 0;  ///< node to send flow-control acks to
};
static_assert(std::is_trivially_copyable_v<SplitFrame>);

struct Envelope {
  AppId app = 0;
  GraphId graph = 0;
  VertexId vertex = kNoVertex;  ///< destination vertex; kNoVertex = call reply
  CollectionId collection = 0;
  ThreadIndex thread = 0;
  CallId call = 0;              ///< graph-call id the token belongs to
  NodeId call_reply_node = 0;   ///< where the final result must return
  TenantId tenant = kNoTenant;  ///< traffic class of the originating call
  std::vector<SplitFrame> frames;
  Ptr<Token> token;

  /// Innermost split frame (engine invariant: present at merge/stream).
  SplitFrame& top_frame();
  const SplitFrame& top_frame() const;

  void encode(Writer& w) const;
  static Envelope decode(Reader& r);

  /// Serialized size without building the buffer twice (bench accounting).
  size_t encoded_size() const;
};

}  // namespace dps
