// Routing functions.
//
// "A user-defined routing function specifies at runtime to which instance
// of the thread in the thread collection a data object is directed in order
// to execute its next operation." (paper, section 2). A route class derives
// from Route<TargetThread, TokenType> and implements
//
//   int route(TokenType* token)
//
// returning a thread index in [0, threadCount()). The DPS_ROUTE macro
// generates the whole class from one expression, as in the paper:
//
//   DPS_ROUTE(RoundRobinRoute, ComputeThread, CharToken,
//             currentToken->pos % threadCount());
//
// Routes can also implement the paper's feedback-driven load balancing:
// queueDepth(i) exposes the number of tokens currently queued at thread i
// of the target collection, and LeastLoadedRoute uses it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "core/thread.hpp"
#include "serial/registry.hpp"
#include "util/error.hpp"

namespace dps {

namespace detail {

/// Runtime routing inputs supplied by the controller.
struct RouteContext {
  int thread_count = 0;
  /// Outstanding queued tokens per target thread (live estimates; used for
  /// load-balancing heuristics). Null when unavailable.
  const std::atomic<uint32_t>* queue_depths = nullptr;
};

}  // namespace detail

/// Type-erased base the engine drives.
class RouteBase {
 public:
  virtual ~RouteBase() = default;

  /// Dispatches on the dynamic token type and returns the target index.
  virtual int route_erased(Token* token) = 0;

  /// Registered name of the *target thread class* (checked against the
  /// vertex's thread collection at graph-build time).
  virtual const char* target_thread_type() const = 0;

 protected:
  friend class Controller;
  detail::RouteContext ctx_;

  int threadCountBase() const { return ctx_.thread_count; }
  uint32_t queueDepthBase(int i) const {
    if (ctx_.queue_depths == nullptr || i < 0 || i >= ctx_.thread_count) {
      return 0;
    }
    return ctx_.queue_depths[i].load(std::memory_order_relaxed);
  }
};

/// Typed route: TargetThread is the thread class of the destination
/// collection; TokenT the token type being routed.
template <class TargetThread, class TokenT>
class Route : public RouteBase {
  static_assert(std::is_base_of_v<Thread, TargetThread>,
                "Route target must be a dps::Thread subclass");
  static_assert(std::is_base_of_v<Token, TokenT>,
                "Route token must be a dps::Token subclass");

 public:
  using TargetThreadType = TargetThread;
  using TokenType = TokenT;

  /// User hook: destination thread index for this token.
  virtual int route(TokenT* currentToken) = 0;

  int route_erased(Token* token) final {
    TokenT* typed;
    if constexpr (std::is_same_v<TokenT, Token>) {
      typed = token;  // wildcard route: accepts every token type
    } else {
      typed = dynamic_cast<TokenT*>(token);
      if (typed == nullptr) {
        raise(Errc::kTypeMismatch,
              std::string("route expects ") + TokenT::staticTypeInfo().name +
                  ", got " + token->typeInfo().name);
      }
    }
    const int idx = route(typed);
    if (idx < 0 || idx >= threadCount()) {
      raise(Errc::kInvalidArgument,
            "route returned thread index " + std::to_string(idx) +
                " outside collection of size " +
                std::to_string(threadCount()));
    }
    return idx;
  }

  const char* target_thread_type() const final {
    return TargetThread::staticThreadInfo().name.c_str();
  }

 protected:
  /// Number of threads in the destination collection.
  int threadCount() const { return threadCountBase(); }
  /// Tokens currently queued at destination thread i (load balancing).
  uint32_t queueDepth(int i) const { return queueDepthBase(i); }
};

namespace detail {

struct RouteTypeInfo {
  std::string name;
  std::string token_type_name;
  std::string target_thread_name;
  RouteBase* (*create)() = nullptr;
};

class RouteTypeRegistry {
 public:
  static RouteTypeRegistry& instance();
  void add(const RouteTypeInfo* info);
  const RouteTypeInfo& find(const std::string& name) const;

 private:
  struct Impl;
  Impl& impl() const;
};

/// Wildcard marker: a Route<Thread, Token> accepts every token type of its
/// vertex (needed when one vertex collects several token types, e.g. the
/// LU stage streams receiving both solve and flip notifications).
inline constexpr const char* kAnyTokenRoute = "Token";

template <class T>
const RouteTypeInfo& register_route_type(const char* name) {
  static_assert(std::is_base_of_v<RouteBase, T>,
                "DPS_IDENTIFY_ROUTE is for dps::Route subclasses");
  static const RouteTypeInfo info = [&] {
    RouteTypeInfo i;
    i.name = name;
    if constexpr (std::is_same_v<typename T::TokenType, Token>) {
      i.token_type_name = kAnyTokenRoute;
    } else {
      i.token_type_name = T::TokenType::staticTypeInfo().name;
    }
    i.target_thread_name = T::TargetThreadType::staticThreadInfo().name;
    i.create = []() -> RouteBase* { return new T(); };
    return i;
  }();
  RouteTypeRegistry::instance().add(&info);
  return info;
}

}  // namespace detail
}  // namespace dps

/// Registers the enclosing route class (mirrors the paper's IDENTIFY on
/// routing functions).
#define DPS_IDENTIFY_ROUTE(T)                                          \
 public:                                                               \
  static const ::dps::detail::RouteTypeInfo& staticRouteInfo() {       \
    static const ::dps::detail::RouteTypeInfo& info =                  \
        ::dps::detail::register_route_type<T>(#T);                     \
    return info;                                                       \
  }                                                                    \
                                                                       \
 private:                                                              \
  inline static const bool dps_route_registered_ =                     \
      (T::staticRouteInfo(), true)

/// One-expression route definition, as in the paper:
///   DPS_ROUTE(RoundRobinRoute, ComputeThread, CharToken,
///             currentToken->pos % threadCount());
#define DPS_ROUTE(Name, ThreadT, TokenT, expr)                    \
  class Name : public ::dps::Route<ThreadT, TokenT> {             \
   public:                                                        \
    int route(TokenT* currentToken) override {                    \
      (void)currentToken;                                         \
      return (expr);                                              \
    }                                                             \
    DPS_IDENTIFY_ROUTE(Name);                                     \
  }
