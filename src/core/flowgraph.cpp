#include "core/flowgraph.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "core/application.hpp"
#include "core/cluster.hpp"
#include "core/controller.hpp"
#include "util/logging.hpp"

namespace dps {

// ---------------------------------------------------------------------------
// FlowgraphBuilder
// ---------------------------------------------------------------------------

void FlowgraphBuilder::add_vertex(detail::VertexSpecPtr v) {
  for (const auto& existing : vertices_) {
    if (existing.get() == v.get()) return;  // shared FlowgraphNode variable
  }
  vertices_.push_back(std::move(v));
}

void FlowgraphBuilder::add_edge(detail::VertexSpecPtr from,
                                detail::VertexSpecPtr to) {
  add_vertex(from);
  add_vertex(to);
  auto edge = std::make_pair(from.get(), to.get());
  for (const auto& e : edges_) {
    if (e == edge) return;  // idempotent (+= of overlapping pieces)
  }
  edges_.push_back(edge);
}

FlowgraphBuilder& FlowgraphBuilder::operator+=(const FlowgraphBuilder& other) {
  for (const auto& v : other.vertices_) add_vertex(v);
  for (const auto& [from, to] : other.edges_) {
    // Locate the shared_ptr owners in `other` to reuse add_edge's dedup.
    detail::VertexSpecPtr f, t;
    for (const auto& v : other.vertices_) {
      if (v.get() == from) f = v;
      if (v.get() == to) t = v;
    }
    add_edge(f, t);
  }
  chain_tail = other.chain_tail;
  return *this;
}

// ---------------------------------------------------------------------------
// Flowgraph construction & validation
// ---------------------------------------------------------------------------

namespace {

int depth_delta(OpKind kind) {
  switch (kind) {
    case OpKind::kSplit: return +1;
    case OpKind::kMerge: return -1;
    case OpKind::kStream: return 0;  // pops one frame, pushes its own
    case OpKind::kLeaf:
    case OpKind::kGraphCall: return 0;
  }
  return 0;
}

bool pops_frame(OpKind kind) {
  return kind == OpKind::kMerge || kind == OpKind::kStream;
}

}  // namespace

Flowgraph::Flowgraph(Application& app, GraphId id, std::string name,
                     const FlowgraphBuilder& builder)
    : app_(&app), id_(id), name_(std::move(name)) {
  const auto& specs = builder.vertices();
  if (specs.empty()) {
    raise(Errc::kInvalidArgument, "flow graph '" + name_ + "' is empty");
  }

  // Resolve specs against the registries and the thread collections.
  std::unordered_map<const detail::VertexSpec*, VertexId> index;
  vertices_.reserve(specs.size());
  for (const auto& spec : specs) {
    Vertex v;
    v.kind = spec->kind;
    if (spec->kind != OpKind::kGraphCall) {
      v.op = &detail::OperationTypeRegistry::instance().find(spec->op_name);
    }
    v.route = &detail::RouteTypeRegistry::instance().find(spec->route_name);
    v.service_name = spec->service_name;
    v.collection = spec->collection.get();
    v.input_type_ids = spec->input_type_ids;
    v.output_type_ids = spec->output_type_ids;
    if (v.collection == nullptr) {
      raise(Errc::kInvalidArgument,
            "vertex '" + spec->op_name + "' has no thread collection");
    }
    if (!v.collection->mapped()) {
      raise(Errc::kState, "thread collection '" + v.collection->name() +
                              "' must be mapped before building graph '" +
                              name_ + "'");
    }
    if (v.collection->thread_type() != spec->thread_type_name) {
      raise(Errc::kInvalidArgument,
            "vertex '" + spec->op_name + "' runs on thread class '" +
                spec->thread_type_name + "' but collection '" +
                v.collection->name() + "' holds '" +
                v.collection->thread_type() + "' threads");
    }
    // The route must target the same thread class and accept one of the
    // vertex's input token types.
    if (v.route->target_thread_name != spec->thread_type_name) {
      raise(Errc::kInvalidArgument,
            "route '" + v.route->name + "' targets thread class '" +
                v.route->target_thread_name + "', vertex needs '" +
                spec->thread_type_name + "'");
    }
    if (v.route->token_type_name != detail::kAnyTokenRoute) {
      const uint64_t route_token = fnv1a(v.route->token_type_name.c_str());
      if (std::find(v.input_type_ids.begin(), v.input_type_ids.end(),
                    route_token) == v.input_type_ids.end()) {
        raise(Errc::kInvalidArgument,
              "route '" + v.route->name + "' routes token type '" +
                  v.route->token_type_name +
                  "', which the vertex does not accept");
      }
    }
    index.emplace(spec.get(), static_cast<VertexId>(vertices_.size()));
    vertices_.push_back(std::move(v));
  }

  // Edges -> successor lists.
  std::vector<int> in_degree(vertices_.size(), 0);
  for (const auto& [from, to] : builder.edges()) {
    const VertexId f = index.at(from);
    const VertexId t = index.at(to);
    vertices_[f].successors.push_back(t);
    ++in_degree[t];
  }

  // Unique entry vertex.
  VertexId entry = kNoVertex;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (in_degree[v] == 0) {
      if (entry != kNoVertex) {
        raise(Errc::kInvalidArgument,
              "flow graph '" + name_ + "' has several entry vertices");
      }
      entry = v;
    }
  }
  if (entry == kNoVertex) {
    raise(Errc::kInvalidArgument,
          "flow graph '" + name_ + "' has no entry vertex (cycle)");
  }
  entry_ = entry;
  if (pops_frame(vertices_[entry_].kind)) {
    raise(Errc::kInvalidArgument,
          "flow graph '" + name_ +
              "' starts with a merge/stream operation; the entry receives a "
              "single token and has no split context to collect");
  }

  // Acyclicity + reachability (iterative DFS with colors).
  {
    enum : uint8_t { kWhite, kGray, kBlack };
    std::vector<uint8_t> color(vertices_.size(), kWhite);
    std::vector<std::pair<VertexId, size_t>> stack;
    stack.emplace_back(entry_, 0);
    color[entry_] = kGray;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < vertices_[v].successors.size()) {
        const VertexId s = vertices_[v].successors[next++];
        if (color[s] == kGray) {
          raise(Errc::kInvalidArgument,
                "flow graph '" + name_ + "' contains a cycle (DPS graphs "
                "are directed acyclic graphs)");
        }
        if (color[s] == kWhite) {
          color[s] = kGray;
          stack.emplace_back(s, 0);
        }
      } else {
        color[v] = kBlack;
        stack.pop_back();
      }
    }
    for (VertexId v = 0; v < vertices_.size(); ++v) {
      if (color[v] == kWhite) {
        raise(Errc::kInvalidArgument,
              "flow graph '" + name_ + "' has vertices unreachable from the "
              "entry");
      }
    }
  }

  // Successor input lists must be pairwise disjoint: "the input data object
  // types of the destinations are used to determine which path to follow".
  for (const Vertex& v : vertices_) {
    std::set<uint64_t> seen;
    for (VertexId s : v.successors) {
      for (uint64_t t : vertices_[s].input_type_ids) {
        if (!seen.insert(t).second) {
          raise(Errc::kInvalidArgument,
                "flow graph '" + name_ +
                    "': two successors of one vertex accept the same token "
                    "type; the path choice would be ambiguous");
        }
      }
    }
  }

  // Frame-depth consistency (balanced split/merge nesting) via BFS.
  {
    std::vector<int> depth(vertices_.size(), -1);
    depth[entry_] = 0;
    std::vector<VertexId> queue{entry_};
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      const VertexId v = queue[qi];
      const Vertex& vv = vertices_[v];
      if (pops_frame(vv.kind) && depth[v] < 1) {
        raise(Errc::kInvalidArgument,
              "flow graph '" + name_ + "': merge/stream at depth 0 — no "
              "enclosing split");
      }
      const int out = depth[v] + depth_delta(vv.kind);
      for (VertexId s : vv.successors) {
        if (depth[s] == -1) {
          depth[s] = out;
          queue.push_back(s);
        } else if (depth[s] != out) {
          raise(Errc::kInvalidArgument,
                "flow graph '" + name_ + "': split/merge nesting depth "
                "differs between paths reaching the same vertex");
        }
      }
      if (vv.successors.empty() && out != 0) {
        raise(Errc::kInvalidArgument,
              "flow graph '" + name_ + "': terminal vertex leaves " +
                  std::to_string(out) +
                  " split frame(s) open — every split needs a matching "
                  "merge (unbalanced graph)");
      }
    }
    for (VertexId v = 0; v < vertices_.size(); ++v) {
      vertices_[v].frame_depth_in = depth[v];
    }
  }

  // Each split/stream must have exactly one closing merge/stream: all the
  // tokens of one context must converge on one collecting vertex.
  for (VertexId s = 0; s < vertices_.size(); ++s) {
    const OpKind k = vertices_[s].kind;
    if (k != OpKind::kSplit && k != OpKind::kStream) continue;
    std::set<VertexId> closers;
    std::set<std::pair<VertexId, int>> visited;
    std::vector<std::pair<VertexId, int>> stack;
    for (VertexId t : vertices_[s].successors) stack.emplace_back(t, 1);
    while (!stack.empty()) {
      auto [v, rel] = stack.back();
      stack.pop_back();
      if (!visited.emplace(v, rel).second) continue;
      const Vertex& vv = vertices_[v];
      if (pops_frame(vv.kind) && rel == 1) {
        closers.insert(v);
        continue;  // context closed; do not walk past the closer
      }
      const int out = rel + depth_delta(vv.kind);
      for (VertexId t : vv.successors) stack.emplace_back(t, out);
    }
    if (closers.size() != 1) {
      raise(Errc::kInvalidArgument,
            "flow graph '" + name_ + "': a split/stream construct must be "
            "closed by exactly one merge/stream vertex, found " +
                std::to_string(closers.size()));
    }
  }

  DPS_DEBUG("built flow graph '" << name_ << "' with " << vertices_.size()
                                 << " vertices");
}

const Flowgraph::Vertex& Flowgraph::vertex(VertexId v) const {
  DPS_CHECK(v < vertices_.size(), "vertex id out of range");
  return vertices_[v];
}

// ---------------------------------------------------------------------------
// Calls
// ---------------------------------------------------------------------------

CallHandle Flowgraph::call_async(Ptr<Token> input) {
  DPS_CHECK(input.get() != nullptr, "call with null token");
  Cluster& cluster = app_->cluster();
  const Vertex& entry = vertices_[entry_];
  const uint64_t tid = input->typeInfo().id;
  if (std::find(entry.input_type_ids.begin(), entry.input_type_ids.end(),
                tid) == entry.input_type_ids.end()) {
    raise(Errc::kTypeMismatch,
          "graph '" + name_ + "' does not accept input token type '" +
              input->typeInfo().name + "'");
  }
  // Admission control (docs/SERVICE_MESH.md): the calling application's
  // tenant must clear its budgets before the call enters the mesh. Sheds
  // synchronously with Error(kBackpressure) — never queues.
  const TenantId tenant = app_->tenant();
  const NodeId home = app_->home();
  cluster.controller(home).admit_call(tenant, *this);

  const CallId id = cluster.new_call_id();
  auto state = cluster.create_call(id);
  cluster.bind_admission(*state, tenant, home);

  Envelope env;
  env.app = app_->id();
  env.graph = id_;
  env.vertex = entry_;
  env.call = id;
  env.call_reply_node = home;
  env.tenant = tenant;
  env.token = std::move(input);
  cluster.controller(home).route_and_send(*this, std::move(env));

  CallHandle handle(id, std::move(state), &cluster);
  const double deadline = cluster.tenant_config(tenant).default_deadline_ms;
  if (deadline > 0) handle.with_deadline(deadline);
  return handle;
}

CallHandle& CallHandle::with_deadline(double ms) {
  cluster_->arm_deadline(id_, ms / 1000.0);
  return *this;
}

Ptr<Token> Flowgraph::call(Ptr<Token> input) {
  return call_async(std::move(input)).wait();
}

Ptr<Token> CallHandle::wait() {
  MutexLock lock(state_->mu);
  state_->domain->wait_until(state_->wp, state_->mu,
                             [&] { return state_->done; });
  if (state_->failed) throw Error(state_->err, state_->err_msg);
  return state_->result;
}

bool CallHandle::done() const {
  MutexLock lock(state_->mu);
  return state_->done;
}

}  // namespace dps
