// Registry implementations for thread classes, routes, and operations.
// Same structure as the token registry: name-keyed, thread safe, idempotent
// re-registration, loud failure on unknown names (the usual cause is a
// class whose DPS_IDENTIFY_* macro was not linked into the binary).
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "util/thread_annotations.hpp"

#include "core/operation.hpp"
#include "core/route.hpp"
#include "core/thread.hpp"
#include "util/error.hpp"

namespace dps {
namespace detail {
namespace {

// Graphs resolve vertices through these registries by unqualified class
// name, so two distinct classes sharing a name would silently build the
// graph with whichever registered first — and then fail far away with a
// type mismatch (or worse, run the wrong code). Abort at registration,
// where the duplicate is still attributable.
template <class Map, class Info>
void add_unique(Map& by_name, const Info* info, const char* what) {
  auto [it, inserted] = by_name.emplace(info->name, info);
  if (inserted || it->second == info) return;
  std::fprintf(stderr,
               "dps: fatal %s-name collision: two distinct classes "
               "registered as '%s'; rename one of them\n",
               what, std::string(info->name).c_str());
  std::abort();
}

}  // namespace

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

struct ThreadTypeRegistry::Impl {
  mutable Mutex mu;
  std::unordered_map<std::string, const ThreadTypeInfo*> by_name
      DPS_GUARDED_BY(mu);
};

ThreadTypeRegistry& ThreadTypeRegistry::instance() {
  static ThreadTypeRegistry reg;
  return reg;
}

ThreadTypeRegistry::Impl& ThreadTypeRegistry::impl() const {
  static Impl impl;
  return impl;
}

void ThreadTypeRegistry::add(const ThreadTypeInfo* info) {
  Impl& im = impl();
  MutexLock lock(im.mu);
  add_unique(im.by_name, info, "thread-class");
}

const ThreadTypeInfo& ThreadTypeRegistry::find(const std::string& name) const {
  Impl& im = impl();
  MutexLock lock(im.mu);
  auto it = im.by_name.find(name);
  if (it == im.by_name.end()) {
    raise(Errc::kNotFound, "unknown thread class '" + name + "'");
  }
  return *it->second;
}

// ---------------------------------------------------------------------------
// Routes
// ---------------------------------------------------------------------------

struct RouteTypeRegistry::Impl {
  mutable Mutex mu;
  std::unordered_map<std::string, const RouteTypeInfo*> by_name
      DPS_GUARDED_BY(mu);
};

RouteTypeRegistry& RouteTypeRegistry::instance() {
  static RouteTypeRegistry reg;
  return reg;
}

RouteTypeRegistry::Impl& RouteTypeRegistry::impl() const {
  static Impl impl;
  return impl;
}

void RouteTypeRegistry::add(const RouteTypeInfo* info) {
  Impl& im = impl();
  MutexLock lock(im.mu);
  add_unique(im.by_name, info, "route");
}

const RouteTypeInfo& RouteTypeRegistry::find(const std::string& name) const {
  Impl& im = impl();
  MutexLock lock(im.mu);
  auto it = im.by_name.find(name);
  if (it == im.by_name.end()) {
    raise(Errc::kNotFound, "unknown route class '" + name + "'");
  }
  return *it->second;
}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

struct OperationTypeRegistry::Impl {
  mutable Mutex mu;
  std::unordered_map<std::string, const OperationTypeInfo*> by_name
      DPS_GUARDED_BY(mu);
};

OperationTypeRegistry& OperationTypeRegistry::instance() {
  static OperationTypeRegistry reg;
  return reg;
}

OperationTypeRegistry::Impl& OperationTypeRegistry::impl() const {
  static Impl impl;
  return impl;
}

void OperationTypeRegistry::add(const OperationTypeInfo* info) {
  Impl& im = impl();
  MutexLock lock(im.mu);
  add_unique(im.by_name, info, "operation");
}

const OperationTypeInfo& OperationTypeRegistry::find(
    const std::string& name) const {
  Impl& im = impl();
  MutexLock lock(im.mu);
  auto it = im.by_name.find(name);
  if (it == im.by_name.end()) {
    raise(Errc::kNotFound, "unknown operation class '" + name + "'");
  }
  return *it->second;
}

}  // namespace detail
}  // namespace dps
