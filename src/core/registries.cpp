// Registry implementations for thread classes, routes, and operations.
// Same structure as the token registry: name-keyed, thread safe, idempotent
// re-registration, loud failure on unknown names (the usual cause is a
// class whose DPS_IDENTIFY_* macro was not linked into the binary).
#include <unordered_map>

#include "util/thread_annotations.hpp"

#include "core/operation.hpp"
#include "core/route.hpp"
#include "core/thread.hpp"
#include "util/error.hpp"

namespace dps {
namespace detail {

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

struct ThreadTypeRegistry::Impl {
  mutable Mutex mu;
  std::unordered_map<std::string, const ThreadTypeInfo*> by_name
      DPS_GUARDED_BY(mu);
};

ThreadTypeRegistry& ThreadTypeRegistry::instance() {
  static ThreadTypeRegistry reg;
  return reg;
}

ThreadTypeRegistry::Impl& ThreadTypeRegistry::impl() const {
  static Impl impl;
  return impl;
}

void ThreadTypeRegistry::add(const ThreadTypeInfo* info) {
  Impl& im = impl();
  MutexLock lock(im.mu);
  im.by_name.emplace(info->name, info);
}

const ThreadTypeInfo& ThreadTypeRegistry::find(const std::string& name) const {
  Impl& im = impl();
  MutexLock lock(im.mu);
  auto it = im.by_name.find(name);
  if (it == im.by_name.end()) {
    raise(Errc::kNotFound, "unknown thread class '" + name + "'");
  }
  return *it->second;
}

// ---------------------------------------------------------------------------
// Routes
// ---------------------------------------------------------------------------

struct RouteTypeRegistry::Impl {
  mutable Mutex mu;
  std::unordered_map<std::string, const RouteTypeInfo*> by_name
      DPS_GUARDED_BY(mu);
};

RouteTypeRegistry& RouteTypeRegistry::instance() {
  static RouteTypeRegistry reg;
  return reg;
}

RouteTypeRegistry::Impl& RouteTypeRegistry::impl() const {
  static Impl impl;
  return impl;
}

void RouteTypeRegistry::add(const RouteTypeInfo* info) {
  Impl& im = impl();
  MutexLock lock(im.mu);
  im.by_name.emplace(info->name, info);
}

const RouteTypeInfo& RouteTypeRegistry::find(const std::string& name) const {
  Impl& im = impl();
  MutexLock lock(im.mu);
  auto it = im.by_name.find(name);
  if (it == im.by_name.end()) {
    raise(Errc::kNotFound, "unknown route class '" + name + "'");
  }
  return *it->second;
}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

struct OperationTypeRegistry::Impl {
  mutable Mutex mu;
  std::unordered_map<std::string, const OperationTypeInfo*> by_name
      DPS_GUARDED_BY(mu);
};

OperationTypeRegistry& OperationTypeRegistry::instance() {
  static OperationTypeRegistry reg;
  return reg;
}

OperationTypeRegistry::Impl& OperationTypeRegistry::impl() const {
  static Impl impl;
  return impl;
}

void OperationTypeRegistry::add(const OperationTypeInfo* info) {
  Impl& im = impl();
  MutexLock lock(im.mu);
  im.by_name.emplace(info->name, info);
}

const OperationTypeInfo& OperationTypeRegistry::find(
    const std::string& name) const {
  Impl& im = impl();
  MutexLock lock(im.mu);
  auto it = im.by_name.find(name);
  if (it == im.by_name.end()) {
    raise(Errc::kNotFound, "unknown operation class '" + name + "'");
  }
  return *it->second;
}

}  // namespace detail
}  // namespace dps
