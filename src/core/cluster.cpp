#include "core/cluster.hpp"

#include <chrono>
#include <map>

#include "compute/backend.hpp"
#include "core/application.hpp"
#include "core/controller.hpp"
#include "core/thread_collection.hpp"
#include "net/inproc_transport.hpp"
#include "net/shm_fabric.hpp"
#include "net/tcp_transport.hpp"
#include "sim/scheduler.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

#ifdef DPS_TRACE
#include "obs/trace.hpp"
#endif

namespace dps {

namespace {
std::vector<std::string> default_names(int n) {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) names.push_back("node" + std::to_string(i));
  return names;
}
}  // namespace

ClusterConfig ClusterConfig::inproc(int node_count) {
  ClusterConfig cfg;
  cfg.nodes = default_names(node_count);
  cfg.fabric = FabricKind::kInproc;
  return cfg;
}

ClusterConfig ClusterConfig::tcp(int node_count) {
  ClusterConfig cfg;
  cfg.nodes = default_names(node_count);
  cfg.fabric = FabricKind::kTcp;
  return cfg;
}

ClusterConfig ClusterConfig::simulated(int node_count, LinkModel link) {
  ClusterConfig cfg;
  cfg.nodes = default_names(node_count);
  cfg.fabric = FabricKind::kSim;
  cfg.link = link;
  return cfg;
}

ClusterConfig ClusterConfig::shm(int node_count) {
  ClusterConfig cfg;
  cfg.nodes = default_names(node_count);
  cfg.fabric = FabricKind::kShm;
  return cfg;
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  DPS_CHECK(!config_.nodes.empty(), "cluster needs at least one node");
  if (!config_.leaf_backend.empty()) {
    compute::set_default_backend(config_.leaf_backend);
  }
  const size_t n = config_.nodes.size();
  if (config_.external_fabric) {
    domain_ = std::make_unique<WallDomain>();
    fabric_ = config_.external_fabric;
  } else {
    switch (config_.fabric) {
      case ClusterConfig::FabricKind::kInproc:
        domain_ = std::make_unique<WallDomain>();
        fabric_ = std::make_unique<InprocFabric>(n);
        break;
      case ClusterConfig::FabricKind::kTcp: {
        domain_ = std::make_unique<WallDomain>();
        auto tcp = std::make_shared<TcpFabric>(n);
        tcp->set_node_names(config_.nodes);
        fabric_ = std::move(tcp);
        break;
      }
      case ClusterConfig::FabricKind::kSim:
        domain_ = std::make_unique<SimDomain>(config_.sim_cpus_per_node);
        fabric_ = std::make_unique<SimFabric>(n, *domain_, config_.link);
        break;
      case ClusterConfig::FabricKind::kShm:
        domain_ = std::make_unique<WallDomain>();
        fabric_ = std::make_unique<ShmFabric>(n);
        break;
    }
  }
  services_ = std::make_unique<NameRegistry>(*domain_);
  controllers_.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    controllers_.push_back(std::make_unique<Controller>(*this, i));
    Controller* c = controllers_.back().get();
    if (is_local(i)) {
      fabric_->attach(i,
                      [c](NodeMessage&& msg) { c->on_fabric(std::move(msg)); });
      // Batching fabrics (TCP) prefer grouped delivery: one controller
      // entry per received chunk instead of one per frame.
      fabric_->attach_batch(i, [c](std::vector<NodeMessage>&& msgs) {
        c->on_fabric_batch(std::move(msgs));
      });
    }
  }

  if (config_.fault.enabled()) {
    if (simulated()) {
      DPS_WARN(
          "fault tolerance (reliable delivery / heartbeats) is a wall-clock "
          "mechanism and is disabled under virtual time");
    } else {
      ft_active_ = true;
      for (NodeId i = 0; i < n; ++i) {
        if (is_local(i)) controllers_[i]->enable_fault_tolerance();
      }
      monitor_ = std::thread([this] { monitor_loop(); });
    }
  }
}

Cluster::~Cluster() { shutdown(); }

NodeId Cluster::node_id(const std::string& name) const {
  for (NodeId i = 0; i < config_.nodes.size(); ++i) {
    if (config_.nodes[i] == name) return i;
  }
  raise(Errc::kNotFound, "unknown node '" + name + "'");
}

const std::string& Cluster::node_name(NodeId node) const {
  DPS_CHECK(node < config_.nodes.size(), "node id out of range");
  return config_.nodes[node];
}

Controller& Cluster::controller(NodeId node) {
  DPS_CHECK(node < controllers_.size(), "node id out of range");
  return *controllers_[node];
}

// --- Tenants (docs/SERVICE_MESH.md) ------------------------------------------

bool Cluster::DeadlineGate::enter() {
  MutexLock lock(mu);
  if (closed) return false;
  ++active;
  return true;
}

void Cluster::DeadlineGate::leave() {
  MutexLock lock(mu);
  if (--active == 0) cv.notify_all();
}

void Cluster::DeadlineGate::close() {
  MutexLock lock(mu);
  closed = true;
  cv.wait(mu, [&]() DPS_REQUIRES(mu) { return active == 0; });
}

TenantId Cluster::register_tenant(const std::string& name,
                                  const TenantConfig& config) {
  TenantId id = kNoTenant;
  TenantConfig recorded = config;
  {
    MutexLock lock(tenant_mu_);
    for (size_t i = 0; i < tenants_.size(); ++i) {
      if (tenants_[i].name == name) {
        // Re-join under the same identity (tenant churn): keep the
        // budgets the first registration configured.
        id = static_cast<TenantId>(i + 1);
        recorded = tenants_[i].config;
        break;
      }
    }
    if (id == kNoTenant) {
      tenants_.push_back(TenantRec{name, config});
      id = static_cast<TenantId>(tenants_.size());
    }
  }
  services_->publish(kTenantRecordPrefix + name,
                     encode_tenant_record(id, recorded));
  return id;
}

void Cluster::set_tenant_config(TenantId tenant, const TenantConfig& config) {
  std::string name;
  {
    MutexLock lock(tenant_mu_);
    DPS_CHECK(tenant != kNoTenant && tenant <= tenants_.size(),
              "set_tenant_config on unknown tenant");
    tenants_[tenant - 1].config = config;
    name = tenants_[tenant - 1].name;
  }
  services_->publish(kTenantRecordPrefix + name,
                     encode_tenant_record(tenant, config));
}

TenantConfig Cluster::tenant_config(TenantId tenant) const {
  MutexLock lock(tenant_mu_);
  if (tenant == kNoTenant || tenant > tenants_.size()) return TenantConfig{};
  return tenants_[tenant - 1].config;
}

std::string Cluster::tenant_name(TenantId tenant) const {
  MutexLock lock(tenant_mu_);
  if (tenant == kNoTenant || tenant > tenants_.size()) return "<none>";
  return tenants_[tenant - 1].name;
}

AppId Cluster::register_app(Application* app) {
  MutexLock lock(mu_);
  const AppId id = next_app_++;
  apps_.emplace(id, app);
  return id;
}

void Cluster::unregister_app(AppId id) {
  MutexLock lock(mu_);
  apps_.erase(id);
}

Application* Cluster::app(AppId id) const {
  MutexLock lock(mu_);
  auto it = apps_.find(id);
  if (it == apps_.end()) {
    raise(Errc::kNotFound, "no application " + std::to_string(id) +
                               " on this cluster");
  }
  return it->second;
}

CollectionId Cluster::register_collection(
    std::shared_ptr<ThreadCollectionBase> collection) {
  MutexLock lock(mu_);
  collections_.push_back(std::move(collection));
  return static_cast<CollectionId>(collections_.size() - 1);
}

ThreadCollectionBase* Cluster::collection(CollectionId id) const {
  MutexLock lock(mu_);
  if (id >= collections_.size()) {
    raise(Errc::kNotFound, "unknown thread collection " + std::to_string(id));
  }
  return collections_[id].get();
}

CallId Cluster::new_call_id() {
  return next_call_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<detail::CallState> Cluster::create_call(CallId id) {
  auto state = std::make_shared<detail::CallState>();
  state->domain = domain_.get();
  MutexLock lock(mu_);
  if (!dead_.empty()) {
    // Fail fast: a degraded cluster stays failed until recovered into a
    // fresh one (docs/FAULT_TOLERANCE.md); new calls would stall on the
    // dead node's threads.
    state->failed = true;
    state->err = Errc::kNodeDown;
    state->err_msg = "cluster has dead nodes; build a recovery cluster "
                     "(degraded_config/recover_cluster) before calling again";
    state->done = true;
    return state;
  }
  calls_.emplace(id, state);
  return state;
}

void Cluster::complete_call(CallId id, Ptr<Token> result) {
  std::shared_ptr<detail::CallState> state;
  {
    MutexLock lock(mu_);
    auto it = calls_.find(id);
    if (it == calls_.end()) {
      DPS_WARN("stray result for unknown call " << id);
      return;
    }
    state = std::move(it->second);
    calls_.erase(it);
  }
  retire_admission(*state, /*deadline_expired=*/false);
  if (state->continuation) {
    // Graph-call vertices continue the client graph; must not block.
    auto continuation = std::move(state->continuation);
    continuation(std::move(result));
    return;
  }
  MutexLock lock(state->mu);
  state->result = std::move(result);
  state->done = true;
  domain_->notify_all(state->wp);
}

void Cluster::retire_admission(detail::CallState& state,
                               bool deadline_expired) {
  TenantId tenant = kNoTenant;
  NodeId node = 0;
  {
    MutexLock lock(state.mu);
    if (!state.admitted) return;
    state.admitted = false;
    tenant = state.tenant;
    node = state.admit_node;
  }
  controller(node).retire_call(tenant, deadline_expired);
}

void Cluster::bind_admission(detail::CallState& state, TenantId tenant,
                             NodeId node) {
  {
    MutexLock lock(state.mu);
    if (!state.done) {
      state.tenant = tenant;
      state.admit_node = node;
      state.admitted = true;
      return;
    }
  }
  // Pre-failed call: it never entered the call table, so complete_call /
  // fail_all_calls / expire_call will never retire it.
  controller(node).retire_call(tenant, /*deadline_expired=*/false);
}

void Cluster::arm_deadline(CallId id, double seconds) {
  DPS_CHECK(seconds > 0, "deadline must be positive");
  domain_->post_event(seconds, [this, id, gate = deadline_gate_] {
    if (!gate->enter()) return;  // cluster already shutting down
    expire_call(id);
    gate->leave();
  });
}

void Cluster::expire_call(CallId id) {
  std::shared_ptr<detail::CallState> state;
  {
    MutexLock lock(mu_);
    auto it = calls_.find(id);
    if (it == calls_.end()) return;  // completed (or failed) in time
    state = std::move(it->second);
    calls_.erase(it);
  }
  retire_admission(*state, /*deadline_expired=*/true);
  std::function<void(Ptr<Token>)> continuation;
  {
    MutexLock lock(state->mu);
    state->failed = true;
    state->err = Errc::kDeadlineExceeded;
    state->err_msg = "call " + std::to_string(id) +
                     " exceeded its deadline; tokens still in flight are "
                     "dropped as stray on arrival";
    state->done = true;
    continuation = std::move(state->continuation);
    state->continuation = nullptr;
    domain_->notify_all(state->wp);
  }
  // A graph-call vertex's sub-call has no waiter to rethrow into; its
  // continuation owns error delivery (continue_graph_call fails the outer
  // call). Nothing to invoke here with a null token — the outer call
  // carries its own deadline.
  (void)continuation;
}

// --- Fault tolerance (docs/FAULT_TOLERANCE.md) -------------------------------

bool Cluster::node_down(NodeId node) const {
  MutexLock lock(mu_);
  return dead_.count(node) != 0;
}

std::vector<NodeId> Cluster::dead_nodes() const {
  MutexLock lock(mu_);
  return {dead_.begin(), dead_.end()};
}

void Cluster::mark_node_down(NodeId node, const std::string& reason) {
  {
    MutexLock lock(mu_);
    if (down_ || !dead_.insert(node).second) return;
  }
  DPS_WARN("node '" << node_name(node) << "' declared down: " << reason);
#ifdef DPS_TRACE
  obs::Trace::instance().record(obs::EventKind::kNodeDown, node, node, 0, 0,
                                0);
#endif
  for (NodeId i = 0; i < controllers_.size(); ++i) {
    if (is_local(i)) controllers_[i]->on_node_down(node);
  }
  fail_all_calls(Errc::kNodeDown,
                 "node '" + node_name(node) + "' declared down: " + reason);
}

void Cluster::fail_all_calls(Errc code, const std::string& message) {
  std::unordered_map<CallId, std::shared_ptr<detail::CallState>> calls;
  {
    MutexLock lock(mu_);
    calls.swap(calls_);
  }
  for (auto& [id, state] : calls) {
    retire_admission(*state, /*deadline_expired=*/false);
    if (state->continuation) {
      // Sub-call of a graph-call vertex: nothing to deliver — the client
      // graph's own call is in the same table and fails directly.
      continue;
    }
    MutexLock lock(state->mu);
    state->failed = true;
    state->err = code;
    state->err_msg = message;
    state->done = true;
    domain_->notify_all(state->wp);
  }
}

void Cluster::monitor_loop() {
  const FaultToleranceConfig& ft = config_.fault;
  const double threshold = ft.heartbeat_period * ft.heartbeat_miss;
  double next_beacon = 0;  // beacon immediately so last_heard stays fresh
  for (;;) {
    {
      MutexLock lock(monitor_mu_);
      monitor_cv_.wait_for(
          monitor_mu_, std::chrono::duration<double>(ft.tick_interval),
          [&] { return monitor_stop_; });
      if (monitor_stop_) return;
    }
    const double now = mono_seconds();

    std::set<NodeId> live;
    for (NodeId i = 0; i < controllers_.size(); ++i) {
      if (!node_down(i)) live.insert(i);
    }

    if (ft.reliable) {
      for (NodeId i : live) {
        if (!is_local(i)) continue;
        for (NodeId suspect : controllers_[i]->reliability_tick(now)) {
          if (!ft.heartbeat) {
            // No heartbeat adjudication: the retry budget is the only
            // failure signal, so act on it directly.
            mark_node_down(suspect, "retransmission budget exhausted");
          }
        }
      }
    }

    if (!ft.heartbeat) continue;
    if (now >= next_beacon) {
      next_beacon = now + ft.heartbeat_period;
      for (NodeId i : live) {
        if (is_local(i)) controllers_[i]->send_heartbeats(now);
      }
    }

    // Failure adjudication. All controllers of a single-process cluster
    // share this monitor, so a killed node's own controller is still
    // running locally and hears nobody — it must not be allowed to vote
    // the healthy majority dead. Rules, in order:
    //   1. a node that cannot hear ANY live peer is isolated — it is dead
    //      to the cluster regardless of its own opinion of others;
    //   2. a peer is declared dead when every non-isolated observer
    //      reports it stale (unanimity among credible witnesses);
    //   3. total blackout (everyone isolated): the leader — the lowest
    //      live node id — survives; split-brain resolves leader-wins.
    if (live.size() <= 1) continue;
    std::map<NodeId, std::set<NodeId>> stale;
    std::set<NodeId> isolated;
    for (NodeId i : live) {
      if (!is_local(i)) continue;
      std::set<NodeId> s;
      for (NodeId p : controllers_[i]->stale_peers(now, threshold)) {
        if (live.count(p) != 0) s.insert(p);
      }
      if (s.size() >= live.size() - 1) isolated.insert(i);
      stale.emplace(i, std::move(s));
    }

    std::set<NodeId> to_kill;
    if (!isolated.empty() && isolated.size() == stale.size() &&
        stale.size() == live.size()) {
      const NodeId leader = *live.begin();
      for (NodeId i : live) {
        if (i != leader) to_kill.insert(i);
      }
    } else {
      to_kill = isolated;
      for (NodeId p : live) {
        int votes = 0, witnesses = 0;
        for (const auto& [i, s] : stale) {
          if (isolated.count(i) != 0 || i == p) continue;
          ++witnesses;
          if (s.count(p) != 0) ++votes;
        }
        if (witnesses > 0 && votes == witnesses) to_kill.insert(p);
      }
    }
    for (NodeId p : to_kill) {
      mark_node_down(p, "missed " + std::to_string(ft.heartbeat_miss) +
                            " heartbeats");
    }
  }
}

void Cluster::claim_context(ContextId ctx, const void* claimant) {
  MutexLock lock(mu_);
  auto [it, inserted] = claims_.emplace(ctx, claimant);
  if (!inserted && it->second != claimant) {
    raise(Errc::kState,
          "tokens of one split context were routed to several merge "
          "threads; all tokens of a context must converge on one thread "
          "instance (check the merge's routing function)");
  }
}

void Cluster::release_context(ContextId ctx) {
  MutexLock lock(mu_);
  claims_.erase(ctx);
}

void Cluster::shutdown() {
  {
    MutexLock lock(mu_);
    if (down_) return;
    down_ = true;
  }
  DPS_DEBUG("cluster shutting down");
  // Quiesce deadline timers first: after close() no expiry event can touch
  // the call table or the controllers we are about to stop.
  deadline_gate_->close();
  if (monitor_.joinable()) {
    {
      MutexLock lock(monitor_mu_);
      monitor_stop_ = true;
    }
    monitor_cv_.notify_all();
    monitor_.join();
  }
  for (auto& c : controllers_) c->shutdown();
  // Calls still in the table lost their workers above and can never
  // complete; waiters would block forever (a collective caught mid-flight
  // by shutdown, for instance). Fail them like a node death does.
  fail_all_calls(Errc::kState, "cluster shut down with the call in flight");
  fabric_->shutdown();
  // Join the domain's scheduler thread while the workers it may still be
  // waking (a stall handler's WaitPoint snapshot) are alive; the member
  // destruction order frees controllers_ before domain_.
  domain_->stop();
}

}  // namespace dps
