#include "core/cluster.hpp"

#include "core/application.hpp"
#include "core/controller.hpp"
#include "core/thread_collection.hpp"
#include "net/inproc_transport.hpp"
#include "net/tcp_transport.hpp"
#include "sim/scheduler.hpp"
#include "util/logging.hpp"

namespace dps {

namespace {
std::vector<std::string> default_names(int n) {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) names.push_back("node" + std::to_string(i));
  return names;
}
}  // namespace

ClusterConfig ClusterConfig::inproc(int node_count) {
  ClusterConfig cfg;
  cfg.nodes = default_names(node_count);
  cfg.fabric = FabricKind::kInproc;
  return cfg;
}

ClusterConfig ClusterConfig::tcp(int node_count) {
  ClusterConfig cfg;
  cfg.nodes = default_names(node_count);
  cfg.fabric = FabricKind::kTcp;
  return cfg;
}

ClusterConfig ClusterConfig::simulated(int node_count, LinkModel link) {
  ClusterConfig cfg;
  cfg.nodes = default_names(node_count);
  cfg.fabric = FabricKind::kSim;
  cfg.link = link;
  return cfg;
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  DPS_CHECK(!config_.nodes.empty(), "cluster needs at least one node");
  const size_t n = config_.nodes.size();
  if (config_.external_fabric) {
    domain_ = std::make_unique<WallDomain>();
    fabric_ = config_.external_fabric;
  } else {
    switch (config_.fabric) {
      case ClusterConfig::FabricKind::kInproc:
        domain_ = std::make_unique<WallDomain>();
        fabric_ = std::make_unique<InprocFabric>(n);
        break;
      case ClusterConfig::FabricKind::kTcp:
        domain_ = std::make_unique<WallDomain>();
        fabric_ = std::make_unique<TcpFabric>(n);
        break;
      case ClusterConfig::FabricKind::kSim:
        domain_ = std::make_unique<SimDomain>(config_.sim_cpus_per_node);
        fabric_ = std::make_unique<SimFabric>(n, *domain_, config_.link);
        break;
    }
  }
  services_ = std::make_unique<NameRegistry>(*domain_);
  controllers_.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    controllers_.push_back(std::make_unique<Controller>(*this, i));
    Controller* c = controllers_.back().get();
    if (is_local(i)) {
      fabric_->attach(i,
                      [c](NodeMessage&& msg) { c->on_fabric(std::move(msg)); });
    }
  }
}

Cluster::~Cluster() { shutdown(); }

NodeId Cluster::node_id(const std::string& name) const {
  for (NodeId i = 0; i < config_.nodes.size(); ++i) {
    if (config_.nodes[i] == name) return i;
  }
  raise(Errc::kNotFound, "unknown node '" + name + "'");
}

const std::string& Cluster::node_name(NodeId node) const {
  DPS_CHECK(node < config_.nodes.size(), "node id out of range");
  return config_.nodes[node];
}

Controller& Cluster::controller(NodeId node) {
  DPS_CHECK(node < controllers_.size(), "node id out of range");
  return *controllers_[node];
}

AppId Cluster::register_app(Application* app) {
  std::lock_guard<std::mutex> lock(mu_);
  const AppId id = next_app_++;
  apps_.emplace(id, app);
  return id;
}

void Cluster::unregister_app(AppId id) {
  std::lock_guard<std::mutex> lock(mu_);
  apps_.erase(id);
}

Application* Cluster::app(AppId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = apps_.find(id);
  if (it == apps_.end()) {
    raise(Errc::kNotFound, "no application " + std::to_string(id) +
                               " on this cluster");
  }
  return it->second;
}

CollectionId Cluster::register_collection(
    std::shared_ptr<ThreadCollectionBase> collection) {
  std::lock_guard<std::mutex> lock(mu_);
  collections_.push_back(std::move(collection));
  return static_cast<CollectionId>(collections_.size() - 1);
}

ThreadCollectionBase* Cluster::collection(CollectionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= collections_.size()) {
    raise(Errc::kNotFound, "unknown thread collection " + std::to_string(id));
  }
  return collections_[id].get();
}

CallId Cluster::new_call_id() {
  return next_call_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<detail::CallState> Cluster::create_call(CallId id) {
  auto state = std::make_shared<detail::CallState>();
  state->domain = domain_.get();
  std::lock_guard<std::mutex> lock(mu_);
  calls_.emplace(id, state);
  return state;
}

void Cluster::complete_call(CallId id, Ptr<Token> result) {
  std::shared_ptr<detail::CallState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = calls_.find(id);
    if (it == calls_.end()) {
      DPS_WARN("stray result for unknown call " << id);
      return;
    }
    state = std::move(it->second);
    calls_.erase(it);
  }
  if (state->continuation) {
    // Graph-call vertices continue the client graph; must not block.
    auto continuation = std::move(state->continuation);
    continuation(std::move(result));
    return;
  }
  std::lock_guard<std::mutex> lock(state->mu);
  state->result = std::move(result);
  state->done = true;
  domain_->notify_all(state->wp);
}

void Cluster::claim_context(ContextId ctx, const void* claimant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = claims_.emplace(ctx, claimant);
  if (!inserted && it->second != claimant) {
    raise(Errc::kState,
          "tokens of one split context were routed to several merge "
          "threads; all tokens of a context must converge on one thread "
          "instance (check the merge's routing function)");
  }
}

void Cluster::release_context(ContextId ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  claims_.erase(ctx);
}

void Cluster::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_) return;
    down_ = true;
  }
  DPS_DEBUG("cluster shutting down");
  for (auto& c : controllers_) c->shutdown();
  fabric_->shutdown();
  // domain_ (and with it a simulation scheduler thread) stops when the
  // unique_ptr destroys it after the controllers and fabric are quiet.
}

}  // namespace dps
