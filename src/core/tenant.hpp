// Tenant model of the multi-tenant service layer (docs/SERVICE_MESH.md).
//
// Every Application is a tenant of the cluster it runs on. A tenant's
// TenantConfig bounds how much of the mesh its graph calls may occupy:
// an in-flight call budget (admission control), a private split–merge
// flow-control window, a queue-depth high-water mark (load shedding), and
// a default per-call deadline. All limits default to "off" so untouched
// applications behave exactly as before the mesh existed.
//
// Tenant records are published in the cluster's name registry (and through
// the TCP name server for multi-process kernels) under "tenant/<name>", so
// every kernel can discover the budgets before opening service calls.
#pragma once

#include <cstdio>
#include <string>

#include "core/ids.hpp"

namespace dps {

/// Per-tenant resource limits. Zero always means "no limit / inherit".
struct TenantConfig {
  /// Max graph calls the tenant may have in flight at once; the next call
  /// is shed with Error(kBackpressure). 0 = unlimited.
  uint32_t max_inflight = 0;
  /// Split–merge flow-control window for this tenant's contexts,
  /// replacing the cluster-wide ClusterConfig::flow_window. 0 = inherit.
  uint32_t flow_window = 0;
  /// Shed new calls while the target service's entry collection holds at
  /// least this many queued envelopes. 0 = never shed on depth.
  uint32_t queue_high_water = 0;
  /// Deadline armed on every call of this tenant, in milliseconds of the
  /// cluster's time domain (virtual under simulation). 0 = none.
  double default_deadline_ms = 0;
};

/// Name-registry prefix of tenant records ("tenant/<name>").
inline constexpr const char* kTenantRecordPrefix = "tenant/";

/// Record value published for one tenant; plain text so the TCP name
/// server ships it unchanged.
inline std::string encode_tenant_record(TenantId id, const TenantConfig& cfg) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%u %u %u %u %.17g", id, cfg.max_inflight,
                cfg.flow_window, cfg.queue_high_water,
                cfg.default_deadline_ms);
  return buf;
}

/// Parses a record produced by encode_tenant_record; false on malformed
/// input (callers treat that as "no such tenant").
inline bool decode_tenant_record(const std::string& record, TenantId* id,
                                 TenantConfig* cfg) {
  TenantId t = kNoTenant;
  TenantConfig c;
  if (std::sscanf(record.c_str(), "%u %u %u %u %lg", &t, &c.max_inflight,
                  &c.flow_window, &c.queue_high_water,
                  &c.default_deadline_ms) != 5) {
    return false;
  }
  *id = t;
  *cfg = c;
  return true;
}

}  // namespace dps
