// Operation base classes: leaf, split, merge, stream.
//
// "The nodes on the graph are user-written functions deriving from the
// elementary DPS operations: leaf operation, split operation, merge
// operation, and stream operation." (paper, section 2)
//
// A user operation names the thread class it runs on and its input/output
// token-type lists:
//
//   class SplitString : public SplitOperation<MainThread,
//                                             TV<StringToken>, TV<CharToken>> {
//    public:
//     void execute(StringToken* in) override {
//       for (int i = 0; i < n; ++i) postToken(new CharToken(in->str[i], i));
//     }
//     DPS_IDENTIFY_OPERATION(SplitString);
//   };
//
// Cardinality contracts (enforced by the engine, per the paper's model):
//   leaf:   exactly one postToken per execute;
//   split:  any number; DPS tracks the count so the matching merge knows
//           when it has collected everything;
//   merge:  consumes every token of its context through waitForNextToken
//           (which returns an empty Ptr once all have arrived) and posts
//           exactly one result;
//   stream: consumes like a merge but may postToken at any time, any count
//           — this is what pipelines successive split–merge constructs.
#pragma once

#include <string>
#include <type_traits>
#include <vector>

#include "core/ids.hpp"
#include "core/thread.hpp"
#include "core/typelist.hpp"
#include "serial/registry.hpp"
#include "sim/domain.hpp"
#include "util/error.hpp"

namespace dps {

namespace detail {

/// Engine services an operation execution runs against (implemented by the
/// controller's dispatch machinery).
class OpServices {
 public:
  virtual ~OpServices() = default;
  virtual void post(Ptr<Token> token) = 0;
  /// Posts one token to every listed destination thread of the successor
  /// collection (multicast collective). Split/stream only.
  virtual void post_multicast(Ptr<Token> token,
                              const std::vector<int>& threads) = 0;
  /// Releases the held-back last posted token immediately (split/stream
  /// only; see Operation::flushTokens below for the contract).
  virtual void flush_posted() = 0;
  virtual Ptr<Token> wait_next() = 0;
  virtual Thread* user_thread() = 0;
  virtual ExecDomain& domain() = 0;
  virtual int thread_index() const = 0;
  virtual int collection_size() const = 0;
};

}  // namespace detail

/// Type-erased operation base driven by the engine.
class Operation {
 public:
  Operation() = default;
  Operation(const Operation&) = delete;
  Operation& operator=(const Operation&) = delete;
  virtual ~Operation() = default;

  /// Dispatches the input token to the typed execute overload.
  virtual void run_erased(Token* input) = 0;

 public:
  /// Virtual time (or wall time) since the start of the run, seconds.
  double now() const { return services_->domain().now(); }

  /// Accounts modeled CPU cost for this operation (no-op under wall clock,
  /// advances the actor under virtual time). Use for calibrated kernels.
  void charge(double seconds) { services_->domain().charge(seconds); }

  /// Models a blocking delay, e.g. disk latency (really sleeps under wall
  /// clock, charges under virtual time).
  void sleepFor(double seconds) { services_->domain().sleep(seconds); }

  /// Index of the executing DPS thread within its collection, and the
  /// collection's size — the classic SPMD coordinates.
  int threadIndex() const { return services_->thread_index(); }
  int threadCount() const { return services_->collection_size(); }

 protected:
  void postTokenErased(Ptr<Token> token) {
    DPS_CHECK(services_ != nullptr, "postToken outside an execution");
    services_->post(std::move(token));
  }
  void postTokenMulticastErased(Ptr<Token> token,
                                const std::vector<int>& threads) {
    DPS_CHECK(services_ != nullptr,
              "postTokenMulticast outside an execution");
    services_->post_multicast(std::move(token), threads);
  }
  Ptr<Token> waitForNextTokenErased() {
    DPS_CHECK(services_ != nullptr, "waitForNextToken outside an execution");
    return services_->wait_next();
  }
  void flushTokensErased() {
    DPS_CHECK(services_ != nullptr, "flushTokens outside an execution");
    services_->flush_posted();
  }
  Thread* threadErased() const { return services_->user_thread(); }

 private:
  friend class Controller;
  detail::OpServices* services_ = nullptr;
};

namespace detail {

/// Generates one pure-virtual execute overload per declared input type and
/// a dynamic dispatcher over them.
template <class List>
class ExecDispatch;

template <>
class ExecDispatch<TV<>> {
 public:
  virtual ~ExecDispatch() = default;

 protected:
  void dispatch_input(Token* t) {
    raise(Errc::kTypeMismatch,
          "operation received token type '" + t->typeInfo().name +
              "' not in its input list");
  }
  // Anchor for the `using ... ::execute` chain in derived dispatchers.
  void execute();
};

template <class T, class... Rest>
class ExecDispatch<TV<T, Rest...>> : public ExecDispatch<TV<Rest...>> {
 public:
  using ExecDispatch<TV<Rest...>>::execute;
  virtual void execute(T* input) = 0;

 protected:
  void dispatch_input(Token* t) {
    if (auto* typed = dynamic_cast<T*>(t)) {
      execute(typed);
    } else {
      ExecDispatch<TV<Rest...>>::dispatch_input(t);
    }
  }
};

/// Common typed base parameterized by kind.
template <class ThreadT, class In, class Out, OpKind K>
class TypedOperation : public Operation, public ExecDispatch<In> {
  static_assert(std::is_base_of_v<Thread, ThreadT>,
                "first template parameter must be a dps::Thread subclass");
  static_assert(tl::all_tokens_v<In> && tl::all_tokens_v<Out>,
                "input/output lists must contain Token subclasses");
  static_assert(In::size > 0, "operations need at least one input type");

 public:
  using ThreadType = ThreadT;
  using InputList = In;
  using OutputList = Out;
  static constexpr OpKind kKind = K;

  void run_erased(Token* input) final { this->dispatch_input(input); }

  /// Emits an output token. Takes ownership (pass `new T(...)`, as in the
  /// paper, or a Ptr). The type must be in the declared output list.
  template <class T>
  void postToken(T* token) {
    static_assert(tl::contains_v<T, Out>,
                  "postToken: type is not in this operation's output list");
    postTokenErased(Ptr<Token>(token));
  }
  template <class T>
  void postToken(const Ptr<T>& token) {
    static_assert(tl::contains_v<T, Out>,
                  "postToken: type is not in this operation's output list");
    postTokenErased(token);
  }

  /// Multicast collective: posts `token` once to every thread index in
  /// `threads` of the successor collection (split/stream only). Counts as
  /// threads.size() posts toward the context total. The token object is
  /// SHARED by co-located destinations and by the encoder — receivers must
  /// treat it as read-only. Cross-node destinations get one encode into one
  /// pooled buffer and one frame per node (or per tree/ring hop, see
  /// ClusterConfig::mcast_topology).
  template <class T>
  void postTokenMulticast(T* token, const std::vector<int>& threads) {
    static_assert(tl::contains_v<T, Out>,
                  "postTokenMulticast: type is not in this operation's "
                  "output list");
    postTokenMulticastErased(Ptr<Token>(token), threads);
  }
  template <class T>
  void postTokenMulticast(const Ptr<T>& token,
                          const std::vector<int>& threads) {
    static_assert(tl::contains_v<T, Out>,
                  "postTokenMulticast: type is not in this operation's "
                  "output list");
    postTokenMulticastErased(token, threads);
  }

  /// The executing DPS thread's user state.
  ThreadT* thread() const { return static_cast<ThreadT*>(threadErased()); }
};

}  // namespace detail

/// Leaf operation: one input, exactly one output per execution.
template <class ThreadT, class In, class Out>
class LeafOperation
    : public detail::TypedOperation<ThreadT, In, Out, OpKind::kLeaf> {};

/// Split operation: one input, any number of outputs.
template <class ThreadT, class In, class Out>
class SplitOperation
    : public detail::TypedOperation<ThreadT, In, Out, OpKind::kSplit> {
 public:
  /// Releases the most recently posted token right now instead of letting
  /// it pipeline one post behind.
  ///
  /// The engine normally holds back each posted token until the next post
  /// (or until execute returns), because the LAST token of the context must
  /// carry the total count that tells the downstream merge when it is done.
  /// For throughput workloads the one-token delay is invisible, but a
  /// paced source (sleepFor between posts) would otherwise see every token
  /// delayed by a full pacing interval. Call flushTokens() after a post to
  /// ship it immediately.
  ///
  /// Contract: at least one more postToken must follow before execute
  /// returns — the engine needs a final un-flushed token to stamp the
  /// context total into, and raises Errc::kState otherwise. Only call this
  /// when you know the post was not the last one.
  void flushTokens() { this->flushTokensErased(); }
};

/// Merge operation: collects every token of its context, posts one result.
template <class ThreadT, class In, class Out>
class MergeOperation
    : public detail::TypedOperation<ThreadT, In, Out, OpKind::kMerge> {
 public:
  /// Next token of this merge context; empty when all tokens produced by
  /// the matching split have been delivered ("The programmer does not have
  /// to know how many data objects arrive at the merge operation").
  Ptr<Token> waitForNextToken() { return this->waitForNextTokenErased(); }
};

/// Stream operation: merge-like collection with split-like posting, the
/// construct that pipelines successive parallel phases (paper, section 3).
template <class ThreadT, class In, class Out>
class StreamOperation
    : public detail::TypedOperation<ThreadT, In, Out, OpKind::kStream> {
 public:
  Ptr<Token> waitForNextToken() { return this->waitForNextTokenErased(); }

  /// Same semantics and contract as SplitOperation::flushTokens: ship the
  /// held-back last post immediately; at least one more postToken must
  /// follow before execute returns.
  void flushTokens() { this->flushTokensErased(); }
};

namespace detail {

struct OperationTypeInfo {
  std::string name;
  OpKind kind = OpKind::kLeaf;
  Operation* (*create)() = nullptr;
  std::vector<uint64_t> input_type_ids;
  std::vector<uint64_t> output_type_ids;
  std::string thread_type_name;
};

class OperationTypeRegistry {
 public:
  static OperationTypeRegistry& instance();
  void add(const OperationTypeInfo* info);
  const OperationTypeInfo& find(const std::string& name) const;

 private:
  struct Impl;
  Impl& impl() const;
};

template <class T>
const OperationTypeInfo& register_operation(const char* name) {
  static_assert(std::is_base_of_v<Operation, T>,
                "DPS_IDENTIFY_OPERATION is for DPS operation classes");
  static_assert(std::is_default_constructible_v<T>,
                "operations are instantiated by the framework and need a "
                "default constructor");
  static const OperationTypeInfo info = [&] {
    OperationTypeInfo i;
    i.name = name;
    i.kind = T::kKind;
    i.create = []() -> Operation* { return new T(); };
    i.input_type_ids = tl::type_ids<typename T::InputList>::get();
    i.output_type_ids = tl::type_ids<typename T::OutputList>::get();
    i.thread_type_name = T::ThreadType::staticThreadInfo().name;
    return i;
  }();
  OperationTypeRegistry::instance().add(&info);
  return info;
}

}  // namespace detail
}  // namespace dps

/// Registers the enclosing operation class. Mirrors the paper's
/// IDENTIFYOPERATION(SplitString);
#define DPS_IDENTIFY_OPERATION(T)                                        \
 public:                                                                 \
  static const ::dps::detail::OperationTypeInfo& staticOperationInfo() { \
    static const ::dps::detail::OperationTypeInfo& info =                \
        ::dps::detail::register_operation<T>(#T);                        \
    return info;                                                         \
  }                                                                      \
                                                                         \
 private:                                                                \
  inline static const bool dps_operation_registered_ =                   \
      (T::staticOperationInfo(), true)
