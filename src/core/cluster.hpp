// Cluster: one run's nodes, fabric, time domain, and shared registries.
//
// A Cluster stands for the set of machines the paper's kernels run on. The
// deployment mode is chosen at construction:
//
//   * ClusterConfig::inproc(n)    — n thread-group nodes, serialized
//                                   in-memory channels, wall clock (the
//                                   paper's multi-kernel debug deployment);
//   * ClusterConfig::tcp(n)       — same nodes, real TCP sockets on
//                                   loopback, wall clock;
//   * ClusterConfig::simulated(n) — virtual time + modeled Gigabit
//                                   Ethernet; reproduces the paper's
//                                   8-node cluster timing on one core.
//
// Everything engine-level that is cluster-global lives here: node naming,
// the controllers, application and thread-collection registries, the
// graph-call table, the parallel-service name registry, and the
// merge-context claim diagnostics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/call.hpp"
#include "core/ids.hpp"
#include "core/mcast.hpp"
#include "core/tenant.hpp"
#include "net/fabric.hpp"
#include "util/thread_annotations.hpp"
#include "net/name_registry.hpp"
#include "sim/link.hpp"

namespace dps {

class Application;
class Controller;
class ThreadCollectionBase;

/// Fault-tolerance knobs (docs/FAULT_TOLERANCE.md). Both features are
/// wall-clock mechanisms and are ignored (with a warning) under virtual
/// time. Defaults are tuned for loopback/in-process latencies.
struct FaultToleranceConfig {
  /// Reliable envelope delivery: sequence numbers per (src,dst) link,
  /// cumulative acks piggybacked on traffic, retransmission with
  /// exponential backoff + jitter, duplicate suppression on receive.
  bool reliable = false;
  /// Heartbeat failure detection: nodes beacon each other; a silent node
  /// is declared dead and in-flight graph calls fail with Error(kNodeDown).
  bool heartbeat = false;

  double heartbeat_period = 0.02;   ///< seconds between beacons
  int heartbeat_miss = 5;           ///< silent periods before declared dead
  double rto_initial = 0.005;       ///< first retransmit timeout, seconds
  double rto_max = 0.2;             ///< backoff cap, seconds
  int max_retries = 12;             ///< retry budget before peer is suspect
  double tick_interval = 0.002;     ///< monitor thread granularity, seconds

  bool enabled() const { return reliable || heartbeat; }
};

struct ClusterConfig {
  enum class FabricKind { kInproc, kTcp, kSim, kShm };

  /// Worker-thread CPU affinity (docs/PERFORMANCE.md, "Core pinning").
  /// kNone leaves placement to the OS scheduler. kCompact pins workers to
  /// consecutive cores in spawn order (cache sharing between pipeline
  /// stages); kScatter strides them across the socket (memory-bandwidth
  /// bound stages). Linux only; a no-op elsewhere.
  enum class PinPolicy { kNone, kCompact, kScatter };

  std::vector<std::string> nodes;  ///< node names; size = node count
  FabricKind fabric = FabricKind::kInproc;
  LinkModel link = LinkModel::gigabit_ethernet();  ///< kSim only

  /// When set, overrides `fabric`: the cluster uses this transport (wall
  /// clock). Used by the multi-process SPMD runtime.
  std::shared_ptr<Fabric> external_fabric;

  /// Multi-process mode: only this node's workers live in this process;
  /// thread collections skip spawning for other nodes. Unset = all local.
  std::optional<NodeId> local_node;
  /// Split–merge flow-control window: max tokens in circulation between one
  /// split/stream execution and its merge (paper, "Flow control and load
  /// balancing"). Generous default; benchmarks sweep it explicitly.
  uint32_t flow_window = 1u << 16;

  /// Fan-out shape of postTokenMulticast collectives. kFlat (default)
  /// sends one frame per destination node directly from the poster and
  /// preserves per-link FIFO with unicast posts; kTree/kRing relay through
  /// receiving nodes (O(log K)/O(K) hops) and may interleave with unicast
  /// traffic — only safe for order-insensitive graphs.
  McastTopology mcast_topology = McastTopology::kFlat;

  /// Adaptive split flow-control window (core/flow_adapt.hpp): each
  /// split's window moves between 1 and the tenant ceiling from measured
  /// credit round trips and receiver queue depths. Off = static window.
  bool adaptive_flow = false;

  /// Virtual-time mode: processor slots per node. The paper's cluster is
  /// made of bi-processor Pentium III machines.
  int sim_cpus_per_node = 2;

  /// Reliable delivery + failure detection (off by default: fault-free
  /// fabrics pay zero overhead and keep their exact frame accounting).
  FaultToleranceConfig fault;

  /// Worker CPU affinity policy; see PinPolicy. The resulting pinning map
  /// is exported through Controller::worker_pinning() and svc stats.
  PinPolicy pin_workers = PinPolicy::kNone;

  /// Idle workers steal dispatchable work from sibling workers of the same
  /// collection (core/run_queue.hpp). Off by default: stealing moves a
  /// token to a different thread index than its route chose, which is only
  /// sound for load-balanced routes — content-addressed routes (a merge's
  /// context affinity, hash routing) must keep it off.
  bool work_stealing = false;

  /// Leaf-compute backend for this process (compute/backend.hpp): the
  /// cluster constructor forwards a non-empty name to
  /// compute::set_default_backend(), overriding env DPS_LEAF. Kernel
  /// families that don't register the name keep their own default (e.g.
  /// "lut" for the Life stepper). Process-wide, like DPS_LEAF: the last
  /// constructed cluster with a non-empty name wins.
  std::string leaf_backend;

  static ClusterConfig inproc(int node_count);
  static ClusterConfig tcp(int node_count);
  static ClusterConfig simulated(
      int node_count, LinkModel link = LinkModel::gigabit_ethernet());
  /// Several-kernels-on-one-host mode over the shared-memory fabric
  /// (net/shm_fabric.hpp): real /dev/shm rings between thread-group nodes.
  /// Throws Error(kNetwork) when shm is unavailable (probe shm_available()).
  static ClusterConfig shm(int node_count);
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  ExecDomain& domain() { return *domain_; }
  Fabric& fabric() { return *fabric_; }
  bool simulated() const { return config_.fabric == ClusterConfig::FabricKind::kSim; }
  uint32_t flow_window() const { return config_.flow_window; }
  const ClusterConfig& config() const { return config_; }

  // --- failure detection (docs/FAULT_TOLERANCE.md) --------------------------
  /// Whether the fault-tolerance layer is running (configured and not
  /// under virtual time).
  bool fault_tolerant() const { return ft_active_; }

  /// Declares `node` failed: records it, fails every in-flight graph call
  /// with Error(kNodeDown), and unblocks local flow-control waiters so no
  /// thread hangs on traffic that will never arrive. Called by the failure
  /// detector; also callable by tests/operators.
  void mark_node_down(NodeId node, const std::string& reason);

  bool node_down(NodeId node) const;
  std::vector<NodeId> dead_nodes() const;

  size_t node_count() const { return config_.nodes.size(); }

  /// Whether `node`'s workers live in this process (always true outside
  /// multi-process mode).
  bool is_local(NodeId node) const {
    return !config_.local_node.has_value() || *config_.local_node == node;
  }

  NodeId node_id(const std::string& name) const;
  const std::string& node_name(NodeId node) const;
  Controller& controller(NodeId node);

  /// Cluster-wide worker spawn sequence for ClusterConfig::pin_workers:
  /// every engine worker of every (in-process) node draws one slot, so the
  /// pinning formulas distribute across the whole process, not per node.
  int next_pin_seq() { return pin_seq_.fetch_add(1, std::memory_order_relaxed); }

  /// Parallel-service registry (published flow graphs), the in-process
  /// equivalent of the paper's name server.
  NameRegistry& services() { return *services_; }

  // --- tenants (docs/SERVICE_MESH.md) ---------------------------------------
  /// Registers (or finds) the tenant named `name` and publishes its record
  /// under "tenant/<name>" in the service registry. Idempotent by name: a
  /// client re-joining the mesh (tenant churn) reuses its identity and
  /// keeps its configured budgets — the config passed on re-registration
  /// is ignored.
  TenantId register_tenant(const std::string& name,
                           const TenantConfig& config = {});

  /// Replaces a tenant's limits; applies to calls admitted afterwards.
  void set_tenant_config(TenantId tenant, const TenantConfig& config);

  /// Current limits of `tenant`; kNoTenant (and unknown ids) resolve to
  /// the all-defaults config (unlimited budget, cluster flow window).
  TenantConfig tenant_config(TenantId tenant) const;

  std::string tenant_name(TenantId tenant) const;

  // --- applications ---------------------------------------------------------
  AppId register_app(Application* app);
  void unregister_app(AppId id);
  Application* app(AppId id) const;  // throws kNotFound when absent

  // --- thread collections ---------------------------------------------------
  /// Takes shared ownership: collections must outlive in-flight envelopes,
  /// so the cluster keeps them alive until it is destroyed.
  CollectionId register_collection(
      std::shared_ptr<ThreadCollectionBase> collection);
  ThreadCollectionBase* collection(CollectionId id) const;

  // --- graph calls ----------------------------------------------------------
  CallId new_call_id();
  std::shared_ptr<detail::CallState> create_call(CallId id);
  void complete_call(CallId id, Ptr<Token> result);

  /// Arms a deadline for call `id`: after `seconds` of this cluster's time
  /// domain (virtual under simulation) the call — if still outstanding —
  /// fails with Error(kDeadlineExceeded) and its admission slot retires.
  /// Late results for an expired call are dropped as stray.
  void arm_deadline(CallId id, double seconds);

  /// Records that the call behind `state` holds one admission slot of
  /// `tenant` on `node`'s controller, so every completion path (result,
  /// node-down, deadline) returns it. A call created pre-failed (degraded
  /// cluster) has no completion path; its slot is returned here instead.
  void bind_admission(detail::CallState& state, TenantId tenant, NodeId node);

  /// Deadline expiry path (also callable by tests): fails call `id` with
  /// kDeadlineExceeded if it is still in the call table. No-op otherwise.
  void expire_call(CallId id);

  // --- merge-context claim diagnostics --------------------------------------
  /// Registers that `claimant` (an engine worker) collects context `ctx`;
  /// throws Error(kState) if a different worker already does — the symptom
  /// of a routing function scattering one context over several threads.
  void claim_context(ContextId ctx, const void* claimant);
  void release_context(ContextId ctx);

  /// Stops workers and transports. Called by the destructor; may be called
  /// earlier (idempotent).
  void shutdown();

 private:
  void fail_all_calls(Errc code, const std::string& message);
  /// Clears the call's admitted flag and returns its admission slot to the
  /// home controller. Exactly-once by construction (flag test under the
  /// state's lock); every call-completion path funnels through here.
  void retire_admission(detail::CallState& state, bool deadline_expired);
  void monitor_loop();

  /// Rendezvous between deadline timer events and shutdown: events enter
  /// the gate before touching the cluster; close() blocks until in-flight
  /// events leave and turns every later one into a no-op, so a timer can
  /// never fire into a destructed cluster.
  struct DeadlineGate {
    Mutex mu;
    CondVar cv;
    bool closed DPS_GUARDED_BY(mu) = false;
    int active DPS_GUARDED_BY(mu) = 0;
    bool enter();
    void leave();
    void close();
  };

  /// One registered tenant (id = index + 1).
  struct TenantRec {
    std::string name;
    TenantConfig config;
  };

  ClusterConfig config_;
  std::unique_ptr<ExecDomain> domain_;
  std::shared_ptr<Fabric> fabric_;
  std::unique_ptr<NameRegistry> services_;
  std::vector<std::unique_ptr<Controller>> controllers_;

  // Fault-tolerance driver: one wall-clock thread per cluster sending
  // heartbeats, running retransmit timers, and adjudicating node death.
  bool ft_active_ = false;
  std::thread monitor_;
  Mutex monitor_mu_;
  CondVar monitor_cv_;
  bool monitor_stop_ DPS_GUARDED_BY(monitor_mu_) = false;
  std::set<NodeId> dead_ DPS_GUARDED_BY(mu_);

  std::shared_ptr<DeadlineGate> deadline_gate_ =
      std::make_shared<DeadlineGate>();

  mutable Mutex tenant_mu_;
  std::vector<TenantRec> tenants_ DPS_GUARDED_BY(tenant_mu_);

  mutable Mutex mu_;
  std::unordered_map<AppId, Application*> apps_ DPS_GUARDED_BY(mu_);
  AppId next_app_ DPS_GUARDED_BY(mu_) = 1;
  std::vector<std::shared_ptr<ThreadCollectionBase>> collections_
      DPS_GUARDED_BY(mu_);
  std::atomic<uint64_t> next_call_{1};
  std::atomic<int> pin_seq_{0};
  std::unordered_map<CallId, std::shared_ptr<detail::CallState>> calls_
      DPS_GUARDED_BY(mu_);
  std::unordered_map<ContextId, const void*> claims_ DPS_GUARDED_BY(mu_);
  bool down_ DPS_GUARDED_BY(mu_) = false;
};

}  // namespace dps
