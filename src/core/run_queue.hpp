// RunQueue: the worker's indexed pending-envelope structure.
//
// The engine's token-delivery hot path is two-phase (see controller.cpp):
// producers append envelopes to a worker's MPSC *inbox* under a short lock,
// and the owning worker thread drains the inbox in batch into this
// structure. Three intrusive lists over one node slab make every query O(1):
//
//   - a global FIFO of all pending envelopes (top-level worker_loop order),
//   - per-(vertex, context) buckets, so a merge/stream collection waiting
//     in waitForNextToken finds its next input by bucket lookup instead of
//     scanning the whole queue,
//   - per-tenant FIFOs of *dispatchable* envelopes — those safe to execute
//     re-entrantly while a collection waits (anything that does not start
//     a merge/stream collection; see find-dispatchable rationale in
//     controller.cpp). pop_dispatchable round-robins across the tenants
//     with pending work, so one tenant flooding a worker cannot starve the
//     re-entrant dispatch of the others (docs/SERVICE_MESH.md); within one
//     tenant the order stays FIFO, which preserves same-context ordering
//     (all tokens of a context share their call's tenant).
//
// An envelope that starts a collection is keyed into exactly one bucket;
// every other envelope is on its tenant's dispatchable list; all envelopes
// are on the global FIFO. Links are slab indices (stable across vector
// growth), and freed nodes recycle through a free list, so steady-state
// operation allocates nothing.
//
// Threading: the queue is owned by one worker thread, but when work
// stealing is enabled (ClusterConfig::work_stealing) idle sibling workers
// call steal_context() concurrently with the owner's operations, so every
// method serializes on an internal mutex. The owner is the only pusher and
// the dominant popper; the lock is uncontended unless a thief is active.
//
// steal_context takes work at *context* granularity: it picks the oldest
// dispatchable envelope and extracts a FIFO prefix of its (vertex,
// context) run. Only dispatchable envelopes are ever stolen — bucketed
// merge/stream openers keep their claim/re-entrancy semantics — and the
// extraction removes nodes through the same unlink paths as pop_*, so the
// victim's tenant round-robin and per-context FIFO of what remains are
// untouched: everything left behind is strictly newer than what was taken.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/envelope.hpp"
#include "util/thread_annotations.hpp"

namespace dps {

class RunQueue {
 public:
  bool empty() const {
    MutexLock lock(mu_);
    return size_ == 0;
  }
  size_t size() const {
    MutexLock lock(mu_);
    return size_;
  }
  bool has_dispatchable() const {
    MutexLock lock(mu_);
    return disp_count_ != 0;
  }
  size_t dispatchable_count() const {
    MutexLock lock(mu_);
    return disp_count_;
  }

  /// Appends `env`. `dispatchable` says whether the envelope may run
  /// re-entrantly under a waiting collection; when false it is bucketed
  /// under (env.vertex, input context) for O(1) merge matching.
  void push(Envelope&& env, bool dispatchable) {
    MutexLock lock(mu_);
    const uint32_t n = alloc();
    Node& node = slab_[n];
    node.env = std::move(env);
    node.dispatchable = dispatchable;
    node.key = key_of(node.env);
    node.stamp = next_stamp_++;
    link_back(n, &global_head_, &global_tail_, &Node::gprev, &Node::gnext);
    if (dispatchable) {
      node.tq = tenant_queue(node.env.tenant);
      TenantQ& tq = tqs_[node.tq];
      link_back(n, &tq.head, &tq.tail, &Node::sprev, &Node::snext);
      ++disp_count_;
    } else {
      Bucket& b = buckets_[node.key];
      link_back(n, &b.head, &b.tail, &Node::sprev, &Node::snext);
    }
    ++size_;
  }

  /// Oldest pending envelope regardless of kind (top-level dispatch order).
  bool pop_front(Envelope* out) {
    MutexLock lock(mu_);
    return take(global_head_, out);
  }

  /// Oldest pending input of collection (vertex, ctx); FIFO per context.
  bool pop_context(VertexId vertex, ContextId ctx, Envelope* out) {
    MutexLock lock(mu_);
    const auto it = buckets_.find(Key{vertex, ctx});
    if (it == buckets_.end()) return false;
    return take(it->second.head, out);
  }

  /// Next envelope safe for re-entrant dispatch: round-robin across the
  /// tenants with pending dispatchable work, FIFO within each tenant.
  bool pop_dispatchable(Envelope* out) {
    MutexLock lock(mu_);
    if (disp_count_ == 0) return false;
    const size_t k = tqs_.size();
    for (size_t i = 0; i < k; ++i) {
      const size_t qi = (rr_next_ + i) % k;
      if (tqs_[qi].head != kNil) {
        rr_next_ = (qi + 1) % k;  // the next tenant gets the next turn
        return take(tqs_[qi].head, out);
      }
    }
    return false;  // unreachable while disp_count_ is maintained
  }

  /// Work stealing (called by an idle sibling worker): removes up to
  /// `max_envelopes` dispatchable envelopes of the *oldest* pending
  /// (vertex, context) run, in FIFO order, and appends them to `out`.
  /// Returns the number stolen. The thief must execute them in the
  /// returned order; envelopes left behind are all newer than the ones
  /// taken, so per-context relative order survives the split. Bucketed
  /// (merge/stream-opening) envelopes are never stolen.
  size_t steal_context(std::vector<Envelope>* out, size_t max_envelopes) {
    MutexLock lock(mu_);
    if (disp_count_ == 0 || max_envelopes == 0) return 0;
    // Oldest dispatchable envelope overall: each tenant FIFO is
    // stamp-ordered, so the minimum over the heads is the global minimum.
    uint32_t oldest = kNil;
    for (const TenantQ& tq : tqs_) {
      if (tq.head == kNil) continue;
      if (oldest == kNil || slab_[tq.head].stamp < slab_[oldest].stamp) {
        oldest = tq.head;
      }
    }
    if (oldest == kNil) return 0;
    const Key key = slab_[oldest].key;
    const uint32_t tqi = slab_[oldest].tq;
    size_t stolen = 0;
    uint32_t n = tqs_[tqi].head;
    while (n != kNil && stolen < max_envelopes) {
      const uint32_t next = slab_[n].snext;
      if (slab_[n].key == key) {
        out->emplace_back();
        take(n, &out->back());
        ++stolen;
      }
      n = next;
    }
    return stolen;
  }

 private:
  static constexpr uint32_t kNil = UINT32_MAX;

  struct Key {
    VertexId vertex;
    ContextId ctx;
    bool operator==(const Key& o) const {
      return vertex == o.vertex && ctx == o.ctx;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // splitmix-style combine; contexts are globally unique already.
      uint64_t h = k.ctx + 0x9e3779b97f4a7c15ULL * (k.vertex + 1);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      return static_cast<size_t>(h);
    }
  };
  struct Bucket {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };
  /// One tenant's dispatchable FIFO. Slots persist once created (bounded
  /// by the number of distinct tenants this worker ever saw — small).
  struct TenantQ {
    TenantId tenant = kNoTenant;
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };
  struct Node {
    Envelope env;
    Key key{0, 0};
    uint64_t stamp = 0;  ///< push order, for oldest-context steal choice
    bool dispatchable = false;
    uint32_t tq = 0;                      ///< index into tqs_ (dispatchable)
    uint32_t gprev = kNil, gnext = kNil;  ///< global FIFO links
    uint32_t sprev = kNil, snext = kNil;  ///< bucket or tenant-FIFO links
  };

  static Key key_of(const Envelope& e) {
    return Key{e.vertex, e.frames.empty() ? 0 : e.frames.back().context};
  }

  /// Index of tenant `t`'s dispatchable FIFO, created on first use. Linear
  /// scan: a worker serves a handful of tenants, and the scan only runs on
  /// the push path.
  uint32_t tenant_queue(TenantId t) DPS_REQUIRES(mu_) {
    for (uint32_t i = 0; i < tqs_.size(); ++i) {
      if (tqs_[i].tenant == t) return i;
    }
    tqs_.push_back(TenantQ{t, kNil, kNil});
    return static_cast<uint32_t>(tqs_.size() - 1);
  }

  uint32_t alloc() DPS_REQUIRES(mu_) {
    if (free_head_ != kNil) {
      const uint32_t n = free_head_;
      free_head_ = slab_[n].gnext;
      return n;
    }
    slab_.emplace_back();
    return static_cast<uint32_t>(slab_.size() - 1);
  }

  void link_back(uint32_t n, uint32_t* head, uint32_t* tail,
                 uint32_t Node::* prev, uint32_t Node::* next)
      DPS_REQUIRES(mu_) {
    Node& node = slab_[n];
    node.*prev = *tail;
    node.*next = kNil;
    if (*tail != kNil) {
      slab_[*tail].*next = n;
    } else {
      *head = n;
    }
    *tail = n;
  }

  void unlink(uint32_t n, uint32_t* head, uint32_t* tail,
              uint32_t Node::* prev, uint32_t Node::* next)
      DPS_REQUIRES(mu_) {
    Node& node = slab_[n];
    if (node.*prev != kNil) {
      slab_[node.*prev].*next = node.*next;
    } else {
      *head = node.*next;
    }
    if (node.*next != kNil) {
      slab_[node.*next].*prev = node.*prev;
    } else {
      *tail = node.*prev;
    }
  }

  /// Removes node `n` from all lists, moves its envelope to `out`, and
  /// recycles the slot. Returns false when n == kNil (empty list).
  bool take(uint32_t n, Envelope* out) DPS_REQUIRES(mu_) {
    if (n == kNil) return false;
    Node& node = slab_[n];
    unlink(n, &global_head_, &global_tail_, &Node::gprev, &Node::gnext);
    if (node.dispatchable) {
      TenantQ& tq = tqs_[node.tq];
      unlink(n, &tq.head, &tq.tail, &Node::sprev, &Node::snext);
      --disp_count_;
    } else {
      const auto it = buckets_.find(node.key);
      unlink(n, &it->second.head, &it->second.tail, &Node::sprev,
             &Node::snext);
      if (it->second.head == kNil) buckets_.erase(it);
    }
    *out = std::move(node.env);
    node.env = Envelope{};  // drop the token reference eagerly
    node.gnext = free_head_;  // free list reuses the gnext link
    free_head_ = n;
    --size_;
    return true;
  }

  mutable Mutex mu_;
  std::vector<Node> slab_ DPS_GUARDED_BY(mu_);
  std::unordered_map<Key, Bucket, KeyHash> buckets_ DPS_GUARDED_BY(mu_);
  std::vector<TenantQ> tqs_ DPS_GUARDED_BY(mu_);  ///< per-tenant FIFOs
  size_t rr_next_ DPS_GUARDED_BY(mu_) = 0;   ///< round-robin cursor
  size_t disp_count_ DPS_GUARDED_BY(mu_) = 0;  ///< dispatchable pending
  uint64_t next_stamp_ DPS_GUARDED_BY(mu_) = 0;
  uint32_t global_head_ DPS_GUARDED_BY(mu_) = kNil;
  uint32_t global_tail_ DPS_GUARDED_BY(mu_) = kNil;
  uint32_t free_head_ DPS_GUARDED_BY(mu_) = kNil;
  size_t size_ DPS_GUARDED_BY(mu_) = 0;
};

}  // namespace dps
