// Token-type lists for compile-time flow-graph checking.
//
// Every operation declares the token types it accepts and emits:
//
//   class ToUpperCase : public LeafOperation<ComputeThread,
//                                            TV<CharToken>, TV<CharToken>> ...
//
// The paper writes TV1(CharToken) / TV2(A,B); those macros are provided as
// aliases. FlowgraphBuilder's operator>> uses the lists to reject
// incompatible sequences at compile time ("The operator >> generates
// compile time errors when two incompatible operations are linked
// together").
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "serial/registry.hpp"

namespace dps {

/// A list of token types.
template <class... Ts>
struct TV {
  static constexpr size_t size = sizeof...(Ts);
};

// Paper-style arity-named aliases.
#define TV1(a) ::dps::TV<a>
#define TV2(a, b) ::dps::TV<a, b>
#define TV3(a, b, c) ::dps::TV<a, b, c>
#define TV4(a, b, c, d) ::dps::TV<a, b, c, d>

namespace tl {

/// contains_v<T, TV<...>>: membership test.
template <class T, class List>
struct contains : std::false_type {};
template <class T, class... Ts>
struct contains<T, TV<Ts...>>
    : std::bool_constant<(std::is_same_v<T, Ts> || ...)> {};
template <class T, class List>
inline constexpr bool contains_v = contains<T, List>::value;

/// intersects_v<TV<...>, TV<...>>: true when the lists share a type.
template <class A, class B>
struct intersects : std::false_type {};
template <class... As, class B>
struct intersects<TV<As...>, B>
    : std::bool_constant<(contains_v<As, B> || ...)> {};
template <class A, class B>
inline constexpr bool intersects_v = intersects<A, B>::value;

/// all_tokens_v: every element derives from Token.
template <class List>
struct all_tokens : std::false_type {};
template <class... Ts>
struct all_tokens<TV<Ts...>>
    : std::bool_constant<(std::is_base_of_v<Token, Ts> && ...)> {};
template <class List>
inline constexpr bool all_tokens_v = all_tokens<List>::value;

/// Runtime ids of every type in the list (forces registration).
template <class List>
struct type_ids;
template <class... Ts>
struct type_ids<TV<Ts...>> {
  static std::vector<uint64_t> get() {
    return {Ts::staticTypeInfo().id...};
  }
};

}  // namespace tl
}  // namespace dps
