#include "core/checkpoint.hpp"

#include "core/cluster.hpp"
#include "core/controller.hpp"
#include "core/thread_collection.hpp"

namespace dps {

namespace {
constexpr uint32_t kImageMagic = 0x44505343;  // "DPSC"
constexpr uint8_t kRecord = 1;
constexpr uint8_t kEnd = 0;
}  // namespace

std::vector<std::byte> checkpoint_cluster(Cluster& cluster) {
  Writer w;
  w.put(kImageMagic);
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    if (!cluster.is_local(n)) continue;
    cluster.controller(n).checkpoint_workers(w);
  }
  w.put(kEnd);
  return w.take();
}

void restore_cluster(Cluster& cluster, const std::vector<std::byte>& image) {
  Reader r(image.data(), image.size());
  if (r.get<uint32_t>() != kImageMagic) {
    raise(Errc::kProtocol, "not a DPS checkpoint image");
  }
  for (;;) {
    const uint8_t marker = r.get<uint8_t>();
    if (marker == kEnd) break;
    if (marker != kRecord) {
      raise(Errc::kProtocol, "corrupt checkpoint record marker");
    }
    const CollectionId collection = r.get<CollectionId>();
    const ThreadIndex index = r.get<ThreadIndex>();
    uint32_t len = 0;
    const std::byte* payload = r.get_bytes(&len);
    const NodeId node = cluster.collection(collection)->node_of(index);
    if (!cluster.is_local(node)) continue;  // other process restores it
    Reader pr(payload, len);
    cluster.controller(node).restore_worker(collection, index, pr);
  }
}

}  // namespace dps
