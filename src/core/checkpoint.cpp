#include "core/checkpoint.hpp"

#include <algorithm>

#include "core/cluster.hpp"
#include "core/controller.hpp"
#include "core/thread_collection.hpp"

namespace dps {

namespace {
constexpr uint32_t kImageMagic = 0x44505343;  // "DPSC"
constexpr uint8_t kRecord = 1;
constexpr uint8_t kEnd = 0;
}  // namespace

std::vector<std::byte> checkpoint_cluster(Cluster& cluster) {
  Writer w;
  w.put(kImageMagic);
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    if (!cluster.is_local(n)) continue;
    cluster.controller(n).checkpoint_workers(w);
  }
  w.put(kEnd);
  return w.take();
}

void restore_cluster(Cluster& cluster, const std::vector<std::byte>& image) {
  Reader r(image.data(), image.size());
  if (r.get<uint32_t>() != kImageMagic) {
    raise(Errc::kProtocol, "not a DPS checkpoint image");
  }
  for (;;) {
    const uint8_t marker = r.get<uint8_t>();
    if (marker == kEnd) break;
    if (marker != kRecord) {
      raise(Errc::kProtocol, "corrupt checkpoint record marker");
    }
    const CollectionId collection = r.get<CollectionId>();
    const ThreadIndex index = r.get<ThreadIndex>();
    uint32_t len = 0;
    const std::byte* payload = r.get_bytes(&len);
    const NodeId node = cluster.collection(collection)->node_of(index);
    if (!cluster.is_local(node)) continue;  // other process restores it
    Reader pr(payload, len);
    cluster.controller(node).restore_worker(collection, index, pr);
  }
}

ClusterConfig degraded_config(const Cluster& failed) {
  const std::vector<NodeId> dead = failed.dead_nodes();
  if (dead.empty()) {
    raise(Errc::kState,
          "degraded_config: the cluster has no dead nodes to exclude");
  }
  ClusterConfig cfg = failed.config();
  std::vector<std::string> survivors;
  for (NodeId i = 0; i < cfg.nodes.size(); ++i) {
    if (std::find(dead.begin(), dead.end(), i) == dead.end()) {
      survivors.push_back(cfg.nodes[i]);
    }
  }
  if (survivors.empty()) {
    raise(Errc::kState, "degraded_config: no surviving nodes");
  }
  cfg.nodes = std::move(survivors);
  cfg.external_fabric.reset();  // sized for the failed cluster's node count
  cfg.local_node.reset();       // old numbering is meaningless after remap
  return cfg;
}

void recover_cluster(Cluster& fresh, const std::vector<std::byte>& image) {
  if (!fresh.dead_nodes().empty()) {
    raise(Errc::kState,
          "recover_cluster: the recovery cluster already has dead nodes");
  }
  restore_cluster(fresh, image);
}

}  // namespace dps
