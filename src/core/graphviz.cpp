#include "core/graphviz.hpp"

#include <sstream>

#include "core/thread_collection.hpp"

namespace dps {

namespace {

const char* shape_of(OpKind kind) {
  switch (kind) {
    case OpKind::kSplit: return "trapezium";
    case OpKind::kMerge: return "invtrapezium";
    case OpKind::kStream: return "hexagon";
    case OpKind::kLeaf: return "box";
    case OpKind::kGraphCall: return "component";
  }
  return "box";
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const Flowgraph& graph) {
  std::ostringstream os;
  os << "digraph \"" << escape(graph.name()) << "\" {\n";
  os << "  rankdir=LR;\n";
  os << "  node [fontname=\"Helvetica\", fontsize=10];\n";
  for (VertexId v = 0; v < graph.vertex_count(); ++v) {
    const Flowgraph::Vertex& vx = graph.vertex(v);
    std::string label;
    if (vx.kind == OpKind::kGraphCall) {
      label = "call " + vx.service_name;
    } else {
      label = vx.op->name;
    }
    label += "\\n(" + std::string(to_string(vx.kind)) + " @ " +
             vx.collection->name() + "[" +
             std::to_string(vx.collection->size()) + "])";
    os << "  v" << v << " [label=\"" << escape(label) << "\", shape="
       << shape_of(vx.kind) << (v == graph.entry() ? ", penwidth=2" : "")
       << "];\n";
  }
  for (VertexId v = 0; v < graph.vertex_count(); ++v) {
    for (VertexId s : graph.vertex(v).successors) {
      // Label the edge with the token types the successor accepts from us.
      std::string types;
      for (uint64_t in : graph.vertex(s).input_type_ids) {
        for (uint64_t out : graph.vertex(v).output_type_ids) {
          if (in == out) {
            if (!TokenRegistry::instance().contains(in)) continue;
            if (!types.empty()) types += ", ";
            types += TokenRegistry::instance().find(in).name;
          }
        }
      }
      os << "  v" << v << " -> v" << s;
      if (!types.empty()) os << " [label=\"" << escape(types) << "\"]";
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace dps
