// Graphviz export of flow graphs.
//
// "The flow graph (acyclic directed graph) represents the parallel program
// execution pattern. It can be easily visualized and represents therefore a
// valuable tool for thinking and experimenting with different
// parallelization strategies." (paper, section 6)
//
// to_dot() renders a built graph in DOT: one record per vertex showing the
// operation, its kind, and the thread collection (with its mapping), plus
// the accepted token types on each edge.
#pragma once

#include <string>

#include "core/flowgraph.hpp"

namespace dps {

/// DOT (Graphviz) rendering of a validated flow graph.
std::string to_dot(const Flowgraph& graph);

}  // namespace dps
