// Thread collections: named groups of DPS threads mapped onto nodes.
//
// "Developers instantiate collections of threads. ... The mapping of the
// threads of a thread collection onto nodes is specified by using a string
// containing the names of the nodes separated by spaces, with an optional
// multiplier" (paper, sections 2–3):
//
//   auto compute = app.thread_collection<ComputeThread>("proc");
//   compute->map("node0*2 node1");
//
// map() parses the string, resolves node names through the cluster, and
// spawns one engine worker (OS thread + mailbox + user Thread instance) per
// index on its home node — thread collections and mappings are created
// dynamically at run time, the core of the paper's "dynamicity".
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/thread.hpp"

namespace dps {

class Application;

class ThreadCollectionBase {
 public:
  virtual ~ThreadCollectionBase();

  const std::string& name() const { return name_; }
  CollectionId id() const { return id_; }
  const std::string& thread_type() const { return thread_type_; }

  /// Places and spawns the collection's threads. May be called once.
  void map(const std::string& mapping);

  bool mapped() const { return !placement_.empty(); }
  int size() const { return static_cast<int>(placement_.size()); }
  NodeId node_of(ThreadIndex index) const;

  /// Mailbox depth estimates per thread, for load-balancing routes.
  const std::atomic<uint32_t>* queue_depths() const {
    return depths_.get();
  }
  std::atomic<uint32_t>* mutable_queue_depths() { return depths_.get(); }

 protected:
  ThreadCollectionBase(Application& app, std::string name,
                       const detail::ThreadTypeInfo& type);

 private:
  friend class Application;  // assigns id_ at registration

  Application& app_;
  std::string name_;
  std::string thread_type_;
  const detail::ThreadTypeInfo& type_;
  CollectionId id_ = 0;
  std::vector<NodeId> placement_;
  std::unique_ptr<std::atomic<uint32_t>[]> depths_;
};

/// Typed collection; T is the user's dps::Thread subclass.
template <class T>
class ThreadCollection : public ThreadCollectionBase {
  static_assert(std::is_base_of_v<Thread, T>,
                "ThreadCollection<T> requires a dps::Thread subclass");

 public:
  using ThreadType = T;

  ThreadCollection(Application& app, std::string name)
      : ThreadCollectionBase(app, std::move(name), T::staticThreadInfo()) {}
};

}  // namespace dps
