// Metrics registry: named counters, gauges, and histograms with cheap
// lock-free updates and a consistent point-in-time snapshot.
//
// Companion of the flight recorder (obs/trace.hpp): the trace answers
// "what happened, in what order", the metrics answer "how much, how often".
// Engine instrumentation sites update both behind the DPS_TRACE compile
// toggle; the registry itself is always available so tests and tools can
// define their own series.
//
// Instruments registered once never move: `counter("x")` returns a stable
// reference that call sites may cache in a function-local static. reset()
// zeroes values but never invalidates references.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dps::obs {

class Counter {
 public:
  void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  /// Highest value ever set through update_max (retransmit bursts, queue
  /// high-water marks).
  void update_max(int64_t v) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t max_value() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
  std::atomic<int64_t> max_{0};
};

/// Power-of-two histogram: observation v lands in bucket floor(log2(v))+1
/// (bucket 0 holds v == 0). Covers the full u64 range in 65 buckets —
/// coarse, allocation-free, and mergeable.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void observe(uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  static int bucket_of(uint64_t v) {
    if (v == 0) return 0;
    return 64 - __builtin_clzll(v) ;
  }
  /// Inclusive upper bound of a bucket (UINT64_MAX for the last).
  static uint64_t bucket_bound(int bucket);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double mean() const {
    const uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }
  /// Upper bound of the bucket containing the q-quantile (q in [0,1]).
  uint64_t quantile_bound(double q) const;

  void reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// One registry entry in a snapshot.
struct MetricValue {
  enum class Type { kCounter, kGauge, kHistogram } type = Type::kCounter;
  uint64_t counter = 0;
  int64_t gauge = 0;
  int64_t gauge_max = 0;
  uint64_t hist_count = 0;
  uint64_t hist_sum = 0;
  std::vector<uint64_t> hist_buckets;  ///< non-empty only for histograms
};

struct MetricsSnapshot {
  uint64_t t_ns = 0;  ///< monotonic capture time
  std::map<std::string, MetricValue> values;

  uint64_t counter(const std::string& name) const;
  int64_t gauge(const std::string& name) const;
  bool has(const std::string& name) const {
    return values.count(name) != 0;
  }
};

class Metrics {
 public:
  static Metrics& instance();

  /// Find-or-create; the returned reference is valid forever. Requesting an
  /// existing name with a different instrument type throws Error(kState).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument (references stay valid). Test isolation.
  void reset();

 private:
  Metrics() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace dps::obs
