// Flight recorder: low-overhead per-thread trace rings (docs/OBSERVABILITY.md).
//
// The engine's pitch — implicit pipelining and compute/communication
// overlap — is invisible from results alone. The flight recorder captures
// per-token scheduling events (enqueue/dequeue, operation start/end, fabric
// send/recv/retransmit/ack, heartbeat and failure-detector verdicts) into
// per-thread lock-free ring buffers stamped with a monotonic clock, so
// tests can *assert* scheduling behavior and humans can view it in
// chrome://tracing (obs/trace_format.hpp).
//
// Cost model:
//   * DPS_TRACE=OFF (default): the DPS_TRACE_EVENT call sites expand to
//     nothing — arguments are not evaluated, no branch, no atomic; the hot
//     path compiles to the pre-instrumentation code.
//   * DPS_TRACE=ON, recorder disabled (default at runtime): one relaxed
//     atomic load + branch per site.
//   * DPS_TRACE=ON, recording: a seqlock-protected write of 6 words into a
//     thread-owned ring; no locks, no allocation after the first event of
//     a thread.
//
// Draining is safe at any time (per-slot seqlocks reject events caught
// mid-write) but is only *complete* at quiescence: a writer that laps the
// reader simply overwrites the oldest events — flight-recorder semantics.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dps::obs {

/// Set when the library was compiled with -DDPS_TRACE=ON; trace-driven test
/// assertions skip themselves when instrumentation is compiled out.
#ifdef DPS_TRACE
inline constexpr bool kTraceCompiled = true;
#else
inline constexpr bool kTraceCompiled = false;
#endif

/// What happened. The meaning of the generic args a/b/c/d per kind is the
/// event schema table of docs/OBSERVABILITY.md — keep the two in sync.
enum class EventKind : uint16_t {
  kEnqueue = 1,       ///< envelope queued on a worker mailbox
  kDequeue = 2,       ///< envelope taken off a worker mailbox
  kOpStart = 3,       ///< operation execution begins
  kOpEnd = 4,         ///< operation execution ends
  kFabricSend = 5,    ///< frame handed to the fabric
  kFabricRecv = 6,    ///< frame delivered by the fabric
  kRetransmit = 7,    ///< reliable-delivery timer re-sent a frame
  kAckSend = 8,       ///< cumulative ack transmitted
  kAckRecv = 9,       ///< cumulative ack applied
  kDupSuppressed = 10,  ///< duplicate frame dropped by the receive filter
  kHeartbeat = 11,    ///< liveness beacon sent
  kNodeDown = 12,     ///< failure detector verdict: node declared dead
  kFlowAcquire = 13,  ///< split/stream took a flow-control window slot
  kFlowRelease = 14,  ///< flow-control credit returned
  kChaosDrop = 15,    ///< chaos fabric dropped a frame
  kChaosDup = 16,     ///< chaos fabric duplicated a frame
  kChaosDelay = 17,   ///< chaos fabric delayed a frame
  kSimAdvance = 18,   ///< virtual clock advanced
  kSimEvent = 19,     ///< simulation event fired
  kCollectionMap = 20,  ///< thread collection mapped onto nodes
  kTransportSend = 21,  ///< bytes written to a TCP connection
  kTransportRecv = 22,  ///< bytes read from a TCP connection
  kTxBatchStart = 23,   ///< async sender begins a coalesced writev batch
  kTxBatchEnd = 24,     ///< coalesced batch fully on the wire
  kRxBatchStart = 25,   ///< receiver begins delivering one decoded chunk
  kRxBatchEnd = 26,     ///< grouped delivery of the chunk handed off
  kSvcAdmit = 27,       ///< service call admitted (a=tenant, d=inflight)
  kSvcShed = 28,        ///< service call shed with kBackpressure (a=tenant)
  kSvcDeadline = 29,    ///< call retired by deadline expiry (a=tenant)

  // Multicast collectives + adaptive flow control (docs/PERFORMANCE.md).
  kMcastSend = 30,     ///< collective posted (a=target vertex, b=K,
                       ///< c=remote dests, d=encoded body bytes)
  kMcastForward = 31,  ///< relay forwarded a subtree (a=target vertex,
                       ///< b=groups, d=body bytes)
  kMcastDeliver = 32,  ///< local deliveries of one frame (a=target vertex,
                       ///< b=delivered, c=header entries, d=body bytes)
  kFlowWindow = 33,    ///< adaptive window changed (a=flow context,
                       ///< b=new window, c=receiver depth, d=in_flight)

  // Intra-node fast path: work stealing + shared-memory fabric.
  kSteal = 34,     ///< idle worker stole queued work (a=collection,
                   ///< b=victim index, c=thief index, d=envelopes)
  kShmBatch = 35,  ///< shm inbox delivered one drained batch (a=frames,
                   ///< b=ring bytes)

  // Leaf-compute backend seam (compute/backend.hpp).
  kLeafStep = 36,  ///< one leaf kernel interval (a=kernel id, b=rows,
                   ///< c=cols, d=duration ns)
};

const char* to_string(EventKind kind) noexcept;

/// One recorded event. 48 trivially copyable bytes; a/b/c/d are
/// kind-specific (see docs/OBSERVABILITY.md).
struct TraceEvent {
  uint64_t t_ns = 0;   ///< monotonic nanoseconds (trace_clock_ns)
  uint16_t kind = 0;   ///< EventKind
  uint16_t pad = 0;
  uint32_t node = 0;   ///< NodeId the event belongs to (or 0)
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t d = 0;
};
static_assert(sizeof(TraceEvent) == 48);
static_assert(std::is_trivially_copyable_v<TraceEvent>);

/// An event plus the identity of the thread that recorded it.
struct TaggedEvent {
  TraceEvent e;
  uint32_t thread = 0;       ///< recorder-assigned thread index
  std::string thread_name;   ///< label set via Trace::set_thread_name
};

/// Monotonic nanoseconds; the shared timestamp base of every ring.
inline uint64_t trace_clock_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace detail {
/// Recording flag, mirrored by Trace::set_enabled/configure. An inline
/// global (not a Trace member) so call sites inline the check without
/// paying the singleton's init guard.
inline std::atomic<bool> g_trace_on{false};
}  // namespace detail

/// True while the recorder is enabled — the one relaxed load + branch that
/// instrumentation sites pay when idle. Sites with side work beyond a
/// record() call (metrics updates, clock reads) must gate it on this.
inline bool tracing_active() noexcept {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// One thread's ring. Single writer (the owning thread); any thread may
/// snapshot concurrently — per-slot seqlocks make torn reads detectable
/// and skipped, never returned.
class TraceBuffer {
 public:
  /// Capacity is rounded up to a power of two; minimum 8 slots.
  explicit TraceBuffer(size_t capacity);

  void record(const TraceEvent& e) noexcept;

  /// Events currently readable, oldest first. Events overwritten or
  /// mid-write during the call are omitted.
  std::vector<TraceEvent> snapshot() const;

  /// Number of record() calls ever made (including overwritten events).
  uint64_t recorded() const { return head_.load(std::memory_order_acquire); }

  size_t capacity() const { return mask_ + 1; }

  void clear();

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  ///< seqlock: odd while being written
    std::atomic<uint64_t> w[6];
  };

  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};  ///< next write position (monotonic)
  std::string name_;
};

/// Runtime knobs. `configure` applies to buffers created afterwards
/// (capacity) and to every subsequent record() (enabled, sample_every).
struct TraceConfig {
  bool enabled = false;
  uint32_t sample_every = 1;  ///< record one event in N per thread (>= 1)
  size_t buffer_capacity = 4096;  ///< slots per thread ring
};

/// Process-wide recorder: hands each recording thread its own ring and
/// aggregates them for draining. All methods are thread safe.
class Trace {
 public:
  static Trace& instance();

  void configure(const TraceConfig& config);
  void set_enabled(bool enabled) {
    detail::g_trace_on.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return tracing_active(); }

  /// Fast path used by the DPS_TRACE_EVENT macro. Inlines to one relaxed
  /// load + branch when disabled; otherwise applies sampling and appends to
  /// the caller's ring.
  void record(EventKind kind, uint32_t node, uint64_t a = 0, uint64_t b = 0,
              uint64_t c = 0, uint64_t d = 0) noexcept {
    if (!tracing_active()) return;
    record_impl(kind, node, a, b, c, d);
  }

  /// Names the calling thread's ring (worker labels in drained traces).
  void set_thread_name(const std::string& name);

  /// Drains every ring: all readable events of all threads, tagged and
  /// sorted by timestamp. With `clear`, rings are emptied and the rings of
  /// exited threads become reusable.
  std::vector<TaggedEvent> collect(bool clear = false);

  /// Empties all rings and re-arms reuse; recording state is unchanged.
  void reset();

  /// Total record() calls accepted since the last reset (post-sampling).
  uint64_t events_recorded() const;

 private:
  Trace() = default;
  struct Registry;
  Registry& registry();

  void record_impl(EventKind kind, uint32_t node, uint64_t a, uint64_t b,
                   uint64_t c, uint64_t d) noexcept;

  std::atomic<uint32_t> sample_every_{1};
  std::atomic<size_t> capacity_{4096};
};

}  // namespace dps::obs

// Call-site macro: compiled out entirely (arguments unevaluated) unless the
// build defines DPS_TRACE.
#ifdef DPS_TRACE
#define DPS_TRACE_EVENT(...) ::dps::obs::Trace::instance().record(__VA_ARGS__)
#else
#define DPS_TRACE_EVENT(...) \
  do {                       \
  } while (0)
#endif
