#include "obs/trace_format.hpp"

#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace dps::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void emit_args(std::ostream& os, const TaggedEvent& ev) {
  os << "\"args\":{\"k\":" << ev.e.kind << ",\"n\":" << ev.e.node
     << ",\"a\":" << ev.e.a << ",\"b\":" << ev.e.b << ",\"c\":" << ev.e.c
     << ",\"d\":" << ev.e.d << ",\"t\":" << ev.e.t_ns
     << ",\"th\":" << ev.thread << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<TaggedEvent>& events) {
  os << "{\"traceEvents\":[\n";
  // Thread-name metadata first, so tracks are labeled with worker names.
  std::map<uint32_t, std::string> names;
  for (const TaggedEvent& ev : events) names[ev.thread] = ev.thread_name;
  bool first = true;
  for (const auto& [tid, name] : names) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }
  for (const TaggedEvent& ev : events) {
    if (!first) os << ",\n";
    first = false;
    const auto kind = static_cast<EventKind>(ev.e.kind);
    const double ts_us = static_cast<double>(ev.e.t_ns) / 1000.0;
    const char* ph = kind == EventKind::kOpStart ? "B"
                     : kind == EventKind::kOpEnd ? "E"
                                                 : "i";
    std::string name;
    if (kind == EventKind::kOpStart || kind == EventKind::kOpEnd) {
      name = "op:v" + std::to_string(ev.e.a);
    } else {
      name = to_string(kind);
    }
    os << "{\"name\":\"" << json_escape(name) << "\",\"cat\":\"dps\",\"ph\":\""
       << ph << "\",\"ts\":" << ts_us << ",\"pid\":" << ev.e.node
       << ",\"tid\":" << ev.thread << ",";
    if (ph[0] == 'i') os << "\"s\":\"t\",";
    emit_args(os, ev);
    os << "}";
  }
  os << "\n]}\n";
}

std::string chrome_trace_json(const std::vector<TaggedEvent>& events) {
  std::ostringstream os;
  write_chrome_trace(os, events);
  return os.str();
}

namespace {

/// Extracts the unsigned integer following `key` in `line`, e.g.
/// key = "\"k\":". Returns false when the key is absent.
bool find_u64(const std::string& line, const char* key, uint64_t* out) {
  const size_t pos = line.find(key);
  if (pos == std::string::npos) return false;
  size_t i = pos + std::string(key).size();
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return false;
  uint64_t v = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    v = v * 10 + static_cast<uint64_t>(line[i] - '0');
    ++i;
  }
  *out = v;
  return true;
}

bool find_string(const std::string& line, const char* key, std::string* out) {
  const size_t pos = line.find(key);
  if (pos == std::string::npos) return false;
  size_t i = pos + std::string(key).size();
  if (i >= line.size() || line[i] != '"') return false;
  ++i;
  std::string v;
  while (i < line.size() && line[i] != '"') {
    if (line[i] == '\\' && i + 1 < line.size()) {
      ++i;
      switch (line[i]) {
        case 'n': v += '\n'; break;
        case 'r': v += '\r'; break;
        case 't': v += '\t'; break;
        case 'u':
          // \uXXXX from json_escape is always a control byte.
          if (i + 4 < line.size()) {
            v += static_cast<char>(
                std::stoi(line.substr(i + 1, 4), nullptr, 16));
            i += 4;
          }
          break;
        default: v += line[i];
      }
    } else {
      v += line[i];
    }
    ++i;
  }
  *out = v;
  return true;
}

}  // namespace

std::vector<TaggedEvent> parse_chrome_trace(const std::string& json) {
  if (json.find("\"traceEvents\"") == std::string::npos) {
    raise(Errc::kProtocol, "not a chrome trace: missing traceEvents");
  }
  std::vector<TaggedEvent> out;
  std::map<uint64_t, std::string> names;
  std::istringstream is(json);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("\"ph\":\"M\"") != std::string::npos) {
      uint64_t tid = 0;
      std::string name;
      if (find_u64(line, "\"tid\":", &tid)) {
        const size_t args = line.find("\"args\"");
        if (args != std::string::npos &&
            find_string(line.substr(args), "\"name\":", &name)) {
          names[tid] = name;
        }
      }
      continue;
    }
    uint64_t k = 0;
    if (!find_u64(line, "\"k\":", &k)) continue;  // not an event line
    TaggedEvent ev;
    uint64_t v = 0;
    ev.e.kind = static_cast<uint16_t>(k);
    if (find_u64(line, "\"n\":", &v)) ev.e.node = static_cast<uint32_t>(v);
    find_u64(line, "\"a\":", &ev.e.a);
    find_u64(line, "\"b\":", &ev.e.b);
    find_u64(line, "\"c\":", &ev.e.c);
    find_u64(line, "\"d\":", &ev.e.d);
    if (!find_u64(line, "\"t\":", &ev.e.t_ns)) {
      raise(Errc::kProtocol, "chrome trace event without raw timestamp");
    }
    if (find_u64(line, "\"th\":", &v)) ev.thread = static_cast<uint32_t>(v);
    out.push_back(std::move(ev));
  }
  for (TaggedEvent& ev : out) {
    auto it = names.find(ev.thread);
    ev.thread_name = it == names.end()
                         ? "thread-" + std::to_string(ev.thread)
                         : it->second;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------

namespace {
constexpr size_t kRecordBytes = sizeof(uint32_t) + sizeof(TraceEvent);  // 52
constexpr uint16_t kMaxKind = static_cast<uint16_t>(EventKind::kLeafStep);
}  // namespace

void encode_trace(Writer& w, const std::vector<TaggedEvent>& events) {
  w.put<uint32_t>(kTraceMagic);
  w.put<uint16_t>(kTraceVersion);
  w.put<uint16_t>(0);  // reserved
  std::map<uint32_t, std::string> names;
  for (const TaggedEvent& ev : events) names[ev.thread] = ev.thread_name;
  w.put<uint32_t>(static_cast<uint32_t>(names.size()));
  for (const auto& [tid, name] : names) {
    w.put<uint32_t>(tid);
    w.put_string(name);
  }
  w.put<uint64_t>(events.size());
  for (const TaggedEvent& ev : events) {
    w.put<uint32_t>(ev.thread);
    TraceEvent e = ev.e;
    e.pad = 0;
    w.put(e);
  }
}

std::vector<TaggedEvent> decode_trace(Reader& r) {
  if (r.get<uint32_t>() != kTraceMagic) {
    raise(Errc::kProtocol, "binary trace: bad magic");
  }
  const uint16_t version = r.get<uint16_t>();
  if (version != kTraceVersion) {
    raise(Errc::kProtocol,
          "binary trace: unsupported version " + std::to_string(version));
  }
  (void)r.get<uint16_t>();  // reserved
  const uint32_t thread_count = r.get<uint32_t>();
  // Each table entry needs at least an index and an empty-string prefix.
  r.require_count(thread_count, sizeof(uint32_t) + sizeof(uint32_t));
  std::map<uint32_t, std::string> names;
  for (uint32_t i = 0; i < thread_count; ++i) {
    const uint32_t tid = r.get<uint32_t>();
    names[tid] = r.get_string();
  }
  const uint64_t event_count = r.get<uint64_t>();
  r.require_count(event_count, kRecordBytes);
  std::vector<TaggedEvent> out;
  out.reserve(static_cast<size_t>(event_count));
  for (uint64_t i = 0; i < event_count; ++i) {
    TaggedEvent ev;
    ev.thread = r.get<uint32_t>();
    ev.e = r.get<TraceEvent>();
    if (ev.e.kind == 0 || ev.e.kind > kMaxKind) {
      raise(Errc::kProtocol, "binary trace: unknown event kind " +
                                 std::to_string(ev.e.kind));
    }
    auto it = names.find(ev.thread);
    ev.thread_name = it == names.end()
                         ? "thread-" + std::to_string(ev.thread)
                         : it->second;
    out.push_back(std::move(ev));
  }
  if (!r.at_end()) {
    raise(Errc::kProtocol, "binary trace: trailing bytes after last record");
  }
  return out;
}

}  // namespace dps::obs
