// Trace serialization: Chrome chrome://tracing JSON and a compact binary
// format (docs/OBSERVABILITY.md).
//
// The JSON writer emits the Trace Event Format Chrome's about://tracing and
// Perfetto load directly: operation executions become duration ("B"/"E")
// pairs per thread track, everything else becomes instants. Every event
// also carries its raw fields under "args" so `parse_chrome_trace` can
// round-trip exactly what was recorded.
//
// The binary format is the archival/fuzz-hardened one: a magic/version
// header, a thread-name table, then fixed 52-byte records. Decoding goes
// through serial/wire.hpp Reader, so truncated or corrupted files raise
// Error(kProtocol) instead of crashing or over-allocating.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "serial/wire.hpp"

namespace dps::obs {

/// chrome://tracing JSON ("Load" the file, or drag it into Perfetto).
void write_chrome_trace(std::ostream& os, const std::vector<TaggedEvent>& events);
std::string chrome_trace_json(const std::vector<TaggedEvent>& events);

/// Parses JSON produced by write_chrome_trace back into tagged events
/// (order preserved; "E" phase records are markers re-derived from the
/// paired event and are not returned twice). Throws Error(kProtocol) on
/// input this writer cannot have produced.
std::vector<TaggedEvent> parse_chrome_trace(const std::string& json);

inline constexpr uint32_t kTraceMagic = 0x54535044;  // "DPST"
inline constexpr uint16_t kTraceVersion = 1;

/// Compact binary encoding of a drained trace.
void encode_trace(Writer& w, const std::vector<TaggedEvent>& events);

/// Decodes a binary trace. Malformed, truncated, or absurd input (bad
/// magic, unknown version, claimed counts exceeding the payload) raises
/// Error(kProtocol); it never crashes and never allocates for a count the
/// buffer cannot hold.
std::vector<TaggedEvent> decode_trace(Reader& r);

}  // namespace dps::obs
