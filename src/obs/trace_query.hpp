// TraceQuery: turn a drained flight-recorder trace into test assertions.
//
// Scheduling properties the paper only states — implicit pipelining,
// compute/communication overlap (Table 1), per-link delivery order — become
// checkable predicates over the recorded event stream:
//
//   auto q = obs::TraceQuery(obs::Trace::instance().collect());
//   auto merges = q.intervals(merge_vertex);
//   auto leaves = q.intervals(leaf_vertex);
//   EXPECT_GT(obs::TraceQuery::overlap_ns(merges, leaves), 0u);
//
// All queries run over an immutable snapshot sorted by the shared monotonic
// clock, so "happens before" is well defined across threads and in-process
// nodes of one run.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace dps::obs {

class TraceQuery {
 public:
  using Pred = std::function<bool(const TaggedEvent&)>;

  /// One operation execution reconstructed from a kOpStart/kOpEnd pair.
  struct Interval {
    uint64_t begin_ns = 0;
    uint64_t end_ns = 0;
    uint64_t vertex = 0;   ///< event field a
    uint64_t opkind = 0;   ///< event field b (dps::OpKind)
    uint64_t context = 0;  ///< event field c
    uint64_t seq = 0;      ///< event field d (token index within the split)
    uint32_t node = 0;
    uint32_t thread = 0;
    std::string thread_name;

    uint64_t duration_ns() const { return end_ns - begin_ns; }
    bool overlaps(const Interval& o) const {
      return begin_ns < o.end_ns && o.begin_ns < end_ns;
    }
  };

  explicit TraceQuery(std::vector<TaggedEvent> events);

  const std::vector<TaggedEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  /// All events of one kind, in time order.
  std::vector<TaggedEvent> of_kind(EventKind kind) const;
  size_t count(EventKind kind) const;

  /// First / last event satisfying kind + predicate (time order).
  std::optional<TaggedEvent> first(EventKind kind, const Pred& pred = {}) const;
  std::optional<TaggedEvent> last(EventKind kind, const Pred& pred = {}) const;

  /// Strict happens-before on the shared clock. Events with equal stamps
  /// are not ordered (returns false both ways).
  static bool happens_before(const TaggedEvent& x, const TaggedEvent& y) {
    return x.e.t_ns < y.e.t_ns;
  }

  /// True when some event matching (k1, p1) precedes some event matching
  /// (k2, p2): first(k1) happens-before last(k2).
  bool exists_ordered(EventKind k1, const Pred& p1, EventKind k2,
                      const Pred& p2) const;

  /// True when EVERY (k1, p1) event precedes every (k2, p2) event — the
  /// strong form: last(k1) happens-before first(k2). Vacuously false when
  /// either set is empty (an assertion about nothing is a test bug).
  bool all_ordered(EventKind k1, const Pred& p1, EventKind k2,
                   const Pred& p2) const;

  /// Sequence numbers (field c) of kFabricRecv events delivered from node
  /// `from` on node `to`, in delivery order — the per-link order a
  /// transport actually achieved.
  std::vector<uint64_t> link_delivery_order(uint32_t from, uint32_t to) const;

  /// True when `seqs` is strictly increasing (FIFO link, no duplicates).
  static bool is_fifo(const std::vector<uint64_t>& seqs);

  /// Operation executions of `vertex` (kOpStart paired with the matching
  /// kOpEnd on the same thread / vertex / context / seq), time order.
  /// vertex == UINT64_MAX returns every execution.
  std::vector<Interval> intervals(uint64_t vertex = UINT64_MAX) const;

  /// Generic start/end pairing for non-operation interval events: each
  /// `start` event on a thread opens an interval closed by the next `end`
  /// event on the same thread (the async sender's kTxBatchStart/kTxBatchEnd
  /// are strictly sequential per sender thread). `node` filters to one
  /// node's events; UINT32_MAX keeps all. Interval a/b/c/d fields come from
  /// the start event (vertex=a, opkind=b, context=c, seq=d).
  std::vector<Interval> paired_intervals(EventKind start, EventKind end,
                                         uint32_t node = UINT32_MAX) const;

  /// Transmit batches recorded by TcpFabric's async senders: the windows
  /// during which `node`'s sender threads had a coalesced writev in flight.
  /// The compute/communication-overlap assertion intersects these with
  /// operation intervals on the same node.
  std::vector<Interval> transmit_intervals(uint32_t node = UINT32_MAX) const {
    return paired_intervals(EventKind::kTxBatchStart, EventKind::kTxBatchEnd,
                            node);
  }

  /// Total wall/virtual time during which at least one interval of `xs` and
  /// one of `ys` run concurrently — the overlap window the paper's Table 1
  /// credits DPS's implicit pipelining with.
  static uint64_t overlap_ns(const std::vector<Interval>& xs,
                             const std::vector<Interval>& ys);

 private:
  std::vector<TaggedEvent> events_;  // sorted by t_ns
};

}  // namespace dps::obs
