#include "obs/trace.hpp"

#include <algorithm>
#include <cstring>

#include "util/thread_annotations.hpp"

namespace dps::obs {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kDequeue: return "dequeue";
    case EventKind::kOpStart: return "op_start";
    case EventKind::kOpEnd: return "op_end";
    case EventKind::kFabricSend: return "fabric_send";
    case EventKind::kFabricRecv: return "fabric_recv";
    case EventKind::kRetransmit: return "retransmit";
    case EventKind::kAckSend: return "ack_send";
    case EventKind::kAckRecv: return "ack_recv";
    case EventKind::kDupSuppressed: return "dup_suppressed";
    case EventKind::kHeartbeat: return "heartbeat";
    case EventKind::kNodeDown: return "node_down";
    case EventKind::kFlowAcquire: return "flow_acquire";
    case EventKind::kFlowRelease: return "flow_release";
    case EventKind::kChaosDrop: return "chaos_drop";
    case EventKind::kChaosDup: return "chaos_dup";
    case EventKind::kChaosDelay: return "chaos_delay";
    case EventKind::kSimAdvance: return "sim_advance";
    case EventKind::kSimEvent: return "sim_event";
    case EventKind::kCollectionMap: return "collection_map";
    case EventKind::kTransportSend: return "transport_send";
    case EventKind::kTransportRecv: return "transport_recv";
    case EventKind::kTxBatchStart: return "tx_batch_start";
    case EventKind::kTxBatchEnd: return "tx_batch_end";
    case EventKind::kRxBatchStart: return "rx_batch_start";
    case EventKind::kRxBatchEnd: return "rx_batch_end";
    case EventKind::kSvcAdmit: return "svc_admit";
    case EventKind::kSvcShed: return "svc_shed";
    case EventKind::kSvcDeadline: return "svc_deadline";
    case EventKind::kMcastSend: return "mcast_send";
    case EventKind::kMcastForward: return "mcast_forward";
    case EventKind::kMcastDeliver: return "mcast_deliver";
    case EventKind::kFlowWindow: return "flow_window";
    case EventKind::kSteal: return "steal";
    case EventKind::kShmBatch: return "shm_batch";
    case EventKind::kLeafStep: return "leaf_step";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------------

namespace {

size_t round_pow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

void pack(const TraceEvent& e, uint64_t out[6]) {
  static_assert(sizeof(TraceEvent) == 6 * sizeof(uint64_t));
  std::memcpy(out, &e, sizeof(TraceEvent));
}

void unpack(const uint64_t in[6], TraceEvent* e) {
  // TraceEvent is trivially copyable; the cast mutes -Wclass-memaccess
  // (its NSDMIs make the default constructor non-trivial).
  std::memcpy(static_cast<void*>(e), in, sizeof(TraceEvent));
}

}  // namespace

TraceBuffer::TraceBuffer(size_t capacity)
    : mask_(round_pow2(capacity) - 1),
      slots_(std::make_unique<Slot[]>(mask_ + 1)) {}

void TraceBuffer::record(const TraceEvent& e) noexcept {
  const uint64_t h = head_.load(std::memory_order_relaxed);
  Slot& s = slots_[h & mask_];
  uint64_t words[6];
  pack(e, words);
  // Single-writer seqlock: odd marks the slot in flight; the release fence
  // orders the odd store before the payload so a reader that sees any new
  // word re-reads an odd or advanced sequence and discards the slot.
  const uint64_t seq = s.seq.load(std::memory_order_relaxed);
  s.seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (int i = 0; i < 6; ++i) s.w[i].store(words[i], std::memory_order_relaxed);
  s.seq.store(seq + 2, std::memory_order_release);
  head_.store(h + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  const uint64_t h = head_.load(std::memory_order_acquire);
  const uint64_t cap = mask_ + 1;
  const uint64_t begin = h > cap ? h - cap : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(h - begin));
  for (uint64_t i = begin; i < h; ++i) {
    const Slot& s = slots_[i & mask_];
    const uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 & 1) continue;  // mid-write
    uint64_t words[6];
    for (int k = 0; k < 6; ++k) {
      words[k] = s.w[k].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != s1) continue;  // overwritten
    TraceEvent e;
    unpack(words, &e);
    if (e.kind == 0) continue;  // never-written slot
    out.push_back(e);
  }
  return out;
}

void TraceBuffer::clear() {
  // Not meant to race the owning writer; any concurrent record() is simply
  // kept or lost, both fine for a diagnostics ring.
  const uint64_t cap = mask_ + 1;
  for (uint64_t i = 0; i < cap; ++i) {
    Slot& s = slots_[i];
    const uint64_t seq = s.seq.load(std::memory_order_relaxed);
    s.seq.store(seq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    for (int k = 0; k < 6; ++k) s.w[k].store(0, std::memory_order_relaxed);
    s.seq.store(seq + 2, std::memory_order_release);
  }
  head_.store(0, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Trace (process-wide registry of per-thread rings)
// ---------------------------------------------------------------------------

struct Trace::Registry {
  struct Entry {
    std::unique_ptr<TraceBuffer> buffer;
    std::atomic<bool> live{false};  ///< owned by a running thread
  };

  Mutex mu;
  std::vector<std::unique_ptr<Entry>> entries DPS_GUARDED_BY(mu);
  /// Drained rings of exited threads.
  std::vector<uint32_t> free_list DPS_GUARDED_BY(mu);

  // Thread-local handle: releases the ring back to the registry when the
  // thread exits so its events survive until the next draining collect().
  struct Handle {
    Registry* registry = nullptr;
    uint32_t index = 0;
    TraceBuffer* buffer = nullptr;
    uint32_t sample_skip = 0;
    ~Handle() {
      if (registry == nullptr) return;
      MutexLock lock(registry->mu);
      registry->entries[index]->live.store(false, std::memory_order_relaxed);
    }
  };

  static Handle& handle() {
    thread_local Handle h;
    return h;
  }

  TraceBuffer* acquire(Handle& h, size_t capacity) {
    MutexLock lock(mu);
    if (!free_list.empty()) {
      const uint32_t idx = free_list.back();
      Entry& e = *entries[idx];
      if (e.buffer->capacity() >= round_up(capacity)) {
        free_list.pop_back();
        e.buffer->set_name("");
        e.live.store(true, std::memory_order_relaxed);
        h.registry = this;
        h.index = idx;
        h.buffer = e.buffer.get();
        h.sample_skip = 0;
        return h.buffer;
      }
    }
    auto entry = std::make_unique<Entry>();
    entry->buffer = std::make_unique<TraceBuffer>(capacity);
    entry->live.store(true, std::memory_order_relaxed);
    entries.push_back(std::move(entry));
    const uint32_t idx = static_cast<uint32_t>(entries.size() - 1);
    h.registry = this;
    h.index = idx;
    h.buffer = entries[idx]->buffer.get();
    h.sample_skip = 0;
    return h.buffer;
  }

  static size_t round_up(size_t n) {
    size_t p = 8;
    while (p < n) p <<= 1;
    return p;
  }
};

Trace& Trace::instance() {
  static Trace* t = new Trace();  // leaked: outlives exiting threads
  return *t;
}

Trace::Registry& Trace::registry() {
  static Registry* r = new Registry();
  return *r;
}

void Trace::configure(const TraceConfig& config) {
  sample_every_.store(config.sample_every == 0 ? 1 : config.sample_every,
                      std::memory_order_relaxed);
  capacity_.store(config.buffer_capacity, std::memory_order_relaxed);
  detail::g_trace_on.store(config.enabled, std::memory_order_relaxed);
}

void Trace::record_impl(EventKind kind, uint32_t node, uint64_t a, uint64_t b,
                        uint64_t c, uint64_t d) noexcept {
  Registry::Handle& h = Registry::handle();
  if (h.buffer == nullptr || h.registry == nullptr) {
    registry().acquire(h, capacity_.load(std::memory_order_relaxed));
  }
  const uint32_t every = sample_every_.load(std::memory_order_relaxed);
  if (every > 1) {
    if (++h.sample_skip < every) return;
    h.sample_skip = 0;
  }
  TraceEvent e;
  e.t_ns = trace_clock_ns();
  e.kind = static_cast<uint16_t>(kind);
  e.node = node;
  e.a = a;
  e.b = b;
  e.c = c;
  e.d = d;
  h.buffer->record(e);
}

void Trace::set_thread_name(const std::string& name) {
  Registry::Handle& h = Registry::handle();
  if (h.buffer == nullptr || h.registry == nullptr) {
    registry().acquire(h, capacity_.load(std::memory_order_relaxed));
  }
  MutexLock lock(registry().mu);
  h.buffer->set_name(name);
}

std::vector<TaggedEvent> Trace::collect(bool clear) {
  Registry& reg = registry();
  std::vector<TaggedEvent> out;
  {
    MutexLock lock(reg.mu);
    for (uint32_t i = 0; i < reg.entries.size(); ++i) {
      Registry::Entry& entry = *reg.entries[i];
      const std::string& name = entry.buffer->name();
      for (const TraceEvent& e : entry.buffer->snapshot()) {
        TaggedEvent t;
        t.e = e;
        t.thread = i;
        t.thread_name =
            name.empty() ? "thread-" + std::to_string(i) : name;
        out.push_back(std::move(t));
      }
      if (clear) {
        entry.buffer->clear();
        if (!entry.live.load(std::memory_order_relaxed)) {
          bool already = false;
          for (uint32_t f : reg.free_list) already = already || f == i;
          if (!already) reg.free_list.push_back(i);
        }
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TaggedEvent& x, const TaggedEvent& y) {
                     return x.e.t_ns < y.e.t_ns;
                   });
  return out;
}

void Trace::reset() { (void)collect(/*clear=*/true); }

uint64_t Trace::events_recorded() const {
  Registry& reg = const_cast<Trace*>(this)->registry();
  MutexLock lock(reg.mu);
  uint64_t n = 0;
  for (const auto& entry : reg.entries) n += entry->buffer->recorded();
  return n;
}

}  // namespace dps::obs
