#include "obs/trace_query.hpp"

#include <algorithm>
#include <map>

namespace dps::obs {

TraceQuery::TraceQuery(std::vector<TaggedEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TaggedEvent& x, const TaggedEvent& y) {
                     return x.e.t_ns < y.e.t_ns;
                   });
}

std::vector<TaggedEvent> TraceQuery::of_kind(EventKind kind) const {
  std::vector<TaggedEvent> out;
  for (const TaggedEvent& ev : events_) {
    if (ev.e.kind == static_cast<uint16_t>(kind)) out.push_back(ev);
  }
  return out;
}

size_t TraceQuery::count(EventKind kind) const {
  size_t n = 0;
  for (const TaggedEvent& ev : events_) {
    if (ev.e.kind == static_cast<uint16_t>(kind)) ++n;
  }
  return n;
}

std::optional<TaggedEvent> TraceQuery::first(EventKind kind,
                                             const Pred& pred) const {
  for (const TaggedEvent& ev : events_) {
    if (ev.e.kind != static_cast<uint16_t>(kind)) continue;
    if (!pred || pred(ev)) return ev;
  }
  return std::nullopt;
}

std::optional<TaggedEvent> TraceQuery::last(EventKind kind,
                                            const Pred& pred) const {
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->e.kind != static_cast<uint16_t>(kind)) continue;
    if (!pred || pred(*it)) return *it;
  }
  return std::nullopt;
}

bool TraceQuery::exists_ordered(EventKind k1, const Pred& p1, EventKind k2,
                                const Pred& p2) const {
  const auto x = first(k1, p1);
  const auto y = last(k2, p2);
  return x && y && happens_before(*x, *y);
}

bool TraceQuery::all_ordered(EventKind k1, const Pred& p1, EventKind k2,
                             const Pred& p2) const {
  const auto x = last(k1, p1);
  const auto y = first(k2, p2);
  return x && y && happens_before(*x, *y);
}

std::vector<uint64_t> TraceQuery::link_delivery_order(uint32_t from,
                                                      uint32_t to) const {
  std::vector<uint64_t> out;
  for (const TaggedEvent& ev : events_) {
    if (ev.e.kind != static_cast<uint16_t>(EventKind::kFabricRecv)) continue;
    if (ev.e.node != to || ev.e.a != from) continue;
    out.push_back(ev.e.c);
  }
  return out;
}

bool TraceQuery::is_fifo(const std::vector<uint64_t>& seqs) {
  for (size_t i = 1; i < seqs.size(); ++i) {
    if (seqs[i] <= seqs[i - 1]) return false;
  }
  return true;
}

std::vector<TraceQuery::Interval> TraceQuery::intervals(
    uint64_t vertex) const {
  // Executions nest on one thread (re-entrant dispatch while a merge
  // collects), so open starts form a per-thread stack keyed by identity.
  struct Key {
    uint32_t thread;
    uint64_t vertex, ctx, seq;
    bool operator<(const Key& o) const {
      if (thread != o.thread) return thread < o.thread;
      if (vertex != o.vertex) return vertex < o.vertex;
      if (ctx != o.ctx) return ctx < o.ctx;
      return seq < o.seq;
    }
  };
  std::map<Key, std::vector<TaggedEvent>> open;
  std::vector<Interval> out;
  for (const TaggedEvent& ev : events_) {
    const auto kind = static_cast<EventKind>(ev.e.kind);
    if (kind != EventKind::kOpStart && kind != EventKind::kOpEnd) continue;
    if (vertex != UINT64_MAX && ev.e.a != vertex) continue;
    const Key key{ev.thread, ev.e.a, ev.e.c, ev.e.d};
    if (kind == EventKind::kOpStart) {
      open[key].push_back(ev);
      continue;
    }
    auto it = open.find(key);
    if (it == open.end() || it->second.empty()) continue;  // lost start
    const TaggedEvent& start = it->second.back();
    Interval iv;
    iv.begin_ns = start.e.t_ns;
    iv.end_ns = ev.e.t_ns;
    iv.vertex = ev.e.a;
    iv.opkind = ev.e.b;
    iv.context = ev.e.c;
    iv.seq = ev.e.d;
    iv.node = ev.e.node;
    iv.thread = ev.thread;
    iv.thread_name = ev.thread_name;
    out.push_back(std::move(iv));
    it->second.pop_back();
  }
  std::sort(out.begin(), out.end(), [](const Interval& x, const Interval& y) {
    return x.begin_ns < y.begin_ns;
  });
  return out;
}

std::vector<TraceQuery::Interval> TraceQuery::paired_intervals(
    EventKind start, EventKind end, uint32_t node) const {
  std::map<uint32_t, TaggedEvent> open;  // per recording thread
  std::vector<Interval> out;
  for (const TaggedEvent& ev : events_) {
    const auto kind = static_cast<EventKind>(ev.e.kind);
    if (kind != start && kind != end) continue;
    if (node != UINT32_MAX && ev.e.node != node) continue;
    if (kind == start) {
      open.insert_or_assign(ev.thread, ev);  // lost end: keep the newest
      continue;
    }
    auto it = open.find(ev.thread);
    if (it == open.end()) continue;  // lost start (ring overwrote it)
    const TaggedEvent& s = it->second;
    Interval iv;
    iv.begin_ns = s.e.t_ns;
    iv.end_ns = ev.e.t_ns;
    iv.vertex = s.e.a;
    iv.opkind = s.e.b;
    iv.context = s.e.c;
    iv.seq = s.e.d;
    iv.node = s.e.node;
    iv.thread = s.thread;
    iv.thread_name = s.thread_name;
    out.push_back(std::move(iv));
    open.erase(it);
  }
  std::sort(out.begin(), out.end(), [](const Interval& x, const Interval& y) {
    return x.begin_ns < y.begin_ns;
  });
  return out;
}

uint64_t TraceQuery::overlap_ns(const std::vector<Interval>& xs,
                                const std::vector<Interval>& ys) {
  // Sweep the union coverage of each set, then intersect: +1/-1 deltas per
  // boundary, time counted where both sets are active.
  struct Edge {
    uint64_t t;
    int which;  // 0 = xs, 1 = ys
    int delta;
  };
  std::vector<Edge> edges;
  edges.reserve(2 * (xs.size() + ys.size()));
  for (const Interval& iv : xs) {
    edges.push_back({iv.begin_ns, 0, +1});
    edges.push_back({iv.end_ns, 0, -1});
  }
  for (const Interval& iv : ys) {
    edges.push_back({iv.begin_ns, 1, +1});
    edges.push_back({iv.end_ns, 1, -1});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;  // close before open at equal stamps
  });
  int active[2] = {0, 0};
  uint64_t last = 0, total = 0;
  for (const Edge& e : edges) {
    if (active[0] > 0 && active[1] > 0) total += e.t - last;
    active[e.which] += e.delta;
    last = e.t;
  }
  return total;
}

}  // namespace dps::obs
