#include "obs/metrics.hpp"

#include <memory>
#include <variant>

#include "util/thread_annotations.hpp"

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace dps::obs {

uint64_t Histogram::bucket_bound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= 64) return UINT64_MAX;
  return (uint64_t{1} << bucket) - 1;
}

uint64_t Histogram::quantile_bound(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank || (seen == total && seen != 0)) return bucket_bound(i);
  }
  return bucket_bound(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = values.find(name);
  return it == values.end() ? 0 : it->second.counter;
}

int64_t MetricsSnapshot::gauge(const std::string& name) const {
  auto it = values.find(name);
  return it == values.end() ? 0 : it->second.gauge;
}

struct Metrics::Impl {
  using Instrument =
      std::variant<std::unique_ptr<Counter>, std::unique_ptr<Gauge>,
                   std::unique_ptr<Histogram>>;
  mutable Mutex mu;
  std::map<std::string, Instrument> instruments DPS_GUARDED_BY(mu);
};

Metrics& Metrics::instance() {
  static Metrics* m = new Metrics();  // leaked: usable during static teardown
  return *m;
}

Metrics::Impl& Metrics::impl() const {
  static Impl* i = new Impl();
  return *i;
}

Counter& Metrics::counter(const std::string& name) {
  Impl& i = impl();
  MutexLock lock(i.mu);
  auto it = i.instruments.find(name);
  if (it == i.instruments.end()) {
    it = i.instruments.emplace(name, std::make_unique<Counter>()).first;
  }
  auto* p = std::get_if<std::unique_ptr<Counter>>(&it->second);
  if (p == nullptr) {
    raise(Errc::kState, "metric '" + name + "' exists with another type");
  }
  return **p;
}

Gauge& Metrics::gauge(const std::string& name) {
  Impl& i = impl();
  MutexLock lock(i.mu);
  auto it = i.instruments.find(name);
  if (it == i.instruments.end()) {
    it = i.instruments.emplace(name, std::make_unique<Gauge>()).first;
  }
  auto* p = std::get_if<std::unique_ptr<Gauge>>(&it->second);
  if (p == nullptr) {
    raise(Errc::kState, "metric '" + name + "' exists with another type");
  }
  return **p;
}

Histogram& Metrics::histogram(const std::string& name) {
  Impl& i = impl();
  MutexLock lock(i.mu);
  auto it = i.instruments.find(name);
  if (it == i.instruments.end()) {
    it = i.instruments.emplace(name, std::make_unique<Histogram>()).first;
  }
  auto* p = std::get_if<std::unique_ptr<Histogram>>(&it->second);
  if (p == nullptr) {
    raise(Errc::kState, "metric '" + name + "' exists with another type");
  }
  return **p;
}

MetricsSnapshot Metrics::snapshot() const {
  Impl& i = impl();
  MetricsSnapshot snap;
  snap.t_ns = trace_clock_ns();
  MutexLock lock(i.mu);
  for (const auto& [name, inst] : i.instruments) {
    MetricValue v;
    if (auto* c = std::get_if<std::unique_ptr<Counter>>(&inst)) {
      v.type = MetricValue::Type::kCounter;
      v.counter = (*c)->value();
    } else if (auto* g = std::get_if<std::unique_ptr<Gauge>>(&inst)) {
      v.type = MetricValue::Type::kGauge;
      v.gauge = (*g)->value();
      v.gauge_max = (*g)->max_value();
    } else if (auto* h = std::get_if<std::unique_ptr<Histogram>>(&inst)) {
      v.type = MetricValue::Type::kHistogram;
      v.hist_count = (*h)->count();
      v.hist_sum = (*h)->sum();
      v.hist_buckets.resize(Histogram::kBuckets);
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        v.hist_buckets[static_cast<size_t>(b)] = (*h)->bucket(b);
      }
    }
    snap.values.emplace(name, std::move(v));
  }
  return snap;
}

void Metrics::reset() {
  Impl& i = impl();
  MutexLock lock(i.mu);
  for (auto& [name, inst] : i.instruments) {
    if (auto* c = std::get_if<std::unique_ptr<Counter>>(&inst)) {
      (*c)->reset();
    } else if (auto* g = std::get_if<std::unique_ptr<Gauge>>(&inst)) {
      (*g)->reset();
    } else if (auto* h = std::get_if<std::unique_ptr<Histogram>>(&inst)) {
      (*h)->reset();
    }
  }
}

}  // namespace dps::obs
