// Ring data-transfer application (paper, section 4, Figure 6).
//
// "In order to evaluate the maximal data throughput when performing
// simultaneous send and receive operations, the first test transfers
// 100 MB of data along a ring of 4 PCs. The individual machines forward
// the data as soon as they receive it."
//
// The flow graph is a chain built dynamically to the ring size (one
// forwarding leaf per hop), so every block crosses every link once:
//
//   split@0 >> fwd@1 >> fwd@2 >> ... >> fwd@n-1 >> merge@0
//
// Benchmarks time the pipeline in steady state and compare against a raw
// socket baseline doing the identical forwarding.
#pragma once

#include <string>

#include "core/application.hpp"
#include "core/controller.hpp"

namespace dps::apps {

/// A payload block travelling around the ring.
class RingBlockToken : public ComplexToken {
 public:
  CT<int32_t> hop;    ///< next ring position (routes the token)
  CT<int32_t> index;  ///< block sequence number
  Buffer<uint8_t> payload;
  DPS_IDENTIFY(RingBlockToken);
};

/// Start request: how many blocks of which size to push around the ring.
class RingStartToken : public SimpleToken {
 public:
  int32_t block_count;
  int32_t block_size;
  RingStartToken(int32_t count = 0, int32_t size = 0)
      : block_count(count), block_size(size) {}
  DPS_IDENTIFY(RingStartToken);
};

/// Completion summary returned to the caller.
class RingDoneToken : public SimpleToken {
 public:
  int32_t blocks;
  int64_t payload_bytes;
  RingDoneToken(int32_t b = 0, int64_t p = 0) : blocks(b), payload_bytes(p) {}
  DPS_IDENTIFY(RingDoneToken);
};

class RingThread : public Thread {
 public:
  int64_t forwarded_bytes = 0;
  DPS_IDENTIFY_THREAD(RingThread);
};

/// Home of the merge: a one-thread collection on the split's node. Routing
/// the merge back onto ring thread 0 (hop % n == 0) would put it on the
/// split's own worker — once the flow-control window fills, the split
/// blocks that worker and the merge envelope behind it can never run.
class RingSinkThread : public Thread {
 public:
  DPS_IDENTIFY_THREAD(RingSinkThread);
};

DPS_ROUTE(RingStartRoute, RingThread, RingStartToken, 0);
DPS_ROUTE(RingHopRoute, RingThread, RingBlockToken,
          currentToken->hop % threadCount());
DPS_ROUTE(RingSinkRoute, RingSinkThread, RingBlockToken, 0);

class RingSplit
    : public SplitOperation<RingThread, TV1(RingStartToken),
                            TV1(RingBlockToken)> {
 public:
  void execute(RingStartToken* in) override {
    for (int32_t i = 0; i < in->block_count; ++i) {
      auto* block = new RingBlockToken();
      block->hop = 1;
      block->index = i;
      block->payload.resize(static_cast<size_t>(in->block_size));
      // A recognizable pattern so merges can spot corruption.
      if (in->block_size > 0) {
        block->payload[0] = static_cast<uint8_t>(i & 0xff);
      }
      postToken(block);
    }
  }
  DPS_IDENTIFY_OPERATION(RingSplit);
};

class RingForward
    : public LeafOperation<RingThread, TV1(RingBlockToken),
                           TV1(RingBlockToken)> {
 public:
  void execute(RingBlockToken* in) override {
    thread()->forwarded_bytes += static_cast<int64_t>(in->payload.size());
    auto* out = new RingBlockToken();
    out->hop = in->hop.get() + 1;
    out->index = in->index.get();
    out->payload = in->payload;  // forward the bytes
    postToken(out);
  }
  DPS_IDENTIFY_OPERATION(RingForward);
};

class RingMerge
    : public MergeOperation<RingSinkThread, TV1(RingBlockToken),
                            TV1(RingDoneToken)> {
 public:
  void execute(RingBlockToken* first) override {
    int32_t blocks = 1;
    int64_t bytes = static_cast<int64_t>(first->payload.size());
    while (auto t = waitForNextToken()) {
      auto block = token_cast<RingBlockToken>(t);
      bytes += static_cast<int64_t>(block->payload.size());
      ++blocks;
    }
    postToken(new RingDoneToken(blocks, bytes));
  }
  DPS_IDENTIFY_OPERATION(RingMerge);
};

/// Builds the ring graph over `hops` nodes (thread i of the ring collection
/// lives on node i; the chain is grown dynamically with += to match the
/// ring size, the paper's dynamic graph construction).
inline std::shared_ptr<Flowgraph> build_ring_graph(Application& app,
                                                   int hops) {
  Cluster& cluster = app.cluster();
  DPS_CHECK(hops >= 2, "a ring needs at least two positions");
  DPS_CHECK(static_cast<size_t>(hops) <= cluster.node_count(),
            "ring larger than the cluster");
  auto ring = app.thread_collection<RingThread>("ring");
  std::string mapping;
  for (int i = 0; i < hops; ++i) {
    if (i != 0) mapping += ' ';
    mapping += cluster.node_name(static_cast<NodeId>(i));
  }
  ring->map(mapping);
  // The merge collects on its own worker so it keeps draining (and
  // acknowledging) blocks while the split's worker blocks on flow control.
  auto sink = app.thread_collection<RingSinkThread>("ring_sink");
  sink->map(cluster.node_name(0));

  FlowgraphNode<RingSplit, RingStartRoute> split(ring);
  FlowgraphNode<RingMerge, RingSinkRoute> merge(sink);
  // First hop; then grow the chain one forwarding vertex at a time.
  auto chain = split >> FlowgraphNode<RingForward, RingHopRoute>(ring);
  for (int h = 2; h < hops; ++h) {
    chain = std::move(chain) >> FlowgraphNode<RingForward, RingHopRoute>(ring);
  }
  FlowgraphBuilder builder = std::move(chain) >> merge;
  return app.build_graph(builder, "ring");
}

}  // namespace dps::apps
