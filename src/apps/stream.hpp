// Continuous streaming pipeline: the workload class of the OpenCL
// actor-network paper (PAPERS.md) grown out of the Fig. 4 video example.
//
// A paced source emits frames at a configured rate; each frame flows
// through three stages of deliberately unequal cost — decode (light),
// analyze (heavy), encode (medium) — and a final merge folds per-frame
// statistics into one report. Unlike the sim-mode video pipeline, the
// stages burn real CPU (FNV sweeps over the payload), so the wall-clock
// bench (bench/stream_video.cpp) measures true sustained tokens/s and
// per-stage latency, not modeled time.
//
// Every frame carries domain timestamps stamped as it leaves each stage;
// the merge turns them into p50/p99 per-stage and end-to-end latencies.
// The stage checksums chain (decode -> analyze -> encode), and the merge
// XORs the final values, so a run is only accepted when every frame went
// through every stage exactly once, bit-exactly — the video pipeline's
// self-check carried over to the streaming variant.
#pragma once

#include <algorithm>
#include <vector>

#include "core/application.hpp"
#include "core/controller.hpp"
#include "serial/registry.hpp"
#include "util/mapping.hpp"

namespace dps::apps {

/// Upper bound on input-rate sweep phases carried by one job.
inline constexpr int kMaxStreamPhases = 8;

/// A rate sweep: phase p offers `frames[p]` frames paced at `rate_hz[p]`.
class StreamJobToken : public SimpleToken {
 public:
  int32_t phases = 0;
  int32_t frame_bytes = 0;
  int32_t decode_passes = 1;  ///< payload sweeps per stage — unequal costs
  int32_t analyze_passes = 4;
  int32_t encode_passes = 2;
  int32_t frames[kMaxStreamPhases] = {};
  double rate_hz[kMaxStreamPhases] = {};  ///< 0 = unpaced (as fast as possible)
  DPS_IDENTIFY(StreamJobToken);
};

class StreamFrameToken : public ComplexToken {
 public:
  CT<int32_t> frame;
  CT<int32_t> phase;
  CT<int32_t> decode_passes;
  CT<int32_t> analyze_passes;
  CT<int32_t> encode_passes;
  CT<double> t_emit;      ///< domain time when the source posted the frame
  CT<double> t_decoded;   ///< stamped by the decode stage
  CT<double> t_analyzed;  ///< stamped by the analyze stage
  CT<uint64_t> checksum;  ///< chained stage checksum
  Buffer<uint8_t> data;
  DPS_IDENTIFY(StreamFrameToken);
};

/// Per-frame result: the payload is dropped after encode, only timing and
/// the chained checksum travel to the merge.
class StreamStatToken : public SimpleToken {
 public:
  int32_t frame = 0;
  int32_t phase = 0;
  double t_emit = 0, t_decoded = 0, t_analyzed = 0, t_encoded = 0;
  uint64_t checksum = 0;
  DPS_IDENTIFY(StreamStatToken);
};

/// Aggregates of one sweep phase (latencies in seconds of domain time).
struct StreamPhaseStats {
  int32_t frames = 0;
  double emit_hz = 0;       ///< achieved source pacing
  double sustained_hz = 0;  ///< completions over the phase's span
  double p50_decode = 0, p99_decode = 0;
  double p50_analyze = 0, p99_analyze = 0;
  double p50_encode = 0, p99_encode = 0;
  double p50_total = 0, p99_total = 0;
};

class StreamDoneToken : public SimpleToken {
 public:
  int32_t frames = 0;
  int32_t phases = 0;
  uint64_t checksum_xor = 0;
  StreamPhaseStats phase[kMaxStreamPhases] = {};
  DPS_IDENTIFY(StreamDoneToken);
};

class StreamSourceThread : public Thread {
  DPS_IDENTIFY_THREAD(StreamSourceThread);
};
class StreamDecodeThread : public Thread {
  DPS_IDENTIFY_THREAD(StreamDecodeThread);
};
class StreamAnalyzeThread : public Thread {
  DPS_IDENTIFY_THREAD(StreamAnalyzeThread);
};
class StreamEncodeThread : public Thread {
  DPS_IDENTIFY_THREAD(StreamEncodeThread);
};
class StreamSinkThread : public Thread {
  DPS_IDENTIFY_THREAD(StreamSinkThread);
};

DPS_ROUTE(StreamJobRoute, StreamSourceThread, StreamJobToken, 0);
DPS_ROUTE(StreamDecodeRoute, StreamDecodeThread, StreamFrameToken,
          currentToken->frame.get() % threadCount());
DPS_ROUTE(StreamAnalyzeRoute, StreamAnalyzeThread, StreamFrameToken,
          currentToken->frame.get() % threadCount());
DPS_ROUTE(StreamEncodeRoute, StreamEncodeThread, StreamFrameToken,
          currentToken->frame.get() % threadCount());
DPS_ROUTE(StreamStatRoute, StreamSinkThread, StreamStatToken, 0);

/// Deterministic payload byte of one frame.
inline uint8_t stream_frame_byte(int frame, int i) {
  return static_cast<uint8_t>((frame * 197 + i * 13 + 11) & 0xff);
}

/// One stage's compute: `passes` FNV-1a sweeps over the payload, chained
/// on the previous stage's checksum. Real CPU work — this is what the
/// wall-clock bench measures — and deterministic, so the merge can verify
/// bit-exact end-to-end flow.
inline uint64_t stream_stage_work(const uint8_t* data, size_t n, int passes,
                                  uint64_t chain) {
  uint64_t acc = chain;
  for (int p = 0; p < passes; ++p) {
    uint64_t h = 14695981039346656037ull ^ acc;
    for (size_t i = 0; i < n; ++i) {
      h ^= data[i];
      h *= 1099511628211ull;
    }
    acc = h;
  }
  return acc;
}

/// Reference: the checksum one frame carries after all three stages.
inline uint64_t stream_frame_checksum(int frame, int frame_bytes,
                                      int decode_passes, int analyze_passes,
                                      int encode_passes) {
  std::vector<uint8_t> data(static_cast<size_t>(frame_bytes));
  for (int i = 0; i < frame_bytes; ++i) {
    data[static_cast<size_t>(i)] = stream_frame_byte(frame, i);
  }
  uint64_t c = stream_stage_work(data.data(), data.size(), decode_passes, 0);
  c = stream_stage_work(data.data(), data.size(), analyze_passes, c);
  return stream_stage_work(data.data(), data.size(), encode_passes, c);
}

/// Paced source: emits each phase's frames at its configured rate. Under
/// wall clock sleepFor really sleeps, so the offered load is real; under
/// virtual time the pacing advances the simulated clock.
class StreamSource
    : public SplitOperation<StreamSourceThread, TV1(StreamJobToken),
                            TV1(StreamFrameToken)> {
 public:
  void execute(StreamJobToken* in) override {
    DPS_CHECK(in->phases >= 1 && in->phases <= kMaxStreamPhases,
              "stream job: bad phase count");
    int total = 0;
    for (int ph = 0; ph < in->phases; ++ph) total += in->frames[ph];
    int frame_id = 0;
    for (int ph = 0; ph < in->phases; ++ph) {
      const double gap = in->rate_hz[ph] > 0 ? 1.0 / in->rate_hz[ph] : 0.0;
      for (int f = 0; f < in->frames[ph]; ++f, ++frame_id) {
        if (gap > 0) sleepFor(gap);
        auto* t = new StreamFrameToken();
        t->frame = frame_id;
        t->phase = ph;
        t->decode_passes = in->decode_passes;
        t->analyze_passes = in->analyze_passes;
        t->encode_passes = in->encode_passes;
        t->data.resize(static_cast<size_t>(in->frame_bytes));
        for (int i = 0; i < in->frame_bytes; ++i) {
          t->data[static_cast<size_t>(i)] = stream_frame_byte(frame_id, i);
        }
        t->checksum = 0;
        t->t_emit = now();
        postToken(t);
        // The engine holds back each post so the final one can carry the
        // context total; without this flush every frame would sit in the
        // source for one full pacing gap before entering the pipeline.
        if (frame_id + 1 < total) flushTokens();
      }
    }
  }
  DPS_IDENTIFY_OPERATION(StreamSource);
};

namespace detail {
/// Copies the identity/stamp fields and payload of `in` into a fresh
/// frame token (stages forward a new token, never the one they received).
inline StreamFrameToken* clone_stream_frame(const StreamFrameToken* in) {
  auto* out = new StreamFrameToken();
  out->frame = in->frame.get();
  out->phase = in->phase.get();
  out->decode_passes = in->decode_passes.get();
  out->analyze_passes = in->analyze_passes.get();
  out->encode_passes = in->encode_passes.get();
  out->t_emit = in->t_emit.get();
  out->t_decoded = in->t_decoded.get();
  out->t_analyzed = in->t_analyzed.get();
  out->checksum = in->checksum.get();
  out->data.resize(in->data.size());
  std::copy(in->data.begin(), in->data.end(), out->data.begin());
  return out;
}
}  // namespace detail

/// Light stage: one payload sweep by default.
class StreamDecode
    : public LeafOperation<StreamDecodeThread, TV1(StreamFrameToken),
                           TV1(StreamFrameToken)> {
 public:
  void execute(StreamFrameToken* in) override {
    auto* out = detail::clone_stream_frame(in);
    out->checksum = stream_stage_work(out->data.data(), out->data.size(),
                                      in->decode_passes.get(), 0);
    out->t_decoded = now();
    postToken(out);
  }
  DPS_IDENTIFY_OPERATION(StreamDecode);
};

/// Heavy stage: the pipeline bottleneck (4 sweeps by default).
class StreamAnalyze
    : public LeafOperation<StreamAnalyzeThread, TV1(StreamFrameToken),
                           TV1(StreamFrameToken)> {
 public:
  void execute(StreamFrameToken* in) override {
    auto* out = detail::clone_stream_frame(in);
    out->checksum =
        stream_stage_work(out->data.data(), out->data.size(),
                          in->analyze_passes.get(), in->checksum.get());
    out->t_analyzed = now();
    postToken(out);
  }
  DPS_IDENTIFY_OPERATION(StreamAnalyze);
};

/// Medium stage; drops the payload and forwards only the per-frame stat.
class StreamEncode
    : public LeafOperation<StreamEncodeThread, TV1(StreamFrameToken),
                           TV1(StreamStatToken)> {
 public:
  void execute(StreamFrameToken* in) override {
    auto* out = new StreamStatToken();
    out->frame = in->frame.get();
    out->phase = in->phase.get();
    out->t_emit = in->t_emit.get();
    out->t_decoded = in->t_decoded.get();
    out->t_analyzed = in->t_analyzed.get();
    out->checksum = stream_stage_work(in->data.data(), in->data.size(),
                                      in->encode_passes.get(),
                                      in->checksum.get());
    out->t_encoded = now();
    postToken(out);
  }
  DPS_IDENTIFY_OPERATION(StreamEncode);
};

/// Folds every frame's stats into per-phase p50/p99 latencies, sustained
/// rates, and the run-wide checksum XOR.
class StreamStatsMerge
    : public MergeOperation<StreamSinkThread, TV1(StreamStatToken),
                            TV1(StreamDoneToken)> {
 public:
  void execute(StreamStatToken* first) override {
    struct Stat {
      int32_t phase;
      double t_emit, t_decoded, t_analyzed, t_encoded;
      uint64_t checksum;
    };
    std::vector<Stat> stats;
    Ptr<StreamStatToken> cur(first);
    for (;;) {
      stats.push_back(Stat{cur->phase, cur->t_emit, cur->t_decoded,
                           cur->t_analyzed, cur->t_encoded, cur->checksum});
      auto t = waitForNextToken();
      if (!t) break;
      cur = token_cast<StreamStatToken>(t);
    }

    auto* done = new StreamDoneToken();
    done->frames = static_cast<int32_t>(stats.size());
    uint64_t xor_acc = 0;
    int max_phase = 0;
    for (const Stat& s : stats) {
      xor_acc ^= s.checksum;
      max_phase = std::max(max_phase, static_cast<int>(s.phase));
    }
    done->checksum_xor = xor_acc;
    done->phases = static_cast<int32_t>(
        std::min(max_phase + 1, static_cast<int>(kMaxStreamPhases)));

    for (int ph = 0; ph < done->phases; ++ph) {
      std::vector<double> dec, ana, enc, tot;
      double emin = 0, emax = 0, cmax = 0;
      bool any = false;
      for (const Stat& s : stats) {
        if (s.phase != ph) continue;
        dec.push_back(s.t_decoded - s.t_emit);
        ana.push_back(s.t_analyzed - s.t_decoded);
        enc.push_back(s.t_encoded - s.t_analyzed);
        tot.push_back(s.t_encoded - s.t_emit);
        if (!any || s.t_emit < emin) emin = s.t_emit;
        if (!any || s.t_emit > emax) emax = s.t_emit;
        if (!any || s.t_encoded > cmax) cmax = s.t_encoded;
        any = true;
      }
      StreamPhaseStats& p = done->phase[ph];
      p.frames = static_cast<int32_t>(tot.size());
      if (p.frames > 1 && emax > emin) {
        p.emit_hz = (p.frames - 1) / (emax - emin);
      }
      if (p.frames > 0 && cmax > emin) p.sustained_hz = p.frames / (cmax - emin);
      p.p50_decode = percentile(dec, 0.50);
      p.p99_decode = percentile(dec, 0.99);
      p.p50_analyze = percentile(ana, 0.50);
      p.p99_analyze = percentile(ana, 0.99);
      p.p50_encode = percentile(enc, 0.50);
      p.p99_encode = percentile(enc, 0.99);
      p.p50_total = percentile(tot, 0.50);
      p.p99_total = percentile(tot, 0.99);
    }
    postToken(done);
  }
  DPS_IDENTIFY_OPERATION(StreamStatsMerge);

 private:
  static double percentile(std::vector<double>& v, double p) {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<size_t>(p * (v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
  }
};

/// Builds the streaming graph: source and sink on node 0, the stage
/// collections spread round-robin over all nodes with per-stage widths.
inline std::shared_ptr<Flowgraph> build_stream_graph(Application& app,
                                                     int decoders,
                                                     int analyzers,
                                                     int encoders) {
  Cluster& cluster = app.cluster();
  std::vector<std::string> nodes;
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    nodes.push_back(cluster.node_name(static_cast<NodeId>(i)));
  }
  auto source = app.thread_collection<StreamSourceThread>("stream-source");
  source->map(cluster.node_name(0));
  auto decode = app.thread_collection<StreamDecodeThread>("stream-decode");
  decode->map(round_robin_mapping(nodes, decoders));
  auto analyze = app.thread_collection<StreamAnalyzeThread>("stream-analyze");
  analyze->map(round_robin_mapping(nodes, analyzers));
  auto encode = app.thread_collection<StreamEncodeThread>("stream-encode");
  encode->map(round_robin_mapping(nodes, encoders));
  auto sink = app.thread_collection<StreamSinkThread>("stream-sink");
  sink->map(cluster.node_name(0));

  FlowgraphBuilder b =
      FlowgraphNode<StreamSource, StreamJobRoute>(source) >>
      FlowgraphNode<StreamDecode, StreamDecodeRoute>(decode) >>
      FlowgraphNode<StreamAnalyze, StreamAnalyzeRoute>(analyze) >>
      FlowgraphNode<StreamEncode, StreamEncodeRoute>(encode) >>
      FlowgraphNode<StreamStatsMerge, StreamStatRoute>(sink);
  return app.build_graph(b, "stream");
}

}  // namespace dps::apps
